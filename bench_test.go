package ovm_test

// One testing.B benchmark per paper artifact (table/figure) plus the
// ablation studies, all driving the experiment registry at smoke-test
// scale so `go test -bench=.` terminates quickly on a laptop. For
// paper-shape output at full scale use cmd/ovmbench (e.g.
// `go run ./cmd/ovmbench -all`).

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ovm/internal/core"
	"ovm/internal/datasets"
	"ovm/internal/dynamic"
	"ovm/internal/experiments"
	"ovm/internal/obs"
	"ovm/internal/postings"
	"ovm/internal/rwalk"
	"ovm/internal/serialize"
	"ovm/internal/service"
	"ovm/internal/voting"
	"ovm/internal/walks"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r, ok := experiments.Registry[id]
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		if err := r(io.Discard, experiments.Params{Quick: true, Seed: int64(i) + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1RunningExample regenerates Table I (and asserts every cell
// against the paper).
func BenchmarkTable1RunningExample(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig2SandwichRatio regenerates the sandwich-ratio study (Fig 2).
func BenchmarkFig2SandwichRatio(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig3ThetaCurve regenerates the Eq-44 admissibility curve (Fig 3).
func BenchmarkFig3ThetaCurve(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkTable3Datasets regenerates the dataset characteristics table.
func BenchmarkTable3Datasets(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkTable4CaseStudy regenerates the ACM-election case study
// (Table IV / Fig 4).
func BenchmarkTable4CaseStudy(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkFig6PluralityVsK regenerates the plurality-vs-k sweep (Fig 6).
func BenchmarkFig6PluralityVsK(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7CopelandVsK regenerates the Copeland-vs-k sweep (Fig 7).
func BenchmarkFig7CopelandVsK(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8CumulativeVsK regenerates the cumulative-vs-k sweep (Fig 8).
func BenchmarkFig8CumulativeVsK(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9SeedOverlap regenerates the plurality-variant overlap study
// (Fig 9).
func BenchmarkFig9SeedOverlap(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10RankDistribution regenerates the rank-position histogram
// (Fig 10).
func BenchmarkFig10RankDistribution(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkTable6MinSeedsToWin regenerates the FJ-Vote-Win table (Table VI).
func BenchmarkTable6MinSeedsToWin(b *testing.B) { benchExperiment(b, "table6") }

// BenchmarkFig11EIS regenerates the expected-influence-spread comparison
// (Fig 11).
func BenchmarkFig11EIS(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12HorizonSweep regenerates the horizon study (Fig 12).
func BenchmarkFig12HorizonSweep(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig13ThetaPlurality regenerates the plurality-vs-θ study (Fig 13).
func BenchmarkFig13ThetaPlurality(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkFig14ThetaCopeland regenerates the Copeland-vs-θ study (Fig 14).
func BenchmarkFig14ThetaCopeland(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkFig15EpsilonSweep regenerates the ε sensitivity study (Fig 15).
func BenchmarkFig15EpsilonSweep(b *testing.B) { benchExperiment(b, "fig15") }

// BenchmarkFig16RhoSweep regenerates the ρ sensitivity study (Fig 16).
func BenchmarkFig16RhoSweep(b *testing.B) { benchExperiment(b, "fig16") }

// BenchmarkFig17Scalability regenerates the scalability/memory study
// (Fig 17).
func BenchmarkFig17Scalability(b *testing.B) { benchExperiment(b, "fig17") }

// BenchmarkFig18OpinionChange regenerates the Appendix-B churn study
// (Fig 18).
func BenchmarkFig18OpinionChange(b *testing.B) { benchExperiment(b, "fig18") }

// BenchmarkFig19MuSweep regenerates the Appendix-D µ study (Fig 19).
func BenchmarkFig19MuSweep(b *testing.B) { benchExperiment(b, "fig19") }

// BenchmarkAblationCELF measures plain greedy vs CELF.
func BenchmarkAblationCELF(b *testing.B) { benchExperiment(b, "ablation-celf") }

// BenchmarkAblationTruncation measures post-generation truncation vs
// per-round walk regeneration.
func BenchmarkAblationTruncation(b *testing.B) { benchExperiment(b, "ablation-truncation") }

// BenchmarkAblationSketchShape measures walk sketches vs RR-set sketches.
func BenchmarkAblationSketchShape(b *testing.B) { benchExperiment(b, "ablation-sketch-shape") }

// BenchmarkExtRobustness re-evaluates FJ-optimized seeds under the HK and
// voter dynamics (future-work extension).
func BenchmarkExtRobustness(b *testing.B) { benchExperiment(b, "ext-robustness") }

// BenchmarkExtBorda runs the Borda-count extension through all methods.
func BenchmarkExtBorda(b *testing.B) { benchExperiment(b, "ext-borda") }

// BenchmarkParallelScaling sweeps the engine worker count over DM/RW/RS
// and verifies the determinism contract (identical seeds at every
// Parallelism). Run cmd/ovmbench -exp parallel-scaling at full scale for
// paper-shape speedup numbers on a multi-core machine.
func BenchmarkParallelScaling(b *testing.B) { benchExperiment(b, "parallel-scaling") }

// BenchmarkServiceQuery measures the ovmd serving path on the 12k-node
// sweep graph (the parallel-scaling dataset): one select-seeds query
// against a service with a precomputed sketch index. cold resets the LRU
// response cache each iteration (full indexed computation: clone, greedy,
// exact evaluation); warm repeats the identical request (cache hit). The
// cold/warm gap is the serving-path number future PRs must not regress.
func BenchmarkServiceQuery(b *testing.B) {
	const (
		horizon = 10
		theta   = 1 << 14
		seed    = int64(42)
		k       = 20
	)
	d, err := datasets.TwitterDistancingLike(datasets.Options{N: 12000, Seed: seed})
	if err != nil {
		b.Fatal(err)
	}
	idx, err := service.BuildIndex(d.Sys, service.BuildOptions{
		Target: d.DefaultTarget, Horizon: horizon, Seed: seed, SketchTheta: theta,
	})
	if err != nil {
		b.Fatal(err)
	}
	svc := service.New(service.Config{})
	if err := svc.AddIndex("sweep", idx); err != nil {
		b.Fatal(err)
	}
	req := &service.SelectSeedsRequest{
		Dataset: "sweep",
		Method:  "RS",
		Score:   service.ScoreSpec{Name: "plurality"},
		K:       k,
		Horizon: horizon,
		Target:  d.DefaultTarget,
		Seed:    seed,
		Theta:   theta,
	}
	query := func(b *testing.B) *service.SelectSeedsResponse {
		b.Helper()
		resp, serr := svc.SelectSeeds(req)
		if serr != nil {
			b.Fatal(serr)
		}
		return resp
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			svc.ResetCache()
			if resp := query(b); resp.Cached || !resp.FromIndex {
				b.Fatalf("cold query must compute from the index (cached=%v fromIndex=%v)", resp.Cached, resp.FromIndex)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		query(b) // prime the cache entry
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if resp := query(b); !resp.Cached {
				b.Fatal("warm query must be served from the cache")
			}
		}
	})
}

// BenchmarkSelection measures the per-round cost of the greedy selection
// loop on the 12k-node sweep graph for all five voting scores, incremental
// postings-index path (timed) against the retained full-scan reference
// (one untimed run per score, reported as the speedup_x baseline). Each
// sub-benchmark also self-checks the determinism contract — the incremental
// path at parallelism 1/4/0 must produce bit-identical seeds and gains to
// the full scan — and reports determinism_ok=1 only when it holds, so the
// recorded BENCH_<sha>.json carries both the speedup and the equivalence
// evidence (CI fails if either metric is missing).
func BenchmarkSelection(b *testing.B) {
	const (
		horizon = 10
		seed    = int64(42)
		k       = 50
		lambda  = 25
	)
	d, err := datasets.TwitterDistancingLike(datasets.Options{N: 12000, Seed: seed})
	if err != nil {
		b.Fatal(err)
	}
	prob := &core.Problem{Sys: d.Sys, Target: d.DefaultTarget, Horizon: horizon, K: k, Score: voting.Cumulative{}}
	n := d.Sys.N()
	plan := make([]int32, n)
	for i := range plan {
		plan[i] = lambda
	}
	base, err := rwalk.GenerateSet(prob, plan, seed, 0)
	if err != nil {
		b.Fatal(err)
	}
	base.EnsureIndex() // clones share the index; its build cost is not part of a round
	comp := core.CompetitorOpinions(d.Sys, d.DefaultTarget, horizon, 0)
	init := d.Sys.Candidate(d.DefaultTarget).Init
	newEst := func(b *testing.B, par int) *walks.Estimator {
		b.Helper()
		est, err := walks.NewEstimator(base.Clone(), d.DefaultTarget, init, comp, walks.UniformOwnerWeights(base), par)
		if err != nil {
			b.Fatal(err)
		}
		return est
	}
	scores := []voting.Score{
		voting.Cumulative{},
		voting.Plurality{},
		voting.PApproval{P: 2},
		voting.Positional{P: 2, Omega: []float64{1, 0.5}},
		voting.Copeland{},
	}
	for _, score := range scores {
		b.Run(score.Name(), func(b *testing.B) {
			// One untimed full-scan reference run: the old per-round cost and
			// the ground truth for the determinism self-check.
			ref := newEst(b, 0)
			ref.UseFullScan(true)
			refStart := time.Now()
			refRes, err := ref.SelectGreedy(k, score)
			if err != nil {
				b.Fatal(err)
			}
			refDur := time.Since(refStart)
			mustMatch := func(res *core.GreedyResult, par int) {
				b.Helper()
				for i := range refRes.Seeds {
					if refRes.Seeds[i] != res.Seeds[i] || refRes.Gains[i] != res.Gains[i] {
						b.Fatalf("P=%d round %d: (seed, gain) = (%d, %v), full-scan reference (%d, %v)",
							par, i, res.Seeds[i], res.Gains[i], refRes.Seeds[i], refRes.Gains[i])
					}
				}
				if refRes.Value != res.Value {
					b.Fatalf("P=%d: value %v, full-scan reference %v", par, res.Value, refRes.Value)
				}
			}
			for _, par := range []int{1, 4} {
				res, err := newEst(b, par).SelectGreedy(k, score)
				if err != nil {
					b.Fatal(err)
				}
				mustMatch(res, par)
			}
			b.ResetTimer()
			var newDur time.Duration
			costBefore := obs.CaptureCosts()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				est := newEst(b, 0)
				b.StartTimer()
				start := time.Now()
				res, err := est.SelectGreedy(k, score)
				newDur += time.Since(start)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				mustMatch(res, 0)
				b.StartTimer()
			}
			costDelta := obs.CaptureCosts().Delta(costBefore)
			perRound := float64(newDur.Nanoseconds()) / float64(b.N) / k
			b.ReportMetric(perRound, "ns/round")
			b.ReportMetric(float64(refDur.Nanoseconds())/k, "ns/round_fullscan")
			b.ReportMetric(float64(refDur.Nanoseconds())/(float64(newDur.Nanoseconds())/float64(b.N)), "speedup_x")
			b.ReportMetric(1, "determinism_ok")
			// Work done per selection, from the engine cost counters — the
			// trajectory records effort alongside wall-clock.
			b.ReportMetric(float64(costDelta["ovm_postings_blocks_total"])/float64(b.N), "postings_blocks_decoded")
			b.ReportMetric(float64(costDelta["ovm_walks_truncated_total"])/float64(b.N), "walks_truncated")
		})
	}
}

// BenchmarkCostAccounting is the overhead guard for the engine cost
// counters: it runs the same indexed greedy selection with accounting on
// and off (interleaved, best-of so scheduler noise cancels) and fails if
// the enabled path costs more than 2% over the disabled one. It also
// re-checks determinism — accounting must never change a selected seed —
// and reports accounting_overhead_pct into the bench trajectory.
func BenchmarkCostAccounting(b *testing.B) {
	const (
		horizon = 10
		seed    = int64(42)
		k       = 50
		lambda  = 25
	)
	d, err := datasets.TwitterDistancingLike(datasets.Options{N: 12000, Seed: seed})
	if err != nil {
		b.Fatal(err)
	}
	prob := &core.Problem{Sys: d.Sys, Target: d.DefaultTarget, Horizon: horizon, K: k, Score: voting.Cumulative{}}
	plan := make([]int32, d.Sys.N())
	for i := range plan {
		plan[i] = lambda
	}
	base, err := rwalk.GenerateSet(prob, plan, seed, 0)
	if err != nil {
		b.Fatal(err)
	}
	base.EnsureIndex()
	comp := core.CompetitorOpinions(d.Sys, d.DefaultTarget, horizon, 0)
	init := d.Sys.Candidate(d.DefaultTarget).Init
	score := voting.Plurality{}
	defer obs.SetCostAccounting(true)
	run := func(on bool) (time.Duration, *core.GreedyResult) {
		obs.SetCostAccounting(on)
		est, err := walks.NewEstimator(base.Clone(), d.DefaultTarget, init, comp, walks.UniformOwnerWeights(base), 0)
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		res, err := est.SelectGreedy(k, score)
		dur := time.Since(start)
		if err != nil {
			b.Fatal(err)
		}
		return dur, res
	}
	// One untimed warmup per mode so page faults and index sharing settle.
	run(true)
	run(false)
	bestOn, bestOff := time.Duration(0), time.Duration(0)
	var onRes, offRes *core.GreedyResult
	overhead := func() float64 {
		return 100 * (float64(bestOn) - float64(bestOff)) / float64(bestOff)
	}
	measure := func(reps int) {
		for i := 0; i < reps; i++ {
			durOn, rOn := run(true)
			durOff, rOff := run(false)
			onRes, offRes = rOn, rOff
			if bestOn == 0 || durOn < bestOn {
				bestOn = durOn
			}
			if bestOff == 0 || durOff < bestOff {
				bestOff = durOff
			}
		}
	}
	// At -benchtime 1x a best-of-1 comparison is pure scheduler noise.
	// Best-of only refines with more reps, so start from max(b.N, 5)
	// interleaved pairs and keep adding batches while the apparent
	// overhead still exceeds the gate; only a reading that persists at
	// the rep cap is a real regression rather than a noisy batch.
	reps := b.N
	if reps < 5 {
		reps = 5
	}
	b.ResetTimer()
	measure(reps)
	for total := reps; overhead() > 2.0 && total < 40; total += 5 {
		measure(5)
	}
	b.StopTimer()
	for i := range onRes.Seeds {
		if onRes.Seeds[i] != offRes.Seeds[i] || onRes.Gains[i] != offRes.Gains[i] {
			b.Fatalf("round %d: accounting changed the selection: on=(%d, %v) off=(%d, %v)",
				i, onRes.Seeds[i], onRes.Gains[i], offRes.Seeds[i], offRes.Gains[i])
		}
	}
	b.ReportMetric(overhead(), "accounting_overhead_pct")
	b.ReportMetric(float64(bestOn.Nanoseconds()), "on_ns")
	b.ReportMetric(float64(bestOff.Nanoseconds()), "off_ns")
	if pct := overhead(); pct > 2.0 {
		b.Errorf("cost accounting overhead %.2f%% exceeds the 2%% gate (on=%v off=%v)", pct, bestOn, bestOff)
	}
}

// BenchmarkIncrementalUpdate measures the dynamic-update path on the
// 12k-node sweep graph: applying a small mutation batch to a service with a
// fully populated index (sketches + RW walks + RR sets) via incremental
// repair, against rebuilding the same index from scratch on the mutated
// system. The incremental sub-benchmark reports speedup_x (one reference
// full build divided by the mean repair time) and invalidated_% (the share
// of sampled artifacts a batch actually regenerates) — the two numbers the
// live-update design is about.
func BenchmarkIncrementalUpdate(b *testing.B) {
	const (
		horizon = 10
		theta   = 1 << 14
		seed    = int64(42)
		rrSets  = 4096
	)
	d, err := datasets.TwitterDistancingLike(datasets.Options{N: 12000, Seed: seed})
	if err != nil {
		b.Fatal(err)
	}
	buildOpts := service.BuildOptions{
		Target:       d.DefaultTarget,
		Horizon:      horizon,
		Seed:         seed,
		SketchTheta:  theta,
		IncludeWalks: true,
		RRSets:       rrSets,
	}
	idx, err := service.BuildIndex(d.Sys, buildOpts)
	if err != nil {
		b.Fatal(err)
	}
	svc := service.New(service.Config{})
	if err := svc.AddIndex("sweep", idx); err != nil {
		b.Fatal(err)
	}
	n := int32(d.Sys.N())
	batchFor := func(i int) dynamic.Batch {
		base := int32(i*97) % (n - 600)
		return dynamic.Batch{
			{Kind: dynamic.OpAddEdge, From: base, To: base + 13, W: 1},
			{Kind: dynamic.OpAddEdge, From: base + 500, To: base + 7, W: 0.5},
			{Kind: dynamic.OpSetWeight, From: base + 1, To: base + 2, W: 2},
			{Kind: dynamic.OpSetOpinion, Cand: d.DefaultTarget, Node: base + 3, Value: 0.9},
			{Kind: dynamic.OpSetStubbornness, Cand: d.DefaultTarget, Node: base + 4, Value: 0.5},
		}
	}
	b.Run("incremental", func(b *testing.B) {
		// The speedup reference: the same rebuild-and-restore work an
		// iteration of the full-rebuild sub-benchmark performs, best of 3
		// runs so a one-off GC pause cannot skew the ratio. Both sides of
		// the ratio are reported as their own metrics (rebuild_restore_ns,
		// repair_ns), so speedup_x is verifiable from the record:
		// speedup_x = rebuild_restore_ns / repair_ns.
		var refBuild time.Duration
		for r := 0; r < 3; r++ {
			refStart := time.Now()
			refIdx, err := service.BuildIndex(d.Sys, buildOpts)
			if err != nil {
				b.Fatal(err)
			}
			refSvc := service.New(service.Config{})
			if err := refSvc.AddIndex("sweep", refIdx); err != nil {
				b.Fatal(err)
			}
			if dur := time.Since(refStart); refBuild == 0 || dur < refBuild {
				refBuild = dur
			}
		}
		var invalidated, total int
		b.ResetTimer()
		start := time.Now()
		costBefore := obs.CaptureCosts()
		for i := 0; i < b.N; i++ {
			resp, serr := svc.ApplyUpdates(&service.UpdateRequest{Dataset: "sweep", Ops: batchFor(i)})
			if serr != nil {
				b.Fatal(serr)
			}
			invalidated += resp.WalksInvalidated + resp.RRSetsInvalidated
			total += resp.WalksTotal + resp.RRSetsTotal
		}
		costDelta := obs.CaptureCosts().Delta(costBefore)
		elapsed := time.Since(start)
		if total > 0 {
			b.ReportMetric(100*float64(invalidated)/float64(total), "invalidated_%")
		}
		// Repair work per batch from the cost counters: bytes the repair
		// copy-on-wrote out of the mapped region, and the walk-invalidation
		// rate as the repair layer itself accounts it.
		b.ReportMetric(float64(costDelta["ovm_repair_copy_bytes_total"])/float64(b.N), "copy_on_repair_bytes")
		if seen := costDelta["ovm_repair_walks_seen_total"]; seen > 0 {
			b.ReportMetric(100*float64(costDelta["ovm_repair_walks_invalidated_total"])/float64(seen), "invalidated_walk_pct")
		} else {
			b.ReportMetric(0, "invalidated_walk_pct")
		}
		if elapsed > 0 {
			repairNs := float64(elapsed.Nanoseconds()) / float64(b.N)
			b.ReportMetric(repairNs, "repair_ns")
			b.ReportMetric(float64(refBuild.Nanoseconds()), "rebuild_restore_ns")
			b.ReportMetric(float64(refBuild.Nanoseconds())/repairNs, "speedup_x")
		}
	})
	b.Run("full-rebuild", func(b *testing.B) {
		// The alternative a daemon without internal/dynamic has: rebuild
		// the index from scratch on the mutated system AND restore it into
		// servable form (what AddIndex does) — ApplyUpdates delivers the
		// latter, so the baseline must too.
		sys := d.Sys
		for i := 0; i < b.N; i++ {
			mutated, _, err := dynamic.ApplySystem(sys, batchFor(i))
			if err != nil {
				b.Fatal(err)
			}
			sys = mutated
			rebuilt, err := service.BuildIndex(sys, buildOpts)
			if err != nil {
				b.Fatal(err)
			}
			fresh := service.New(service.Config{})
			if err := fresh.AddIndex("sweep", rebuilt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIndexLoad measures the daemon startup load path on the 12k-node
// sweep graph with a fully populated index (sketches + RW walks + RR sets):
// the v2 stream decode onto the heap against the v3 zero-copy mmap open.
// v3-mmap reports the ratio as load_speedup_x (against an untimed best-of-2
// v2 reference), the byte-footprint split of the registered dataset
// (index_bytes on disk, mapped_bytes aliasing the file, heap_bytes
// resident), and the raw-vs-varint postings size ratio
// (postings_compression_x). The v2-heap run reports its own index_bytes /
// heap_bytes for the same dataset, so the trajectory records both layouts.
func BenchmarkIndexLoad(b *testing.B) {
	const (
		horizon = 10
		theta   = 1 << 14
		seed    = int64(42)
		rrSets  = 4096
	)
	d, err := datasets.TwitterDistancingLike(datasets.Options{N: 12000, Seed: seed})
	if err != nil {
		b.Fatal(err)
	}
	idx, err := service.BuildIndex(d.Sys, service.BuildOptions{
		Target:       d.DefaultTarget,
		Horizon:      horizon,
		Seed:         seed,
		SketchTheta:  theta,
		IncludeWalks: true,
		RRSets:       rrSets,
	})
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	v2Path := filepath.Join(dir, "index.v2.ovmidx")
	v3Path := filepath.Join(dir, "index.v3.ovmidx")
	var buf bytes.Buffer
	if err := serialize.WriteIndex(&buf, idx); err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(v2Path, buf.Bytes(), 0o644); err != nil {
		b.Fatal(err)
	}
	v2Bytes := int64(buf.Len())
	buf.Reset()
	if err := serialize.WriteIndexV3(&buf, idx, serialize.V3Options{}); err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(v3Path, buf.Bytes(), 0o644); err != nil {
		b.Fatal(err)
	}
	v3Bytes := int64(buf.Len())
	buf = bytes.Buffer{}

	// Postings compression: the raw CSR index arrays (what v2-era loads
	// rebuild in memory, and what V3Options.RawPostings would store) versus
	// the delta+varint blocks v3 stores by default.
	var rawPostings, compactPostings int64
	countIndex := func(off, item, pos []int32) {
		raw := postings.CSR{Off: off, Item: item, Pos: pos}
		rawPostings += int64(len(off)+len(item)+len(pos)) * 4
		compactPostings += postings.FromCSR(raw, postings.DefaultBlockSize).Bytes()
	}
	for _, a := range idx.Sketches {
		countIndex(a.Index.Off, a.Index.Walk, a.Index.Pos)
	}
	for _, a := range idx.Walks {
		countIndex(a.Index.Off, a.Index.Walk, a.Index.Pos)
	}
	for _, a := range idx.RRs {
		countIndex(a.Index.Off, a.Index.Item, nil)
	}

	v2Load := func() *serialize.Index {
		data, err := os.ReadFile(v2Path)
		if err != nil {
			b.Fatal(err)
		}
		loaded, err := serialize.ReadIndex(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		return loaded
	}
	// datasetBytes registers a loaded index once (outside the timed loop)
	// and returns the serving-footprint split.
	datasetBytes := func(loaded *serialize.Index) (mapped, heap int64) {
		svc := service.New(service.Config{})
		if err := svc.AddIndex("sweep", loaded); err != nil {
			b.Fatal(err)
		}
		ds := svc.StatsSnapshot().Datasets[0]
		return ds.MappedBytes, ds.HeapBytes
	}

	b.Run("v2-heap", func(b *testing.B) {
		var loaded *serialize.Index
		for i := 0; i < b.N; i++ {
			loaded = v2Load()
		}
		b.StopTimer()
		mapped, heap := datasetBytes(loaded)
		b.ReportMetric(float64(v2Bytes), "index_bytes")
		b.ReportMetric(float64(mapped), "mapped_bytes")
		b.ReportMetric(float64(heap), "heap_bytes")
	})
	b.Run("v3-mmap", func(b *testing.B) {
		// Untimed v2 reference, best of 2, for the load speedup ratio.
		var v2Ref time.Duration
		for r := 0; r < 2; r++ {
			start := time.Now()
			v2Load()
			if dur := time.Since(start); v2Ref == 0 || dur < v2Ref {
				v2Ref = dur
			}
		}
		var mi *serialize.MappedIndex
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			if mi != nil {
				mi.Close()
			}
			var err error
			if mi, err = serialize.OpenMapped(v3Path); err != nil {
				b.Fatal(err)
			}
		}
		elapsed := time.Since(start)
		b.StopTimer()
		if !mi.Mapped() {
			b.Fatal("v3 load fell back to the heap; the zero-copy path was not measured")
		}
		mapped, heap := datasetBytes(mi.Index)
		defer mi.Close()
		if mapped == 0 {
			b.Fatal("mapped dataset reports zero mapped bytes")
		}
		b.ReportMetric(float64(v3Bytes), "index_bytes")
		b.ReportMetric(float64(mapped), "mapped_bytes")
		b.ReportMetric(float64(heap), "heap_bytes")
		b.ReportMetric(float64(v2Ref.Nanoseconds()), "v2_heap_ns")
		b.ReportMetric(float64(v2Ref.Nanoseconds())/(float64(elapsed.Nanoseconds())/float64(b.N)), "load_speedup_x")
		b.ReportMetric(float64(rawPostings)/float64(compactPostings), "postings_compression_x")
	})
}

// BenchmarkUpdateChurn measures what the async update pipeline buys on the
// 12k-node sweep graph: the same 64 small mutation batches pushed through
// the synchronous blocking path (one repair + swap per batch) versus
// accepted into the update queue and drained by the background applier
// (which coalesces disjoint batches into far fewer repairs) — each while
// two uncached single-threaded evaluate workers keep querying the dataset.
// Reported metrics: updates_per_sec_sync / updates_per_sec_async and their
// ratio churn_speedup_x; the accepted-to-visible lag tail from the
// service's own histogram (visible_lag_p50_ns / visible_lag_p95_ns); the
// query tail during the async churn against the quiet baseline
// (churn_warm_p99_ns vs baseline_warm_p99_ns); and identical_ok = 1 iff
// the async drain landed on the same epoch with byte-identical
// select-seeds and evaluate answers as the sync replay.
func BenchmarkUpdateChurn(b *testing.B) {
	const (
		horizon  = 10
		theta    = 4096
		seed     = int64(42)
		rrSets   = 1024
		mBatches = 64
	)
	d, err := datasets.TwitterDistancingLike(datasets.Options{N: 12000, Seed: seed})
	if err != nil {
		b.Fatal(err)
	}
	buildOpts := service.BuildOptions{
		Target:      d.DefaultTarget,
		Horizon:     horizon,
		Seed:        seed,
		SketchTheta: theta,
		RRSets:      rrSets,
	}
	newSvc := func(async bool) *service.Service {
		idx, err := service.BuildIndex(d.Sys, buildOpts)
		if err != nil {
			b.Fatal(err)
		}
		svc := service.New(service.Config{AsyncUpdates: async})
		if err := svc.AddIndex("churn", idx); err != nil {
			b.Fatal(err)
		}
		return svc
	}
	n := int32(d.Sys.N())
	batchFor := func(i int) dynamic.Batch {
		base := int32(i*97) % (n - 600)
		return dynamic.Batch{
			{Kind: dynamic.OpAddEdge, From: base, To: base + 13, W: 1},
			{Kind: dynamic.OpAddEdge, From: base + 500, To: base + 7, W: 0.5},
			{Kind: dynamic.OpSetWeight, From: base + 1, To: base + 2, W: 2},
			{Kind: dynamic.OpSetOpinion, Cand: d.DefaultTarget, Node: base + 3, Value: 0.9},
			{Kind: dynamic.OpSetStubbornness, Cand: d.DefaultTarget, Node: base + 4, Value: 0.5},
		}
	}
	update := func(i int) *service.UpdateRequest {
		return &service.UpdateRequest{Dataset: "churn", Ops: batchFor(i)}
	}

	// runPhase drives two closed-loop query workers (unique seed sets so
	// every request computes, parallelism pinned to 1 so query latency is
	// the worker's own and the repair takes the remaining cores) while
	// apply() runs, and returns apply's duration plus the query p99.
	runPhase := func(svc *service.Service, apply func() time.Duration) (time.Duration, int64) {
		stop := make(chan struct{})
		var wg sync.WaitGroup
		var hist obs.Histogram
		var qerr atomic.Value
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(w)*7919))
				for {
					select {
					case <-stop:
						return
					default:
					}
					seeds := make([]int32, 0, 5)
					for len(seeds) < 5 {
						seeds = append(seeds, int32(rng.Intn(int(n))))
					}
					start := time.Now()
					_, serr := svc.Evaluate(&service.EvaluateRequest{
						Dataset: "churn", Score: service.ScoreSpec{Name: "cumulative"},
						Horizon: horizon, Target: d.DefaultTarget, Seeds: seeds,
						Parallelism: 1,
					})
					if serr != nil {
						qerr.Store(serr)
						return
					}
					hist.Observe(time.Since(start))
				}
			}(w)
		}
		dur := apply()
		close(stop)
		wg.Wait()
		if e := qerr.Load(); e != nil {
			b.Fatal(e)
		}
		return dur, hist.Snapshot().Quantile(0.99)
	}

	syncSvc := newSvc(false)
	defer syncSvc.Close()
	syncDur, _ := runPhase(syncSvc, func() time.Duration {
		start := time.Now()
		for i := 0; i < mBatches; i++ {
			if _, serr := syncSvc.ApplyUpdates(update(i)); serr != nil {
				b.Fatal(serr)
			}
		}
		return time.Since(start)
	})

	asyncSvc := newSvc(true)
	defer asyncSvc.Close()
	asyncDur, _ := runPhase(asyncSvc, func() time.Duration {
		start := time.Now()
		for i := 0; i < mBatches; i++ {
			if _, serr := asyncSvc.EnqueueUpdates(update(i)); serr != nil {
				b.Fatal(serr)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		defer cancel()
		if serr := asyncSvc.WaitIdle(ctx, "churn"); serr != nil {
			b.Fatal(serr)
		}
		return time.Since(start)
	})

	lag := asyncSvc.UpdateLagSnapshot()

	// Equivalence: both services must sit at epoch mBatches with
	// byte-identical answers — the coalescer's proof obligation, checked
	// end to end.
	identical := 1.0
	sel := &service.SelectSeedsRequest{
		Dataset: "churn", Method: "RS", Score: service.ScoreSpec{Name: "plurality"},
		K: 10, Horizon: horizon, Target: d.DefaultTarget, Seed: seed, Theta: theta,
	}
	sa, serr := syncSvc.SelectSeeds(sel)
	if serr != nil {
		b.Fatal(serr)
	}
	sb, serr := asyncSvc.SelectSeeds(sel)
	if serr != nil {
		b.Fatal(serr)
	}
	eval := &service.EvaluateRequest{
		Dataset: "churn", Score: service.ScoreSpec{Name: "cumulative"},
		Horizon: horizon, Target: d.DefaultTarget, Seeds: []int32{5, 99, 1234, 7777, 11000},
	}
	ea, serr := syncSvc.Evaluate(eval)
	if serr != nil {
		b.Fatal(serr)
	}
	eb, serr := asyncSvc.Evaluate(eval)
	if serr != nil {
		b.Fatal(serr)
	}
	if sa.Epoch != mBatches || sb.Epoch != mBatches ||
		!reflect.DeepEqual(sa.Seeds, sb.Seeds) || sa.ExactValue != sb.ExactValue ||
		ea.Value != eb.Value {
		identical = 0
		b.Errorf("async drain diverged from sync replay: epochs %d/%d, seeds %v/%v, values %.9f/%.9f eval %.9f/%.9f",
			sa.Epoch, sb.Epoch, sa.Seeds, sb.Seeds, sa.ExactValue, sb.ExactValue, ea.Value, eb.Value)
	}

	// Sustained churn: one batch accepted every 20ms keeps the background
	// applier repairing for the whole window, so the query tail measured
	// here is what reads pay while the pipeline churns — the serving-QPS
	// claim the async design makes.
	_, churnP99 := runPhase(asyncSvc, func() time.Duration {
		start := time.Now()
		for i := mBatches; time.Since(start) < 1200*time.Millisecond; i++ {
			if _, serr := asyncSvc.EnqueueUpdates(update(i)); serr != nil {
				b.Fatal(serr)
			}
			time.Sleep(20 * time.Millisecond)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		defer cancel()
		if serr := asyncSvc.WaitIdle(ctx, "churn"); serr != nil {
			b.Fatal(serr)
		}
		return time.Since(start)
	})

	// Quiet baseline measured LAST, on the same drained service: adjacent
	// in time and memory state to the churn phase, so machine-level
	// transients (GC after the index builds, CPU frequency states) hit
	// both sides of the churn/baseline ratio alike.
	_, baseP99 := runPhase(asyncSvc, func() time.Duration {
		time.Sleep(1200 * time.Millisecond)
		return 0
	})

	b.ReportMetric(float64(mBatches)/syncDur.Seconds(), "updates_per_sec_sync")
	b.ReportMetric(float64(mBatches)/asyncDur.Seconds(), "updates_per_sec_async")
	b.ReportMetric(syncDur.Seconds()/asyncDur.Seconds(), "churn_speedup_x")
	b.ReportMetric(float64(lag.Quantile(0.50)), "visible_lag_p50_ns")
	b.ReportMetric(float64(lag.Quantile(0.95)), "visible_lag_p95_ns")
	b.ReportMetric(float64(churnP99), "churn_warm_p99_ns")
	b.ReportMetric(float64(baseP99), "baseline_warm_p99_ns")
	b.ReportMetric(identical, "identical_ok")
	b.ReportMetric(float64(asyncSvc.StatsSnapshot().CoalescedOps), "coalesced_ops")
}
