package ovm_test

// One testing.B benchmark per paper artifact (table/figure) plus the
// ablation studies, all driving the experiment registry at smoke-test
// scale so `go test -bench=.` terminates quickly on a laptop. For
// paper-shape output at full scale use cmd/ovmbench (e.g.
// `go run ./cmd/ovmbench -all`).

import (
	"io"
	"testing"

	"ovm/internal/datasets"
	"ovm/internal/experiments"
	"ovm/internal/service"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r, ok := experiments.Registry[id]
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		if err := r(io.Discard, experiments.Params{Quick: true, Seed: int64(i) + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1RunningExample regenerates Table I (and asserts every cell
// against the paper).
func BenchmarkTable1RunningExample(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig2SandwichRatio regenerates the sandwich-ratio study (Fig 2).
func BenchmarkFig2SandwichRatio(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig3ThetaCurve regenerates the Eq-44 admissibility curve (Fig 3).
func BenchmarkFig3ThetaCurve(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkTable3Datasets regenerates the dataset characteristics table.
func BenchmarkTable3Datasets(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkTable4CaseStudy regenerates the ACM-election case study
// (Table IV / Fig 4).
func BenchmarkTable4CaseStudy(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkFig6PluralityVsK regenerates the plurality-vs-k sweep (Fig 6).
func BenchmarkFig6PluralityVsK(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7CopelandVsK regenerates the Copeland-vs-k sweep (Fig 7).
func BenchmarkFig7CopelandVsK(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8CumulativeVsK regenerates the cumulative-vs-k sweep (Fig 8).
func BenchmarkFig8CumulativeVsK(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9SeedOverlap regenerates the plurality-variant overlap study
// (Fig 9).
func BenchmarkFig9SeedOverlap(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10RankDistribution regenerates the rank-position histogram
// (Fig 10).
func BenchmarkFig10RankDistribution(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkTable6MinSeedsToWin regenerates the FJ-Vote-Win table (Table VI).
func BenchmarkTable6MinSeedsToWin(b *testing.B) { benchExperiment(b, "table6") }

// BenchmarkFig11EIS regenerates the expected-influence-spread comparison
// (Fig 11).
func BenchmarkFig11EIS(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12HorizonSweep regenerates the horizon study (Fig 12).
func BenchmarkFig12HorizonSweep(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig13ThetaPlurality regenerates the plurality-vs-θ study (Fig 13).
func BenchmarkFig13ThetaPlurality(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkFig14ThetaCopeland regenerates the Copeland-vs-θ study (Fig 14).
func BenchmarkFig14ThetaCopeland(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkFig15EpsilonSweep regenerates the ε sensitivity study (Fig 15).
func BenchmarkFig15EpsilonSweep(b *testing.B) { benchExperiment(b, "fig15") }

// BenchmarkFig16RhoSweep regenerates the ρ sensitivity study (Fig 16).
func BenchmarkFig16RhoSweep(b *testing.B) { benchExperiment(b, "fig16") }

// BenchmarkFig17Scalability regenerates the scalability/memory study
// (Fig 17).
func BenchmarkFig17Scalability(b *testing.B) { benchExperiment(b, "fig17") }

// BenchmarkFig18OpinionChange regenerates the Appendix-B churn study
// (Fig 18).
func BenchmarkFig18OpinionChange(b *testing.B) { benchExperiment(b, "fig18") }

// BenchmarkFig19MuSweep regenerates the Appendix-D µ study (Fig 19).
func BenchmarkFig19MuSweep(b *testing.B) { benchExperiment(b, "fig19") }

// BenchmarkAblationCELF measures plain greedy vs CELF.
func BenchmarkAblationCELF(b *testing.B) { benchExperiment(b, "ablation-celf") }

// BenchmarkAblationTruncation measures post-generation truncation vs
// per-round walk regeneration.
func BenchmarkAblationTruncation(b *testing.B) { benchExperiment(b, "ablation-truncation") }

// BenchmarkAblationSketchShape measures walk sketches vs RR-set sketches.
func BenchmarkAblationSketchShape(b *testing.B) { benchExperiment(b, "ablation-sketch-shape") }

// BenchmarkExtRobustness re-evaluates FJ-optimized seeds under the HK and
// voter dynamics (future-work extension).
func BenchmarkExtRobustness(b *testing.B) { benchExperiment(b, "ext-robustness") }

// BenchmarkExtBorda runs the Borda-count extension through all methods.
func BenchmarkExtBorda(b *testing.B) { benchExperiment(b, "ext-borda") }

// BenchmarkParallelScaling sweeps the engine worker count over DM/RW/RS
// and verifies the determinism contract (identical seeds at every
// Parallelism). Run cmd/ovmbench -exp parallel-scaling at full scale for
// paper-shape speedup numbers on a multi-core machine.
func BenchmarkParallelScaling(b *testing.B) { benchExperiment(b, "parallel-scaling") }

// BenchmarkServiceQuery measures the ovmd serving path on the 12k-node
// sweep graph (the parallel-scaling dataset): one select-seeds query
// against a service with a precomputed sketch index. cold resets the LRU
// response cache each iteration (full indexed computation: clone, greedy,
// exact evaluation); warm repeats the identical request (cache hit). The
// cold/warm gap is the serving-path number future PRs must not regress.
func BenchmarkServiceQuery(b *testing.B) {
	const (
		horizon = 10
		theta   = 1 << 14
		seed    = int64(42)
		k       = 20
	)
	d, err := datasets.TwitterDistancingLike(datasets.Options{N: 12000, Seed: seed})
	if err != nil {
		b.Fatal(err)
	}
	idx, err := service.BuildIndex(d.Sys, service.BuildOptions{
		Target: d.DefaultTarget, Horizon: horizon, Seed: seed, SketchTheta: theta,
	})
	if err != nil {
		b.Fatal(err)
	}
	svc := service.New(service.Config{})
	if err := svc.AddIndex("sweep", idx); err != nil {
		b.Fatal(err)
	}
	req := &service.SelectSeedsRequest{
		Dataset: "sweep",
		Method:  "RS",
		Score:   service.ScoreSpec{Name: "plurality"},
		K:       k,
		Horizon: horizon,
		Target:  d.DefaultTarget,
		Seed:    seed,
		Theta:   theta,
	}
	query := func(b *testing.B) *service.SelectSeedsResponse {
		b.Helper()
		resp, serr := svc.SelectSeeds(req)
		if serr != nil {
			b.Fatal(serr)
		}
		return resp
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			svc.ResetCache()
			if resp := query(b); resp.Cached || !resp.FromIndex {
				b.Fatalf("cold query must compute from the index (cached=%v fromIndex=%v)", resp.Cached, resp.FromIndex)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		query(b) // prime the cache entry
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if resp := query(b); !resp.Cached {
				b.Fatal("warm query must be served from the cache")
			}
		}
	})
}
