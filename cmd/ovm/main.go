// Command ovm runs voting-based opinion maximization on a synthetic
// dataset: select k seeds for the target candidate with the chosen method
// and score, report the exact score, and optionally solve FJ-Vote-Win.
//
// Usage examples:
//
//	ovm -dataset yelp-like -n 5000 -method RS -score plurality -k 100 -t 20
//	ovm -dataset twitter-mask-like -method RW -score copeland -k 50
//	ovm -dataset twitter-mask-like -method DM -score plurality -win
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ovm"
	"ovm/internal/cliutil"
	"ovm/internal/core"
	"ovm/internal/dynamic"
	"ovm/internal/serialize"
)

func main() {
	var (
		dataset = flag.String("dataset", "yelp-like", "dataset: "+strings.Join(ovm.DatasetNames, ", "))
		n       = flag.Int("n", 0, "node count override (0 = dataset default)")
		mu      = flag.Float64("mu", 10, "edge-weight decay constant µ")
		method  = flag.String("method", "RS", "method: DM, RW, RS, IC, LT, GED-T, PR, RWR, DC")
		score   = flag.String("score", "plurality", "score: cumulative, plurality, p-approval, positional, copeland")
		pVal    = flag.Int("p", 2, "p for p-approval / positional scores")
		omegaP  = flag.Float64("omegap", 0.5, "ω[p] for the positional score (ω[1..p-1] = 1)")
		k       = flag.Int("k", 50, "seed budget")
		horizon = flag.Int("t", 20, "time horizon")
		target  = flag.Int("target", -1, "target candidate index (-1 = dataset default)")
		seed    = flag.Int64("seed", 1, "random seed")
		theta   = flag.Int("theta", 0, "fixed sketch count θ for the RS method (0 = paper's θ search); matches ovmd index artifacts")
		par     = flag.Int("parallel", 0, "engine worker count (0 = GOMAXPROCS, 1 = serial); never changes the result")
		win     = flag.Bool("win", false, "solve FJ-Vote-Win (minimum seeds to win) instead of FJ-Vote")
		load    = flag.String("load", "", "load a .system file (written by ovmgen -system) instead of synthesizing a dataset")
		updates = flag.String("updates", "", "JSONL mutation file replayed onto the system before querying (each line one batch: an op object or an array of ops)")
		listAll = flag.Bool("list", false, "list datasets and exit")
	)
	flag.Parse()

	checkFlag(*n >= 0, "-n must be >= 0, got %d", *n)
	checkFlag(*mu > 0, "-mu must be > 0, got %v", *mu)
	checkFlag(*pVal >= 1, "-p must be >= 1, got %d", *pVal)
	checkFlag(*k >= 1, "-k must be >= 1, got %d", *k)
	checkFlag(*horizon >= 0, "-t must be >= 0, got %d", *horizon)
	checkFlag(*theta >= 0, "-theta must be >= 0, got %d", *theta)
	checkFlag(*par >= 0, "-parallel must be >= 0, got %d", *par)

	if *listAll {
		for _, name := range ovm.DatasetNames {
			fmt.Println(name)
		}
		return
	}

	var sys *ovm.System
	var names []string
	var label string
	tgt := 0
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fatal(err)
		}
		sys, err = serialize.ReadSystem(f)
		_ = f.Close()
		if err != nil {
			fatal(err)
		}
		label = *load
		for q := 0; q < sys.R(); q++ {
			names = append(names, sys.Candidate(q).Name)
		}
	} else {
		d, err := ovm.LoadDataset(*dataset, ovm.DatasetOptions{N: *n, Mu: *mu, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		sys, names, label, tgt = d.Sys, d.CandidateNames, d.Name, d.DefaultTarget
	}
	if *target >= 0 {
		tgt = *target
	}
	cliutil.CheckArg("ovm", core.ValidateTargetHorizon(tgt, *horizon, sys.R()))
	if *updates != "" {
		f, err := os.Open(*updates)
		if err != nil {
			fatal(err)
		}
		batches, err := dynamic.ReadBatches(f)
		_ = f.Close()
		if err != nil {
			fatal(err)
		}
		var touched int
		sys, touched, err = dynamic.ReplaySystem(sys, batches)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("replayed %d update batches from %s (%d nodes touched)\n", len(batches), *updates, touched)
	}
	sc, err := parseScore(*score, *pVal, *omegaP)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset=%s n=%d m=%d r=%d target=%q score=%s t=%d\n",
		label, sys.N(), sys.Candidate(0).G.M(), sys.R(),
		names[tgt], sc.Name(), *horizon)

	opts := &ovm.SelectOptions{Seed: *seed, Parallelism: *par}
	opts.RS.FixedTheta = *theta
	if *win {
		seeds, err := ovm.MinSeedsToWin(sys, tgt, *horizon, sc, ovm.Method(*method), opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("minimum seeds to win (method %s): k* = %d\n", *method, len(seeds))
		printSeeds(seeds)
		return
	}

	prob := &ovm.Problem{Sys: sys, Target: tgt, Horizon: *horizon, K: *k, Score: sc}
	sel, err := ovm.SelectSeeds(prob, ovm.Method(*method), opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("method=%s k=%d exact score=%.3f elapsed=%s\n",
		sel.Method, *k, sel.ExactValue, sel.Elapsed.Round(1000000))
	baseline, err := ovm.Evaluate(sys, tgt, *horizon, sc, nil)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("score without seeds: %.3f (uplift %.3f)\n", baseline, sel.ExactValue-baseline)
	printSeeds(sel.Seeds)
	ok, err := ovm.Wins(sys, tgt, *horizon, sc, sel.Seeds)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("target wins with these seeds: %v\n", ok)
}

func parseScore(name string, p int, omegaP float64) (ovm.Score, error) {
	switch name {
	case "cumulative":
		return ovm.Cumulative(), nil
	case "plurality":
		return ovm.Plurality(), nil
	case "p-approval":
		return ovm.PApproval(p), nil
	case "positional":
		om := make([]float64, p)
		for i := 0; i < p-1; i++ {
			om[i] = 1
		}
		om[p-1] = omegaP
		return ovm.Positional(p, om), nil
	case "copeland":
		return ovm.Copeland(), nil
	default:
		return nil, fmt.Errorf("unknown score %q", name)
	}
}

func printSeeds(seeds []int32) {
	limit := len(seeds)
	if limit > 20 {
		limit = 20
	}
	fmt.Printf("seeds (%d total): %v", len(seeds), seeds[:limit])
	if len(seeds) > limit {
		fmt.Printf(" …")
	}
	fmt.Println()
}

func checkFlag(ok bool, format string, args ...any) {
	cliutil.CheckFlag("ovm", ok, format, args...)
}

func fatal(err error) { cliutil.Fatal("ovm", err) }
