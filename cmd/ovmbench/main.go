// Command ovmbench regenerates the paper's tables and figures against the
// synthetic dataset stand-ins. Every experiment of the evaluation section
// (§VIII + appendices) is addressable by id.
//
// Usage examples:
//
//	ovmbench -list
//	ovmbench -exp table1
//	ovmbench -exp fig6 -scale 0.5
//	ovmbench -all -quick
//	ovmbench -exp parallel-scaling            # sweep engine worker counts
//	ovmbench -all -parallel 1                 # force serial hot paths
//	ovmbench -exp fig17 -cpuprofile cpu.pprof # profile a hot path
//	ovmbench -exp fig17 -memprofile mem.pprof # heap profile at exit
//
// Profiles are standard pprof files: inspect them with
// `go tool pprof cpu.pprof` (top, list <func>, web). Perf PRs should attach
// profiles recorded this way as evidence.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"ovm/internal/cliutil"
	"ovm/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp        = flag.String("exp", "", "experiment id (see -list)")
		all        = flag.Bool("all", false, "run every experiment in paper order")
		quick      = flag.Bool("quick", false, "smoke-test sizes")
		scale      = flag.Float64("scale", 1, "node-count multiplier")
		seed       = flag.Int64("seed", 42, "random seed")
		parallel   = flag.Int("parallel", 0, "engine worker count (0 = GOMAXPROCS, 1 = serial); results are identical, only wall times change")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	flag.Parse()

	checkFlag(*scale > 0, "-scale must be > 0, got %v", *scale)
	checkFlag(*parallel >= 0, "-parallel must be >= 0, got %d", *parallel)

	if *list {
		for _, id := range experiments.Order {
			fmt.Println(id)
		}
		return 0
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ovmbench: -cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ovmbench: -cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "ovmbench: -cpuprofile: %v\n", err)
			}
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ovmbench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "ovmbench: -memprofile: %v\n", err)
			}
		}()
	}

	params := experiments.Params{Quick: *quick, Scale: *scale, Seed: *seed, Parallelism: *parallel}
	runOne := func(id string) bool {
		r, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "ovmbench: unknown experiment %q (use -list)\n", id)
			return false
		}
		start := time.Now()
		if err := r(os.Stdout, params); err != nil {
			fmt.Fprintf(os.Stderr, "ovmbench: %s failed: %v\n", id, err)
			return false
		}
		fmt.Printf("[%s completed in %s]\n", id, time.Since(start).Round(time.Millisecond))
		return true
	}
	switch {
	case *all:
		for _, id := range experiments.Order {
			if !runOne(id) {
				return 1
			}
		}
	case *exp != "":
		if !runOne(*exp) {
			return 1
		}
	default:
		fmt.Fprintln(os.Stderr, "ovmbench: pass -exp <id>, -all, or -list")
		return 1
	}
	return 0
}

func checkFlag(ok bool, format string, args ...any) {
	cliutil.CheckFlag("ovmbench", ok, format, args...)
}
