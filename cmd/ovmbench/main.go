// Command ovmbench regenerates the paper's tables and figures against the
// synthetic dataset stand-ins. Every experiment of the evaluation section
// (§VIII + appendices) is addressable by id.
//
// Usage examples:
//
//	ovmbench -list
//	ovmbench -exp table1
//	ovmbench -exp fig6 -scale 0.5
//	ovmbench -all -quick
//	ovmbench -exp parallel-scaling            # sweep engine worker counts
//	ovmbench -all -parallel 1                 # force serial hot paths
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ovm/internal/cliutil"
	"ovm/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (see -list)")
		all      = flag.Bool("all", false, "run every experiment in paper order")
		quick    = flag.Bool("quick", false, "smoke-test sizes")
		scale    = flag.Float64("scale", 1, "node-count multiplier")
		seed     = flag.Int64("seed", 42, "random seed")
		parallel = flag.Int("parallel", 0, "engine worker count (0 = GOMAXPROCS, 1 = serial); results are identical, only wall times change")
		list     = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	checkFlag(*scale > 0, "-scale must be > 0, got %v", *scale)
	checkFlag(*parallel >= 0, "-parallel must be >= 0, got %d", *parallel)

	if *list {
		for _, id := range experiments.Order {
			fmt.Println(id)
		}
		return
	}
	params := experiments.Params{Quick: *quick, Scale: *scale, Seed: *seed, Parallelism: *parallel}
	run := func(id string) {
		r, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "ovmbench: unknown experiment %q (use -list)\n", id)
			os.Exit(1)
		}
		start := time.Now()
		if err := r(os.Stdout, params); err != nil {
			fmt.Fprintf(os.Stderr, "ovmbench: %s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %s]\n", id, time.Since(start).Round(time.Millisecond))
	}
	switch {
	case *all:
		for _, id := range experiments.Order {
			run(id)
		}
	case *exp != "":
		run(*exp)
	default:
		fmt.Fprintln(os.Stderr, "ovmbench: pass -exp <id>, -all, or -list")
		os.Exit(1)
	}
}

func checkFlag(ok bool, format string, args ...any) {
	cliutil.CheckFlag("ovmbench", ok, format, args...)
}
