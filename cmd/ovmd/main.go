// Command ovmd is the opinion-maximization query daemon: it loads an
// opinion system once, restores (or builds) precomputed walk/sketch/RR-set
// indexes, and serves select-seeds, evaluate, wins, and min-seeds-to-win
// queries over HTTP/JSON — concurrently, with an LRU response cache and
// singleflight coalescing, and with every answer bit-identical to the
// direct library call at any parallelism.
//
// Build an index once:
//
//	ovmgen -dataset yelp-like -n 5000 -system -out world
//	ovmd -build-index -load world.system -out world.ovmidx -theta 8192 -t 20 -seed 1
//
// Serve it (startup loads, never recomputes):
//
//	ovmd -listen :8080 -index world.ovmidx
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/select-seeds -d '{
//	  "dataset":"default","method":"RS","score":{"name":"plurality"},
//	  "k":10,"horizon":20,"seed":1,"theta":8192}'
//
// Endpoints and schemas are documented in the README ("The ovmd daemon").
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ovm"
	"ovm/internal/cliutil"
	"ovm/internal/serialize"
	"ovm/internal/service"
)

func main() {
	var (
		listen  = flag.String("listen", ":8080", "HTTP listen address")
		name    = flag.String("name", "default", "dataset registration name")
		index   = flag.String("index", "", "index file to serve (written by -build-index)")
		load    = flag.String("load", "", "system file to load (written by ovmgen -system)")
		dataset = flag.String("dataset", "", "synthetic dataset to generate when no -index/-load: "+strings.Join(ovm.DatasetNames, ", "))
		n       = flag.Int("n", 0, "node count override for -dataset (0 = dataset default)")
		mu      = flag.Float64("mu", 10, "edge-weight decay constant µ for -dataset")
		seed    = flag.Int64("seed", 1, "random seed (index build; also the dataset synthesis seed)")
		par     = flag.Int("parallel", 0, "engine worker count (0 = GOMAXPROCS, 1 = serial); never changes any response")
		cache   = flag.Int("cache", 1024, "LRU response cache capacity (entries)")

		build  = flag.Bool("build-index", false, "build an index file and exit instead of serving")
		out    = flag.String("out", "index.ovmidx", "index output path for -build-index")
		theta  = flag.Int("theta", 8192, "sketch count θ precomputed for the RS method (0 = skip)")
		walks  = flag.Bool("walks", true, "precompute the RW method's cumulative-score walk set")
		rr     = flag.Int("rr", 0, "reverse-reachable sets precomputed per IC/LT model (0 = skip)")
		tBuild = flag.Int("t", 20, "time horizon the index artifacts are generated for")
		target = flag.Int("target", 0, "target candidate the index artifacts serve")
	)
	flag.Parse()

	checkFlag(*n >= 0, "-n must be >= 0, got %d", *n)
	checkFlag(*mu > 0, "-mu must be > 0, got %v", *mu)
	checkFlag(*par >= 0, "-parallel must be >= 0, got %d", *par)
	checkFlag(*cache >= 0, "-cache must be >= 0, got %d", *cache)
	checkFlag(*theta >= 0, "-theta must be >= 0, got %d", *theta)
	checkFlag(*rr >= 0, "-rr must be >= 0, got %d", *rr)
	checkFlag(*tBuild >= 0, "-t must be >= 0, got %d", *tBuild)
	checkFlag(*target >= 0, "-target must be >= 0, got %d", *target)

	if *build {
		buildIndex(*load, *dataset, *n, *mu, *seed, *out, *theta, *walks, *rr, *tBuild, *target, *par)
		return
	}
	serve(*listen, *name, *index, *load, *dataset, *n, *mu, *seed, *par, *cache)
}

// buildIndex implements ovmd -build-index: load or synthesize a system,
// precompute the artifacts, and write the versioned binary index.
func buildIndex(load, dataset string, n int, mu float64, seed int64, out string, theta int, walks bool, rr, horizon, target, par int) {
	sys := loadSystem(load, dataset, n, mu, seed)
	start := time.Now()
	idx, err := service.BuildIndex(sys, service.BuildOptions{
		Target:       target,
		Horizon:      horizon,
		Seed:         seed,
		SketchTheta:  theta,
		IncludeWalks: walks,
		RRSets:       rr,
		Parallelism:  par,
	})
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(out)
	if err != nil {
		fatal(err)
	}
	if err := serialize.WriteIndex(f, idx); err != nil {
		_ = f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	info, err := os.Stat(out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (format v%d): n=%d r=%d, %d sketch + %d walk + %d rr artifacts, %d bytes, built in %s\n",
		out, serialize.IndexFormatVersion, sys.N(), sys.R(),
		len(idx.Sketches), len(idx.Walks), len(idx.RRs), info.Size(),
		time.Since(start).Round(time.Millisecond))
}

// serve implements the daemon mode: register the dataset (index preferred,
// so startup is load-not-recompute), then run the HTTP server until
// SIGINT/SIGTERM triggers a graceful drain.
func serve(listen, name, index, load, dataset string, n int, mu float64, seed int64, par, cache int) {
	svc := service.New(service.Config{CacheSize: cache, Parallelism: par})
	switch {
	case index != "":
		f, err := os.Open(index)
		if err != nil {
			fatal(err)
		}
		idx, err := serialize.ReadIndex(f)
		_ = f.Close()
		if err != nil {
			fatal(err)
		}
		if err := svc.AddIndex(name, idx); err != nil {
			fatal(err)
		}
		log.Printf("loaded index %s: n=%d r=%d, %d sketch + %d walk + %d rr artifacts (no recomputation)",
			index, idx.Sys.N(), idx.Sys.R(), len(idx.Sketches), len(idx.Walks), len(idx.RRs))
	default:
		sys := loadSystem(load, dataset, n, mu, seed)
		if err := svc.AddDataset(name, sys); err != nil {
			fatal(err)
		}
		log.Printf("registered dataset %q without precomputed artifacts (n=%d r=%d); queries compute from scratch",
			name, sys.N(), sys.R())
	}

	srv := &http.Server{Addr: listen, Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("ovmd serving dataset %q on %s", name, listen)
	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
	}
	log.Printf("shutting down (draining in-flight queries)")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fatal(err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	log.Printf("ovmd stopped")
}

// loadSystem resolves the three system sources: a .system file, a named
// synthetic dataset, or (neither given) an error.
func loadSystem(load, dataset string, n int, mu float64, seed int64) *ovm.System {
	switch {
	case load != "":
		f, err := os.Open(load)
		if err != nil {
			fatal(err)
		}
		sys, err := serialize.ReadSystem(f)
		_ = f.Close()
		if err != nil {
			fatal(err)
		}
		return sys
	case dataset != "":
		d, err := ovm.LoadDataset(dataset, ovm.DatasetOptions{N: n, Mu: mu, Seed: seed})
		if err != nil {
			fatal(err)
		}
		return d.Sys
	default:
		fatal(fmt.Errorf("pass -index, -load, or -dataset"))
		return nil
	}
}

func checkFlag(ok bool, format string, args ...any) {
	cliutil.CheckFlag("ovmd", ok, format, args...)
}

func fatal(err error) { cliutil.Fatal("ovmd", err) }
