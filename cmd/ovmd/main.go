// Command ovmd is the opinion-maximization query daemon: it loads an
// opinion system once, restores (or builds) precomputed walk/sketch/RR-set
// indexes, and serves select-seeds, evaluate, wins, min-seeds-to-win, and
// dynamic-update queries over HTTP/JSON — concurrently, with an LRU
// response cache and singleflight coalescing, and with every answer
// bit-identical to the direct library call at any parallelism.
//
// Live updates: POST /v1/datasets/{name}/updates applies a mutation batch
// (edge insert/delete/re-weight, opinion/stubbornness drift); the loaded
// artifacts are incrementally repaired (byte-identical to a full rebuild of
// the mutated graph) and the dataset epoch bumps by one. When serving from
// an -index file, every applied batch is appended to the file's update log
// (persisted in OVMIDX format v3) with an atomic rewrite, so a restarted
// daemon replays to the same epoch and the same bytes. Serving a v3 index
// defaults to a zero-copy mmap load (-mmap=false forces the heap path);
// a pre-existing v1/v2 file is readable and is rewritten as v3 on its
// first persisted update.
//
// Observability: GET /metrics is a dependency-free Prometheus text
// exposition (request/stage latency histograms, cache counters,
// per-dataset epoch and index-footprint gauges, and the engine-level
// cost counters — postings blocks decoded, walks truncated, repair
// bytes copied); an "explain": true field on any query returns its
// stage spans plus the cost-counter delta of its computation; GET
// /debug/slow-queries dumps the slow-query ring with per-stage timings;
// GET /debug/timeseries?window=10m serves the in-process ring TSDB
// (-timeseries-interval / -timeseries-capacity); -pprof mounts
// net/http/pprof under /debug/pprof/. Logging is leveled and structured
// (-log-level, -log-format json).
//
// Build an index once:
//
//	ovmgen -dataset yelp-like -n 5000 -system -out world
//	ovmd -build-index -load world.system -out world.ovmidx -theta 8192 -t 20 -seed 1
//
// Serve it (startup loads, never recomputes):
//
//	ovmd -listen :8080 -index world.ovmidx
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/select-seeds -d '{
//	  "dataset":"default","method":"RS","score":{"name":"plurality"},
//	  "k":10,"horizon":20,"seed":1,"theta":8192}'
//
// Endpoints and schemas are documented in the README ("The ovmd daemon").
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"ovm"
	"ovm/internal/cliutil"
	"ovm/internal/core"
	"ovm/internal/dynamic"
	"ovm/internal/iofault"
	"ovm/internal/obs"
	"ovm/internal/persist"
	"ovm/internal/serialize"
	"ovm/internal/service"
)

func main() {
	var (
		listen  = flag.String("listen", ":8080", "HTTP listen address")
		name    = flag.String("name", "default", "dataset registration name")
		index   = flag.String("index", "", "index file to serve (written by -build-index)")
		load    = flag.String("load", "", "system file to load (written by ovmgen -system)")
		dataset = flag.String("dataset", "", "synthetic dataset to generate when no -index/-load: "+strings.Join(ovm.DatasetNames, ", "))
		n       = flag.Int("n", 0, "node count override for -dataset (0 = dataset default)")
		mu      = flag.Float64("mu", 10, "edge-weight decay constant µ for -dataset")
		seed    = flag.Int64("seed", 1, "random seed (index build; also the dataset synthesis seed)")
		par     = flag.Int("parallel", 0, "engine worker count (0 = GOMAXPROCS, 1 = serial); never changes any response")
		mmap    = flag.Bool("mmap", true, "serve a v3 -index zero-copy from an mmap'd region (v1/v2 files and -mmap=false load to the heap); never changes any response")
		cache   = flag.Int("cache", 1024, "LRU response cache capacity (entries)")
		compact = flag.Int("compact-log", 1024, "rebase the persisted index once its update log (applied + queued batches) reaches this many, bounding file size and restart replay cost (0 = never compact)")

		syncUpdates = flag.Bool("sync-updates", false, "apply update batches inline (blocking POST) instead of the default async pipeline (durable WAL queue + background repair)")

		queryTimeout = flag.Duration("query-timeout", 0, "per-query deadline; an expired query returns deadline_exceeded (504) and its computation stops at the next cancellation poll (0 = unbounded; requests may override with timeoutMs)")
		maxInflight  = flag.Int("max-inflight", 0, "cap on concurrently computing queries; cache hits always answer (0 = unlimited)")
		maxQueue     = flag.Int("max-queue", 64, "computations allowed to wait for a free slot once -max-inflight is reached; overflow is shed with 429 + Retry-After (only meaningful with -max-inflight > 0)")
		debugFaults  = flag.Bool("debug-faults", false, "mount /debug/fault/* handlers (panic injection for failure-mode testing); never enable in production")
		dumpUpdates  = flag.Bool("dump-updates", false, "print the -index file's persisted update log as JSONL (one batch per line, replayable via 'ovm -updates') and exit")

		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn, error (queries log at debug)")
		logFormat = flag.String("log-format", "text", "log line format: text or json")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the serving mux")
		slowLog   = flag.Int("slow-log", 32, "slow-query ring capacity served on /debug/slow-queries (0 disables)")
		slowThr   = flag.Duration("slow-threshold", 0, "minimum duration a request must take to enter the slow-query log (0 = retain the most recent requests)")
		tsEvery   = flag.Duration("timeseries-interval", 5*time.Second, "in-process ring-TSDB sampling cadence served on /debug/timeseries (0 disables sampling)")
		tsCap     = flag.Int("timeseries-capacity", 720, "ring-TSDB points retained (720 @ 5s = 1h of history)")

		build  = flag.Bool("build-index", false, "build an index file and exit instead of serving")
		out    = flag.String("out", "index.ovmidx", "index output path for -build-index")
		theta  = flag.Int("theta", 8192, "sketch count θ precomputed for the RS method (0 = skip)")
		walks  = flag.Bool("walks", true, "precompute the RW method's cumulative-score walk set")
		rr     = flag.Int("rr", 0, "reverse-reachable sets precomputed per IC/LT model (0 = skip)")
		tBuild = flag.Int("t", 20, "time horizon the index artifacts are generated for")
		target = flag.Int("target", 0, "target candidate the index artifacts serve")
	)
	flag.Parse()

	checkFlag(*n >= 0, "-n must be >= 0, got %d", *n)
	checkFlag(*mu > 0, "-mu must be > 0, got %v", *mu)
	checkFlag(*par >= 0, "-parallel must be >= 0, got %d", *par)
	checkFlag(*cache >= 0, "-cache must be >= 0, got %d", *cache)
	checkFlag(*compact >= 0, "-compact-log must be >= 0, got %d", *compact)
	checkFlag(*theta >= 0, "-theta must be >= 0, got %d", *theta)
	checkFlag(*rr >= 0, "-rr must be >= 0, got %d", *rr)
	checkFlag(*tBuild >= 0, "-t must be >= 0, got %d", *tBuild)
	checkFlag(*target >= 0, "-target must be >= 0, got %d", *target)
	checkFlag(*slowLog >= 0, "-slow-log must be >= 0, got %d", *slowLog)
	checkFlag(*slowThr >= 0, "-slow-threshold must be >= 0, got %v", *slowThr)
	checkFlag(*tsEvery >= 0, "-timeseries-interval must be >= 0, got %v", *tsEvery)
	checkFlag(*tsCap > 0, "-timeseries-capacity must be > 0, got %d", *tsCap)
	checkFlag(*logFormat == "text" || *logFormat == "json", "-log-format must be text or json, got %q", *logFormat)
	checkFlag(*queryTimeout >= 0, "-query-timeout must be >= 0, got %v", *queryTimeout)
	checkFlag(*maxInflight >= 0, "-max-inflight must be >= 0, got %d", *maxInflight)
	checkFlag(*maxQueue >= 0, "-max-queue must be >= 0, got %d", *maxQueue)
	level, err := obs.ParseLevel(*logLevel)
	checkFlag(err == nil, "-log-level: %v", err)

	if *build {
		buildIndex(*load, *dataset, *n, *mu, *seed, *out, *theta, *walks, *rr, *tBuild, *target, *par)
		return
	}
	if *dumpUpdates {
		checkFlag(*index != "", "-dump-updates requires -index")
		dumpUpdateLog(*index)
		return
	}
	serve(serveOpts{
		listen: *listen, name: *name, index: *index, load: *load, dataset: *dataset,
		n: *n, mu: *mu, seed: *seed, par: *par, cache: *cache, compact: *compact,
		mmap: *mmap, pprof: *pprofOn, slowLog: *slowLog, slowThreshold: *slowThr,
		tsInterval: *tsEvery, tsCapacity: *tsCap,
		queryTimeout: *queryTimeout, maxInflight: *maxInflight, maxQueue: *maxQueue,
		debugFaults: *debugFaults, syncUpdates: *syncUpdates,
		logger: obs.NewLogger(os.Stderr, level, *logFormat == "json"),
	})
}

// dumpUpdateLog prints the index file's persisted update log as JSONL —
// one batch per line, each a JSON array of ops — the exact shape
// 'ovm -updates' replays, so the chaos harness can compare a restarted
// daemon's answers against a direct library run on the mutated graph.
func dumpUpdateLog(path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	idx, err := serialize.ReadIndex(f)
	_ = f.Close()
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	for _, batch := range idx.Updates {
		if err := enc.Encode(batch); err != nil {
			fatal(err)
		}
	}
}

// buildIndex implements ovmd -build-index: load or synthesize a system,
// precompute the artifacts, and write the versioned binary index.
func buildIndex(load, dataset string, n int, mu float64, seed int64, out string, theta int, walks bool, rr, horizon, target, par int) {
	sys := loadSystem(load, dataset, n, mu, seed)
	cliutil.CheckArg("ovmd", core.ValidateTargetHorizon(target, horizon, sys.R()))
	start := time.Now()
	idx, err := service.BuildIndex(sys, service.BuildOptions{
		Target:       target,
		Horizon:      horizon,
		Seed:         seed,
		SketchTheta:  theta,
		IncludeWalks: walks,
		RRSets:       rr,
		Parallelism:  par,
	})
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(out)
	if err != nil {
		fatal(err)
	}
	if err := serialize.WriteIndexV3(f, idx, serialize.V3Options{}); err != nil {
		_ = f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	info, err := os.Stat(out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (format v%d): n=%d r=%d, %d sketch + %d walk + %d rr artifacts, %d bytes, built in %s\n",
		out, serialize.IndexFormatV3, sys.N(), sys.R(),
		len(idx.Sketches), len(idx.Walks), len(idx.RRs), info.Size(),
		time.Since(start).Round(time.Millisecond))
}

// serveOpts carries the daemon-mode flag values.
type serveOpts struct {
	listen, name, index, load, dataset string
	n                                  int
	mu                                 float64
	seed                               int64
	par, cache, compact                int
	mmap, pprof                        bool
	slowLog                            int
	slowThreshold                      time.Duration
	tsInterval                         time.Duration
	tsCapacity                         int
	queryTimeout                       time.Duration
	maxInflight, maxQueue              int
	debugFaults                        bool
	syncUpdates                        bool
	logger                             *obs.Logger
}

// serve implements the daemon mode: register the dataset (index preferred,
// so startup is load-not-recompute), then run the HTTP server until
// SIGINT/SIGTERM triggers a graceful drain. With -index, applied update
// batches are persisted into the file's OVMIDX v3 update log before they
// become visible, so the serving epoch survives restarts.
func serve(o serveOpts) {
	logger := o.logger
	cfg := service.Config{
		CacheSize:          o.cache,
		Parallelism:        o.par,
		Logger:             logger,
		SlowQueryLog:       o.slowLog,
		SlowQueryThreshold: o.slowThreshold,
		TimeSeriesInterval: o.tsInterval,
		TimeSeriesCapacity: o.tsCapacity,
		QueryTimeout:       o.queryTimeout,
		MaxInflight:        o.maxInflight,
		MaxQueue:           o.maxQueue,
		DebugFaults:        o.debugFaults,
	}
	if o.slowLog == 0 {
		cfg.SlowQueryLog = -1 // 0 means "disabled" on the flag, "default" in Config
	}
	cfg.AsyncUpdates = !o.syncUpdates
	var idx *serialize.Index
	var mi *serialize.MappedIndex
	var svc *service.Service
	var wal *persist.WAL
	// logDepth mirrors len(idx.Updates) for /stats and /metrics. OnUpdate
	// reassigns idx under the service's update lock while stats readers run
	// concurrently, so the depth crosses goroutines through an atomic
	// rather than by reading idx.Updates directly. The WAL tail (accepted
	// but not yet folded into the index log) is added at read time.
	var logDepth atomic.Int64
	if o.index != "" {
		// A crash during a previous atomic rewrite can leave *.tmp-* files
		// next to the index (the rename never happened, so the index itself
		// is still the complete old epoch). Sweep them before loading.
		if removed, err := persist.CleanStaleTemps(iofault.OS, o.index); err == nil && len(removed) > 0 {
			logger.Warn("removed stale index temp files from an interrupted rewrite", obs.F("files", strings.Join(removed, ", ")))
		}
		if o.mmap {
			// Zero-copy load: a v3 file is mmap'd and its arrays aliased in
			// place (v1/v2 fall back to heap decode inside OpenMapped). The
			// mapping stays open for the process lifetime — served artifacts
			// alias it until their first repair copy-on-writes them — so it
			// is deliberately never closed.
			var err error
			if mi, err = serialize.OpenMapped(o.index); err != nil {
				quarantineIndex(logger, o.index, err)
			} else {
				idx = mi.Index
			}
		} else {
			f, err := os.Open(o.index)
			if err != nil {
				fatal(err)
			}
			var err2 error
			idx, err2 = serialize.ReadIndex(f)
			_ = f.Close()
			if err2 != nil {
				idx = nil
				quarantineIndex(logger, o.index, err2)
			}
		}
	}
	// queued holds WAL batches recovered at startup: accepted and fsync'd by
	// a previous run but never folded into the index log. They re-enter the
	// pipeline with their originally promised epochs.
	var queued []dynamic.Batch
	var queuedFirst int64
	if idx != nil {
		wal, queued, queuedFirst = openWAL(logger, o.index, idx)
		logDepth.Store(int64(len(idx.Updates)))
		cfg.UpdateLogDepth = func(string) int {
			// Applied log depth plus the accepted-but-unapplied WAL tail:
			// the count a restart replay (and a compaction) must absorb.
			d := int(logDepth.Load())
			if wal != nil {
				d += wal.Depth()
			}
			return d
		}
		// Durability before acknowledgement: an async-accepted batch is on
		// disk (fsync'd WAL sidecar) before the accepted response is sent.
		cfg.OnEnqueue = func(ds string, batch dynamic.Batch, epoch int64) error {
			return wal.Append(persist.WALEntry{Epoch: epoch, Batch: batch})
		}
		// Persistence trade-off: the update log lives inside the
		// CRC-covered OVMIDX container, so each batch rewrites the whole
		// file — O(index size) per update, durable and self-contained.
		// -compact-log bounds the file (and restart replay); the retained
		// base index aliases the served artifacts' storage until their
		// first repair, so it is the write-back source, not a second copy.
		cfg.OnUpdate = func(ds string, batches []dynamic.Batch, epoch int64) error {
			// Compact before appending: once the log is long, rebase the
			// stored artifacts onto the current (pre-swap) dataset state —
			// BaseEpoch carries the version forward — so the file, the
			// rewrite cost, and the restart replay cost all stay bounded.
			// The trigger counts queued-but-unapplied batches too (the WAL
			// tail): they land in this log next, so waiting for them to be
			// applied before compacting just grows the file further.
			depth := len(idx.Updates)
			if wal != nil {
				depth += wal.Depth()
			}
			if o.compact > 0 && depth >= o.compact {
				// ExportIndex reads the VISIBLE (pre-swap) dataset, so the
				// rebase never outruns the WAL: every batch being persisted
				// here replays on top of the exported base to exactly epoch.
				if exported, serr := svc.ExportIndex(ds); serr != nil {
					logger.Warn("update-log compaction failed; keeping the existing log", obs.F("err", serr.Message))
				} else {
					idx = exported
					logger.Info("compacted update log: artifacts rebased", obs.F("epoch", exported.BaseEpoch))
				}
			}
			n0 := len(idx.Updates)
			idx.Updates = append(idx.Updates, batches...)
			if err := persist.WriteIndexAtomic(iofault.OS, o.index, idx); err != nil {
				// Roll the in-memory log back so a later retry does not
				// persist these batches twice.
				idx.Updates = idx.Updates[:n0]
				return err
			}
			logDepth.Store(int64(len(idx.Updates)))
			if wal != nil {
				// The batches are in the CRC-covered index log now; their WAL
				// entries are redundant (a crashed prune is deduplicated at
				// the next startup by epoch comparison).
				if err := wal.Prune(epoch); err != nil {
					logger.Warn("WAL prune failed; entries dedupe at restart", obs.F("err", err))
				}
			}
			ops := 0
			for _, b := range batches {
				ops += len(b)
			}
			logger.Info("persisted update batches",
				obs.F("epoch", epoch), obs.F("batches", len(batches)), obs.F("ops", ops),
				obs.F("logDepth", len(idx.Updates)), obs.F("path", o.index))
			return nil
		}
	}
	svc = service.New(cfg)
	switch {
	case idx != nil:
		if err := svc.AddIndex(o.name, idx); err != nil {
			fatal(err)
		}
		mode := "heap"
		fields := []obs.Field{
			obs.F("path", o.index),
			obs.F("n", idx.Sys.N()), obs.F("r", idx.Sys.R()),
			obs.F("sketches", len(idx.Sketches)), obs.F("walks", len(idx.Walks)), obs.F("rrs", len(idx.RRs)),
			obs.F("replayed", len(idx.Updates)),
		}
		if mi != nil && mi.Mapped() {
			mode = "mmap"
			fields = append(fields, obs.F("zeroCopy", fmt.Sprintf("%d bytes zero-copy", mi.MappedBytes())))
		}
		logger.Info("loaded index (no recomputation)", append([]obs.Field{obs.F("mode", mode)}, fields...)...)
		if len(queued) > 0 {
			// Accepted-but-unrepaired batches from the previous run drain
			// through the same applier as live traffic, landing on the same
			// epochs that were promised before the crash. With -sync-updates
			// the drain completes before serving (the blocking contract has
			// no "catching up" state).
			if serr := svc.SeedQueued(o.name, queued, queuedFirst); serr != nil {
				fatal(errors.New(serr.Message))
			}
			logger.Info("recovered queued update batches from WAL",
				obs.F("batches", len(queued)), obs.F("firstEpoch", queuedFirst))
			if o.syncUpdates {
				if serr := svc.WaitIdle(context.Background(), o.name); serr != nil {
					fatal(errors.New(serr.Message))
				}
			}
		}
	case o.load != "" || o.dataset != "":
		sys := loadSystem(o.load, o.dataset, o.n, o.mu, o.seed)
		if err := svc.AddDataset(o.name, sys); err != nil {
			fatal(err)
		}
		logger.Info("registered dataset without precomputed artifacts; queries compute from scratch and updates are not persisted",
			obs.F("dataset", o.name), obs.F("n", sys.N()), obs.F("r", sys.R()))
	case o.index != "":
		// The index was quarantined above: start degraded (health, stats,
		// and metrics still serve; dataset queries 404) rather than
		// crash-looping on a corrupt file.
		logger.Warn("serving with no datasets: index was quarantined", obs.F("index", o.index))
	default:
		fatal(fmt.Errorf("pass -index, -load, or -dataset"))
	}

	handler := svc.Handler()
	if o.pprof {
		root := http.NewServeMux()
		root.Handle("/", handler)
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("/debug/pprof/profile", pprof.Profile)
		root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = root
	}
	// Server-side transport limits: slow or stuck clients cannot hold
	// connections open forever. The write timeout must cover the slowest
	// legitimate query, so it derives from the query deadline when one is
	// configured and stays unbounded otherwise (long cold selections are
	// legitimate on large graphs).
	srv := &http.Server{
		Addr:              o.listen,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	if o.queryTimeout > 0 {
		srv.WriteTimeout = o.queryTimeout + 30*time.Second
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("ovmd serving", obs.F("dataset", o.name), obs.F("listen", o.listen), obs.F("pprof", o.pprof))
	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
	}
	logger.Info("shutting down (draining in-flight queries)")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fatal(err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	svc.Close()
	logger.Info("ovmd stopped")
}

// loadSystem resolves the three system sources: a .system file, a named
// synthetic dataset, or (neither given) an error.
func loadSystem(load, dataset string, n int, mu float64, seed int64) *ovm.System {
	switch {
	case load != "":
		f, err := os.Open(load)
		if err != nil {
			fatal(err)
		}
		sys, err := serialize.ReadSystem(f)
		_ = f.Close()
		if err != nil {
			fatal(err)
		}
		return sys
	case dataset != "":
		d, err := ovm.LoadDataset(dataset, ovm.DatasetOptions{N: n, Mu: mu, Seed: seed})
		if err != nil {
			fatal(err)
		}
		return d.Sys
	default:
		fatal(fmt.Errorf("pass -index, -load, or -dataset"))
		return nil
	}
}

// openWAL opens (or creates) the index's write-ahead sidecar and
// reconciles it with the index's replayed epoch: entries the index log
// already contains (a crash landed between the index rewrite and the WAL
// prune) are pruned as duplicates; the remainder must continue the
// index's epoch contiguously and is returned for re-queueing. A WAL that
// cannot be reconciled is quarantined — the index itself is still a
// complete, consistent epoch.
func openWAL(logger *obs.Logger, indexPath string, idx *serialize.Index) (*persist.WAL, []dynamic.Batch, int64) {
	walPath := indexPath + ".wal"
	if removed, err := persist.CleanStaleTemps(iofault.OS, walPath); err == nil && len(removed) > 0 {
		logger.Warn("removed stale WAL temp files from an interrupted prune", obs.F("files", strings.Join(removed, ", ")))
	}
	wal, torn, err := persist.OpenWAL(iofault.OS, walPath)
	if err != nil {
		// Mid-file corruption: acked batches may be lost; keep the evidence
		// and start with a fresh (empty) log rather than crash-looping.
		logger.Warn("update WAL unreadable; quarantining", obs.F("wal", walPath), obs.F("err", err))
		if dst, qerr := persist.Quarantine(iofault.OS, walPath); qerr != nil {
			fatal(qerr)
		} else {
			logger.Warn("WAL quarantined for inspection", obs.F("movedTo", dst))
		}
		if wal, _, err = persist.OpenWAL(iofault.OS, walPath); err != nil {
			fatal(err)
		}
	}
	if torn > 0 {
		// A torn final line is a batch whose accepted response may never
		// have been sent; dropping it is the documented crash semantics.
		logger.Warn("dropped torn WAL tail entry (crash mid-append)", obs.F("entries", torn))
	}
	served := idx.BaseEpoch + int64(len(idx.Updates))
	if err := wal.Prune(served); err != nil {
		fatal(err)
	}
	rem := wal.Pending()
	if len(rem) == 0 {
		return wal, nil, 0
	}
	if rem[0].Epoch != served+1 {
		logger.Warn("WAL does not continue the index epoch; discarding its entries",
			obs.F("walFirst", rem[0].Epoch), obs.F("indexEpoch", served))
		if err := wal.Prune(rem[len(rem)-1].Epoch); err != nil {
			fatal(err)
		}
		return wal, nil, 0
	}
	batches := make([]dynamic.Batch, len(rem))
	for i, e := range rem {
		batches[i] = e.Batch
	}
	return wal, batches, served + 1
}

// quarantineIndex handles an unreadable index at startup. A missing file is
// fatal — that is a typo'd path, not corruption, and silently serving empty
// would mask it. Anything else (truncated file, CRC mismatch, bad magic) is
// corruption: move the file aside to <path>.corrupt so the next restart does
// not crash-loop on it, and let the daemon start degraded for inspection.
func quarantineIndex(logger *obs.Logger, path string, loadErr error) {
	if os.IsNotExist(loadErr) {
		fatal(loadErr)
	}
	dst, qerr := persist.Quarantine(iofault.OS, path)
	if qerr != nil {
		logger.Warn("index unreadable and quarantine failed; serving degraded",
			obs.F("index", path), obs.F("err", loadErr), obs.F("quarantineErr", qerr))
		return
	}
	logger.Warn("index unreadable; quarantined for inspection",
		obs.F("index", path), obs.F("err", loadErr), obs.F("movedTo", dst))
}

func checkFlag(ok bool, format string, args ...any) {
	cliutil.CheckFlag("ovmd", ok, format, args...)
}

func fatal(err error) { cliutil.Fatal("ovmd", err) }
