// Command ovmgen synthesizes a dataset and exports its influence graph,
// initial opinions, and stubbornness values to plain-text files, so the
// worlds used in the experiments can be inspected or consumed by other
// tools.
//
// Usage example:
//
//	ovmgen -dataset dblp-like -n 8000 -out /tmp/dblp
//
// writes /tmp/dblp.graph (edge list), /tmp/dblp.opinions (one row per
// candidate: name then n initial opinions), and /tmp/dblp.stub (same shape
// for stubbornness).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ovm"
	"ovm/internal/cliutil"
	"ovm/internal/graph"
	"ovm/internal/serialize"
)

func main() {
	var (
		dataset = flag.String("dataset", "yelp-like", "dataset: "+strings.Join(ovm.DatasetNames, ", "))
		n       = flag.Int("n", 0, "node count override (0 = dataset default)")
		mu      = flag.Float64("mu", 10, "edge-weight decay constant µ")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "dataset", "output path prefix")
		system  = flag.Bool("system", false, "additionally write <out>.system (self-contained, reloadable by ovm -load)")
	)
	flag.Parse()

	checkFlag(*n >= 0, "-n must be >= 0, got %d", *n)
	checkFlag(*mu > 0, "-mu must be > 0, got %v", *mu)

	d, err := ovm.LoadDataset(*dataset, ovm.DatasetOptions{N: *n, Mu: *mu, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	if *system {
		f, err := os.Create(*out + ".system")
		if err != nil {
			fatal(err)
		}
		if err := serialize.WriteSystem(f, d.Sys); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s.system\n", *out)
	}
	if err := writeGraph(*out+".graph", d.Sys.Candidate(0).G); err != nil {
		fatal(err)
	}
	if err := writeVectors(*out+".opinions", d, func(c *ovm.Candidate) []float64 { return c.Init }); err != nil {
		fatal(err)
	}
	if err := writeVectors(*out+".stub", d, func(c *ovm.Candidate) []float64 { return c.Stub }); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s.graph (%d nodes, %d edges), %s.opinions, %s.stub (%d candidates)\n",
		*out, d.Sys.N(), d.Sys.Candidate(0).G.M(), *out, *out, d.Sys.R())
}

func writeGraph(path string, g *ovm.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return graph.WriteEdgeList(f, g)
}

func writeVectors(path string, d *ovm.Dataset, pick func(*ovm.Candidate) []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for q := 0; q < d.Sys.R(); q++ {
		c := d.Sys.Candidate(q)
		if _, err := fmt.Fprintf(w, "# %s\n", c.Name); err != nil {
			return err
		}
		vals := pick(c)
		for i, v := range vals {
			if i > 0 {
				if err := w.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := w.WriteString(strconv.FormatFloat(v, 'g', 6, 64)); err != nil {
				return err
			}
		}
		if err := w.WriteByte('\n'); err != nil {
			return err
		}
	}
	return w.Flush()
}

func checkFlag(ok bool, format string, args ...any) {
	cliutil.CheckFlag("ovmgen", ok, format, args...)
}

func fatal(err error) { cliutil.Fatal("ovmgen", err) }
