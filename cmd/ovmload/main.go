// Command ovmload is a closed-loop load generator for a live ovmd: N
// workers drive the query endpoints (optionally paced to a QPS target,
// optionally alongside a concurrent mutation stream), aggregate latencies
// in the same lock-free histograms the daemon uses, and report achieved
// QPS with p50/p95/p99/max percentiles.
//
// Typical runs against the serving benchmark graph:
//
//	ovmload -addr http://localhost:8080 -duration 10s -workers 8            # warm: fixed query mix, cache-served
//	ovmload -addr http://localhost:8080 -endpoint evaluate -distinct        # cold: unique seed sets, every request computes
//	ovmload -addr http://localhost:8080 -mutate-every 250ms                 # warm queries + concurrent update batches
//	ovmload -addr http://localhost:8080 -mutate-every 250ms -wait-visible   # ...and measure accepted-to-visible lag per update
//
// With -json the report is a single line in the bench-trajectory result
// shape ({"name","iterations","metrics":{...}}) that scripts/bench_record.sh
// folds into BENCH_<sha>.json. With -verify-metrics the daemon's
// /metrics request-histogram counts are checked against the requests
// ovmload actually sent (requires ovmload to be the daemon's only
// client).
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ovm/internal/cliutil"
	"ovm/internal/obs"
)

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "base URL of the ovmd daemon")
		dataset  = flag.String("dataset", "default", "dataset name registered on the daemon")
		duration = flag.Duration("duration", 10*time.Second, "how long to drive load")
		workers  = flag.Int("workers", 8, "concurrent closed-loop workers")
		qps      = flag.Float64("qps", 0, "target aggregate QPS (0 = unthrottled: every worker issues back-to-back)")
		endpoint = flag.String("endpoint", "mix", "query endpoint: select-seeds, evaluate, wins, or mix")
		scores   = flag.String("scores", "plurality,cumulative,p-approval,borda,copeland", "comma-separated score mix (p-approval uses p=2)")
		k        = flag.Int("k", 10, "seed-set size for select-seeds / evaluate / wins")
		horizon  = flag.Int("t", 10, "time horizon (match the served index)")
		target   = flag.Int("target", 0, "target candidate (match the served index)")
		seed     = flag.Int64("seed", 42, "RNG seed for request generation (also the request seed field)")
		theta    = flag.Int("theta", 0, "RS sketch count for select-seeds (0 = the index artifact's θ)")
		distinct = flag.Bool("distinct", false, "generate a unique random seed set per evaluate/wins request (defeats the response cache: cold-path load)")
		mutEvery = flag.Duration("mutate-every", 0, "post a one-op update batch at this interval while querying (0 = no mutation stream)")
		jsonOut  = flag.Bool("json", false, "emit the report as one bench-trajectory JSON line on stdout")
		name     = flag.String("bench-name", "ovmload", "result name used with -json")
		verify   = flag.Bool("verify-metrics", false, "check the daemon /metrics request-histogram count delta equals the requests sent (ovmload must be the only client)")
		explain  = flag.Bool("explain", false, "set \"explain\": true on every query and fail unless every 200 response carries an explain block (exercises the EXPLAIN path under load)")
		retries  = flag.Int("retries", 3, "retry attempts per request when the daemon sheds with 429 (backoff honors Retry-After, with jitter); a request that exhausts its retries counts as an error")
		waitVis  = flag.Bool("wait-visible", false, "after each accepted update, issue a cheap minEpoch evaluate probe that blocks until the batch is visible, and report accepted-to-visible lag percentiles (requires -mutate-every)")
	)
	flag.Parse()
	checkFlag(*duration > 0, "-duration must be > 0, got %v", *duration)
	checkFlag(*workers > 0, "-workers must be > 0, got %d", *workers)
	checkFlag(*qps >= 0, "-qps must be >= 0, got %v", *qps)
	checkFlag(*k > 0, "-k must be > 0, got %d", *k)
	checkFlag(*horizon >= 0, "-t must be >= 0, got %d", *horizon)
	checkFlag(*target >= 0, "-target must be >= 0, got %d", *target)
	checkFlag(*theta >= 0, "-theta must be >= 0, got %d", *theta)
	checkFlag(*mutEvery >= 0, "-mutate-every must be >= 0, got %v", *mutEvery)
	checkFlag(*retries >= 0, "-retries must be >= 0, got %d", *retries)
	checkFlag(!*waitVis || *mutEvery > 0, "-wait-visible requires -mutate-every")
	switch *endpoint {
	case "select-seeds", "evaluate", "wins", "mix":
	default:
		checkFlag(false, "-endpoint must be select-seeds, evaluate, wins, or mix, got %q", *endpoint)
	}
	scoreList := parseScores(*scores)
	checkFlag(len(scoreList) > 0, "-scores must name at least one score")

	client := &http.Client{Timeout: 60 * time.Second}
	n := datasetNodes(client, *addr, *dataset)
	checkFlag(*k < n, "-k %d must be < the dataset's %d nodes", *k, n)

	var before float64
	if *verify {
		before = requestHistogramCount(client, *addr)
	}

	g := &loadgen{
		client: client, addr: *addr, dataset: *dataset,
		endpoint: *endpoint, scores: scoreList,
		k: *k, horizon: *horizon, target: *target, seed: *seed, theta: *theta,
		n: n, distinct: *distinct, explain: *explain, maxRetries: *retries,
		waitVisible: *waitVis,
	}
	// The warm fixture: one fixed seed set shared by every worker, so
	// non-distinct evaluate/wins traffic collapses onto cached entries.
	g.fixedSeeds = randomSeedSet(rand.New(rand.NewSource(*seed)), *k, n)

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	var wg sync.WaitGroup
	var mutations atomic.Int64
	if *mutEvery > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.mutate(ctx, *mutEvery, &mutations)
		}()
	}
	// Global pacing: a token channel refilled at the QPS target. Workers
	// stay closed-loop (next request only after the last returns); the
	// bucket only slows them down.
	var tokens chan struct{}
	if *qps > 0 {
		tokens = make(chan struct{}, *workers)
		interval := time.Duration(float64(time.Second) / *qps)
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					select {
					case tokens <- struct{}{}:
					default: // workers saturated: drop the token, not the pace
					}
				}
			}
		}()
	}
	start := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g.worker(ctx, w, tokens)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	snap := g.hist.Snapshot()
	updSnap := g.updHist.Snapshot()
	lagSnap := g.lagHist.Snapshot()
	// Every attempt reaches the daemon's request histogram, including the
	// 429s that were later retried — so "sent" counts retried attempts too.
	// Visibility probes are ordinary evaluate requests; their own atomic
	// keeps the accounting exact.
	sent := snap.Count + g.errors.Load() + g.retried.Load() + g.probes.Load()
	if *verify {
		after := requestHistogramCount(client, *addr)
		if delta := after - before; delta != float64(sent) {
			fatal(fmt.Errorf("metrics mismatch: daemon request histogram grew by %.0f, ovmload sent %d requests (is another client running?)", delta, sent))
		}
		fmt.Fprintf(os.Stderr, "ovmload: verified /metrics histogram delta == %d requests sent\n", sent)
	}

	achieved := float64(snap.Count) / elapsed.Seconds()
	fmt.Fprintf(os.Stderr,
		"ovmload: %s %d workers %v: %d ok, %d errors, %d retried, %d mutations, %.1f qps, p50=%s p95=%s p99=%s max=%s\n",
		*endpoint, *workers, elapsed.Round(time.Millisecond),
		snap.Count, g.errors.Load(), g.retried.Load(), mutations.Load(), achieved,
		time.Duration(snap.Quantile(0.50)), time.Duration(snap.Quantile(0.95)),
		time.Duration(snap.Quantile(0.99)), time.Duration(snap.MaxNs))
	if updSnap.Count > 0 {
		fmt.Fprintf(os.Stderr, "ovmload: updates: %d posted, p50=%s p95=%s p99=%s\n",
			updSnap.Count, time.Duration(updSnap.Quantile(0.50)),
			time.Duration(updSnap.Quantile(0.95)), time.Duration(updSnap.Quantile(0.99)))
	}
	if lagSnap.Count > 0 {
		fmt.Fprintf(os.Stderr, "ovmload: accepted-to-visible lag: %d probes, p50=%s p95=%s p99=%s\n",
			lagSnap.Count, time.Duration(lagSnap.Quantile(0.50)),
			time.Duration(lagSnap.Quantile(0.95)), time.Duration(lagSnap.Quantile(0.99)))
	}
	if *jsonOut {
		// The field order matches the bench-trajectory entries
		// bench_record.sh parses out of `go test -bench` output.
		report := struct {
			Name       string `json:"name"`
			Iterations int64  `json:"iterations"`
			Metrics    struct {
				ServingQPS float64 `json:"serving_qps"`
				P50Ns      int64   `json:"p50_ns"`
				P95Ns      int64   `json:"p95_ns"`
				P99Ns      int64   `json:"p99_ns"`
				MaxNs      int64   `json:"max_ns"`
				MeanNs     int64   `json:"mean_ns"`
				Errors     int64   `json:"errors"`
				Retried    int64   `json:"retried"`
				Mutations  int64   `json:"mutations"`
				Workers    int     `json:"workers"`
				DurationS  float64 `json:"duration_s"`
				UpdP50Ns   int64   `json:"update_p50_ns,omitempty"`
				UpdP95Ns   int64   `json:"update_p95_ns,omitempty"`
				UpdP99Ns   int64   `json:"update_p99_ns,omitempty"`
				LagP50Ns   int64   `json:"visible_lag_p50_ns,omitempty"`
				LagP95Ns   int64   `json:"visible_lag_p95_ns,omitempty"`
				LagProbes  int64   `json:"visible_lag_probes,omitempty"`
			} `json:"metrics"`
		}{Name: *name, Iterations: snap.Count}
		m := &report.Metrics
		m.ServingQPS = round1(achieved)
		m.P50Ns = snap.Quantile(0.50)
		m.P95Ns = snap.Quantile(0.95)
		m.P99Ns = snap.Quantile(0.99)
		m.MaxNs = snap.MaxNs
		m.MeanNs = int64(snap.Mean())
		m.Errors = g.errors.Load()
		m.Retried = g.retried.Load()
		m.Mutations = mutations.Load()
		m.Workers = *workers
		m.DurationS = round1(elapsed.Seconds())
		if updSnap.Count > 0 {
			m.UpdP50Ns = updSnap.Quantile(0.50)
			m.UpdP95Ns = updSnap.Quantile(0.95)
			m.UpdP99Ns = updSnap.Quantile(0.99)
		}
		if lagSnap.Count > 0 {
			m.LagP50Ns = lagSnap.Quantile(0.50)
			m.LagP95Ns = lagSnap.Quantile(0.95)
			m.LagProbes = lagSnap.Count
		}
		if err := json.NewEncoder(os.Stdout).Encode(report); err != nil {
			fatal(err)
		}
	}
	if g.errors.Load() > 0 {
		os.Exit(1)
	}
}

// loadgen is the shared request-generation state; recording is lock-free
// (obs.Histogram) so workers never serialize on the aggregator.
type loadgen struct {
	client      *http.Client
	addr        string
	dataset     string
	endpoint    string
	scores      []scoreSpec
	k           int
	horizon     int
	target      int
	seed        int64
	theta       int
	n           int
	distinct    bool
	explain     bool
	maxRetries  int
	waitVisible bool
	fixedSeeds  []int32

	hist    obs.Histogram
	updHist obs.Histogram // update-POST latency, separate from the query mix
	lagHist obs.Histogram // accepted-to-visible lag measured by minEpoch probes
	errors  atomic.Int64
	retried atomic.Int64 // 429 attempts that were retried after backoff
	probes  atomic.Int64 // -wait-visible evaluate probes (query-histogram traffic)
}

type scoreSpec struct {
	Name string `json:"name"`
	P    int    `json:"p,omitempty"`
}

func parseScores(csv string) []scoreSpec {
	var out []scoreSpec
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		sp := scoreSpec{Name: name}
		if name == "p-approval" || name == "positional" {
			sp.P = 2
		}
		out = append(out, sp)
	}
	return out
}

// worker issues requests back-to-back until the context expires, drawing
// endpoints and scores round-robin from its own offset so the aggregate
// mix is even without coordination.
func (g *loadgen) worker(ctx context.Context, w int, tokens <-chan struct{}) {
	rng := rand.New(rand.NewSource(g.seed + int64(w)*7919))
	endpoints := []string{g.endpoint}
	if g.endpoint == "mix" {
		// Selection is the expensive path; weight it like a real caller
		// that also re-evaluates and checks the win predicate.
		endpoints = []string{"select-seeds", "select-seeds", "evaluate", "wins"}
	}
	for i := w; ; i++ {
		if ctx.Err() != nil {
			return
		}
		if tokens != nil {
			select {
			case <-ctx.Done():
				return
			case <-tokens:
			}
		}
		ep := endpoints[i%len(endpoints)]
		sc := g.scores[i%len(g.scores)]
		var path string
		var body map[string]any
		switch ep {
		case "select-seeds":
			path = "/v1/select-seeds"
			body = map[string]any{
				"dataset": g.dataset, "method": "RS", "score": sc,
				"k": g.k, "horizon": g.horizon, "target": g.target,
				"seed": g.seed, "theta": g.theta,
			}
		case "evaluate", "wins":
			path = "/v1/" + ep
			seeds := g.fixedSeeds
			if g.distinct {
				seeds = randomSeedSet(rng, g.k, g.n)
			}
			body = map[string]any{
				"dataset": g.dataset, "score": sc,
				"horizon": g.horizon, "target": g.target, "seeds": seeds,
			}
		}
		if g.explain {
			body["explain"] = true
		}
		// The deadline gates starting a request, not finishing it: in-flight
		// requests drain to completion so every request sent is also
		// recorded — on both sides, which is what lets -verify-metrics
		// demand exact histogram-count equality with the daemon.
		start := time.Now()
		err := g.post(path, body)
		dur := time.Since(start)
		if err != nil {
			g.errors.Add(1)
			fmt.Fprintf(os.Stderr, "ovmload: %s: %v\n", path, err)
			continue
		}
		g.hist.Observe(dur)
	}
}

// mutate posts a one-op opinion-drift batch at the given interval — small
// enough to keep repair cheap, real enough to exercise the full
// apply/repair/persist/swap pipeline under query load. Update latency is
// recorded separately from the query mix: on an async daemon the POST
// returns at accept time, so conflating it with query latency would make
// both distributions meaningless. With -wait-visible, each accepted
// update is chased by a minimal evaluate probe carrying the promised
// epoch as minEpoch — the daemon holds the probe until the batch is
// visible, so probe latency IS the accepted-to-visible lag.
func (g *loadgen) mutate(ctx context.Context, every time.Duration, count *atomic.Int64) {
	rng := rand.New(rand.NewSource(g.seed ^ 0x5ca1ab1e))
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		body := map[string]any{"ops": []map[string]any{{
			"op": "set_opinion", "candidate": g.target,
			"node": rng.Intn(g.n), "value": rng.Float64(),
		}}}
		start := time.Now()
		payload, err := g.postRead("/v1/datasets/"+g.dataset+"/updates", body)
		if err != nil {
			g.errors.Add(1)
			fmt.Fprintf(os.Stderr, "ovmload: update: %v\n", err)
			continue
		}
		g.updHist.Observe(time.Since(start))
		count.Add(1)
		if !g.waitVisible {
			continue
		}
		var acc struct {
			Epoch int64 `json:"epoch"`
		}
		if err := json.Unmarshal(payload, &acc); err != nil {
			g.errors.Add(1)
			fmt.Fprintf(os.Stderr, "ovmload: update response: %v\n", err)
			continue
		}
		probe := map[string]any{
			"dataset": g.dataset, "score": scoreSpec{Name: "cumulative"},
			"horizon": 1, "target": g.target, "seeds": []int32{0},
			"minEpoch": acc.Epoch,
		}
		probeStart := time.Now()
		if _, err := g.postRead("/v1/evaluate", probe); err != nil {
			g.errors.Add(1)
			fmt.Fprintf(os.Stderr, "ovmload: visibility probe: %v\n", err)
			continue
		}
		g.probes.Add(1)
		g.lagHist.Observe(time.Since(probeStart))
	}
}

// post sends one worker request; with -explain every query response must
// carry the explain block (updates and probes don't take the field).
func (g *loadgen) post(path string, body any) error {
	payload, err := g.postRead(path, body)
	if err != nil {
		return err
	}
	if g.explain && !strings.HasPrefix(path, "/v1/datasets/") {
		if !bytes.Contains(payload, []byte(`"explain":`)) {
			return fmt.Errorf("%s: response missing explain block", path)
		}
	}
	return nil
}

// postRead sends one request to completion and returns the response body —
// deliberately not tied to the run context, so the drain-at-deadline
// accounting stays exact (the client -timeout still bounds a hung daemon).
// A 429 (the daemon shedding compute) is retried up to -retries times with
// jittered backoff that honors the Retry-After header; the recorded
// latency spans the whole exchange including backoff, which is what the
// caller experienced.
func (g *loadgen) postRead(path string, body any) ([]byte, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	var resp *http.Response
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(http.MethodPost, g.addr+path, bytes.NewReader(b))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err = g.client.Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusTooManyRequests || attempt >= g.maxRetries {
			break
		}
		retryAfter := resp.Header.Get("Retry-After")
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		g.retried.Add(1)
		time.Sleep(backoff(retryAfter, attempt))
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return io.ReadAll(resp.Body)
}

// backoff picks the wait before a retry: the server's Retry-After when it
// sent one (integer seconds), else exponential from 100ms, both capped at
// 5s — then jittered uniformly over [base/2, base) so a herd of shed
// workers does not re-arrive in lockstep. The global rand is used for the
// jitter only; it never touches request generation, so runs stay
// reproducible where it matters.
func backoff(retryAfter string, attempt int) time.Duration {
	base := 100 * time.Millisecond << min(attempt, 5)
	if s, err := strconv.Atoi(retryAfter); err == nil && s > 0 {
		base = time.Duration(s) * time.Second
	}
	if base > 5*time.Second {
		base = 5 * time.Second
	}
	return base/2 + time.Duration(rand.Int63n(int64(base/2)))
}

func randomSeedSet(rng *rand.Rand, k, n int) []int32 {
	seen := make(map[int32]bool, k)
	out := make([]int32, 0, k)
	for len(out) < k {
		v := int32(rng.Intn(n))
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// datasetNodes reads the daemon's /stats and returns the node count of
// the target dataset (the seed-set generator needs the id range).
func datasetNodes(client *http.Client, addr, dataset string) int {
	resp, err := client.Get(addr + "/stats")
	if err != nil {
		fatal(fmt.Errorf("reading /stats (is ovmd up?): %w", err))
	}
	defer resp.Body.Close()
	var st struct {
		Datasets []struct {
			Name  string `json:"name"`
			Nodes int    `json:"nodes"`
		} `json:"datasets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		fatal(fmt.Errorf("decoding /stats: %w", err))
	}
	for _, d := range st.Datasets {
		if d.Name == dataset {
			return d.Nodes
		}
	}
	fatal(fmt.Errorf("dataset %q not registered on %s", dataset, addr))
	return 0
}

// requestHistogramCount sums the daemon's ovmd_request_duration_seconds
// _count series across every label set except the update endpoint — the
// number of query requests the daemon has observed.
func requestHistogramCount(client *http.Client, addr string) float64 {
	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		fatal(fmt.Errorf("reading /metrics: %w", err))
	}
	defer resp.Body.Close()
	var total float64
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "ovmd_request_duration_seconds_count") ||
			strings.Contains(line, `endpoint="updates"`) {
			continue
		}
		v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
		if err != nil {
			fatal(fmt.Errorf("bad /metrics line %q: %w", line, err))
		}
		total += v
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	return total
}

func round1(v float64) float64 {
	return float64(int64(v*10+0.5)) / 10
}

func checkFlag(ok bool, format string, args ...any) {
	cliutil.CheckFlag("ovmload", ok, format, args...)
}

func fatal(err error) { cliutil.Fatal("ovmload", err) }
