// Casestudy: the ACM-general-election scenario of §VIII-B on the DBLP
// stand-in. Two candidates with complementary research profiles compete
// for votes in a 7-domain collaboration network; seeding a small committee
// of influential researchers flips the plurality outcome, and the flipped
// voters are disproportionately the initially neutral ones.
package main

import (
	"fmt"
	"log"

	"ovm"
)

func main() {
	const (
		n       = 6000
		k       = 100
		horizon = 20
		seed    = 5
	)
	d, err := ovm.LoadDataset("dblp-like", ovm.DatasetOptions{N: n, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	target := d.DefaultTarget
	rival := 1 - target
	fmt.Printf("electorate: %d researchers across %d domains\n", n, len(d.DomainNames))
	fmt.Printf("candidates: %q (target) vs %q\n", d.CandidateNames[target], d.CandidateNames[rival])

	before, err := ovm.OpinionMatrix(d.Sys, horizon, target, nil)
	if err != nil {
		log.Fatal(err)
	}

	prob := &ovm.Problem{Sys: d.Sys, Target: target, Horizon: horizon, K: k, Score: ovm.Plurality()}
	sel, err := ovm.SelectSeeds(prob, ovm.MethodRW, &ovm.SelectOptions{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	after, err := ovm.OpinionMatrix(d.Sys, horizon, target, sel.Seeds)
	if err != nil {
		log.Fatal(err)
	}

	votesB := ovm.Plurality().Eval(before, target)
	votesA := ovm.Plurality().Eval(after, target)
	fmt.Printf("\nvotes for the target at t=%d: %5.0f (%.1f%%) without seeds\n",
		horizon, votesB, 100*votesB/n)
	fmt.Printf("                               %5.0f (%.1f%%) with %d seeds\n",
		votesA, 100*votesA/n, k)

	// Per-domain shift (the Table IV view).
	domTotal := make([]float64, len(d.DomainNames))
	domB := make([]float64, len(d.DomainNames))
	domA := make([]float64, len(d.DomainNames))
	prefers := func(B [][]float64, v int) bool { return B[target][v] > B[rival][v] }
	for v := 0; v < n; v++ {
		c := d.Community[v]
		domTotal[c]++
		if prefers(before, v) {
			domB[c]++
		}
		if prefers(after, v) {
			domA[c]++
		}
	}
	fmt.Println("\nper-domain support for the target (before -> after):")
	for c, name := range d.DomainNames {
		fmt.Printf("  %-4s %5.0f users: %5.1f%% -> %5.1f%%\n",
			name, domTotal[c], 100*domB[c]/domTotal[c], 100*domA[c]/domTotal[c])
	}

	// Seed domains: where did the campaign invest?
	seedDom := make([]int, len(d.DomainNames))
	for _, s := range sel.Seeds {
		seedDom[d.Community[s]]++
	}
	fmt.Println("\nseed placement per domain:")
	for c, name := range d.DomainNames {
		fmt.Printf("  %-4s %d seeds\n", name, seedDom[c])
	}

	// Neutrality of the flipped voters: their initial opinion gap is
	// smaller than the electorate's (the paper's closing observation).
	gap := func(v int) float64 {
		g := d.Sys.Candidate(target).Init[v] - d.Sys.Candidate(rival).Init[v]
		if g < 0 {
			return -g
		}
		return g
	}
	var flipGap, popGap float64
	flips := 0
	for v := 0; v < n; v++ {
		popGap += gap(v)
		if !prefers(before, v) && prefers(after, v) {
			flipGap += gap(v)
			flips++
		}
	}
	popGap /= float64(n)
	if flips > 0 {
		flipGap /= float64(flips)
		fmt.Printf("\n%d voters flipped to the target; their mean initial |gap| is %.3f vs %.3f population-wide\n",
			flips, flipGap, popGap)
		fmt.Println("(smaller gap = more neutral: the campaign targets persuadable voters)")
	}
}
