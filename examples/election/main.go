// Election: a four-party campaign on a Twitter-style network. The target
// party selects seed voters under the plurality score (one vote per user),
// compares the three proposed methods against classic influence
// maximization, and then solves FJ-Vote-Win: the minimum number of seeded
// supporters needed to overtake every rival at election day (the horizon).
package main

import (
	"fmt"
	"log"

	"ovm"
)

func main() {
	const (
		n       = 4000
		k       = 60
		horizon = 20 // "election day": opinions are polled at t = 20
		seed    = 7
	)
	d, err := ovm.LoadDataset("twitter-election-like", ovm.DatasetOptions{N: n, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	// Campaign for the trailing major party — the interesting case where
	// seeds are actually needed to win.
	target := 1
	fmt.Printf("network: %d users, %d retweet edges, %d parties; target %q\n",
		d.Sys.N(), d.Sys.Candidate(0).G.M(), d.Sys.R(), d.CandidateNames[target])

	// Standings at the horizon without any campaign.
	B, err := ovm.OpinionMatrix(d.Sys, horizon, target, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nplurality standings at t=20 with no seeding:")
	for q, name := range d.CandidateNames {
		fmt.Printf("  %-22s %6.0f votes\n", name, ovm.Plurality().Eval(B, q))
	}

	// FJ-Vote: k seeds under the plurality score, methods compared.
	fmt.Printf("\nselecting k=%d seeds (plurality):\n", k)
	for _, m := range []ovm.Method{ovm.MethodRS, ovm.MethodRW, ovm.MethodIC, ovm.MethodDC} {
		prob := &ovm.Problem{Sys: d.Sys, Target: target, Horizon: horizon, K: k, Score: ovm.Plurality()}
		sel, err := ovm.SelectSeeds(prob, m, &ovm.SelectOptions{Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		won, err := ovm.Wins(d.Sys, target, horizon, ovm.Plurality(), sel.Seeds)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s votes=%6.0f  wins=%-5v  (%s)\n", m, sel.ExactValue, won, sel.Elapsed.Round(1000000))
	}

	// FJ-Vote-Win: how many seeds does the target actually need?
	seeds, err := ovm.MinSeedsToWin(d.Sys, target, horizon, ovm.Plurality(), ovm.MethodRS, &ovm.SelectOptions{Seed: seed})
	switch err {
	case nil:
		fmt.Printf("\nminimum seeds for %q to win the plurality vote: k* = %d\n",
			d.CandidateNames[target], len(seeds))
	case ovm.ErrCannotWin:
		fmt.Println("\nthe target cannot win this electorate at any budget")
	default:
		log.Fatal(err)
	}

	// The Copeland view: one-on-one head-to-head records.
	fmt.Println("\nCopeland scores at t=20 with no seeding (head-to-head wins):")
	for q, name := range d.CandidateNames {
		fmt.Printf("  %-22s %4.0f / %d\n", name, ovm.Copeland().Eval(B, q), d.Sys.R()-1)
	}
}
