// Quickstart: rebuild the paper's running example (Figure 1 / Table I)
// through the public API, diffuse opinions with the Friedkin–Johnsen
// model, evaluate all five voting scores, and pick the optimal seed for
// each of them.
package main

import (
	"fmt"
	"log"

	"ovm"
)

func main() {
	// The Fig-1 influence graph: users 1 and 2 influence user 3, user 3
	// influences user 4 (0-indexed below). Self-loops carry the weight a
	// user puts on her own previous opinion; FromEdges normalizes each
	// node's incoming weights to sum to 1.
	edges := []ovm.Edge{
		{From: 0, To: 2, W: 0.25},
		{From: 1, To: 2, W: 0.25},
		{From: 2, To: 2, W: 0.5},
		{From: 2, To: 3, W: 0.5},
		{From: 3, To: 3, W: 0.5},
	}
	g, err := ovm.FromEdges(4, edges)
	if err != nil {
		log.Fatal(err)
	}

	// Two candidates with the Table-I initial opinions; nobody is stubborn.
	zeros := make([]float64, 4)
	c1 := &ovm.Candidate{Name: "c1", G: g, Init: []float64{0.40, 0.80, 0.60, 0.90}, Stub: append([]float64{}, zeros...)}
	c2 := &ovm.Candidate{Name: "c2", G: g, Init: []float64{0.35, 0.75, 1.00, 0.80}, Stub: append([]float64{}, zeros...)}
	sys, err := ovm.NewSystem([]*ovm.Candidate{c1, c2})
	if err != nil {
		log.Fatal(err)
	}

	// Opinions at the horizon t = 1 without seeds.
	B, err := ovm.OpinionMatrix(sys, 1, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("opinions about c1 at t=1:", format(B[0]))
	fmt.Println("opinions about c2 at t=1:", format(B[1]))

	// All five voting scores for the target candidate c1.
	scores := []ovm.Score{
		ovm.Cumulative(), ovm.Plurality(), ovm.PApproval(2),
		ovm.Positional(2, []float64{1, 0.5}), ovm.Copeland(),
	}
	for _, s := range scores {
		fmt.Printf("%-24s F(c1) = %.2f\n", s.Name(), s.Eval(B, 0))
	}

	// The optimal single seed differs per score (Example 2 of the paper):
	// cumulative picks user 1, plurality picks user 3.
	fmt.Println("\noptimal single seed per score (exact DM greedy):")
	for _, s := range scores {
		prob := &ovm.Problem{Sys: sys, Target: 0, Horizon: 1, K: 1, Score: s}
		sel, err := ovm.SelectSeeds(prob, ovm.MethodDM, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s seed user %d -> score %.2f\n", s.Name(), sel.Seeds[0]+1, sel.ExactValue)
	}

	// Seeding user 3 makes c1 the Condorcet winner.
	B3, err := ovm.OpinionMatrix(sys, 1, 0, []int32{2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith seed user 3, Condorcet winner: candidate %d (0 = c1)\n", ovm.CondorcetWinner(B3))
}

func format(xs []float64) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.3f", x)
	}
	return out
}
