// Streaming: a p-approval / positional-p-approval scenario from the
// paper's introduction — users hold memberships of up to p streaming
// platforms, and platforms prefer being ranked higher because users buy
// premium tiers only for their favourites.
//
// This example runs the scenario the way a production deployment would:
// build the world once, precompute a serving index (ovm.BuildIndex), start
// an ovmd-style daemon on a loopback port, and then act as an HTTP client —
// issuing the three campaign queries over the wire, re-issuing one to show
// the response cache, and checking /stats. Every seed set returned by the
// daemon is bit-identical to the direct ovm.SelectSeeds call.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"time"

	"ovm"
)

func main() {
	const (
		n       = 3000
		k       = 40
		horizon = 15
		seed    = 11
		theta   = 8192 // sketch count precomputed into the index
	)
	platforms := []string{"NordStream", "FlixHub", "PrimeView", "CineMax", "DocuPlus", "AnimeBay"}

	sys := buildWorld(n, seed, platforms)
	target := 0 // NordStream runs the campaign

	// Precompute the serving index once — this is what `ovmd -build-index`
	// persists to disk; here it stays in memory.
	buildStart := time.Now()
	idx, err := ovm.BuildIndex(sys, ovm.IndexBuildOptions{
		Target:      target,
		Horizon:     horizon,
		Seed:        seed,
		SketchTheta: theta,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index built in %s (1 sketch artifact, θ=%d)\n", time.Since(buildStart).Round(time.Millisecond), theta)

	// Start the daemon on a loopback port.
	svc := ovm.NewQueryService(ovm.QueryServiceConfig{})
	if err := svc.AddIndex("streaming", idx); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: svc.Handler()}
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Printf("ovmd serving on %s\n\n", base)

	fmt.Printf("market: %d users, %d platforms; campaign by %q, horizon t=%d\n",
		n, len(platforms), platforms[target], horizon)

	// Three campaign objectives, same budget: the chosen influencers shift
	// as the objective counts second and third memberships (Fig 9's point).
	objectives := []struct {
		label string
		score ovm.ScoreSpec
	}{
		{"plurality (favourite only)", ovm.ScoreSpec{Name: "plurality"}},
		{"2-approval (any top-2 membership)", ovm.ScoreSpec{Name: "p-approval", P: 2}},
		{"positional-2 (premium tiers favour rank 1)", ovm.ScoreSpec{Name: "positional", P: 2, Omega: []float64{1, 0.4}}},
	}
	fmt.Printf("\nselecting k=%d influencers via HTTP (RS sketches from the index):\n", k)
	var pluralitySeeds []int32
	for i, obj := range objectives {
		resp := postSelect(base, &ovm.SelectSeedsRequest{
			Dataset: "streaming",
			Method:  "RS",
			Score:   obj.score,
			K:       k,
			Horizon: horizon,
			Target:  target,
			Seed:    seed,
			Theta:   theta,
		})
		if i == 0 {
			pluralitySeeds = resp.Seeds
		}
		fmt.Printf("  %-44s score %8.1f  fromIndex=%-5v %6.1fms  overlap w/ plurality seeds %4.0f%%\n",
			obj.label, resp.ExactValue, resp.FromIndex, resp.ElapsedMs, overlapPct(resp.Seeds, pluralitySeeds))
	}

	// The same query again: served from the LRU cache, microseconds.
	again := postSelect(base, &ovm.SelectSeedsRequest{
		Dataset: "streaming", Method: "RS", Score: ovm.ScoreSpec{Name: "plurality"},
		K: k, Horizon: horizon, Target: target, Seed: seed, Theta: theta,
	})
	fmt.Printf("\nrepeat plurality query: cached=%v in %.3fms\n", again.Cached, again.ElapsedMs)

	// Cross-check the daemon against the direct library call.
	opts := &ovm.SelectOptions{Seed: seed}
	opts.RS.FixedTheta = theta
	direct, err := ovm.SelectSeeds(&ovm.Problem{
		Sys: sys, Target: target, Horizon: horizon, K: k, Score: ovm.Plurality(),
	}, ovm.MethodRS, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("daemon == direct library result: %v\n", equalSeeds(direct.Seeds, pluralitySeeds) && direct.ExactValue == again.ExactValue)

	var stats ovm.ServiceStats
	getJSON(base+"/stats", &stats)
	fmt.Printf("daemon stats: %d requests, %d computed, cache hit rate %.0f%%\n",
		stats.Requests, stats.Computations, 100*stats.CacheHitRate)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
}

// buildWorld synthesizes the streaming market: a preferential-attachment
// friendship graph, six platform candidates with taste-driven initial
// opinions, and partially stubborn users.
func buildWorld(n int, seed int64, platforms []string) *ovm.System {
	edges, err := ovm.PreferentialAttachmentEdges(n, 5, seed)
	if err != nil {
		log.Fatal(err)
	}
	g, err := ovm.FromEdges(n, edges)
	if err != nil {
		log.Fatal(err)
	}
	// Each platform has a genre profile; each user a taste vector.
	r := rand.New(rand.NewSource(seed))
	const genres = 4
	taste := make([][]float64, n)
	for v := range taste {
		taste[v] = make([]float64, genres)
		for i := range taste[v] {
			taste[v][i] = r.Float64()
		}
	}
	cands := make([]*ovm.Candidate, len(platforms))
	for q, name := range platforms {
		profile := make([]float64, genres)
		for i := range profile {
			profile[i] = r.Float64()
		}
		init := make([]float64, n)
		stub := make([]float64, n)
		for v := 0; v < n; v++ {
			dot, norm := 0.0, 0.0
			for i := 0; i < genres; i++ {
				dot += taste[v][i] * profile[i]
				norm += profile[i] * profile[i]
			}
			init[v] = clamp(dot / (norm + 1))
			stub[v] = 0.2 + 0.6*r.Float64() // partially stubborn viewers
		}
		cands[q] = &ovm.Candidate{Name: name, G: g, Init: init, Stub: stub}
	}
	sys, err := ovm.NewSystem(cands)
	if err != nil {
		log.Fatal(err)
	}
	return sys
}

func postSelect(base string, req *ovm.SelectSeedsRequest) *ovm.SelectSeedsResponse {
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	httpResp, err := http.Post(base+"/v1/select-seeds", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		var e map[string]any
		_ = json.NewDecoder(httpResp.Body).Decode(&e)
		log.Fatalf("select-seeds: HTTP %d: %v", httpResp.StatusCode, e)
	}
	var resp ovm.SelectSeedsResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		log.Fatal(err)
	}
	return &resp
}

func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}

func clamp(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func equalSeeds(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func overlapPct(a, b []int32) float64 {
	if len(a) == 0 {
		return 0
	}
	set := map[int32]bool{}
	for _, v := range b {
		set[v] = true
	}
	c := 0
	for _, v := range a {
		if set[v] {
			c++
		}
	}
	return 100 * float64(c) / float64(len(a))
}
