// Streaming: a p-approval / positional-p-approval scenario from the
// paper's introduction — users hold memberships of up to p streaming
// platforms, and platforms prefer being ranked higher because users buy
// premium tiers only for their favourites. The world is built from scratch
// with the public API: a preferential-attachment friendship graph, six
// platform candidates with taste-driven initial opinions, and partially
// stubborn users.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ovm"
)

func main() {
	const (
		n       = 3000
		k       = 40
		horizon = 15
		seed    = 11
	)
	platforms := []string{"NordStream", "FlixHub", "PrimeView", "CineMax", "DocuPlus", "AnimeBay"}

	edges, err := ovm.PreferentialAttachmentEdges(n, 5, seed)
	if err != nil {
		log.Fatal(err)
	}
	g, err := ovm.FromEdges(n, edges)
	if err != nil {
		log.Fatal(err)
	}

	// Each platform has a genre profile; each user a taste vector.
	r := rand.New(rand.NewSource(seed))
	const genres = 4
	taste := make([][]float64, n)
	for v := range taste {
		taste[v] = make([]float64, genres)
		for i := range taste[v] {
			taste[v][i] = r.Float64()
		}
	}
	cands := make([]*ovm.Candidate, len(platforms))
	for q, name := range platforms {
		profile := make([]float64, genres)
		for i := range profile {
			profile[i] = r.Float64()
		}
		init := make([]float64, n)
		stub := make([]float64, n)
		for v := 0; v < n; v++ {
			dot, norm := 0.0, 0.0
			for i := 0; i < genres; i++ {
				dot += taste[v][i] * profile[i]
				norm += profile[i] * profile[i]
			}
			init[v] = clamp(dot / (norm + 1))
			stub[v] = 0.2 + 0.6*r.Float64() // partially stubborn viewers
		}
		cands[q] = &ovm.Candidate{Name: name, G: g, Init: init, Stub: stub}
	}
	sys, err := ovm.NewSystem(cands)
	if err != nil {
		log.Fatal(err)
	}

	target := 0 // NordStream runs the campaign
	B, err := ovm.OpinionMatrix(sys, horizon, target, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("market: %d users, %d platforms; campaign by %q, horizon t=%d\n",
		n, len(platforms), platforms[target], horizon)
	fmt.Println("\nsubscriber counts at the horizon without seeding:")
	fmt.Printf("  %-12s %10s %14s %14s\n", "platform", "top choice", "top-2 member", "top-3 member")
	for q, name := range platforms {
		fmt.Printf("  %-12s %10.0f %14.0f %14.0f\n", name,
			ovm.Plurality().Eval(B, q), ovm.PApproval(2).Eval(B, q), ovm.PApproval(3).Eval(B, q))
	}

	// Three campaign objectives, same budget: the chosen influencers shift
	// as the objective counts second and third memberships (Fig 9's point).
	objectives := []struct {
		label string
		score ovm.Score
	}{
		{"plurality (favourite only)", ovm.Plurality()},
		{"2-approval (any top-2 membership)", ovm.PApproval(2)},
		{"positional-2 (premium tiers favour rank 1)", ovm.Positional(2, []float64{1, 0.4})},
	}
	fmt.Printf("\nselecting k=%d influencers with the RS sketch method:\n", k)
	var pluralitySeeds []int32
	for i, obj := range objectives {
		prob := &ovm.Problem{Sys: sys, Target: target, Horizon: horizon, K: k, Score: obj.score}
		sel, err := ovm.SelectSeeds(prob, ovm.MethodRS, &ovm.SelectOptions{Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			pluralitySeeds = sel.Seeds
		}
		fmt.Printf("  %-44s score %8.1f  overlap w/ plurality seeds %4.0f%%\n",
			obj.label, sel.ExactValue, overlapPct(sel.Seeds, pluralitySeeds))
	}
}

func clamp(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func overlapPct(a, b []int32) float64 {
	if len(a) == 0 {
		return 0
	}
	set := map[int32]bool{}
	for _, v := range b {
		set[v] = true
	}
	c := 0
	for _, v := range a {
		if set[v] {
			c++
		}
	}
	return 100 * float64(c) / float64(len(a))
}
