// Streaming: a p-approval / positional-p-approval scenario from the
// paper's introduction — users hold memberships of up to p streaming
// platforms, and platforms prefer being ranked higher because users buy
// premium tiers only for their favourites.
//
// This example runs the scenario the way a production deployment would:
// build the world once, precompute a serving index (ovm.BuildIndex), start
// an ovmd-style daemon on a loopback port, and then act as an HTTP client —
// issuing the three campaign queries over the wire, re-issuing one to show
// the response cache, and checking /stats. Every seed set returned by the
// daemon is bit-identical to the direct ovm.SelectSeeds call.
//
// The market then goes live: three "days" of mutations (viewers drifting
// toward rival platforms, new follow edges) are POSTed to the running
// daemon via /v1/datasets/{name}/updates. Each batch bumps the dataset
// epoch, incrementally repairs the sketch index (only invalidated walks
// regenerate), and the current market winner is tracked flipping over time
// — with the post-update answers still byte-identical to a direct library
// call on the mutated system.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"time"

	"ovm"
)

func main() {
	const (
		n       = 3000
		k       = 40
		horizon = 15
		seed    = 11
		theta   = 8192 // sketch count precomputed into the index
	)
	platforms := []string{"NordStream", "FlixHub", "PrimeView", "CineMax", "DocuPlus", "AnimeBay"}

	sys := buildWorld(n, seed, platforms)
	target := 0 // NordStream runs the campaign

	// Precompute the serving index once — this is what `ovmd -build-index`
	// persists to disk; here it stays in memory.
	buildStart := time.Now()
	idx, err := ovm.BuildIndex(sys, ovm.IndexBuildOptions{
		Target:      target,
		Horizon:     horizon,
		Seed:        seed,
		SketchTheta: theta,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index built in %s (1 sketch artifact, θ=%d)\n", time.Since(buildStart).Round(time.Millisecond), theta)

	// Start the daemon on a loopback port.
	svc := ovm.NewQueryService(ovm.QueryServiceConfig{})
	if err := svc.AddIndex("streaming", idx); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: svc.Handler()}
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Printf("ovmd serving on %s\n\n", base)

	fmt.Printf("market: %d users, %d platforms; campaign by %q, horizon t=%d\n",
		n, len(platforms), platforms[target], horizon)

	// Three campaign objectives, same budget: the chosen influencers shift
	// as the objective counts second and third memberships (Fig 9's point).
	objectives := []struct {
		label string
		score ovm.ScoreSpec
	}{
		{"plurality (favourite only)", ovm.ScoreSpec{Name: "plurality"}},
		{"2-approval (any top-2 membership)", ovm.ScoreSpec{Name: "p-approval", P: 2}},
		{"positional-2 (premium tiers favour rank 1)", ovm.ScoreSpec{Name: "positional", P: 2, Omega: []float64{1, 0.4}}},
	}
	fmt.Printf("\nselecting k=%d influencers via HTTP (RS sketches from the index):\n", k)
	var pluralitySeeds []int32
	for i, obj := range objectives {
		resp := postSelect(base, &ovm.SelectSeedsRequest{
			Dataset: "streaming",
			Method:  "RS",
			Score:   obj.score,
			K:       k,
			Horizon: horizon,
			Target:  target,
			Seed:    seed,
			Theta:   theta,
		})
		if i == 0 {
			pluralitySeeds = resp.Seeds
		}
		fmt.Printf("  %-44s score %8.1f  fromIndex=%-5v %6.1fms  overlap w/ plurality seeds %4.0f%%\n",
			obj.label, resp.ExactValue, resp.FromIndex, resp.ElapsedMs, overlapPct(resp.Seeds, pluralitySeeds))
	}

	// The same query again: served from the LRU cache, microseconds.
	again := postSelect(base, &ovm.SelectSeedsRequest{
		Dataset: "streaming", Method: "RS", Score: ovm.ScoreSpec{Name: "plurality"},
		K: k, Horizon: horizon, Target: target, Seed: seed, Theta: theta,
	})
	fmt.Printf("\nrepeat plurality query: cached=%v in %.3fms\n", again.Cached, again.ElapsedMs)

	// Cross-check the daemon against the direct library call.
	opts := &ovm.SelectOptions{Seed: seed}
	opts.RS.FixedTheta = theta
	direct, err := ovm.SelectSeeds(&ovm.Problem{
		Sys: sys, Target: target, Horizon: horizon, K: k, Score: ovm.Plurality(),
	}, ovm.MethodRS, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("daemon == direct library result: %v\n", equalSeeds(direct.Seeds, pluralitySeeds) && direct.ExactValue == again.ExactValue)

	var stats ovm.ServiceStats
	getJSON(base+"/stats", &stats)
	fmt.Printf("daemon stats: %d requests, %d computed, cache hit rate %.0f%%\n",
		stats.Requests, stats.Computations, 100*stats.CacheHitRate)

	// ------------------------------------------------------------------
	// The market goes live: viewers churn, follows appear, and the daemon
	// absorbs it all through POST /v1/datasets/streaming/updates — no
	// rebuild, no restart, monotonic epochs.
	// ------------------------------------------------------------------
	fmt.Printf("\n-- live market: three days of churn --\n")
	fmt.Printf("day 0 (epoch 0): winner by plurality is %s\n",
		platforms[marketWinner(base, len(platforms), horizon)])

	var applied []ovm.UpdateBatch
	for day := 1; day <= 3; day++ {
		rival := day % len(platforms) // today's surging platform
		batch := churnBatch(n, day, rival)
		upd := postUpdates(base, "streaming", batch)
		applied = append(applied, batch)
		win := marketWinner(base, len(platforms), horizon)
		fmt.Printf("day %d (epoch %d): %4d ops, %d nodes touched, %d/%d sketch walks regenerated (%.1f%%) → winner %s\n",
			day, upd.Epoch, len(batch), upd.NodesTouched, upd.WalksInvalidated, upd.WalksTotal,
			100*float64(upd.WalksInvalidated)/float64(upd.WalksTotal), platforms[win])
	}

	// The campaign re-plans on the mutated market: the repaired sketch
	// index still serves (fromIndex), at the new epoch, and the answer is
	// byte-identical to a direct library call on the same mutated system.
	postMutation := postSelect(base, &ovm.SelectSeedsRequest{
		Dataset: "streaming", Method: "RS", Score: ovm.ScoreSpec{Name: "plurality"},
		K: k, Horizon: horizon, Target: target, Seed: seed, Theta: theta,
	})
	fmt.Printf("\nre-planned campaign at epoch %d: fromIndex=%v, %.1fms, overlap with day-0 seeds %.0f%%\n",
		postMutation.Epoch, postMutation.FromIndex, postMutation.ElapsedMs, overlapPct(postMutation.Seeds, pluralitySeeds))

	mutatedSys, _, err := ovm.ReplayUpdates(sys, applied)
	if err != nil {
		log.Fatal(err)
	}
	directMut, err := ovm.SelectSeeds(&ovm.Problem{
		Sys: mutatedSys, Target: target, Horizon: horizon, K: k, Score: ovm.Plurality(),
	}, ovm.MethodRS, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("daemon (incremental repair) == direct library on mutated graph: %v\n",
		equalSeeds(directMut.Seeds, postMutation.Seeds) && directMut.ExactValue == postMutation.ExactValue)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
}

// churnBatch synthesizes one day of market churn: a block of viewers drifts
// hard toward the rival platform (opinion + stubbornness), and a handful of
// new follow edges route influence into the drifted block.
func churnBatch(n, day, rival int) ovm.UpdateBatch {
	var batch ovm.UpdateBatch
	lo := (day * 700) % n
	for i := 0; i < 400; i++ {
		v := int32((lo + i) % n)
		batch = append(batch,
			ovm.UpdateOp{Kind: ovm.OpSetOpinion, Cand: rival, Node: v, Value: 0.99},
			ovm.UpdateOp{Kind: ovm.OpSetStubbornness, Cand: rival, Node: v, Value: 0.9},
		)
	}
	for i := 0; i < 10; i++ {
		from := int32((lo + i) % n)
		to := int32((lo + 400 + 31*i) % n)
		if from != to {
			batch = append(batch, ovm.UpdateOp{Kind: ovm.OpAddEdge, From: from, To: to, W: 1})
		}
	}
	return batch
}

// marketWinner asks the daemon for every platform's seedless plurality
// score and returns the argmax — the platform currently winning the vote.
func marketWinner(base string, platforms, horizon int) int {
	best, bestScore := 0, -1.0
	for q := 0; q < platforms; q++ {
		var resp ovm.EvaluateResponse
		postJSON(base+"/v1/evaluate", &ovm.EvaluateRequest{
			Dataset: "streaming", Score: ovm.ScoreSpec{Name: "plurality"},
			Horizon: horizon, Target: q,
		}, &resp)
		if resp.Value > bestScore {
			best, bestScore = q, resp.Value
		}
	}
	return best
}

func postUpdates(base, dataset string, batch ovm.UpdateBatch) *ovm.ApplyUpdatesResponse {
	var resp ovm.ApplyUpdatesResponse
	postJSON(base+"/v1/datasets/"+dataset+"/updates", &ovm.ApplyUpdatesRequest{Ops: batch}, &resp)
	return &resp
}

// buildWorld synthesizes the streaming market: a preferential-attachment
// friendship graph, six platform candidates with taste-driven initial
// opinions, and partially stubborn users.
func buildWorld(n int, seed int64, platforms []string) *ovm.System {
	edges, err := ovm.PreferentialAttachmentEdges(n, 5, seed)
	if err != nil {
		log.Fatal(err)
	}
	g, err := ovm.FromEdges(n, edges)
	if err != nil {
		log.Fatal(err)
	}
	// Each platform has a genre profile; each user a taste vector.
	r := rand.New(rand.NewSource(seed))
	const genres = 4
	taste := make([][]float64, n)
	for v := range taste {
		taste[v] = make([]float64, genres)
		for i := range taste[v] {
			taste[v][i] = r.Float64()
		}
	}
	cands := make([]*ovm.Candidate, len(platforms))
	for q, name := range platforms {
		profile := make([]float64, genres)
		for i := range profile {
			profile[i] = r.Float64()
		}
		init := make([]float64, n)
		stub := make([]float64, n)
		for v := 0; v < n; v++ {
			dot, norm := 0.0, 0.0
			for i := 0; i < genres; i++ {
				dot += taste[v][i] * profile[i]
				norm += profile[i] * profile[i]
			}
			init[v] = clamp(dot / (norm + 1))
			stub[v] = 0.2 + 0.6*r.Float64() // partially stubborn viewers
		}
		cands[q] = &ovm.Candidate{Name: name, G: g, Init: init, Stub: stub}
	}
	sys, err := ovm.NewSystem(cands)
	if err != nil {
		log.Fatal(err)
	}
	return sys
}

func postSelect(base string, req *ovm.SelectSeedsRequest) *ovm.SelectSeedsResponse {
	var resp ovm.SelectSeedsResponse
	postJSON(base+"/v1/select-seeds", req, &resp)
	return &resp
}

// postJSON posts a JSON request body and decodes the JSON response into
// out, failing loudly on any transport or application error.
func postJSON(url string, req, out any) {
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	httpResp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		var e map[string]any
		_ = json.NewDecoder(httpResp.Body).Decode(&e)
		log.Fatalf("%s: HTTP %d: %v", url, httpResp.StatusCode, e)
	}
	if err := json.NewDecoder(httpResp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}

func clamp(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func equalSeeds(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func overlapPct(a, b []int32) float64 {
	if len(a) == 0 {
		return 0
	}
	set := map[int32]bool{}
	for _, v := range b {
		set[v] = true
	}
	c := 0
	for _, v := range a {
		if set[v] {
			c++
		}
	}
	return 100 * float64(c) / float64(len(a))
}
