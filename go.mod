module ovm

go 1.24
