// Package baselines implements the competing seed-selection strategies of
// §VIII-A: classic influence maximization under the IC and LT models via
// IMM [3], the GED-T greedy of Gionis et al. [25] adapted to a finite time
// horizon, PageRank, random walk with restart (RWR), and degree centrality.
// All baselines differ only in how they pick seeds; the experiment harness
// evaluates every method's seed set in the same multi-campaign FJ + voting
// setting (as the paper does).
package baselines

import (
	"context"
	"fmt"
	"math"
	"slices"

	"ovm/internal/core"
	"ovm/internal/graph"
	"ovm/internal/im"
	"ovm/internal/voting"
)

// Method identifies a baseline.
type Method string

// The baselines of §VIII-A.
const (
	MethodIC   Method = "IC"    // IMM with the independent cascade model
	MethodLT   Method = "LT"    // IMM with the linear threshold model
	MethodGEDT Method = "GED-T" // [25]'s greedy, horizon-adapted (cumulative objective)
	MethodPR   Method = "PR"    // PageRank
	MethodRWR  Method = "RWR"   // random walk with restart on the reverse influence graph
	MethodDC   Method = "DC"    // degree centrality
)

// Methods lists all baselines in the paper's presentation order.
var Methods = []Method{MethodIC, MethodLT, MethodGEDT, MethodPR, MethodRWR, MethodDC}

// Config bundles baseline parameters.
type Config struct {
	// IMM holds the IC/LT sampling parameters.
	IMM im.IMMConfig
	// Damping is the PageRank/RWR restart complement (default 0.85).
	Damping float64
	// PowerIters bounds the PageRank/RWR power iteration (default 100).
	PowerIters int
	// PowerTol is the L1 convergence tolerance (default 1e-10).
	PowerTol float64
	// Parallelism caps the engine worker pool for the sampling-based
	// baselines (IC/LT RR-set generation, GED-T greedy evaluation): 0 means
	// GOMAXPROCS, 1 disables concurrency. Selected seeds are bit-identical
	// across Parallelism values. It seeds IMM.Parallelism when that is 0.
	Parallelism int
	// RRCache optionally supplies a precomputed RR-set collection for the
	// IC/LT baselines (a loaded ovmd index artifact). It is consulted only
	// when its model matches the requested baseline; the IMM run copies
	// cached set prefixes instead of re-sampling them and stays
	// byte-identical to an uncached run. The cache must stem from the same
	// graph and IMM stream (seed IMM.Seed) — im.IMMCached rejects mismatches.
	RRCache *im.RRCollection
}

func (c Config) withDefaults() Config {
	if c.Damping == 0 {
		c.Damping = 0.85
	}
	if c.PowerIters == 0 {
		c.PowerIters = 100
	}
	if c.PowerTol == 0 {
		c.PowerTol = 1e-10
	}
	return c
}

// Select runs the named baseline for the problem's (graph, k), ignoring the
// problem's voting score except for GED-T (which maximizes the cumulative
// score no matter the target score, as in the paper).
func Select(m Method, p *core.Problem, cfg Config) ([]int32, error) {
	cfg = cfg.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cfg.IMM.Parallelism == 0 {
		cfg.IMM.Parallelism = cfg.Parallelism
	}
	if cfg.IMM.Ctx == nil {
		cfg.IMM.Ctx = p.Ctx
	}
	g := p.Sys.Candidate(p.Target).G
	rrCache := func(model im.Model) *im.RRCollection {
		if cfg.RRCache != nil && cfg.RRCache.Model() == model {
			return cfg.RRCache
		}
		return nil
	}
	switch m {
	case MethodIC:
		res, err := im.IMMCached(g, im.IC, p.K, cfg.IMM, rrCache(im.IC))
		if err != nil {
			return nil, err
		}
		return res.Seeds, nil
	case MethodLT:
		res, err := im.IMMCached(g, im.LT, p.K, cfg.IMM, rrCache(im.LT))
		if err != nil {
			return nil, err
		}
		return res.Seeds, nil
	case MethodGEDT:
		q := *p
		q.Score = voting.Cumulative{}
		seeds, _, err := core.SelectSeedsDM(&q, cfg.Parallelism)
		return seeds, err
	case MethodPR:
		scores, err := pageRankCtx(p.Ctx, g, cfg.Damping, cfg.PowerIters, cfg.PowerTol)
		if err != nil {
			return nil, err
		}
		return TopK(scores, p.K), nil
	case MethodRWR:
		scores, err := reverseRWRCtx(p.Ctx, g, cfg.Damping, cfg.PowerIters, cfg.PowerTol)
		if err != nil {
			return nil, err
		}
		return TopK(scores, p.K), nil
	case MethodDC:
		return TopK(WeightedOutDegree(g), p.K), nil
	default:
		return nil, fmt.Errorf("baselines: unknown method %q", m)
	}
}

// PageRank computes the classic PageRank vector: a random surfer follows
// out-edges (normalized by total out-weight) with probability damping and
// teleports uniformly otherwise; dangling nodes always teleport.
func PageRank(g *graph.Graph, damping float64, iters int, tol float64) []float64 {
	scores, _ := pageRankCtx(nil, g, damping, iters, tol)
	return scores
}

// pageRankCtx is PageRank with a per-power-iteration cancellation poll.
func pageRankCtx(ctx context.Context, g *graph.Graph, damping float64, iters int, tol float64) ([]float64, error) {
	n := g.N()
	cur := make([]float64, n)
	next := make([]float64, n)
	outSum := make([]float64, n)
	for v := int32(0); v < int32(n); v++ {
		_, w := g.OutNeighbors(v)
		for _, x := range w {
			outSum[v] += x
		}
	}
	for v := range cur {
		cur[v] = 1 / float64(n)
	}
	for it := 0; it < iters; it++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		dangling := 0.0
		for v := range next {
			next[v] = 0
		}
		for v := int32(0); v < int32(n); v++ {
			if outSum[v] <= 0 {
				dangling += cur[v]
				continue
			}
			dst, w := g.OutNeighbors(v)
			for i, u := range dst {
				next[u] += damping * cur[v] * w[i] / outSum[v]
			}
		}
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		diff := 0.0
		for v := range next {
			next[v] += base
			diff += math.Abs(next[v] - cur[v])
		}
		cur, next = next, cur
		if diff < tol {
			break
		}
	}
	return cur, nil
}

// ReverseRWR computes a random-walk-with-restart score on the reverse
// influence graph: the walker moves from a node to one of its influencers
// (in-neighbors, with probability equal to the column-stochastic influence
// weight) with probability damping and restarts uniformly otherwise.
// Frequently visited nodes are strong influencers at any horizon — this is
// the RWR baseline of [25] recast in our weight convention.
func ReverseRWR(g *graph.Graph, damping float64, iters int, tol float64) []float64 {
	scores, _ := reverseRWRCtx(nil, g, damping, iters, tol)
	return scores
}

// reverseRWRCtx is ReverseRWR with a per-power-iteration cancellation poll.
func reverseRWRCtx(ctx context.Context, g *graph.Graph, damping float64, iters int, tol float64) ([]float64, error) {
	n := g.N()
	cur := make([]float64, n)
	next := make([]float64, n)
	for v := range cur {
		cur[v] = 1 / float64(n)
	}
	for it := 0; it < iters; it++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		for v := range next {
			next[v] = (1 - damping) / float64(n)
		}
		// Reverse transition: mass at v flows to its in-neighbors u with
		// probability w_uv (in-weights sum to 1 per node).
		for v := int32(0); v < int32(n); v++ {
			src, w := g.InNeighbors(v)
			for i, u := range src {
				next[u] += damping * cur[v] * w[i]
			}
		}
		diff := 0.0
		for v := range next {
			diff += math.Abs(next[v] - cur[v])
		}
		cur, next = next, cur
		if diff < tol {
			break
		}
	}
	return cur, nil
}

// WeightedOutDegree returns each node's total out-edge weight (the DC
// baseline's ranking key).
func WeightedOutDegree(g *graph.Graph) []float64 {
	n := g.N()
	out := make([]float64, n)
	for v := int32(0); v < int32(n); v++ {
		_, w := g.OutNeighbors(v)
		for _, x := range w {
			out[v] += x
		}
	}
	return out
}

// TopK returns the indices of the k largest scores (ties broken by lower
// index, for determinism).
func TopK(scores []float64, k int) []int32 {
	idx := make([]int32, len(scores))
	for i := range idx {
		idx[i] = int32(i)
	}
	slices.SortFunc(idx, func(a, b int32) int {
		switch {
		case scores[a] > scores[b]:
			return -1
		case scores[a] < scores[b]:
			return 1
		}
		return int(a) - int(b)
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
