package baselines_test

import (
	"math"
	"testing"

	"ovm/internal/baselines"
	"ovm/internal/core"
	"ovm/internal/graph"
	"ovm/internal/im"
	"ovm/internal/paperexample"
	"ovm/internal/voting"
)

func paperProblem(t *testing.T, score voting.Score, k int) *core.Problem {
	t.Helper()
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	return &core.Problem{Sys: sys, Target: 0, Horizon: 1, K: k, Score: score}
}

func TestTopK(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.9}
	got := baselines.TopK(scores, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("TopK = %v, want [1 3] (ties by index)", got)
	}
	if got := baselines.TopK(scores, 10); len(got) != 4 {
		t.Errorf("k>n should clamp: %v", got)
	}
}

func TestWeightedOutDegree(t *testing.T) {
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	g := sys.Candidate(0).G
	deg := baselines.WeightedOutDegree(g)
	// Node 2 has out-edges 2→2 (0.5) and 2→3 (0.5) → 1.0;
	// node 0 has 0→0 (1) and 0→2 (0.25) → 1.25.
	if math.Abs(deg[0]-1.25) > 1e-12 {
		t.Errorf("deg[0] = %v, want 1.25", deg[0])
	}
	if math.Abs(deg[2]-1.0) > 1e-12 {
		t.Errorf("deg[2] = %v, want 1.0", deg[2])
	}
}

func TestPageRankUniformOnRegularGraph(t *testing.T) {
	// Symmetric cycle: PageRank must be uniform.
	n := 8
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		_ = b.AddEdge(int32(v), int32((v+1)%n), 1)
	}
	g, err := b.BuildColumnStochastic()
	if err != nil {
		t.Fatal(err)
	}
	pr := baselines.PageRank(g, 0.85, 200, 1e-12)
	for v := range pr {
		if math.Abs(pr[v]-1.0/float64(n)) > 1e-9 {
			t.Errorf("pr[%d] = %v, want uniform %v", v, pr[v], 1.0/float64(n))
		}
	}
	// Sums to 1.
	sum := 0.0
	for _, x := range pr {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("PageRank sums to %v", sum)
	}
}

func TestPageRankPrefersPopular(t *testing.T) {
	// Star pointing at node 0 (raw weights — PageRank does not require
	// column-stochastic input, and normalization self-loops would dilute
	// the flow): node 0 should dominate.
	n := 10
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		_ = b.AddEdge(int32(v), 0, 1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pr := baselines.PageRank(g, 0.85, 100, 1e-12)
	for v := 1; v < n; v++ {
		if pr[0] <= pr[v] {
			t.Errorf("pr[0]=%v should dominate pr[%d]=%v", pr[0], v, pr[v])
		}
	}
}

func TestReverseRWRPrefersInfluencers(t *testing.T) {
	// Node 0 influences everyone (star out of 0): the reverse walker flows
	// mass back to node 0, so it must rank first.
	n := 10
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		_ = b.AddEdge(0, int32(v), 1)
	}
	g, err := b.BuildColumnStochastic()
	if err != nil {
		t.Fatal(err)
	}
	rwr := baselines.ReverseRWR(g, 0.85, 100, 1e-12)
	for v := 1; v < n; v++ {
		if rwr[0] <= rwr[v] {
			t.Errorf("rwr[0]=%v should dominate rwr[%d]=%v", rwr[0], v, rwr[v])
		}
	}
	// Mass conservation.
	sum := 0.0
	for _, x := range rwr {
		sum += x
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("RWR sums to %v", sum)
	}
}

func TestSelectAllMethods(t *testing.T) {
	for _, m := range baselines.Methods {
		p := paperProblem(t, voting.Plurality{}, 2)
		seeds, err := baselines.Select(m, p, baselines.Config{IMM: im.IMMConfig{Seed: 1, MaxSets: 1 << 14}})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if len(seeds) != 2 {
			t.Errorf("%s: got %d seeds, want 2", m, len(seeds))
		}
		seen := map[int32]bool{}
		for _, s := range seeds {
			if s < 0 || s >= 4 {
				t.Errorf("%s: seed %d out of range", m, s)
			}
			if seen[s] {
				t.Errorf("%s: duplicate seed %d", m, s)
			}
			seen[s] = true
		}
	}
}

func TestSelectUnknownMethod(t *testing.T) {
	p := paperProblem(t, voting.Plurality{}, 1)
	if _, err := baselines.Select(baselines.Method("nope"), p, baselines.Config{}); err == nil {
		t.Error("expected error for unknown method")
	}
}

func TestGEDTMatchesCumulativeDM(t *testing.T) {
	// GED-T ignores the target score and maximizes cumulative: on the paper
	// example with k=1 it must pick node 0 even under plurality.
	p := paperProblem(t, voting.Plurality{}, 1)
	seeds, err := baselines.Select(baselines.MethodGEDT, p, baselines.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 1 || seeds[0] != 0 {
		t.Errorf("GED-T picked %v, want [0] (cumulative optimum)", seeds)
	}
}
