package binio

import (
	"encoding/binary"
	"math"
	"unsafe"
)

// hostLittleEndian reports whether the running machine stores integers
// little-endian. The v3 index layout is little-endian on disk, so on LE
// hosts typed slices can alias file bytes directly; BE hosts (none of the
// supported targets today, but the check keeps the code honest) must take
// the decode path.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// CanAlias reports whether a typed slice of elemSize-byte elements may be
// aliased directly over b: the host is little-endian, the pointer is
// elemSize-aligned, and the length is a whole number of elements.
func CanAlias(b []byte, elemSize int) bool {
	if !hostLittleEndian || len(b)%elemSize != 0 {
		return false
	}
	if len(b) == 0 {
		return true
	}
	return uintptr(unsafe.Pointer(&b[0]))%uintptr(elemSize) == 0
}

// AliasI32s views b as a little-endian []int32 without copying when
// possible; otherwise it decodes into a fresh slice. copied reports which
// happened — an aliased result is only valid while b's backing memory is.
func AliasI32s(b []byte) (xs []int32, copied bool) {
	n := len(b) / 4
	if CanAlias(b, 4) {
		if n == 0 {
			return nil, false
		}
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n), false
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out, true
}

// AliasI64s views b as a little-endian []int64 without copying when
// possible; otherwise it decodes into a fresh slice.
func AliasI64s(b []byte) (xs []int64, copied bool) {
	n := len(b) / 8
	if CanAlias(b, 8) {
		if n == 0 {
			return nil, false
		}
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n), false
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, true
}

// AliasF64s views b as a little-endian []float64 without copying when
// possible; otherwise it decodes into a fresh slice.
func AliasF64s(b []byte) (xs []float64, copied bool) {
	n := len(b) / 8
	if CanAlias(b, 8) {
		if n == 0 {
			return nil, false
		}
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n), false
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, true
}

// I32sBytes views xs as its little-endian byte payload without copying
// when the host is little-endian; otherwise it encodes into a fresh
// buffer. The zero-copy path lets the v3 writer stream large arrays
// straight from their heap form.
func I32sBytes(xs []int32) []byte {
	if hostLittleEndian {
		if len(xs) == 0 {
			return nil
		}
		return unsafe.Slice((*byte)(unsafe.Pointer(&xs[0])), 4*len(xs))
	}
	out := make([]byte, 4*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(x))
	}
	return out
}

// I64sBytes views xs as its little-endian byte payload without copying
// when the host is little-endian; otherwise it encodes into a fresh buffer.
func I64sBytes(xs []int64) []byte {
	if hostLittleEndian {
		if len(xs) == 0 {
			return nil
		}
		return unsafe.Slice((*byte)(unsafe.Pointer(&xs[0])), 8*len(xs))
	}
	out := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(x))
	}
	return out
}

// F64sBytes views xs as its little-endian byte payload without copying
// when the host is little-endian; otherwise it encodes into a fresh buffer.
func F64sBytes(xs []float64) []byte {
	if hostLittleEndian {
		if len(xs) == 0 {
			return nil
		}
		return unsafe.Slice((*byte)(unsafe.Pointer(&xs[0])), 8*len(xs))
	}
	out := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}
