package binio

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

func TestAliasRoundTripI32s(t *testing.T) {
	want := []int32{0, 1, -1, 1 << 30, -(1 << 30), 42}
	b := I32sBytes(want)
	got, copied := AliasI32s(b)
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if copied && hostLittleEndian {
		t.Error("LE host took the copy path for an aligned buffer")
	}
}

func TestAliasRoundTripI64s(t *testing.T) {
	want := []int64{0, 1, -1, math.MaxInt64, math.MinInt64}
	got, _ := AliasI64s(I64sBytes(want))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestAliasRoundTripF64s(t *testing.T) {
	want := []float64{0, 1.5, -2.25, math.Pi, math.MaxFloat64, math.SmallestNonzeroFloat64}
	got, _ := AliasF64s(F64sBytes(want))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// The on-disk contract is little-endian regardless of host: the byte forms
// must match encoding/binary's LE encoding exactly.
func TestBytesAreLittleEndian(t *testing.T) {
	xs := []int32{1, -2, 0x01020304}
	want := make([]byte, 4*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(want[4*i:], uint32(x))
	}
	if got := I32sBytes(xs); !bytes.Equal(got, want) {
		t.Fatalf("I32sBytes = % x, want % x", got, want)
	}

	fs := []float64{1.5, -3.25}
	wantF := make([]byte, 8*len(fs))
	for i, x := range fs {
		binary.LittleEndian.PutUint64(wantF[8*i:], math.Float64bits(x))
	}
	if got := F64sBytes(fs); !bytes.Equal(got, wantF) {
		t.Fatalf("F64sBytes = % x, want % x", got, wantF)
	}
}

// A misaligned view of a buffer must fall back to decoding, and the
// decoded values must still be correct.
func TestAliasMisalignedDecodes(t *testing.T) {
	want := []int32{7, -8, 9}
	// An []int64 backing is 8-aligned, so the +1 view is misaligned for
	// every element size (a raw []byte make carries no such guarantee).
	backing := I64sBytes(make([]int64, len(want)))
	view := backing[1 : 1+4*len(want)]
	copy(view, I32sBytes(want))
	if hostLittleEndian && CanAlias(view, 4) {
		t.Fatal("CanAlias accepted a misaligned buffer")
	}
	got, copied := AliasI32s(view)
	if hostLittleEndian && !copied {
		t.Error("misaligned buffer did not take the copy path")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestAliasRejectsRaggedLength(t *testing.T) {
	if CanAlias(make([]byte, 7), 4) {
		t.Error("CanAlias accepted a length that is not a whole number of elements")
	}
	got, _ := AliasI32s(make([]byte, 6))
	if len(got) != 1 {
		t.Errorf("AliasI32s of 6 bytes yielded %d elements, want 1 (trailing bytes dropped)", len(got))
	}
}

func TestEmptySlices(t *testing.T) {
	if b := I32sBytes(nil); len(b) != 0 {
		t.Errorf("I32sBytes(nil) = %d bytes", len(b))
	}
	xs, copied := AliasF64s(nil)
	if len(xs) != 0 || copied {
		t.Errorf("AliasF64s(nil) = %v, copied=%v", xs, copied)
	}
}
