// Package binio holds the little-endian primitive codec shared by the
// binary graph format (internal/graph) and the index container
// (internal/serialize): fixed-width integer/float writers and readers
// whose bulk variants allocate in bounded chunks, so a corrupted length
// field fails on the truncated stream instead of attempting a huge upfront
// allocation.
package binio

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Chunk bounds per-read allocations for the bulk readers.
const Chunk = 1 << 20

// WriteU32 writes one little-endian uint32.
func WriteU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

// WriteU64 writes one little-endian uint64.
func WriteU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

// WriteI64 writes one little-endian int64 (two's complement).
func WriteI64(w io.Writer, v int64) error { return WriteU64(w, uint64(v)) }

// WriteF64 writes one little-endian float64 (IEEE-754 bits).
func WriteF64(w io.Writer, v float64) error { return WriteU64(w, math.Float64bits(v)) }

// WriteI32s writes the raw little-endian payload of xs (no length prefix).
func WriteI32s(w io.Writer, xs []int32) error {
	var b [4]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint32(b[:], uint32(x))
		if _, err := w.Write(b[:]); err != nil {
			return err
		}
	}
	return nil
}

// WriteF64s writes the raw little-endian payload of xs (no length prefix).
func WriteF64s(w io.Writer, xs []float64) error {
	var b [8]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
		if _, err := w.Write(b[:]); err != nil {
			return err
		}
	}
	return nil
}

// ReadU32 reads one little-endian uint32.
func ReadU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// ReadU64 reads one little-endian uint64.
func ReadU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// ReadI64 reads one little-endian int64.
func ReadI64(r io.Reader) (int64, error) {
	v, err := ReadU64(r)
	return int64(v), err
}

// ReadF64 reads one little-endian float64.
func ReadF64(r io.Reader) (float64, error) {
	v, err := ReadU64(r)
	return math.Float64frombits(v), err
}

// ReadI32s reads exactly n little-endian int32 values, allocating in
// Chunk-bounded pieces.
func ReadI32s(r io.Reader, n int) ([]int32, error) {
	out := make([]int32, 0, min(n, Chunk))
	buf := make([]byte, 4*min(n, Chunk))
	for len(out) < n {
		c := min(n-len(out), Chunk)
		if _, err := io.ReadFull(r, buf[:4*c]); err != nil {
			return nil, fmt.Errorf("binio: payload truncated: %w", err)
		}
		for i := 0; i < c; i++ {
			out = append(out, int32(binary.LittleEndian.Uint32(buf[4*i:])))
		}
	}
	return out, nil
}

// ReadF64s reads exactly n little-endian float64 values, allocating in
// Chunk-bounded pieces.
func ReadF64s(r io.Reader, n int) ([]float64, error) {
	out := make([]float64, 0, min(n, Chunk))
	buf := make([]byte, 8*min(n, Chunk))
	for len(out) < n {
		c := min(n-len(out), Chunk)
		if _, err := io.ReadFull(r, buf[:8*c]); err != nil {
			return nil, fmt.Errorf("binio: payload truncated: %w", err)
		}
		for i := 0; i < c; i++ {
			out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:])))
		}
	}
	return out, nil
}
