// Package cliutil holds the few helpers every command main shares, so
// flag-validation and fatal-exit behavior stays consistent across ovm,
// ovmgen, ovmbench, and ovmd.
package cliutil

import (
	"flag"
	"fmt"
	"os"
)

// CheckFlag exits non-zero with usage when a numeric flag violates its
// bound, instead of silently misbehaving deeper in the run.
func CheckFlag(prog string, ok bool, format string, args ...any) {
	if ok {
		return
	}
	fmt.Fprintf(os.Stderr, prog+": "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// Fatal prints err prefixed with the program name and exits 1.
func Fatal(prog string, err error) {
	fmt.Fprintln(os.Stderr, prog+":", err)
	os.Exit(1)
}

// CheckArg exits 2 with usage when a post-parse argument check fails (for
// bounds that depend on loaded state, e.g. core.ValidateTargetHorizon
// against the loaded system's candidate count) — the same convention
// CheckFlag applies to parse-time bounds.
func CheckArg(prog string, err error) {
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, prog+":", err)
	flag.Usage()
	os.Exit(2)
}
