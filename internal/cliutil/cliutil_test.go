package cliutil

import "testing"

func TestCheckArgNilIsNoop(t *testing.T) {
	// CheckArg with nil must return (non-nil exits the process, which the
	// CLI smoke script covers end-to-end).
	CheckArg("test", nil)
}
