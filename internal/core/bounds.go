package core

import (
	"fmt"

	"ovm/internal/engine"
	"ovm/internal/graph"
	"ovm/internal/voting"
)

// FavorableSet computes V_q^(t) (Definition 1): the users who rank the
// target within the top p positions at the horizon without any target
// seeds. B must be the seedless horizon opinion matrix.
func FavorableSet(B [][]float64, q, p int) []bool {
	n := len(B[q])
	out := make([]bool, n)
	for v := 0; v < n; v++ {
		if voting.Rank(B, q, v) <= p {
			out[v] = true
		}
	}
	return out
}

// WeaklyFavorableSet computes U_q^(t) (Definition 5): the users who prefer
// the target to at least one other candidate at the horizon without seeds.
func WeaklyFavorableSet(B [][]float64, q int) []bool {
	n := len(B[q])
	out := make([]bool, n)
	for v := 0; v < n; v++ {
		minOther := 2.0
		for x := range B {
			if x == q {
				continue
			}
			if B[x][v] < minOther {
				minOther = B[x][v]
			}
		}
		if B[q][v] > minOther {
			out[v] = true
		}
	}
	return out
}

// CoverageValue returns scale·|N_S^(t) ∪ base|: the generic form of the
// sandwich upper bounds (Definitions 4 and 6). base is a membership mask;
// N_S^(t) is the t-hop out-reachability of the seed set (Definition 2).
func CoverageValue(g *graph.Graph, horizon int, base []bool, scale float64, seeds []int32) float64 {
	covered := make([]bool, len(base))
	copy(covered, base)
	cnt := 0
	for _, in := range base {
		if in {
			cnt++
		}
	}
	bfs := graph.NewBFS(g)
	cnt += bfs.MarkReachable(seeds, horizon, covered)
	return scale * float64(cnt)
}

// GreedyCoverage maximizes scale·|N_S^(t) ∪ base| over size-k seed sets with
// the incremental lazy-greedy algorithm (the function is monotone
// submodular, Theorems 6/7, so CELF-style laziness is exact). It returns
// the usual GreedyResult; Evaluations counts BFS probes. The initial
// all-nodes gain sweep runs on the engine worker pool (one BFS state per
// worker); the lazy loop stays serial so the heap evolves exactly as in
// the sequential algorithm, keeping results parallelism-invariant.
func GreedyCoverage(g *graph.Graph, horizon int, base []bool, scale float64, k, parallelism int) (*GreedyResult, error) {
	n := g.N()
	if k < 1 || k > n {
		return nil, fmt.Errorf("core: need 1 <= k <= n, got k=%d n=%d", k, n)
	}
	if len(base) != n {
		return nil, fmt.Errorf("core: base mask has %d entries, want %d", len(base), n)
	}
	res := &GreedyResult{}
	covered := make([]bool, n)
	baseCount := 0
	for v, in := range base {
		if in {
			covered[v] = true
			baseCount++
		}
	}
	bfs := graph.NewBFS(g)
	// Initial marginal gains, sharded across per-worker BFS states (covered
	// is read-only during the sweep).
	type entry struct {
		node  int32
		gain  int
		stamp int
	}
	entries := make([]entry, n)
	workers := make([]*graph.BFS, engine.Workers(parallelism))
	_ = engine.ForEachChunk(parallelism, n, 64, 1024, func(worker, _, lo, hi int) error {
		wbfs := workers[worker]
		if wbfs == nil {
			wbfs = graph.NewBFS(g)
			workers[worker] = wbfs
		}
		for v := int32(lo); v < int32(hi); v++ {
			entries[v] = entry{node: v, gain: wbfs.CountNewlyReachable([]int32{v}, horizon, covered), stamp: 0}
		}
		return nil
	})
	res.Evaluations += n
	// Binary max-heap over entries.
	h := make([]int, n) // heap of indices into entries
	for i := range h {
		h[i] = i
	}
	less := func(i, j int) bool { return entries[h[i]].gain > entries[h[j]].gain }
	var down func(i, size int)
	down = func(i, size int) {
		for {
			l, r := 2*i+1, 2*i+2
			largest := i
			if l < size && less(l, largest) {
				largest = l
			}
			if r < size && less(r, largest) {
				largest = r
			}
			if largest == i {
				return
			}
			h[i], h[largest] = h[largest], h[i]
			i = largest
		}
	}
	for i := n/2 - 1; i >= 0; i-- {
		down(i, n)
	}
	size := n
	seeds := make([]int32, 0, k)
	total := baseCount
	for len(seeds) < k && size > 0 {
		top := &entries[h[0]]
		if top.stamp == len(seeds) {
			seeds = append(seeds, top.node)
			gained := bfs.MarkReachable([]int32{top.node}, horizon, covered)
			total += gained
			res.Gains = append(res.Gains, scale*float64(gained))
			h[0] = h[size-1]
			size--
			down(0, size)
			continue
		}
		top.gain = bfs.CountNewlyReachable([]int32{top.node}, horizon, covered)
		top.stamp = len(seeds)
		res.Evaluations++
		down(0, size)
	}
	res.Seeds = seeds
	res.Value = scale * float64(total)
	return res, nil
}

// PositionalBounds packages the LB/UB surrogate parameters for the
// positional-p-approval family (§IV-B). For plurality use
// voting.PluralityAsPositional(); for p-approval, voting.PApprovalAsPositional.
type PositionalBounds struct {
	Favorable []bool  // V_q^(t)
	OmegaP    float64 // ω[p], scales LB
	Omega1    float64 // ω[1], scales UB
}

// NewPositionalBounds computes the bound ingredients from the seedless
// horizon matrix.
func NewPositionalBounds(B [][]float64, q int, s voting.Positional) (*PositionalBounds, error) {
	if err := s.Validate(len(B)); err != nil {
		return nil, err
	}
	return &PositionalBounds{
		Favorable: FavorableSet(B, q, s.P),
		OmegaP:    s.Omega[s.P-1],
		Omega1:    s.Omega[0],
	}, nil
}
