// Package core implements the paper's primary contribution: seed selection
// for voting-based opinion maximization at a finite time horizon.
//
// It provides:
//
//   - Problem (§II-C): the FJ-Vote instance definition;
//   - the greedy framework of Algorithm 1 with CELF lazy evaluation,
//     driven by exact direct-matrix (DM) opinion computation (§III-C);
//   - the sandwich approximation of Algorithm 3 (§IV) with the paper's
//     submodular bound constructions — the favorable users set V_q^(t)
//     (Definition 1), the reachable users set N_S^(t) (Definition 2), and
//     the weakly favorable users set U_q^(t) (Definition 5) — yielding
//     lower/upper bound surrogates for the positional-p-approval family and
//     an upper bound for Copeland;
//   - Algorithm 2: binary search for FJ-Vote-Win (minimum seeds to win).
//
// The random-walk (RW, §V) and sketch (RS, §VI) accelerations live in the
// sibling packages rwalk and sketch; they plug into the same Problem type.
package core
