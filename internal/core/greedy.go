package core

import (
	"container/heap"
	"context"
	"fmt"
)

// ctxErr polls an optional context; nil means "never cancelled". The greedy
// drivers call it at round (and heap-iteration) boundaries — the same
// granularity the engine pool uses for shards — so a cancelled selection
// abandons work promptly without ever publishing a partial result.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// GreedyResult reports the outcome of a greedy run.
type GreedyResult struct {
	Seeds       []int32   // selected seeds in pick order
	Gains       []float64 // marginal gain of each pick
	Value       float64   // objective value of the full seed set
	Evaluations int       // number of Objective.Value calls
}

// evaluateBatch computes Value(base ∪ {cand}) for every candidate, through
// ValueBatch when the objective supports it (fanning the evaluations over
// the worker pool) and serially otherwise. out[i] corresponds to cands[i].
// The candidate order — and hence every downstream argmax or heap build —
// is identical on both paths.
func evaluateBatch(obj Objective, base []int32, cands []int32, out []float64) {
	if bo, ok := obj.(BatchObjective); ok {
		bo.ValueBatch(base, cands, out)
		return
	}
	scratch := make([]int32, 0, len(base)+1)
	for i, v := range cands {
		scratch = append(scratch[:0], base...)
		scratch = append(scratch, v)
		out[i] = obj.Value(scratch)
	}
}

// Greedy is Algorithm 1: k rounds, each picking the node with the maximum
// marginal gain, re-evaluating every remaining candidate node per round.
// Exact but O(k·n) objective evaluations; prefer GreedyCELF for
// non-decreasing submodular objectives. If obj implements BatchObjective,
// each round's candidate sweep runs on the worker pool; picks are identical
// either way (candidates are scanned in ascending node order with
// first-max-wins tie-breaking).
func Greedy(obj Objective, k int) (*GreedyResult, error) {
	return GreedyCtx(nil, obj, k)
}

// GreedyCtx is Greedy with cooperative cancellation at round boundaries.
func GreedyCtx(ctx context.Context, obj Objective, k int) (*GreedyResult, error) {
	n := obj.N()
	if k < 1 || k > n {
		return nil, fmt.Errorf("core: need 1 <= k <= n, got k=%d n=%d", k, n)
	}
	res := &GreedyResult{}
	seeds := make([]int32, 0, k)
	inSeed := make([]bool, n)
	cur := obj.Value(nil)
	res.Evaluations++
	cands := make([]int32, 0, n)
	vals := make([]float64, 0, n)
	for round := 0; round < k; round++ {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		cands = cands[:0]
		for v := int32(0); v < int32(n); v++ {
			if !inSeed[v] {
				cands = append(cands, v)
			}
		}
		vals = vals[:len(cands)]
		evaluateBatch(obj, seeds, cands, vals)
		res.Evaluations += len(cands)
		best, bestGain := int32(-1), -1.0
		for i, v := range cands {
			if gain := vals[i] - cur; gain > bestGain {
				best, bestGain = v, gain
			}
		}
		if best < 0 {
			break
		}
		seeds = append(seeds, best)
		inSeed[best] = true
		cur += bestGain
		res.Gains = append(res.Gains, bestGain)
	}
	res.Seeds = seeds
	res.Value = cur
	return res, nil
}

// celfEntry is a lazy-greedy priority-queue entry.
type celfEntry struct {
	node  int32
	gain  float64
	stamp int // |seeds| at the time gain was computed
}

type celfHeap []celfEntry

func (h celfHeap) Len() int           { return len(h) }
func (h celfHeap) Less(i, j int) bool { return h[i].gain > h[j].gain }
func (h celfHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *celfHeap) Push(x any)        { *h = append(*h, x.(celfEntry)) }
func (h *celfHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// GreedyCELF is Algorithm 1 with the CELF lazy-evaluation optimization
// (§III-C, [49]): stale marginal gains are re-evaluated only when they
// surface at the top of a max-heap. Correct for non-decreasing submodular
// objectives (cumulative score, the sandwich LB/UB surrogates); for
// non-submodular objectives it degrades to a heuristic, matching how the
// paper applies the greedy feasible solution SF.
//
// The initial full sweep — the dominant cost, n evaluations — runs on the
// worker pool when obj implements BatchObjective. The lazy re-evaluation
// loop is kept strictly serial so the heap evolves exactly as in the
// sequential algorithm; results are therefore bit-identical across
// Parallelism values.
func GreedyCELF(obj Objective, k int) (*GreedyResult, error) {
	return GreedyCELFCtx(nil, obj, k)
}

// GreedyCELFCtx is GreedyCELF with cooperative cancellation, polled before
// the initial full sweep and at every lazy-loop iteration.
func GreedyCELFCtx(ctx context.Context, obj Objective, k int) (*GreedyResult, error) {
	n := obj.N()
	if k < 1 || k > n {
		return nil, fmt.Errorf("core: need 1 <= k <= n, got k=%d n=%d", k, n)
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	res := &GreedyResult{}
	base := obj.Value(nil)
	res.Evaluations++
	seeds := make([]int32, 0, k)
	scratch := make([]int32, 0, k)

	cands := make([]int32, n)
	vals := make([]float64, n)
	for v := int32(0); v < int32(n); v++ {
		cands[v] = v
	}
	evaluateBatch(obj, nil, cands, vals)
	res.Evaluations += n
	h := make(celfHeap, 0, n)
	for v := int32(0); v < int32(n); v++ {
		h = append(h, celfEntry{node: v, gain: vals[v] - base, stamp: 0})
	}
	heap.Init(&h)

	cur := base
	for len(seeds) < k && h.Len() > 0 {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		top := h[0]
		if top.stamp == len(seeds) {
			// Gain is fresh w.r.t. the current seed set: accept.
			heap.Pop(&h)
			seeds = append(seeds, top.node)
			cur += top.gain
			res.Gains = append(res.Gains, top.gain)
			continue
		}
		// Stale: recompute gain w.r.t. the current seed set.
		scratch = append(scratch[:0], seeds...)
		scratch = append(scratch, top.node)
		gain := obj.Value(scratch) - cur
		res.Evaluations++
		h[0].gain = gain
		h[0].stamp = len(seeds)
		heap.Fix(&h, 0)
	}
	res.Seeds = seeds
	res.Value = cur
	return res, nil
}
