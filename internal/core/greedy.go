package core

import (
	"container/heap"
	"fmt"
)

// GreedyResult reports the outcome of a greedy run.
type GreedyResult struct {
	Seeds       []int32   // selected seeds in pick order
	Gains       []float64 // marginal gain of each pick
	Value       float64   // objective value of the full seed set
	Evaluations int       // number of Objective.Value calls
}

// Greedy is Algorithm 1: k rounds, each picking the node with the maximum
// marginal gain, re-evaluating every remaining candidate node per round.
// Exact but O(k·n) objective evaluations; prefer GreedyCELF for
// non-decreasing submodular objectives.
func Greedy(obj Objective, k int) (*GreedyResult, error) {
	n := obj.N()
	if k < 1 || k > n {
		return nil, fmt.Errorf("core: need 1 <= k <= n, got k=%d n=%d", k, n)
	}
	res := &GreedyResult{}
	seeds := make([]int32, 0, k)
	inSeed := make([]bool, n)
	cur := obj.Value(nil)
	res.Evaluations++
	scratch := make([]int32, 0, k)
	for round := 0; round < k; round++ {
		best, bestGain := int32(-1), -1.0
		for v := int32(0); v < int32(n); v++ {
			if inSeed[v] {
				continue
			}
			scratch = append(scratch[:0], seeds...)
			scratch = append(scratch, v)
			gain := obj.Value(scratch) - cur
			res.Evaluations++
			if gain > bestGain {
				best, bestGain = v, gain
			}
		}
		if best < 0 {
			break
		}
		seeds = append(seeds, best)
		inSeed[best] = true
		cur += bestGain
		res.Gains = append(res.Gains, bestGain)
	}
	res.Seeds = seeds
	res.Value = cur
	return res, nil
}

// celfEntry is a lazy-greedy priority-queue entry.
type celfEntry struct {
	node  int32
	gain  float64
	stamp int // |seeds| at the time gain was computed
}

type celfHeap []celfEntry

func (h celfHeap) Len() int            { return len(h) }
func (h celfHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h celfHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *celfHeap) Push(x interface{}) { *h = append(*h, x.(celfEntry)) }
func (h *celfHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// GreedyCELF is Algorithm 1 with the CELF lazy-evaluation optimization
// (§III-C, [49]): stale marginal gains are re-evaluated only when they
// surface at the top of a max-heap. Correct for non-decreasing submodular
// objectives (cumulative score, the sandwich LB/UB surrogates); for
// non-submodular objectives it degrades to a heuristic, matching how the
// paper applies the greedy feasible solution SF.
func GreedyCELF(obj Objective, k int) (*GreedyResult, error) {
	n := obj.N()
	if k < 1 || k > n {
		return nil, fmt.Errorf("core: need 1 <= k <= n, got k=%d n=%d", k, n)
	}
	res := &GreedyResult{}
	base := obj.Value(nil)
	res.Evaluations++
	seeds := make([]int32, 0, k)
	scratch := make([]int32, 0, k)

	h := make(celfHeap, 0, n)
	for v := int32(0); v < int32(n); v++ {
		gain := obj.Value([]int32{v}) - base
		res.Evaluations++
		h = append(h, celfEntry{node: v, gain: gain, stamp: 0})
	}
	heap.Init(&h)

	cur := base
	for len(seeds) < k && h.Len() > 0 {
		top := h[0]
		if top.stamp == len(seeds) {
			// Gain is fresh w.r.t. the current seed set: accept.
			heap.Pop(&h)
			seeds = append(seeds, top.node)
			cur += top.gain
			res.Gains = append(res.Gains, top.gain)
			continue
		}
		// Stale: recompute gain w.r.t. the current seed set.
		scratch = append(scratch[:0], seeds...)
		scratch = append(scratch, top.node)
		gain := obj.Value(scratch) - cur
		res.Evaluations++
		h[0].gain = gain
		h[0].stamp = len(seeds)
		heap.Fix(&h, 0)
	}
	res.Seeds = seeds
	res.Value = cur
	return res, nil
}
