package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"ovm/internal/graph"
	"ovm/internal/opinion"
	"ovm/internal/paperexample"
	"ovm/internal/voting"
)

func paperProblem(t *testing.T, score voting.Score, k int) *Problem {
	t.Helper()
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	return &Problem{Sys: sys, Target: 0, Horizon: 1, K: k, Score: score}
}

func randomSystem(t *testing.T, r *rand.Rand, n, rCand int) *opinion.System {
	t.Helper()
	b := graph.NewBuilder(n)
	for i := 0; i < 4*n; i++ {
		_ = b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)), r.Float64()+0.05)
	}
	g, err := b.BuildColumnStochastic()
	if err != nil {
		t.Fatal(err)
	}
	cands := make([]*opinion.Candidate, rCand)
	for q := range cands {
		init := make([]float64, n)
		stub := make([]float64, n)
		for i := range init {
			init[i] = r.Float64()
			stub[i] = r.Float64()
		}
		cands[q] = &opinion.Candidate{Name: string(rune('a' + q)), G: g, Init: init, Stub: stub}
	}
	sys, err := opinion.NewSystem(cands)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestProblemValidate(t *testing.T) {
	p := paperProblem(t, voting.Cumulative{}, 1)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *p
	bad.Target = 7
	if err := bad.Validate(); err == nil {
		t.Error("expected error for bad target")
	}
	bad = *p
	bad.Horizon = -1
	if err := bad.Validate(); err == nil {
		t.Error("expected error for negative horizon")
	}
	bad = *p
	bad.K = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected error for k=0")
	}
	bad = *p
	bad.K = 99
	if err := bad.Validate(); err == nil {
		t.Error("expected error for k>n")
	}
	bad = *p
	bad.Score = nil
	if err := bad.Validate(); err == nil {
		t.Error("expected error for nil score")
	}
	bad = *p
	bad.Score = voting.Positional{P: 5, Omega: []float64{1, 1, 1, 1, 1}}
	if err := bad.Validate(); err == nil {
		t.Error("expected error for P > r via score.Validate")
	}
	bad = *p
	bad.Sys = nil
	if err := bad.Validate(); err == nil {
		t.Error("expected error for nil system")
	}
}

func TestGreedyPicksTableIBestCumulative(t *testing.T) {
	// Table I: seeding user 1 (index 0) maximizes the cumulative score (3.30).
	p := paperProblem(t, voting.Cumulative{}, 1)
	obj, err := NewDMObjective(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Greedy(obj, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 1 || res.Seeds[0] != 0 {
		t.Errorf("greedy picked %v, want [0]", res.Seeds)
	}
	if math.Abs(res.Value-3.30) > 1e-9 {
		t.Errorf("value = %v, want 3.30", res.Value)
	}
}

func TestGreedyCELFMatchesGreedyOnCumulative(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		sys := randomSystem(t, r, 12+r.Intn(10), 2)
		p := &Problem{Sys: sys, Target: 0, Horizon: 3, K: 3, Score: voting.Cumulative{}}
		o1, err := NewDMObjective(p)
		if err != nil {
			t.Fatal(err)
		}
		o2, err := NewDMObjective(p)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := Greedy(o1, p.K)
		if err != nil {
			t.Fatal(err)
		}
		lazy, err := GreedyCELF(o2, p.K)
		if err != nil {
			t.Fatal(err)
		}
		// CELF is exact for submodular objectives: same value (seed sets can
		// differ only under ties).
		if math.Abs(plain.Value-lazy.Value) > 1e-9 {
			t.Errorf("trial %d: plain %v vs CELF %v", trial, plain.Value, lazy.Value)
		}
		if lazy.Evaluations > plain.Evaluations {
			t.Errorf("trial %d: CELF used more evaluations (%d) than plain greedy (%d)",
				trial, lazy.Evaluations, plain.Evaluations)
		}
	}
}

func TestGreedyApproximationVsBruteForce(t *testing.T) {
	// On tiny instances, greedy on the (submodular) cumulative score must be
	// within (1 − 1/e) of the exhaustive optimum.
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 10; trial++ {
		sys := randomSystem(t, r, 8, 2)
		p := &Problem{Sys: sys, Target: 0, Horizon: 2, K: 2, Score: voting.Cumulative{}}
		obj, err := NewDMObjective(p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := GreedyCELF(obj, p.K)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force over all pairs.
		best := 0.0
		n := sys.N()
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v, err := EvaluateExact(sys, 0, 2, voting.Cumulative{}, []int32{int32(i), int32(j)}, 1)
				if err != nil {
					t.Fatal(err)
				}
				if v > best {
					best = v
				}
			}
		}
		if res.Value < (1-1/math.E)*best-1e-9 {
			t.Errorf("trial %d: greedy %v below (1-1/e)·OPT = %v", trial, res.Value, (1-1/math.E)*best)
		}
	}
}

func TestGreedyErrors(t *testing.T) {
	p := paperProblem(t, voting.Cumulative{}, 1)
	obj, err := NewDMObjective(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Greedy(obj, 0); err == nil {
		t.Error("expected error for k=0")
	}
	if _, err := Greedy(obj, 99); err == nil {
		t.Error("expected error for k>n")
	}
	if _, err := GreedyCELF(obj, 0); err == nil {
		t.Error("expected error for k=0")
	}
	if _, err := GreedyCELF(obj, 99); err == nil {
		t.Error("expected error for k>n")
	}
}

func TestDMObjectiveCountsEvaluations(t *testing.T) {
	p := paperProblem(t, voting.Cumulative{}, 2)
	obj, err := NewDMObjective(p)
	if err != nil {
		t.Fatal(err)
	}
	_ = obj.Value(nil)
	_ = obj.Value([]int32{0})
	if obj.Evaluations() != 2 {
		t.Errorf("evaluations = %d, want 2", obj.Evaluations())
	}
}

func TestGreedySeedsAreDistinct(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	sys := randomSystem(t, r, 15, 2)
	p := &Problem{Sys: sys, Target: 0, Horizon: 2, K: 5, Score: voting.Cumulative{}}
	obj, err := NewDMObjective(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GreedyCELF(obj, p.K)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 5 {
		t.Fatalf("got %d seeds, want 5", len(res.Seeds))
	}
	s := append([]int32{}, res.Seeds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	for i := 1; i < len(s); i++ {
		if s[i] == s[i-1] {
			t.Fatalf("duplicate seed %d", s[i])
		}
	}
	// Gains must be non-increasing for a submodular objective.
	for i := 1; i < len(res.Gains); i++ {
		if res.Gains[i] > res.Gains[i-1]+1e-9 {
			t.Errorf("gains not non-increasing: %v", res.Gains)
		}
	}
}
