package core

import (
	"ovm/internal/opinion"
	"ovm/internal/voting"
)

// Objective is a non-negative, non-decreasing set function over nodes that
// the greedy framework maximizes under a cardinality constraint.
type Objective interface {
	// N returns the ground-set size.
	N() int
	// Value returns F(S) for the given seed set.
	Value(seeds []int32) float64
}

// DMObjective evaluates a voting score exactly by direct matrix-vector
// iteration (the DM method of §III-C): each Value call re-diffuses the
// target candidate's opinions with the seed set applied, at O(Horizon·m)
// cost, while competitor rows are shared and precomputed.
type DMObjective struct {
	prob  *Problem
	diff  *opinion.Diffuser
	b     [][]float64 // competitor rows precomputed; target row swapped per call
	evals int
}

// NewDMObjective precomputes competitor opinions and prepares the diffuser.
func NewDMObjective(p *Problem) (*DMObjective, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	o := &DMObjective{
		prob: p,
		diff: opinion.NewDiffuser(p.Sys.Candidate(p.Target)),
		b:    CompetitorOpinions(p.Sys, p.Target, p.Horizon, 1),
	}
	return o, nil
}

// N implements Objective.
func (o *DMObjective) N() int { return o.prob.Sys.N() }

// Value implements Objective.
func (o *DMObjective) Value(seeds []int32) float64 {
	o.evals++
	o.b[o.prob.Target] = o.diff.Run(o.prob.Horizon, seeds)
	return o.prob.Score.Eval(o.b, o.prob.Target)
}

// Evaluations returns how many exact evaluations were performed (used by
// the efficiency experiments).
func (o *DMObjective) Evaluations() int { return o.evals }

// restrictedCumulative is the voting score behind the sandwich lower bound
// LB(S) = ω[p] · Σ_{v ∈ V_q^(t)} b_qv^(t)[S] (Definition 3): a cumulative
// score restricted to the favorable users set and scaled by ω[p].
type restrictedCumulative struct {
	mask  []bool
	scale float64
}

// Name implements voting.Score.
func (s restrictedCumulative) Name() string { return "restricted-cumulative" }

// Eval implements voting.Score.
func (s restrictedCumulative) Eval(B [][]float64, q int) float64 {
	sum := 0.0
	for v, in := range s.mask {
		if in {
			sum += B[q][v]
		}
	}
	return s.scale * sum
}

var _ voting.Score = restrictedCumulative{}
