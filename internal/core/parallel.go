package core

import (
	"ovm/internal/engine"
	"ovm/internal/opinion"
)

// BatchObjective is an Objective that can evaluate many candidate
// extensions of a common base seed set at once. The greedy drivers use it
// to fan the per-round candidate sweep over the engine worker pool.
// Implementations must guarantee that out[i] equals what Value(base ∪
// {cands[i]}) would return, independently of scheduling.
type BatchObjective interface {
	Objective
	// ValueBatch writes Value(append(base, cands[i])) into out[i].
	ValueBatch(base []int32, cands []int32, out []float64)
}

// ParallelDMObjective is the parallel counterpart of DMObjective: one FJ
// diffuser per worker, sharing the (read-only) precomputed competitor
// opinion rows, so greedy gain evaluation over candidate nodes — the DM
// method's entire cost — runs on all cores instead of one. Each diffusion
// is an independent deterministic computation, so scores are bit-identical
// for every Parallelism value.
type ParallelDMObjective struct {
	prob        *Problem
	parallelism int
	objs        []*DMObjective // one per worker; objs[0] serves serial calls
	scratch     [][]int32      // per-worker seed-set scratch
}

// NewParallelDMObjective validates the problem, precomputes competitor
// opinions once, and prepares Workers(parallelism) per-worker evaluators
// (0 = GOMAXPROCS, 1 = serial).
func NewParallelDMObjective(p *Problem, parallelism int) (*ParallelDMObjective, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	comp := CompetitorOpinions(p.Sys, p.Target, p.Horizon, parallelism)
	w := engine.Workers(parallelism)
	o := &ParallelDMObjective{
		prob:        p,
		parallelism: parallelism,
		objs:        make([]*DMObjective, w),
		scratch:     make([][]int32, w),
	}
	for i := range o.objs {
		b := make([][]float64, len(comp))
		copy(b, comp) // competitor rows shared read-only across workers
		o.objs[i] = &DMObjective{
			prob: p,
			diff: opinion.NewDiffuser(p.Sys.Candidate(p.Target)),
			b:    b,
		}
	}
	return o, nil
}

// N implements Objective.
func (o *ParallelDMObjective) N() int { return o.prob.Sys.N() }

// Value implements Objective (serial evaluation on worker 0's diffuser).
func (o *ParallelDMObjective) Value(seeds []int32) float64 { return o.objs[0].Value(seeds) }

// ValueBatch implements BatchObjective: candidate evaluations are sharded
// over the worker pool, one diffusion per candidate on the executing
// worker's private diffuser.
func (o *ParallelDMObjective) ValueBatch(base []int32, cands []int32, out []float64) {
	_ = engine.ForEachChunk(o.parallelism, len(cands), 1, len(cands), func(worker, _, lo, hi int) error {
		obj := o.objs[worker]
		for i := lo; i < hi; i++ {
			s := append(o.scratch[worker][:0], base...)
			s = append(s, cands[i])
			out[i] = obj.Value(s)
			o.scratch[worker] = s
		}
		return nil
	})
}

// Evaluations returns the total number of exact evaluations across all
// workers (used by the efficiency experiments).
func (o *ParallelDMObjective) Evaluations() int {
	total := 0
	for _, obj := range o.objs {
		total += obj.Evaluations()
	}
	return total
}

// baseOpinions returns the target's seedless horizon opinions, reusing
// worker 0's diffuser.
func (o *ParallelDMObjective) baseOpinions() []float64 {
	return o.objs[0].diff.RunCopy(o.prob.Horizon, nil)
}

var _ BatchObjective = (*ParallelDMObjective)(nil)
