package core

import (
	"context"
	"fmt"

	"ovm/internal/engine"
	"ovm/internal/opinion"
	"ovm/internal/voting"
)

// Problem is one FJ-Vote instance (Problem 1, §II-C): find K seed nodes for
// candidate Target maximizing Score at timestamp Horizon.
//
// Ctx, when set, bounds the selection: solvers poll it at shard and greedy
// round boundaries and abandon the run with ctx.Err(). Cancellation never
// mutates shared state — every solver builds its estimator locally and
// discards it wholesale on error, so a cancelled run followed by a retry of
// the same Problem produces bit-identical results.
type Problem struct {
	Sys     *opinion.System
	Target  int
	Horizon int
	K       int
	Score   voting.Score
	Ctx     context.Context
}

// Context returns p.Ctx, or context.Background() when unset, so solvers can
// thread it unconditionally.
func (p *Problem) Context() context.Context {
	if p.Ctx != nil {
		return p.Ctx
	}
	return context.Background()
}

// ValidateTargetHorizon is the shared bounds check for the two parameters
// every entry point accepts: the target candidate index must lie in [0, r)
// and the time horizon must be non-negative. The HTTP service maps a
// violation to a typed bad_request; commands route it through
// cliutil.CheckArg for the usage-and-exit-2 convention — so both surfaces
// reject exactly the same inputs.
func ValidateTargetHorizon(target, horizon, r int) error {
	if target < 0 || target >= r {
		return fmt.Errorf("target %d out of range [0,%d)", target, r)
	}
	if horizon < 0 {
		return fmt.Errorf("horizon must be >= 0, got %d", horizon)
	}
	return nil
}

// Validate checks the instance is well-formed.
func (p *Problem) Validate() error {
	if p.Sys == nil {
		return fmt.Errorf("core: nil system")
	}
	if err := ValidateTargetHorizon(p.Target, p.Horizon, p.Sys.R()); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if p.K < 1 || p.K > p.Sys.N() {
		return fmt.Errorf("core: need 1 <= k <= n, got k=%d n=%d", p.K, p.Sys.N())
	}
	if p.Score == nil {
		return fmt.Errorf("core: nil score")
	}
	if v, ok := p.Score.(interface{ Validate(r int) error }); ok {
		if err := v.Validate(p.Sys.R()); err != nil {
			return err
		}
	}
	return nil
}

// EvaluateExact computes F(B^(Horizon)[seeds], target) for any score via
// direct diffusion — the ground-truth evaluation used to compare methods.
// parallelism caps the per-candidate diffusion fan-out (0 = GOMAXPROCS,
// 1 = serial); the result is identical at any setting.
func EvaluateExact(sys *opinion.System, target, horizon int, score voting.Score, seeds []int32, parallelism int) (float64, error) {
	return EvaluateExactCtx(nil, sys, target, horizon, score, seeds, parallelism)
}

// EvaluateExactCtx is EvaluateExact with cooperative cancellation: the
// per-candidate diffusion fan-out aborts at shard boundaries once ctx is
// done and ctx.Err() is returned.
func EvaluateExactCtx(ctx context.Context, sys *opinion.System, target, horizon int, score voting.Score, seeds []int32, parallelism int) (float64, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
	}
	B, err := opinion.Matrix(sys, horizon, target, seeds, parallelism)
	if err != nil {
		return 0, err
	}
	return score.Eval(B, target), nil
}

// CompetitorOpinions computes the horizon-t opinion rows of every candidate
// except the target (seedless), plus a scratch matrix whose target row can
// be swapped in by evaluators. Competitor rows never change with the
// target's seeds, so this is computed once per problem; the independent
// per-candidate diffusions run concurrently on the engine worker pool
// (parallelism: 0 = GOMAXPROCS, 1 = serial).
func CompetitorOpinions(sys *opinion.System, target, horizon, parallelism int) [][]float64 {
	B, _ := CompetitorOpinionsCtx(nil, sys, target, horizon, parallelism)
	return B
}

// CompetitorOpinionsCtx is CompetitorOpinions with cooperative cancellation
// at per-candidate granularity. On cancellation the partially-filled matrix
// is discarded and ctx.Err() returned — callers must never memoize a partial
// result.
func CompetitorOpinionsCtx(ctx context.Context, sys *opinion.System, target, horizon, parallelism int) ([][]float64, error) {
	B := make([][]float64, sys.R())
	err := engine.ForEachShardCtx(ctx, parallelism, sys.R(), func(_, q int) error {
		if q != target {
			B[q] = opinion.OpinionsAt(sys.Candidate(q), horizon, nil)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return B, nil
}
