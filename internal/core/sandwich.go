package core

import (
	"fmt"

	"ovm/internal/voting"
)

// SandwichResult reports the outcome of Algorithm 3.
type SandwichResult struct {
	Seeds  []int32 // the returned solution S# = argmax F over {SU, SL, SF}
	Value  float64 // F(S#), exact
	Chosen string  // which candidate solution won: "UB", "LB", or "F"

	SU *GreedyResult // greedy solution on UB(·)
	SL *GreedyResult // greedy solution on LB(·); nil for Copeland (§IV-C)
	SF *GreedyResult // greedy feasible solution on F(·)

	FofSU float64 // F(SU), exact
	FofSL float64 // F(SL), exact (0 when SL == nil)
	FofSF float64 // F(SF), exact

	UBofSU float64 // UB(SU): denominator of the Fig-2 empirical ratio
	// Ratio is F(SU)/UB(SU) — the data series of Fig 2; sandwich
	// approximation guarantees at least Ratio·(1−1/e)·OPT.
	Ratio float64
}

// SandwichPositional runs Algorithm 3 for a positional-p-approval score
// (hence also plurality and p-approval): greedy on the submodular LB and UB
// surrogates of §IV-B plus the standard greedy on F itself, returning the
// best of the three under exact evaluation. parallelism follows the engine
// convention (0 = GOMAXPROCS) and never changes the result.
func SandwichPositional(p *Problem, parallelism int) (*SandwichResult, error) {
	pos, ok := p.Score.(voting.Positional)
	if !ok {
		switch s := p.Score.(type) {
		case voting.Plurality:
			pos = voting.PluralityAsPositional()
		case voting.PApproval:
			pos = voting.PApprovalAsPositional(s.P)
		default:
			return nil, fmt.Errorf("core: sandwich positional needs a plurality-family score, got %s", p.Score.Name())
		}
	}
	inner := *p
	inner.Score = pos
	if err := inner.Validate(); err != nil {
		return nil, err
	}

	// Seedless horizon matrix for the bound ingredients.
	noSeedB := make([][]float64, p.Sys.R())
	comp, err := CompetitorOpinionsCtx(p.Ctx, p.Sys, p.Target, p.Horizon, parallelism)
	if err != nil {
		return nil, err
	}
	copy(noSeedB, comp)
	tgtDiff, err := NewParallelDMObjective(&inner, parallelism)
	if err != nil {
		return nil, err
	}
	noSeedB[p.Target] = tgtDiff.baseOpinions()

	bounds, err := NewPositionalBounds(noSeedB, p.Target, pos)
	if err != nil {
		return nil, err
	}

	// SU: greedy on UB(S) = ω[1]·|N_S^(t) ∪ V_q^(t)| (Definition 4).
	su, err := GreedyCoverage(p.Sys.Candidate(p.Target).G, p.Horizon, bounds.Favorable, bounds.Omega1, p.K, parallelism)
	if err != nil {
		return nil, err
	}
	if err := ctxErr(p.Ctx); err != nil {
		return nil, err
	}

	// SL: greedy (CELF; the LB is submodular by Theorem 5) on
	// LB(S) = ω[p]·Σ_{v∈V_q^(t)} b_qv^(t)[S] (Definition 3).
	lbProb := inner
	lbProb.Score = restrictedCumulative{mask: bounds.Favorable, scale: bounds.OmegaP}
	lbObj, err := NewParallelDMObjective(&lbProb, parallelism)
	if err != nil {
		return nil, err
	}
	sl, err := GreedyCELFCtx(p.Ctx, lbObj, p.K)
	if err != nil {
		return nil, err
	}

	// SF: standard greedy feasible solution on F itself.
	fObj, err := NewParallelDMObjective(&inner, parallelism)
	if err != nil {
		return nil, err
	}
	sf, err := GreedyCELFCtx(p.Ctx, fObj, p.K)
	if err != nil {
		return nil, err
	}

	return assembleSandwich(&inner, parallelism, su, sl, sf, func(seeds []int32) float64 {
		return CoverageValue(p.Sys.Candidate(p.Target).G, p.Horizon, bounds.Favorable, bounds.Omega1, seeds)
	})
}

// SandwichCopeland runs Algorithm 3 for the Copeland score: greedy on the
// submodular UB of §IV-C (Definition 6) and the standard greedy on F; the
// paper leaves a useful LB open, so only SU and SF compete. parallelism
// follows the engine convention (0 = GOMAXPROCS).
func SandwichCopeland(p *Problem, parallelism int) (*SandwichResult, error) {
	if _, ok := p.Score.(voting.Copeland); !ok {
		return nil, fmt.Errorf("core: sandwich copeland needs the Copeland score, got %s", p.Score.Name())
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	noSeedB := make([][]float64, p.Sys.R())
	comp, err := CompetitorOpinionsCtx(p.Ctx, p.Sys, p.Target, p.Horizon, parallelism)
	if err != nil {
		return nil, err
	}
	copy(noSeedB, comp)
	fObj, err := NewParallelDMObjective(p, parallelism)
	if err != nil {
		return nil, err
	}
	noSeedB[p.Target] = fObj.baseOpinions()

	weakly := WeaklyFavorableSet(noSeedB, p.Target)
	n := p.Sys.N()
	r := p.Sys.R()
	scale := float64(r-1) / float64(n/2+1)

	su, err := GreedyCoverage(p.Sys.Candidate(p.Target).G, p.Horizon, weakly, scale, p.K, parallelism)
	if err != nil {
		return nil, err
	}
	if err := ctxErr(p.Ctx); err != nil {
		return nil, err
	}
	sf, err := GreedyCELFCtx(p.Ctx, fObj, p.K)
	if err != nil {
		return nil, err
	}
	return assembleSandwich(p, parallelism, su, nil, sf, func(seeds []int32) float64 {
		return CoverageValue(p.Sys.Candidate(p.Target).G, p.Horizon, weakly, scale, seeds)
	})
}

func assembleSandwich(p *Problem, parallelism int, su, sl, sf *GreedyResult, ubValue func([]int32) float64) (*SandwichResult, error) {
	res := &SandwichResult{SU: su, SL: sl, SF: sf}
	var err error
	if res.FofSU, err = EvaluateExactCtx(p.Ctx, p.Sys, p.Target, p.Horizon, p.Score, su.Seeds, parallelism); err != nil {
		return nil, err
	}
	if res.FofSF, err = EvaluateExactCtx(p.Ctx, p.Sys, p.Target, p.Horizon, p.Score, sf.Seeds, parallelism); err != nil {
		return nil, err
	}
	res.Seeds, res.Value, res.Chosen = su.Seeds, res.FofSU, "UB"
	if sl != nil {
		if res.FofSL, err = EvaluateExactCtx(p.Ctx, p.Sys, p.Target, p.Horizon, p.Score, sl.Seeds, parallelism); err != nil {
			return nil, err
		}
		if res.FofSL > res.Value {
			res.Seeds, res.Value, res.Chosen = sl.Seeds, res.FofSL, "LB"
		}
	}
	if res.FofSF > res.Value {
		res.Seeds, res.Value, res.Chosen = sf.Seeds, res.FofSF, "F"
	}
	res.UBofSU = ubValue(su.Seeds)
	if res.UBofSU > 0 {
		res.Ratio = res.FofSU / res.UBofSU
	}
	return res, nil
}

// SelectSeedsDM is the paper's DM method dispatch: CELF greedy for the
// submodular cumulative score, sandwich approximation for the plurality
// family and Copeland. parallelism sets the engine worker pool for the
// gain evaluations (0 = GOMAXPROCS, 1 = serial); seeds and values are
// bit-identical across Parallelism values.
func SelectSeedsDM(p *Problem, parallelism int) ([]int32, float64, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	switch p.Score.(type) {
	case voting.Cumulative:
		obj, err := NewParallelDMObjective(p, parallelism)
		if err != nil {
			return nil, 0, err
		}
		res, err := GreedyCELFCtx(p.Ctx, obj, p.K)
		if err != nil {
			return nil, 0, err
		}
		return res.Seeds, res.Value, nil
	case voting.Copeland:
		res, err := SandwichCopeland(p, parallelism)
		if err != nil {
			return nil, 0, err
		}
		return res.Seeds, res.Value, nil
	default:
		res, err := SandwichPositional(p, parallelism)
		if err != nil {
			return nil, 0, err
		}
		return res.Seeds, res.Value, nil
	}
}
