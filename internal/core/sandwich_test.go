package core

import (
	"math"
	"math/rand"
	"testing"

	"ovm/internal/opinion"
	"ovm/internal/voting"
)

func TestFavorableSetTableI(t *testing.T) {
	sys, err := paperProblem(t, voting.Plurality{}, 1).Sys, error(nil)
	if err != nil {
		t.Fatal(err)
	}
	B, err := opinion.Matrix(sys, 1, 0, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Without seeds at t=1, users 1 and 2 (indices 0,1) prefer c1.
	fav := FavorableSet(B, 0, 1)
	want := []bool{true, true, false, false}
	for v := range want {
		if fav[v] != want[v] {
			t.Errorf("favorable[%d] = %v, want %v", v, fav[v], want[v])
		}
	}
	// With p = 2 and r = 2 every user qualifies.
	fav2 := FavorableSet(B, 0, 2)
	for v, in := range fav2 {
		if !in {
			t.Errorf("favorable(p=2)[%d] should be true", v)
		}
	}
	// Weakly favorable coincides with plurality-favorable when r = 2.
	weak := WeaklyFavorableSet(B, 0)
	for v := range want {
		if weak[v] != want[v] {
			t.Errorf("weakly[%d] = %v, want %v", v, weak[v], want[v])
		}
	}
}

func TestCoverageValueAndGreedyCoverage(t *testing.T) {
	p := paperProblem(t, voting.Plurality{}, 1)
	g := p.Sys.Candidate(0).G
	base := []bool{true, true, false, false}
	// N_{2}^(1) = {2, 3}; base adds {0,1} → 4 covered; scale 1.
	if got := CoverageValue(g, 1, base, 1, []int32{2}); got != 4 {
		t.Errorf("CoverageValue = %v, want 4", got)
	}
	// Node 0 reaches {0, 2} in 1 hop; 2 already outside base… covered = {0,1,2} → 3.
	if got := CoverageValue(g, 1, base, 1, []int32{0}); got != 3 {
		t.Errorf("CoverageValue = %v, want 3", got)
	}
	res, err := GreedyCoverage(g, 1, base, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds[0] != 2 || res.Value != 4 {
		t.Errorf("greedy coverage picked %v value %v, want [2] value 4", res.Seeds, res.Value)
	}
}

func TestGreedyCoverageMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		sys := randomSystem(t, r, 10+r.Intn(10), 2)
		g := sys.Candidate(0).G
		n := g.N()
		base := make([]bool, n)
		for v := range base {
			base[v] = r.Intn(3) == 0
		}
		horizon := 1 + r.Intn(3)
		k := 1 + r.Intn(3)
		res, err := GreedyCoverage(g, horizon, base, 1, k, 2)
		if err != nil {
			t.Fatal(err)
		}
		// Naive greedy: recompute CoverageValue for every candidate.
		var naive []int32
		cur := CoverageValue(g, horizon, base, 1, nil)
		for round := 0; round < k; round++ {
			best, bestGain := int32(-1), -1.0
			for v := int32(0); v < int32(n); v++ {
				skip := false
				for _, s := range naive {
					if s == v {
						skip = true
					}
				}
				if skip {
					continue
				}
				gain := CoverageValue(g, horizon, base, 1, append(append([]int32{}, naive...), v)) - cur
				if gain > bestGain {
					best, bestGain = v, gain
				}
			}
			naive = append(naive, best)
			cur += bestGain
		}
		if math.Abs(res.Value-cur) > 1e-9 {
			t.Errorf("trial %d: lazy coverage %v vs naive %v", trial, res.Value, cur)
		}
	}
}

func TestGreedyCoverageErrors(t *testing.T) {
	p := paperProblem(t, voting.Plurality{}, 1)
	g := p.Sys.Candidate(0).G
	if _, err := GreedyCoverage(g, 1, make([]bool, 4), 1, 0, 1); err == nil {
		t.Error("expected error for k=0")
	}
	if _, err := GreedyCoverage(g, 1, make([]bool, 2), 1, 1, 1); err == nil {
		t.Error("expected error for wrong mask size")
	}
}

// TestBoundsSandwichF verifies LB(S) ≤ F(S) ≤ UB(S) (Theorems 5 and 6) on
// random instances and random seed sets for the positional family, and
// F(S) ≤ UB(S) (Theorem 7) for Copeland.
func TestBoundsSandwichF(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for trial := 0; trial < 15; trial++ {
		sys := randomSystem(t, r, 12+r.Intn(12), 2+r.Intn(3))
		horizon := 1 + r.Intn(4)
		target := r.Intn(sys.R())
		pp := 1 + r.Intn(sys.R())
		omega := make([]float64, pp)
		omega[0] = 1
		for i := 1; i < pp; i++ {
			omega[i] = omega[i-1] * (0.5 + 0.5*r.Float64())
		}
		pos := voting.Positional{P: pp, Omega: omega}

		noSeedB, err := opinion.Matrix(sys, horizon, target, nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		bounds, err := NewPositionalBounds(noSeedB, target, pos)
		if err != nil {
			t.Fatal(err)
		}
		weak := WeaklyFavorableSet(noSeedB, target)
		n := sys.N()
		copeScale := float64(sys.R()-1) / float64(n/2+1)
		g := sys.Candidate(target).G

		var seeds []int32
		for len(seeds) < r.Intn(4) {
			seeds = append(seeds, int32(r.Intn(n)))
		}
		f, err := EvaluateExact(sys, target, horizon, pos, seeds, 1)
		if err != nil {
			t.Fatal(err)
		}
		lb := restrictedCumulative{mask: bounds.Favorable, scale: bounds.OmegaP}
		B, err := opinion.Matrix(sys, horizon, target, seeds, 1)
		if err != nil {
			t.Fatal(err)
		}
		lbVal := lb.Eval(B, target)
		ubVal := CoverageValue(g, horizon, bounds.Favorable, bounds.Omega1, seeds)
		if lbVal > f+1e-9 {
			t.Errorf("trial %d: LB %v > F %v", trial, lbVal, f)
		}
		if f > ubVal+1e-9 {
			t.Errorf("trial %d: F %v > UB %v", trial, f, ubVal)
		}
		// Copeland: F ≤ UB under the no-ties assumption; random real-valued
		// opinions are tie-free almost surely.
		fCope, err := EvaluateExact(sys, target, horizon, voting.Copeland{}, seeds, 1)
		if err != nil {
			t.Fatal(err)
		}
		ubCope := CoverageValue(g, horizon, weak, copeScale, seeds)
		if fCope > ubCope+1e-9 {
			t.Errorf("trial %d: Copeland F %v > UB %v", trial, fCope, ubCope)
		}
	}
}

func TestSandwichPositionalOnPaperExample(t *testing.T) {
	// Example 2: for plurality with k = 1 the optimum is user 3 (index 2)
	// with score 4. Sandwich must find it.
	p := paperProblem(t, voting.Plurality{}, 1)
	res, err := SandwichPositional(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 4 {
		t.Errorf("sandwich plurality value = %v, want 4", res.Value)
	}
	if len(res.Seeds) != 1 || res.Seeds[0] != 2 {
		t.Errorf("sandwich seeds = %v, want [2]", res.Seeds)
	}
	if res.Ratio <= 0 || res.Ratio > 1+1e-9 {
		t.Errorf("ratio = %v, want in (0,1]", res.Ratio)
	}
	if res.SL == nil || res.SU == nil || res.SF == nil {
		t.Error("all three candidate solutions should be present")
	}
}

func TestSandwichCopelandOnPaperExample(t *testing.T) {
	// Example 2: Copeland k = 1 optimum is 1 (users 3 or 4).
	p := paperProblem(t, voting.Copeland{}, 1)
	res, err := SandwichCopeland(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 1 {
		t.Errorf("sandwich copeland value = %v, want 1", res.Value)
	}
	if len(res.Seeds) != 1 || (res.Seeds[0] != 2 && res.Seeds[0] != 3) {
		t.Errorf("sandwich seeds = %v, want [2] or [3]", res.Seeds)
	}
	if res.SL != nil {
		t.Error("Copeland sandwich has no LB solution")
	}
}

func TestSandwichScoreDispatch(t *testing.T) {
	if _, err := SandwichPositional(paperProblem(t, voting.Copeland{}, 1), 0); err == nil {
		t.Error("expected error passing Copeland to SandwichPositional")
	}
	if _, err := SandwichCopeland(paperProblem(t, voting.Plurality{}, 1), 0); err == nil {
		t.Error("expected error passing plurality to SandwichCopeland")
	}
	// PApproval routes through the positional path.
	p := paperProblem(t, voting.PApproval{P: 1}, 1)
	res, err := SandwichPositional(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 4 {
		t.Errorf("1-approval sandwich value = %v, want 4", res.Value)
	}
}

func TestSelectSeedsDMAllScores(t *testing.T) {
	for _, score := range []voting.Score{
		voting.Cumulative{}, voting.Plurality{}, voting.PApproval{P: 2},
		voting.Positional{P: 2, Omega: []float64{1, 0.5}}, voting.Copeland{},
	} {
		p := paperProblem(t, score, 1)
		seeds, val, err := SelectSeedsDM(p, 0)
		if err != nil {
			t.Fatalf("%s: %v", score.Name(), err)
		}
		if len(seeds) != 1 {
			t.Errorf("%s: got %d seeds, want 1", score.Name(), len(seeds))
		}
		exact, err := EvaluateExact(p.Sys, 0, 1, score, seeds, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(val-exact) > 1e-9 {
			t.Errorf("%s: reported value %v != exact %v", score.Name(), val, exact)
		}
	}
}

func TestWinsAndMinSeedsToWin(t *testing.T) {
	p := paperProblem(t, voting.Plurality{}, 1)
	// No seeds: c1 plurality 2, c2 plurality 2 → tie → not a win.
	ok, err := Wins(p.Sys, 0, 1, voting.Plurality{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("c1 should not win without seeds (tie)")
	}
	seeds, err := MinSeedsToWin(p.Sys, 0, 1, voting.Plurality{}, DMSelector(p.Sys, 0, 1, voting.Plurality{}, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 1 {
		t.Errorf("k* = %d, want 1", len(seeds))
	}
	won, err := Wins(p.Sys, 0, 1, voting.Plurality{}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if !won {
		t.Error("returned seed set does not win")
	}
}

func TestMinSeedsToWinAlreadyWinning(t *testing.T) {
	// Make c2 the target: with no seeds c2's cumulative is 2.825 > 2.55.
	p := paperProblem(t, voting.Cumulative{}, 1)
	seeds, err := MinSeedsToWin(p.Sys, 1, 1, voting.Cumulative{}, DMSelector(p.Sys, 1, 1, voting.Cumulative{}, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 0 {
		t.Errorf("already-winning target needs 0 seeds, got %v", seeds)
	}
}

func TestMinSeedsToWinImpossible(t *testing.T) {
	// Competitor pinned at opinion 1 with full stubbornness: plurality can
	// never be strictly won by the target (ties at best).
	p := paperProblem(t, voting.Plurality{}, 1)
	c2 := p.Sys.Candidate(1)
	for i := range c2.Init {
		c2.Init[i] = 1
		c2.Stub[i] = 1
	}
	sys, err := opinion.NewSystem([]*opinion.Candidate{p.Sys.Candidate(0), c2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = MinSeedsToWin(sys, 0, 1, voting.Plurality{}, DMSelector(sys, 0, 1, voting.Plurality{}, 0))
	if err != ErrCannotWin {
		t.Errorf("expected ErrCannotWin, got %v", err)
	}
}
