package core

import "testing"

// TestValidateTargetHorizon is the table-driven contract for the bounds
// shared by every entry point: the CLI routes violations through
// cliutil.CheckArg (exit 2 + usage), the HTTP service maps the same bounds
// to a typed bad_request.
func TestValidateTargetHorizon(t *testing.T) {
	cases := []struct {
		name               string
		target, horizon, r int
		wantErr            bool
	}{
		{"ok min", 0, 0, 2, false},
		{"ok mid", 1, 20, 3, false},
		{"ok max target", 4, 5, 5, false},
		{"target negative", -1, 0, 2, true},
		{"target == r", 2, 0, 2, true},
		{"target above r", 7, 0, 2, true},
		{"horizon negative", 0, -1, 2, true},
		{"both invalid", -3, -3, 2, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateTargetHorizon(tc.target, tc.horizon, tc.r)
			if (err != nil) != tc.wantErr {
				t.Fatalf("ValidateTargetHorizon(%d,%d,%d) err = %v, wantErr %v",
					tc.target, tc.horizon, tc.r, err, tc.wantErr)
			}
		})
	}
}
