package core

import (
	"context"
	"errors"
	"fmt"

	"ovm/internal/opinion"
	"ovm/internal/voting"
)

// ErrCannotWin is returned by MinSeedsToWin when even seeding every node
// does not make the target the strict winner.
var ErrCannotWin = errors.New("core: target cannot win even with all nodes seeded")

// SeedSelector produces a seed set of the given size for a fixed
// (system, target, horizon, score) instance. Implementations include the
// DM, RW, and RS selectors.
type SeedSelector func(k int) ([]int32, error)

// Wins reports whether the target's score with the given seeds strictly
// exceeds every competitor's score on the same opinion matrix (Problem 2's
// winning predicate, Equation 9).
func Wins(sys *opinion.System, target, horizon int, score voting.Score, seeds []int32) (bool, error) {
	B, err := opinion.Matrix(sys, horizon, target, seeds, 0)
	if err != nil {
		return false, err
	}
	fq := score.Eval(B, target)
	for x := 0; x < sys.R(); x++ {
		if x == target {
			continue
		}
		if score.Eval(B, x) >= fq {
			return false, nil
		}
	}
	return true, nil
}

// MinSeedsToWin is Algorithm 2 (FJ-Vote-Win, Problem 2): search for the
// minimum seed-set size k* such that the target wins under the given
// score, re-running the selector at each probe. Returns the winning seed
// set (empty if the target already wins with no seeds).
//
// Implementation note: Algorithm 2 binary-searches [0, n] directly; since
// k* is usually tiny relative to n and each probe re-runs the greedy
// selector at cost growing with k, we first establish a winning upper
// bound by doubling (k = 1, 2, 4, …) and then binary-search the bracket —
// the same predicate, the same k*, far cheaper probes.
func MinSeedsToWin(sys *opinion.System, target, horizon int, score voting.Score, sel SeedSelector) ([]int32, error) {
	return MinSeedsToWinCtx(nil, sys, target, horizon, score, sel)
}

// MinSeedsToWinCtx is MinSeedsToWin with cooperative cancellation between
// probes (each probe additionally honors any context the selector's Problem
// carries).
func MinSeedsToWinCtx(ctx context.Context, sys *opinion.System, target, horizon int, score voting.Score, sel SeedSelector) ([]int32, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if ok, err := Wins(sys, target, horizon, score, nil); err != nil {
		return nil, err
	} else if ok {
		return []int32{}, nil
	}
	n := sys.N()
	// Feasibility at k = n: every selector returns all nodes there, so the
	// probe is selector-independent.
	all := make([]int32, n)
	for v := range all {
		all[v] = int32(v)
	}
	if ok, err := Wins(sys, target, horizon, score, all); err != nil {
		return nil, err
	} else if !ok {
		return nil, ErrCannotWin
	}
	probe := func(k int) ([]int32, bool, error) {
		if err := ctxErr(ctx); err != nil {
			return nil, false, err
		}
		if k >= n {
			return all, true, nil
		}
		s, err := sel(k)
		if err != nil {
			return nil, false, fmt.Errorf("core: selector failed at k=%d: %w", k, err)
		}
		ok, err := Wins(sys, target, horizon, score, s)
		if err != nil {
			return nil, false, err
		}
		return s, ok, nil
	}
	// Doubling phase: find a winning hi.
	lo, hi := 0, 1
	var best []int32
	for {
		s, ok, err := probe(hi)
		if err != nil {
			return nil, err
		}
		if ok {
			best = s
			break
		}
		lo = hi
		if hi >= n {
			return nil, ErrCannotWin
		}
		hi *= 2
		if hi > n {
			hi = n
		}
	}
	// Binary search (lo loses, hi wins).
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		s, ok, err := probe(mid)
		if err != nil {
			return nil, err
		}
		if ok {
			hi = mid
			best = s
		} else {
			lo = mid
		}
	}
	return best, nil
}

// DMSelector returns a SeedSelector backed by SelectSeedsDM running with
// the given engine parallelism (0 = GOMAXPROCS).
func DMSelector(sys *opinion.System, target, horizon int, score voting.Score, parallelism int) SeedSelector {
	return DMSelectorCtx(nil, sys, target, horizon, score, parallelism)
}

// DMSelectorCtx is DMSelector with each probe's Problem carrying ctx, so a
// cancelled min-seeds-to-win query abandons the inner greedy promptly.
func DMSelectorCtx(ctx context.Context, sys *opinion.System, target, horizon int, score voting.Score, parallelism int) SeedSelector {
	return func(k int) ([]int32, error) {
		p := &Problem{Sys: sys, Target: target, Horizon: horizon, K: k, Score: score, Ctx: ctx}
		seeds, _, err := SelectSeedsDM(p, parallelism)
		return seeds, err
	}
}
