// Package datasets synthesizes stand-ins for the paper's five evaluation
// datasets (Table III): DBLP, Yelp, and the three Twitter crawls. The raw
// crawls are proprietary/unavailable, so each builder reproduces the
// *algorithmically relevant* structure documented in §VIII-A:
//
//   - topology: heavy-tailed directed graphs (preferential attachment) or
//     domain-structured collaboration graphs (planted partition);
//   - edge weights: the paper's interaction law w = 1 − e^{−a/µ}, with a a
//     synthetic interaction count (co-authorships, common visits,
//     retweets) and µ the Fig-19 sweep parameter, followed by
//     column-stochastic normalization;
//   - initial opinions: domain-affinity similarities (DBLP), Beta-shaped
//     ratings (Yelp), or clipped-Gaussian sentiments (Twitter);
//   - stubbornness: 1 − (normalized) variance of repeated opinion samples
//     (DBLP/Yelp) or uniform random (Twitter, the paper's own choice).
//
// All builders are deterministic in Options.Seed. Default sizes are scaled
// to a single-core laptop; pass Options.N to grow or shrink.
package datasets

import (
	"fmt"
	"math"
	"math/rand"

	"ovm/internal/graph"
	"ovm/internal/opinion"
	"ovm/internal/sampling"
)

// Dataset is a ready-to-run multi-candidate opinion world.
type Dataset struct {
	Name           string
	Sys            *opinion.System
	CandidateNames []string
	// DefaultTarget indexes the paper's default target candidate.
	DefaultTarget int

	// Domain metadata (DBLP-like only; nil otherwise).
	DomainNames []string
	Community   []int       // primary domain per user
	Affinity    [][]float64 // per-user domain affinity vectors
}

// Options control dataset synthesis.
type Options struct {
	// N overrides the node count (0 = dataset default).
	N int
	// Mu is the edge-weight decay µ in w = 1 − e^{−a/µ} (0 = default 10).
	Mu float64
	// Seed drives all randomness (0 is a valid fixed seed).
	Seed int64
}

func (o Options) withDefaults(defaultN int) Options {
	if o.N == 0 {
		o.N = defaultN
	}
	if o.Mu == 0 {
		o.Mu = 10
	}
	return o
}

// Names lists the dataset identifiers accepted by ByName.
var Names = []string{
	"dblp-like",
	"yelp-like",
	"twitter-election-like",
	"twitter-distancing-like",
	"twitter-mask-like",
}

// ByName dispatches to the builder for the given dataset name.
func ByName(name string, o Options) (*Dataset, error) {
	switch name {
	case "dblp-like":
		return DBLPLike(o)
	case "yelp-like":
		return YelpLike(o)
	case "twitter-election-like":
		return TwitterElectionLike(o)
	case "twitter-distancing-like":
		return TwitterDistancingLike(o)
	case "twitter-mask-like":
		return TwitterMaskLike(o)
	default:
		return nil, fmt.Errorf("datasets: unknown dataset %q (want one of %v)", name, Names)
	}
}

// interactionCount draws a synthetic interaction count a ≥ 1 with a
// geometric tail, mimicking co-authorship / common-visit / retweet counts.
func interactionCount(r *rand.Rand) float64 {
	a := 1.0
	for r.Float64() < 0.42 {
		a++
	}
	return a
}

// edgeWeight is the §VIII-A interaction law w = 1 − e^{−a/µ} [74].
func edgeWeight(a, mu float64) float64 {
	return 1 - math.Exp(-a/mu)
}

// weightEdges assigns interaction-law weights to raw generator edges.
func weightEdges(edges []graph.Edge, mu float64, r *rand.Rand) {
	for i := range edges {
		edges[i].W = edgeWeight(interactionCount(r), mu)
	}
}

// stubFromVariance converts repeated opinion samples into stubbornness:
// 1 minus the sample variance normalized by the maximum possible variance
// of a [0,1] variable (0.25), clipped into [0,1]. High variance ⇒ the user
// changes opinion often ⇒ low stubbornness.
func stubFromVariance(samples []float64) float64 {
	mean := 0.0
	for _, s := range samples {
		mean += s
	}
	mean /= float64(len(samples))
	v := 0.0
	for _, s := range samples {
		v += (s - mean) * (s - mean)
	}
	v /= float64(len(samples))
	stub := 1 - v/0.25
	if stub < 0 {
		return 0
	}
	if stub > 1 {
		return 1
	}
	return stub
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// DBLPDomains mirrors the seven research domains of the case study
// (Tables IV/V).
var DBLPDomains = []string{"DM", "HCI", "ML", "CN", "AL", "SW", "HW"}

// DBLPLike builds the ACM-election case-study world: a 7-domain
// collaboration graph, two candidates with complementary domain profiles
// ("Joseph A. Konstan" ≈ HCI/ML-centric, the default target, and "Yannis
// E. Ioannidis" ≈ DM/AL-centric), initial opinions from affinity·profile
// similarity, and variance-based stubbornness.
func DBLPLike(o Options) (*Dataset, error) {
	o = o.withDefaults(8000)
	r := sampling.NewRand(o.Seed, 301)
	edges, community, err := graph.PlantedPartition(o.N, len(DBLPDomains), 7, 1.5, r)
	if err != nil {
		return nil, err
	}
	weightEdges(edges, o.Mu, r)
	g, err := graph.FromEdgesColumnStochastic(o.N, edges)
	if err != nil {
		return nil, err
	}

	d := len(DBLPDomains)
	// Per-user affinity: mass on the primary domain plus up to two others.
	affinity := make([][]float64, o.N)
	for v := 0; v < o.N; v++ {
		a := make([]float64, d)
		a[community[v]] = 0.5 + 0.5*r.Float64()
		for extra := 0; extra < 2; extra++ {
			if r.Float64() < 0.7 {
				a[r.Intn(d)] += 0.5 * r.Float64()
			}
		}
		norm := 0.0
		for _, x := range a {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		for i := range a {
			a[i] /= norm
		}
		affinity[v] = a
	}
	// Candidate domain profiles (unit vectors).
	profiles := [][]float64{
		{0.10, 0.60, 0.45, 0.25, 0.10, 0.35, 0.25}, // Konstan: HCI/ML/SW
		{0.65, 0.10, 0.20, 0.35, 0.45, 0.15, 0.30}, // Ioannidis: DM/AL/CN
	}
	for _, p := range profiles {
		norm := 0.0
		for _, x := range p {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		for i := range p {
			p[i] /= norm
		}
	}
	names := []string{"Joseph A. Konstan", "Yannis E. Ioannidis"}
	cands := make([]*opinion.Candidate, 2)
	for q := range cands {
		init := make([]float64, o.N)
		stub := make([]float64, o.N)
		samples := make([]float64, 5)
		for v := 0; v < o.N; v++ {
			cos := 0.0
			for i := 0; i < d; i++ {
				cos += affinity[v][i] * profiles[q][i]
			}
			init[v] = clamp01(cos)
			// Five "yearly" noisy re-samples of the similarity feed the
			// variance-based stubbornness.
			for y := range samples {
				samples[y] = clamp01(cos + 0.35*r.NormFloat64())
			}
			stub[v] = stubFromVariance(samples)
		}
		cands[q] = &opinion.Candidate{Name: names[q], G: g, Init: init, Stub: stub}
	}
	sys, err := opinion.NewSystem(cands)
	if err != nil {
		return nil, err
	}
	return &Dataset{
		Name:           "dblp-like",
		Sys:            sys,
		CandidateNames: names,
		DefaultTarget:  0,
		DomainNames:    DBLPDomains,
		Community:      community,
		Affinity:       affinity,
	}, nil
}

// YelpCategories are the ten restaurant-category candidates.
var YelpCategories = []string{
	"Chinese", "American", "Italian", "Mexican", "Japanese",
	"Indian", "Thai", "French", "Korean", "Mediterranean",
}

// YelpLike builds the review-network world: preferential-attachment
// friendships, ten category candidates, Beta-shaped ratings as initial
// opinions, and variance-based stubbornness. Default target: "Chinese".
func YelpLike(o Options) (*Dataset, error) {
	o = o.withDefaults(12000)
	r := sampling.NewRand(o.Seed, 302)
	edges, err := graph.PreferentialAttachment(o.N, 8, r)
	if err != nil {
		return nil, err
	}
	weightEdges(edges, o.Mu, r)
	g, err := graph.FromEdgesColumnStochastic(o.N, edges)
	if err != nil {
		return nil, err
	}
	// Category popularity skews the rating distribution per candidate.
	cands := make([]*opinion.Candidate, len(YelpCategories))
	for q := range cands {
		// Category-level popularity in a narrow band [0.50, 0.56]: real
		// rating averages are closely packed across categories, which is
		// what makes Copeland's one-on-one contests competitive (and the
		// paper's Fig-2 Copeland ratios achievable).
		pop := 0.50 + 0.06*r.Float64()
		init := make([]float64, o.N)
		stub := make([]float64, o.N)
		samples := make([]float64, 6)
		for v := 0; v < o.N; v++ {
			// Rating sparsity: a user reviews only some categories; an
			// unrated category carries opinion 0 and a mild (persuadable)
			// stubbornness. This sparsity is what keeps the weakly
			// favorable set U_q^(t) well below V on the real data and
			// makes the Copeland sandwich ratios of Fig 2 achievable.
			if r.Float64() < 0.65 {
				init[v] = 0
				stub[v] = 0.5 * r.Float64()
				continue
			}
			// Beta(2,2)-ish rating around the category popularity.
			u1, u2 := r.Float64(), r.Float64()
			init[v] = clamp01(pop + 0.4*((u1+u2)-1))
			for m := range samples {
				samples[m] = clamp01(init[v] + 0.3*r.NormFloat64())
			}
			stub[v] = stubFromVariance(samples)
		}
		cands[q] = &opinion.Candidate{Name: YelpCategories[q], G: g, Init: init, Stub: stub}
	}
	sys, err := opinion.NewSystem(cands)
	if err != nil {
		return nil, err
	}
	return &Dataset{
		Name:           "yelp-like",
		Sys:            sys,
		CandidateNames: YelpCategories,
		DefaultTarget:  0,
	}, nil
}

// twitterLike builds one of the three Twitter-style worlds.
func twitterLike(name string, candidateNames []string, lean []float64, o Options, defaultN int, stream uint64) (*Dataset, error) {
	o = o.withDefaults(defaultN)
	r := sampling.NewRand(o.Seed, stream)
	edges, err := graph.PreferentialAttachment(o.N, 2, r)
	if err != nil {
		return nil, err
	}
	weightEdges(edges, o.Mu, r)
	g, err := graph.FromEdgesColumnStochastic(o.N, edges)
	if err != nil {
		return nil, err
	}
	cands := make([]*opinion.Candidate, len(candidateNames))
	for q := range cands {
		init := make([]float64, o.N)
		stub := make([]float64, o.N)
		for v := 0; v < o.N; v++ {
			// VADER-style sentiment: clipped Gaussian around the
			// candidate's population lean.
			init[v] = clamp01(lean[q] + 0.22*r.NormFloat64())
			// "Since most users have only 1 tweet, we assign stubbornness
			// values uniformly at random in [0, 1]." (§VIII-A)
			stub[v] = r.Float64()
		}
		cands[q] = &opinion.Candidate{Name: candidateNames[q], G: g, Init: init, Stub: stub}
	}
	sys, err := opinion.NewSystem(cands)
	if err != nil {
		return nil, err
	}
	return &Dataset{
		Name:           name,
		Sys:            sys,
		CandidateNames: candidateNames,
		DefaultTarget:  0,
	}, nil
}

// TwitterElectionLike builds the four-party election world. Default
// target: "Democratic".
func TwitterElectionLike(o Options) (*Dataset, error) {
	return twitterLike("twitter-election-like",
		[]string{"Democratic", "Republican", "Green", "Libertarian"},
		[]float64{0.52, 0.50, 0.30, 0.28}, o, 20000, 303)
}

// TwitterDistancingLike builds the two-stance social-distancing world.
// Default target: "For Social Distancing".
func TwitterDistancingLike(o Options) (*Dataset, error) {
	return twitterLike("twitter-distancing-like",
		[]string{"For Social Distancing", "Against Social Distancing"},
		[]float64{0.52, 0.47}, o, 30000, 304)
}

// TwitterMaskLike builds the two-stance mask world. Default target:
// "For Wearing a Mask".
func TwitterMaskLike(o Options) (*Dataset, error) {
	return twitterLike("twitter-mask-like",
		[]string{"For Wearing a Mask", "Against Wearing a Mask"},
		[]float64{0.53, 0.46}, o, 20000, 305)
}
