package datasets_test

import (
	"math"
	"testing"

	"ovm/internal/datasets"
	"ovm/internal/opinion"
)

func checkDataset(t *testing.T, d *datasets.Dataset, wantCands int) {
	t.Helper()
	if d.Sys.R() != wantCands {
		t.Errorf("%s: %d candidates, want %d", d.Name, d.Sys.R(), wantCands)
	}
	if len(d.CandidateNames) != wantCands {
		t.Errorf("%s: %d names, want %d", d.Name, len(d.CandidateNames), wantCands)
	}
	if d.DefaultTarget < 0 || d.DefaultTarget >= wantCands {
		t.Errorf("%s: bad default target %d", d.Name, d.DefaultTarget)
	}
	for q := 0; q < d.Sys.R(); q++ {
		if err := d.Sys.Candidate(q).Validate(); err != nil {
			t.Errorf("%s candidate %d: %v", d.Name, q, err)
		}
	}
}

func TestAllDatasetsBuild(t *testing.T) {
	wantCands := map[string]int{
		"dblp-like":               2,
		"yelp-like":               10,
		"twitter-election-like":   4,
		"twitter-distancing-like": 2,
		"twitter-mask-like":       2,
	}
	for _, name := range datasets.Names {
		d, err := datasets.ByName(name, datasets.Options{N: 500, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.Sys.N() != 500 {
			t.Errorf("%s: N = %d, want 500", name, d.Sys.N())
		}
		checkDataset(t, d, wantCands[name])
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := datasets.ByName("nope", datasets.Options{}); err == nil {
		t.Error("expected error for unknown dataset")
	}
}

func TestDeterministicInSeed(t *testing.T) {
	a, err := datasets.YelpLike(datasets.Options{N: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := datasets.YelpLike(datasets.Options{N: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Sys.Candidate(0).G.M() != b.Sys.Candidate(0).G.M() {
		t.Error("edge counts differ across identical seeds")
	}
	for v := 0; v < 300; v++ {
		if a.Sys.Candidate(0).Init[v] != b.Sys.Candidate(0).Init[v] {
			t.Fatal("initial opinions differ across identical seeds")
		}
	}
	c, err := datasets.YelpLike(datasets.Options{N: 300, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for v := 0; v < 300; v++ {
		if a.Sys.Candidate(0).Init[v] != c.Sys.Candidate(0).Init[v] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical opinions")
	}
}

func TestDBLPLikeDomainStructure(t *testing.T) {
	d, err := datasets.DBLPLike(datasets.Options{N: 700, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.DomainNames) != 7 {
		t.Fatalf("domains = %d, want 7", len(d.DomainNames))
	}
	if len(d.Community) != 700 || len(d.Affinity) != 700 {
		t.Fatal("community/affinity metadata missing")
	}
	// Affinity vectors are unit-norm over 7 domains.
	for v := 0; v < 700; v++ {
		if d.Community[v] < 0 || d.Community[v] >= 7 {
			t.Fatalf("bad community %d", d.Community[v])
		}
		norm := 0.0
		for _, x := range d.Affinity[v] {
			norm += x * x
		}
		if math.Abs(norm-1) > 1e-9 {
			t.Fatalf("affinity norm %v != 1", norm)
		}
	}
	// The two candidates' opinions must be anti-correlated across the
	// population (complementary domain profiles).
	init0 := d.Sys.Candidate(0).Init
	init1 := d.Sys.Candidate(1).Init
	var cov, m0, m1 float64
	for v := range init0 {
		m0 += init0[v]
		m1 += init1[v]
	}
	m0 /= float64(len(init0))
	m1 /= float64(len(init1))
	for v := range init0 {
		cov += (init0[v] - m0) * (init1[v] - m1)
	}
	if cov >= 0 {
		t.Errorf("candidate opinions should be anti-correlated, covariance %v", cov)
	}
}

func TestMuChangesWeightsOnly(t *testing.T) {
	a, err := datasets.TwitterMaskLike(datasets.Options{N: 400, Seed: 3, Mu: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := datasets.TwitterMaskLike(datasets.Options{N: 400, Seed: 3, Mu: 20})
	if err != nil {
		t.Fatal(err)
	}
	if a.Sys.Candidate(0).G.M() != b.Sys.Candidate(0).G.M() {
		t.Error("mu should not change topology")
	}
	// Same initial opinions (identical RNG stream order).
	for v := 0; v < 400; v++ {
		if a.Sys.Candidate(0).Init[v] != b.Sys.Candidate(0).Init[v] {
			t.Fatal("mu changed initial opinions")
		}
	}
}

func TestOpinionDiffusionRunsOnDataset(t *testing.T) {
	d, err := datasets.TwitterMaskLike(datasets.Options{N: 400, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	res := opinion.OpinionsAt(d.Sys.Candidate(0), 10, []int32{0, 1, 2})
	for v, b := range res {
		if b < 0 || b > 1 {
			t.Fatalf("opinion[%d] = %v outside [0,1]", v, b)
		}
	}
}

func TestStubbornnessRanges(t *testing.T) {
	for _, name := range datasets.Names {
		d, err := datasets.ByName(name, datasets.Options{N: 300, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < d.Sys.R(); q++ {
			for v, s := range d.Sys.Candidate(q).Stub {
				if s < 0 || s > 1 {
					t.Fatalf("%s cand %d stub[%d] = %v", name, q, v, s)
				}
			}
		}
	}
}
