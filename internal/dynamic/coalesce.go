package dynamic

import "ovm/internal/obs"

// Coalescing: the async update pipeline accepts batches faster than it
// repairs them, so by the time the applier picks the queue up there are
// usually several raw batches waiting. Repair cost is dominated by the
// number of epochs repaired, not the number of ops inside each epoch, so
// merging queued batches into fewer "super-batches" is the pipeline's main
// throughput lever. The merge must be *exact*: the serving contract says a
// restarted daemon replaying the raw persisted log reaches byte-identical
// state, so a coalesced apply may only be used where it provably produces
// the same bytes as replaying the raw batches one by one.
//
// # Equivalence proof
//
// Artifacts (walk sets, sketches, RR collections) are byte-determined by
// the system they are built on: the repair contract (see the package
// comment) makes repairing after a batch byte-identical to a from-scratch
// rebuild on the mutated system, so repairing once after a super-batch and
// repairing after each raw batch both equal a rebuild on the *final*
// system. Equivalence therefore reduces to: ApplySystem(sys, super) must
// produce the same bytes as ApplySystem over the raw batches in order.
//
// ApplySystem splits a batch into graph deltas and vector edits, which
// commute with each other because they touch disjoint state:
//
//   - Vector edits (set_opinion / set_stubbornness) are plain positional
//     assignments applied in order; the last write to a (kind, candidate,
//     node) slot wins and no op ever reads a vector value. Dropping every
//     assignment that a later assignment to the same slot overwrites is
//     exact, across batch boundaries.
//
//   - Graph deltas are grouped by destination column. graph.ApplyDeltas
//     reads the column's *current normalized* weights as the raw measure,
//     applies the column's ops in order, and renormalizes the column once
//     per call. Merging two batches that both touch column v changes the
//     bytes: sequential replay renormalizes v twice (the second batch's
//     ops read the once-renormalized weights), the merged apply
//     renormalizes once — same measure up to FP rounding, different bits.
//     But if every touched column is touched by exactly ONE of the merged
//     batches, that column's op sequence, the weights it reads, and its
//     single renormalization are identical under merge, and untouched
//     columns are copied verbatim. So batches merge exactly iff their
//     edge-touched destination-column sets are pairwise disjoint.
//
//   - Within one batch, a set_weight on edge e that a later set_weight on
//     e overwrites is dead: DeltaSet replaces the working value without
//     reading it, an intervening add_edge's sum is itself overwritten, and
//     the column stays in the touched set either way. It may be dropped
//     unless a remove_edge of e sits between them (the remove's
//     missing-edge check may depend on the insert). Cross-batch this case
//     cannot arise inside a super-batch: same edge ⇒ same column ⇒ the
//     batches were never merged.
//
// What is deliberately NOT coalesced: add_edge/remove_edge "cancellation"
// (dropping an add whose edge a later batch removes). Sequential replay
// renormalizes the column at the intermediate state, rescaling the
// *sibling* edges' weights in FP; skipping the intermediate state is not
// bit-exact, so cancellation would break the replay contract. Those ops
// still coalesce at the batch level whenever the disjoint-column rule
// allows the merge.
//
// coalesce_test.go pins both halves: merged applies are byte-identical to
// sequential replay on the system (CSR arrays and vectors compared bitwise)
// and end-to-end through repair + selection across all five scores.

var coalescedOps = obs.NewCounter("ovm_dynamic_coalesced_ops_total",
	"Mutation ops elided by update coalescing (dead vector writes and overwritten set_weights)")

// CoalescedRun is one super-batch plus the raw batches it replaces. The
// super-batch advances the epoch by len(Raw): the raw batches are what the
// update log persists, the super-batch is what the applier repairs with.
type CoalescedRun struct {
	// Super is the merged batch; applying it yields byte-identical state
	// to replaying Raw in order.
	Super Batch
	// Raw holds the original batches, in acceptance order.
	Raw []Batch
}

// Coalesce greedily merges consecutive batches into runs under the exact-
// equivalence rules proven above: a batch joins the current run only while
// the run's edge-touched destination columns stay disjoint from its own and
// the merged op count stays within maxOps (maxOps <= 0 means unbounded; a
// single oversized batch still forms its own run). Within each run, dead
// vector writes and overwritten set_weights are elided.
func Coalesce(batches []Batch, maxOps int) []CoalescedRun {
	var runs []CoalescedRun
	var cols map[int32]struct{} // edge-touched destination columns of the open run
	for _, b := range batches {
		bcols := edgeColumns(b)
		n := len(runs)
		if n > 0 && disjoint(cols, bcols) &&
			(maxOps <= 0 || len(runs[n-1].Super)+len(b) <= maxOps) {
			run := &runs[n-1]
			run.Super = append(run.Super, b...)
			run.Raw = append(run.Raw, b)
			if cols == nil {
				cols = bcols
			} else {
				for c := range bcols {
					cols[c] = struct{}{}
				}
			}
			continue
		}
		runs = append(runs, CoalescedRun{
			Super: append(Batch(nil), b...),
			Raw:   []Batch{b},
		})
		cols = bcols
	}
	var elided int
	for i := range runs {
		before := len(runs[i].Super)
		runs[i].Super = elideDeadOps(runs[i].Super)
		elided += before - len(runs[i].Super)
	}
	if elided > 0 && obs.CostEnabled() {
		coalescedOps.Add(int64(elided))
	}
	return runs
}

// CoalescedOps reports how many ops a set of runs elided relative to the
// raw batches they replace.
func CoalescedOps(runs []CoalescedRun) int {
	var raw, super int
	for _, r := range runs {
		super += len(r.Super)
		for _, b := range r.Raw {
			raw += len(b)
		}
	}
	return raw - super
}

// edgeColumns returns the destination columns a batch's edge ops touch.
func edgeColumns(b Batch) map[int32]struct{} {
	var cols map[int32]struct{}
	for _, op := range b {
		switch op.Kind {
		case OpAddEdge, OpRemoveEdge, OpSetWeight:
			if cols == nil {
				cols = make(map[int32]struct{})
			}
			cols[op.To] = struct{}{}
		}
	}
	return cols
}

func disjoint(a, b map[int32]struct{}) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	for k := range a {
		if _, ok := b[k]; ok {
			return false
		}
	}
	return true
}

type edgeKey struct{ from, to int32 }
type vecKey struct {
	kind OpKind
	cand int
	node int32
}

// elideDeadOps drops the provably dead ops from a merged batch: vector
// assignments overwritten by a later assignment to the same slot, and
// set_weights overwritten by a later set_weight on the same edge with no
// intervening remove_edge of that edge. Op order is otherwise preserved.
func elideDeadOps(b Batch) Batch {
	lastVec := make(map[vecKey]int)  // slot -> index of the final write
	lastSet := make(map[edgeKey]int) // edge -> index of the final set_weight
	barrier := make(map[edgeKey]int) // edge -> index of the last remove_edge
	for i, op := range b {
		switch op.Kind {
		case OpSetOpinion, OpSetStubbornness:
			lastVec[vecKey{op.Kind, op.Cand, op.Node}] = i
		case OpSetWeight:
			lastSet[edgeKey{op.From, op.To}] = i
		case OpRemoveEdge:
			barrier[edgeKey{op.From, op.To}] = i
		}
	}
	out := b[:0:0]
	for i, op := range b {
		switch op.Kind {
		case OpSetOpinion, OpSetStubbornness:
			if lastVec[vecKey{op.Kind, op.Cand, op.Node}] != i {
				continue // a later write to the same slot wins
			}
		case OpSetWeight:
			k := edgeKey{op.From, op.To}
			// Dead iff a later set_weight exists and no remove_edge of
			// this edge sits after this op (a remove between two sets
			// must still see the first set's insert; conservatively any
			// later remove keeps the op).
			ri, removed := barrier[k]
			if lastSet[k] != i && (!removed || ri < i) {
				continue
			}
		}
		out = append(out, op)
	}
	return out
}
