package dynamic_test

import (
	"math"
	"math/rand"
	"testing"

	"ovm/internal/core"
	"ovm/internal/dynamic"
	"ovm/internal/opinion"
	"ovm/internal/rwalk"
	"ovm/internal/sketch"
	"ovm/internal/voting"
	"ovm/internal/walks"
)

// randomBatch builds a valid batch against cur: edge ops over a small node
// range (so column collisions between batches are common and the
// disjointness rule actually gates merges), vector ops over an even
// smaller range (so last-write-wins elision actually triggers), and
// remove_edge only for edges present before the batch.
func randomBatch(t *testing.T, r *rand.Rand, cur *opinion.System) dynamic.Batch {
	t.Helper()
	n := int32(cur.N())
	g := cur.Candidate(0).G
	var b dynamic.Batch
	removed := map[[2]int32]bool{}
	for len(b) == 0 || (len(b) < 6 && r.Intn(3) > 0) {
		switch r.Intn(5) {
		case 0:
			b = append(b, dynamic.Op{Kind: dynamic.OpAddEdge,
				From: r.Int31n(n), To: r.Int31n(n / 4), W: 0.25 + r.Float64()})
		case 1:
			b = append(b, dynamic.Op{Kind: dynamic.OpSetWeight,
				From: r.Int31n(n), To: r.Int31n(n / 4), W: 0.25 + r.Float64()})
		case 2:
			v := r.Int31n(n / 4)
			src, _ := g.InNeighbors(v)
			if len(src) == 0 || removed[[2]int32{src[0], v}] {
				continue
			}
			removed[[2]int32{src[0], v}] = true
			b = append(b, dynamic.Op{Kind: dynamic.OpRemoveEdge, From: src[0], To: v})
		case 3:
			b = append(b, dynamic.Op{Kind: dynamic.OpSetOpinion,
				Cand: r.Intn(cur.R()), Node: r.Int31n(8), Value: r.Float64()})
		default:
			b = append(b, dynamic.Op{Kind: dynamic.OpSetStubbornness,
				Cand: r.Intn(cur.R()), Node: r.Int31n(8), Value: r.Float64()})
		}
	}
	return b
}

// requireSameBits asserts two systems are bitwise identical: the graph CSR
// arrays and every candidate's opinion/stubbornness vectors, compared via
// Float64bits so -0.0 vs 0.0 or NaN-payload drift would be caught.
func requireSameBits(t *testing.T, label string, a, b *opinion.System) {
	t.Helper()
	ga, gb := a.Candidate(0).G.Arrays(), b.Candidate(0).G.Arrays()
	if ga.N != gb.N || len(ga.InSrc) != len(gb.InSrc) {
		t.Fatalf("%s: graph shape differs: n %d vs %d, m %d vs %d", label, ga.N, gb.N, len(ga.InSrc), len(gb.InSrc))
	}
	i32s := func(name string, x, y []int32) {
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("%s: %s[%d] = %d vs %d", label, name, i, x[i], y[i])
			}
		}
	}
	f64s := func(name string, x, y []float64) {
		for i := range x {
			if math.Float64bits(x[i]) != math.Float64bits(y[i]) {
				t.Fatalf("%s: %s[%d] = %x vs %x (%v vs %v)", label, name, i,
					math.Float64bits(x[i]), math.Float64bits(y[i]), x[i], y[i])
			}
		}
	}
	i32s("inStart", ga.InStart, gb.InStart)
	i32s("inSrc", ga.InSrc, gb.InSrc)
	f64s("inW", ga.InW, gb.InW)
	i32s("outStart", ga.OutStart, gb.OutStart)
	i32s("outDst", ga.OutDst, gb.OutDst)
	f64s("outW", ga.OutW, gb.OutW)
	if a.R() != b.R() {
		t.Fatalf("%s: candidate count %d vs %d", label, a.R(), b.R())
	}
	for q := 0; q < a.R(); q++ {
		f64s("init", a.Candidate(q).Init, b.Candidate(q).Init)
		f64s("stub", a.Candidate(q).Stub, b.Candidate(q).Stub)
	}
}

// TestCoalesceByteIdentity: applying the coalesced super-batches must land
// on a system bitwise identical to replaying every raw batch in order —
// the property that lets the async applier repair per run while the
// persisted log keeps the raw batches.
func TestCoalesceByteIdentity(t *testing.T) {
	totalElided := 0
	for _, seed := range []int64{1, 7, 42} {
		r := rand.New(rand.NewSource(seed))
		sys := testSystem(t, 120, seed)
		cur := sys
		var raw []dynamic.Batch
		for i := 0; i < 40; i++ {
			b := randomBatch(t, r, cur)
			raw = append(raw, b)
			next, _, err := dynamic.ApplySystem(cur, b)
			if err != nil {
				t.Fatal(err)
			}
			cur = next
		}
		for _, maxOps := range []int{0, 12} {
			runs := dynamic.Coalesce(raw, maxOps)
			if len(runs) >= len(raw) {
				t.Fatalf("seed %d maxOps %d: coalescer merged nothing (%d runs from %d batches)", seed, maxOps, len(runs), len(raw))
			}
			var rawCount int
			co := sys
			for _, run := range runs {
				if maxOps > 0 && len(run.Super) > maxOps && len(run.Raw) > 1 {
					t.Fatalf("seed %d: merged run exceeds maxOps: %d ops", seed, len(run.Super))
				}
				rawCount += len(run.Raw)
				next, _, err := dynamic.ApplySystem(co, run.Super)
				if err != nil {
					t.Fatal(err)
				}
				co = next
			}
			if rawCount != len(raw) {
				t.Fatalf("seed %d: runs cover %d raw batches, want %d", seed, rawCount, len(raw))
			}
			requireSameBits(t, "coalesced vs sequential", co, cur)
		}
		totalElided += dynamic.CoalescedOps(dynamic.Coalesce(raw, 0))
	}
	if totalElided <= 0 {
		t.Fatal("expected some elided ops across the duplicate-heavy streams")
	}
}

// TestCoalesceRules pins the merge gating and elision rules directly.
func TestCoalesceRules(t *testing.T) {
	setW := func(from, to int32, w float64) dynamic.Op {
		return dynamic.Op{Kind: dynamic.OpSetWeight, From: from, To: to, W: w}
	}
	setOp := func(node int32, v float64) dynamic.Op {
		return dynamic.Op{Kind: dynamic.OpSetOpinion, Cand: 0, Node: node, Value: v}
	}

	// Batches touching the same destination column must not merge.
	runs := dynamic.Coalesce([]dynamic.Batch{{setW(1, 5, 1)}, {setW(2, 5, 1)}}, 0)
	if len(runs) != 2 {
		t.Fatalf("same-column batches merged: %d runs", len(runs))
	}
	// Disjoint columns merge, and vector ops never block a merge.
	runs = dynamic.Coalesce([]dynamic.Batch{{setW(1, 5, 1), setOp(3, 0.5)}, {setW(2, 6, 1), setOp(3, 0.9)}}, 0)
	if len(runs) != 1 {
		t.Fatalf("disjoint-column batches did not merge: %d runs", len(runs))
	}
	// The overwritten opinion write is elided, the final one kept.
	super := runs[0].Super
	if len(super) != 3 {
		t.Fatalf("super batch = %v, want the first set_opinion elided", super)
	}
	for _, op := range super {
		if op.Kind == dynamic.OpSetOpinion && op.Value != 0.9 {
			t.Fatalf("kept the overwritten opinion write: %v", super)
		}
	}
	// An overwritten set_weight is elided within a batch...
	runs = dynamic.Coalesce([]dynamic.Batch{{setW(1, 5, 1), setW(1, 5, 2)}}, 0)
	if got := runs[0].Super; len(got) != 1 || got[0].W != 2 {
		t.Fatalf("intra-batch set_weight not elided: %v", got)
	}
	// ...but not across an intervening remove of the same edge, whose
	// missing-edge check may need the first set's insert.
	rm := dynamic.Op{Kind: dynamic.OpRemoveEdge, From: 1, To: 5}
	runs = dynamic.Coalesce([]dynamic.Batch{{setW(1, 5, 1), rm, setW(1, 5, 2)}}, 0)
	if got := runs[0].Super; len(got) != 3 {
		t.Fatalf("set_weight before a remove barrier was elided: %v", got)
	}
	// maxOps caps merged runs but never splits a single batch.
	runs = dynamic.Coalesce([]dynamic.Batch{{setW(1, 5, 1)}, {setW(1, 6, 1)}}, 1)
	if len(runs) != 2 {
		t.Fatalf("maxOps=1 still merged: %d runs", len(runs))
	}
}

// TestCoalescedSelectionEquivalence is the end-to-end half of the proof:
// repairing sampled artifacts once per coalesced run must leave greedy
// selection bit-identical to repairing after every raw batch, for all five
// score kinds, both samplers, at parallelism 1/4/0.
func TestCoalescedSelectionEquivalence(t *testing.T) {
	const (
		n       = 120
		seed    = int64(11)
		horizon = 5
		k       = 5
		theta   = 500
		lambda  = 12
	)
	sys := testSystem(t, n, 9)
	prob := &core.Problem{Sys: sys, Target: 0, Horizon: horizon, K: k, Score: voting.Cumulative{}}
	plan := make([]int32, n)
	for i := range plan {
		plan[i] = lambda
	}
	rwSeq, err := rwalk.GenerateSet(prob, plan, seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	rwSeq.EnsureIndex()
	rsSeq, err := sketch.GenerateSet(prob, theta, seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	rsSeq.EnsureIndex()
	rwCo, rsCo := rwSeq.Clone(), rsSeq.Clone()
	rwCo.EnsureIndex()
	rsCo.EnsureIndex()

	// Three raw batches with pairwise-disjoint edge columns (so they merge
	// into one run) and overlapping vector writes (so elision is on the
	// tested path).
	raw := []dynamic.Batch{
		{{Kind: dynamic.OpAddEdge, From: 3, To: 11, W: 1},
			{Kind: dynamic.OpSetOpinion, Cand: 0, Node: 7, Value: 0.2}},
		{{Kind: dynamic.OpSetWeight, From: 40, To: 41, W: 0.5},
			{Kind: dynamic.OpSetStubbornness, Cand: 0, Node: 9, Value: 0.6}},
		{{Kind: dynamic.OpRemoveEdge, From: firstInNeighbor(t, sys, 20), To: 20},
			{Kind: dynamic.OpSetOpinion, Cand: 0, Node: 7, Value: 0.95}},
	}

	// Sequential: apply + repair per raw batch.
	seqSys := sys
	for _, b := range raw {
		next, cs, err := dynamic.ApplySystem(seqSys, b)
		if err != nil {
			t.Fatal(err)
		}
		mprob := &core.Problem{Sys: next, Target: 0, Horizon: horizon, K: k, Score: voting.Cumulative{}}
		rwSeq, _, err = rwalk.RepairSet(mprob, rwSeq, cs.WalkMask(n, 0), seed, 1)
		if err != nil {
			t.Fatal(err)
		}
		rsSeq, _, err = sketch.RepairSet(mprob, rsSeq, cs.WalkMask(n, 0), seed, 1)
		if err != nil {
			t.Fatal(err)
		}
		seqSys = next
	}

	// Coalesced: one merged super-batch, one repair.
	runs := dynamic.Coalesce(raw, 0)
	if len(runs) != 1 {
		t.Fatalf("fixture batches formed %d runs, want 1", len(runs))
	}
	coSys, cs, err := dynamic.ApplySystem(sys, runs[0].Super)
	if err != nil {
		t.Fatal(err)
	}
	requireSameBits(t, "selection fixture", coSys, seqSys)
	mprob := &core.Problem{Sys: coSys, Target: 0, Horizon: horizon, K: k, Score: voting.Cumulative{}}
	rwCo, _, err = rwalk.RepairSet(mprob, rwCo, cs.WalkMask(n, 0), seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	rsCo, _, err = sketch.RepairSet(mprob, rsCo, cs.WalkMask(n, 0), seed, 1)
	if err != nil {
		t.Fatal(err)
	}

	scores := []voting.Score{
		voting.Cumulative{},
		voting.Plurality{},
		voting.PApproval{P: 2},
		voting.Positional{P: 2, Omega: []float64{1, 0.5}},
		voting.Copeland{},
	}
	init := seqSys.Candidate(0).Init
	comp := core.CompetitorOpinions(seqSys, 0, horizon, 1)
	type sampler struct {
		name    string
		seq, co *walks.Set
		weights func(*walks.Set) []float64
	}
	samplers := []sampler{
		{"rw", rwSeq, rwCo, func(s *walks.Set) []float64 { return walks.UniformOwnerWeights(s) }},
		{"rs", rsSeq, rsCo, func(s *walks.Set) []float64 { return walks.SketchOwnerWeights(s, theta) }},
	}
	for _, sm := range samplers {
		for _, score := range scores {
			for _, par := range []int{1, 4, 0} {
				ref, err := walks.NewEstimator(sm.seq.Clone(), 0, init, comp, sm.weights(sm.seq), par)
				if err != nil {
					t.Fatal(err)
				}
				refRes, err := ref.SelectGreedy(k, score)
				if err != nil {
					t.Fatal(err)
				}
				est, err := walks.NewEstimator(sm.co.Clone(), 0, init, comp, sm.weights(sm.co), par)
				if err != nil {
					t.Fatal(err)
				}
				res, err := est.SelectGreedy(k, score)
				if err != nil {
					t.Fatal(err)
				}
				for i := range refRes.Seeds {
					if refRes.Seeds[i] != res.Seeds[i] || refRes.Gains[i] != res.Gains[i] {
						t.Fatalf("%s/%s P=%d: round %d (seed, gain) = (%d, %v), sequential (%d, %v)",
							sm.name, score.Name(), par, i, res.Seeds[i], res.Gains[i], refRes.Seeds[i], refRes.Gains[i])
					}
				}
				if refRes.Value != res.Value {
					t.Fatalf("%s/%s P=%d: value %v, sequential %v", sm.name, score.Name(), par, res.Value, refRes.Value)
				}
			}
		}
	}
}
