// Package dynamic is the live-update subsystem: a mutation schema for
// evolving opinion systems (edge inserts/deletes/re-weights, drifting
// internal opinions and stubbornness) plus the delta-apply path that turns
// a batch of mutations into a new immutable system and a ChangeSet naming
// exactly which nodes' sampled artifacts could have diverged.
//
// The contract that makes updates cheap to serve: applying a batch and then
// incrementally repairing precomputed artifacts (walks.Repair,
// im.RRCollection.Repair via sketch.RepairSet / rwalk.RepairSet) yields
// artifacts byte-identical to a from-scratch rebuild on the mutated system
// at the same seed. Batches therefore compose: replaying a persisted update
// log reproduces the exact serving state the daemon was in when it wrote
// the log, which is how a restarted ovmd resumes at the same epoch.
package dynamic

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"slices"

	"ovm/internal/graph"
	"ovm/internal/obs"
	"ovm/internal/opinion"
)

// Update cost accounting: mutation volume applied. The per-artifact
// repair cost it triggers is accounted where it happens (walks/im
// repair counters); these give the numerator to amortize it over.
var (
	batchesApplied = obs.NewCounter("ovm_dynamic_batches_applied_total",
		"Mutation batches applied to opinion systems")
	opsApplied = obs.NewCounter("ovm_dynamic_ops_applied_total",
		"Individual mutation ops applied across all batches")
	nodesTouched = obs.NewCounter("ovm_dynamic_nodes_touched_total",
		"Distinct nodes whose artifacts a batch could have invalidated")
)

// OpKind names one mutation type; it is the "op" field of the JSON wire
// form.
type OpKind string

// The mutation vocabulary.
const (
	// OpAddEdge inserts edge from → to with raw weight w (summing with the
	// current weight when the edge exists); the destination's in-weights
	// are renormalized.
	OpAddEdge OpKind = "add_edge"
	// OpRemoveEdge deletes edge from → to; removing a missing edge fails
	// the whole batch. A destination left without in-edges receives a
	// weight-1 self-loop.
	OpRemoveEdge OpKind = "remove_edge"
	// OpSetWeight sets edge from → to's raw weight to w, inserting the
	// edge when absent; the destination's in-weights are renormalized.
	OpSetWeight OpKind = "set_weight"
	// OpSetOpinion sets candidate's internal opinion b^(0) at node to
	// value (in [0,1]). Opinions are read live at query time, so no sampled
	// artifact is invalidated.
	OpSetOpinion OpKind = "set_opinion"
	// OpSetStubbornness sets candidate's stubbornness d at node to value
	// (in [0,1]); walks through the node for that candidate are
	// invalidated.
	OpSetStubbornness OpKind = "set_stubbornness"
)

// Op is one mutation. Edge ops use From/To/W; opinion and stubbornness ops
// use Cand/Node/Value.
type Op struct {
	Kind  OpKind  `json:"op"`
	From  int32   `json:"from,omitempty"`
	To    int32   `json:"to,omitempty"`
	W     float64 `json:"w,omitempty"`
	Cand  int     `json:"candidate,omitempty"`
	Node  int32   `json:"node,omitempty"`
	Value float64 `json:"value,omitempty"`
}

// Batch is one atomic group of mutations: it is validated as a whole,
// applied as a whole (edge re-normalization happens once per touched
// destination, after all of the batch's ops), and bumps the dataset epoch
// by exactly one.
type Batch []Op

// Validate checks every op against a system shape with n nodes and r
// candidates. It catches everything checkable without graph state; stateful
// failures (removing a missing edge) surface when the batch is applied.
func (b Batch) Validate(n, r int) error {
	if len(b) == 0 {
		return fmt.Errorf("dynamic: empty update batch")
	}
	for i, op := range b {
		switch op.Kind {
		case OpAddEdge, OpSetWeight:
			if err := b.validateEdge(i, op, n); err != nil {
				return err
			}
			if math.IsNaN(op.W) || math.IsInf(op.W, 0) || op.W <= 0 {
				return fmt.Errorf("dynamic: op %d (%s) weight %v must be positive and finite", i, op.Kind, op.W)
			}
		case OpRemoveEdge:
			if err := b.validateEdge(i, op, n); err != nil {
				return err
			}
		case OpSetOpinion, OpSetStubbornness:
			if op.Cand < 0 || op.Cand >= r {
				return fmt.Errorf("dynamic: op %d (%s) candidate %d out of range [0,%d)", i, op.Kind, op.Cand, r)
			}
			if op.Node < 0 || int(op.Node) >= n {
				return fmt.Errorf("dynamic: op %d (%s) node %d out of range [0,%d)", i, op.Kind, op.Node, n)
			}
			if math.IsNaN(op.Value) || op.Value < 0 || op.Value > 1 {
				return fmt.Errorf("dynamic: op %d (%s) value %v outside [0,1]", i, op.Kind, op.Value)
			}
		default:
			return fmt.Errorf("dynamic: op %d has unknown kind %q", i, op.Kind)
		}
	}
	return nil
}

func (b Batch) validateEdge(i int, op Op, n int) error {
	if op.From < 0 || int(op.From) >= n || op.To < 0 || int(op.To) >= n {
		return fmt.Errorf("dynamic: op %d (%s) edge (%d,%d) out of range [0,%d)", i, op.Kind, op.From, op.To, n)
	}
	return nil
}

// ChangeSet reports which nodes a batch touched, per invalidation domain.
type ChangeSet struct {
	// EdgeTouched lists (sorted) the destinations whose in-neighborhoods
	// changed; it invalidates walks and RR sets for every candidate, since
	// all candidates share one graph.
	EdgeTouched []int32
	// StubTouched lists, per candidate, the (sorted, unique) nodes whose
	// stubbornness changed; it invalidates walks generated for that
	// candidate only.
	StubTouched map[int][]int32
	// OpinionTouched lists, per candidate, the nodes whose internal
	// opinion changed. Opinions never invalidate sampled artifacts, but
	// they do change query answers, so the set matters for cache epochs.
	OpinionTouched map[int][]int32
}

// NumTouched counts the distinct nodes named anywhere in the change set.
func (cs *ChangeSet) NumTouched() int {
	seen := make(map[int32]bool)
	for _, v := range cs.EdgeTouched {
		seen[v] = true
	}
	for _, vs := range cs.StubTouched {
		for _, v := range vs {
			seen[v] = true
		}
	}
	for _, vs := range cs.OpinionTouched {
		for _, v := range vs {
			seen[v] = true
		}
	}
	return len(seen)
}

// EdgeMask renders EdgeTouched as a node mask — the invalidation input for
// RR-set repair, which never reads stubbornness or opinions.
func (cs *ChangeSet) EdgeMask(n int) []bool {
	mask := make([]bool, n)
	for _, v := range cs.EdgeTouched {
		mask[v] = true
	}
	return mask
}

// WalkMask renders the walk-invalidation mask for one candidate's walk
// artifacts: edge-touched nodes plus that candidate's stub-touched nodes.
func (cs *ChangeSet) WalkMask(n, cand int) []bool {
	mask := cs.EdgeMask(n)
	for _, v := range cs.StubTouched[cand] {
		mask[v] = true
	}
	return mask
}

// ApplySystem applies one batch to a system and returns the mutated system
// plus the change set. The input system is not modified: the new system
// shares the untouched per-candidate vectors and (absent edge ops) the
// graph itself. All candidates must share one graph — the invariant every
// dataset loader in this repository maintains.
func ApplySystem(sys *opinion.System, b Batch) (*opinion.System, *ChangeSet, error) {
	n, r := sys.N(), sys.R()
	if err := b.Validate(n, r); err != nil {
		return nil, nil, err
	}
	g := sys.Candidate(0).G
	for q := 1; q < r; q++ {
		if sys.Candidate(q).G != g {
			return nil, nil, fmt.Errorf("dynamic: candidates 0 and %d do not share a graph; cannot apply edge-consistent updates", q)
		}
	}

	var deltas []graph.Delta
	type vecEdit struct {
		node  int32
		value float64
	}
	stubEdits := make(map[int][]vecEdit)
	opEdits := make(map[int][]vecEdit)
	for _, op := range b {
		switch op.Kind {
		case OpAddEdge:
			deltas = append(deltas, graph.Delta{Op: graph.DeltaAdd, From: op.From, To: op.To, W: op.W})
		case OpSetWeight:
			deltas = append(deltas, graph.Delta{Op: graph.DeltaSet, From: op.From, To: op.To, W: op.W})
		case OpRemoveEdge:
			deltas = append(deltas, graph.Delta{Op: graph.DeltaRemove, From: op.From, To: op.To})
		case OpSetOpinion:
			opEdits[op.Cand] = append(opEdits[op.Cand], vecEdit{op.Node, op.Value})
		case OpSetStubbornness:
			stubEdits[op.Cand] = append(stubEdits[op.Cand], vecEdit{op.Node, op.Value})
		}
	}

	cs := &ChangeSet{StubTouched: map[int][]int32{}, OpinionTouched: map[int][]int32{}}
	newG := g
	if len(deltas) > 0 {
		var err error
		newG, cs.EdgeTouched, err = g.ApplyDeltas(deltas)
		if err != nil {
			return nil, nil, err
		}
	}
	touchedNodes := func(edits []vecEdit) []int32 {
		uniq := make(map[int32]bool, len(edits))
		for _, e := range edits {
			uniq[e.node] = true
		}
		nodes := make([]int32, 0, len(uniq))
		for v := range uniq {
			nodes = append(nodes, v)
		}
		slices.Sort(nodes)
		return nodes
	}
	applyEdits := func(vec []float64, edits []vecEdit) []float64 {
		out := append([]float64(nil), vec...)
		for _, e := range edits {
			out[e.node] = e.value
		}
		return out
	}

	cands := make([]*opinion.Candidate, r)
	for q := 0; q < r; q++ {
		c := sys.Candidate(q)
		nc := &opinion.Candidate{Name: c.Name, G: newG, Init: c.Init, Stub: c.Stub}
		if edits := opEdits[q]; len(edits) > 0 {
			nc.Init = applyEdits(c.Init, edits)
			cs.OpinionTouched[q] = touchedNodes(edits)
		}
		if edits := stubEdits[q]; len(edits) > 0 {
			nc.Stub = applyEdits(c.Stub, edits)
			cs.StubTouched[q] = touchedNodes(edits)
		}
		cands[q] = nc
	}
	newSys, err := opinion.NewSystem(cands)
	if err != nil {
		return nil, nil, err
	}
	if obs.CostEnabled() {
		batchesApplied.Inc()
		opsApplied.Add(int64(len(b)))
		nodesTouched.Add(int64(cs.NumTouched()))
	}
	return newSys, cs, nil
}

// ReplaySystem applies a sequence of batches in order — the offline form of
// an update log — and returns the final system plus the total number of
// distinct nodes touched across all batches.
func ReplaySystem(sys *opinion.System, batches []Batch) (*opinion.System, int, error) {
	touched := make(map[int32]bool)
	for i, b := range batches {
		next, cs, err := ApplySystem(sys, b)
		if err != nil {
			return nil, 0, fmt.Errorf("dynamic: batch %d: %w", i, err)
		}
		for _, v := range cs.EdgeTouched {
			touched[v] = true
		}
		for _, vs := range cs.StubTouched {
			for _, v := range vs {
				touched[v] = true
			}
		}
		for _, vs := range cs.OpinionTouched {
			for _, v := range vs {
				touched[v] = true
			}
		}
		sys = next
	}
	return sys, len(touched), nil
}

// ReadBatches parses a JSONL update stream: every non-empty, non-comment
// ('#') line is one batch, written either as a JSON array of ops or as a
// single op object. Line-level batching matters numerically: each batch
// renormalizes its touched columns once, so two ops on one line compose
// differently from the same ops on two lines.
func ReadBatches(r io.Reader) ([]Batch, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var batches []Batch
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		var b Batch
		if line[0] == '[' {
			if err := strictUnmarshal(line, &b); err != nil {
				return nil, fmt.Errorf("dynamic: line %d: %w", lineNo, err)
			}
		} else {
			var op Op
			if err := strictUnmarshal(line, &op); err != nil {
				return nil, fmt.Errorf("dynamic: line %d: %w", lineNo, err)
			}
			b = Batch{op}
		}
		if len(b) == 0 {
			return nil, fmt.Errorf("dynamic: line %d: empty batch", lineNo)
		}
		batches = append(batches, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return batches, nil
}

func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing content after JSON value")
	}
	return nil
}
