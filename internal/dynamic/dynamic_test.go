package dynamic_test

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"ovm/internal/dynamic"
	"ovm/internal/graph"
	"ovm/internal/opinion"
)

func testSystem(t *testing.T, n int, seed int64) *opinion.System {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	edges, err := graph.Gnp(n, 5.0/float64(n), r)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdgesColumnStochastic(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	cands := make([]*opinion.Candidate, 3)
	for q := range cands {
		init := make([]float64, n)
		stub := make([]float64, n)
		for v := range init {
			init[v] = r.Float64()
			stub[v] = 0.1 + 0.8*r.Float64()
		}
		cands[q] = &opinion.Candidate{Name: string(rune('A' + q)), G: g, Init: init, Stub: stub}
	}
	sys, err := opinion.NewSystem(cands)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestApplySystem(t *testing.T) {
	sys := testSystem(t, 80, 1)
	batch := dynamic.Batch{
		{Kind: dynamic.OpAddEdge, From: 2, To: 9, W: 1},
		{Kind: dynamic.OpSetOpinion, Cand: 1, Node: 14, Value: 0.9},
		{Kind: dynamic.OpSetStubbornness, Cand: 0, Node: 5, Value: 0.3},
	}
	next, cs, err := dynamic.ApplySystem(sys, batch)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Candidate(1).Init[14] == 0.9 && sys.Candidate(1).Init[14] == next.Candidate(1).Init[14] {
		t.Fatal("fixture degenerate: opinion already 0.9")
	}
	if next.Candidate(1).Init[14] != 0.9 {
		t.Fatalf("opinion not applied: %v", next.Candidate(1).Init[14])
	}
	if next.Candidate(0).Stub[5] != 0.3 {
		t.Fatalf("stubbornness not applied: %v", next.Candidate(0).Stub[5])
	}
	// Untouched vectors are shared, touched ones are copies.
	if &next.Candidate(2).Init[0] != &sys.Candidate(2).Init[0] {
		t.Fatal("untouched init vector should be shared")
	}
	if &next.Candidate(1).Init[0] == &sys.Candidate(1).Init[0] {
		t.Fatal("touched init vector must be copied")
	}
	if sys.Candidate(0).Stub[5] == 0.3 {
		t.Fatal("input system was mutated")
	}
	if len(cs.EdgeTouched) != 1 || cs.EdgeTouched[0] != 9 {
		t.Fatalf("EdgeTouched = %v, want [9]", cs.EdgeTouched)
	}
	if got := cs.StubTouched[0]; len(got) != 1 || got[0] != 5 {
		t.Fatalf("StubTouched[0] = %v, want [5]", got)
	}
	if cs.NumTouched() != 3 {
		t.Fatalf("NumTouched = %d, want 3", cs.NumTouched())
	}
	mask := cs.WalkMask(80, 0)
	if !mask[9] || !mask[5] || mask[14] {
		t.Fatalf("WalkMask(0) wrong: edge=%v stub=%v opinion=%v", mask[9], mask[5], mask[14])
	}
	if m := cs.EdgeMask(80); !m[9] || m[5] {
		t.Fatal("EdgeMask must contain only edge-touched nodes")
	}
}

func TestBatchValidate(t *testing.T) {
	const n, r = 10, 2
	cases := []struct {
		name string
		op   dynamic.Op
	}{
		{"unknown kind", dynamic.Op{Kind: "grow_node"}},
		{"edge from range", dynamic.Op{Kind: dynamic.OpAddEdge, From: -1, To: 0, W: 1}},
		{"edge to range", dynamic.Op{Kind: dynamic.OpRemoveEdge, From: 0, To: 10}},
		{"zero weight", dynamic.Op{Kind: dynamic.OpAddEdge, From: 0, To: 1, W: 0}},
		{"nan weight", dynamic.Op{Kind: dynamic.OpSetWeight, From: 0, To: 1, W: math.NaN()}},
		{"candidate range", dynamic.Op{Kind: dynamic.OpSetOpinion, Cand: 2, Node: 0, Value: 0.5}},
		{"node range", dynamic.Op{Kind: dynamic.OpSetStubbornness, Cand: 0, Node: 10, Value: 0.5}},
		{"value range", dynamic.Op{Kind: dynamic.OpSetOpinion, Cand: 0, Node: 0, Value: 1.5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := (dynamic.Batch{tc.op}).Validate(n, r); err == nil {
				t.Fatalf("expected error for %s", tc.name)
			}
		})
	}
	if err := (dynamic.Batch{}).Validate(n, r); err == nil {
		t.Fatal("empty batch must fail validation")
	}
	ok := dynamic.Batch{
		{Kind: dynamic.OpAddEdge, From: 0, To: 1, W: 0.5},
		{Kind: dynamic.OpSetOpinion, Cand: 1, Node: 9, Value: 1},
	}
	if err := ok.Validate(n, r); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
}

func TestReadBatches(t *testing.T) {
	input := strings.Join([]string{
		`# comment`,
		``,
		`{"op":"add_edge","from":1,"to":2,"w":0.5}`,
		`[{"op":"remove_edge","from":3,"to":4},{"op":"set_opinion","candidate":1,"node":7,"value":0.25}]`,
	}, "\n")
	batches, err := dynamic.ReadBatches(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 2 {
		t.Fatalf("got %d batches, want 2", len(batches))
	}
	if len(batches[0]) != 1 || batches[0][0].Kind != dynamic.OpAddEdge || batches[0][0].W != 0.5 {
		t.Fatalf("batch 0 = %+v", batches[0])
	}
	if len(batches[1]) != 2 || batches[1][1].Cand != 1 || batches[1][1].Node != 7 {
		t.Fatalf("batch 1 = %+v", batches[1])
	}
	for _, bad := range []string{
		`{"op":"add_edge","unknown":1}`,
		`[]`,
		`not json`,
		`{"op":"add_edge"} trailing`,
	} {
		if _, err := dynamic.ReadBatches(strings.NewReader(bad)); err == nil {
			t.Fatalf("malformed input %q must fail", bad)
		}
	}
}

func TestReplaySystemComposes(t *testing.T) {
	sys := testSystem(t, 60, 2)
	b1 := dynamic.Batch{{Kind: dynamic.OpAddEdge, From: 1, To: 2, W: 1}}
	b2 := dynamic.Batch{{Kind: dynamic.OpSetStubbornness, Cand: 1, Node: 3, Value: 0.7}}
	replayed, touched, err := dynamic.ReplaySystem(sys, []dynamic.Batch{b1, b2})
	if err != nil {
		t.Fatal(err)
	}
	if touched != 2 {
		t.Fatalf("touched = %d, want 2", touched)
	}
	step1, _, err := dynamic.ApplySystem(sys, b1)
	if err != nil {
		t.Fatal(err)
	}
	step2, _, err := dynamic.ApplySystem(step1, b2)
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Candidate(1).Stub[3] != step2.Candidate(1).Stub[3] {
		t.Fatal("replay differs from manual composition")
	}
	// Edge weights after replay match the step-by-step application bitwise.
	rs, rw := replayed.Candidate(0).G.InNeighbors(2)
	ss, sw := step2.Candidate(0).G.InNeighbors(2)
	if len(rs) != len(ss) {
		t.Fatal("in-degree mismatch after replay")
	}
	for i := range rs {
		if rs[i] != ss[i] || rw[i] != sw[i] {
			t.Fatal("in-edges mismatch after replay")
		}
	}
}
