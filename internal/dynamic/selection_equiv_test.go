package dynamic_test

import (
	"testing"

	"ovm/internal/core"
	"ovm/internal/dynamic"
	"ovm/internal/opinion"
	"ovm/internal/rwalk"
	"ovm/internal/sketch"
	"ovm/internal/voting"
	"ovm/internal/walks"
)

// TestRepairedSelectionIncrementalEquivalence closes the loop between the
// dynamic-update path and the incremental selection engine: after a
// mutation batch + incremental repair, greedy selection over the repaired
// (and index-carrying) walk sets must be bit-identical to the retained
// full-scan reference over a from-scratch regeneration on the mutated
// system — for every score kind, both samplers, at parallelism 1/4/0.
func TestRepairedSelectionIncrementalEquivalence(t *testing.T) {
	const (
		n       = 120
		seed    = int64(4)
		horizon = 5
		k       = 5
		theta   = 500
		lambda  = 12
	)
	sys := testSystem(t, n, 9)
	prob := &core.Problem{Sys: sys, Target: 0, Horizon: horizon, K: k, Score: voting.Cumulative{}}

	plan := make([]int32, n)
	for i := range plan {
		plan[i] = lambda
	}
	rwOld, err := rwalk.GenerateSet(prob, plan, seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	rwOld.EnsureIndex() // indexed artifacts must stay indexed through repair
	rsOld, err := sketch.GenerateSet(prob, theta, seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	rsOld.EnsureIndex()

	batch := dynamic.Batch{
		{Kind: dynamic.OpAddEdge, From: 3, To: 11, W: 1},
		{Kind: dynamic.OpAddEdge, From: 40, To: 41, W: 0.5},
		{Kind: dynamic.OpRemoveEdge, From: firstInNeighbor(t, sys, 20), To: 20},
		{Kind: dynamic.OpSetOpinion, Cand: 0, Node: 7, Value: 0.95},
		{Kind: dynamic.OpSetStubbornness, Cand: 0, Node: 9, Value: 0.6},
	}
	mutated, cs, err := dynamic.ApplySystem(sys, batch)
	if err != nil {
		t.Fatal(err)
	}
	mprob := &core.Problem{Sys: mutated, Target: 0, Horizon: horizon, K: k, Score: voting.Cumulative{}}

	rwRepaired, _, err := rwalk.RepairSet(mprob, rwOld, cs.WalkMask(n, 0), seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rwRepaired.HasIndex() {
		t.Fatal("repair dropped the postings index of an indexed RW set")
	}
	rsRepaired, _, err := sketch.RepairSet(mprob, rsOld, cs.WalkMask(n, 0), seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rsRepaired.HasIndex() {
		t.Fatal("repair dropped the postings index of an indexed sketch set")
	}
	rwFresh, err := rwalk.GenerateSet(mprob, plan, seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	rsFresh, err := sketch.GenerateSet(mprob, theta, seed, 1)
	if err != nil {
		t.Fatal(err)
	}

	scores := []voting.Score{
		voting.Cumulative{},
		voting.Plurality{},
		voting.PApproval{P: 2},
		voting.Positional{P: 2, Omega: []float64{1, 0.5}},
		voting.Copeland{},
	}
	init := mutated.Candidate(0).Init
	comp := core.CompetitorOpinions(mutated, 0, horizon, 1)
	type sampler struct {
		name     string
		repaired *walks.Set
		fresh    *walks.Set
		weights  func(*walks.Set) []float64
	}
	samplers := []sampler{
		{"rw", rwRepaired, rwFresh, func(s *walks.Set) []float64 { return walks.UniformOwnerWeights(s) }},
		{"rs", rsRepaired, rsFresh, func(s *walks.Set) []float64 { return walks.SketchOwnerWeights(s, theta) }},
	}
	for _, sm := range samplers {
		for _, score := range scores {
			ref, err := walks.NewEstimator(sm.fresh.Clone(), 0, init, comp, sm.weights(sm.fresh), 1)
			if err != nil {
				t.Fatal(err)
			}
			ref.UseFullScan(true)
			refRes, err := ref.SelectGreedy(k, score)
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range []int{1, 4, 0} {
				est, err := walks.NewEstimator(sm.repaired.Clone(), 0, init, comp, sm.weights(sm.repaired), par)
				if err != nil {
					t.Fatal(err)
				}
				res, err := est.SelectGreedy(k, score)
				if err != nil {
					t.Fatal(err)
				}
				for i := range refRes.Seeds {
					if refRes.Seeds[i] != res.Seeds[i] || refRes.Gains[i] != res.Gains[i] {
						t.Fatalf("%s/%s P=%d: round %d (seed, gain) = (%d, %v), reference (%d, %v)",
							sm.name, score.Name(), par, i, res.Seeds[i], res.Gains[i], refRes.Seeds[i], refRes.Gains[i])
					}
				}
				if refRes.Value != res.Value {
					t.Fatalf("%s/%s P=%d: value %v, reference %v", sm.name, score.Name(), par, res.Value, refRes.Value)
				}
			}
		}
	}
}

// firstInNeighbor returns an existing in-neighbor of node v so the batch
// can include a guaranteed-valid edge removal.
func firstInNeighbor(t *testing.T, sys *opinion.System, v int32) int32 {
	t.Helper()
	src, _ := sys.Candidate(0).G.InNeighbors(v)
	if len(src) == 0 {
		t.Fatalf("fixture: node %d has no in-neighbors", v)
	}
	return src[0]
}
