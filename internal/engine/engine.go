// Package engine is the parallel execution substrate shared by every hot
// path in the library: a bounded worker pool with panic-safe fan-out
// primitives and a sharding discipline designed for bit-reproducibility.
//
// The central invariant is that the *algorithm* — how work is cut into
// shards, which random substream each work item consumes, and the order in
// which per-shard results are folded — never depends on the worker count.
// Workers only decide which goroutine executes a shard; every shard's output
// is identical regardless, and reductions always fold in ascending shard
// order. Consequently Parallelism is a pure execution knob: callers get the
// same seeds, the same scores, the same bytes, at 1 worker or 64.
//
// Conventions used across the library:
//
//   - Parallelism 0 resolves to runtime.GOMAXPROCS(0), negative values to 1
//     (see Workers);
//   - shard counts come from NumShards, which ignores the worker count;
//   - per-item randomness comes from sampling.Stream.At(item), never from a
//     generator shared across items.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ovm/internal/obs"
)

// Pool cost accounting: shards executed, cumulative per-worker busy time,
// and the capacity those workers had (wall time x workers). busy/capacity
// is the pool-utilization gauge — a low ratio under load means shards are
// too coarse or too skewed to keep the pool fed. Counting is per call and
// per worker (never per shard in the parallel path's pull loop), so the
// hot path sees at most one clock read and one atomic add per worker.
var (
	engineShards = obs.NewCounter("ovm_engine_shards_total",
		"Shards executed by the parallel worker pool")
	engineBusyNs = obs.NewCounter("ovm_engine_busy_ns_total",
		"Cumulative nanoseconds pool workers spent executing shards")
	engineCapacityNs = obs.NewCounter("ovm_engine_capacity_ns_total",
		"Cumulative pool capacity in nanoseconds (wall time x workers per fan-out)")
)

func init() {
	obs.NewGaugeFunc("ovm_engine_pool_utilization",
		"Fraction of pool capacity spent busy since process start (busy_ns / capacity_ns)",
		func() float64 {
			capacity := engineCapacityNs.Load()
			if capacity == 0 {
				return 0
			}
			return float64(engineBusyNs.Load()) / float64(capacity)
		})
}

// Workers resolves a Parallelism configuration value to an actual worker
// count: 0 means runtime.GOMAXPROCS(0), values below zero mean 1.
func Workers(parallelism int) int {
	if parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if parallelism < 0 {
		return 1
	}
	return parallelism
}

// NumShards picks a shard count for n work items with roughly minPerShard
// items per shard, capped at maxShards. The result is independent of the
// worker count on purpose: shard geometry is part of the algorithm, so it
// must not change when Parallelism does.
func NumShards(n, minPerShard, maxShards int) int {
	if n <= 0 {
		return 0
	}
	if minPerShard < 1 {
		minPerShard = 1
	}
	if maxShards < 1 {
		maxShards = 1
	}
	s := (n + minPerShard - 1) / minPerShard
	if s > maxShards {
		s = maxShards
	}
	if s < 1 {
		s = 1
	}
	return s
}

// ShardRange returns the half-open item range [lo, hi) of shard s when n
// items are cut into shards contiguous pieces of near-equal size.
func ShardRange(n, shards, s int) (lo, hi int) {
	q, r := n/shards, n%shards
	lo = s*q + min(s, r)
	hi = lo + q
	if s < r {
		hi++
	}
	return lo, hi
}

// shardPanic carries a recovered panic value from a worker to the caller.
type shardPanic struct {
	shard int
	val   any
	stack []byte
}

// ForEachShard runs fn(worker, shard) for every shard in [0, shards) on at
// most Workers(parallelism) goroutines. The worker argument is a stable
// index in [0, workers) identifying the executing goroutine, so callers can
// maintain per-worker scratch state (diffusers, visit marks, buffers)
// without locking.
//
// Error and panic handling are deterministic: every shard runs to
// completion even if another shard fails (hot-path functions rarely error,
// and not cancelling keeps the behavior independent of timing); afterwards
// the error (or panic) of the lowest-numbered failing shard is returned
// (re-raised). A panic in a shard is re-thrown on the calling goroutine
// with the original value, so the process fails loudly rather than hanging.
func ForEachShard(parallelism, shards int, fn func(worker, shard int) error) error {
	return forEachShard(nil, parallelism, shards, fn)
}

// ForEachShardCtx is ForEachShard with cooperative cancellation: each worker
// polls ctx before pulling another shard and skips the remaining shards once
// ctx is done. Shards already running still run to completion (a shard is the
// cancellation granularity), so the set of executed shards is always a prefix
// of the pull order plus in-flight shards — callers must treat any error
// return, including ctx.Err(), as "results are garbage, discard everything".
// Shard errors from completed shards take precedence over the context error;
// if no shard failed but ctx was cancelled, ctx.Err() is returned verbatim so
// errors.Is(err, context.Canceled/DeadlineExceeded) works.
func ForEachShardCtx(ctx context.Context, parallelism, shards int, fn func(worker, shard int) error) error {
	return forEachShard(ctx, parallelism, shards, fn)
}

func forEachShard(ctx context.Context, parallelism, shards int, fn func(worker, shard int) error) error {
	if shards <= 0 {
		return nil
	}
	w := Workers(parallelism)
	if w > shards {
		w = shards
	}
	account := obs.CostEnabled()
	var fanOutStart time.Time
	if account {
		engineShards.Add(int64(shards))
		fanOutStart = time.Now()
	}
	errs := make([]error, shards)
	var panics []shardPanic
	var mu sync.Mutex
	runShard := func(worker, s int) {
		defer func() {
			if r := recover(); r != nil {
				buf := make([]byte, 4096)
				buf = buf[:runtime.Stack(buf, false)]
				mu.Lock()
				panics = append(panics, shardPanic{shard: s, val: r, stack: buf})
				mu.Unlock()
			}
		}()
		errs[s] = fn(worker, s)
	}
	cancelled := func() bool {
		return ctx != nil && ctx.Err() != nil
	}
	if w <= 1 {
		// Same run-to-completion and lowest-shard-wins semantics as the
		// parallel path, so error-path side effects are worker-count
		// independent too.
		for s := 0; s < shards; s++ {
			if cancelled() {
				break
			}
			runShard(0, s)
		}
		if account {
			busy := time.Since(fanOutStart).Nanoseconds()
			engineBusyNs.Add(busy)
			engineCapacityNs.Add(busy)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for worker := 0; worker < w; worker++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				var workerStart time.Time
				if account {
					workerStart = time.Now()
				}
				defer func() {
					if account {
						engineBusyNs.Add(time.Since(workerStart).Nanoseconds())
					}
				}()
				for {
					if cancelled() {
						return
					}
					s := int(next.Add(1)) - 1
					if s >= shards {
						return
					}
					runShard(worker, s)
				}
			}(worker)
		}
		wg.Wait()
		if account {
			engineCapacityNs.Add(int64(w) * time.Since(fanOutStart).Nanoseconds())
		}
	}
	if len(panics) > 0 {
		first := panics[0]
		for _, p := range panics[1:] {
			if p.shard < first.shard {
				first = p
			}
		}
		panic(fmt.Sprintf("engine: panic in shard %d: %v\n%s", first.shard, first.val, first.stack))
	}
	for s, err := range errs {
		if err != nil {
			return fmt.Errorf("engine: shard %d: %w", s, err)
		}
	}
	if ctx != nil {
		return ctx.Err()
	}
	return nil
}

// ForEachChunk cuts n items into NumShards(n, minPerShard, maxShards)
// contiguous chunks and runs fn(worker, shard, lo, hi) for each. It is the
// common "parallel for over a slice" shape.
func ForEachChunk(parallelism, n, minPerShard, maxShards int, fn func(worker, shard, lo, hi int) error) error {
	return ForEachChunkCtx(nil, parallelism, n, minPerShard, maxShards, fn)
}

// ForEachChunkCtx is ForEachChunk with the cancellation semantics of
// ForEachShardCtx.
func ForEachChunkCtx(ctx context.Context, parallelism, n, minPerShard, maxShards int, fn func(worker, shard, lo, hi int) error) error {
	shards := NumShards(n, minPerShard, maxShards)
	return forEachShard(ctx, parallelism, shards, func(worker, s int) error {
		lo, hi := ShardRange(n, shards, s)
		return fn(worker, s, lo, hi)
	})
}

// Map runs fn for every shard and returns the results indexed by shard —
// the deterministic fan-out/fan-in building block.
func Map[T any](parallelism, shards int, fn func(worker, shard int) (T, error)) ([]T, error) {
	return MapCtx[T](nil, parallelism, shards, fn)
}

// MapCtx is Map with the cancellation semantics of ForEachShardCtx: on
// cancellation the partial results are dropped and ctx.Err() is returned.
func MapCtx[T any](ctx context.Context, parallelism, shards int, fn func(worker, shard int) (T, error)) ([]T, error) {
	out := make([]T, shards)
	err := forEachShard(ctx, parallelism, shards, func(worker, s int) error {
		v, err := fn(worker, s)
		if err != nil {
			return err
		}
		out[s] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MapReduce runs mapFn per shard and folds the results with reduceFn in
// ascending shard order, starting from init. Folding in shard order keeps
// floating-point reductions bit-identical across worker counts.
func MapReduce[T, R any](parallelism, shards int, init R, mapFn func(worker, shard int) (T, error), reduceFn func(R, T) R) (R, error) {
	parts, err := Map(parallelism, shards, mapFn)
	if err != nil {
		var zero R
		return zero, err
	}
	acc := init
	for _, p := range parts {
		acc = reduceFn(acc, p)
	}
	return acc, nil
}
