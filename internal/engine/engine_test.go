package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if w := Workers(0); w < 1 {
		t.Errorf("Workers(0) = %d, want >= 1", w)
	}
	if w := Workers(-3); w != 1 {
		t.Errorf("Workers(-3) = %d, want 1", w)
	}
	if w := Workers(7); w != 7 {
		t.Errorf("Workers(7) = %d, want 7", w)
	}
}

func TestNumShardsIndependentOfWorkers(t *testing.T) {
	if s := NumShards(0, 10, 64); s != 0 {
		t.Errorf("NumShards(0) = %d, want 0", s)
	}
	if s := NumShards(5, 10, 64); s != 1 {
		t.Errorf("NumShards(5, 10) = %d, want 1", s)
	}
	if s := NumShards(1000, 10, 64); s != 64 {
		t.Errorf("NumShards(1000, 10, 64) = %d, want 64 (capped)", s)
	}
	if s := NumShards(35, 10, 64); s != 4 {
		t.Errorf("NumShards(35, 10) = %d, want 4", s)
	}
}

func TestShardRangeCoversAll(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{{10, 3}, {7, 7}, {100, 8}, {5, 1}} {
		covered := 0
		prevHi := 0
		for s := 0; s < tc.shards; s++ {
			lo, hi := ShardRange(tc.n, tc.shards, s)
			if lo != prevHi {
				t.Fatalf("n=%d shards=%d: shard %d starts at %d, want %d", tc.n, tc.shards, s, lo, prevHi)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != tc.n {
			t.Errorf("n=%d shards=%d: covered %d items", tc.n, tc.shards, covered)
		}
	}
}

func TestForEachShardRunsAll(t *testing.T) {
	for _, par := range []int{1, 2, 4, 16} {
		var hits atomic.Int64
		seen := make([]atomic.Bool, 100)
		err := ForEachShard(par, 100, func(worker, s int) error {
			if worker < 0 || worker >= Workers(par) {
				t.Errorf("worker id %d out of range", worker)
			}
			if seen[s].Swap(true) {
				t.Errorf("shard %d ran twice", s)
			}
			hits.Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if hits.Load() != 100 {
			t.Errorf("parallelism %d: %d shards ran, want 100", par, hits.Load())
		}
	}
}

func TestForEachShardLowestErrorWins(t *testing.T) {
	boom := errors.New("boom")
	for _, par := range []int{1, 4} {
		err := ForEachShard(par, 50, func(worker, s int) error {
			if s == 13 || s == 37 {
				return fmt.Errorf("shard %d: %w", s, boom)
			}
			return nil
		})
		if err == nil || !errors.Is(err, boom) {
			t.Fatalf("parallelism %d: err = %v, want boom", par, err)
		}
		if !strings.Contains(err.Error(), "shard 13") {
			t.Errorf("parallelism %d: error %q should name the lowest failing shard", par, err)
		}
	}
}

func TestForEachShardPanicPropagates(t *testing.T) {
	for _, par := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("parallelism %d: panic did not propagate", par)
					return
				}
				if s, ok := r.(string); par > 1 && (!ok || !strings.Contains(s, "shard 3")) {
					t.Errorf("parallelism %d: recovered %v, want mention of shard 3", par, r)
				}
			}()
			_ = ForEachShard(par, 8, func(worker, s int) error {
				if s == 3 {
					panic("kaboom")
				}
				return nil
			})
		}()
	}
}

func TestForEachChunk(t *testing.T) {
	n := 1003
	sum := make([]int64, 64)
	err := ForEachChunk(4, n, 10, 64, func(worker, shard, lo, hi int) error {
		var s int64
		for i := lo; i < hi; i++ {
			s += int64(i)
		}
		sum[shard] = s
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, s := range sum {
		total += s
	}
	if want := int64(n) * int64(n-1) / 2; total != want {
		t.Errorf("chunked sum = %d, want %d", total, want)
	}
}

func TestMapOrdered(t *testing.T) {
	out, err := Map(8, 20, func(worker, s int) (int, error) { return s * s, nil })
	if err != nil {
		t.Fatal(err)
	}
	for s, v := range out {
		if v != s*s {
			t.Errorf("out[%d] = %d, want %d", s, v, s*s)
		}
	}
}

// TestMapReduceDeterministic folds non-associative floating point across
// worker counts and demands bit-identical results — the core determinism
// contract of the engine.
func TestMapReduceDeterministic(t *testing.T) {
	mapFn := func(worker, s int) (float64, error) {
		return 1.0 / float64(s+1), nil
	}
	reduce := func(a, b float64) float64 { return a + b }
	base, err := MapReduce(1, 1000, 0.0, mapFn, reduce)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, 32} {
		got, err := MapReduce(par, 1000, 0.0, mapFn, reduce)
		if err != nil {
			t.Fatal(err)
		}
		if got != base {
			t.Errorf("parallelism %d: sum %v != serial %v (must be bit-identical)", par, got, base)
		}
	}
}
