package experiments

import (
	"fmt"
	"io"
	"time"

	"ovm/internal/core"
	"ovm/internal/datasets"
	"ovm/internal/graph"
	"ovm/internal/im"
	"ovm/internal/sampling"
	"ovm/internal/stats"
	"ovm/internal/voting"
	"ovm/internal/walks"
)

// AblationCELF quantifies the CELF optimization of §III-C: objective
// evaluations and wall time of plain Algorithm-1 greedy vs the lazy CELF
// variant on the (submodular) cumulative score — identical values, far
// fewer evaluations.
func AblationCELF(w io.Writer, p Params) error {
	p = p.withDefaults()
	header(w, "Ablation: plain greedy vs CELF (cumulative, DM)")
	d, err := datasets.YelpLike(datasets.Options{N: p.size(600, 120), Seed: p.Seed})
	if err != nil {
		return err
	}
	k := p.size(10, 3)
	prob := defaultProblem(d, horizonFor(p), k, voting.Cumulative{})
	fmt.Fprintf(w, "n=%d k=%d t=%d\n", d.Sys.N(), k, prob.Horizon)
	fmt.Fprintf(w, "%-8s %12s %14s %12s\n", "variant", "value", "evaluations", "time(s)")
	for _, variant := range []string{"plain", "CELF"} {
		obj, err := core.NewDMObjective(prob)
		if err != nil {
			return err
		}
		start := time.Now()
		var res *core.GreedyResult
		if variant == "plain" {
			res, err = core.Greedy(obj, k)
		} else {
			res, err = core.GreedyCELF(obj, k)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8s %12.2f %14d %12.3f\n",
			variant, res.Value, res.Evaluations, time.Since(start).Seconds())
	}
	return nil
}

// AblationTruncation quantifies the Post-Generation Truncation design of
// §V-B: reusing one walk set across all k rounds (truncating at chosen
// seeds) versus regenerating fresh walks with the updated seed set every
// round (Direct Generation). Both are unbiased (Theorems 8/9); truncation
// trades a one-time generation cost for k cheap truncation passes.
func AblationTruncation(w io.Writer, p Params) error {
	p = p.withDefaults()
	header(w, "Ablation: post-generation truncation vs per-round regeneration (RW, cumulative)")
	d, err := datasets.TwitterMaskLike(datasets.Options{N: p.size(2000, 200), Seed: p.Seed})
	if err != nil {
		return err
	}
	k := p.size(20, 3)
	horizon := horizonFor(p)
	cand := d.Sys.Candidate(d.DefaultTarget)
	sampler, err := graph.NewInEdgeSampler(cand.G)
	if err != nil {
		return err
	}
	comp := core.CompetitorOpinions(d.Sys, d.DefaultTarget, horizon, p.Parallelism)
	lam, err := stats.WalksForCumulative(0.1, 0.9)
	if err != nil {
		return err
	}
	plan := make([]int32, d.Sys.N())
	for v := range plan {
		plan[v] = int32(lam)
	}
	fmt.Fprintf(w, "n=%d k=%d t=%d lambda=%d\n", d.Sys.N(), k, horizon, lam)
	fmt.Fprintf(w, "%-14s %12s %12s\n", "variant", "exact score", "time(s)")

	// Variant A: generate once, truncate per round (the paper's design).
	startA := time.Now()
	setA, err := walks.Generate(sampler, cand.Stub, horizon, plan, sampling.Stream{Seed: p.Seed, ID: 501}, p.Parallelism)
	if err != nil {
		return err
	}
	estA, err := walks.NewEstimator(setA, d.DefaultTarget, cand.Init, comp, walks.UniformOwnerWeights(setA), p.Parallelism)
	if err != nil {
		return err
	}
	resA, err := estA.SelectGreedy(k, voting.Cumulative{})
	if err != nil {
		return err
	}
	timeA := time.Since(startA).Seconds()
	exactA, err := core.EvaluateExact(d.Sys, d.DefaultTarget, horizon, voting.Cumulative{}, resA.Seeds, p.Parallelism)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-14s %12.2f %12.3f\n", "truncation", exactA, timeA)

	// Variant B: regenerate fresh walks with the current seed set applied
	// (seed nodes become fully stubborn with opinion 1) in every round.
	startB := time.Now()
	effInit := append([]float64(nil), cand.Init...)
	effStub := append([]float64(nil), cand.Stub...)
	var seedsB []int32
	for round := 0; round < k; round++ {
		set, err := walks.Generate(sampler, effStub, horizon, plan, sampling.Stream{Seed: p.Seed, ID: uint64(502 + round)}, p.Parallelism)
		if err != nil {
			return err
		}
		est, err := walks.NewEstimator(set, d.DefaultTarget, effInit, comp, walks.UniformOwnerWeights(set), p.Parallelism)
		if err != nil {
			return err
		}
		one, err := est.SelectGreedy(1, voting.Cumulative{})
		if err != nil {
			return err
		}
		s := one.Seeds[0]
		seedsB = append(seedsB, s)
		effInit[s] = 1
		effStub[s] = 1
	}
	timeB := time.Since(startB).Seconds()
	exactB, err := core.EvaluateExact(d.Sys, d.DefaultTarget, horizon, voting.Cumulative{}, seedsB, p.Parallelism)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-14s %12.2f %12.3f\n", "regeneration", exactB, timeB)
	fmt.Fprintf(w, "speedup of truncation: %.1fx at matched quality\n", timeB/timeA)
	return nil
}

// AblationSketchShape quantifies the §VI-A claim that walk sketches are
// simpler and lighter than the RR-set (tree) sketches of classic IM: at a
// matched sketch count, compare average sketch size, total storage, and
// generation time.
func AblationSketchShape(w io.Writer, p Params) error {
	p = p.withDefaults()
	header(w, "Ablation: walk sketches vs RR-set sketches")
	d, err := datasets.TwitterMaskLike(datasets.Options{N: p.size(4000, 250), Seed: p.Seed})
	if err != nil {
		return err
	}
	cand := d.Sys.Candidate(d.DefaultTarget)
	g := cand.G
	theta := p.size(1<<15, 1024)
	horizon := horizonFor(p)
	sampler, err := graph.NewInEdgeSampler(g)
	if err != nil {
		return err
	}

	startW := time.Now()
	set, err := walks.GenerateSampled(sampler, cand.Stub, horizon, theta, sampling.Stream{Seed: p.Seed, ID: 503}, p.Parallelism)
	if err != nil {
		return err
	}
	walkTime := time.Since(startW).Seconds()
	walkElems := 0
	for i := 0; i < set.NumWalks(); i++ {
		walkElems += len(set.WalkNodes(i))
	}

	startR := time.Now()
	col := im.NewRRCollection(g, im.IC, sampling.Stream{Seed: p.Seed, ID: 504}, p.Parallelism)
	col.Add(theta)
	rrTime := time.Since(startR).Seconds()
	rrElems := 0
	for i := 0; i < col.NumSets(); i++ {
		rrElems += len(col.Set(i))
	}

	fmt.Fprintf(w, "n=%d theta=%d t=%d\n", g.N(), theta, horizon)
	fmt.Fprintf(w, "%-14s %14s %16s %12s\n", "sketch kind", "avg size", "total elements", "gen time(s)")
	fmt.Fprintf(w, "%-14s %14.2f %16d %12.3f\n", "walks (ours)",
		float64(walkElems)/float64(theta), walkElems, walkTime)
	fmt.Fprintf(w, "%-14s %14.2f %16d %12.3f\n", "RR sets (IM)",
		float64(rrElems)/float64(theta), rrElems, rrTime)
	return nil
}
