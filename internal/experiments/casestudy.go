package experiments

import (
	"fmt"
	"io"
	"sort"

	"ovm/internal/datasets"
	"ovm/internal/graph"
	"ovm/internal/opinion"
	"ovm/internal/rwalk"
	"ovm/internal/voting"
)

// Table4CaseStudy reproduces the ACM-general-election case study
// (§VIII-B, Table IV, Fig 4) on the DBLP stand-in: select k seeds for the
// target candidate, then report per research domain how many users vote
// for the target before vs after seeding, the domains the top seeds
// influence most, and the seed-proximity analysis of the users who change
// their minds.
func Table4CaseStudy(w io.Writer, p Params) error {
	p = p.withDefaults()
	header(w, "Table IV / Fig 4: ACM election case study (DBLP stand-in)")
	n := p.size(8000, 400)
	k := p.size(100, 8)
	horizon := horizonFor(p)
	d, err := datasets.DBLPLike(datasets.Options{N: n, Seed: p.Seed})
	if err != nil {
		return err
	}
	target := d.DefaultTarget
	fmt.Fprintf(w, "#users=%d  #seeds=%d  horizon t=%d  target=%q\n",
		n, k, horizon, d.CandidateNames[target])

	prob := defaultProblem(d, horizon, k, voting.Plurality{})
	res, err := rwalk.Select(prob, rwalk.Config{Seed: p.Seed, MaxWalksPerNode: 300, Parallelism: p.Parallelism})
	if err != nil {
		return err
	}
	seeds := res.Seeds

	before, err := opinion.Matrix(d.Sys, horizon, target, nil, p.Parallelism)
	if err != nil {
		return err
	}
	after, err := opinion.Matrix(d.Sys, horizon, target, seeds, p.Parallelism)
	if err != nil {
		return err
	}
	votesFor := func(B [][]float64, v int) bool { return voting.Rank(B, target, v) <= 1 }

	totBefore, totAfter := 0, 0
	domTotal := make([]int, len(d.DomainNames))
	domBefore := make([]int, len(d.DomainNames))
	domAfter := make([]int, len(d.DomainNames))
	for v := 0; v < n; v++ {
		c := d.Community[v]
		domTotal[c]++
		if votesFor(before, v) {
			domBefore[c]++
			totBefore++
		}
		if votesFor(after, v) {
			domAfter[c]++
			totAfter++
		}
	}
	fmt.Fprintf(w, "users voting for target: without seeds %d (%.1f%%) -> with seeds %d (%.1f%%)\n",
		totBefore, 100*float64(totBefore)/float64(n), totAfter, 100*float64(totAfter)/float64(n))

	// Per-domain table (Table IV's last three columns).
	fmt.Fprintf(w, "%-6s %10s %16s %16s\n", "Domain", "#users", "without seeds", "with seeds")
	for c, name := range d.DomainNames {
		fmt.Fprintf(w, "%-6s %10d %9d (%4.1f%%) %9d (%4.1f%%)\n",
			name, domTotal[c],
			domBefore[c], 100*float64(domBefore[c])/float64(domTotal[c]),
			domAfter[c], 100*float64(domAfter[c])/float64(domTotal[c]))
	}

	// Top-10 seeds and the domains they influence most (via their t-hop
	// out-reach per domain).
	top := seeds
	if len(top) > 10 {
		top = top[:10]
	}
	bfs := graph.NewBFS(d.Sys.Candidate(target).G)
	fmt.Fprintf(w, "top-%d seeds and their most-influenced domains:\n", len(top))
	seedDomains := make([]int, len(d.DomainNames))
	for _, s := range top {
		reach := make([]int, len(d.DomainNames))
		bfs.THopOut([]int32{s}, horizon, func(v int32, _ int) { reach[d.Community[v]]++ })
		bestDom, bestCnt := 0, -1
		for c, cnt := range reach {
			if cnt > bestCnt {
				bestDom, bestCnt = c, cnt
			}
		}
		seedDomains[bestDom]++
		fmt.Fprintf(w, "  seed %6d: primary domain %-4s reaches %d nodes (top influence: %s)\n",
			s, d.DomainNames[d.Community[s]], bestCnt, d.DomainNames[bestDom])
	}

	// Proximity analysis: among mind-changers, distance to the nearest seed
	// (the paper reports that most changed users are neutral and several
	// hops from both candidates).
	var changers []int32
	for v := 0; v < n; v++ {
		if !votesFor(before, v) && votesFor(after, v) {
			changers = append(changers, int32(v))
		}
	}
	fmt.Fprintf(w, "users changing their vote to the target: %d\n", len(changers))
	if len(changers) > 0 {
		dist := make(map[int32]int, n)
		bfs.THopOut(seeds, horizon+2, func(v int32, d int) { dist[v] = d })
		buckets := map[string]int{"<=1 hop": 0, "2 hops": 0, ">=3 hops/unreached": 0}
		for _, v := range changers {
			dd, ok := dist[v]
			switch {
			case ok && dd <= 1:
				buckets["<=1 hop"]++
			case ok && dd == 2:
				buckets["2 hops"]++
			default:
				buckets[">=3 hops/unreached"]++
			}
		}
		keys := make([]string, 0, len(buckets))
		for key := range buckets {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			fmt.Fprintf(w, "  distance to nearest seed %s: %d (%.1f%%)\n",
				key, buckets[key], 100*float64(buckets[key])/float64(len(changers)))
		}
		// Neutrality: |initial gap| of the changers vs the population.
		gap := func(v int32) float64 {
			g := d.Sys.Candidate(target).Init[v] - d.Sys.Candidate(1 - target).Init[v]
			if g < 0 {
				return -g
			}
			return g
		}
		var chGap, popGap float64
		for _, v := range changers {
			chGap += gap(v)
		}
		chGap /= float64(len(changers))
		for v := 0; v < n; v++ {
			popGap += gap(int32(v))
		}
		popGap /= float64(n)
		fmt.Fprintf(w, "mean initial |opinion gap|: changers %.3f vs population %.3f (smaller = more neutral)\n",
			chGap, popGap)
	}
	return nil
}
