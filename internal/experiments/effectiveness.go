package experiments

import (
	"fmt"
	"io"

	"ovm/internal/datasets"
	"ovm/internal/opinion"
	"ovm/internal/sketch"
	"ovm/internal/voting"
)

// scoreVsK is the engine behind Figs 6/7/8: for each dataset, sweep the
// seed budget k and report every method's exact score plus its selection
// time at the largest k. The paper's shape: DM/RW/RS on top (DM ≡ GED-T
// for cumulative only), baselines below, gap widest for rank-based scores.
func scoreVsK(w io.Writer, p Params, score voting.Score, datasetNames []string, defaultN int) error {
	p = p.withDefaults()
	ks := pickInts(p, []int{10, 25, 50, 100}, []int{2, 4})
	horizon := horizonFor(p)
	for _, name := range datasetNames {
		d, err := datasets.ByName(name, datasets.Options{N: p.size(defaultN, 150), Seed: p.Seed})
		if err != nil {
			return err
		}
		// Yelp's 10 candidates make rank-based scores harsher; that is the
		// paper's setting too.
		fmt.Fprintf(w, "%s (n=%d, t=%d, score=%s)\n", name, d.Sys.N(), horizon, score.Name())
		fmt.Fprintf(w, "%-7s", "method")
		for _, k := range ks {
			fmt.Fprintf(w, " %12s", fmt.Sprintf("k=%d", k))
		}
		fmt.Fprintf(w, " %12s\n", "time(s)")
		for _, m := range MethodNames {
			fmt.Fprintf(w, "%-7s", m)
			var lastTime float64
			for _, k := range ks {
				prob := defaultProblem(d, horizon, k, score)
				res, err := runMethod(m, prob, p.Seed, p.Parallelism)
				if err != nil {
					return fmt.Errorf("%s on %s: %w", m, name, err)
				}
				fmt.Fprintf(w, " %12.2f", res.Exact)
				lastTime = res.Seconds
			}
			fmt.Fprintf(w, " %12.3f\n", lastTime)
		}
	}
	return nil
}

// Fig6 reproduces the plurality effectiveness/efficiency sweep (Fig 6).
func Fig6(w io.Writer, p Params) error {
	header(w, "Fig 6: plurality score vs seed set size k")
	names := []string{"yelp-like", "twitter-election-like", "twitter-mask-like"}
	if p.Quick {
		names = names[:1]
	}
	return scoreVsK(w, p, voting.Plurality{}, names, 2000)
}

// Fig7 reproduces the Copeland sweep (Fig 7).
func Fig7(w io.Writer, p Params) error {
	header(w, "Fig 7: Copeland score vs seed set size k")
	names := []string{"yelp-like", "twitter-election-like", "twitter-mask-like"}
	if p.Quick {
		names = names[:1]
	}
	return scoreVsK(w, p, voting.Copeland{}, names, 2000)
}

// Fig8 reproduces the cumulative sweep (Fig 8); the paper highlights that
// DM and GED-T coincide here (and only here).
func Fig8(w io.Writer, p Params) error {
	header(w, "Fig 8: cumulative score vs seed set size k")
	names := []string{"yelp-like", "twitter-election-like", "twitter-mask-like"}
	if p.Quick {
		names = names[:1]
	}
	return scoreVsK(w, p, voting.Cumulative{}, names, 2000)
}

// Fig9 reproduces the seed-set overlap study among the plurality variants
// (Fig 9): positional-p-approval sweeps ω[p] from 0 to 1, morphing from
// (p−1)-approval to p-approval; overlaps with the plurality and p-approval
// seed sets are reported. All seed sets come from the RS method with a
// common θ, as comparability demands.
func Fig9(w io.Writer, p Params) error {
	p = p.withDefaults()
	header(w, "Fig 9: seed overlap of positional-p-approval vs plurality variants (yelp-like)")
	d, err := datasets.YelpLike(datasets.Options{N: p.size(3000, 200), Seed: p.Seed})
	if err != nil {
		return err
	}
	k := p.size(100, 5)
	horizon := horizonFor(p)
	theta := p.size(1<<15, 2048)
	selectFor := func(score voting.Score) ([]int32, error) {
		prob := defaultProblem(d, horizon, k, score)
		res, err := sketch.SelectWithTheta(prob, theta, p.Seed, p.Parallelism)
		if err != nil {
			return nil, err
		}
		return res.Seeds, nil
	}
	plu, err := selectFor(voting.Plurality{})
	if err != nil {
		return err
	}
	for _, pp := range []int{2, 3} {
		app, err := selectFor(voting.PApproval{P: pp})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "positional-%d-approval (k=%d, theta=%d)\n", pp, k, theta)
		fmt.Fprintf(w, "%8s %22s %22s\n", "omega[p]", "overlap w/ plurality", fmt.Sprintf("overlap w/ %d-approval", pp))
		omegas := pickInts(p, []int{0, 25, 50, 75, 100}, []int{0, 100})
		for _, pct := range omegas {
			om := make([]float64, pp)
			for i := 0; i < pp-1; i++ {
				om[i] = 1
			}
			om[pp-1] = float64(pct) / 100
			pos := voting.Positional{P: pp, Omega: om}
			seeds, err := selectFor(pos)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%8.2f %21.1f%% %21.1f%%\n",
				om[pp-1], overlap(seeds, plu), overlap(seeds, app))
		}
	}
	return nil
}

// Fig10 reproduces the rank-position distribution study (Fig 10): how many
// users rank the target at each position at the horizon, for the seed sets
// of the different plurality variants.
func Fig10(w io.Writer, p Params) error {
	p = p.withDefaults()
	header(w, "Fig 10: users ranking the target at each position (yelp-like)")
	d, err := datasets.YelpLike(datasets.Options{N: p.size(3000, 200), Seed: p.Seed})
	if err != nil {
		return err
	}
	k := p.size(100, 5)
	horizon := horizonFor(p)
	theta := p.size(1<<15, 2048)
	variants := []voting.Score{
		voting.Plurality{},
		voting.PApproval{P: 2},
		voting.PApproval{P: 3},
	}
	fmt.Fprintf(w, "%-22s", "variant")
	maxPos := 5
	if d.Sys.R() < maxPos {
		maxPos = d.Sys.R()
	}
	for i := 1; i <= maxPos; i++ {
		fmt.Fprintf(w, " %10s", fmt.Sprintf("pos %d", i))
	}
	fmt.Fprintln(w)
	for _, score := range variants {
		prob := defaultProblem(d, horizon, k, score)
		res, err := sketch.SelectWithTheta(prob, theta, p.Seed, p.Parallelism)
		if err != nil {
			return err
		}
		B, err := opinion.Matrix(d.Sys, horizon, d.DefaultTarget, res.Seeds, p.Parallelism)
		if err != nil {
			return err
		}
		hist := voting.RankHistogram(B, d.DefaultTarget)
		fmt.Fprintf(w, "%-22s", score.Name())
		for i := 0; i < maxPos; i++ {
			fmt.Fprintf(w, " %10d", hist[i])
		}
		fmt.Fprintln(w)
	}
	return nil
}
