// Package experiments regenerates every table and figure of the paper's
// evaluation section (§VIII and the appendices) against the synthetic
// dataset stand-ins, at laptop-friendly scales. Each experiment is a named
// Runner registered in Registry; cmd/ovmbench exposes them on the command
// line and bench_test.go exposes them as testing.B benchmarks.
//
// Absolute numbers differ from the paper (different hardware, synthetic
// data, reduced scale); the reproduced artifact is the *shape*: which
// method wins, how scores grow with k/t/θ/ρ/ε, and where the trade-offs
// sit. EXPERIMENTS.md records paper-vs-measured notes per experiment.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"slices"
	"time"

	"ovm/internal/baselines"
	"ovm/internal/core"
	"ovm/internal/datasets"
	"ovm/internal/im"
	"ovm/internal/rwalk"
	"ovm/internal/sketch"
	"ovm/internal/voting"
)

// Params sizes an experiment run.
type Params struct {
	// Quick shrinks everything to smoke-test size (CI/unit tests).
	Quick bool
	// Scale multiplies default node counts (default 1.0). Ignored in Quick
	// mode.
	Scale float64
	// Seed drives all randomness.
	Seed int64
	// Parallelism caps the engine worker pool in every method's hot path
	// (0 = GOMAXPROCS, 1 = serial). Results are identical across values;
	// only wall times change.
	Parallelism int
}

func (p Params) withDefaults() Params {
	if p.Scale == 0 {
		p.Scale = 1
	}
	return p
}

// size picks a node count: def·Scale normally, quick in Quick mode.
func (p Params) size(def, quick int) int {
	if p.Quick {
		return quick
	}
	n := int(float64(def) * p.Scale)
	if n < quick {
		n = quick
	}
	return n
}

// pick returns full in normal mode and quick in Quick mode.
func pickInts(p Params, full, quick []int) []int {
	if p.Quick {
		return quick
	}
	return full
}

// Runner is an experiment entry point.
type Runner func(w io.Writer, p Params) error

// Registry maps experiment ids (table/figure numbers) to runners.
var Registry = map[string]Runner{}

// Order lists experiment ids in the paper's order.
var Order []string

func register(id string, r Runner) {
	Registry[id] = r
	Order = append(Order, id)
}

func init() {
	register("table1", Table1)
	register("fig2", Fig2)
	register("fig3", Fig3)
	register("table3", Table3)
	register("table4", Table4CaseStudy)
	register("fig6", Fig6)
	register("fig7", Fig7)
	register("fig8", Fig8)
	register("fig9", Fig9)
	register("fig10", Fig10)
	register("table6", Table6)
	register("fig11", Fig11)
	register("fig12", Fig12)
	register("fig13", Fig13)
	register("fig14", Fig14)
	register("fig15", Fig15)
	register("fig16", Fig16)
	register("fig17", Fig17)
	register("fig18", Fig18)
	register("fig19", Fig19)
	register("ablation-celf", AblationCELF)
	register("ablation-truncation", AblationTruncation)
	register("ablation-sketch-shape", AblationSketchShape)
}

// MethodNames lists the compared seed selectors in the paper's order:
// the three proposed methods followed by the six baselines.
var MethodNames = []string{"DM", "RW", "RS", "IC", "LT", "GED-T", "PR", "RWR", "DC"}

// MethodResult is one (method, k) measurement.
type MethodResult struct {
	Method  string
	Seeds   []int32
	Exact   float64 // exact score of the seed set
	Seconds float64 // seed-selection wall time
}

// runMethod executes one seed-selection method on the problem and
// evaluates the returned seeds exactly.
func runMethod(name string, p *core.Problem, seed int64, parallelism int) (*MethodResult, error) {
	start := time.Now()
	var seeds []int32
	var err error
	switch name {
	case "DM":
		seeds, _, err = core.SelectSeedsDM(p, parallelism)
	case "RW":
		var res *rwalk.Result
		res, err = rwalk.Select(p, rwalk.Config{Seed: seed, MaxWalksPerNode: 400, Parallelism: parallelism})
		if res != nil {
			seeds = res.Seeds
		}
	case "RS":
		var res *sketch.Result
		// InitialTheta starts the §VI-E doubling search high enough that
		// rank-based scores do not declare convergence prematurely on the
		// scaled-down datasets (the paper's per-dataset θ* are 2^15–2^19).
		res, err = sketch.Select(p, sketch.Config{Seed: seed, InitialTheta: 1 << 13, MaxTheta: 1 << 18, ConvergeTol: 0.005, Parallelism: parallelism})
		if res != nil {
			seeds = res.Seeds
		}
	default:
		seeds, err = baselines.Select(baselines.Method(name), p,
			baselines.Config{IMM: im.IMMConfig{Seed: seed, MaxSets: 1 << 18}, Parallelism: parallelism})
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	elapsed := time.Since(start).Seconds()
	exact, err := core.EvaluateExact(p.Sys, p.Target, p.Horizon, p.Score, seeds, parallelism)
	if err != nil {
		return nil, err
	}
	return &MethodResult{Method: name, Seeds: seeds, Exact: exact, Seconds: elapsed}, nil
}

// winSelector maps a proposed-method name onto a core.SeedSelector for the
// FJ-Vote-Win search (Table VI).
func winSelector(method string, p *core.Problem, seed int64, parallelism int) (core.SeedSelector, error) {
	switch method {
	case "DM":
		return core.DMSelector(p.Sys, p.Target, p.Horizon, p.Score, parallelism), nil
	case "RW":
		return rwalk.Selector(*p, rwalk.Config{Seed: seed, MaxWalksPerNode: 200, Parallelism: parallelism}), nil
	case "RS":
		return sketch.Selector(*p, sketch.Config{Seed: seed, MaxTheta: 1 << 17, Parallelism: parallelism}), nil
	default:
		return nil, fmt.Errorf("experiments: no win selector for method %q", method)
	}
}

// defaultProblem builds a problem on a dataset's default target.
func defaultProblem(d *datasets.Dataset, horizon, k int, score voting.Score) *core.Problem {
	return &core.Problem{Sys: d.Sys, Target: d.DefaultTarget, Horizon: horizon, K: k, Score: score}
}

// overlap returns |a ∩ b| / |a| as a percentage (a, b same length).
func overlap(a, b []int32) float64 {
	if len(a) == 0 {
		return 0
	}
	set := make(map[int32]bool, len(b))
	for _, v := range b {
		set[v] = true
	}
	common := 0
	for _, v := range a {
		if set[v] {
			common++
		}
	}
	return 100 * float64(common) / float64(len(a))
}

// heapAlloc reports current live heap bytes after a GC cycle.
func heapAlloc() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

// header prints an experiment banner.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}

// sortedCopy returns a sorted copy of xs.
func sortedCopy(xs []int32) []int32 {
	out := append([]int32(nil), xs...)
	slices.Sort(out)
	return out
}
