package experiments_test

import (
	"bytes"
	"strings"
	"testing"

	"ovm/internal/experiments"
)

// TestAllExperimentsQuick smoke-tests every registered experiment at Quick
// scale: each must run to completion and produce non-trivial output.
func TestAllExperimentsQuick(t *testing.T) {
	for _, id := range experiments.Order {
		id := id
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			if err := experiments.Registry[id](&buf, experiments.Params{Quick: true, Seed: 42}); err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if buf.Len() < 40 {
				t.Errorf("%s: suspiciously short output: %q", id, buf.String())
			}
		})
	}
}

// TestTable1IsSelfVerifying confirms table1 returns its verification error
// channel (it asserts the paper's exact values internally).
func TestTable1IsSelfVerifying(t *testing.T) {
	var buf bytes.Buffer
	if err := experiments.Table1(&buf, experiments.Params{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "all cells match the paper exactly") {
		t.Error("table1 did not report a full match")
	}
}

func TestRegistryComplete(t *testing.T) {
	// Every paper artifact has a registered experiment.
	want := []string{
		"table1", "fig2", "fig3", "table3", "table4",
		"fig6", "fig7", "fig8", "fig9", "fig10",
		"table6", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16", "fig17", "fig18", "fig19",
		"ablation-celf", "ablation-truncation", "ablation-sketch-shape",
		"ext-robustness", "ext-borda", "parallel-scaling",
	}
	for _, id := range want {
		if _, ok := experiments.Registry[id]; !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(experiments.Order) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(experiments.Order), len(want))
	}
}
