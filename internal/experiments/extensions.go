package experiments

import (
	"fmt"
	"io"

	"ovm/internal/datasets"
	"ovm/internal/opinion"
	"ovm/internal/sampling"
	"ovm/internal/sketch"
	"ovm/internal/voter"
	"ovm/internal/voting"
)

func init() {
	register("ext-robustness", ExtRobustness)
	register("ext-borda", ExtBorda)
}

// ExtRobustness stress-tests the paper's future-work direction "more
// opinion diffusion models": seeds optimized under the FJ dynamics are
// re-evaluated under the Hegselmann–Krause bounded-confidence model and
// the discrete voter model. The question mirrors the EIS study (Fig 11):
// do FJ-optimal seeds remain useful when the electorate actually follows a
// different dynamics?
func ExtRobustness(w io.Writer, p Params) error {
	p = p.withDefaults()
	header(w, "Extension: FJ-optimized seeds under HK and voter dynamics (twitter-mask-like)")
	d, err := datasets.TwitterMaskLike(datasets.Options{N: p.size(3000, 250), Seed: p.Seed})
	if err != nil {
		return err
	}
	k := p.size(50, 5)
	horizon := horizonFor(p)
	target := d.DefaultTarget
	prob := defaultProblem(d, horizon, k, voting.Plurality{})
	res, err := sketch.SelectWithTheta(prob, p.size(1<<15, 2048), p.Seed, p.Parallelism)
	if err != nil {
		return err
	}
	seeds := res.Seeds
	fmt.Fprintf(w, "n=%d k=%d t=%d; seeds optimized for FJ plurality via RS\n", d.Sys.N(), k, horizon)
	fmt.Fprintf(w, "%-34s %14s %14s\n", "dynamics", "no seeds", "with seeds")

	pluShare := func(B [][]float64) float64 {
		return (voting.Plurality{}).Eval(B, target) / float64(d.Sys.N())
	}
	// FJ reference.
	B0, err := opinion.Matrix(d.Sys, horizon, target, nil, p.Parallelism)
	if err != nil {
		return err
	}
	B1, err := opinion.Matrix(d.Sys, horizon, target, seeds, p.Parallelism)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-34s %13.1f%% %13.1f%%\n", "FJ (optimized)", 100*pluShare(B0), 100*pluShare(B1))

	// HK with two confidence radii.
	for _, eps := range []float64{0.3, 0.15} {
		H0, err := opinion.HKMatrix(d.Sys, opinion.HKParams{Epsilon: eps}, horizon, target, nil)
		if err != nil {
			return err
		}
		H1, err := opinion.HKMatrix(d.Sys, opinion.HKParams{Epsilon: eps}, horizon, target, seeds)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-34s %13.1f%% %13.1f%%\n",
			fmt.Sprintf("HK bounded confidence (eps=%.2f)", eps), 100*pluShare(H0), 100*pluShare(H1))
	}

	// Voter model (zealot seeds).
	rounds := 100
	if p.Quick {
		rounds = 20
	}
	vp := voter.Params{Horizon: horizon, Target: target, Rounds: rounds}
	v0, err := voter.ExpectedShare(d.Sys, vp, nil, sampling.NewRand(p.Seed, 601))
	if err != nil {
		return err
	}
	v1, err := voter.ExpectedShare(d.Sys, vp, seeds, sampling.NewRand(p.Seed, 602))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-34s %13.1f%% %13.1f%%\n", "voter model (zealot seeds)", 100*v0, 100*v1)
	fmt.Fprintln(w, "(uplift surviving across dynamics = robust seed choice)")
	return nil
}

// ExtBorda exercises the Borda count — the classic positional rule the
// paper's future work points at — through the full pipeline: it is
// expressible as positional-r-approval with weights (r−i)/(r−1), so the
// sandwich machinery and all three methods apply unchanged.
func ExtBorda(w io.Writer, p Params) error {
	p = p.withDefaults()
	header(w, "Extension: Borda count as a positional-p-approval instance (twitter-election-like)")
	d, err := datasets.TwitterElectionLike(datasets.Options{N: p.size(2000, 200), Seed: p.Seed})
	if err != nil {
		return err
	}
	borda := voting.BordaAsPositional(d.Sys.R())
	ks := pickInts(p, []int{10, 25, 50, 100}, []int{2, 4})
	horizon := horizonFor(p)
	fmt.Fprintf(w, "%-7s", "method")
	for _, k := range ks {
		fmt.Fprintf(w, " %12s", fmt.Sprintf("k=%d", k))
	}
	fmt.Fprintln(w)
	for _, m := range []string{"DM", "RW", "RS", "DC"} {
		fmt.Fprintf(w, "%-7s", m)
		for _, k := range ks {
			prob := defaultProblem(d, horizon, k, borda)
			res, err := runMethod(m, prob, p.Seed, p.Parallelism)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %12.2f", res.Exact)
		}
		fmt.Fprintln(w)
	}
	return nil
}
