package experiments

import (
	"testing"

	"ovm/internal/core"
	"ovm/internal/paperexample"
	"ovm/internal/voting"
)

func TestOverlap(t *testing.T) {
	if got := overlap([]int32{1, 2, 3}, []int32{2, 3, 4}); got < 66 || got > 67 {
		t.Errorf("overlap = %v, want ~66.7", got)
	}
	if got := overlap(nil, []int32{1}); got != 0 {
		t.Errorf("empty overlap = %v, want 0", got)
	}
	if got := overlap([]int32{5}, []int32{5}); got != 100 {
		t.Errorf("identical overlap = %v, want 100", got)
	}
}

func TestParamsSize(t *testing.T) {
	p := Params{Quick: true}.withDefaults()
	if got := p.size(5000, 123); got != 123 {
		t.Errorf("quick size = %d, want 123", got)
	}
	p = Params{Scale: 0.5}.withDefaults()
	if got := p.size(5000, 123); got != 2500 {
		t.Errorf("scaled size = %d, want 2500", got)
	}
	// Scale never drops below the quick floor.
	p = Params{Scale: 0.001}.withDefaults()
	if got := p.size(5000, 123); got != 123 {
		t.Errorf("floored size = %d, want 123", got)
	}
}

func TestPickInts(t *testing.T) {
	full := []int{1, 2, 3}
	quick := []int{9}
	if got := pickInts(Params{Quick: true}, full, quick); len(got) != 1 || got[0] != 9 {
		t.Errorf("quick pick = %v", got)
	}
	if got := pickInts(Params{}, full, quick); len(got) != 3 {
		t.Errorf("full pick = %v", got)
	}
}

func TestSortedCopy(t *testing.T) {
	in := []int32{3, 1, 2}
	out := sortedCopy(in)
	if out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Errorf("sortedCopy = %v", out)
	}
	if in[0] != 3 {
		t.Error("sortedCopy mutated its input")
	}
}

func TestWinSelectorDispatch(t *testing.T) {
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	p := &core.Problem{Sys: sys, Target: 0, Horizon: 1, K: 1, Score: voting.Plurality{}}
	for _, m := range []string{"DM", "RW", "RS"} {
		sel, err := winSelector(m, p, 1, 1)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		seeds, err := sel(1)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if len(seeds) != 1 {
			t.Errorf("%s: got %d seeds", m, len(seeds))
		}
	}
	if _, err := winSelector("PR", p, 1, 1); err == nil {
		t.Error("expected error for unsupported win selector")
	}
}

func TestRunMethodUnknown(t *testing.T) {
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	p := &core.Problem{Sys: sys, Target: 0, Horizon: 1, K: 1, Score: voting.Plurality{}}
	if _, err := runMethod("bogus", p, 1, 1); err == nil {
		t.Error("expected error for unknown method")
	}
}

func TestRunMethodAllKnown(t *testing.T) {
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range MethodNames {
		p := &core.Problem{Sys: sys, Target: 0, Horizon: 1, K: 1, Score: voting.Cumulative{}}
		res, err := runMethod(m, p, 1, 1)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if len(res.Seeds) != 1 || res.Exact <= 0 {
			t.Errorf("%s: seeds=%v exact=%v", m, res.Seeds, res.Exact)
		}
	}
}
