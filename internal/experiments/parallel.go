package experiments

import (
	"fmt"
	"io"
	"runtime"
	"slices"
	"time"

	"ovm/internal/core"
	"ovm/internal/datasets"
	"ovm/internal/rwalk"
	"ovm/internal/sketch"
	"ovm/internal/voting"
)

func init() {
	register("parallel-scaling", ParallelScaling)
}

// ParallelScaling measures how the three proposed methods scale with the
// engine worker count on one synthetic graph (beyond-paper: the paper's
// implementation is single-threaded). For each of DM/RW/RS it runs the
// same cumulative-score instance at Parallelism 1, 2, 4, and GOMAXPROCS,
// reporting wall time and speedup versus 1 worker — and it *verifies* the
// engine's determinism contract by failing if any worker count returns a
// different seed set.
//
// Speedup requires physical cores: on a single-CPU host every column
// should sit near 1.0×, and the determinism check is the interesting part.
func ParallelScaling(w io.Writer, p Params) error {
	p = p.withDefaults()
	header(w, "Parallel scaling: wall time vs engine worker count (twitter-distancing-like)")
	n := p.size(12000, 400)
	d, err := datasets.TwitterDistancingLike(datasets.Options{N: n, Seed: p.Seed})
	if err != nil {
		return err
	}
	k := p.size(20, 3)
	horizon := horizonFor(p)
	prob := defaultProblem(d, horizon, k, voting.Cumulative{})
	fmt.Fprintf(w, "n=%d k=%d t=%d gomaxprocs=%d\n", d.Sys.N(), k, prob.Horizon, runtime.GOMAXPROCS(0))

	workerSweep := []int{1, 2, 4}
	if g := runtime.GOMAXPROCS(0); g > 4 {
		workerSweep = append(workerSweep, g)
	}
	run := func(method string, par int) ([]int32, float64, error) {
		start := time.Now()
		var seeds []int32
		var err error
		switch method {
		case "DM":
			seeds, _, err = core.SelectSeedsDM(prob, par)
		case "RW":
			var res *rwalk.Result
			if res, err = rwalk.Select(prob, rwalk.Config{Seed: p.Seed, MaxWalksPerNode: 300, Parallelism: par}); err == nil {
				seeds = res.Seeds
			}
		case "RS":
			var res *sketch.Result
			if res, err = sketch.Select(prob, sketch.Config{Seed: p.Seed, MaxTheta: 1 << 18, Parallelism: par}); err == nil {
				seeds = res.Seeds
			}
		}
		return seeds, time.Since(start).Seconds(), err
	}

	fmt.Fprintf(w, "%-6s", "method")
	for _, par := range workerSweep {
		fmt.Fprintf(w, " %9s %8s", fmt.Sprintf("P=%d t(s)", par), "speedup")
	}
	fmt.Fprintln(w, "  deterministic")
	for _, method := range []string{"DM", "RW", "RS"} {
		var baseSeeds []int32
		var baseTime float64
		identical := true
		fmt.Fprintf(w, "%-6s", method)
		for i, par := range workerSweep {
			seeds, secs, err := run(method, par)
			if err != nil {
				return fmt.Errorf("%s at parallelism %d: %w", method, par, err)
			}
			if i == 0 {
				baseSeeds, baseTime = seeds, secs
			} else if !slices.Equal(baseSeeds, seeds) {
				identical = false
			}
			fmt.Fprintf(w, " %9.3f %7.2fx", secs, baseTime/secs)
		}
		fmt.Fprintf(w, "  %v\n", identical)
		if !identical {
			return fmt.Errorf("%s: seed sets differ across Parallelism values — determinism contract broken", method)
		}
	}
	return nil
}
