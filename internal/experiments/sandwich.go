package experiments

import (
	"fmt"
	"io"

	"ovm/internal/core"
	"ovm/internal/datasets"
	"ovm/internal/sketch"
	"ovm/internal/voting"
)

// Fig2 reproduces the empirical sandwich-ratio study (§IV-D, Fig 2): the
// ratio F(SU)/UB(SU) across seed-budget trials, with the plurality score
// on the Twitter-Social-Distancing stand-in and the Copeland score on the
// Yelp stand-in. The paper reports the ratio ≥ 0.7 in 90% of trials and
// ≥ 0.8 in about half.
func Fig2(w io.Writer, p Params) error {
	p = p.withDefaults()
	header(w, "Fig 2: empirical sandwich approximation factor F(SU)/UB(SU)")
	type combo struct {
		dataset string
		n       int
		score   voting.Score
	}
	combos := []combo{
		{"twitter-distancing-like", p.size(2500, 150), voting.Plurality{}},
		{"yelp-like", p.size(1500, 150), voting.Copeland{}},
	}
	ks := pickInts(p, []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}, []int{2, 4})
	for _, c := range combos {
		d, err := datasets.ByName(c.dataset, datasets.Options{N: c.n, Seed: p.Seed})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s / %s (n=%d, t=%d)\n", c.dataset, c.score.Name(), c.n, horizonFor(p))
		fmt.Fprintf(w, "%6s %10s\n", "k", "ratio")
		var ratios []float64
		for _, k := range ks {
			prob := defaultProblem(d, horizonFor(p), k, c.score)
			var res *core.SandwichResult
			if _, ok := c.score.(voting.Copeland); ok {
				res, err = core.SandwichCopeland(prob, p.Parallelism)
			} else {
				res, err = core.SandwichPositional(prob, p.Parallelism)
			}
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%6d %10.3f\n", k, res.Ratio)
			ratios = append(ratios, res.Ratio)
		}
		ge7, ge8 := 0, 0
		for _, r := range ratios {
			if r >= 0.7 {
				ge7++
			}
			if r >= 0.8 {
				ge8++
			}
		}
		fmt.Fprintf(w, "trials with ratio >= 0.7: %d/%d; >= 0.8: %d/%d\n",
			ge7, len(ratios), ge8, len(ratios))
	}
	return nil
}

// Fig3 reproduces the θ-admissibility study (Fig 3): the non-monotone
// left-hand side of Inequality 44 as a function of θ, and the smallest
// admissible θ (the paper's θ1) when one exists.
func Fig3(w io.Writer, p Params) error {
	p = p.withDefaults()
	header(w, "Fig 3: LHS of Eq. 44 as a function of θ (plurality variants)")
	// Illustrative parameters chosen, as in the paper's Fig 3, so that the
	// non-monotone LHS curve actually crosses the RHS: a small instance
	// (keeping the RHS visibly below 1) and a per-sample confidence ρ very
	// close to 1 (i.e., generous per-node walk counts).
	n, k := 60, 2
	l := 0.3
	rho, eps := 0.9999999, 0.5
	opt := 0.9 * float64(n)
	rhs := sketch.PluralityThetaRHS(n, k, l)
	fmt.Fprintf(w, "n=%d k=%d rho=%v eps=%v OPT=%.0f  RHS=%.6f\n", n, k, rho, eps, opt, rhs)
	fmt.Fprintf(w, "%8s %12s\n", "theta", "LHS")
	thetas := pickInts(p,
		[]int{1, 10, 50, 100, 200, 400, 800, 1600, 3200, 6400, 12800, 25600},
		[]int{1, 100, 1600, 25600})
	for _, th := range thetas {
		fmt.Fprintf(w, "%8d %12.6f\n", th, sketch.PluralityThetaLHS(rho, eps, opt, n, th))
	}
	if th, ok := sketch.SmallestAdmissibleTheta(func(t int) float64 {
		return sketch.PluralityThetaLHS(rho, eps, opt, n, t)
	}, rhs, 1<<20); ok {
		fmt.Fprintf(w, "smallest admissible theta (theta1) = %d\n", th)
	} else {
		fmt.Fprintln(w, "no admissible theta: RHS exceeds the LHS maximum")
	}
	// Copeland analogue (Eq. 48).
	mu := 0.5
	crhs := sketch.CopelandThetaRHS(n, k, 4, l)
	if th, ok := sketch.SmallestAdmissibleTheta(func(t int) float64 {
		return sketch.CopelandThetaLHS(rho, mu, t)
	}, crhs, 1<<20); ok {
		fmt.Fprintf(w, "Copeland (Eq. 48, mu=%v): smallest admissible theta = %d\n", mu, th)
	} else {
		fmt.Fprintf(w, "Copeland (Eq. 48, mu=%v): no admissible theta\n", mu)
	}
	return nil
}
