package experiments

import (
	"fmt"
	"io"
	"time"

	"ovm/internal/core"
	"ovm/internal/datasets"
	"ovm/internal/opinion"
	"ovm/internal/rwalk"
	"ovm/internal/sampling"
	"ovm/internal/sketch"
	"ovm/internal/voting"
)

// Fig17 reproduces the scalability and memory study (Fig 17): seed-finding
// time and memory of DM/RW/RS for the cumulative score on node-induced
// subsamples of the largest dataset. The paper's shape: RW/RS grow
// near-linearly in n, DM polynomially; DM uses the least memory, RW the
// most (it stores walks from every node), RS sits in between.
func Fig17(w io.Writer, p Params) error {
	p = p.withDefaults()
	header(w, "Fig 17: seed-finding time and memory vs graph size (twitter-distancing-like)")
	maxN := p.size(12000, 400)
	full, err := datasets.TwitterDistancingLike(datasets.Options{N: maxN, Seed: p.Seed})
	if err != nil {
		return err
	}
	k := p.size(25, 3)
	horizon := horizonFor(p)
	fracs := []float64{1.0 / 6, 2.0 / 6, 3.0 / 6, 4.0 / 6, 5.0 / 6, 1}
	if p.Quick {
		fracs = []float64{0.5, 1}
	}
	r := sampling.NewRand(p.Seed, 402)
	fmt.Fprintf(w, "%8s | %10s %10s %10s | %10s %10s\n",
		"n", "DM time", "RW time", "RS time", "RW mem", "RS mem")
	for _, f := range fracs {
		sub := int(f * float64(maxN))
		// Uniform node sample, induced subgraph, re-normalized.
		perm := r.Perm(maxN)
		nodes := make([]int32, sub)
		for i := 0; i < sub; i++ {
			nodes[i] = int32(perm[i])
		}
		g0 := full.Sys.Candidate(0).G
		subG, mapping, err := g0.InducedSubgraph(nodes)
		if err != nil {
			return err
		}
		subG, err = subG.ColumnStochastic()
		if err != nil {
			return err
		}
		cands := make([]*opinion.Candidate, full.Sys.R())
		for q := 0; q < full.Sys.R(); q++ {
			src := full.Sys.Candidate(q)
			init := make([]float64, sub)
			stub := make([]float64, sub)
			for old, newID := range mapping {
				if newID >= 0 {
					init[newID] = src.Init[old]
					stub[newID] = src.Stub[old]
				}
			}
			cands[q] = &opinion.Candidate{Name: src.Name, G: subG, Init: init, Stub: stub}
		}
		sys, err := opinion.NewSystem(cands)
		if err != nil {
			return err
		}
		prob := &core.Problem{Sys: sys, Target: full.DefaultTarget, Horizon: horizon, K: k, Score: voting.Cumulative{}}

		startDM := time.Now()
		if _, _, err := core.SelectSeedsDM(prob, p.Parallelism); err != nil {
			return err
		}
		dmTime := time.Since(startDM).Seconds()

		startRW := time.Now()
		rwRes, err := rwalk.Select(prob, rwalk.Config{Seed: p.Seed, MaxWalksPerNode: 300, Parallelism: p.Parallelism})
		if err != nil {
			return err
		}
		rwTime := time.Since(startRW).Seconds()

		startRS := time.Now()
		rsRes, err := sketch.Select(prob, sketch.Config{Seed: p.Seed, MaxTheta: 1 << 18, Parallelism: p.Parallelism})
		if err != nil {
			return err
		}
		rsTime := time.Since(startRS).Seconds()

		fmt.Fprintf(w, "%8d | %10.3f %10.3f %10.3f | %9.1fM %9.1fM\n",
			sub, dmTime, rwTime, rsTime,
			float64(rwRes.BytesUsed)/1e6, float64(rsRes.BytesUsed)/1e6)
	}
	return nil
}

// Fig18 reproduces the Appendix-B horizon-relevance study (Fig 18): the
// fraction of nodes whose opinion changes by more than Δ% per step, and
// the overlap of optimal seed sets across horizons. The paper reports
// substantial churn before t = 30 and only 42–61% seed overlap between
// t ∈ {5,10,20} and t = 30.
func Fig18(w io.Writer, p Params) error {
	p = p.withDefaults()
	header(w, "Fig 18: opinion churn per step and seed-set overlap across horizons (yelp-like)")
	d, err := datasets.YelpLike(datasets.Options{N: p.size(2000, 200), Seed: p.Seed})
	if err != nil {
		return err
	}
	cand := d.Sys.Candidate(d.DefaultTarget)
	maxT := 30
	if p.Quick {
		maxT = 8
	}
	deltas := []float64{1, 5, 10}
	churn := make([][]float64, len(deltas))
	for i, delta := range deltas {
		churn[i] = opinion.ChurnFractions(cand, nil, maxT, delta)
	}
	fmt.Fprintf(w, "%6s", "t")
	for _, delta := range deltas {
		fmt.Fprintf(w, " %14s", fmt.Sprintf("delta=%.0f%%", delta))
	}
	fmt.Fprintln(w)
	for t := 1; t <= maxT; t++ {
		fmt.Fprintf(w, "%6d", t)
		for i := range deltas {
			fmt.Fprintf(w, " %13.1f%%", 100*churn[i][t-1])
		}
		fmt.Fprintln(w)
	}
	// Seed-set overlap across horizons (k=100 in the paper).
	k := p.size(100, 5)
	horizons := []int{5, 10, 20, maxT}
	if p.Quick {
		horizons = []int{2, maxT}
	}
	seedsAt := map[int][]int32{}
	for _, t := range horizons {
		prob := defaultProblem(d, t, k, voting.Cumulative{})
		res, err := rwalk.Select(prob, rwalk.Config{Seed: p.Seed, MaxWalksPerNode: 300, Parallelism: p.Parallelism})
		if err != nil {
			return err
		}
		seedsAt[t] = res.Seeds
	}
	ref := horizons[len(horizons)-1]
	for _, t := range horizons[:len(horizons)-1] {
		fmt.Fprintf(w, "seed overlap t=%d vs t=%d: %.0f%%\n", t, ref, overlap(seedsAt[t], seedsAt[ref]))
	}
	return nil
}

// Fig19 reproduces the Appendix-D µ sensitivity study (Fig 19): voting
// scores under different edge-weight decay constants µ. The paper's shape:
// after column normalization the impact of µ is small, with µ = 10 and 15
// nearly overlapping.
func Fig19(w io.Writer, p Params) error {
	p = p.withDefaults()
	header(w, "Fig 19: score vs edge-weight decay mu")
	mus := []float64{1, 5, 10, 15, 20}
	if p.Quick {
		mus = []float64{1, 10}
	}
	k := p.size(50, 4)
	horizon := horizonFor(p)
	type combo struct {
		dataset string
		score   voting.Score
	}
	for _, c := range []combo{
		{"twitter-election-like", voting.Cumulative{}},
		{"yelp-like", voting.Plurality{}},
	} {
		fmt.Fprintf(w, "%s / %s\n", c.dataset, c.score.Name())
		fmt.Fprintf(w, "%8s %12s\n", "mu", "score")
		for _, mu := range mus {
			d, err := datasets.ByName(c.dataset, datasets.Options{N: p.size(2500, 200), Seed: p.Seed, Mu: mu})
			if err != nil {
				return err
			}
			prob := defaultProblem(d, horizon, k, c.score)
			res, err := rwalk.Select(prob, rwalk.Config{Seed: p.Seed, MaxWalksPerNode: 300, Parallelism: p.Parallelism})
			if err != nil {
				return err
			}
			exact, err := core.EvaluateExact(d.Sys, d.DefaultTarget, horizon, c.score, res.Seeds, p.Parallelism)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%8.0f %12.2f\n", mu, exact)
		}
	}
	return nil
}
