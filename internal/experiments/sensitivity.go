package experiments

import (
	"fmt"
	"io"
	"time"

	"ovm/internal/core"
	"ovm/internal/datasets"
	"ovm/internal/im"
	"ovm/internal/rwalk"
	"ovm/internal/sampling"
	"ovm/internal/sketch"
	"ovm/internal/voting"
)

// Fig11 reproduces the expected-influence-spread comparison (Fig 11): the
// EIS under the IC and LT models of the seeds chosen by RW for the three
// voting scores, versus the seeds chosen by IMM natively. The paper's
// shape: RW's cumulative seeds reach ≥ 80% of IMM's spread.
func Fig11(w io.Writer, p Params) error {
	p = p.withDefaults()
	header(w, "Fig 11: expected influence spread (twitter-mask-like)")
	d, err := datasets.TwitterMaskLike(datasets.Options{N: p.size(3000, 250), Seed: p.Seed})
	if err != nil {
		return err
	}
	g := d.Sys.Candidate(d.DefaultTarget).G
	k := p.size(50, 5)
	horizon := horizonFor(p)
	rounds := 200
	if p.Quick {
		rounds = 30
	}
	type entry struct {
		label string
		seeds []int32
	}
	var entries []entry
	for _, score := range []voting.Score{voting.Cumulative{}, voting.Plurality{}, voting.Copeland{}} {
		prob := defaultProblem(d, horizon, k, score)
		res, err := rwalk.Select(prob, rwalk.Config{Seed: p.Seed, MaxWalksPerNode: 300, Parallelism: p.Parallelism})
		if err != nil {
			return err
		}
		entries = append(entries, entry{"RW/" + score.Name(), res.Seeds})
	}
	for _, model := range []im.Model{im.IC, im.LT} {
		res, err := im.IMM(g, model, k, im.IMMConfig{Seed: p.Seed, MaxSets: 1 << 18, Parallelism: p.Parallelism})
		if err != nil {
			return err
		}
		entries = append(entries, entry{"IMM/" + model.String(), res.Seeds})
	}
	fmt.Fprintf(w, "%-16s %14s %14s\n", "seeds from", "EIS under IC", "EIS under LT")
	r := sampling.NewRand(p.Seed, 401)
	for _, e := range entries {
		ic := im.ExpectedSpread(g, im.IC, e.seeds, rounds, r)
		lt := im.ExpectedSpread(g, im.LT, e.seeds, rounds, r)
		fmt.Fprintf(w, "%-16s %14.1f %14.1f\n", e.label, ic, lt)
	}
	return nil
}

// Fig12 reproduces the horizon study (Fig 12): the cumulative score of the
// chosen seeds and the seed-finding time as functions of the time horizon
// t, for DM, RW, and RS. The paper's shape: scores flatten near t = 20;
// DM's time grows linearly in t while RW/RS grow sublinearly (walks stop
// early at stubborn nodes).
func Fig12(w io.Writer, p Params) error {
	p = p.withDefaults()
	header(w, "Fig 12: cumulative score and time vs horizon t (yelp-like)")
	d, err := datasets.YelpLike(datasets.Options{N: p.size(2000, 200), Seed: p.Seed})
	if err != nil {
		return err
	}
	k := p.size(50, 4)
	ts := pickInts(p, []int{0, 5, 10, 15, 20, 25, 30}, []int{0, 2, 5})
	fmt.Fprintf(w, "%6s", "t")
	for _, m := range []string{"DM", "RW", "RS"} {
		fmt.Fprintf(w, " %12s %10s", m+" score", m+" time")
	}
	fmt.Fprintln(w)
	for _, t := range ts {
		fmt.Fprintf(w, "%6d", t)
		for _, m := range []string{"DM", "RW", "RS"} {
			prob := defaultProblem(d, t, k, voting.Cumulative{})
			res, err := runMethod(m, prob, p.Seed, p.Parallelism)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %12.2f %10.3f", res.Exact, res.Seconds)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// thetaSweep is the engine behind Figs 13/14: the exact score of RS seeds
// as θ grows, for several (k, t) combinations, showing convergence at a
// dataset-specific θ well below n.
func thetaSweep(w io.Writer, p Params, dataset string, score voting.Score) error {
	p = p.withDefaults()
	d, err := datasets.ByName(dataset, datasets.Options{N: p.size(3000, 250), Seed: p.Seed})
	if err != nil {
		return err
	}
	thetas := pickInts(p, []int{1 << 9, 1 << 11, 1 << 13, 1 << 15, 1 << 17}, []int{256, 1024})
	type combo struct{ k, t int }
	combos := []combo{
		{p.size(50, 4), horizonFor(p)},
		{p.size(100, 6), horizonFor(p)},
		{p.size(50, 4), horizonFor(p) / 2},
	}
	if p.Quick {
		combos = combos[:1]
	}
	fmt.Fprintf(w, "%s, score=%s (n=%d)\n", dataset, score.Name(), d.Sys.N())
	fmt.Fprintf(w, "%10s", "theta")
	for _, c := range combos {
		fmt.Fprintf(w, " %16s", fmt.Sprintf("k=%d,t=%d", c.k, c.t))
	}
	fmt.Fprintln(w)
	for _, th := range thetas {
		fmt.Fprintf(w, "%10d", th)
		for _, c := range combos {
			prob := defaultProblem(d, c.t, c.k, score)
			res, err := sketch.SelectWithTheta(prob, th, p.Seed, p.Parallelism)
			if err != nil {
				return err
			}
			exact, err := core.EvaluateExact(d.Sys, d.DefaultTarget, c.t, score, res.Seeds, p.Parallelism)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %16.2f", exact)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig13 reproduces the plurality-vs-θ study (Fig 13).
func Fig13(w io.Writer, p Params) error {
	header(w, "Fig 13: plurality score vs theta (twitter-mask-like)")
	return thetaSweep(w, p, "twitter-mask-like", voting.Plurality{})
}

// Fig14 reproduces the Copeland-vs-θ study (Fig 14).
func Fig14(w io.Writer, p Params) error {
	header(w, "Fig 14: Copeland score vs theta (yelp-like)")
	return thetaSweep(w, p, "yelp-like", voting.Copeland{})
}

// Fig15 reproduces the ε sensitivity study (Fig 15): RS's cumulative score
// and running time as ε grows. The paper's shape: scores drop sharply past
// ε = 0.1 while time shrinks.
func Fig15(w io.Writer, p Params) error {
	p = p.withDefaults()
	header(w, "Fig 15: cumulative score vs epsilon (RS, twitter-election-like)")
	d, err := datasets.TwitterElectionLike(datasets.Options{N: p.size(3000, 250), Seed: p.Seed})
	if err != nil {
		return err
	}
	k := p.size(50, 4)
	horizon := horizonFor(p)
	eps := []float64{0.05, 0.1, 0.2, 0.3}
	if p.Quick {
		eps = []float64{0.1, 0.3}
	}
	fmt.Fprintf(w, "%8s %12s %12s %12s\n", "epsilon", "score", "time(s)", "theta")
	for _, e := range eps {
		prob := defaultProblem(d, horizon, k, voting.Cumulative{})
		start := time.Now()
		res, err := sketch.Select(prob, sketch.Config{Epsilon: e, Seed: p.Seed, MaxTheta: 1 << 18, Parallelism: p.Parallelism})
		if err != nil {
			return err
		}
		elapsed := time.Since(start).Seconds()
		exact, err := core.EvaluateExact(d.Sys, d.DefaultTarget, horizon, voting.Cumulative{}, res.Seeds, p.Parallelism)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%8.2f %12.2f %12.3f %12d\n", e, exact, elapsed, res.Theta)
	}
	return nil
}

// Fig16 reproduces the ρ sensitivity study (Fig 16): RW's plurality score
// and running time as ρ grows. The paper's shape: scores saturate near
// ρ = 0.9 while time keeps climbing.
func Fig16(w io.Writer, p Params) error {
	p = p.withDefaults()
	header(w, "Fig 16: plurality score vs rho (RW, twitter-distancing-like)")
	d, err := datasets.TwitterDistancingLike(datasets.Options{N: p.size(3000, 250), Seed: p.Seed})
	if err != nil {
		return err
	}
	k := p.size(50, 4)
	horizon := horizonFor(p)
	rhos := []float64{0.75, 0.8, 0.85, 0.9, 0.95}
	if p.Quick {
		rhos = []float64{0.75, 0.9}
	}
	fmt.Fprintf(w, "%8s %12s %12s %14s\n", "rho", "score", "time(s)", "total walks")
	for _, rho := range rhos {
		prob := defaultProblem(d, horizon, k, voting.Plurality{})
		start := time.Now()
		res, err := rwalk.Select(prob, rwalk.Config{Rho: rho, Seed: p.Seed, MaxWalksPerNode: 600, Parallelism: p.Parallelism})
		if err != nil {
			return err
		}
		elapsed := time.Since(start).Seconds()
		exact, err := core.EvaluateExact(d.Sys, d.DefaultTarget, horizon, voting.Plurality{}, res.Seeds, p.Parallelism)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%8.2f %12.2f %12.3f %14d\n", rho, exact, elapsed, res.TotalWalks)
	}
	return nil
}
