package experiments

import (
	"fmt"
	"io"
	"math"

	"ovm/internal/core"
	"ovm/internal/datasets"
	"ovm/internal/opinion"
	"ovm/internal/paperexample"
	"ovm/internal/voting"
)

// Table1 regenerates the paper's Table I (running example, Fig 1) and
// verifies every cell against the published values — the repository's
// end-to-end exactness check.
func Table1(w io.Writer, p Params) error {
	header(w, "Table I: scores of candidate c1 for various seed sets at t=1 (Figure 1)")
	sys, err := paperexample.New()
	if err != nil {
		return err
	}
	c2 := opinion.OpinionsAt(sys.Candidate(1), paperexample.Horizon, nil)
	fmt.Fprintf(w, "opinions about c2 at t=1 (no seeds): %.2f %.2f %.2f %.2f\n", c2[0], c2[1], c2[2], c2[3])
	fmt.Fprintf(w, "%-8s | %5s %5s %5s %5s | %6s %5s %5s\n",
		"Seeds", "u1", "u2", "u3", "u4", "Cumu.", "Plu.", "Cope.")
	for _, row := range paperexample.TableI {
		B, err := opinion.Matrix(sys, paperexample.Horizon, paperexample.Target, row.Seeds, p.Parallelism)
		if err != nil {
			return err
		}
		cum := (voting.Cumulative{}).Eval(B, 0)
		plu := (voting.Plurality{}).Eval(B, 0)
		cope := (voting.Copeland{}).Eval(B, 0)
		fmt.Fprintf(w, "%-8s | %5.2f %5.2f %5.2f %5.2f | %6.2f %5.0f %5.0f\n",
			paperexample.SeedLabel(row.Seeds), B[0][0], B[0][1], B[0][2], B[0][3], cum, plu, cope)
		if math.Abs(cum-row.Cumulative) > 1e-9 || plu != row.Plurality || cope != row.Copeland {
			return fmt.Errorf("table1: row %s deviates from the paper: got (%.2f,%.0f,%.0f), want (%.2f,%.0f,%.0f)",
				paperexample.SeedLabel(row.Seeds), cum, plu, cope, row.Cumulative, row.Plurality, row.Copeland)
		}
		for v := 0; v < 4; v++ {
			if math.Abs(B[0][v]-row.Opinions[v]) > 1e-9 {
				return fmt.Errorf("table1: opinion of user %d with seeds %s deviates: %v vs %v",
					v+1, paperexample.SeedLabel(row.Seeds), B[0][v], row.Opinions[v])
			}
		}
	}
	fmt.Fprintln(w, "all cells match the paper exactly")
	return nil
}

// Table3 prints the dataset characteristics table (the Table III analogue
// for the synthetic stand-ins at the current scale).
func Table3(w io.Writer, p Params) error {
	p = p.withDefaults()
	header(w, "Table III: characteristics of the synthetic dataset stand-ins")
	fmt.Fprintf(w, "%-26s %10s %12s %12s\n", "Name", "#Nodes", "#Edges", "#Candidates")
	sizes := map[string]int{
		"dblp-like":               p.size(8000, 300),
		"yelp-like":               p.size(12000, 300),
		"twitter-election-like":   p.size(20000, 300),
		"twitter-distancing-like": p.size(30000, 300),
		"twitter-mask-like":       p.size(20000, 300),
	}
	for _, name := range datasets.Names {
		d, err := datasets.ByName(name, datasets.Options{N: sizes[name], Seed: p.Seed})
		if err != nil {
			return err
		}
		g := d.Sys.Candidate(0).G
		fmt.Fprintf(w, "%-26s %10d %12d %12d\n", name, g.N(), g.M(), d.Sys.R())
	}
	return nil
}

// Table6 reproduces Table VI: the minimum seed-set sizes for the target to
// win under the plurality score, per method (DM, RW, RS), on the two
// two-candidate Twitter datasets. The paper's ordering DM ≤ RW ≤ RS ("a
// more approximate method needs more seeds") is the shape under test.
func Table6(w io.Writer, p Params) error {
	p = p.withDefaults()
	header(w, "Table VI: minimum seeds for the target to win (plurality)")
	fmt.Fprintf(w, "%-26s %8s %8s %8s\n", "Dataset", "DM", "RW", "RS")
	for _, name := range []string{"twitter-mask-like", "twitter-distancing-like"} {
		d, err := datasets.ByName(name, datasets.Options{N: p.size(2000, 200), Seed: p.Seed})
		if err != nil {
			return err
		}
		// Campaign for the trailing stance (index 1): the default target
		// already leads these electorates and would win with k* = 0.
		prob := &core.Problem{Sys: d.Sys, Target: 1, Horizon: horizonFor(p), K: 1, Score: voting.Plurality{}}
		row := fmt.Sprintf("%-26s", name)
		for _, m := range []string{"DM", "RW", "RS"} {
			sel, err := winSelector(m, prob, p.Seed, p.Parallelism)
			if err != nil {
				return err
			}
			seeds, err := core.MinSeedsToWin(prob.Sys, prob.Target, prob.Horizon, prob.Score, sel)
			switch err {
			case nil:
				row += fmt.Sprintf(" %8d", len(seeds))
			case core.ErrCannotWin:
				row += fmt.Sprintf(" %8s", "n/a")
			default:
				return err
			}
		}
		fmt.Fprintln(w, row)
	}
	return nil
}

func horizonFor(p Params) int {
	if p.Quick {
		return 5
	}
	return 20
}
