package graph

// BFS is a reusable breadth-first traverser with O(1) reset between runs,
// used heavily by the t-hop reachability computations of the sandwich upper
// bounds (Definition 2: the reachable users set N_S^(t)).
type BFS struct {
	g     *Graph
	stamp []int32
	cur   int32
	queue []int32
	depth []int32
}

// NewBFS allocates a traverser for g.
func NewBFS(g *Graph) *BFS {
	return &BFS{
		g:     g,
		stamp: make([]int32, g.N()),
		cur:   0,
		queue: make([]int32, 0, 1024),
		depth: make([]int32, g.N()),
	}
}

// THopOut visits every node reachable from any source within at most t
// out-edge hops (sources themselves are at hop 0) and calls visit(v, d)
// once per node with its hop distance d. Traversal order is breadth-first.
func (b *BFS) THopOut(sources []int32, t int, visit func(v int32, depth int)) {
	b.cur++
	if b.cur == 0 { // wrapped; clear stamps
		for i := range b.stamp {
			b.stamp[i] = 0
		}
		b.cur = 1
	}
	b.queue = b.queue[:0]
	for _, s := range sources {
		if b.stamp[s] == b.cur {
			continue
		}
		b.stamp[s] = b.cur
		b.depth[s] = 0
		b.queue = append(b.queue, s)
		visit(s, 0)
	}
	for head := 0; head < len(b.queue); head++ {
		v := b.queue[head]
		d := b.depth[v]
		if int(d) >= t {
			continue
		}
		dst, _ := b.g.OutNeighbors(v)
		for _, u := range dst {
			if b.stamp[u] == b.cur {
				continue
			}
			b.stamp[u] = b.cur
			b.depth[u] = d + 1
			b.queue = append(b.queue, u)
			visit(u, int(d+1))
		}
	}
}

// ReachableWithin returns the set of nodes within t out-hops of the sources,
// as a freshly allocated slice (including the sources).
func (b *BFS) ReachableWithin(sources []int32, t int) []int32 {
	var out []int32
	b.THopOut(sources, t, func(v int32, _ int) { out = append(out, v) })
	return out
}

// CountNewlyReachable returns |N_{sources}^(t) \ covered|, where covered is
// a boolean membership slice. Used by the lazy greedy coverage maximization
// for the sandwich upper bounds without materializing the set.
func (b *BFS) CountNewlyReachable(sources []int32, t int, covered []bool) int {
	cnt := 0
	b.THopOut(sources, t, func(v int32, _ int) {
		if !covered[v] {
			cnt++
		}
	})
	return cnt
}

// MarkReachable sets covered[v] = true for every node within t out-hops of
// sources and returns how many were newly marked.
func (b *BFS) MarkReachable(sources []int32, t int, covered []bool) int {
	cnt := 0
	b.THopOut(sources, t, func(v int32, _ int) {
		if !covered[v] {
			covered[v] = true
			cnt++
		}
	})
	return cnt
}
