package graph

import (
	"math/rand"
	"sort"
	"testing"
)

// line builds a directed path 0→1→2→…→n-1.
func line(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		if err := b.AddEdge(int32(i), int32(i+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTHopOutOnPath(t *testing.T) {
	g := line(t, 10)
	bfs := NewBFS(g)
	for hops := 0; hops < 12; hops++ {
		got := bfs.ReachableWithin([]int32{0}, hops)
		want := hops + 1
		if want > 10 {
			want = 10
		}
		if len(got) != want {
			t.Errorf("t=%d: reached %d nodes, want %d", hops, len(got), want)
		}
	}
}

func TestTHopDepths(t *testing.T) {
	g := line(t, 6)
	bfs := NewBFS(g)
	depths := map[int32]int{}
	bfs.THopOut([]int32{0}, 4, func(v int32, d int) { depths[v] = d })
	for v := int32(0); v <= 4; v++ {
		if depths[v] != int(v) {
			t.Errorf("node %d at depth %d, want %d", v, depths[v], v)
		}
	}
	if _, ok := depths[5]; ok {
		t.Error("node 5 should be unreachable within 4 hops")
	}
}

func TestTHopMultiSource(t *testing.T) {
	g := line(t, 10)
	bfs := NewBFS(g)
	got := bfs.ReachableWithin([]int32{0, 7}, 1)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	want := []int32{0, 1, 7, 8}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestTHopDuplicateSources(t *testing.T) {
	g := line(t, 5)
	bfs := NewBFS(g)
	got := bfs.ReachableWithin([]int32{2, 2, 2}, 0)
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("duplicate sources should visit once, got %v", got)
	}
}

func TestBFSReusable(t *testing.T) {
	g := line(t, 8)
	bfs := NewBFS(g)
	// Two successive traversals must be independent.
	a := bfs.ReachableWithin([]int32{0}, 2)
	b := bfs.ReachableWithin([]int32{5}, 2)
	if len(a) != 3 || len(b) != 3 {
		t.Errorf("len(a)=%d len(b)=%d, want 3/3", len(a), len(b))
	}
}

func TestCountAndMarkReachable(t *testing.T) {
	g := line(t, 10)
	bfs := NewBFS(g)
	covered := make([]bool, 10)
	if got := bfs.CountNewlyReachable([]int32{0}, 3, covered); got != 4 {
		t.Errorf("CountNewlyReachable = %d, want 4", got)
	}
	if got := bfs.MarkReachable([]int32{0}, 3, covered); got != 4 {
		t.Errorf("MarkReachable = %d, want 4", got)
	}
	// Second time nothing new.
	if got := bfs.CountNewlyReachable([]int32{1}, 2, covered); got != 0 {
		t.Errorf("after covering, CountNewlyReachable = %d, want 0", got)
	}
	if got := bfs.CountNewlyReachable([]int32{2}, 3, covered); got != 2 {
		t.Errorf("partially covered frontier = %d, want 2 (nodes 4,5)", got)
	}
}

func TestBFSAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 5 + r.Intn(20)
		b := NewBuilder(n)
		m := r.Intn(4 * n)
		for i := 0; i < m; i++ {
			_ = b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)), 1)
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		src := int32(r.Intn(n))
		hops := r.Intn(5)
		// Brute force: adjacency-matrix style expansion.
		reach := map[int32]bool{src: true}
		frontier := []int32{src}
		for h := 0; h < hops; h++ {
			var next []int32
			for _, v := range frontier {
				dst, _ := g.OutNeighbors(v)
				for _, u := range dst {
					if !reach[u] {
						reach[u] = true
						next = append(next, u)
					}
				}
			}
			frontier = next
		}
		bfs := NewBFS(g)
		got := bfs.ReachableWithin([]int32{src}, hops)
		if len(got) != len(reach) {
			t.Fatalf("trial %d: got %d nodes, want %d", trial, len(got), len(reach))
		}
		for _, v := range got {
			if !reach[v] {
				t.Fatalf("trial %d: node %d wrongly reached", trial, v)
			}
		}
	}
}
