package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"ovm/internal/binio"
)

// Binary graph codec: the exact CSR arrays, little-endian, so a loaded
// graph is bit-identical to the one written — no re-normalization, no float
// re-parsing. Used by the persistent index format (internal/serialize),
// where bit-identity is what makes load-not-recompute daemons return the
// same answers as fresh computation.
//
// Layout (after the container's own framing):
//
//	u32 n, u64 m, u8 columnStochastic
//	inStart  (n+1 × i32)   inSrc (m × i32)   inW (m × f64)
//	outStart (n+1 × i32)   outDst (m × i32)  outW (m × f64)

// Sanity caps on declared sizes, so truncated or corrupted headers fail
// with an error instead of attempting a multi-gigabyte allocation.
const (
	maxBinaryNodes = 1 << 28
	maxBinaryEdges = 1 << 31
)

// WriteBinary serializes g's exact CSR representation to w.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if err := binio.WriteU32(bw, uint32(g.n)); err != nil {
		return err
	}
	if err := binio.WriteU64(bw, uint64(g.M())); err != nil {
		return err
	}
	cs := byte(0)
	if g.columnStochastic {
		cs = 1
	}
	if err := bw.WriteByte(cs); err != nil {
		return err
	}
	for _, arr := range [][]int32{g.inStart, g.inSrc} {
		if err := binio.WriteI32s(bw, arr); err != nil {
			return err
		}
	}
	if err := binio.WriteF64s(bw, g.inW); err != nil {
		return err
	}
	for _, arr := range [][]int32{g.outStart, g.outDst} {
		if err := binio.WriteI32s(bw, arr); err != nil {
			return err
		}
	}
	if err := binio.WriteF64s(bw, g.outW); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary parses the format produced by WriteBinary and validates every
// structural invariant (offset monotonicity, id ranges, finite weights, and
// in/out adjacency describing the same edge multiset sizes). It reads
// exactly the payload bytes and never buffers ahead, so it composes inside
// container formats that continue reading from r afterwards.
func ReadBinary(r io.Reader) (*Graph, error) {
	n64, err := binio.ReadU32(r)
	if err != nil {
		return nil, fmt.Errorf("graph: binary header: %w", err)
	}
	n := int(n64)
	if n <= 0 || n > maxBinaryNodes {
		return nil, fmt.Errorf("graph: binary node count %d outside (0,%d]", n, maxBinaryNodes)
	}
	m64, err := binio.ReadU64(r)
	if err != nil {
		return nil, fmt.Errorf("graph: binary header: %w", err)
	}
	if m64 > maxBinaryEdges {
		return nil, fmt.Errorf("graph: binary edge count %d exceeds limit", m64)
	}
	m := int(m64)
	var csBuf [1]byte
	if _, err := io.ReadFull(r, csBuf[:]); err != nil {
		return nil, fmt.Errorf("graph: binary header: %w", err)
	}
	cs := csBuf[0]
	if cs > 1 {
		return nil, fmt.Errorf("graph: binary columnStochastic flag %d, want 0 or 1", cs)
	}
	g := &Graph{n: n, columnStochastic: cs == 1}
	if g.inStart, err = binio.ReadI32s(r, n+1); err != nil {
		return nil, err
	}
	if g.inSrc, err = binio.ReadI32s(r, m); err != nil {
		return nil, err
	}
	if g.inW, err = binio.ReadF64s(r, m); err != nil {
		return nil, err
	}
	if g.outStart, err = binio.ReadI32s(r, n+1); err != nil {
		return nil, err
	}
	if g.outDst, err = binio.ReadI32s(r, m); err != nil {
		return nil, err
	}
	if g.outW, err = binio.ReadF64s(r, m); err != nil {
		return nil, err
	}
	if err := validateCSR(g.inStart, g.inSrc, n, m, "in"); err != nil {
		return nil, err
	}
	if err := validateCSR(g.outStart, g.outDst, n, m, "out"); err != nil {
		return nil, err
	}
	for i, w := range g.inW {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return nil, fmt.Errorf("graph: binary in-weight %d is %v", i, w)
		}
	}
	for i, w := range g.outW {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return nil, fmt.Errorf("graph: binary out-weight %d is %v", i, w)
		}
	}
	return g, nil
}

func validateCSR(start, ids []int32, n, m int, side string) error {
	if start[0] != 0 || int(start[n]) != m {
		return fmt.Errorf("graph: binary %s-offsets must span [0,%d], got [%d,%d]", side, m, start[0], start[n])
	}
	for v := 0; v < n; v++ {
		if start[v+1] < start[v] {
			return fmt.Errorf("graph: binary %s-offsets not monotone at node %d", side, v)
		}
	}
	for i, id := range ids {
		if id < 0 || int(id) >= n {
			return fmt.Errorf("graph: binary %s-edge %d references node %d, want [0,%d)", side, i, id, n)
		}
	}
	return nil
}
