package graph

import (
	"fmt"
	"slices"
)

// Builder accumulates edges and assembles an immutable Graph.
// Parallel edges between the same ordered pair are merged by summing
// their weights. Self-loops are permitted (they realize stubbornness-free
// opinion retention for isolated nodes).
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder returns a builder for a graph with n nodes (ids 0..n-1).
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// AddEdge records a directed edge from → to with weight w.
func (b *Builder) AddEdge(from, to int32, w float64) error {
	if from < 0 || int(from) >= b.n || to < 0 || int(to) >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", from, to, b.n)
	}
	if w < 0 {
		return fmt.Errorf("graph: negative weight %v on edge (%d,%d)", w, from, to)
	}
	b.edges = append(b.edges, Edge{From: from, To: to, W: w})
	return nil
}

// AddEdges records a batch of edges.
func (b *Builder) AddEdges(edges []Edge) error {
	for _, e := range edges {
		if err := b.AddEdge(e.From, e.To, e.W); err != nil {
			return err
		}
	}
	return nil
}

// NumEdges returns the number of edges recorded so far (before merging).
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build assembles the CSR graph. The builder may be reused afterwards.
func (b *Builder) Build() (*Graph, error) {
	if b.n <= 0 {
		return nil, fmt.Errorf("graph: need at least one node, got %d", b.n)
	}
	edges := mergeParallel(b.edges)
	g := &Graph{n: b.n}

	// Out-CSR (edges already sorted (From, To) by mergeParallel).
	g.outStart = make([]int32, b.n+1)
	for _, e := range edges {
		g.outStart[e.From+1]++
	}
	for v := 0; v < b.n; v++ {
		g.outStart[v+1] += g.outStart[v]
	}
	g.outDst = make([]int32, len(edges))
	g.outW = make([]float64, len(edges))
	for i, e := range edges {
		g.outDst[i] = e.To
		g.outW[i] = e.W
	}

	// In-CSR via counting sort on To.
	g.inStart = make([]int32, b.n+1)
	for _, e := range edges {
		g.inStart[e.To+1]++
	}
	for v := 0; v < b.n; v++ {
		g.inStart[v+1] += g.inStart[v]
	}
	g.inSrc = make([]int32, len(edges))
	g.inW = make([]float64, len(edges))
	next := make([]int32, b.n)
	copy(next, g.inStart[:b.n])
	for _, e := range edges {
		pos := next[e.To]
		next[e.To]++
		g.inSrc[pos] = e.From
		g.inW[pos] = e.W
	}
	return g, nil
}

// BuildColumnStochastic assembles the graph and normalizes in-edge weights
// so that each node's in-weights sum to 1. Nodes with zero total in-weight
// receive a self-loop of weight 1 (so they retain their opinion under
// DeGroot/FJ diffusion, matching §II-A).
func (b *Builder) BuildColumnStochastic() (*Graph, error) {
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return g.ColumnStochastic()
}

func mergeParallel(edges []Edge) []Edge {
	if len(edges) == 0 {
		return nil
	}
	es := make([]Edge, len(edges))
	copy(es, edges)
	slices.SortFunc(es, func(a, b Edge) int {
		if a.From != b.From {
			return int(a.From) - int(b.From)
		}
		return int(a.To) - int(b.To)
	})
	out := es[:1]
	for _, e := range es[1:] {
		last := &out[len(out)-1]
		if e.From == last.From && e.To == last.To {
			last.W += e.W
		} else {
			out = append(out, e)
		}
	}
	return out
}

// ColumnStochastic returns a copy of g with in-edge weights normalized to
// sum to 1 per node; nodes with zero in-weight gain a weight-1 self-loop.
func (g *Graph) ColumnStochastic() (*Graph, error) {
	b := NewBuilder(g.n)
	for v := int32(0); v < int32(g.n); v++ {
		sum := g.InWeightSum(v)
		if sum <= 0 {
			if err := b.AddEdge(v, v, 1); err != nil {
				return nil, err
			}
			continue
		}
		src, w := g.InNeighbors(v)
		for i := range src {
			if w[i] == 0 {
				continue
			}
			if err := b.AddEdge(src[i], v, w[i]/sum); err != nil {
				return nil, err
			}
		}
	}
	ng, err := b.Build()
	if err != nil {
		return nil, err
	}
	ng.columnStochastic = true
	return ng, nil
}

// FromEdges is shorthand for building a graph directly from an edge list.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	b := NewBuilder(n)
	if err := b.AddEdges(edges); err != nil {
		return nil, err
	}
	return b.Build()
}

// FromEdgesColumnStochastic builds a column-stochastic graph from an edge
// list.
func FromEdgesColumnStochastic(n int, edges []Edge) (*Graph, error) {
	b := NewBuilder(n)
	if err := b.AddEdges(edges); err != nil {
		return nil, err
	}
	return b.BuildColumnStochastic()
}
