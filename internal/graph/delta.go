package graph

import (
	"fmt"
	"math"
	"slices"
)

// DeltaOp names one kind of edge mutation applied by ApplyDeltas.
type DeltaOp uint8

const (
	// DeltaAdd inserts the edge from → to with raw weight W, summing with
	// the edge's current weight when it already exists.
	DeltaAdd DeltaOp = iota
	// DeltaSet sets the edge's raw weight to W, inserting the edge when it
	// does not exist yet.
	DeltaSet
	// DeltaRemove deletes the edge; removing a missing edge is an error so
	// replayed update logs fail loudly instead of silently diverging.
	DeltaRemove
)

// Delta is one edge mutation. W is ignored by DeltaRemove.
type Delta struct {
	Op       DeltaOp
	From, To int32
	W        float64
}

// ApplyDeltas applies a batch of edge mutations to a column-stochastic
// graph and returns a new CSR graph plus the sorted set of changed nodes —
// the destinations whose in-neighborhoods (sources or weights) differ from
// g's. The receiver is not modified.
//
// Mutations are interpreted against the current (normalized) weights of the
// destination column: the column's weights act as the raw measure, the
// batch's ops are applied in order, and the column is renormalized to sum
// to 1. A column whose ops touch it is always renormalized (and therefore
// always reported as changed); a column left with no in-edges receives a
// weight-1 self-loop, mirroring ColumnStochastic. Untouched columns are
// copied verbatim, so their weights stay bit-identical — the property that
// lets sampled artifacts over unchanged regions survive an update without
// regeneration.
func (g *Graph) ApplyDeltas(deltas []Delta) (*Graph, []int32, error) {
	n := int32(g.n)
	if !g.columnStochastic {
		if v := g.CheckColumnStochastic(1e-6); v >= 0 {
			return nil, nil, fmt.Errorf("graph: delta-apply needs a column-stochastic graph; in-weights of node %d do not sum to 1", v)
		}
	}
	byCol := make(map[int32][]Delta)
	for i, d := range deltas {
		if d.From < 0 || d.From >= n || d.To < 0 || d.To >= n {
			return nil, nil, fmt.Errorf("graph: delta %d edge (%d,%d) out of range [0,%d)", i, d.From, d.To, n)
		}
		switch d.Op {
		case DeltaAdd, DeltaSet:
			if math.IsNaN(d.W) || math.IsInf(d.W, 0) || d.W <= 0 {
				return nil, nil, fmt.Errorf("graph: delta %d weight %v on edge (%d,%d) must be positive and finite", i, d.W, d.From, d.To)
			}
		case DeltaRemove:
		default:
			return nil, nil, fmt.Errorf("graph: delta %d has unknown op %d", i, d.Op)
		}
		byCol[d.To] = append(byCol[d.To], d)
	}
	changed := make([]int32, 0, len(byCol))
	for v := range byCol {
		changed = append(changed, v)
	}
	slices.Sort(changed)

	type inEdge struct {
		src int32
		w   float64
	}
	newCols := make(map[int32][]inEdge, len(changed))
	for _, v := range changed {
		src, w := g.InNeighbors(v)
		col := make([]inEdge, len(src))
		for i := range src {
			col[i] = inEdge{src[i], w[i]}
		}
		for _, d := range byCol[v] {
			at := -1
			for i := range col {
				if col[i].src == d.From {
					at = i
					break
				}
			}
			switch d.Op {
			case DeltaAdd:
				if at >= 0 {
					col[at].w += d.W
				} else {
					col = append(col, inEdge{d.From, d.W})
				}
			case DeltaSet:
				if at >= 0 {
					col[at].w = d.W
				} else {
					col = append(col, inEdge{d.From, d.W})
				}
			case DeltaRemove:
				if at < 0 {
					return nil, nil, fmt.Errorf("graph: cannot remove missing edge (%d,%d)", d.From, d.To)
				}
				col = append(col[:at], col[at+1:]...)
			}
		}
		if len(col) == 0 {
			col = []inEdge{{v, 1}}
		} else {
			sum := 0.0
			for i := range col {
				sum += col[i].w
			}
			if math.IsNaN(sum) || math.IsInf(sum, 0) || sum <= 0 {
				return nil, nil, fmt.Errorf("graph: in-weights of node %d sum to %v after deltas", v, sum)
			}
			for i := range col {
				col[i].w /= sum
			}
		}
		slices.SortFunc(col, func(a, b inEdge) int { return int(a.src) - int(b.src) })
		newCols[v] = col
	}

	// Assemble the in-CSR: changed columns from newCols, the rest copied
	// verbatim from g.
	total := int64(0)
	degs := make([]int32, g.n)
	for v := int32(0); v < n; v++ {
		if col, ok := newCols[v]; ok {
			degs[v] = int32(len(col))
		} else {
			degs[v] = g.inStart[v+1] - g.inStart[v]
		}
		total += int64(degs[v])
	}
	if total > math.MaxInt32 {
		return nil, nil, fmt.Errorf("graph: delta-apply would produce %d edges, exceeding storage limits", total)
	}
	ng := &Graph{n: g.n, columnStochastic: true}
	ng.inStart = make([]int32, g.n+1)
	for v := int32(0); v < n; v++ {
		ng.inStart[v+1] = ng.inStart[v] + degs[v]
	}
	m := int(total)
	ng.inSrc = make([]int32, m)
	ng.inW = make([]float64, m)
	for v := int32(0); v < n; v++ {
		pos := ng.inStart[v]
		if col, ok := newCols[v]; ok {
			for _, e := range col {
				ng.inSrc[pos] = e.src
				ng.inW[pos] = e.w
				pos++
			}
		} else {
			lo, hi := g.inStart[v], g.inStart[v+1]
			copy(ng.inSrc[ng.inStart[v]:], g.inSrc[lo:hi])
			copy(ng.inW[ng.inStart[v]:], g.inW[lo:hi])
		}
	}

	// Derive the out-CSR by a stable counting sort on source. Scanning
	// destinations in ascending order keeps each source's out-edges sorted
	// by destination — the same (From, To) order Builder.Build produces.
	ng.outStart = make([]int32, g.n+1)
	for _, src := range ng.inSrc {
		ng.outStart[src+1]++
	}
	for v := 0; v < g.n; v++ {
		ng.outStart[v+1] += ng.outStart[v]
	}
	ng.outDst = make([]int32, m)
	ng.outW = make([]float64, m)
	next := make([]int32, g.n)
	copy(next, ng.outStart[:g.n])
	for v := int32(0); v < n; v++ {
		for i := ng.inStart[v]; i < ng.inStart[v+1]; i++ {
			src := ng.inSrc[i]
			pos := next[src]
			next[src]++
			ng.outDst[pos] = v
			ng.outW[pos] = ng.inW[i]
		}
	}
	return ng, changed, nil
}
