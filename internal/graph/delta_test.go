package graph

import (
	"math"
	"math/rand"
	"testing"
)

// randomStochastic builds a column-stochastic random graph for delta tests.
func randomStochastic(t *testing.T, n int, seed int64) *Graph {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	edges, err := Gnp(n, 4.0/float64(n), r)
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromEdgesColumnStochastic(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestApplyDeltasUnchangedColumnsBitIdentical(t *testing.T) {
	g := randomStochastic(t, 60, 1)
	deltas := []Delta{
		{Op: DeltaAdd, From: 3, To: 7, W: 0.5},
		{Op: DeltaSet, From: 1, To: 9, W: 2},
	}
	ng, changed, err := g.ApplyDeltas(deltas)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int32{7, 9}; len(changed) != 2 || changed[0] != want[0] || changed[1] != want[1] {
		t.Fatalf("changed = %v, want %v", changed, want)
	}
	if !ng.IsColumnStochastic() {
		t.Fatal("result must be column-stochastic")
	}
	isChanged := map[int32]bool{7: true, 9: true}
	for v := int32(0); v < int32(g.N()); v++ {
		if isChanged[v] {
			continue
		}
		os, ow := g.InNeighbors(v)
		ns, nw := ng.InNeighbors(v)
		if len(os) != len(ns) {
			t.Fatalf("node %d in-degree changed %d → %d", v, len(os), len(ns))
		}
		for i := range os {
			if os[i] != ns[i] || math.Float64bits(ow[i]) != math.Float64bits(nw[i]) {
				t.Fatalf("node %d in-edge %d changed: (%d,%v) → (%d,%v)", v, i, os[i], ow[i], ns[i], nw[i])
			}
		}
	}
	if v := ng.CheckColumnStochastic(1e-9); v >= 0 {
		t.Fatalf("node %d not normalized after delta", v)
	}
}

func TestApplyDeltasSemantics(t *testing.T) {
	// 3 nodes; node 2 has in-edges from 0 (0.25) and 2 (0.75).
	g, err := FromEdgesColumnStochastic(3, []Edge{
		{0, 2, 1}, {2, 2, 3}, {0, 1, 1}, {1, 0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Add 1→2 with raw weight 1: raw column {0.25, 0.75, 1} → sum 2.
	ng, _, err := g.ApplyDeltas([]Delta{{Op: DeltaAdd, From: 1, To: 2, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	src, w := ng.InNeighbors(2)
	if len(src) != 3 || src[0] != 0 || src[1] != 1 || src[2] != 2 {
		t.Fatalf("in-neighbors of 2 = %v, want [0 1 2]", src)
	}
	for i, want := range []float64{0.125, 0.5, 0.375} {
		if math.Abs(w[i]-want) > 1e-12 {
			t.Fatalf("weight[%d] = %v, want %v", i, w[i], want)
		}
	}
	// Removing the only in-edge of node 1 yields a self-loop.
	ng2, changed, err := g.ApplyDeltas([]Delta{{Op: DeltaRemove, From: 0, To: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 1 || changed[0] != 1 {
		t.Fatalf("changed = %v, want [1]", changed)
	}
	src, w = ng2.InNeighbors(1)
	if len(src) != 1 || src[0] != 1 || w[0] != 1 {
		t.Fatalf("emptied column must get a self-loop, got src=%v w=%v", src, w)
	}
}

func TestApplyDeltasOutCSRConsistent(t *testing.T) {
	g := randomStochastic(t, 40, 2)
	ng, _, err := g.ApplyDeltas([]Delta{
		{Op: DeltaAdd, From: 0, To: 5, W: 1},
		{Op: DeltaAdd, From: 39, To: 5, W: 0.5},
		{Op: DeltaSet, From: 2, To: 11, W: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The out-CSR must describe the same edge multiset as the in-CSR, in
	// (From, To) order — rebuild from the edge list and compare.
	rebuilt, err := FromEdges(ng.N(), ng.Edges())
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.M() != ng.M() {
		t.Fatalf("edge counts differ: %d vs %d", rebuilt.M(), ng.M())
	}
	for v := int32(0); v < int32(ng.N()); v++ {
		as, aw := ng.InNeighbors(v)
		bs, bw := rebuilt.InNeighbors(v)
		if len(as) != len(bs) {
			t.Fatalf("node %d: in-degrees differ", v)
		}
		for i := range as {
			if as[i] != bs[i] || aw[i] != bw[i] {
				t.Fatalf("node %d in-edge %d differs from rebuilt graph", v, i)
			}
		}
	}
}

func TestApplyDeltasErrors(t *testing.T) {
	g := randomStochastic(t, 10, 3)
	cases := []struct {
		name  string
		delta Delta
	}{
		{"from out of range", Delta{Op: DeltaAdd, From: -1, To: 0, W: 1}},
		{"to out of range", Delta{Op: DeltaAdd, From: 0, To: 10, W: 1}},
		{"zero weight", Delta{Op: DeltaAdd, From: 0, To: 1, W: 0}},
		{"negative weight", Delta{Op: DeltaSet, From: 0, To: 1, W: -2}},
		{"nan weight", Delta{Op: DeltaSet, From: 0, To: 1, W: math.NaN()}},
		{"inf weight", Delta{Op: DeltaAdd, From: 0, To: 1, W: math.Inf(1)}},
		{"remove missing edge", Delta{Op: DeltaRemove, From: 7, To: 3}},
		{"unknown op", Delta{Op: DeltaOp(99), From: 0, To: 1, W: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// "remove missing edge" needs the edge to actually be missing.
			if tc.name == "remove missing edge" {
				found := false
				g.InEdges(3, func(src int32, _ float64) {
					if src == 7 {
						found = true
					}
				})
				if found {
					t.Skip("edge 7→3 exists in this fixture")
				}
			}
			if _, _, err := g.ApplyDeltas([]Delta{tc.delta}); err == nil {
				t.Fatalf("expected error for %s", tc.name)
			}
		})
	}
}
