// Package graph provides the directed-graph substrate for voting-based
// opinion maximization: a compact CSR representation with both in- and
// out-adjacency, column-stochastic normalization of influence weights
// (§II-A), t-hop reachability used by the sandwich upper bounds (§IV),
// O(1) in-edge samplers for reverse random walks (§V, §VI), node-induced
// subgraphs for the scalability study (Fig 17), synthetic generators
// standing in for the paper's crawled datasets, and edge-list I/O.
//
// Weight convention: the influence matrix W is column-stochastic, i.e. for
// every node v the weights of v's incoming edges sum to 1. Nodes with no
// in-edges receive an implicit self-loop of weight 1 during normalization,
// which realizes the paper's "users without in-neighbors retain their
// initial opinions" rule.
package graph
