package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// Gnp returns the edge list of a directed Erdős–Rényi G(n, p) graph without
// self-loops, using geometric edge skipping so the cost is proportional to
// the number of generated edges rather than n².
func Gnp(n int, p float64, r *rand.Rand) ([]Edge, error) {
	if n <= 0 {
		return nil, fmt.Errorf("graph: Gnp needs n > 0, got %d", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("graph: Gnp needs p in [0,1], got %v", p)
	}
	if p == 0 {
		return nil, nil
	}
	var edges []Edge
	total := int64(n) * int64(n)
	logq := math.Log(1 - p)
	pos := int64(-1)
	for {
		if p >= 1 {
			pos++
		} else {
			// Skip ahead geometrically.
			u := r.Float64()
			skip := int64(math.Floor(math.Log(1-u)/logq)) + 1
			pos += skip
		}
		if pos >= total {
			break
		}
		from := int32(pos / int64(n))
		to := int32(pos % int64(n))
		if from == to {
			continue
		}
		edges = append(edges, Edge{From: from, To: to, W: 1})
	}
	return edges, nil
}

// PreferentialAttachment generates a directed scale-free graph in the
// spirit of Barabási–Albert: nodes arrive one by one and each creates mOut
// out-edges whose targets are sampled proportionally to (in-degree + 1)
// among earlier nodes. The resulting in-degree distribution is heavy-tailed,
// mimicking retweet/friendship graphs. Returned edges have weight 1.
func PreferentialAttachment(n, mOut int, r *rand.Rand) ([]Edge, error) {
	if n <= 1 {
		return nil, fmt.Errorf("graph: PreferentialAttachment needs n > 1, got %d", n)
	}
	if mOut <= 0 {
		return nil, fmt.Errorf("graph: PreferentialAttachment needs mOut > 0, got %d", mOut)
	}
	// repeated: every edge endpoint appears once; sampling an element
	// uniformly from it realizes (in-degree + 1)-proportional selection
	// because each node is seeded with one occurrence.
	repeated := make([]int32, 0, n*(mOut+1))
	edges := make([]Edge, 0, n*mOut)
	seen := make(map[int32]bool, mOut)
	repeated = append(repeated, 0)
	for v := int32(1); v < int32(n); v++ {
		k := mOut
		if int(v) < mOut {
			k = int(v)
		}
		for key := range seen {
			delete(seen, key)
		}
		for len(seen) < k {
			t := repeated[r.Intn(len(repeated))]
			if t == v || seen[t] {
				continue
			}
			seen[t] = true
			edges = append(edges, Edge{From: v, To: t, W: 1})
			repeated = append(repeated, t)
		}
		repeated = append(repeated, v)
	}
	return edges, nil
}

// PlantedPartition generates a directed community graph: n nodes are split
// round-robin into comms communities; each node draws Poisson(avgIntra)
// out-edges to uniform targets inside its community and Poisson(avgInter)
// out-edges to uniform targets outside. It returns the edge list and the
// community assignment. Used to synthesize the DBLP-like case-study world
// whose domains drive Table IV / Fig 4.
func PlantedPartition(n, comms int, avgIntra, avgInter float64, r *rand.Rand) ([]Edge, []int, error) {
	if n <= 0 || comms <= 0 || comms > n {
		return nil, nil, fmt.Errorf("graph: PlantedPartition needs 0 < comms <= n, got comms=%d n=%d", comms, n)
	}
	if avgIntra < 0 || avgInter < 0 {
		return nil, nil, fmt.Errorf("graph: negative expected degree (intra=%v inter=%v)", avgIntra, avgInter)
	}
	community := make([]int, n)
	members := make([][]int32, comms)
	for v := 0; v < n; v++ {
		c := v % comms
		community[v] = c
		members[c] = append(members[c], int32(v))
	}
	var edges []Edge
	for v := 0; v < n; v++ {
		c := community[v]
		in := members[c]
		for i, kIntra := 0, poisson(avgIntra, r); i < kIntra; i++ {
			if len(in) < 2 {
				break
			}
			t := in[r.Intn(len(in))]
			if int(t) == v {
				continue
			}
			edges = append(edges, Edge{From: int32(v), To: t, W: 1})
		}
		for i, kInter := 0, poisson(avgInter, r); i < kInter; i++ {
			if n-len(in) < 1 {
				break
			}
			t := int32(r.Intn(n))
			if community[t] == c {
				continue
			}
			edges = append(edges, Edge{From: int32(v), To: t, W: 1})
		}
	}
	return edges, community, nil
}

// poisson draws a Poisson(lambda) variate (Knuth's method for small lambda,
// normal approximation above 30).
func poisson(lambda float64, r *rand.Rand) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		k := int(math.Round(lambda + math.Sqrt(lambda)*r.NormFloat64()))
		if k < 0 {
			return 0
		}
		return k
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
