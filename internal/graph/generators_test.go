package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestGnpEdgeCount(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	n, p := 300, 0.05
	edges, err := Gnp(n, p, r)
	if err != nil {
		t.Fatal(err)
	}
	expected := p * float64(n) * float64(n-1)
	if got := float64(len(edges)); math.Abs(got-expected) > 0.15*expected {
		t.Errorf("edge count %v too far from expectation %v", got, expected)
	}
	for _, e := range edges {
		if e.From == e.To {
			t.Fatal("Gnp produced a self-loop")
		}
	}
}

func TestGnpEdgeCases(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	if _, err := Gnp(0, 0.5, r); err == nil {
		t.Error("expected error for n=0")
	}
	if _, err := Gnp(10, 1.5, r); err == nil {
		t.Error("expected error for p>1")
	}
	edges, err := Gnp(10, 0, r)
	if err != nil || len(edges) != 0 {
		t.Errorf("p=0 should give no edges, got %d (err %v)", len(edges), err)
	}
	edges, err = Gnp(5, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 20 { // 5*4 ordered pairs without self-loops
		t.Errorf("p=1 on n=5 should give 20 edges, got %d", len(edges))
	}
}

func TestPreferentialAttachmentShape(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	n, mOut := 2000, 4
	edges, err := PreferentialAttachment(n, mOut, r)
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	// No self-loops, no node points forward in arrival order.
	for _, e := range edges {
		if e.From == e.To {
			t.Fatal("self-loop generated")
		}
		if e.To > e.From {
			t.Fatalf("edge %d→%d points to a later node", e.From, e.To)
		}
	}
	// Heavy tail: max in-degree far exceeds the mean.
	maxIn, sumIn := 0, 0
	for v := int32(0); v < int32(n); v++ {
		d := g.InDegree(v)
		sumIn += d
		if d > maxIn {
			maxIn = d
		}
	}
	mean := float64(sumIn) / float64(n)
	if float64(maxIn) < 5*mean {
		t.Errorf("max in-degree %d not heavy-tailed vs mean %.2f", maxIn, mean)
	}
}

func TestPreferentialAttachmentErrors(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	if _, err := PreferentialAttachment(1, 2, r); err == nil {
		t.Error("expected error for n=1")
	}
	if _, err := PreferentialAttachment(10, 0, r); err == nil {
		t.Error("expected error for mOut=0")
	}
}

func TestPlantedPartitionCommunities(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	n, comms := 700, 7
	edges, community, err := PlantedPartition(n, comms, 6, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(community) != n {
		t.Fatalf("community length %d, want %d", len(community), n)
	}
	intra, inter := 0, 0
	for _, e := range edges {
		if community[e.From] == community[e.To] {
			intra++
		} else {
			inter++
		}
	}
	if intra <= 3*inter {
		t.Errorf("intra=%d should dominate inter=%d at ratio 6:1", intra, inter)
	}
}

func TestPlantedPartitionErrors(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	if _, _, err := PlantedPartition(5, 10, 1, 1, r); err == nil {
		t.Error("expected error for comms>n")
	}
	if _, _, err := PlantedPartition(10, 2, -1, 1, r); err == nil {
		t.Error("expected error for negative degree")
	}
}

func TestPoissonMean(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, lambda := range []float64{0.5, 3, 8, 50} {
		sum := 0
		const draws = 20000
		for i := 0; i < draws; i++ {
			sum += poisson(lambda, r)
		}
		mean := float64(sum) / draws
		if math.Abs(mean-lambda) > 0.1*lambda+0.05 {
			t.Errorf("poisson(%v) mean = %v", lambda, mean)
		}
	}
	if poisson(0, r) != 0 {
		t.Error("poisson(0) should be 0")
	}
}
