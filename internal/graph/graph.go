package graph

// Edge is one directed, weighted edge.
type Edge struct {
	From, To int32
	W        float64
}

// Graph is an immutable directed weighted graph in CSR form, storing both
// in-adjacency (used by opinion diffusion and reverse random walks) and
// out-adjacency (used by reachability bounds and forward IC/LT simulation).
type Graph struct {
	n int

	inStart []int32 // len n+1; in-edges of v are [inStart[v], inStart[v+1])
	inSrc   []int32
	inW     []float64

	outStart []int32 // len n+1; out-edges of v are [outStart[v], outStart[v+1])
	outDst   []int32
	outW     []float64

	columnStochastic bool
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of directed edges.
func (g *Graph) M() int { return len(g.inSrc) }

// InDegree returns the number of in-edges of v.
func (g *Graph) InDegree(v int32) int {
	return int(g.inStart[v+1] - g.inStart[v])
}

// OutDegree returns the number of out-edges of v.
func (g *Graph) OutDegree(v int32) int {
	return int(g.outStart[v+1] - g.outStart[v])
}

// InEdges calls fn(src, w) for every in-edge (src → v, weight w).
func (g *Graph) InEdges(v int32, fn func(src int32, w float64)) {
	for i := g.inStart[v]; i < g.inStart[v+1]; i++ {
		fn(g.inSrc[i], g.inW[i])
	}
}

// OutEdges calls fn(dst, w) for every out-edge (v → dst, weight w).
func (g *Graph) OutEdges(v int32, fn func(dst int32, w float64)) {
	for i := g.outStart[v]; i < g.outStart[v+1]; i++ {
		fn(g.outDst[i], g.outW[i])
	}
}

// InNeighbors returns the slice views of v's in-edge sources and weights.
// The returned slices alias internal storage and must not be modified.
func (g *Graph) InNeighbors(v int32) ([]int32, []float64) {
	return g.inSrc[g.inStart[v]:g.inStart[v+1]], g.inW[g.inStart[v]:g.inStart[v+1]]
}

// OutNeighbors returns the slice views of v's out-edge destinations and
// weights. The returned slices alias internal storage and must not be
// modified.
func (g *Graph) OutNeighbors(v int32) ([]int32, []float64) {
	return g.outDst[g.outStart[v]:g.outStart[v+1]], g.outW[g.outStart[v]:g.outStart[v+1]]
}

// InWeightSum returns the total weight of v's in-edges.
func (g *Graph) InWeightSum(v int32) float64 {
	sum := 0.0
	for i := g.inStart[v]; i < g.inStart[v+1]; i++ {
		sum += g.inW[i]
	}
	return sum
}

// IsColumnStochastic reports whether the graph was built (or normalized)
// with column-stochastic weights.
func (g *Graph) IsColumnStochastic() bool { return g.columnStochastic }

// CheckColumnStochastic verifies that every node's in-weights sum to 1
// within tol. It returns the first offending node, or -1 if all pass.
func (g *Graph) CheckColumnStochastic(tol float64) int32 {
	for v := int32(0); v < int32(g.n); v++ {
		s := g.InWeightSum(v)
		if s < 1-tol || s > 1+tol {
			return v
		}
	}
	return -1
}

// Edges returns all edges in from-major order. Intended for tests and I/O;
// allocates a fresh slice.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.M())
	for v := int32(0); v < int32(g.n); v++ {
		for i := g.outStart[v]; i < g.outStart[v+1]; i++ {
			es = append(es, Edge{From: v, To: g.outDst[i], W: g.outW[i]})
		}
	}
	return es
}

// TotalInWeight returns the sum of all edge weights (== n for a
// column-stochastic graph).
func (g *Graph) TotalInWeight() float64 {
	sum := 0.0
	for _, w := range g.inW {
		sum += w
	}
	return sum
}
