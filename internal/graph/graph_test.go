package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// figure1 builds the paper's running-example topology (Fig 1): 4 users,
// edges 1→3, 2→3, 3→4 (0-indexed: 0→2, 1→2, 2→3), column-stochastic with
// self-loops so that user 3's recursion is
// b3' = ½b3 + ¼b1 + ¼b2 and user 4's is b4' = ½b3 + ½b4.
func figure1(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(4)
	edges := []Edge{
		{0, 2, 0.25}, {1, 2, 0.25}, {2, 2, 0.5},
		{2, 3, 0.5}, {3, 3, 0.5},
	}
	if err := b.AddEdges(edges); err != nil {
		t.Fatal(err)
	}
	g, err := b.BuildColumnStochastic()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuilderBasics(t *testing.T) {
	g := figure1(t)
	if g.N() != 4 {
		t.Fatalf("N = %d, want 4", g.N())
	}
	// Nodes 0 and 1 had no in-edges: normalization adds self-loops.
	if g.InDegree(0) != 1 || g.InDegree(1) != 1 {
		t.Errorf("nodes 0/1 should have self-loops, got in-degrees %d/%d", g.InDegree(0), g.InDegree(1))
	}
	if g.InDegree(2) != 3 {
		t.Errorf("node 2 in-degree = %d, want 3", g.InDegree(2))
	}
	if v := g.CheckColumnStochastic(1e-12); v != -1 {
		t.Errorf("node %d not column-stochastic", v)
	}
	if !g.IsColumnStochastic() {
		t.Error("IsColumnStochastic should be true after normalization")
	}
}

func TestBuilderMergesParallelEdges(t *testing.T) {
	b := NewBuilder(3)
	_ = b.AddEdge(0, 1, 0.25)
	_ = b.AddEdge(0, 1, 0.75)
	_ = b.AddEdge(1, 2, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2 after merging", g.M())
	}
	src, w := g.InNeighbors(1)
	if len(src) != 1 || src[0] != 0 || w[0] != 1 {
		t.Errorf("merged edge = (%v, %v), want (0→1, w=1)", src, w)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddEdge(0, 5, 1); err == nil {
		t.Error("expected range error")
	}
	if err := b.AddEdge(-1, 0, 1); err == nil {
		t.Error("expected range error for negative id")
	}
	if err := b.AddEdge(0, 1, -0.5); err == nil {
		t.Error("expected error for negative weight")
	}
	if _, err := NewBuilder(0).Build(); err == nil {
		t.Error("expected error for zero-node graph")
	}
}

func TestInOutConsistency(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(30)
		b := NewBuilder(n)
		m := r.Intn(100)
		for i := 0; i < m; i++ {
			_ = b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)), r.Float64())
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		// Sum of in-degrees == sum of out-degrees == M.
		in, out := 0, 0
		for v := int32(0); v < int32(n); v++ {
			in += g.InDegree(v)
			out += g.OutDegree(v)
		}
		if in != g.M() || out != g.M() {
			return false
		}
		// Every out-edge appears as an in-edge with the same weight.
		type key struct{ f, t int32 }
		inSet := map[key]float64{}
		for v := int32(0); v < int32(n); v++ {
			src, w := g.InNeighbors(v)
			for i := range src {
				inSet[key{src[i], v}] = w[i]
			}
		}
		for v := int32(0); v < int32(n); v++ {
			dst, w := g.OutNeighbors(v)
			for i := range dst {
				if ww, ok := inSet[key{v, dst[i]}]; !ok || math.Abs(ww-w[i]) > 1e-12 {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

func TestColumnStochasticProperty(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		b := NewBuilder(n)
		m := r.Intn(150)
		for i := 0; i < m; i++ {
			_ = b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)), r.Float64()*3)
		}
		g, err := b.BuildColumnStochastic()
		if err != nil {
			return false
		}
		return g.CheckColumnStochastic(1e-9) == -1
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

func TestTotalInWeight(t *testing.T) {
	g := figure1(t)
	if got := g.TotalInWeight(); math.Abs(got-4) > 1e-12 {
		t.Errorf("TotalInWeight = %v, want 4 (== n for column-stochastic)", got)
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := figure1(t)
	es := g.Edges()
	g2, err := FromEdges(g.N(), es)
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != g.M() {
		t.Fatalf("round-trip M = %d, want %d", g2.M(), g.M())
	}
	for v := int32(0); v < int32(g.N()); v++ {
		s1, w1 := g.InNeighbors(v)
		s2, w2 := g2.InNeighbors(v)
		if len(s1) != len(s2) {
			t.Fatalf("node %d in-degree mismatch", v)
		}
		for i := range s1 {
			if s1[i] != s2[i] || math.Abs(w1[i]-w2[i]) > 1e-15 {
				t.Fatalf("node %d edge %d mismatch", v, i)
			}
		}
	}
}
