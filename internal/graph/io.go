package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteEdgeList serializes g in a plain text format:
//
//	n m
//	from to weight        (m lines)
//
// Weights are written with full float64 round-trip precision.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	for v := int32(0); v < int32(g.N()); v++ {
		dst, ws := g.OutNeighbors(v)
		for i := range dst {
			if _, err := fmt.Fprintf(bw, "%d %d %s\n", v, dst[i],
				strconv.FormatFloat(ws[i], 'g', -1, 64)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// maxTextNodes caps the node count a text header may declare: the builder
// allocates O(n) up front, so an adversarial header must error instead of
// attempting a multi-gigabyte allocation. (The binary format has the
// analogous maxBinaryNodes; text files are experiment-scale.)
const maxTextNodes = 1 << 24

// ReadEdgeList parses the format produced by WriteEdgeList. Lines that are
// empty or start with '#' are skipped. Malformed input — bad header, short
// or non-numeric edge lines, out-of-range endpoints, negative weights, an
// edge-count mismatch — always returns an error, never panics.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var n, m int
	header := false
	var b *Builder
	read := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if !header {
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: malformed header %q (want \"n m\")", line)
			}
			var err error
			if n, err = strconv.Atoi(fields[0]); err != nil {
				return nil, fmt.Errorf("graph: bad node count %q: %w", fields[0], err)
			}
			if m, err = strconv.Atoi(fields[1]); err != nil {
				return nil, fmt.Errorf("graph: bad edge count %q: %w", fields[1], err)
			}
			if n <= 0 {
				return nil, fmt.Errorf("graph: node count must be positive, got %d", n)
			}
			if n > maxTextNodes {
				return nil, fmt.Errorf("graph: node count %d exceeds text-format limit %d", n, maxTextNodes)
			}
			if m < 0 {
				return nil, fmt.Errorf("graph: edge count must be non-negative, got %d", m)
			}
			b = NewBuilder(n)
			header = true
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("graph: malformed edge line %q (want \"from to w\")", line)
		}
		from, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: bad source %q: %w", fields[0], err)
		}
		to, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: bad target %q: %w", fields[1], err)
		}
		w, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("graph: bad weight %q: %w", fields[2], err)
		}
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("graph: non-finite weight %q", fields[2])
		}
		if err := b.AddEdge(int32(from), int32(to), w); err != nil {
			return nil, err
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !header {
		return nil, fmt.Errorf("graph: empty input")
	}
	if read != m {
		return nil, fmt.Errorf("graph: header promised %d edges, found %d", m, read)
	}
	return b.Build()
}
