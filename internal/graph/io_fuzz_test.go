package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList mirrors serialize's FuzzReadIndex for the text graph
// format: arbitrary input must either parse into a structurally valid
// graph that round-trips through WriteEdgeList, or return an error — it
// must never panic or over-allocate on adversarial headers.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("2 1\n0 1 0.5\n")
	f.Add("4 5\n0 2 0.25\n1 2 0.25\n2 2 0.5\n2 3 0.5\n3 3 0.5\n")
	f.Add("# comment\n\n3 2\n0 1 1\n1 0 1e-3\n")
	f.Add("1 0\n")
	f.Add("not a header\n")
	f.Add("2\n")                  // short header
	f.Add("2 2\n0 1 1\n")         // header promises more edges
	f.Add("2 1\n0 1\n")           // short edge line
	f.Add("2 1\n0 9 1\n")         // endpoint out of range
	f.Add("2 1\n0 1 -1\n")        // negative weight
	f.Add("2 1\n0 1 NaN\n")       // non-finite weight
	f.Add("2 1\nx y z\n")         // non-numeric fields
	f.Add("999999999999 0\n")     // huge node count
	f.Add("100000000 0\n")        // over the text-format cap
	f.Add("-5 0\n")               // negative node count
	f.Add("2 -1\n")               // negative edge count
	f.Add("2 1\n0 1 0.5 extra\n") // too many fields
	f.Fuzz(func(t *testing.T, data string) {
		g, err := ReadEdgeList(strings.NewReader(data))
		if err != nil {
			return
		}
		// Parsed graphs must be structurally sound and round-trip exactly.
		if g.N() <= 0 || g.N() > maxTextNodes {
			t.Fatalf("accepted graph with n=%d", g.N())
		}
		for _, e := range g.Edges() {
			if e.From < 0 || int(e.From) >= g.N() || e.To < 0 || int(e.To) >= g.N() || e.W < 0 {
				t.Fatalf("accepted out-of-range edge %+v", e)
			}
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		g2, err := ReadEdgeList(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round-trip re-read failed: %v", err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("round-trip changed shape: n %d→%d, m %d→%d", g.N(), g2.N(), g.M(), g2.M())
		}
	})
}
