package graph

import (
	"fmt"
	"math"
)

// CSRArrays is the exact storage of a Graph, exposed so the v3 index
// format (internal/serialize) can write the arrays verbatim and alias
// them back over a read-only mapped region. The slices belong to the
// Graph (or, for a mapped graph, to the mapping) — treat them as
// immutable.
type CSRArrays struct {
	N                int
	ColumnStochastic bool
	InStart, InSrc   []int32
	InW              []float64
	OutStart, OutDst []int32
	OutW             []float64
}

// Arrays returns g's raw CSR storage.
func (g *Graph) Arrays() CSRArrays {
	return CSRArrays{
		N:                g.n,
		ColumnStochastic: g.columnStochastic,
		InStart:          g.inStart,
		InSrc:            g.inSrc,
		InW:              g.inW,
		OutStart:         g.outStart,
		OutDst:           g.outDst,
		OutW:             g.outW,
	}
}

// NewFromCSR adopts pre-built CSR arrays without copying, running the
// same structural validation as the binary reader (offset monotonicity,
// id ranges, finite non-negative weights, matching in/out edge counts).
// The arrays may alias read-only storage: a Graph never mutates them.
func NewFromCSR(a CSRArrays) (*Graph, error) {
	n := a.N
	if n <= 0 || n > maxBinaryNodes {
		return nil, fmt.Errorf("graph: node count %d outside (0,%d]", n, maxBinaryNodes)
	}
	m := len(a.InSrc)
	if m > maxBinaryEdges {
		return nil, fmt.Errorf("graph: edge count %d exceeds limit", m)
	}
	if len(a.InStart) != n+1 || len(a.OutStart) != n+1 {
		return nil, fmt.Errorf("graph: offset arrays must have length n+1")
	}
	if len(a.InW) != m || len(a.OutDst) != m || len(a.OutW) != m {
		return nil, fmt.Errorf("graph: in/out arrays disagree on edge count")
	}
	if err := validateCSR(a.InStart, a.InSrc, n, m, "in"); err != nil {
		return nil, err
	}
	if err := validateCSR(a.OutStart, a.OutDst, n, m, "out"); err != nil {
		return nil, err
	}
	for i, w := range a.InW {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return nil, fmt.Errorf("graph: in-weight %d is %v", i, w)
		}
	}
	for i, w := range a.OutW {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return nil, fmt.Errorf("graph: out-weight %d is %v", i, w)
		}
	}
	return &Graph{
		n:                n,
		columnStochastic: a.ColumnStochastic,
		inStart:          a.InStart,
		inSrc:            a.InSrc,
		inW:              a.InW,
		outStart:         a.OutStart,
		outDst:           a.OutDst,
		outW:             a.OutW,
	}, nil
}
