package graph

import (
	"fmt"

	"ovm/internal/sampling"
)

// InEdgeSampler draws a random in-neighbor of a node proportionally to the
// in-edge weights, in O(1) per draw, via per-node Walker alias tables laid
// out flat over the in-CSR arrays. It powers the reverse random walks of
// §V and the sketches of §VI: in the reverse graph, the (column-stochastic)
// in-weights of v are exactly the transition probabilities out of v.
type InEdgeSampler struct {
	g     *Graph
	prob  []float64 // aligned with g.inSrc
	alias []int32   // absolute positions into g.inSrc
}

// NewInEdgeSampler builds the sampler. The graph must be column-stochastic
// (every node needs positive total in-weight; normalization guarantees it).
func NewInEdgeSampler(g *Graph) (*InEdgeSampler, error) {
	if !g.IsColumnStochastic() {
		if v := g.CheckColumnStochastic(1e-9); v >= 0 {
			return nil, fmt.Errorf("graph: in-weights of node %d do not sum to 1; normalize first", v)
		}
	}
	s := &InEdgeSampler{
		g:     g,
		prob:  make([]float64, g.M()),
		alias: make([]int32, g.M()),
	}
	// Per-node Vose construction over the node's in-edge slice.
	var small, large []int32
	for v := int32(0); v < int32(g.n); v++ {
		lo, hi := g.inStart[v], g.inStart[v+1]
		deg := int(hi - lo)
		if deg == 0 {
			return nil, fmt.Errorf("graph: node %d has no in-edges; normalize first", v)
		}
		sum := 0.0
		for i := lo; i < hi; i++ {
			sum += g.inW[i]
		}
		if sum <= 0 {
			return nil, fmt.Errorf("graph: node %d has zero in-weight; normalize first", v)
		}
		small, large = small[:0], large[:0]
		for i := lo; i < hi; i++ {
			s.prob[i] = g.inW[i] / sum * float64(deg)
			if s.prob[i] < 1 {
				small = append(small, i)
			} else {
				large = append(large, i)
			}
		}
		for len(small) > 0 && len(large) > 0 {
			sm := small[len(small)-1]
			small = small[:len(small)-1]
			lg := large[len(large)-1]
			large = large[:len(large)-1]
			s.alias[sm] = lg
			s.prob[lg] += s.prob[sm] - 1
			if s.prob[lg] < 1 {
				small = append(small, lg)
			} else {
				large = append(large, lg)
			}
		}
		for _, i := range large {
			s.prob[i] = 1
			s.alias[i] = i
		}
		for _, i := range small {
			s.prob[i] = 1
			s.alias[i] = i
		}
	}
	return s, nil
}

// Sample returns a random in-neighbor of v drawn with probability equal to
// the corresponding in-edge weight (given column-stochastic weights). Any
// sampling.Source works; parallel walk generation passes per-item SplitMix
// substreams, serial callers typically pass a *rand.Rand.
func (s *InEdgeSampler) Sample(v int32, r sampling.Source) int32 {
	lo := s.g.inStart[v]
	deg := s.g.inStart[v+1] - lo
	i := lo + int32(r.Intn(int(deg)))
	if r.Float64() < s.prob[i] {
		return s.g.inSrc[i]
	}
	return s.g.inSrc[s.alias[i]]
}

// Graph returns the underlying graph.
func (s *InEdgeSampler) Graph() *Graph { return s.g }
