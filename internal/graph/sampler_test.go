package graph

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestInEdgeSamplerDistribution(t *testing.T) {
	// Node 2 has in-weights 0.25 (from 0), 0.25 (from 1), 0.5 (self).
	g := figure1(t)
	s, err := NewInEdgeSampler(g)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	counts := map[int32]int{}
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[s.Sample(2, r)]++
	}
	want := map[int32]float64{0: 0.25, 1: 0.25, 2: 0.5}
	for v, p := range want {
		got := float64(counts[v]) / draws
		if math.Abs(got-p) > 0.01 {
			t.Errorf("P(sample=%d) = %v, want %v", v, got, p)
		}
	}
}

func TestInEdgeSamplerSelfLoopNode(t *testing.T) {
	g := figure1(t)
	s, err := NewInEdgeSampler(g)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		if got := s.Sample(0, r); got != 0 {
			t.Fatalf("node 0 has only a self-loop; sampled %d", got)
		}
	}
}

func TestInEdgeSamplerRequiresStochastic(t *testing.T) {
	b := NewBuilder(3)
	_ = b.AddEdge(0, 1, 0.3) // node 1's in-weights sum to 0.3; nodes 0,2 have none
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewInEdgeSampler(g); err == nil {
		t.Error("expected error for non-stochastic graph")
	}
}

func TestInEdgeSamplerRandomGraphs(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		n := 20 + r.Intn(50)
		b := NewBuilder(n)
		for i := 0; i < 6*n; i++ {
			_ = b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)), r.Float64()+0.01)
		}
		g, err := b.BuildColumnStochastic()
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewInEdgeSampler(g)
		if err != nil {
			t.Fatal(err)
		}
		// Spot-check one node's empirical distribution.
		v := int32(r.Intn(n))
		src, w := g.InNeighbors(v)
		counts := make(map[int32]int)
		const draws = 50000
		for i := 0; i < draws; i++ {
			counts[s.Sample(v, r)]++
		}
		probs := map[int32]float64{}
		for i := range src {
			probs[src[i]] += w[i]
		}
		for u, p := range probs {
			got := float64(counts[u]) / draws
			if math.Abs(got-p) > 0.03 {
				t.Errorf("trial %d node %d: P(%d) = %v, want %v", trial, v, u, got, p)
			}
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := figure1(t)
	sub, mapping, err := g.InducedSubgraph([]int32{0, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 {
		t.Fatalf("sub.N = %d, want 3", sub.N())
	}
	if mapping[1] != -1 {
		t.Error("excluded node should map to -1")
	}
	// Edges kept: 0→0 (self-loop from normalization), 0→2 (0.25),
	// 2→2 (0.5), 2→3 (0.5), 3→3 (0.5); dropped: 1→1, 1→2.
	if sub.M() != 5 {
		t.Errorf("sub.M = %d, want 5", sub.M())
	}
	// Relabel check: old 2 → new 1, old 3 → new 2.
	src, w := sub.InNeighbors(mapping[3])
	if len(src) != 2 {
		t.Fatalf("new node for 3 should keep 2 in-edges, got %d", len(src))
	}
	_ = w
}

func TestInducedSubgraphErrors(t *testing.T) {
	g := figure1(t)
	if _, _, err := g.InducedSubgraph([]int32{0, 0}); err == nil {
		t.Error("expected error for duplicate nodes")
	}
	if _, _, err := g.InducedSubgraph([]int32{99}); err == nil {
		t.Error("expected error for out-of-range node")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := figure1(t)
	var sb strings.Builder
	if err := WriteEdgeList(&sb, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round-trip mismatch: N %d/%d M %d/%d", g2.N(), g.N(), g2.M(), g.M())
	}
	for v := int32(0); v < int32(g.N()); v++ {
		s1, w1 := g.InNeighbors(v)
		s2, w2 := g2.InNeighbors(v)
		if len(s1) != len(s2) {
			t.Fatalf("node %d in-degree mismatch", v)
		}
		for i := range s1 {
			if s1[i] != s2[i] || w1[i] != w2[i] {
				t.Fatalf("node %d edge %d: (%d,%v) vs (%d,%v)", v, i, s1[i], w1[i], s2[i], w2[i])
			}
		}
	}
}

func TestReadEdgeListMalformed(t *testing.T) {
	cases := []string{
		"",                        // empty
		"3\n",                     // bad header
		"2 1\n0 1\n",              // short edge line
		"2 1\nx 1 0.5\n",          // bad source
		"2 1\n0 y 0.5\n",          // bad target
		"2 1\n0 1 z\n",            // bad weight
		"2 2\n0 1 0.5\n",          // edge count mismatch
		"2 1\n0 7 0.5\n",          // out of range
		"0 0\n",                   // zero nodes
		"2 1\n0 1 0.5\n1 0 0.5\n", // too many edges
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
}

func TestReadEdgeListComments(t *testing.T) {
	in := "# generated\n2 1\n\n0 1 0.5\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Errorf("M = %d, want 1", g.M())
	}
}

func BenchmarkInEdgeSampler(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	edges, err := PreferentialAttachment(10000, 8, r)
	if err != nil {
		b.Fatal(err)
	}
	g, err := FromEdgesColumnStochastic(10000, edges)
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewInEdgeSampler(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(int32(i%10000), r)
	}
}
