package graph

import "fmt"

// InducedSubgraph returns the subgraph induced by the given node set,
// relabelled to 0..len(nodes)-1 in the order supplied, along with the
// old-id → new-id mapping (-1 for excluded nodes). Edge weights are copied
// verbatim; callers typically re-normalize with ColumnStochastic. Used by
// the scalability experiment (Fig 17), which applies the algorithms to
// node-induced subsamples of the largest dataset.
func (g *Graph) InducedSubgraph(nodes []int32) (*Graph, []int32, error) {
	newID := make([]int32, g.n)
	for i := range newID {
		newID[i] = -1
	}
	for i, v := range nodes {
		if v < 0 || int(v) >= g.n {
			return nil, nil, fmt.Errorf("graph: node %d out of range [0,%d)", v, g.n)
		}
		if newID[v] != -1 {
			return nil, nil, fmt.Errorf("graph: duplicate node %d in induced set", v)
		}
		newID[v] = int32(i)
	}
	b := NewBuilder(len(nodes))
	for _, v := range nodes {
		dst, w := g.OutNeighbors(v)
		for i, u := range dst {
			if newID[u] == -1 {
				continue
			}
			if err := b.AddEdge(newID[v], newID[u], w[i]); err != nil {
				return nil, nil, err
			}
		}
	}
	sub, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return sub, newID, nil
}
