package im

import "ovm/internal/obs"

// RR-set cost accounting: sampling volume (sets drawn, cursor
// advances), coverage work (sets visited during greedy cover), and
// repair churn (sets resampled after a mutation). All counts are
// accumulated locally and flushed with one atomic add per Add /
// GreedyCover / Repair call — the samplers' sharded inner loops are
// untouched.
var (
	rrSetsSampled = obs.NewCounter("ovm_rr_sets_sampled_total",
		"Reverse-reachable sets sampled (initial generation and top-ups)")
	rrDrawAdvances = obs.NewCounter("ovm_rr_draw_advances_total",
		"Advances of the global RR draw cursor (substream indices consumed)")
	rrSetsScanned = obs.NewCounter("ovm_rr_sets_scanned_total",
		"RR sets visited by greedy-cover covering-set scans")
	rrSetsResampled = obs.NewCounter("ovm_rr_sets_resampled_total",
		"RR sets resampled by incremental repairs (members touched a mutated node)")
	rrRepairSetsSeen = obs.NewCounter("ovm_rr_repair_sets_seen_total",
		"RR sets examined by incremental repairs")
)
