package im

import (
	"fmt"
	"math/rand"

	"ovm/internal/graph"
)

// Model selects the diffusion model for simulation and RR-set sampling.
type Model int

const (
	// IC is the Independent Cascade model: an activating node gets one
	// chance to activate each out-neighbor with probability equal to the
	// edge weight.
	IC Model = iota
	// LT is the Linear Threshold model: a node activates when the weight of
	// its activated in-neighbors reaches a uniform random threshold.
	LT
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case IC:
		return "IC"
	case LT:
		return "LT"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Simulate runs one forward diffusion from the seed set and returns the
// number of activated nodes (including seeds).
func Simulate(g *graph.Graph, model Model, seeds []int32, r *rand.Rand) int {
	switch model {
	case IC:
		return simulateIC(g, seeds, r)
	case LT:
		return simulateLT(g, seeds, r)
	default:
		panic(fmt.Sprintf("im: unknown model %d", model))
	}
}

func simulateIC(g *graph.Graph, seeds []int32, r *rand.Rand) int {
	active := make([]bool, g.N())
	queue := make([]int32, 0, len(seeds))
	count := 0
	for _, s := range seeds {
		if !active[s] {
			active[s] = true
			queue = append(queue, s)
			count++
		}
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dst, w := g.OutNeighbors(v)
		for i, u := range dst {
			if active[u] {
				continue
			}
			if r.Float64() < w[i] {
				active[u] = true
				queue = append(queue, u)
				count++
			}
		}
	}
	return count
}

func simulateLT(g *graph.Graph, seeds []int32, r *rand.Rand) int {
	n := g.N()
	active := make([]bool, n)
	threshold := make([]float64, n)
	inWeight := make([]float64, n)
	for v := range threshold {
		threshold[v] = r.Float64()
	}
	queue := make([]int32, 0, len(seeds))
	count := 0
	for _, s := range seeds {
		if !active[s] {
			active[s] = true
			queue = append(queue, s)
			count++
		}
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dst, w := g.OutNeighbors(v)
		for i, u := range dst {
			if active[u] || u == v {
				continue
			}
			inWeight[u] += w[i]
			if inWeight[u] >= threshold[u] {
				active[u] = true
				queue = append(queue, u)
				count++
			}
		}
	}
	return count
}

// ExpectedSpread estimates the expected influence spread (EIS) of a seed
// set by averaging rounds Monte-Carlo simulations.
func ExpectedSpread(g *graph.Graph, model Model, seeds []int32, rounds int, r *rand.Rand) float64 {
	if rounds <= 0 {
		return 0
	}
	total := 0
	for i := 0; i < rounds; i++ {
		total += Simulate(g, model, seeds, r)
	}
	return float64(total) / float64(rounds)
}
