// Package im implements the classic influence-maximization substrate used
// by the paper's baselines (§VIII-A) and by the expected-influence-spread
// study (Fig 11): the Independent Cascade (IC) and Linear Threshold (LT)
// diffusion models of Kempe et al. [9], Monte-Carlo spread estimation,
// reverse-reachable (RR) set sampling, and the IMM algorithm of Tang et
// al. [3] (martingale-based sampling bound plus greedy max-coverage node
// selection).
//
// Edge semantics: influence probabilities are the edge weights of the
// (column-stochastic) influence graph, read along in-edges exactly as in
// the paper's experimental setup, which couples IC/LT with "only the edge
// weights". Self-loops (added by normalization for in-degree-0 nodes) are
// harmless: a node cannot re-activate itself.
package im
