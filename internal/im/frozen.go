package im

import (
	"fmt"

	"ovm/internal/postings"
)

// IndexSnapshot is the portable form of the node → RR-set inverted index,
// in either backing: raw CSR arrays or the compact delta+varint form. The
// v3 index format persists it next to the set storage so a loaded
// collection skips the counting-sort rebuild; with Mapped set, the slices
// alias the read-only file region.
type IndexSnapshot struct {
	Off, Item []int32 // raw backing (nil when Compact is set)

	Compact *postings.Compact // compact backing (nil when raw)

	Mapped bool
}

// IndexSnapshot captures the collection's inverted index, or nil if the
// index is not current (never built, or invalidated by a later Add).
func (c *RRCollection) IndexSnapshot() *IndexSnapshot {
	if c.indexed != c.NumSets() {
		return nil
	}
	return &IndexSnapshot{Off: c.idxOff, Item: c.idxNodes, Compact: c.idxCompact, Mapped: c.idxMapped}
}

// AdoptIndex installs a stored inverted index instead of rebuilding it with
// EnsureIndex. The index is verified exactly equal to what buildIndex would
// produce, by a single merge pass over the set storage: set members are
// distinct within a set and postings ascend by set id, so node v's expected
// postings are precisely the ascending sets containing v — each (set,
// member) pair must match the member's next unconsumed posting, and every
// posting must be consumed. O(members + postings); a corrupted or
// incomplete index is rejected before it can influence GreedyCover.
func (c *RRCollection) AdoptIndex(is *IndexSnapshot) error {
	n := c.g.N()
	numSets := c.NumSets()
	if is.Compact != nil {
		cp := is.Compact
		if len(cp.Off) != n+1 {
			return fmt.Errorf("im: index covers %d nodes, want %d", len(cp.Off)-1, n)
		}
		if cp.HasPos {
			return fmt.Errorf("im: RR index must not carry positions")
		}
		if err := cp.Validate(numSets, 0); err != nil {
			return fmt.Errorf("im: %w", err)
		}
		cursors := make([]postings.Iterator, n)
		for v := 0; v < n; v++ {
			cursors[v] = cp.Iter(int32(v))
		}
		for i := 0; i < numSets; i++ {
			for _, v := range c.Set(i) {
				sid, _, ok := cursors[v].Next()
				if !ok || sid != int32(i) {
					return fmt.Errorf("im: index postings of node %d disagree with set %d", v, i)
				}
			}
		}
		for v := 0; v < n; v++ {
			if _, _, ok := cursors[v].Next(); ok {
				return fmt.Errorf("im: index lists node %d in a set that does not contain it", v)
			}
		}
		c.idxCompact, c.idxMapped = cp, is.Mapped
		c.idxOff, c.idxNodes = nil, nil
		c.indexed = numSets
		return nil
	}
	if len(is.Off) != n+1 || is.Off[0] != 0 {
		return fmt.Errorf("im: index offsets cover %d nodes, want %d", len(is.Off)-1, n)
	}
	for v := 0; v < n; v++ {
		if is.Off[v+1] < is.Off[v] {
			return fmt.Errorf("im: index offsets not monotone at node %d", v)
		}
	}
	if int(is.Off[n]) != len(is.Item) {
		return fmt.Errorf("im: index has %d postings, offsets say %d", len(is.Item), is.Off[n])
	}
	cursor := append([]int32(nil), is.Off[:n]...)
	for i := 0; i < numSets; i++ {
		for _, v := range c.Set(i) {
			p := cursor[v]
			if p >= is.Off[v+1] || is.Item[p] != int32(i) {
				return fmt.Errorf("im: index postings of node %d disagree with set %d", v, i)
			}
			cursor[v] = p + 1
		}
	}
	for v := 0; v < n; v++ {
		if cursor[v] != is.Off[v+1] {
			return fmt.Errorf("im: index lists node %d in a set that does not contain it", v)
		}
	}
	c.idxOff, c.idxNodes = is.Off, is.Item
	c.idxCompact, c.idxMapped = nil, is.Mapped
	c.indexed = numSets
	return nil
}
