package im_test

import (
	"math"
	"math/rand"
	"testing"

	"ovm/internal/graph"
	"ovm/internal/im"
	"ovm/internal/sampling"
)

// star builds a hub with n-1 leaves; hub→leaf edges of probability p, and
// each leaf's in-weights normalized so it sums to 1 (leaf also gets
// (1−p) self-loop weight to stay column-stochastic).
func star(t *testing.T, n int, p float64) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		if err := b.AddEdge(0, int32(v), p); err != nil {
			t.Fatal(err)
		}
		if err := b.AddEdge(int32(v), int32(v), 1-p); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build() // already column-stochastic except hub (no in-edges)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := g.ColumnStochastic()
	if err != nil {
		t.Fatal(err)
	}
	return g2
}

func chain(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for v := 0; v < n-1; v++ {
		if err := b.AddEdge(int32(v), int32(v+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.BuildColumnStochastic()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSimulateICStarExpectation(t *testing.T) {
	// Seeding the hub: E[spread] = 1 + (n−1)·p.
	n, p := 101, 0.3
	g := star(t, n, p)
	r := rand.New(rand.NewSource(1))
	got := im.ExpectedSpread(g, im.IC, []int32{0}, 4000, r)
	want := 1 + float64(n-1)*p
	if math.Abs(got-want) > 2 {
		t.Errorf("IC star spread = %v, want ≈%v", got, want)
	}
}

func TestSimulateICChainDeterministic(t *testing.T) {
	// Weight-1 chain: seeding node 0 activates everyone.
	g := chain(t, 20)
	r := rand.New(rand.NewSource(2))
	if got := im.Simulate(g, im.IC, []int32{0}, r); got != 20 {
		t.Errorf("IC chain spread = %d, want 20", got)
	}
	// Seeding the last node activates only itself.
	if got := im.Simulate(g, im.IC, []int32{19}, r); got != 1 {
		t.Errorf("IC chain tail spread = %d, want 1", got)
	}
}

func TestSimulateLTChainDeterministic(t *testing.T) {
	// Weight-1 chain under LT: every threshold ≤ 1 is met once the
	// predecessor fires, so the whole suffix activates.
	g := chain(t, 15)
	r := rand.New(rand.NewSource(3))
	if got := im.Simulate(g, im.LT, []int32{0}, r); got != 15 {
		t.Errorf("LT chain spread = %d, want 15", got)
	}
}

func TestSimulateDedupsSeeds(t *testing.T) {
	g := chain(t, 5)
	r := rand.New(rand.NewSource(4))
	if got := im.Simulate(g, im.IC, []int32{0, 0, 0}, r); got != 5 {
		t.Errorf("duplicate seeds miscounted: %d", got)
	}
}

func TestExpectedSpreadZeroRounds(t *testing.T) {
	g := chain(t, 5)
	r := rand.New(rand.NewSource(5))
	if got := im.ExpectedSpread(g, im.IC, []int32{0}, 0, r); got != 0 {
		t.Errorf("zero rounds should return 0, got %v", got)
	}
}

func TestRRSetsICChain(t *testing.T) {
	// On the weight-1 chain, an IC RR set from root v is exactly {0..v}.
	g := chain(t, 10)
	col := im.NewRRCollection(g, im.IC, sampling.Stream{Seed: 6, ID: 1}, 2)
	col.Add(200)
	if col.NumSets() != 200 {
		t.Fatalf("NumSets = %d, want 200", col.NumSets())
	}
	for i := 0; i < col.NumSets(); i++ {
		set := col.Set(i)
		root := set[0]
		if len(set) != int(root)+1 {
			t.Fatalf("RR set from root %d has %d members, want %d", root, len(set), root+1)
		}
	}
}

func TestRRSetsLTChain(t *testing.T) {
	// LT RR sets on the chain are also prefixes (single in-neighbor paths).
	g := chain(t, 10)
	col := im.NewRRCollection(g, im.LT, sampling.Stream{Seed: 7, ID: 1}, 2)
	col.Add(200)
	for i := 0; i < col.NumSets(); i++ {
		set := col.Set(i)
		root := set[0]
		if len(set) != int(root)+1 {
			t.Fatalf("LT RR set from root %d = %v", root, set)
		}
	}
}

func TestGreedyCoverPicksHub(t *testing.T) {
	g := star(t, 50, 0.5)
	col := im.NewRRCollection(g, im.IC, sampling.Stream{Seed: 8, ID: 1}, 2)
	col.Add(2000)
	seeds, frac := col.GreedyCover(1)
	if len(seeds) != 1 || seeds[0] != 0 {
		t.Errorf("greedy cover picked %v, want hub [0]", seeds)
	}
	if frac <= 0 || frac > 1 {
		t.Errorf("covered fraction = %v", frac)
	}
}

func TestGreedyCoverEmptyCollection(t *testing.T) {
	g := chain(t, 5)
	col := im.NewRRCollection(g, im.IC, sampling.Stream{Seed: 1, ID: 1}, 1)
	seeds, frac := col.GreedyCover(2)
	if len(seeds) != 2 || frac != 0 {
		t.Errorf("empty collection: seeds=%v frac=%v", seeds, frac)
	}
}

func TestIMMOnStar(t *testing.T) {
	// The hub is the unique optimal seed under both models.
	g := star(t, 80, 0.4)
	for _, model := range []im.Model{im.IC, im.LT} {
		res, err := im.IMM(g, model, 1, im.IMMConfig{Seed: 9, MaxSets: 1 << 16})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Seeds) != 1 || res.Seeds[0] != 0 {
			t.Errorf("%v: IMM picked %v, want hub [0]", model, res.Seeds)
		}
		if res.NumRRSets < 1 {
			t.Errorf("%v: no RR sets generated", model)
		}
		if res.OPTLowerBound < 1 {
			t.Errorf("%v: OPT lower bound %v < 1", model, res.OPTLowerBound)
		}
	}
}

func TestIMMSpreadEstimateAccuracy(t *testing.T) {
	// IMM's spread estimate for its chosen seed should be close to the MC
	// ground truth.
	g := star(t, 60, 0.5)
	res, err := im.IMM(g, im.IC, 1, im.IMMConfig{Seed: 10, MaxSets: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	mc := im.ExpectedSpread(g, im.IC, res.Seeds, 4000, r)
	if math.Abs(res.SpreadEstimate-mc) > 0.25*mc+2 {
		t.Errorf("IMM estimate %v vs MC %v", res.SpreadEstimate, mc)
	}
}

func TestIMMErrors(t *testing.T) {
	g := chain(t, 5)
	if _, err := im.IMM(g, im.IC, 0, im.IMMConfig{}); err == nil {
		t.Error("expected error for k=0")
	}
	if _, err := im.IMM(g, im.IC, 10, im.IMMConfig{}); err == nil {
		t.Error("expected error for k>n")
	}
	if _, err := im.IMM(g, im.IC, 1, im.IMMConfig{Epsilon: 2}); err == nil {
		t.Error("expected error for epsilon >= 1")
	}
	if _, err := im.IMM(g, im.IC, 1, im.IMMConfig{L: -1}); err == nil {
		t.Error("expected error for negative l")
	}
}

func TestModelString(t *testing.T) {
	if im.IC.String() != "IC" || im.LT.String() != "LT" {
		t.Error("model names wrong")
	}
}
