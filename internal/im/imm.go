package im

import (
	"context"
	"fmt"
	"math"

	"ovm/internal/graph"
	"ovm/internal/sampling"
	"ovm/internal/stats"
)

// IMMConfig parameterizes the IMM algorithm of Tang et al. [3].
type IMMConfig struct {
	// Epsilon is the approximation slack (default 0.5, the value the IMM
	// paper itself uses for large graphs; the result is
	// (1−1/e−ε)-approximate with probability 1 − n^{−L}).
	Epsilon float64
	// L sets the failure probability n^{−L} (default 1).
	L float64
	// MaxSets caps the number of RR sets (memory guard; default 1<<22).
	MaxSets int
	// Seed drives sampling.
	Seed int64
	// Parallelism caps the engine worker pool for RR-set generation: 0
	// means GOMAXPROCS, 1 disables concurrency. The sampled sets — and the
	// selected seeds — are bit-identical across Parallelism values.
	Parallelism int
	// Ctx, when set, is polled between sampling/cover phases; a done
	// context abandons the run with ctx.Err(). Only the run's private
	// RRCollection is discarded (the optional cache is read-only here), so
	// a retry is bit-identical.
	Ctx context.Context
}

func (c IMMConfig) ctxErr() error {
	if c.Ctx == nil {
		return nil
	}
	return c.Ctx.Err()
}

func (c IMMConfig) withDefaults() IMMConfig {
	if c.Epsilon == 0 {
		c.Epsilon = 0.5
	}
	if c.L == 0 {
		c.L = 1
	}
	if c.MaxSets == 0 {
		c.MaxSets = 1 << 22
	}
	return c
}

// IMMResult reports the outcome of an IMM run.
type IMMResult struct {
	Seeds          []int32
	SpreadEstimate float64 // n · covered fraction
	NumRRSets      int
	OPTLowerBound  float64
}

// IMM runs the two-phase IMM algorithm: the martingale-based sampling phase
// estimates a lower bound on the optimal spread OPT and derives the
// required RR-set count θ; the node-selection phase greedily covers the
// sampled sets.
func IMM(g *graph.Graph, model Model, k int, cfg IMMConfig) (*IMMResult, error) {
	return IMMCached(g, model, k, cfg, nil)
}

// IMMCached is IMM with an optional precomputed RR-set collection acting as
// a sampling cache: any set index already present in cache is copied
// instead of re-sampled. Because set i's content is a pure function of the
// (seed, stream, i) triple, the run is byte-identical to IMM — the cache
// only shortcuts the sampling cost. cache must have been generated over the
// same graph and model with the stream family IMM uses (seed cfg.Seed,
// stream id 701); a mismatched cache is rejected.
func IMMCached(g *graph.Graph, model Model, k int, cfg IMMConfig, cache *RRCollection) (*IMMResult, error) {
	cfg = cfg.withDefaults()
	n := g.N()
	if k < 1 || k > n {
		return nil, fmt.Errorf("im: need 1 <= k <= n, got k=%d n=%d", k, n)
	}
	if cfg.Epsilon <= 0 || cfg.Epsilon >= 1 {
		return nil, fmt.Errorf("im: epsilon must lie in (0,1), got %v", cfg.Epsilon)
	}
	if cfg.L <= 0 {
		return nil, fmt.Errorf("im: l must be positive, got %v", cfg.L)
	}
	nf := float64(n)
	logN := math.Log(nf)
	logBinom := stats.LogChoose(n, k)

	str := sampling.Stream{Seed: cfg.Seed, ID: 701}
	if cache != nil {
		if cache.g != g || cache.model != model || cache.str != str {
			return nil, fmt.Errorf("im: RR cache generated for a different graph, model, or stream")
		}
	}

	// Phase 1: estimate a lower bound on OPT (Algorithm 2 of [3]).
	epsPrime := math.Sqrt2 * cfg.Epsilon
	lambdaPrime := (2 + 2*epsPrime/3) * (logBinom + cfg.L*logN + math.Log(math.Max(math.Log2(nf), 1))) * nf / (epsPrime * epsPrime)
	col := NewRRCollection(g, model, str, cfg.Parallelism)
	lb := 1.0
	for i := 1; i < int(math.Ceil(math.Log2(nf))); i++ {
		if err := cfg.ctxErr(); err != nil {
			return nil, err
		}
		x := nf / math.Pow(2, float64(i))
		thetaI := int(math.Ceil(lambdaPrime / x))
		if thetaI > cfg.MaxSets {
			thetaI = cfg.MaxSets
		}
		if col.NumSets() < thetaI {
			col.AddCached(thetaI-col.NumSets(), cache)
		}
		_, frac := col.GreedyCover(k)
		if nf*frac >= (1+epsPrime)*x {
			lb = nf * frac / (1 + epsPrime)
			break
		}
		if col.NumSets() >= cfg.MaxSets {
			break
		}
	}

	// Phase 2: θ from the martingale bound, then greedy node selection.
	alpha := math.Sqrt(cfg.L*logN + math.Ln2)
	beta := math.Sqrt((1 - 1/math.E) * (logBinom + cfg.L*logN + math.Ln2))
	lambdaStar := 2 * nf * math.Pow((1-1/math.E)*alpha+beta, 2) / (cfg.Epsilon * cfg.Epsilon)
	theta := int(math.Ceil(lambdaStar / lb))
	if theta > cfg.MaxSets {
		theta = cfg.MaxSets
	}
	if err := cfg.ctxErr(); err != nil {
		return nil, err
	}
	if col.NumSets() < theta {
		col.AddCached(theta-col.NumSets(), cache)
	}
	if err := cfg.ctxErr(); err != nil {
		return nil, err
	}
	seeds, frac := col.GreedyCover(k)
	return &IMMResult{
		Seeds:          seeds,
		SpreadEstimate: nf * frac,
		NumRRSets:      col.NumSets(),
		OPTLowerBound:  lb,
	}, nil
}
