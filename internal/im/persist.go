package im

import (
	"fmt"

	"ovm/internal/graph"
	"ovm/internal/sampling"
)

// Snapshot is the portable state of an RRCollection: the diffusion model
// plus the flat set storage. Because RR set i always consumes the substream
// str.At(i), a snapshot taken after Add(count) on a fresh collection holds
// exactly the sets a new collection with the same stream would generate —
// so a restored snapshot can serve as a sampling cache (see AddCached)
// without disturbing byte-reproducibility.
type Snapshot struct {
	Model Model
	Nodes []int32 // concatenated set members
	Off   []int32 // len numSets+1

	// Mapped marks the slices as aliasing a read-only mapped region (set
	// by the v3 zero-copy loader). Safe because the restored collection
	// caps the slices: growth always reallocates to heap.
	Mapped bool
}

// Snapshot captures the collection's sampled sets. It requires that every
// drawn set is still stored (the collection never truncates, so this always
// holds for collections produced by NewRRCollection + Add).
func (c *RRCollection) Snapshot() (*Snapshot, error) {
	if c.NumSets() != c.drawn {
		return nil, fmt.Errorf("im: collection stores %d sets but drew %d", c.NumSets(), c.drawn)
	}
	return &Snapshot{Model: c.model, Nodes: c.nodes, Off: c.off, Mapped: c.storageMapped}, nil
}

// FromSnapshot reconstructs a collection over g with the draw cursor
// positioned after the stored sets, so a subsequent Add(k) generates set
// indices NumSets()..NumSets()+k-1 — exactly what a fresh collection that
// had drawn the same prefix would do. str and parallelism follow the
// NewRRCollection conventions and must match the generation-time values for
// the determinism guarantee to hold.
func FromSnapshot(g *graph.Graph, s *Snapshot, str sampling.Stream, parallelism int) (*RRCollection, error) {
	n := g.N()
	if s.Model != IC && s.Model != LT {
		return nil, fmt.Errorf("im: snapshot has unknown model %d", s.Model)
	}
	if len(s.Off) == 0 || s.Off[0] != 0 {
		return nil, fmt.Errorf("im: snapshot set offsets must start at 0")
	}
	numSets := len(s.Off) - 1
	for i := 0; i < numSets; i++ {
		if s.Off[i+1] < s.Off[i] {
			return nil, fmt.Errorf("im: snapshot set offsets not monotone at %d", i)
		}
	}
	if int(s.Off[numSets]) != len(s.Nodes) {
		return nil, fmt.Errorf("im: snapshot stores %d members but offsets cover %d", len(s.Nodes), s.Off[numSets])
	}
	for i, v := range s.Nodes {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("im: snapshot member %d references node %d, want [0,%d)", i, v, n)
		}
	}
	c := NewRRCollection(g, s.Model, str, parallelism)
	// Cap the adopted slices so a later Add cannot write into snapshot
	// backing storage shared with other collections (or a mapped region).
	c.nodes = s.Nodes[:len(s.Nodes):len(s.Nodes)]
	c.off = s.Off[:len(s.Off):len(s.Off)]
	c.drawn = numSets
	c.storageMapped = s.Mapped
	return c, nil
}

// Model returns the diffusion model the collection samples.
func (c *RRCollection) Model() Model { return c.model }

// BytesUsed approximates the RR-set storage footprint.
func (c *RRCollection) BytesUsed() int64 { return c.MappedBytes() + c.HeapBytes() }

func (c *RRCollection) setBytes() int64 { return int64(len(c.nodes))*4 + int64(len(c.off))*4 }

func (c *RRCollection) indexBytes() int64 {
	if c.idxCompact != nil {
		return c.idxCompact.Bytes()
	}
	return int64(len(c.idxNodes))*4 + int64(len(c.idxOff))*4
}

// MappedBytes reports how much of the footprint aliases a read-only
// mapped region (0 for a heap-backed collection).
func (c *RRCollection) MappedBytes() int64 {
	b := int64(0)
	if c.storageMapped {
		b += c.setBytes()
	}
	if c.idxMapped {
		b += c.indexBytes()
	}
	return b
}

// HeapBytes reports the heap-resident remainder of the footprint.
func (c *RRCollection) HeapBytes() int64 {
	b := int64(0)
	if !c.storageMapped {
		b += c.setBytes()
	}
	if !c.idxMapped {
		b += c.indexBytes()
	}
	return b
}

// EnsureIndex builds the node → set inverted index now. Call it once after
// loading (or generating) a collection that will serve concurrent read-only
// GreedyCover calls: with the index prebuilt and no further Add, GreedyCover
// touches only immutable state.
func (c *RRCollection) EnsureIndex() { c.buildIndex() }

// AddCached generates count new RR sets like Add, but copies any set whose
// global index is already present in cache instead of re-sampling it. Since
// set i's content is a pure function of (stream, i), copying is
// indistinguishable from sampling — the collection ends up byte-identical
// to one built by Add alone — while skipping the sampling cost for the
// cached prefix. cache must have been generated over the same graph, model,
// and stream family; the caller is responsible for that correspondence
// (ovmd keys cached collections by those parameters).
func (c *RRCollection) AddCached(count int, cache *RRCollection) {
	if count <= 0 {
		return
	}
	if cache == nil || c.drawn >= cache.NumSets() {
		c.Add(count)
		return
	}
	avail := cache.NumSets() - c.drawn
	take := count
	if take > avail {
		take = avail
	}
	lo, hi := cache.off[c.drawn], cache.off[c.drawn+take]
	c.nodes = append(c.nodes, cache.nodes[lo:hi]...)
	for i := 0; i < take; i++ {
		l := cache.off[c.drawn+i+1] - cache.off[c.drawn+i]
		c.off = append(c.off, c.off[len(c.off)-1]+l)
	}
	c.drawn += take
	c.indexed = 0
	if count > take {
		c.Add(count - take)
	}
}
