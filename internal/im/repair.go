package im

import (
	"context"
	"fmt"

	"ovm/internal/engine"
	"ovm/internal/graph"
	"ovm/internal/obs"
)

// RRRepairStats reports how much of an RR collection an incremental repair
// had to resample.
type RRRepairStats struct {
	Sets            int
	SetsInvalidated int
}

// Repair incrementally rebuilds the collection over a mutated graph,
// producing exactly the collection a from-scratch NewRRCollection + Add on
// the mutated graph would hold — byte-identical — while only resampling the
// sets that could have diverged.
//
// touched marks the nodes whose in-neighborhoods (sources or weights)
// changed. RR sampling reads the in-edge lists of the set's member nodes
// only (every processed node is a member), so a set whose members are all
// untouched replays identical random draws on the mutated graph; it is
// copied verbatim. Every other set i is resampled from its original
// substream str.At(i). The draw cursor and stream carry over, so subsequent
// Add calls continue the same global index sequence.
func (c *RRCollection) Repair(g *graph.Graph, touched []bool) (*RRCollection, RRRepairStats, error) {
	return c.RepairCtx(nil, g, touched)
}

// RepairCtx is Repair with cooperative cancellation at shard boundaries
// (nil ctx never cancels), for the async update pipeline's background
// applier.
func (c *RRCollection) RepairCtx(ctx context.Context, g *graph.Graph, touched []bool) (*RRCollection, RRRepairStats, error) {
	var stats RRRepairStats
	if c.NumSets() != c.drawn {
		return nil, stats, fmt.Errorf("im: collection stores %d sets but drew %d", c.NumSets(), c.drawn)
	}
	n := g.N()
	if c.g.N() != n {
		return nil, stats, fmt.Errorf("im: repair graph has %d nodes, collection was sampled over %d", n, c.g.N())
	}
	if len(touched) != n {
		return nil, stats, fmt.Errorf("im: touched mask has %d entries, want %d", len(touched), n)
	}
	numSets := c.drawn
	stats.Sets = numSets

	invalid := make([]bool, numSets)
	scanErr := engine.ForEachChunkCtx(ctx, c.parallelism, numSets, 64, 256, func(_, _, lo, hi int) error {
		for i := lo; i < hi; i++ {
			for p := c.off[i]; p < c.off[i+1] && !invalid[i]; p++ {
				if touched[c.nodes[p]] {
					invalid[i] = true
				}
			}
		}
		return nil
	})
	if scanErr != nil {
		return nil, stats, scanErr
	}
	for _, bad := range invalid {
		if bad {
			stats.SetsInvalidated++
		}
	}
	if obs.CostEnabled() {
		rrRepairSetsSeen.Add(int64(stats.Sets))
		rrSetsResampled.Add(int64(stats.SetsInvalidated))
	}

	nc := NewRRCollection(g, c.model, c.str, c.parallelism)
	if w := engine.Workers(c.parallelism); len(nc.scratchVisited) < w {
		nc.scratchVisited = make([][]bool, w)
		nc.scratchQueue = make([][]int32, w)
	}
	numShards := engine.NumShards(numSets, 64, 256)
	shards, err := engine.MapCtx(ctx, c.parallelism, numShards, func(worker, sh int) (rrShard, error) {
		lo, hi := engine.ShardRange(numSets, numShards, sh)
		out := rrShard{lens: make([]int32, 0, hi-lo)}
		if nc.scratchVisited[worker] == nil {
			nc.scratchVisited[worker] = make([]bool, n)
		}
		visited := nc.scratchVisited[worker]
		queue := nc.scratchQueue[worker]
		for i := lo; i < hi; i++ {
			if !invalid[i] {
				out.nodes = append(out.nodes, c.nodes[c.off[i]:c.off[i+1]]...)
				out.lens = append(out.lens, c.off[i+1]-c.off[i])
				continue
			}
			rng := c.str.At(uint64(i))
			root := int32(rng.Intn(n))
			start := len(out.nodes)
			switch c.model {
			case IC:
				out.nodes, queue = sampleIC(g, root, rng, out.nodes, visited, queue)
			case LT:
				out.nodes = sampleLT(g, root, rng, out.nodes, visited)
			}
			out.lens = append(out.lens, int32(len(out.nodes)-start))
		}
		nc.scratchQueue[worker] = queue
		return out, nil
	})
	if err != nil {
		return nil, stats, err
	}
	for _, sh := range shards {
		for _, l := range sh.lens {
			nc.off = append(nc.off, nc.off[len(nc.off)-1]+l)
		}
		nc.nodes = append(nc.nodes, sh.nodes...)
	}
	nc.drawn = numSets
	return nc, stats, nil
}
