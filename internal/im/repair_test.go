package im_test

import (
	"math/rand"
	"reflect"
	"testing"

	"ovm/internal/graph"
	"ovm/internal/im"
	"ovm/internal/sampling"
)

func TestRRRepairMatchesFullResample(t *testing.T) {
	const n, count = 150, 2000
	r := rand.New(rand.NewSource(4))
	edges, err := graph.Gnp(n, 5.0/float64(n), r)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdgesColumnStochastic(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	ng, changed, err := g.ApplyDeltas([]graph.Delta{
		{Op: graph.DeltaAdd, From: 2, To: 40, W: 1},
		{Op: graph.DeltaSet, From: 40, To: 3, W: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	touched := make([]bool, n)
	for _, v := range changed {
		touched[v] = true
	}
	for _, model := range []im.Model{im.IC, im.LT} {
		str := sampling.Stream{Seed: 3, ID: 701}
		c := im.NewRRCollection(g, model, str, 0)
		c.Add(count)
		repaired, stats, err := c.Repair(ng, touched)
		if err != nil {
			t.Fatal(err)
		}
		fresh := im.NewRRCollection(ng, model, str, 0)
		fresh.Add(count)
		rs, err := repaired.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		fs, err := fresh.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rs, fs) {
			t.Fatalf("model %v: repaired collection differs from full resample", model)
		}
		if stats.SetsInvalidated == 0 || stats.SetsInvalidated == stats.Sets {
			t.Fatalf("model %v: expected partial invalidation, got %d of %d sets", model, stats.SetsInvalidated, stats.Sets)
		}
		// The draw cursor carries over: continuing to Add after a repair
		// must equal continuing after a full resample.
		repaired.Add(100)
		fresh.Add(100)
		rs, err = repaired.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		fs, err = fresh.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rs, fs) {
			t.Fatalf("model %v: post-repair Add diverged from post-resample Add", model)
		}
	}
}

func TestRRRepairRejectsMismatchedMask(t *testing.T) {
	g, err := graph.FromEdgesColumnStochastic(3, []graph.Edge{{From: 0, To: 1, W: 1}, {From: 1, To: 0, W: 1}, {From: 2, To: 2, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	c := im.NewRRCollection(g, im.IC, sampling.Stream{Seed: 1, ID: 701}, 1)
	c.Add(10)
	if _, _, err := c.Repair(g, make([]bool, 2)); err == nil {
		t.Fatal("short touched mask must fail")
	}
}
