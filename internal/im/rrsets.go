package im

import (
	"ovm/internal/engine"
	"ovm/internal/graph"
	"ovm/internal/obs"
	"ovm/internal/postings"
	"ovm/internal/sampling"
)

// RRCollection accumulates reverse-reachable sets in flat storage together
// with the node → set inverted index needed by greedy coverage.
//
// Generation is sharded over the engine worker pool: RR set number i (a
// global, monotonically increasing index across Add calls) always consumes
// its own random substream str.At(i), so the collection's contents are
// bit-identical for every parallelism value and independent of how Add
// batches interleave with worker scheduling.
type RRCollection struct {
	g           *graph.Graph
	model       Model
	str         sampling.Stream
	parallelism int
	drawn       int // total sets generated so far (the global index cursor)

	nodes []int32 // concatenated set members
	off   []int32 // len numSets+1

	// storageMapped records that nodes/off alias a read-only mapped region.
	// Add and AddCached stay safe because the adopted slices are
	// capacity-capped: append always reallocates to heap.
	storageMapped bool

	// Inverted index, rebuilt lazily by buildIndex — either raw CSR arrays
	// or an adopted compact (delta+varint) backing; both enumerate a node's
	// covering sets in ascending set order.
	idxNodes   []int32 // concatenated set ids per node
	idxOff     []int32 // len n+1
	idxCompact *postings.Compact
	idxMapped  bool // index backing aliases a read-only mapped region
	indexed    int  // number of sets included in the index

	// Per-worker sampling scratch, reused across Add calls.
	scratchVisited [][]bool
	scratchQueue   [][]int32
}

// NewRRCollection prepares an empty collection for the given graph/model.
// str seeds the per-set substream family; parallelism follows the engine
// convention (0 = GOMAXPROCS, 1 = serial).
func NewRRCollection(g *graph.Graph, model Model, str sampling.Stream, parallelism int) *RRCollection {
	return &RRCollection{
		g:           g,
		model:       model,
		str:         str,
		parallelism: parallelism,
		off:         []int32{0},
	}
}

// NumSets returns the number of RR sets generated so far.
func (c *RRCollection) NumSets() int { return len(c.off) - 1 }

// Set returns the members of set i (aliases internal storage).
func (c *RRCollection) Set(i int) []int32 { return c.nodes[c.off[i]:c.off[i+1]] }

// rrShard is one shard's locally-buffered output: concatenated members plus
// per-set lengths, in set-index order.
type rrShard struct {
	nodes []int32
	lens  []int32
}

// Add generates count new RR sets from uniformly random roots, sharded over
// the worker pool and merged in set-index order.
func (c *RRCollection) Add(count int) {
	if count <= 0 {
		return
	}
	n := c.g.N()
	base := c.drawn
	if w := engine.Workers(c.parallelism); len(c.scratchVisited) < w {
		c.scratchVisited = make([][]bool, w)
		c.scratchQueue = make([][]int32, w)
	}
	numShards := engine.NumShards(count, 64, 256)
	shards, _ := engine.Map(c.parallelism, numShards, func(worker, sh int) (rrShard, error) {
		lo, hi := engine.ShardRange(count, numShards, sh)
		out := rrShard{lens: make([]int32, 0, hi-lo)}
		if c.scratchVisited[worker] == nil {
			c.scratchVisited[worker] = make([]bool, n)
		}
		visited := c.scratchVisited[worker]
		queue := c.scratchQueue[worker]
		for i := lo; i < hi; i++ {
			rng := c.str.At(uint64(base + i))
			root := int32(rng.Intn(n))
			start := len(out.nodes)
			switch c.model {
			case IC:
				out.nodes, queue = sampleIC(c.g, root, rng, out.nodes, visited, queue)
			case LT:
				out.nodes = sampleLT(c.g, root, rng, out.nodes, visited)
			}
			out.lens = append(out.lens, int32(len(out.nodes)-start))
		}
		c.scratchQueue[worker] = queue
		return out, nil
	})
	for _, sh := range shards {
		for _, l := range sh.lens {
			c.off = append(c.off, c.off[len(c.off)-1]+l)
		}
		c.nodes = append(c.nodes, sh.nodes...)
	}
	c.drawn += count
	c.indexed = 0 // invalidate index
	if obs.CostEnabled() {
		rrSetsSampled.Add(int64(count))
		rrDrawAdvances.Add(int64(count))
	}
}

// sampleIC performs a reverse randomized BFS: each in-edge is live with
// probability equal to its weight. Members are appended to nodes; visited
// must be all-false on entry and is restored before returning.
func sampleIC(g *graph.Graph, root int32, rng sampling.Source, nodes []int32, visited []bool, queue []int32) ([]int32, []int32) {
	q := queue[:0]
	q = append(q, root)
	visited[root] = true
	start := len(nodes)
	nodes = append(nodes, root)
	for head := 0; head < len(q); head++ {
		v := q[head]
		src, w := g.InNeighbors(v)
		for i, u := range src {
			if visited[u] {
				continue
			}
			if rng.Float64() < w[i] {
				visited[u] = true
				q = append(q, u)
				nodes = append(nodes, u)
			}
		}
	}
	for _, v := range nodes[start:] {
		visited[v] = false
	}
	return nodes, q[:0]
}

// sampleLT samples the live-edge path of the LT model: each node picks
// exactly one in-neighbor with probability equal to the edge weight
// (in-weights sum to 1 on a column-stochastic graph); the walk stops when
// it revisits a node.
func sampleLT(g *graph.Graph, root int32, rng sampling.Source, nodes []int32, visited []bool) []int32 {
	start := len(nodes)
	cur := root
	visited[root] = true
	nodes = append(nodes, root)
	for {
		src, w := g.InNeighbors(cur)
		if len(src) == 0 {
			break
		}
		x := rng.Float64()
		next := int32(-1)
		acc := 0.0
		for i, u := range src {
			acc += w[i]
			if x < acc {
				next = u
				break
			}
		}
		if next < 0 { // residual probability mass: no live in-edge
			break
		}
		if visited[next] {
			break
		}
		visited[next] = true
		nodes = append(nodes, next)
		cur = next
	}
	for _, v := range nodes[start:] {
		visited[v] = false
	}
	return nodes
}

func (c *RRCollection) buildIndex() {
	if c.indexed == c.NumSets() {
		return
	}
	// RR-set members are already distinct within a set (the samplers dedup
	// via the visited mask), so no first-occurrence pass is needed.
	csr := postings.Build(c.g.N(), c.off, c.nodes, false)
	c.idxOff = csr.Off
	c.idxNodes = csr.Item
	c.idxCompact, c.idxMapped = nil, false
	c.indexed = c.NumSets()
}

// forEachCoveringSet visits the RR sets containing v in ascending set
// order, whichever index backing is installed.
func (c *RRCollection) forEachCoveringSet(v int32, fn func(sid int32)) {
	if c.idxCompact != nil {
		it := c.idxCompact.Iter(v)
		for {
			sid, _, ok := it.Next()
			if !ok {
				return
			}
			fn(sid)
		}
	}
	for _, sid := range c.idxNodes[c.idxOff[v]:c.idxOff[v+1]] {
		fn(sid)
	}
}

// GreedyCover selects k nodes greedily maximizing the number of covered RR
// sets; it returns the seeds and the covered fraction of sets.
func (c *RRCollection) GreedyCover(k int) ([]int32, float64) {
	c.buildIndex()
	n := c.g.N()
	numSets := c.NumSets()
	if numSets == 0 {
		seeds := make([]int32, 0, k)
		for v := int32(0); len(seeds) < k && v < int32(n); v++ {
			seeds = append(seeds, v)
		}
		return seeds, 0
	}
	degree := make([]int32, n)
	for v := 0; v < n; v++ {
		if c.idxCompact != nil {
			degree[v] = c.idxCompact.Count(int32(v))
		} else {
			degree[v] = c.idxOff[v+1] - c.idxOff[v]
		}
	}
	coveredSet := make([]bool, numSets)
	seeds := make([]int32, 0, k)
	coveredCount := 0
	// Coverage work is accumulated locally across picks (this loop is
	// serial) and flushed to the counters once at the end.
	var scanned, entries, blocks int64
	for len(seeds) < k {
		best, bestDeg := int32(-1), int32(-1)
		for v := int32(0); v < int32(n); v++ {
			if degree[v] > bestDeg {
				best, bestDeg = v, degree[v]
			}
		}
		if best < 0 {
			break
		}
		seeds = append(seeds, best)
		degree[best] = -1 // never re-pick
		if c.idxCompact != nil {
			entries += int64(c.idxCompact.Count(best))
			blocks += int64(c.idxCompact.Blocks(best))
		} else {
			entries += int64(c.idxOff[best+1] - c.idxOff[best])
		}
		c.forEachCoveringSet(best, func(sid int32) {
			scanned++
			if coveredSet[sid] {
				return
			}
			coveredSet[sid] = true
			coveredCount++
			for _, u := range c.Set(int(sid)) {
				if degree[u] > 0 {
					degree[u]--
				}
			}
		})
	}
	if obs.CostEnabled() {
		rrSetsScanned.Add(scanned)
		postings.Account(entries, blocks)
	}
	return seeds, float64(coveredCount) / float64(numSets)
}
