package im

import (
	"math/rand"

	"ovm/internal/graph"
)

// RRCollection accumulates reverse-reachable sets in flat storage together
// with the node → set inverted index needed by greedy coverage.
type RRCollection struct {
	g     *graph.Graph
	model Model

	nodes []int32 // concatenated set members
	off   []int32 // len numSets+1

	// Inverted index, rebuilt lazily by buildIndex.
	idxNodes []int32 // concatenated set ids per node
	idxOff   []int32 // len n+1
	indexed  int     // number of sets included in the index

	scratchVisited []bool
	scratchQueue   []int32
}

// NewRRCollection prepares an empty collection for the given graph/model.
func NewRRCollection(g *graph.Graph, model Model) *RRCollection {
	return &RRCollection{
		g:              g,
		model:          model,
		off:            []int32{0},
		scratchVisited: make([]bool, g.N()),
	}
}

// NumSets returns the number of RR sets generated so far.
func (c *RRCollection) NumSets() int { return len(c.off) - 1 }

// Set returns the members of set i (aliases internal storage).
func (c *RRCollection) Set(i int) []int32 { return c.nodes[c.off[i]:c.off[i+1]] }

// Add generates count new RR sets from uniformly random roots.
func (c *RRCollection) Add(count int, r *rand.Rand) {
	for i := 0; i < count; i++ {
		root := int32(r.Intn(c.g.N()))
		switch c.model {
		case IC:
			c.sampleIC(root, r)
		case LT:
			c.sampleLT(root, r)
		}
	}
	c.indexed = 0 // invalidate index
}

// sampleIC performs a reverse randomized BFS: each in-edge is live with
// probability equal to its weight.
func (c *RRCollection) sampleIC(root int32, r *rand.Rand) {
	q := c.scratchQueue[:0]
	q = append(q, root)
	c.scratchVisited[root] = true
	start := len(c.nodes)
	c.nodes = append(c.nodes, root)
	for head := 0; head < len(q); head++ {
		v := q[head]
		src, w := c.g.InNeighbors(v)
		for i, u := range src {
			if c.scratchVisited[u] {
				continue
			}
			if r.Float64() < w[i] {
				c.scratchVisited[u] = true
				q = append(q, u)
				c.nodes = append(c.nodes, u)
			}
		}
	}
	for _, v := range c.nodes[start:] {
		c.scratchVisited[v] = false
	}
	c.scratchQueue = q[:0]
	c.off = append(c.off, int32(len(c.nodes)))
}

// sampleLT samples the live-edge path of the LT model: each node picks
// exactly one in-neighbor with probability equal to the edge weight
// (in-weights sum to 1 on a column-stochastic graph); the walk stops when
// it revisits a node.
func (c *RRCollection) sampleLT(root int32, r *rand.Rand) {
	start := len(c.nodes)
	cur := root
	c.scratchVisited[root] = true
	c.nodes = append(c.nodes, root)
	for {
		src, w := c.g.InNeighbors(cur)
		if len(src) == 0 {
			break
		}
		x := r.Float64()
		next := int32(-1)
		acc := 0.0
		for i, u := range src {
			acc += w[i]
			if x < acc {
				next = u
				break
			}
		}
		if next < 0 { // residual probability mass: no live in-edge
			break
		}
		if c.scratchVisited[next] {
			break
		}
		c.scratchVisited[next] = true
		c.nodes = append(c.nodes, next)
		cur = next
	}
	for _, v := range c.nodes[start:] {
		c.scratchVisited[v] = false
	}
	c.off = append(c.off, int32(len(c.nodes)))
}

func (c *RRCollection) buildIndex() {
	if c.indexed == c.NumSets() {
		return
	}
	n := c.g.N()
	counts := make([]int32, n+1)
	for _, v := range c.nodes {
		counts[v+1]++
	}
	for v := 0; v < n; v++ {
		counts[v+1] += counts[v]
	}
	c.idxOff = counts
	c.idxNodes = make([]int32, len(c.nodes))
	cursor := make([]int32, n)
	copy(cursor, c.idxOff[:n])
	for s := 0; s < c.NumSets(); s++ {
		for i := c.off[s]; i < c.off[s+1]; i++ {
			v := c.nodes[i]
			c.idxNodes[cursor[v]] = int32(s)
			cursor[v]++
		}
	}
	c.indexed = c.NumSets()
}

// GreedyCover selects k nodes greedily maximizing the number of covered RR
// sets; it returns the seeds and the covered fraction of sets.
func (c *RRCollection) GreedyCover(k int) ([]int32, float64) {
	c.buildIndex()
	n := c.g.N()
	numSets := c.NumSets()
	if numSets == 0 {
		seeds := make([]int32, 0, k)
		for v := int32(0); len(seeds) < k && v < int32(n); v++ {
			seeds = append(seeds, v)
		}
		return seeds, 0
	}
	degree := make([]int32, n)
	for v := 0; v < n; v++ {
		degree[v] = c.idxOff[v+1] - c.idxOff[v]
	}
	coveredSet := make([]bool, numSets)
	seeds := make([]int32, 0, k)
	coveredCount := 0
	for len(seeds) < k {
		best, bestDeg := int32(-1), int32(-1)
		for v := int32(0); v < int32(n); v++ {
			if degree[v] > bestDeg {
				best, bestDeg = v, degree[v]
			}
		}
		if best < 0 {
			break
		}
		seeds = append(seeds, best)
		degree[best] = -1 // never re-pick
		for _, sid := range c.idxNodes[c.idxOff[best]:c.idxOff[best+1]] {
			if coveredSet[sid] {
				continue
			}
			coveredSet[sid] = true
			coveredCount++
			for _, u := range c.Set(int(sid)) {
				if degree[u] > 0 {
					degree[u]--
				}
			}
		}
	}
	return seeds, float64(coveredCount) / float64(numSets)
}
