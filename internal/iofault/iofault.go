// Package iofault wraps the persist path's file operations behind a small
// filesystem interface with scriptable fault injection. Production code runs
// on the passthrough OS implementation; torture tests swap in a Faulty
// wrapper that can fail, tear, or "crash" (panic) at any single operation —
// identified by (operation kind, occurrence index) — while recording the
// full operation trace so a sweep can enumerate every injection point.
//
// Fault actions:
//
//   - error: the operation returns a synthetic error without side effects
//     beyond what already happened (a torn write persists its prefix);
//   - torn write: half the buffer reaches the file, then the write errors —
//     the short-write shape a full disk or a signal can produce;
//   - crash: the operation panics with a *Crash value after (for writes)
//     persisting the torn prefix, simulating the process dying at exactly
//     that point; the test recovers the panic and "restarts".
//
// Injection counts are exported as ovm_iofault_* counters on the shared obs
// registry, so a torture run's /metrics (or test assertions) can confirm the
// faults actually fired.
package iofault

import (
	"fmt"
	"io/fs"
	"os"
	"sync"

	"ovm/internal/obs"
)

// Op identifies one kind of file operation on the persist path.
type Op string

// The persist path's operation kinds, in the order writeIndexAtomic uses
// them. OpRemove covers the temp-file cleanup on error paths.
const (
	OpCreateTemp Op = "create-temp"
	OpWrite      Op = "write"
	OpChmod      Op = "chmod"
	OpSync       Op = "sync"
	OpClose      Op = "close"
	OpRename     Op = "rename"
	OpRemove     Op = "remove"
	OpSyncDir    Op = "sync-dir"
)

// Ops lists every injectable operation kind.
var Ops = []Op{OpCreateTemp, OpWrite, OpChmod, OpSync, OpClose, OpRename, OpRemove, OpSyncDir}

// Action selects what an injected fault does.
type Action int

const (
	// ActError makes the operation return ErrInjected.
	ActError Action = iota
	// ActTornWrite applies only to OpWrite: half the buffer is written
	// through, then ErrInjected is returned. On other ops it behaves like
	// ActError.
	ActTornWrite
	// ActCrash panics with a *Crash after the torn prefix (for writes),
	// simulating the process dying mid-operation.
	ActCrash
)

func (a Action) String() string {
	switch a {
	case ActError:
		return "error"
	case ActTornWrite:
		return "torn-write"
	case ActCrash:
		return "crash"
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// ErrInjected is the error returned by injected ActError/ActTornWrite
// faults.
var ErrInjected = fmt.Errorf("iofault: injected fault")

// Crash is the panic payload of an ActCrash fault. Tests recover it to
// simulate a restart; any other panic value is a real bug and must not be
// swallowed.
type Crash struct {
	Op         Op
	Occurrence int
}

func (c *Crash) String() string {
	return fmt.Sprintf("iofault: simulated crash at %s #%d", c.Op, c.Occurrence)
}

var (
	faultsInjected = obs.NewCounter("ovm_iofault_injected_total",
		"Faults injected by the iofault layer (errors and torn writes)")
	faultsCrashed = obs.NewCounter("ovm_iofault_crashes_total",
		"Simulated crash points triggered by the iofault layer")
)

// File is the subset of *os.File the persist path needs.
type File interface {
	Write(p []byte) (int, error)
	Chmod(mode fs.FileMode) error
	Sync() error
	Close() error
	Name() string
}

// FS abstracts the filesystem operations of the atomic-rewrite sequence.
type FS interface {
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Stat(name string) (fs.FileInfo, error)
	// SyncDir opens the directory and fsyncs it, making a prior rename in
	// it durable. Failure is reported but the rename itself has happened.
	SyncDir(dir string) error
}

// OS is the passthrough production implementation.
var OS FS = osFS{}

type osFS struct{}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}
func (osFS) Rename(oldpath, newpath string) error  { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error              { return os.Remove(name) }
func (osFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// Point is one executed operation in a Faulty trace: the Occurrence-th time
// Op ran since the last Reset.
type Point struct {
	Op         Op
	Occurrence int
}

// Faulty wraps an FS with scripted fault injection and operation tracing.
// It is safe for concurrent use; occurrence counting is per Op kind.
type Faulty struct {
	inner FS

	mu     sync.Mutex
	counts map[Op]int
	script map[Point]Action
	trace  []Point
}

// NewFaulty wraps inner (usually OS) with an empty script: every operation
// passes through, but the trace records each one so a recording pass can
// enumerate the injection points.
func NewFaulty(inner FS) *Faulty {
	return &Faulty{
		inner:  inner,
		counts: make(map[Op]int),
		script: make(map[Point]Action),
	}
}

// Inject schedules action at the occurrence-th execution (0-based, counted
// from the last Reset) of op.
func (f *Faulty) Inject(op Op, occurrence int, action Action) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.script[Point{Op: op, Occurrence: occurrence}] = action
}

// Reset clears the occurrence counters, the script, and the trace.
func (f *Faulty) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counts = make(map[Op]int)
	f.script = make(map[Point]Action)
	f.trace = nil
}

// Trace returns the operations executed since the last Reset, in order.
func (f *Faulty) Trace() []Point {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Point, len(f.trace))
	copy(out, f.trace)
	return out
}

// step records one execution of op and returns the scheduled action for
// this occurrence (ok=false when none).
func (f *Faulty) step(op Op) (Point, Action, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p := Point{Op: op, Occurrence: f.counts[op]}
	f.counts[op]++
	f.trace = append(f.trace, p)
	act, ok := f.script[p]
	return p, act, ok
}

// fire executes the non-write action for a triggered fault: error return or
// crash panic.
func fire(p Point, act Action) error {
	if act == ActCrash {
		faultsCrashed.Inc()
		panic(&Crash{Op: p.Op, Occurrence: p.Occurrence})
	}
	faultsInjected.Inc()
	return fmt.Errorf("%w: %s #%d", ErrInjected, p.Op, p.Occurrence)
}

func (f *Faulty) CreateTemp(dir, pattern string) (File, error) {
	if p, act, ok := f.step(OpCreateTemp); ok {
		return nil, fire(p, act)
	}
	inner, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultyFile{fs: f, inner: inner}, nil
}

func (f *Faulty) Rename(oldpath, newpath string) error {
	if p, act, ok := f.step(OpRename); ok {
		return fire(p, act)
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *Faulty) Remove(name string) error {
	if p, act, ok := f.step(OpRemove); ok {
		return fire(p, act)
	}
	return f.inner.Remove(name)
}

func (f *Faulty) Stat(name string) (fs.FileInfo, error) {
	// Stat is read-only and never a durability hazard: not an injection
	// point, not traced.
	return f.inner.Stat(name)
}

func (f *Faulty) SyncDir(dir string) error {
	if p, act, ok := f.step(OpSyncDir); ok {
		return fire(p, act)
	}
	return f.inner.SyncDir(dir)
}

// faultyFile intercepts the per-file operations of a file created through a
// Faulty FS.
type faultyFile struct {
	fs    *Faulty
	inner File
}

func (ff *faultyFile) Name() string { return ff.inner.Name() }

func (ff *faultyFile) Write(b []byte) (int, error) {
	if p, act, ok := ff.fs.step(OpWrite); ok {
		// Torn write: persist a prefix so the on-disk temp is mid-write
		// garbage — exactly what a crashing writer leaves behind.
		n := 0
		if act == ActTornWrite || act == ActCrash {
			n, _ = ff.inner.Write(b[:len(b)/2])
		}
		if act == ActCrash {
			faultsCrashed.Inc()
			panic(&Crash{Op: p.Op, Occurrence: p.Occurrence})
		}
		faultsInjected.Inc()
		return n, fmt.Errorf("%w: %s #%d", ErrInjected, p.Op, p.Occurrence)
	}
	return ff.inner.Write(b)
}

func (ff *faultyFile) Chmod(mode fs.FileMode) error {
	if p, act, ok := ff.fs.step(OpChmod); ok {
		return fire(p, act)
	}
	return ff.inner.Chmod(mode)
}

func (ff *faultyFile) Sync() error {
	if p, act, ok := ff.fs.step(OpSync); ok {
		return fire(p, act)
	}
	return ff.inner.Sync()
}

func (ff *faultyFile) Close() error {
	if p, act, ok := ff.fs.step(OpClose); ok {
		return fire(p, act)
	}
	return ff.inner.Close()
}
