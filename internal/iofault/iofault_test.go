package iofault

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestFaultyPassthroughAndTrace(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(OS)
	file, err := f.CreateTemp(dir, "x.tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := file.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := file.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := file.Close(); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "x")
	if err := f.Rename(file.Name(), dst); err != nil {
		t.Fatal(err)
	}
	if err := f.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(dst)
	if err != nil || string(b) != "hello" {
		t.Fatalf("content = %q, %v", b, err)
	}
	want := []Point{
		{OpCreateTemp, 0}, {OpWrite, 0}, {OpSync, 0}, {OpClose, 0}, {OpRename, 0}, {OpSyncDir, 0},
	}
	got := f.Trace()
	if len(got) != len(want) {
		t.Fatalf("trace = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("trace[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestInjectErrorAtOccurrence(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(OS)
	f.Inject(OpWrite, 1, ActError)
	file, err := f.CreateTemp(dir, "x.tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	if _, err := file.Write([]byte("first")); err != nil {
		t.Fatalf("occurrence 0 should pass through: %v", err)
	}
	if _, err := file.Write([]byte("second")); !errors.Is(err, ErrInjected) {
		t.Fatalf("occurrence 1 err = %v, want ErrInjected", err)
	}
	if _, err := file.Write([]byte("third")); err != nil {
		t.Fatalf("occurrence 2 should pass through again: %v", err)
	}
}

func TestTornWritePersistsHalf(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(OS)
	f.Inject(OpWrite, 0, ActTornWrite)
	file, err := f.CreateTemp(dir, "x.tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	n, werr := file.Write([]byte("abcdefgh"))
	if !errors.Is(werr, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", werr)
	}
	if n != 4 {
		t.Errorf("short write reported %d bytes, want 4", n)
	}
	if err := file.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(file.Name())
	if err != nil || string(b) != "abcd" {
		t.Fatalf("on-disk prefix = %q, %v; want \"abcd\"", b, err)
	}
}

func TestCrashPanicsWithTypedPayload(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(OS)
	f.Inject(OpRename, 0, ActCrash)
	defer func() {
		r := recover()
		c, ok := r.(*Crash)
		if !ok {
			t.Fatalf("recover() = %v, want *Crash", r)
		}
		if c.Op != OpRename || c.Occurrence != 0 {
			t.Errorf("crash point = %s#%d, want rename#0", c.Op, c.Occurrence)
		}
	}()
	_ = f.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b"))
	t.Fatal("rename should have panicked")
}

func TestResetClearsScriptAndCounters(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(OS)
	f.Inject(OpCreateTemp, 0, ActError)
	if _, err := f.CreateTemp(dir, "x.tmp-*"); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	f.Reset()
	file, err := f.CreateTemp(dir, "x.tmp-*")
	if err != nil {
		t.Fatalf("after Reset the script must be gone: %v", err)
	}
	if tr := f.Trace(); len(tr) != 1 || tr[0] != (Point{OpCreateTemp, 0}) {
		t.Errorf("trace after Reset = %v, want a fresh create-temp#0", tr)
	}
	_ = file.Close()
}
