package mmapio

import (
	"io"
	"os"
)

// readFallback slurps the file into a heap buffer when mapping is
// unavailable or refused. The buffer is 8-byte aligned in practice (Go's
// allocator aligns large []byte allocations), but callers that alias wider
// types over it must still verify alignment themselves.
func readFallback(f *os.File, size int) (*Region, error) {
	buf := make([]byte, size)
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, err
	}
	return &Region{data: buf, mapped: false}, nil
}
