//go:build linux

package mmapio

import (
	"os"
	"syscall"
)

func openFile(f *os.File, size int) (*Region, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Some filesystems refuse mmap; fall back to a heap read so the
		// caller still gets the bytes.
		return readFallback(f, size)
	}
	return &Region{data: data, mapped: true}, nil
}

func unmap(data []byte) error { return syscall.Munmap(data) }
