//go:build !linux

package mmapio

import "os"

func openFile(f *os.File, size int) (*Region, error) { return readFallback(f, size) }

func unmap(data []byte) error { return nil }
