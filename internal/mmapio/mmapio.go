// Package mmapio maps whole files read-only into memory so the index
// loader (internal/serialize) can alias typed slices over file bytes with
// zero deserialization. On platforms without mmap support the package
// degrades to reading the file into a heap buffer — callers see the same
// []byte either way, only Mapped() and the page-cache sharing change.
package mmapio

import (
	"fmt"
	"os"

	"ovm/internal/obs"
)

// Mapping cost accounting: how many regions ended up mmap'd versus on
// the heap fallback, and the byte volume mapped — the denominator for
// the zero-copy story the serialize counters tell per section.
var (
	regionsMapped = obs.NewCounter("ovm_mmap_regions_mapped_total",
		"File regions opened as read-only memory maps")
	regionsHeap = obs.NewCounter("ovm_mmap_regions_heap_total",
		"File regions opened on the heap-read fallback path")
	bytesMapped = obs.NewCounter("ovm_mmap_bytes_mapped_total",
		"Bytes served from read-only memory-mapped regions")
)

// Region is a read-only view of a file's contents. When Mapped reports
// true the bytes alias kernel page-cache pages and writing to them faults;
// treat Data as immutable in both modes.
type Region struct {
	data   []byte
	mapped bool
}

// Data returns the file contents. The slice is only valid until Close.
func (r *Region) Data() []byte { return r.data }

// Mapped reports whether Data aliases an mmap'd region (true) or a heap
// copy (false, the fallback path).
func (r *Region) Mapped() bool { return r.mapped }

// Len returns the number of bytes in the region.
func (r *Region) Len() int { return len(r.data) }

// Open maps the file at path read-only. An empty file yields an empty
// non-mapped region (mmap of length 0 is an error on Linux).
func Open(path string) (*Region, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return &Region{data: nil, mapped: false}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("mmapio: %s is too large to map (%d bytes)", path, size)
	}
	r, err := openFile(f, int(size))
	if err == nil && obs.CostEnabled() {
		if r.mapped {
			regionsMapped.Inc()
			bytesMapped.Add(int64(len(r.data)))
		} else {
			regionsHeap.Inc()
		}
	}
	return r, err
}

// Close releases the mapping (or drops the fallback buffer). The Region
// and any slices aliased over it must not be used afterwards.
func (r *Region) Close() error {
	data, mapped := r.data, r.mapped
	r.data, r.mapped = nil, false
	if !mapped || data == nil {
		return nil
	}
	return unmap(data)
}
