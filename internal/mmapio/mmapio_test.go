package mmapio

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestOpenReadsFileBytes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob")
	want := bytes.Repeat([]byte("ovmidx-region-"), 1024)
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", r.Len(), len(want))
	}
	if !bytes.Equal(r.Data(), want) {
		t.Fatal("Data does not match the file contents")
	}
}

func TestOpenEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 0 {
		t.Fatalf("Len = %d, want 0", r.Len())
	}
	if r.Mapped() {
		t.Error("empty region reported Mapped")
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("Open of a missing file succeeded")
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob")
	if err := os.WriteFile(path, []byte("abc"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if r.Data() != nil || r.Mapped() {
		t.Error("region still holds data after Close")
	}
}

// The mapping survives the original file being renamed over (the daemon's
// atomic-rewrite path keeps serving from the old mapping).
func TestRegionSurvivesRenameOver(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blob")
	want := bytes.Repeat([]byte{0xA5}, 4096)
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	repl := filepath.Join(dir, "blob.tmp")
	if err := os.WriteFile(repl, []byte("replacement"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(repl, path); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.Data(), want) {
		t.Fatal("region contents changed after rename-over")
	}
}
