package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// This file is the cost-accounting half of the observability layer: a
// process-global registry of named atomic counters and derived gauges
// that the compute packages (engine, walks, postings, im, serialize,
// mmapio) increment at coarse serial points. The counters answer "how
// much work" where the histograms in the service layer answer "how
// long": postings entries iterated, walks truncated, RR sets scanned,
// bytes copy-on-repaired, and so on.
//
// Three consumers read the registry:
//
//   - the /metrics exposition appends every registered family, so a
//     counter added anywhere in the library is exported without a
//     hand-written exposition line;
//   - CaptureCosts snapshots all counters so a query handler can diff
//     before/after and attach the per-query work to its Span;
//   - the TimeSeries ring samples the registry on a timer.
//
// Counting discipline: registered counters are global and atomic, so
// they must never be touched inside per-item inner loops. Compute code
// accumulates locally (or derives counts arithmetically from prefix
// sums) and issues one Add per shard, per AddSeed, or per round. All
// instrumentation sites are additionally gated on CostEnabled so the
// overhead can be proven ~zero (see BenchmarkCostAccounting).

// Counter is a monotonically increasing atomic counter registered under
// a unique name. The zero Counter is usable but unregistered; normal
// construction is through NewCounter, which registers it.
type Counter struct {
	name string
	help string
	v    atomic.Int64
}

// Add increments the counter by n. Safe for concurrent use.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Name returns the registered metric name.
func (c *Counter) Name() string { return c.name }

// gaugeFunc is a registered derived gauge: its value is computed on
// demand from other state (e.g. pool utilization from busy/capacity ns).
type gaugeFunc struct {
	name string
	help string
	fn   func() float64
}

// registry holds every registered counter and gauge. There is one
// process-global instance; package-level counters register themselves in
// var blocks at init time, so registration races are impossible and a
// duplicate name is a programming error that panics immediately.
type registry struct {
	mu       sync.RWMutex
	names    map[string]struct{}
	counters []*Counter
	gauges   []gaugeFunc
}

var defaultRegistry = &registry{names: make(map[string]struct{})}

func (r *registry) register(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.names[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric registration %q", name))
	}
	r.names[name] = struct{}{}
}

// NewCounter creates and registers a counter in the process-global
// registry. Panics if the name is already taken — metric names are a
// public contract, so a collision is a bug, not a condition to handle.
func NewCounter(name, help string) *Counter {
	defaultRegistry.register(name)
	c := &Counter{name: name, help: help}
	defaultRegistry.mu.Lock()
	defaultRegistry.counters = append(defaultRegistry.counters, c)
	defaultRegistry.mu.Unlock()
	return c
}

// NewGaugeFunc registers a derived gauge whose value is computed by fn at
// read time. fn must be safe for concurrent calls.
func NewGaugeFunc(name, help string, fn func() float64) {
	defaultRegistry.register(name)
	defaultRegistry.mu.Lock()
	defaultRegistry.gauges = append(defaultRegistry.gauges, gaugeFunc{name: name, help: help, fn: fn})
	defaultRegistry.mu.Unlock()
}

// costDisabled gates every instrumentation site. The zero value means
// enabled: accounting is on by default and SetCostAccounting(false) is
// the explicit opt-out (used by the overhead benchmark and available to
// operators who want the last 1-2%).
var costDisabled atomic.Bool

// CostEnabled reports whether cost accounting is on.
func CostEnabled() bool { return !costDisabled.Load() }

// SetCostAccounting turns cost accounting on or off process-wide.
func SetCostAccounting(on bool) { costDisabled.Store(!on) }

// CostSnapshot is a point-in-time reading of every registered counter,
// keyed by metric name. A query handler captures one before and after
// its compute closure and attaches the Delta to the query's Span.
type CostSnapshot map[string]int64

// CaptureCosts snapshots all registered counters.
func CaptureCosts() CostSnapshot {
	defaultRegistry.mu.RLock()
	defer defaultRegistry.mu.RUnlock()
	s := make(CostSnapshot, len(defaultRegistry.counters))
	for _, c := range defaultRegistry.counters {
		s[c.name] = c.v.Load()
	}
	return s
}

// Delta returns s minus prev, keeping only counters that moved — the
// work attributable to whatever ran between the two captures.
func (s CostSnapshot) Delta(prev CostSnapshot) CostSnapshot {
	d := make(CostSnapshot)
	for name, v := range s {
		if dv := v - prev[name]; dv != 0 {
			d[name] = dv
		}
	}
	return d
}

// MetricFamily is one registered metric's current reading, as consumed
// by the exposition writer and the time-series sampler.
type MetricFamily struct {
	Name    string
	Help    string
	Value   float64
	IsGauge bool
}

// Families returns every registered counter and gauge with its current
// value, sorted by name — the registry's read API for exposition and
// sampling.
func Families() []MetricFamily {
	defaultRegistry.mu.RLock()
	fams := make([]MetricFamily, 0, len(defaultRegistry.counters)+len(defaultRegistry.gauges))
	for _, c := range defaultRegistry.counters {
		fams = append(fams, MetricFamily{Name: c.name, Help: c.help, Value: float64(c.v.Load())})
	}
	for _, g := range defaultRegistry.gauges {
		fams = append(fams, MetricFamily{Name: g.name, Help: g.help, Value: g.fn(), IsGauge: true})
	}
	defaultRegistry.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].Name < fams[j].Name })
	return fams
}
