package obs

import (
	"sort"
	"testing"
)

func TestCounterRegistryAndSnapshots(t *testing.T) {
	c1 := NewCounter("test_cost_alpha_total", "alpha help")
	c2 := NewCounter("test_cost_beta_total", "beta help")
	NewGaugeFunc("test_cost_gamma", "gamma help", func() float64 { return 42 })

	c1.Add(3)
	c2.Inc()
	before := CaptureCosts()
	c1.Add(5)
	delta := CaptureCosts().Delta(before)
	if delta["test_cost_alpha_total"] != 5 {
		t.Errorf("alpha delta = %d, want 5", delta["test_cost_alpha_total"])
	}
	if _, moved := delta["test_cost_beta_total"]; moved {
		t.Errorf("beta did not move but appears in the delta: %v", delta)
	}
	if c1.Load() != 8 || c1.Name() != "test_cost_alpha_total" {
		t.Errorf("counter state: load=%d name=%q", c1.Load(), c1.Name())
	}

	fams := Families()
	if !sort.SliceIsSorted(fams, func(i, j int) bool { return fams[i].Name < fams[j].Name }) {
		t.Error("Families() not sorted by name")
	}
	byName := make(map[string]MetricFamily, len(fams))
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f := byName["test_cost_alpha_total"]; f.Value != 8 || f.IsGauge || f.Help != "alpha help" {
		t.Errorf("alpha family: %+v", f)
	}
	if f := byName["test_cost_gamma"]; f.Value != 42 || !f.IsGauge {
		t.Errorf("gamma family: %+v", f)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	NewCounter("test_cost_dup_total", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	NewCounter("test_cost_dup_total", "second")
}

func TestSetCostAccounting(t *testing.T) {
	if !CostEnabled() {
		t.Fatal("cost accounting must default to enabled")
	}
	SetCostAccounting(false)
	if CostEnabled() {
		t.Error("SetCostAccounting(false) did not disable")
	}
	SetCostAccounting(true)
	if !CostEnabled() {
		t.Error("SetCostAccounting(true) did not re-enable")
	}
}
