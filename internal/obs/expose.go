package obs

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// Exposition writes Prometheus text-format (version 0.0.4) metric
// families by hand — no client library, no registry. Families are emitted
// in call order; series within a family come from the caller (or, for
// HistogramVec, in deterministic sorted-label order), so the output is
// stable and golden-testable. The first write error sticks and later
// calls no-op.
type Exposition struct {
	w   *bufio.Writer
	err error
}

// Label is one name="value" pair on a series.
type Label struct{ Name, Value string }

// Sample is one labeled series value inside a family.
type Sample struct {
	Labels []Label
	Value  float64
}

// NewExposition wraps w.
func NewExposition(w io.Writer) *Exposition {
	return &Exposition{w: bufio.NewWriter(w)}
}

// Err returns the first write error.
func (e *Exposition) Err() error { return e.err }

// Flush drains the buffer; call once after the last family.
func (e *Exposition) Flush() error {
	if e.err == nil {
		e.err = e.w.Flush()
	}
	return e.err
}

func (e *Exposition) printf(s string) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.WriteString(s)
}

// formatValue renders a sample value: integers without an exponent,
// everything else in shortest-exact form.
func formatValue(v float64) string {
	if v == float64(int64(v)) && v >= -1e15 && v <= 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func (e *Exposition) header(name, typ, help string) {
	e.printf("# HELP " + name + " " + help + "\n")
	e.printf("# TYPE " + name + " " + typ + "\n")
}

func (e *Exposition) sample(name string, labels []Label, value string) {
	var sb strings.Builder
	sb.WriteString(name)
	if len(labels) > 0 {
		sb.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(l.Name)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(l.Value))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(value)
	sb.WriteByte('\n')
	e.printf(sb.String())
}

// Counter emits a single-series counter family.
func (e *Exposition) Counter(name, help string, v float64) {
	e.header(name, "counter", help)
	e.sample(name, nil, formatValue(v))
}

// Gauge emits a single-series gauge family.
func (e *Exposition) Gauge(name, help string, v float64) {
	e.header(name, "gauge", help)
	e.sample(name, nil, formatValue(v))
}

// GaugeVec emits a labeled gauge family with the given samples, in the
// order given (callers pass them pre-sorted for deterministic output).
func (e *Exposition) GaugeVec(name, help string, samples []Sample) {
	e.header(name, "gauge", help)
	for _, s := range samples {
		e.sample(name, s.Labels, formatValue(s.Value))
	}
}

// HistogramVec emits a histogram family from a vector: cumulative
// _bucket series with le bounds converted from nanoseconds to seconds,
// the +Inf bucket, and the _sum (seconds) / _count series — the standard
// Prometheus histogram triplet. Series appear in sorted-label order.
func (e *Exposition) HistogramVec(v *HistogramVec) {
	e.header(v.Name, "histogram", v.Help)
	v.Each(func(values []string, snap HistSnapshot) {
		base := make([]Label, len(v.LabelNames))
		for i, n := range v.LabelNames {
			base[i] = Label{n, values[i]}
		}
		cum := int64(0)
		for i, bound := range BucketBoundsNs {
			cum += snap.Counts[i]
			le := strconv.FormatFloat(float64(bound)/1e9, 'g', -1, 64)
			e.sample(v.Name+"_bucket", append(base[:len(base):len(base)], Label{"le", le}), strconv.FormatInt(cum, 10))
		}
		e.sample(v.Name+"_bucket", append(base[:len(base):len(base)], Label{"le", "+Inf"}), strconv.FormatInt(snap.Count, 10))
		e.sample(v.Name+"_sum", base, strconv.FormatFloat(float64(snap.SumNs)/1e9, 'g', -1, 64))
		e.sample(v.Name+"_count", base, strconv.FormatInt(snap.Count, 10))
	})
}
