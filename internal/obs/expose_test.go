package obs

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

// TestExpositionGolden pins the Prometheus text exposition byte-for-byte
// for a small fixed registry: counter, gauge, labeled gauges, and a
// histogram vector with two series (one empty bucket range elided is NOT
// allowed — every bound appears, cumulative).
func TestExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	e := NewExposition(&buf)
	e.Counter("ovmd_requests_total", "Total queries received.", 42)
	e.Gauge("ovmd_uptime_seconds", "Seconds since start.", 1.5)
	e.GaugeVec("ovmd_dataset_epoch", "Current dataset epoch.", []Sample{
		{Labels: []Label{{"dataset", "default"}}, Value: 3},
		{Labels: []Label{{"dataset", `we"ird`}}, Value: 7},
	})
	vec := NewHistogramVec("ovmd_request_duration_seconds", "Query latency.", "endpoint")
	h := vec.With("select-seeds")
	h.ObserveNs(2_000)           // (1000, 2500] bucket
	h.ObserveNs(2_000)           //
	h.ObserveNs(40_000_000)      // (25ms, 50ms] bucket
	h.ObserveNs(500_000_000_000) // overflow (500s)
	e.HistogramVec(vec)
	if e.Flush() != nil {
		t.Fatal(e.Err())
	}
	got := buf.String()

	want := strings.Join([]string{
		"# HELP ovmd_requests_total Total queries received.",
		"# TYPE ovmd_requests_total counter",
		"ovmd_requests_total 42",
		"# HELP ovmd_uptime_seconds Seconds since start.",
		"# TYPE ovmd_uptime_seconds gauge",
		"ovmd_uptime_seconds 1.5",
		"# HELP ovmd_dataset_epoch Current dataset epoch.",
		"# TYPE ovmd_dataset_epoch gauge",
		`ovmd_dataset_epoch{dataset="default"} 3`,
		`ovmd_dataset_epoch{dataset="we\"ird"} 7`,
		"# HELP ovmd_request_duration_seconds Query latency.",
		"# TYPE ovmd_request_duration_seconds histogram",
		`ovmd_request_duration_seconds_bucket{endpoint="select-seeds",le="2.5e-07"} 0`,
		`ovmd_request_duration_seconds_bucket{endpoint="select-seeds",le="5e-07"} 0`,
		`ovmd_request_duration_seconds_bucket{endpoint="select-seeds",le="1e-06"} 0`,
		`ovmd_request_duration_seconds_bucket{endpoint="select-seeds",le="2.5e-06"} 2`,
		`ovmd_request_duration_seconds_bucket{endpoint="select-seeds",le="5e-06"} 2`,
		`ovmd_request_duration_seconds_bucket{endpoint="select-seeds",le="1e-05"} 2`,
		`ovmd_request_duration_seconds_bucket{endpoint="select-seeds",le="2.5e-05"} 2`,
		`ovmd_request_duration_seconds_bucket{endpoint="select-seeds",le="5e-05"} 2`,
		`ovmd_request_duration_seconds_bucket{endpoint="select-seeds",le="0.0001"} 2`,
		`ovmd_request_duration_seconds_bucket{endpoint="select-seeds",le="0.00025"} 2`,
		`ovmd_request_duration_seconds_bucket{endpoint="select-seeds",le="0.0005"} 2`,
		`ovmd_request_duration_seconds_bucket{endpoint="select-seeds",le="0.001"} 2`,
		`ovmd_request_duration_seconds_bucket{endpoint="select-seeds",le="0.0025"} 2`,
		`ovmd_request_duration_seconds_bucket{endpoint="select-seeds",le="0.005"} 2`,
		`ovmd_request_duration_seconds_bucket{endpoint="select-seeds",le="0.01"} 2`,
		`ovmd_request_duration_seconds_bucket{endpoint="select-seeds",le="0.025"} 2`,
		`ovmd_request_duration_seconds_bucket{endpoint="select-seeds",le="0.05"} 3`,
		`ovmd_request_duration_seconds_bucket{endpoint="select-seeds",le="0.1"} 3`,
		`ovmd_request_duration_seconds_bucket{endpoint="select-seeds",le="0.25"} 3`,
		`ovmd_request_duration_seconds_bucket{endpoint="select-seeds",le="0.5"} 3`,
		`ovmd_request_duration_seconds_bucket{endpoint="select-seeds",le="1"} 3`,
		`ovmd_request_duration_seconds_bucket{endpoint="select-seeds",le="2.5"} 3`,
		`ovmd_request_duration_seconds_bucket{endpoint="select-seeds",le="5"} 3`,
		`ovmd_request_duration_seconds_bucket{endpoint="select-seeds",le="10"} 3`,
		`ovmd_request_duration_seconds_bucket{endpoint="select-seeds",le="25"} 3`,
		`ovmd_request_duration_seconds_bucket{endpoint="select-seeds",le="50"} 3`,
		`ovmd_request_duration_seconds_bucket{endpoint="select-seeds",le="100"} 3`,
		`ovmd_request_duration_seconds_bucket{endpoint="select-seeds",le="+Inf"} 4`,
		`ovmd_request_duration_seconds_sum{endpoint="select-seeds"} 500.040004`,
		`ovmd_request_duration_seconds_count{endpoint="select-seeds"} 4`,
		"",
	}, "\n")
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExpositionParses runs every emitted line through the format's line
// grammar — the same check the smoke test applies to a live /metrics.
func TestExpositionParses(t *testing.T) {
	var buf bytes.Buffer
	e := NewExposition(&buf)
	vec := NewHistogramVec("x_seconds", "help text with spaces", "a", "b")
	vec.With("v1", "v 2").ObserveNs(123)
	e.HistogramVec(vec)
	e.Counter("c_total", "c", 0)
	if e.Flush() != nil {
		t.Fatal(e.Err())
	}
	series := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (\+Inf|-?[0-9.eE+-]+)$`)
	for _, line := range strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !series.MatchString(line) {
			t.Errorf("line does not parse as a series: %q", line)
		}
	}
}
