package obs_test

// The exposition-completeness guard: every counter/gauge registered in
// the obs cost registry — by any package in the module — must appear in
// the service's /metrics output. Importing internal/service links in the
// full compute stack (engine, walks, postings, im, dynamic, serialize,
// mmapio), so their package-level registrations are all visible here,
// and WriteMetrics appending obs.Families() means a newly added counter
// can never silently miss the exposition. This is an external test
// package precisely so it may import the service without a cycle.

import (
	"bytes"
	"strings"
	"testing"

	"ovm/internal/obs"
	"ovm/internal/service"
)

func TestExpositionCompleteness(t *testing.T) {
	svc := service.New(service.Config{})
	defer svc.Close()
	var buf bytes.Buffer
	if err := svc.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	fams := obs.Families()
	if len(fams) == 0 {
		t.Fatal("no registered metric families — the cost registry did not link in")
	}
	for _, f := range fams {
		if !strings.Contains(out, "\n"+f.Name+" ") && !strings.HasPrefix(out, f.Name+" ") {
			t.Errorf("registered metric %q missing from /metrics output", f.Name)
		}
		if !strings.Contains(out, "# HELP "+f.Name+" ") {
			t.Errorf("registered metric %q has no HELP line", f.Name)
		}
	}

	// Spot-check that each instrumented layer actually registered its
	// counters (a rename here is a /metrics contract change).
	for _, name := range []string{
		"ovm_engine_shards_total",
		"ovm_engine_pool_utilization",
		"ovm_postings_entries_total",
		"ovm_postings_blocks_total",
		"ovm_walks_truncated_total",
		"ovm_walks_gain_cache_hits_total",
		"ovm_repair_copy_bytes_total",
		"ovm_repair_invalidated_walk_pct",
		"ovm_rr_sets_scanned_total",
		"ovm_dynamic_batches_applied_total",
		"ovm_serialize_zerocopy_bytes_total",
		"ovm_mmap_regions_mapped_total",
	} {
		found := false
		for _, f := range fams {
			if f.Name == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("expected registered metric %q is absent from the registry", name)
		}
	}
}
