// Package obs is the dependency-free observability layer behind the ovmd
// serving stack: lock-free fixed-bucket latency histograms (log-spaced
// nanosecond buckets, mergeable snapshots, quantile extraction), a
// lightweight span tracer with a ring-buffered slow-query log, a
// hand-rolled Prometheus text-format exposition writer, and a small
// leveled structured logger. Everything here is allocation-light and safe
// for concurrent use on the query hot path.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// BucketBoundsNs are the histogram bucket upper bounds in nanoseconds:
// log-spaced on a 1–2.5–5 grid from 250ns to 100s, which keeps every
// bucket within a 2.5× relative-error band — tight enough for p50/p95/p99
// extraction across the full range a serving request can span (a ~2µs
// cache hit to a multi-second cold selection). Durations above the last
// bound land in a single overflow bucket whose upper edge is the observed
// maximum.
var BucketBoundsNs = [...]int64{
	250, 500,
	1_000, 2_500, 5_000,
	10_000, 25_000, 50_000,
	100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000,
	10_000_000, 25_000_000, 50_000_000,
	100_000_000, 250_000_000, 500_000_000,
	1_000_000_000, 2_500_000_000, 5_000_000_000,
	10_000_000_000, 25_000_000_000, 50_000_000_000,
	100_000_000_000,
}

// NumBuckets counts the histogram's counters: one per bound plus the
// overflow bucket.
const NumBuckets = len(BucketBoundsNs) + 1

// bucketIndex maps a duration to its bucket: the first bound >= ns, or the
// overflow bucket past the last bound.
func bucketIndex(ns int64) int {
	// Binary search over a 27-entry array: ~5 comparisons, no allocation.
	return sort.Search(len(BucketBoundsNs), func(i int) bool { return BucketBoundsNs[i] >= ns })
}

// Histogram is a lock-free fixed-bucket latency histogram. Record is
// wait-free (one atomic add per counter touched); Snapshot reads the
// counters without a barrier, so a snapshot taken during concurrent
// recording is approximate across buckets but every counter is itself
// exact and monotone.
type Histogram struct {
	counts [NumBuckets]atomic.Int64
	count  atomic.Int64
	sumNs  atomic.Int64
	maxNs  atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNs(d.Nanoseconds()) }

// ObserveNs records one duration in nanoseconds. Negative values clamp to
// zero.
func (h *Histogram) ObserveNs(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
	for {
		cur := h.maxNs.Load()
		if ns <= cur || h.maxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Snapshot captures the current counters into an immutable value.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	s.SumNs = h.sumNs.Load()
	s.MaxNs = h.maxNs.Load()
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram. Snapshots are plain
// values: mergeable (Merge is associative and commutative) and safe to
// pass across goroutines.
type HistSnapshot struct {
	Counts [NumBuckets]int64 `json:"counts"`
	Count  int64             `json:"count"`
	SumNs  int64             `json:"sumNs"`
	MaxNs  int64             `json:"maxNs"`
}

// Merge returns the combination of two snapshots, as if every recorded
// duration had gone into one histogram.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	m := s
	for i := range m.Counts {
		m.Counts[i] += o.Counts[i]
	}
	m.Count += o.Count
	m.SumNs += o.SumNs
	if o.MaxNs > m.MaxNs {
		m.MaxNs = o.MaxNs
	}
	return m
}

// Quantile extracts the q-quantile (0 < q <= 1) in nanoseconds by linear
// interpolation inside the bucket holding the target rank. The overflow
// bucket interpolates up to the observed maximum. Returns 0 on an empty
// snapshot.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	cum := float64(0)
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if cum+float64(c) >= rank {
			lo := int64(0)
			if i > 0 {
				lo = BucketBoundsNs[i-1]
			}
			hi := s.MaxNs
			if i < len(BucketBoundsNs) {
				hi = BucketBoundsNs[i]
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - cum) / float64(c)
			return lo + int64(frac*float64(hi-lo))
		}
		cum += float64(c)
	}
	return s.MaxNs
}

// Mean returns the average recorded duration in nanoseconds.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNs) / float64(s.Count)
}

// labelSep joins label values into a map key; 0x1f (ASCII unit separator)
// cannot appear in the label vocabularies we use (endpoint names, dataset
// names, score names, stage names).
const labelSep = "\x1f"

// HistogramVec is a set of Histograms keyed by a fixed list of label
// values (e.g. endpoint × dataset × score). With is lock-free after the
// first call for a given label combination (read-lock map hit); recording
// on the returned Histogram is wait-free.
type HistogramVec struct {
	// Name and Help feed the Prometheus exposition.
	Name, Help string
	LabelNames []string

	mu sync.RWMutex
	m  map[string]*labeledHist
}

type labeledHist struct {
	values []string
	hist   *Histogram
}

// NewHistogramVec creates an empty vector with the given exposition
// metadata and label schema.
func NewHistogramVec(name, help string, labelNames ...string) *HistogramVec {
	return &HistogramVec{Name: name, Help: help, LabelNames: labelNames, m: make(map[string]*labeledHist)}
}

// With returns the histogram for the given label values, creating it on
// first use. The number of values must match the label schema.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.LabelNames) {
		panic("obs: label value count mismatch")
	}
	key := joinLabels(values)
	v.mu.RLock()
	lh, ok := v.m[key]
	v.mu.RUnlock()
	if ok {
		return lh.hist
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if lh, ok := v.m[key]; ok {
		return lh.hist
	}
	lh = &labeledHist{values: append([]string(nil), values...), hist: &Histogram{}}
	v.m[key] = lh
	return lh.hist
}

func joinLabels(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	n := len(values) - 1
	for _, s := range values {
		n += len(s)
	}
	b := make([]byte, 0, n)
	for i, s := range values {
		if i > 0 {
			b = append(b, labelSep...)
		}
		b = append(b, s...)
	}
	return string(b)
}

// Each calls fn for every labeled series in deterministic (sorted-key)
// order with a snapshot of its histogram.
func (v *HistogramVec) Each(fn func(values []string, snap HistSnapshot)) {
	v.mu.RLock()
	keys := make([]string, 0, len(v.m))
	for k := range v.m {
		keys = append(keys, k)
	}
	series := make(map[string]*labeledHist, len(v.m))
	for k, lh := range v.m {
		series[k] = lh
	}
	v.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		lh := series[k]
		fn(lh.values, lh.hist.Snapshot())
	}
}

// MergedBy folds every series down to the value of one label (by index in
// the label schema), merging the histograms of series that share it. The
// service uses it for per-endpoint summaries across datasets and scores.
func (v *HistogramVec) MergedBy(labelIdx int) map[string]HistSnapshot {
	out := make(map[string]HistSnapshot)
	v.Each(func(values []string, snap HistSnapshot) {
		if labelIdx < 0 || labelIdx >= len(values) {
			return
		}
		out[values[labelIdx]] = out[values[labelIdx]].Merge(snap)
	})
	return out
}
