package obs

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries pins the bucket assignment contract: a value lands
// in the first bucket whose bound is >= the value, and values past the
// last bound land in the overflow bucket.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0},
		{1, 0},
		{250, 0}, // exactly on a bound → that bucket
		{251, 1}, // just past → next bucket
		{500, 1},
		{501, 2},
		{1_000, 2},
		{500_001, 11},
		{1_000_000, 11},
		{100_000_000_000, len(BucketBoundsNs) - 1}, // last bound
		{100_000_000_001, len(BucketBoundsNs)},     // overflow
		{1 << 62, len(BucketBoundsNs)},             // way past
		{-5, 0},                                    // clamps to zero
	}
	for _, c := range cases {
		var h Histogram
		h.ObserveNs(c.ns)
		s := h.Snapshot()
		for i, cnt := range s.Counts {
			want := int64(0)
			if i == c.want {
				want = 1
			}
			if cnt != want {
				t.Errorf("ObserveNs(%d): bucket %d has count %d, want bucket %d", c.ns, i, cnt, c.want)
			}
		}
	}
	// Bounds must be strictly increasing or the search breaks silently.
	for i := 1; i < len(BucketBoundsNs); i++ {
		if BucketBoundsNs[i] <= BucketBoundsNs[i-1] {
			t.Fatalf("bucket bounds not strictly increasing at %d: %d <= %d", i, BucketBoundsNs[i], BucketBoundsNs[i-1])
		}
	}
}

// TestQuantileKnownDistributions checks quantile extraction against
// distributions whose quantiles are known, within the bucket resolution
// (the 1–2.5–5 grid bounds relative error by 2.5×; uniform-in-bucket
// interpolation does much better when mass spreads inside buckets).
func TestQuantileKnownDistributions(t *testing.T) {
	t.Run("constant", func(t *testing.T) {
		var h Histogram
		for i := 0; i < 1000; i++ {
			h.ObserveNs(3_000) // inside the (2500, 5000] bucket
		}
		s := h.Snapshot()
		for _, q := range []float64{0.5, 0.95, 0.99} {
			got := s.Quantile(q)
			if got < 2_500 || got > 5_000 {
				t.Errorf("constant 3µs: q%.2f = %dns outside its bucket (2500, 5000]", q, got)
			}
		}
		if s.MaxNs != 3_000 {
			t.Errorf("MaxNs = %d, want 3000", s.MaxNs)
		}
	})
	t.Run("uniform", func(t *testing.T) {
		// Uniform over [0, 1ms): true quantile at q is q*1ms. Log buckets
		// are coarse at the top of the range; allow one bucket of slack.
		var h Histogram
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 200_000; i++ {
			h.ObserveNs(rng.Int63n(1_000_000))
		}
		s := h.Snapshot()
		for _, c := range []struct {
			q      float64
			lo, hi int64
		}{
			{0.5, 400_000, 600_000},    // true 500µs, bucket (250µs,500µs]/(500µs,1ms]
			{0.95, 850_000, 1_000_000}, // true 950µs
			{0.99, 950_000, 1_000_000}, // true 990µs
		} {
			got := s.Quantile(c.q)
			if got < c.lo || got > c.hi {
				t.Errorf("uniform[0,1ms): q%.2f = %dns, want within [%d, %d]", c.q, got, c.lo, c.hi)
			}
		}
	})
	t.Run("bimodal", func(t *testing.T) {
		// 90% fast (2µs cache hits), 10% slow (40ms computations): p50 must
		// sit in the fast mode, p99 in the slow mode.
		var h Histogram
		for i := 0; i < 900; i++ {
			h.ObserveNs(2_000)
		}
		for i := 0; i < 100; i++ {
			h.ObserveNs(40_000_000)
		}
		s := h.Snapshot()
		if p50 := s.Quantile(0.5); p50 < 1_000 || p50 > 2_500 {
			t.Errorf("bimodal p50 = %dns, want in the 2µs mode", p50)
		}
		if p99 := s.Quantile(0.99); p99 < 25_000_000 || p99 > 50_000_000 {
			t.Errorf("bimodal p99 = %dns, want in the 40ms mode", p99)
		}
	})
	t.Run("overflow", func(t *testing.T) {
		// Beyond the last bound the overflow bucket interpolates up to the
		// observed max.
		var h Histogram
		h.ObserveNs(200_000_000_000)
		s := h.Snapshot()
		if got := s.Quantile(1); got < 100_000_000_000 || got > 200_000_000_000 {
			t.Errorf("overflow q1.0 = %d, want within [last bound, max]", got)
		}
	})
	t.Run("empty", func(t *testing.T) {
		var h Histogram
		if got := h.Snapshot().Quantile(0.5); got != 0 {
			t.Errorf("empty histogram quantile = %d, want 0", got)
		}
	})
}

// TestConcurrentRecord hammers one histogram (and one vec series) from
// many goroutines; run under -race this proves the lock-free recording
// claim, and the totals prove no increment is lost.
func TestConcurrentRecord(t *testing.T) {
	var h Histogram
	vec := NewHistogramVec("test_hist", "help", "worker")
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			series := vec.With("shared")
			for i := 0; i < perWorker; i++ {
				ns := int64((w*perWorker + i) % 1_000_000)
				h.ObserveNs(ns)
				series.ObserveNs(ns)
				if i%100 == 0 {
					_ = h.Snapshot().Quantile(0.99) // concurrent reads
				}
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("lost updates: count = %d, want %d", s.Count, workers*perWorker)
	}
	var bucketSum int64
	for _, c := range s.Counts {
		bucketSum += c
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, s.Count)
	}
	if vs := vec.With("shared").Snapshot(); vs.Count != workers*perWorker {
		t.Fatalf("vec lost updates: count = %d, want %d", vs.Count, workers*perWorker)
	}
}

// TestMergeAssociativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) and merging empty is
// the identity, over randomized snapshots.
func TestMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randomSnap := func() HistSnapshot {
		var h Histogram
		for i, n := 0, rng.Intn(2000); i < n; i++ {
			h.ObserveNs(rng.Int63n(10_000_000_000))
		}
		return h.Snapshot()
	}
	for trial := 0; trial < 20; trial++ {
		a, b, c := randomSnap(), randomSnap(), randomSnap()
		left := a.Merge(b).Merge(c)
		right := a.Merge(b.Merge(c))
		if left != right {
			t.Fatalf("trial %d: merge is not associative:\n  (a+b)+c = %+v\n  a+(b+c) = %+v", trial, left, right)
		}
		if got := a.Merge(HistSnapshot{}); got != a {
			t.Fatalf("trial %d: merging the empty snapshot changed the value", trial)
		}
		if ab, ba := a.Merge(b), b.Merge(a); ab != ba {
			t.Fatalf("trial %d: merge is not commutative", trial)
		}
		if left.Count != a.Count+b.Count+c.Count {
			t.Fatalf("trial %d: merged count %d != %d", trial, left.Count, a.Count+b.Count+c.Count)
		}
	}
}

// TestMergedBy folds a vec down to one label and checks counts add up.
func TestMergedBy(t *testing.T) {
	vec := NewHistogramVec("d", "h", "endpoint", "dataset")
	vec.With("select-seeds", "a").Observe(2 * time.Millisecond)
	vec.With("select-seeds", "b").Observe(4 * time.Millisecond)
	vec.With("evaluate", "a").Observe(8 * time.Millisecond)
	byEndpoint := vec.MergedBy(0)
	if got := byEndpoint["select-seeds"].Count; got != 2 {
		t.Errorf("select-seeds merged count = %d, want 2", got)
	}
	if got := byEndpoint["evaluate"].Count; got != 1 {
		t.Errorf("evaluate merged count = %d, want 1", got)
	}
}
