package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level orders log severities.
type Level int8

// The severity ladder.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the canonical lower-case level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// ParseLevel resolves a level name (debug, info, warn, error).
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", s)
}

// Field is one structured key/value on a log line.
type Field struct {
	Key   string
	Value any
}

// F builds a Field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// logOutput serializes writes from every Logger derived from the same
// root, so lines never interleave.
type logOutput struct {
	mu sync.Mutex
	w  io.Writer
}

// Logger is a small leveled structured logger with a text (logfmt-like)
// or JSON line format. With derives child loggers carrying bound fields.
// A nil *Logger is valid and silently discards everything, so library
// code can log unconditionally.
type Logger struct {
	out   *logOutput
	level Level
	json  bool
	base  []Field
	now   func() time.Time // test hook; nil means time.Now
}

// NewLogger writes lines at or above level to w, as JSON objects when
// jsonFormat is set and as "TIME LEVEL msg key=value ..." text otherwise.
func NewLogger(w io.Writer, level Level, jsonFormat bool) *Logger {
	return &Logger{out: &logOutput{w: w}, level: level, json: jsonFormat}
}

// With returns a child logger whose lines carry the extra fields.
func (l *Logger) With(fields ...Field) *Logger {
	if l == nil {
		return nil
	}
	child := *l
	child.base = append(append([]Field(nil), l.base...), fields...)
	return &child
}

// Enabled reports whether lines at the level would be written.
func (l *Logger) Enabled(level Level) bool { return l != nil && level >= l.level }

// Debug logs at debug level.
func (l *Logger) Debug(msg string, fields ...Field) { l.log(LevelDebug, msg, fields) }

// Info logs at info level.
func (l *Logger) Info(msg string, fields ...Field) { l.log(LevelInfo, msg, fields) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, fields ...Field) { l.log(LevelWarn, msg, fields) }

// Error logs at error level.
func (l *Logger) Error(msg string, fields ...Field) { l.log(LevelError, msg, fields) }

func (l *Logger) log(level Level, msg string, fields []Field) {
	if !l.Enabled(level) {
		return
	}
	nowFn := l.now
	if nowFn == nil {
		nowFn = time.Now
	}
	ts := nowFn().UTC().Format("2006-01-02T15:04:05.000Z")
	var sb strings.Builder
	if l.json {
		sb.WriteString(`{"ts":"`)
		sb.WriteString(ts)
		sb.WriteString(`","level":"`)
		sb.WriteString(level.String())
		sb.WriteString(`","msg":`)
		sb.Write(jsonValue(msg))
		for _, f := range l.base {
			writeJSONField(&sb, f)
		}
		for _, f := range fields {
			writeJSONField(&sb, f)
		}
		sb.WriteString("}\n")
	} else {
		sb.WriteString(ts)
		sb.WriteByte(' ')
		sb.WriteString(strings.ToUpper(level.String()))
		sb.WriteByte(' ')
		sb.WriteString(msg)
		for _, f := range l.base {
			writeTextField(&sb, f)
		}
		for _, f := range fields {
			writeTextField(&sb, f)
		}
		sb.WriteByte('\n')
	}
	l.out.mu.Lock()
	_, _ = io.WriteString(l.out.w, sb.String())
	l.out.mu.Unlock()
}

// jsonValue marshals v, falling back to its fmt rendering (quoted) when v
// does not marshal — a log line must never fail.
func jsonValue(v any) []byte {
	if err, ok := v.(error); ok {
		v = err.Error()
	}
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(fmt.Sprint(v))
	}
	return b
}

func writeJSONField(sb *strings.Builder, f Field) {
	sb.WriteByte(',')
	sb.Write(jsonValue(f.Key))
	sb.WriteByte(':')
	sb.Write(jsonValue(f.Value))
}

func writeTextField(sb *strings.Builder, f Field) {
	sb.WriteByte(' ')
	sb.WriteString(f.Key)
	sb.WriteByte('=')
	switch v := f.Value.(type) {
	case string:
		writeTextValue(sb, v)
	case error:
		writeTextValue(sb, v.Error())
	case float64:
		sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	case time.Duration:
		sb.WriteString(v.String())
	default:
		writeTextValue(sb, fmt.Sprint(v))
	}
}

// writeTextValue quotes a string value only when it contains whitespace,
// quotes, or '=' — keeping common values (numbers, names) grep-friendly.
func writeTextValue(sb *strings.Builder, s string) {
	if strings.ContainsAny(s, " \t\n\"=") || s == "" {
		sb.WriteString(strconv.Quote(s))
		return
	}
	sb.WriteString(s)
}
