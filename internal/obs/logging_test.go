package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedNow() time.Time { return time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC) }

func TestLoggerTextFormat(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo, false)
	l.now = fixedNow
	l.Info("query served",
		F("dataset", "default"),
		F("epoch", int64(3)),
		F("durMs", 1.25),
		F("score", "p-approval"),
		F("note", "has spaces"),
	)
	got := buf.String()
	want := "2026-08-07T12:00:00.000Z INFO query served dataset=default epoch=3 durMs=1.25 score=p-approval note=\"has spaces\"\n"
	if got != want {
		t.Errorf("text line:\n got %q\nwant %q", got, want)
	}
}

func TestLoggerJSONFormat(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelDebug, true)
	l.now = fixedNow
	l.With(F("dataset", "d1")).Debug("update applied", F("epoch", 4), F("err", errors.New("boom")))
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("line is not valid JSON: %v\n%s", err, buf.String())
	}
	for k, want := range map[string]any{
		"ts":      "2026-08-07T12:00:00.000Z",
		"level":   "debug",
		"msg":     "update applied",
		"dataset": "d1",
		"epoch":   float64(4),
		"err":     "boom",
	} {
		if m[k] != want {
			t.Errorf("field %q = %v, want %v", k, m[k], want)
		}
	}
}

func TestLoggerLevelFilter(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelWarn, false)
	l.Debug("nope")
	l.Info("nope")
	l.Warn("yes")
	l.Error("also")
	out := buf.String()
	if strings.Contains(out, "nope") {
		t.Errorf("below-level lines leaked: %s", out)
	}
	if !strings.Contains(out, "WARN yes") || !strings.Contains(out, "ERROR also") {
		t.Errorf("at-level lines missing: %s", out)
	}
	if !l.Enabled(LevelError) || l.Enabled(LevelInfo) {
		t.Error("Enabled disagrees with the filter")
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Info("into the void", F("k", "v"))
	if l.With(F("a", 1)) != nil {
		t.Error("nil.With must stay nil")
	}
	if l.Enabled(LevelError) {
		t.Error("nil logger reports enabled")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{"debug": LevelDebug, "INFO": LevelInfo, "warning": LevelWarn, "error": LevelError} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}

// TestLoggerConcurrent exercises interleaving-freedom under -race: every
// line must arrive whole.
func TestLoggerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo, false)
	l.now = fixedNow
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			child := l.With(F("worker", w))
			for i := 0; i < 200; i++ {
				child.Info("line", F("i", i))
			}
		}(w)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 8*200 {
		t.Fatalf("got %d lines, want %d", len(lines), 8*200)
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "2026-08-07T12:00:00.000Z INFO line worker=") {
			t.Fatalf("interleaved or malformed line: %q", line)
		}
	}
}
