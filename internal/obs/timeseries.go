package obs

import (
	"sync"
	"time"
)

// TSPoint is one sample instant: a timestamp and the value of every
// sampled series at that instant.
type TSPoint struct {
	At     time.Time          `json:"at"`
	Values map[string]float64 `json:"values"`
}

// TSSource produces the series values for one sample. It is called with
// a sample callback and must invoke it once per series. The indirection
// lets tests feed deterministic values and lets the service layer merge
// its own gauges with the registry's.
type TSSource func(sample func(name string, v float64))

// RegistrySource samples every counter and gauge in the process-global
// registry.
func RegistrySource() TSSource {
	return func(sample func(string, float64)) {
		for _, f := range Families() {
			sample(f.Name, f.Value)
		}
	}
}

// TimeSeries is a fixed-capacity in-process ring TSDB: it samples its
// sources every interval and retains the most recent capacity points.
// With a 5s interval and 720 points the window is an hour of trends —
// QPS, latency, repair cost — queryable from a single ovmd without an
// external Prometheus.
type TimeSeries struct {
	mu      sync.Mutex
	sources []TSSource
	ring    []TSPoint
	next    int
	full    bool

	stop chan struct{}
	done chan struct{}
}

// NewTimeSeries creates a ring retaining up to capacity samples drawn
// from the given sources. capacity <= 0 selects 720 points.
func NewTimeSeries(capacity int, sources ...TSSource) *TimeSeries {
	if capacity <= 0 {
		capacity = 720
	}
	return &TimeSeries{sources: sources, ring: make([]TSPoint, capacity)}
}

// Sample takes one sample immediately at the given instant. Exposed so
// tests (and Start's ticker loop) drive sampling explicitly.
func (t *TimeSeries) Sample(at time.Time) {
	vals := make(map[string]float64)
	for _, src := range t.sources {
		src(func(name string, v float64) { vals[name] = v })
	}
	t.mu.Lock()
	t.ring[t.next] = TSPoint{At: at, Values: vals}
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Start launches the background sampler: one sample immediately, then
// one per interval until Stop. Call Stop before discarding the ring.
func (t *TimeSeries) Start(interval time.Duration) {
	if t.stop != nil {
		return
	}
	t.stop = make(chan struct{})
	t.done = make(chan struct{})
	t.Sample(time.Now())
	go func() {
		defer close(t.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case at := <-tick.C:
				t.Sample(at)
			case <-t.stop:
				return
			}
		}
	}()
}

// Stop halts the background sampler and waits for it to exit. Safe to
// call when Start was never called.
func (t *TimeSeries) Stop() {
	if t.stop == nil {
		return
	}
	close(t.stop)
	<-t.done
	t.stop = nil
	t.done = nil
}

// Window returns the retained samples with At >= now-window, oldest
// first. A zero window returns everything retained.
func (t *TimeSeries) Window(window time.Duration, now time.Time) []TSPoint {
	t.mu.Lock()
	n := t.next
	if t.full {
		n = len(t.ring)
	}
	pts := make([]TSPoint, 0, n)
	// Reassemble oldest→newest from the ring.
	if t.full {
		pts = append(pts, t.ring[t.next:]...)
		pts = append(pts, t.ring[:t.next]...)
	} else {
		pts = append(pts, t.ring[:n]...)
	}
	t.mu.Unlock()
	if window <= 0 {
		return pts
	}
	cutoff := now.Add(-window)
	for i, p := range pts {
		if !p.At.Before(cutoff) {
			return pts[i:]
		}
	}
	return pts[:0]
}
