package obs

import (
	"testing"
	"time"
)

// fakeSource returns a TSSource emitting one series whose value is read
// from v at sample time.
func fakeSource(name string, v *float64) TSSource {
	return func(sample func(string, float64)) { sample(name, *v) }
}

func TestTimeSeriesRingAndWindow(t *testing.T) {
	v := 0.0
	ts := NewTimeSeries(4, fakeSource("x", &v))
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 6; i++ {
		v = float64(i)
		ts.Sample(base.Add(time.Duration(i) * time.Second))
	}
	// Capacity 4, 6 samples: the ring retains samples 2..5, oldest first.
	pts := ts.Window(0, base)
	if len(pts) != 4 {
		t.Fatalf("retained %d points, want 4", len(pts))
	}
	for i, p := range pts {
		want := float64(i + 2)
		if p.Values["x"] != want {
			t.Errorf("point %d: x=%v, want %v", i, p.Values["x"], want)
		}
		if i > 0 && p.At.Before(pts[i-1].At) {
			t.Error("points not oldest-first")
		}
	}
	// A 2.5s window ending at the last sample keeps samples 3..5 → but
	// capacity already dropped 0..1, so expect the points at +3s, +4s, +5s.
	now := base.Add(5 * time.Second)
	got := ts.Window(2500*time.Millisecond, now)
	if len(got) != 3 {
		t.Fatalf("window kept %d points, want 3: %+v", len(got), got)
	}
	if got[0].Values["x"] != 3 {
		t.Errorf("window starts at x=%v, want 3", got[0].Values["x"])
	}
	// A window in the future keeps nothing.
	if far := ts.Window(time.Second, now.Add(time.Hour)); len(far) != 0 {
		t.Errorf("stale window kept %d points", len(far))
	}
}

func TestTimeSeriesStartStop(t *testing.T) {
	v := 1.0
	ts := NewTimeSeries(8, fakeSource("y", &v))
	ts.Start(time.Hour) // immediate sample; the ticker never fires in-test
	ts.Stop()
	ts.Stop() // idempotent
	pts := ts.Window(0, time.Now())
	if len(pts) != 1 || pts[0].Values["y"] != 1 {
		t.Fatalf("Start must take one immediate sample: %+v", pts)
	}
	// Stop without Start is a no-op.
	NewTimeSeries(1).Stop()
}

func TestRegistrySource(t *testing.T) {
	c := NewCounter("test_ts_registry_total", "help")
	c.Add(7)
	vals := make(map[string]float64)
	RegistrySource()(func(name string, v float64) { vals[name] = v })
	if vals["test_ts_registry_total"] != 7 {
		t.Errorf("registry source sampled %v, want 7", vals["test_ts_registry_total"])
	}
}
