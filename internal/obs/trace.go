package obs

import (
	"encoding/json"
	"sort"
	"sync"
	"time"
)

// Span is one timed phase of a request: a name, a duration, and optional
// child stages (cache-lookup, singleflight-wait, selection, ...). A span
// belongs to the goroutine serving its request — it is not safe for
// concurrent mutation — but a finished span is immutable and may be
// shared (the slow-query log holds finished spans).
//
// All methods are nil-receiver safe, so instrumented code can thread an
// optional span without guarding every call site.
type Span struct {
	Name     string  `json:"name"`
	DurNs    int64   `json:"durNs"`
	Children []*Span `json:"stages,omitempty"`
	// Cost is the per-query work delta (registered-counter movement
	// attributable to this span), stamped by the query path when cost
	// accounting is enabled.
	Cost CostSnapshot `json:"cost,omitempty"`

	start time.Time
}

// NewSpan starts a root span.
func NewSpan(name string) *Span {
	return &Span{Name: name, start: time.Now()}
}

// StartChild starts a child stage and returns it; call End on the child
// when the stage finishes.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := NewSpan(name)
	s.Children = append(s.Children, c)
	return c
}

// Add appends an already-measured child stage (for phases whose duration
// was captured elsewhere, e.g. inside a singleflight closure).
func (s *Span) Add(name string, d time.Duration) {
	if s == nil {
		return
	}
	s.Children = append(s.Children, &Span{Name: name, DurNs: d.Nanoseconds()})
}

// End stamps the span's duration (first call wins) and returns it.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	if s.DurNs == 0 && !s.start.IsZero() {
		s.DurNs = time.Since(s.start).Nanoseconds()
	}
	return time.Duration(s.DurNs)
}

// Stage returns the named direct child, or nil.
func (s *Span) Stage(name string) *Span {
	if s == nil {
		return nil
	}
	for _, c := range s.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// SlowEntry is one retained slow query: when it finished, how long it
// took, identifying labels (endpoint, dataset, score, ...), and the full
// stage breakdown.
type SlowEntry struct {
	At     time.Time         `json:"at"`
	DurNs  int64             `json:"durNs"`
	Labels map[string]string `json:"labels,omitempty"`
	Span   *Span             `json:"span,omitempty"`
}

// SlowLog is a ring-buffered slow-query log: it retains the most recent
// Capacity entries whose duration met the threshold, evicting the oldest
// retained entry first (FIFO by arrival). Entries returns them slowest
// first, so the retained window reads as a top-N-by-duration list.
type SlowLog struct {
	mu          sync.Mutex
	thresholdNs int64
	ring        []SlowEntry
	next        int  // ring slot the next entry overwrites
	full        bool // the ring has wrapped at least once
	offered     int64
	retained    int64
}

// NewSlowLog creates a slow log retaining up to capacity entries with
// duration >= threshold. capacity <= 0 disables retention (Offer becomes
// a no-op).
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	l := &SlowLog{thresholdNs: threshold.Nanoseconds()}
	if capacity > 0 {
		l.ring = make([]SlowEntry, capacity)
	}
	return l
}

// Offer records an entry if it meets the threshold, evicting the oldest
// retained entry when the ring is full. Reports whether the entry was
// retained.
func (l *SlowLog) Offer(e SlowEntry) bool {
	if l == nil || len(l.ring) == 0 {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.offered++
	if e.DurNs < l.thresholdNs {
		return false
	}
	l.ring[l.next] = e
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
		l.full = true
	}
	l.retained++
	return true
}

// Entries returns the retained entries sorted by duration descending
// (ties: most recent first) — the top-N view of the current window.
func (l *SlowLog) Entries() []SlowEntry {
	if l == nil || len(l.ring) == 0 {
		return nil
	}
	l.mu.Lock()
	n := l.next
	if l.full {
		n = len(l.ring)
	}
	out := make([]SlowEntry, n)
	// Copy oldest→newest so the sort's tie-break below sees arrival order.
	if l.full {
		copy(out, l.ring[l.next:])
		copy(out[len(l.ring)-l.next:], l.ring[:l.next])
	} else {
		copy(out, l.ring[:n])
	}
	l.mu.Unlock()
	// out is oldest→newest; emit slowest-first, newest winning ties.
	idx := make([]int, len(out))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if out[idx[a]].DurNs != out[idx[b]].DurNs {
			return out[idx[a]].DurNs > out[idx[b]].DurNs
		}
		return idx[a] > idx[b]
	})
	sorted := make([]SlowEntry, len(out))
	for i, j := range idx {
		sorted[i] = out[j]
	}
	return sorted
}

// Threshold returns the retention threshold.
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return time.Duration(l.thresholdNs)
}

// DumpJSON writes the retained entries (slowest first) as a JSON array.
func (l *SlowLog) DumpJSON(enc *json.Encoder) error {
	entries := l.Entries()
	if entries == nil {
		entries = []SlowEntry{}
	}
	return enc.Encode(entries)
}
