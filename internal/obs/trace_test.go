package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpanStages(t *testing.T) {
	root := NewSpan("select-seeds")
	c := root.StartChild("cache-lookup")
	time.Sleep(time.Millisecond)
	c.End()
	root.Add("selection", 5*time.Millisecond)
	total := root.End()
	if total <= 0 {
		t.Fatal("root span has no duration")
	}
	if len(root.Children) != 2 {
		t.Fatalf("got %d children, want 2", len(root.Children))
	}
	if got := root.Stage("cache-lookup"); got == nil || got.DurNs <= 0 {
		t.Fatalf("cache-lookup stage missing or unmeasured: %+v", got)
	}
	if got := root.Stage("selection"); got == nil || got.DurNs != (5*time.Millisecond).Nanoseconds() {
		t.Fatalf("selection stage = %+v, want 5ms", got)
	}
	if root.Stage("nope") != nil {
		t.Fatal("unknown stage must return nil")
	}
	// End is first-call-wins.
	if again := root.End(); again != total {
		t.Fatalf("second End changed the duration: %v != %v", again, total)
	}
	// A nil span absorbs the whole API.
	var nilSpan *Span
	nilSpan.StartChild("x").Add("y", time.Second)
	nilSpan.End()
}

func TestSlowLogRingEviction(t *testing.T) {
	l := NewSlowLog(3, 0)
	for i, dur := range []int64{10, 20, 30, 40, 50} {
		ok := l.Offer(SlowEntry{DurNs: dur, Labels: map[string]string{"i": string(rune('a' + i))}})
		if !ok {
			t.Fatalf("entry %d not retained", i)
		}
	}
	// Capacity 3, FIFO eviction: 10 and 20 are gone; 30..50 remain,
	// slowest first.
	got := l.Entries()
	if len(got) != 3 {
		t.Fatalf("retained %d entries, want 3", len(got))
	}
	for i, want := range []int64{50, 40, 30} {
		if got[i].DurNs != want {
			t.Errorf("entry %d: durNs = %d, want %d (eviction must drop oldest first)", i, got[i].DurNs, want)
		}
	}
}

func TestSlowLogThresholdAndTies(t *testing.T) {
	l := NewSlowLog(4, 25*time.Nanosecond)
	if l.Offer(SlowEntry{DurNs: 10}) {
		t.Fatal("entry under the threshold was retained")
	}
	l.Offer(SlowEntry{DurNs: 30, Labels: map[string]string{"n": "first"}})
	l.Offer(SlowEntry{DurNs: 30, Labels: map[string]string{"n": "second"}})
	got := l.Entries()
	if len(got) != 2 {
		t.Fatalf("retained %d, want 2", len(got))
	}
	if got[0].Labels["n"] != "second" {
		t.Errorf("equal durations must order most-recent first, got %q", got[0].Labels["n"])
	}
	if l.Threshold() != 25*time.Nanosecond {
		t.Errorf("Threshold = %v", l.Threshold())
	}
}

func TestSlowLogDisabledAndNil(t *testing.T) {
	for _, l := range []*SlowLog{nil, NewSlowLog(0, 0)} {
		if l.Offer(SlowEntry{DurNs: 100}) {
			t.Fatal("disabled slow log retained an entry")
		}
		if l.Entries() != nil {
			t.Fatal("disabled slow log returned entries")
		}
	}
}

func TestSlowLogDumpJSON(t *testing.T) {
	l := NewSlowLog(2, 0)
	span := NewSpan("q")
	span.Add("selection", 3*time.Millisecond)
	span.End()
	l.Offer(SlowEntry{At: time.Unix(1754000000, 0).UTC(), DurNs: span.DurNs, Labels: map[string]string{"endpoint": "select-seeds"}, Span: span})
	var buf bytes.Buffer
	if err := l.DumpJSON(json.NewEncoder(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"endpoint":"select-seeds"`, `"stages"`, `"selection"`} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %s:\n%s", want, out)
		}
	}
	var back []SlowEntry
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if len(back) != 1 || back[0].Span == nil || len(back[0].Span.Children) != 1 {
		t.Fatalf("round trip lost structure: %+v", back)
	}
}
