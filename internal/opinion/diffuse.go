package opinion

import (
	"fmt"

	"ovm/internal/engine"
	"ovm/internal/graph"
)

// Step performs one FJ update in place:
//
//	next[v] = (1 − stub[v]) · Σ_u w_uv · cur[u] + stub[v] · init[v]
//
// cur and next must not alias. All slices must have length g.N().
func Step(g *graph.Graph, cur, next, init, stub []float64) {
	n := int32(g.N())
	for v := int32(0); v < n; v++ {
		src, w := g.InNeighbors(v)
		acc := 0.0
		for i := range src {
			acc += w[i] * cur[src[i]]
		}
		d := stub[v]
		next[v] = (1-d)*acc + d*init[v]
	}
}

// Diffuser evaluates FJ opinions at a time horizon for a single candidate,
// reusing internal buffers across calls. It is the workhorse behind the DM
// (direct matrix-vector multiplication) greedy evaluator of §III-C: one
// Run costs O(t·m).
type Diffuser struct {
	c        *Candidate
	cur, nxt []float64
	effInit  []float64
	effStub  []float64
}

// NewDiffuser allocates a diffuser for candidate c.
func NewDiffuser(c *Candidate) *Diffuser {
	n := c.G.N()
	return &Diffuser{
		c:       c,
		cur:     make([]float64, n),
		nxt:     make([]float64, n),
		effInit: make([]float64, n),
		effStub: make([]float64, n),
	}
}

// Run returns B_q^(t)[S]: the opinions at horizon t with seed set seeds
// applied at time 0. The returned slice is owned by the Diffuser and is
// valid until the next call; copy it if you need to keep it.
func (d *Diffuser) Run(t int, seeds []int32) []float64 {
	copy(d.effInit, d.c.Init)
	copy(d.effStub, d.c.Stub)
	for _, s := range seeds {
		d.effInit[s] = 1
		d.effStub[s] = 1
	}
	copy(d.cur, d.effInit)
	for step := 0; step < t; step++ {
		Step(d.c.G, d.cur, d.nxt, d.effInit, d.effStub)
		d.cur, d.nxt = d.nxt, d.cur
	}
	return d.cur
}

// RunCopy is Run followed by a defensive copy.
func (d *Diffuser) RunCopy(t int, seeds []int32) []float64 {
	res := d.Run(t, seeds)
	out := make([]float64, len(res))
	copy(out, res)
	return out
}

// Trajectory returns the full opinion trajectory [B^(0), B^(1), …, B^(t)]
// (t+1 slices, each freshly allocated). Used by the Appendix-B churn study.
func (d *Diffuser) Trajectory(t int, seeds []int32) [][]float64 {
	copy(d.effInit, d.c.Init)
	copy(d.effStub, d.c.Stub)
	for _, s := range seeds {
		d.effInit[s] = 1
		d.effStub[s] = 1
	}
	out := make([][]float64, 0, t+1)
	copy(d.cur, d.effInit)
	snap := make([]float64, len(d.cur))
	copy(snap, d.cur)
	out = append(out, snap)
	for step := 0; step < t; step++ {
		Step(d.c.G, d.cur, d.nxt, d.effInit, d.effStub)
		d.cur, d.nxt = d.nxt, d.cur
		snap = make([]float64, len(d.cur))
		copy(snap, d.cur)
		out = append(out, snap)
	}
	return out
}

// OpinionsAt is a convenience one-shot wrapper around NewDiffuser + RunCopy.
func OpinionsAt(c *Candidate, t int, seeds []int32) []float64 {
	return NewDiffuser(c).RunCopy(t, seeds)
}

// Matrix computes the full opinion matrix B^(t)[S] for a system: row q holds
// candidate q's opinions at horizon t. Only the target candidate receives
// the seed set; all others diffuse seedless, matching the problem setup of
// §II-C (known/no seeds for non-targets). Candidate rows are independent
// diffusions, so they run concurrently on the engine worker pool
// (parallelism: 0 = GOMAXPROCS, 1 = serial); each row is deterministic,
// making the matrix identical at any worker count.
func Matrix(s *System, t int, target int, seeds []int32, parallelism int) ([][]float64, error) {
	if target < 0 || target >= s.R() {
		return nil, fmt.Errorf("opinion: target candidate %d out of range [0,%d)", target, s.R())
	}
	out := make([][]float64, s.R())
	_ = engine.ForEachShard(parallelism, s.R(), func(_, q int) error {
		var sd []int32
		if q == target {
			sd = seeds
		}
		out[q] = OpinionsAt(s.Candidate(q), t, sd)
		return nil
	})
	return out, nil
}

// MaxAbsDiff returns max_v |a[v] − b[v]|; used for convergence detection.
func MaxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// StepsToConverge runs FJ until successive iterates differ by at most tol
// in max-norm or maxSteps is reached. It returns the number of steps taken
// and whether convergence was declared.
func StepsToConverge(c *Candidate, seeds []int32, tol float64, maxSteps int) (int, bool) {
	d := NewDiffuser(c)
	copy(d.effInit, c.Init)
	copy(d.effStub, c.Stub)
	for _, s := range seeds {
		d.effInit[s] = 1
		d.effStub[s] = 1
	}
	copy(d.cur, d.effInit)
	for step := 1; step <= maxSteps; step++ {
		Step(c.G, d.cur, d.nxt, d.effInit, d.effStub)
		if MaxAbsDiff(d.cur, d.nxt) <= tol {
			return step, true
		}
		d.cur, d.nxt = d.nxt, d.cur
	}
	return maxSteps, false
}

// ObliviousNodes returns the nodes that are (1) non-stubborn and (2) not
// reachable from any (fully or partially) stubborn node along influence
// edges — the nodes whose presence decides FJ convergence (§II-A).
func ObliviousNodes(c *Candidate) []int32 {
	n := c.G.N()
	var stubborn []int32
	for v := 0; v < n; v++ {
		if c.Stub[v] > 0 {
			stubborn = append(stubborn, int32(v))
		}
	}
	reached := make([]bool, n)
	bfs := graph.NewBFS(c.G)
	bfs.MarkReachable(stubborn, n, reached) // n hops = unbounded for n nodes
	var out []int32
	for v := 0; v < n; v++ {
		if c.Stub[v] == 0 && !reached[v] {
			out = append(out, int32(v))
		}
	}
	return out
}

// ChurnFractions returns, for each step 1..t, the fraction of nodes whose
// opinion changed by more than tolerance·100% relative to the previous step:
// |b^(s) − b^(s−1)| > (Δ/100)·b^(s−1), per Appendix B (Fig 18).
func ChurnFractions(c *Candidate, seeds []int32, t int, deltaPct float64) []float64 {
	traj := NewDiffuser(c).Trajectory(t, seeds)
	out := make([]float64, 0, t)
	for s := 1; s <= t; s++ {
		changed := 0
		prev, cur := traj[s-1], traj[s]
		for v := range cur {
			if diff := cur[v] - prev[v]; diff > deltaPct/100*prev[v] || -diff > deltaPct/100*prev[v] {
				changed++
			}
		}
		out = append(out, float64(changed)/float64(len(cur)))
	}
	return out
}
