package opinion_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ovm/internal/graph"
	"ovm/internal/opinion"
	"ovm/internal/paperexample"
)

func randomCandidate(t *testing.T, r *rand.Rand, n int) *opinion.Candidate {
	t.Helper()
	b := graph.NewBuilder(n)
	for i := 0; i < 5*n; i++ {
		_ = b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)), r.Float64()+0.01)
	}
	g, err := b.BuildColumnStochastic()
	if err != nil {
		t.Fatal(err)
	}
	init := make([]float64, n)
	stub := make([]float64, n)
	for i := range init {
		init[i] = r.Float64()
		stub[i] = r.Float64()
	}
	return &opinion.Candidate{Name: "rand", G: g, Init: init, Stub: stub}
}

// TestTableIExact reproduces every row of the paper's Table I exactly
// (within display rounding of 1e-9 on the underlying exact values).
func TestTableIExact(t *testing.T) {
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	// Competitor opinions at horizon, no seeds.
	c2 := opinion.OpinionsAt(sys.Candidate(1), paperexample.Horizon, nil)
	for v := 0; v < 4; v++ {
		if math.Abs(c2[v]-paperexample.C2AtHorizon[v]) > 1e-12 {
			t.Errorf("c2 opinion of user %d = %v, want %v", v+1, c2[v], paperexample.C2AtHorizon[v])
		}
	}
	for _, row := range paperexample.TableI {
		got := opinion.OpinionsAt(sys.Candidate(0), paperexample.Horizon, row.Seeds)
		for v := 0; v < 4; v++ {
			if math.Abs(got[v]-row.Opinions[v]) > 1e-12 {
				t.Errorf("seeds %v: user %d opinion = %v, want %v",
					paperexample.SeedLabel(row.Seeds), v+1, got[v], row.Opinions[v])
			}
		}
	}
}

func TestValidateRejectsBadInput(t *testing.T) {
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	good := sys.Candidate(0)

	c := *good
	c.Init = []float64{0.5} // wrong length
	if err := c.Validate(); err == nil {
		t.Error("expected length error for Init")
	}
	c = *good
	c.Stub = []float64{0.5}
	if err := c.Validate(); err == nil {
		t.Error("expected length error for Stub")
	}
	c = *good
	c.Init = []float64{0.4, 0.8, 1.5, 0.9} // out of range
	if err := c.Validate(); err == nil {
		t.Error("expected range error for Init")
	}
	c = *good
	c.Stub = []float64{0, 0, -0.1, 0}
	if err := c.Validate(); err == nil {
		t.Error("expected range error for Stub")
	}
	c = *good
	c.G = nil
	if err := c.Validate(); err == nil {
		t.Error("expected error for nil graph")
	}
	// Non-stochastic graph.
	b := graph.NewBuilder(4)
	_ = b.AddEdge(0, 1, 0.2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c = *good
	c.G = g
	if err := c.Validate(); err == nil {
		t.Error("expected error for non-stochastic graph")
	}
}

func TestNewSystemRejectsSingleCandidate(t *testing.T) {
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := opinion.NewSystem(sys.Candidates()[:1]); err == nil {
		t.Error("expected error for r=1")
	}
}

func TestOpinionsStayInRange(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomCandidate(t, r, 10+r.Intn(30))
		horizon := r.Intn(15)
		var seeds []int32
		for i := 0; i < r.Intn(4); i++ {
			seeds = append(seeds, int32(r.Intn(c.G.N())))
		}
		res := opinion.OpinionsAt(c, horizon, seeds)
		for _, b := range res {
			if b < -1e-12 || b > 1+1e-12 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func TestHorizonZeroReturnsSeededInit(t *testing.T) {
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	got := opinion.OpinionsAt(sys.Candidate(0), 0, []int32{2})
	want := []float64{0.40, 0.80, 1.00, 0.90}
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-15 {
			t.Errorf("t=0 opinion[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestSeedsStayPinnedForever(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	c := randomCandidate(t, r, 25)
	seeds := []int32{3, 17}
	for _, horizon := range []int{1, 5, 20} {
		res := opinion.OpinionsAt(c, horizon, seeds)
		for _, s := range seeds {
			if math.Abs(res[s]-1) > 1e-12 {
				t.Errorf("t=%d: seed %d opinion %v, want 1", horizon, s, res[s])
			}
		}
	}
}

func TestFullyStubbornKeepInitial(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	c := randomCandidate(t, r, 20)
	for i := range c.Stub {
		c.Stub[i] = 1
	}
	res := opinion.OpinionsAt(c, 10, nil)
	for v := range res {
		if math.Abs(res[v]-c.Init[v]) > 1e-12 {
			t.Errorf("fully stubborn node %d moved from %v to %v", v, c.Init[v], res[v])
		}
	}
}

// TestAgainstDenseReference cross-checks the CSR engine against a naive
// dense matrix implementation on random instances.
func TestAgainstDenseReference(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	for trial := 0; trial < 10; trial++ {
		n := 4 + r.Intn(12)
		c := randomCandidate(t, r, n)
		horizon := r.Intn(8)
		var seeds []int32
		if r.Intn(2) == 1 {
			seeds = append(seeds, int32(r.Intn(n)))
		}
		// Dense W: W[u][v] = weight of edge u→v.
		W := make([][]float64, n)
		for u := range W {
			W[u] = make([]float64, n)
		}
		for v := int32(0); v < int32(n); v++ {
			src, w := c.G.InNeighbors(v)
			for i := range src {
				W[src[i]][v] += w[i]
			}
		}
		init, stub := opinion.ApplySeeds(c.Init, c.Stub, seeds)
		cur := append([]float64(nil), init...)
		for s := 0; s < horizon; s++ {
			next := make([]float64, n)
			for v := 0; v < n; v++ {
				acc := 0.0
				for u := 0; u < n; u++ {
					acc += W[u][v] * cur[u]
				}
				next[v] = (1-stub[v])*acc + stub[v]*init[v]
			}
			cur = next
		}
		got := opinion.OpinionsAt(c, horizon, seeds)
		for v := 0; v < n; v++ {
			if math.Abs(got[v]-cur[v]) > 1e-9 {
				t.Fatalf("trial %d: node %d: CSR %v vs dense %v", trial, v, got[v], cur[v])
			}
		}
	}
}

// TestMonotoneInSeeds checks the §III-B fact that opinions are
// non-decreasing w.r.t. seed-set inclusion.
func TestMonotoneInSeeds(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 8 + r.Intn(20)
		c := randomCandidate(t, r, n)
		horizon := 1 + r.Intn(8)
		s1 := []int32{int32(r.Intn(n))}
		s2 := append([]int32{int32(r.Intn(n))}, s1...)
		base := opinion.OpinionsAt(c, horizon, s1)
		more := opinion.OpinionsAt(c, horizon, s2)
		for v := range base {
			if more[v] < base[v]-1e-12 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}

// TestSubmodularOpinions verifies Theorem 3 on random instances:
// b_qi^(t)[X∪{s}] − b_qi^(t)[X] ≥ b_qi^(t)[Y∪{s}] − b_qi^(t)[Y] for X ⊆ Y.
func TestSubmodularOpinions(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 8 + r.Intn(15)
		c := randomCandidate(t, r, n)
		horizon := 1 + r.Intn(6)
		x := []int32{int32(r.Intn(n))}
		y := append([]int32{int32(r.Intn(n))}, x...)
		s := int32(r.Intn(n))
		bx := opinion.OpinionsAt(c, horizon, x)
		bxs := opinion.OpinionsAt(c, horizon, append([]int32{s}, x...))
		by := opinion.OpinionsAt(c, horizon, y)
		bys := opinion.OpinionsAt(c, horizon, append([]int32{s}, y...))
		for v := 0; v < n; v++ {
			if (bxs[v] - bx[v]) < (bys[v]-by[v])-1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}

func TestDeGrootConsensusOnCompleteGraph(t *testing.T) {
	// On a strongly connected aperiodic graph with D=0, DeGroot converges;
	// with uniform weights the consensus is the average of initials.
	n := 6
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			_ = b.AddEdge(int32(u), int32(v), 1)
		}
	}
	g, err := b.BuildColumnStochastic()
	if err != nil {
		t.Fatal(err)
	}
	init := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
	c := &opinion.Candidate{Name: "c", G: g, Init: init, Stub: make([]float64, n)}
	res := opinion.OpinionsAt(c, 50, nil)
	want := 0.5
	for v := range res {
		if math.Abs(res[v]-want) > 1e-9 {
			t.Errorf("node %d = %v, want consensus %v", v, res[v], want)
		}
	}
	steps, ok := opinion.StepsToConverge(c, nil, 1e-12, 100)
	if !ok {
		t.Errorf("did not converge in 100 steps (took %d)", steps)
	}
}

func TestObliviousNodes(t *testing.T) {
	// Path 0→1→2 with self-loops; only node 0 stubborn → nobody oblivious
	// downstream; add isolated node 3 (self-loop, non-stubborn) → oblivious.
	b := graph.NewBuilder(4)
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(1, 2, 1)
	g, err := b.BuildColumnStochastic()
	if err != nil {
		t.Fatal(err)
	}
	c := &opinion.Candidate{
		Name: "c", G: g,
		Init: []float64{1, 0, 0, 0.5},
		Stub: []float64{0.5, 0, 0, 0},
	}
	obl := opinion.ObliviousNodes(c)
	if len(obl) != 1 || obl[0] != 3 {
		t.Errorf("oblivious = %v, want [3]", obl)
	}
}

func TestTrajectoryAndChurn(t *testing.T) {
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	c := sys.Candidate(0)
	traj := opinion.NewDiffuser(c).Trajectory(3, nil)
	if len(traj) != 4 {
		t.Fatalf("trajectory length %d, want 4", len(traj))
	}
	// t=0 equals Init, t=1 equals Table I row 0.
	for v := 0; v < 4; v++ {
		if traj[0][v] != c.Init[v] {
			t.Errorf("trajectory[0][%d] = %v, want Init", v, traj[0][v])
		}
		if math.Abs(traj[1][v]-paperexample.TableI[0].Opinions[v]) > 1e-12 {
			t.Errorf("trajectory[1][%d] = %v, want Table I", v, traj[1][v])
		}
	}
	churn := opinion.ChurnFractions(c, nil, 3, 1)
	if len(churn) != 3 {
		t.Fatalf("churn length %d, want 3", len(churn))
	}
	// At step 1, users 3 and 4 change (user 3: 0.60→0.60 unchanged!
	// Actually 0.60→0.60: b3' = ½·0.60 + ¼·(0.40+0.80) = 0.60; user 4:
	// 0.90→0.75 changes). So churn[0] = 1/4.
	if math.Abs(churn[0]-0.25) > 1e-12 {
		t.Errorf("churn[0] = %v, want 0.25", churn[0])
	}
	// Churn must eventually decay on this DAG-like instance.
	if churn[2] > churn[0]+1e-12 {
		t.Errorf("churn should decay: %v", churn)
	}
}

func TestMatrix(t *testing.T) {
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	B, err := opinion.Matrix(sys, 1, 0, []int32{2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(B) != 2 {
		t.Fatalf("matrix rows = %d, want 2", len(B))
	}
	// Row 0 = seeded c1 (Table I row for {3}); row 1 = unseeded c2.
	want := paperexample.TableI[3].Opinions
	for v := 0; v < 4; v++ {
		if math.Abs(B[0][v]-want[v]) > 1e-12 {
			t.Errorf("B[0][%d] = %v, want %v", v, B[0][v], want[v])
		}
		if math.Abs(B[1][v]-paperexample.C2AtHorizon[v]) > 1e-12 {
			t.Errorf("B[1][%d] = %v, want %v", v, B[1][v], paperexample.C2AtHorizon[v])
		}
	}
	if _, err := opinion.Matrix(sys, 1, 5, nil, 1); err == nil {
		t.Error("expected error for bad target")
	}
}

func TestApplySeedsDoesNotMutate(t *testing.T) {
	init := []float64{0.1, 0.2}
	stub := []float64{0.3, 0.4}
	ei, es := opinion.ApplySeeds(init, stub, []int32{1})
	if init[1] != 0.2 || stub[1] != 0.4 {
		t.Error("ApplySeeds mutated its inputs")
	}
	if ei[1] != 1 || es[1] != 1 {
		t.Error("ApplySeeds did not pin the seed")
	}
	if ei[0] != 0.1 || es[0] != 0.3 {
		t.Error("ApplySeeds corrupted non-seed entries")
	}
}
