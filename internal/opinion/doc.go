// Package opinion implements the opinion-diffusion substrate of §II-A:
// the Friedkin–Johnsen (FJ) model
//
//	B_q^(t+1) = B_q^(t) · W_q · (I − D_q) + B_q^(0) · D_q
//
// and its DeGroot special case (D = 0), over column-stochastic influence
// graphs. It provides the seed-application semantics of §II-C (seeding node
// s sets b_qs^(0) = 1 and d_qs = 1), reusable diffusion buffers for the
// greedy evaluators, multi-candidate systems, convergence and oblivious-node
// detection, and per-step opinion-churn traces used by the Appendix-B
// experiment (Fig 18).
//
// Node-wise, one FJ step computes
//
//	b_v ← (1 − d_v) · Σ_u w_uv · b_u  +  d_v · b_v^(0)
//
// which costs O(m) per step via the in-CSR adjacency.
package opinion
