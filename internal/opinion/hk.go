package opinion

import (
	"fmt"
	"sort"

	"ovm/internal/graph"
)

// This file implements the bounded-confidence models discussed in §VII and
// named in the paper's future work ("more opinion diffusion models"): the
// Hegselmann–Krause (HK) dynamics, where a user averages only the opinions
// of in-neighbors whose current opinion lies within a confidence radius ε
// of her own. Unlike FJ, the HK operator is state-dependent (non-linear),
// so the random-walk and sketch estimators do not apply; the engine here
// supports exact simulation, which the experiments use to stress-test how
// FJ-optimized seed sets fare under a different dynamics.

// HKParams configures a bounded-confidence diffusion.
type HKParams struct {
	// Epsilon is the confidence radius: only in-neighbors with
	// |b_u − b_v| ≤ Epsilon influence v. Epsilon ≥ 1 recovers DeGroot
	// (with stubbornness handled as in FJ).
	Epsilon float64
}

// Validate checks the parameters.
func (p HKParams) Validate() error {
	if p.Epsilon < 0 {
		return fmt.Errorf("opinion: HK epsilon must be non-negative, got %v", p.Epsilon)
	}
	return nil
}

// HKStep performs one bounded-confidence update:
//
//	next[v] = (1−d_v) · Σ_{u : |cur_u − cur_v| ≤ ε} w_uv·cur_u / W_v  +  d_v·init[v]
//
// where W_v renormalizes over the confident in-neighbors; a node with no
// confident in-neighbor keeps its current opinion (up to stubbornness).
func HKStep(g *graph.Graph, eps float64, cur, next, init, stub []float64) {
	n := int32(g.N())
	for v := int32(0); v < n; v++ {
		src, w := g.InNeighbors(v)
		acc, mass := 0.0, 0.0
		bv := cur[v]
		for i := range src {
			bu := cur[src[i]]
			if bu-bv <= eps && bv-bu <= eps {
				acc += w[i] * bu
				mass += w[i]
			}
		}
		blend := bv
		if mass > 0 {
			blend = acc / mass
		}
		d := stub[v]
		next[v] = (1-d)*blend + d*init[v]
	}
}

// HKOpinionsAt simulates the bounded-confidence dynamics for t steps with
// the usual seeding semantics (seeds pinned at opinion 1, stubbornness 1).
func HKOpinionsAt(c *Candidate, p HKParams, t int, seeds []int32) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if t < 0 {
		return nil, fmt.Errorf("opinion: negative horizon %d", t)
	}
	init, stub := ApplySeeds(c.Init, c.Stub, seeds)
	cur := append([]float64(nil), init...)
	next := make([]float64, len(cur))
	for step := 0; step < t; step++ {
		HKStep(c.G, p.Epsilon, cur, next, init, stub)
		cur, next = next, cur
	}
	return cur, nil
}

// HKMatrix computes the full horizon-t HK opinion matrix with seeds applied
// to the target candidate only, mirroring Matrix.
func HKMatrix(s *System, p HKParams, t, target int, seeds []int32) ([][]float64, error) {
	if target < 0 || target >= s.R() {
		return nil, fmt.Errorf("opinion: target candidate %d out of range [0,%d)", target, s.R())
	}
	out := make([][]float64, s.R())
	for q := 0; q < s.R(); q++ {
		var sd []int32
		if q == target {
			sd = seeds
		}
		row, err := HKOpinionsAt(s.Candidate(q), p, t, sd)
		if err != nil {
			return nil, err
		}
		out[q] = row
	}
	return out, nil
}

// ClusterCount returns the number of opinion clusters at resolution eps:
// opinions sorted and split wherever the gap exceeds eps. The classic HK
// diagnostic (consensus = 1 cluster, polarization = 2, fragmentation > 2).
func ClusterCount(opinions []float64, eps float64) int {
	if len(opinions) == 0 {
		return 0
	}
	sorted := append([]float64(nil), opinions...)
	sort.Float64s(sorted)
	clusters := 1
	for i := 1; i < len(sorted); i++ {
		if sorted[i]-sorted[i-1] > eps {
			clusters++
		}
	}
	return clusters
}
