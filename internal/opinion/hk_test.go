package opinion_test

import (
	"math"
	"math/rand"
	"testing"

	"ovm/internal/opinion"
	"ovm/internal/paperexample"
)

func TestHKLargeEpsilonMatchesFJ(t *testing.T) {
	// With ε ≥ 1 every in-neighbor is confident; since the in-weights
	// already sum to 1, renormalization is a no-op and HK coincides with FJ.
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	c := sys.Candidate(0)
	for _, horizon := range []int{0, 1, 3, 7} {
		for _, seeds := range [][]int32{nil, {2}} {
			fj := opinion.OpinionsAt(c, horizon, seeds)
			hk, err := opinion.HKOpinionsAt(c, opinion.HKParams{Epsilon: 1}, horizon, seeds)
			if err != nil {
				t.Fatal(err)
			}
			for v := range fj {
				if math.Abs(fj[v]-hk[v]) > 1e-12 {
					t.Fatalf("t=%d seeds=%v node %d: HK %v vs FJ %v", horizon, seeds, v, hk[v], fj[v])
				}
			}
		}
	}
}

func TestHKZeroEpsilonFreezesOpinions(t *testing.T) {
	// ε = 0 with distinct neighbor opinions: only exactly-equal neighbors
	// influence; on the paper example with distinct initials, nodes keep
	// their own value (self-loops are always confident).
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	c := sys.Candidate(0)
	hk, err := opinion.HKOpinionsAt(c, opinion.HKParams{Epsilon: 0}, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := range hk {
		if math.Abs(hk[v]-c.Init[v]) > 1e-12 {
			t.Errorf("node %d moved from %v to %v under eps=0", v, c.Init[v], hk[v])
		}
	}
}

func TestHKOpinionsStayInRange(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	c := randomCandidate(t, r, 30)
	for _, eps := range []float64{0.05, 0.2, 0.5} {
		res, err := opinion.HKOpinionsAt(c, opinion.HKParams{Epsilon: eps}, 10, []int32{3})
		if err != nil {
			t.Fatal(err)
		}
		for v, b := range res {
			if b < -1e-12 || b > 1+1e-12 {
				t.Fatalf("eps=%v node %d: opinion %v outside [0,1]", eps, v, b)
			}
		}
		// Seeds pinned.
		if math.Abs(res[3]-1) > 1e-12 {
			t.Errorf("eps=%v: seed opinion %v, want 1", eps, res[3])
		}
	}
}

func TestHKErrors(t *testing.T) {
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	c := sys.Candidate(0)
	if _, err := opinion.HKOpinionsAt(c, opinion.HKParams{Epsilon: -1}, 1, nil); err == nil {
		t.Error("expected error for negative epsilon")
	}
	if _, err := opinion.HKOpinionsAt(c, opinion.HKParams{Epsilon: 0.1}, -1, nil); err == nil {
		t.Error("expected error for negative horizon")
	}
	if _, err := opinion.HKMatrix(sys, opinion.HKParams{Epsilon: 0.1}, 1, 9, nil); err == nil {
		t.Error("expected error for bad target")
	}
}

func TestHKMatrixShape(t *testing.T) {
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	B, err := opinion.HKMatrix(sys, opinion.HKParams{Epsilon: 1}, 1, 0, []int32{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(B) != 2 || len(B[0]) != 4 {
		t.Fatalf("matrix shape %dx%d, want 2x4", len(B), len(B[0]))
	}
	// ε=1 HK == FJ: row 0 must match Table I's {3} row.
	want := paperexample.TableI[3].Opinions
	for v := 0; v < 4; v++ {
		if math.Abs(B[0][v]-want[v]) > 1e-12 {
			t.Errorf("B[0][%d] = %v, want %v", v, B[0][v], want[v])
		}
	}
}

func TestClusterCount(t *testing.T) {
	cases := []struct {
		xs   []float64
		eps  float64
		want int
	}{
		{nil, 0.1, 0},
		{[]float64{0.5}, 0.1, 1},
		{[]float64{0.1, 0.15, 0.8, 0.85}, 0.2, 2},
		{[]float64{0.1, 0.5, 0.9}, 0.2, 3},
		{[]float64{0.1, 0.5, 0.9}, 0.5, 1},
	}
	for _, c := range cases {
		if got := opinion.ClusterCount(c.xs, c.eps); got != c.want {
			t.Errorf("ClusterCount(%v, %v) = %d, want %d", c.xs, c.eps, got, c.want)
		}
	}
}

func TestHKPolarizes(t *testing.T) {
	// Small confidence radius on a polarized population should preserve at
	// least two clusters, while DeGroot (ε=1, no stubbornness) merges them
	// on a connected graph. Build a two-camp complete graph.
	r := rand.New(rand.NewSource(9))
	n := 20
	c := randomCandidate(t, r, n)
	for v := 0; v < n; v++ {
		c.Stub[v] = 0
		if v < n/2 {
			c.Init[v] = 0.1 + 0.02*r.Float64()
		} else {
			c.Init[v] = 0.9 + 0.02*r.Float64()
		}
	}
	narrow, err := opinion.HKOpinionsAt(c, opinion.HKParams{Epsilon: 0.1}, 30, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := opinion.ClusterCount(narrow, 0.3); got < 2 {
		t.Errorf("narrow confidence should preserve polarization, got %d clusters", got)
	}
}
