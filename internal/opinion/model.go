package opinion

import (
	"fmt"

	"ovm/internal/graph"
)

// Candidate bundles the per-candidate diffusion inputs: the influence graph
// W_q (column-stochastic), the initial opinion vector B_q^(0), and the
// stubbornness diagonal D_q.
type Candidate struct {
	Name string
	G    *graph.Graph
	Init []float64 // b_q^(0), values in [0,1]
	Stub []float64 // d_q, values in [0,1]; 0 = DeGroot, 1 = fully stubborn
}

// Validate checks dimension and range invariants.
func (c *Candidate) Validate() error {
	if c.G == nil {
		return fmt.Errorf("opinion: candidate %q has no graph", c.Name)
	}
	n := c.G.N()
	if len(c.Init) != n {
		return fmt.Errorf("opinion: candidate %q: len(Init)=%d, want %d", c.Name, len(c.Init), n)
	}
	if len(c.Stub) != n {
		return fmt.Errorf("opinion: candidate %q: len(Stub)=%d, want %d", c.Name, len(c.Stub), n)
	}
	if v := c.G.CheckColumnStochastic(1e-6); v >= 0 {
		return fmt.Errorf("opinion: candidate %q: influence weights of node %d do not sum to 1", c.Name, v)
	}
	for i, b := range c.Init {
		if b < 0 || b > 1 {
			return fmt.Errorf("opinion: candidate %q: Init[%d]=%v outside [0,1]", c.Name, i, b)
		}
	}
	for i, d := range c.Stub {
		if d < 0 || d > 1 {
			return fmt.Errorf("opinion: candidate %q: Stub[%d]=%v outside [0,1]", c.Name, i, d)
		}
	}
	return nil
}

// System is a multi-candidate opinion world over a common node set.
// Candidate 0..r-1 diffuse concurrently and independently (§II-B).
type System struct {
	n     int
	cands []*Candidate
}

// NewSystem validates and assembles a system. At least two candidates are
// required (the problem is only defined for r > 1).
func NewSystem(cands []*Candidate) (*System, error) {
	if len(cands) < 2 {
		return nil, fmt.Errorf("opinion: need at least 2 candidates, got %d", len(cands))
	}
	n := cands[0].G.N()
	for _, c := range cands {
		if err := c.Validate(); err != nil {
			return nil, err
		}
		if c.G.N() != n {
			return nil, fmt.Errorf("opinion: candidate %q has %d nodes, want %d", c.Name, c.G.N(), n)
		}
	}
	return &System{n: n, cands: cands}, nil
}

// N returns the number of users.
func (s *System) N() int { return s.n }

// R returns the number of candidates.
func (s *System) R() int { return len(s.cands) }

// Candidate returns candidate q.
func (s *System) Candidate(q int) *Candidate { return s.cands[q] }

// Candidates returns the candidate slice (shared; do not mutate).
func (s *System) Candidates() []*Candidate { return s.cands }

// ApplySeeds returns copies of init and stub with every seed node set to
// initial opinion 1 and stubbornness 1 (the seeding semantics of §II-C).
func ApplySeeds(init, stub []float64, seeds []int32) (effInit, effStub []float64) {
	effInit = make([]float64, len(init))
	effStub = make([]float64, len(stub))
	copy(effInit, init)
	copy(effStub, stub)
	for _, s := range seeds {
		effInit[s] = 1
		effStub[s] = 1
	}
	return effInit, effStub
}
