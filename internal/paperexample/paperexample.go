// Package paperexample reconstructs the running example of the paper
// (Figure 1, Example 1/2, Table I): a 4-user graph with two candidates whose
// FJ diffusion at horizon t = 1 is reported digit-for-digit in Table I.
// It serves as the repository's exactness anchor: unit tests across the
// voting, core, and experiment packages assert against these values.
//
// Reconstruction notes. The paper states the update rules
//
//	b3' = ½·[b3 + ½(b1 + b2)]    b4' = ½·[b3 + b4]
//
// and that users 1, 2 keep their initial opinions. This is realized as a
// column-stochastic graph with edges (0-indexed)
//
//	0→2 (¼), 1→2 (¼), 2→2 (½), 2→3 (½), 3→3 (½), 0→0 (1), 1→1 (1)
//
// with zero stubbornness everywhere. Initial opinions are inverted from
// Table I's t = 1 rows: B_c1^(0) = [0.40, 0.80, 0.60, 0.90] and
// B_c2^(0) = [0.35, 0.75, 1.00, 0.80] (the paper's "0.78" for user 3 about
// c2 at t = 1 is 0.775 after rounding).
package paperexample

import (
	"fmt"

	"ovm/internal/graph"
	"ovm/internal/opinion"
)

// Horizon is the time horizon used by Table I.
const Horizon = 1

// Target is the target candidate index (c1).
const Target = 0

// TableIRow is one row of Table I.
type TableIRow struct {
	Seeds      []int32 // 0-indexed seed set for c1
	Opinions   [4]float64
	Cumulative float64
	Plurality  float64
	Copeland   float64
}

// New builds the Figure-1 two-candidate system.
func New() (*opinion.System, error) {
	b := graph.NewBuilder(4)
	edges := []graph.Edge{
		{From: 0, To: 2, W: 0.25},
		{From: 1, To: 2, W: 0.25},
		{From: 2, To: 2, W: 0.5},
		{From: 2, To: 3, W: 0.5},
		{From: 3, To: 3, W: 0.5},
	}
	if err := b.AddEdges(edges); err != nil {
		return nil, err
	}
	g, err := b.BuildColumnStochastic()
	if err != nil {
		return nil, err
	}
	zeros := make([]float64, 4)
	c1 := &opinion.Candidate{
		Name: "c1",
		G:    g,
		Init: []float64{0.40, 0.80, 0.60, 0.90},
		Stub: append([]float64(nil), zeros...),
	}
	c2 := &opinion.Candidate{
		Name: "c2",
		G:    g,
		Init: []float64{0.35, 0.75, 1.00, 0.80},
		Stub: append([]float64(nil), zeros...),
	}
	return opinion.NewSystem([]*opinion.Candidate{c1, c2})
}

// C2AtHorizon is the competing candidate's opinion vector at t = 1 without
// seeds, as printed in Table I's caption (user 3 exact value is 0.775,
// rounded to 0.78 in the paper).
var C2AtHorizon = [4]float64{0.35, 0.75, 0.775, 0.90}

// TableI lists every row of Table I (seed sets are 0-indexed; the paper is
// 1-indexed).
var TableI = []TableIRow{
	{Seeds: nil, Opinions: [4]float64{0.40, 0.80, 0.60, 0.75}, Cumulative: 2.55, Plurality: 2, Copeland: 0},
	{Seeds: []int32{0}, Opinions: [4]float64{1.00, 0.80, 0.75, 0.75}, Cumulative: 3.30, Plurality: 2, Copeland: 0},
	{Seeds: []int32{1}, Opinions: [4]float64{0.40, 1.00, 0.65, 0.75}, Cumulative: 2.80, Plurality: 2, Copeland: 0},
	{Seeds: []int32{2}, Opinions: [4]float64{0.40, 0.80, 1.00, 0.95}, Cumulative: 3.15, Plurality: 4, Copeland: 1},
	{Seeds: []int32{3}, Opinions: [4]float64{0.40, 0.80, 0.60, 1.00}, Cumulative: 2.80, Plurality: 3, Copeland: 1},
	{Seeds: []int32{0, 1}, Opinions: [4]float64{1.00, 1.00, 0.80, 0.75}, Cumulative: 3.55, Plurality: 3, Copeland: 1},
}

// SeedLabel renders a 0-indexed seed set in the paper's 1-indexed notation,
// e.g. {1, 2}.
func SeedLabel(seeds []int32) string {
	if len(seeds) == 0 {
		return "{}"
	}
	s := "{"
	for i, v := range seeds {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprint(v + 1)
	}
	return s + "}"
}
