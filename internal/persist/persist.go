// Package persist owns the crash-consistent index persistence sequence:
// atomic rewrite via temp file + fsync + rename + directory fsync, stale
// temp-file cleanup after a crash, and corruption quarantine at load time.
// All mutating file operations route through an iofault.FS, so torture
// tests can inject an error, a torn write, or a simulated crash at every
// single operation and assert the old-or-new invariant.
package persist

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"ovm/internal/iofault"
	"ovm/internal/serialize"
)

// tempPattern returns the os.CreateTemp pattern used for path's rewrite
// temps; CleanStaleTemps matches the same shape.
func tempPattern(base string) string { return base + ".tmp-*" }

// WriteIndexAtomic rewrites the index file at path via a temp file + fsync
// + rename (+ directory fsync), so a crash — even a power loss — leaves
// either the old complete file or the new complete file, with the original
// permissions preserved. On every error path the temp file is removed; only
// a crash between CreateTemp and the cleanup can leave one behind, which
// CleanStaleTemps sweeps at the next startup.
func WriteIndexAtomic(fsys iofault.FS, path string, idx *serialize.Index) error {
	mode := fs.FileMode(0o644)
	if info, err := fsys.Stat(path); err == nil {
		mode = info.Mode().Perm()
	}
	tmp, err := fsys.CreateTemp(filepath.Dir(path), tempPattern(filepath.Base(path)))
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		_ = tmp.Close()
		_ = fsys.Remove(tmp.Name())
		return err
	}
	if err := serialize.WriteIndexV3(tmp, idx, serialize.V3Options{}); err != nil {
		return cleanup(err)
	}
	if err := tmp.Chmod(mode); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		_ = fsys.Remove(tmp.Name())
		return err
	}
	if err := fsys.Rename(tmp.Name(), path); err != nil {
		_ = fsys.Remove(tmp.Name())
		return err
	}
	// Make the rename itself durable. A failure here is not an error for
	// the caller: the new file is in place and complete, only the rename's
	// durability against power loss is weakened.
	_ = fsys.SyncDir(filepath.Dir(path))
	return nil
}

// CleanStaleTemps removes temp files a crashed rewrite of path may have
// left next to it and returns the removed names. Errors on individual
// removes are ignored (the next sweep retries); only directory listing
// failure is reported.
func CleanStaleTemps(fsys iofault.FS, path string) ([]string, error) {
	dir := filepath.Dir(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	prefix := filepath.Base(path) + ".tmp-"
	var removed []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), prefix) {
			continue
		}
		full := filepath.Join(dir, e.Name())
		if err := fsys.Remove(full); err == nil {
			removed = append(removed, full)
		}
	}
	return removed, nil
}

// Quarantine moves an unreadable index file aside to path + ".corrupt"
// (overwriting any previous quarantine) so the daemon can start without it
// while preserving the evidence for inspection. Returns the quarantine
// path.
func Quarantine(fsys iofault.FS, path string) (string, error) {
	dst := path + ".corrupt"
	if err := fsys.Rename(path, dst); err != nil {
		return "", fmt.Errorf("persist: quarantine %s: %w", path, err)
	}
	return dst, nil
}
