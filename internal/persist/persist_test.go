package persist_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ovm/internal/datasets"
	"ovm/internal/iofault"
	"ovm/internal/persist"
	"ovm/internal/serialize"
)

// testIndex builds a minimal artifact-free index whose BaseEpoch doubles as
// a content marker: reading the file back and checking BaseEpoch tells the
// torture sweep whether the old or the new version survived.
func testIndex(t testing.TB, epoch int64) *serialize.Index {
	t.Helper()
	d, err := datasets.YelpLike(datasets.Options{N: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return &serialize.Index{Sys: d.Sys, BaseEpoch: epoch}
}

func readEpoch(t *testing.T, path string) int64 {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	idx, err := serialize.ReadIndex(f)
	if err != nil {
		t.Fatalf("index at %s is corrupt — the old-or-new invariant is broken: %v", path, err)
	}
	return idx.BaseEpoch
}

// listTemps returns the rewrite temp files currently next to path.
func listTemps(t *testing.T, path string) []string {
	t.Helper()
	matches, err := filepath.Glob(path + ".tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

func TestWriteIndexAtomicRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "world.ovmidx")
	if err := persist.WriteIndexAtomic(iofault.OS, path, testIndex(t, 7)); err != nil {
		t.Fatal(err)
	}
	if got := readEpoch(t, path); got != 7 {
		t.Errorf("BaseEpoch = %d, want 7", got)
	}
	if temps := listTemps(t, path); len(temps) != 0 {
		t.Errorf("temp files left after a clean rewrite: %v", temps)
	}
}

func TestWriteIndexAtomicPreservesMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "world.ovmidx")
	idx := testIndex(t, 1)
	if err := persist.WriteIndexAtomic(iofault.OS, path, idx); err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(path, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := persist.WriteIndexAtomic(iofault.OS, path, idx); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := info.Mode().Perm(); got != 0o600 {
		t.Errorf("mode after rewrite = %o, want 600", got)
	}
}

// TestWriteIndexAtomicRemovesTempOnEveryErrorPath injects an error at each
// operation of the rewrite sequence in turn and asserts that no temp file
// survives the failed call and the original file is untouched.
func TestWriteIndexAtomicRemovesTempOnEveryErrorPath(t *testing.T) {
	oldIdx, newIdx := testIndex(t, 1), testIndex(t, 2)

	// Recording pass: a clean rewrite enumerates the injection points.
	recDir := t.TempDir()
	recPath := filepath.Join(recDir, "world.ovmidx")
	if err := persist.WriteIndexAtomic(iofault.OS, recPath, oldIdx); err != nil {
		t.Fatal(err)
	}
	rec := iofault.NewFaulty(iofault.OS)
	if err := persist.WriteIndexAtomic(rec, recPath, newIdx); err != nil {
		t.Fatal(err)
	}
	points := rec.Trace()
	if len(points) < 5 {
		t.Fatalf("suspiciously short trace %v: the recording pass missed operations", points)
	}

	for _, p := range points {
		if p.Op == iofault.OpSyncDir {
			continue // non-fatal by design; covered below
		}
		t.Run(fmt.Sprintf("%s#%d", p.Op, p.Occurrence), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "world.ovmidx")
			if err := persist.WriteIndexAtomic(iofault.OS, path, oldIdx); err != nil {
				t.Fatal(err)
			}
			f := iofault.NewFaulty(iofault.OS)
			f.Inject(p.Op, p.Occurrence, iofault.ActError)
			err := persist.WriteIndexAtomic(f, path, newIdx)
			if !errors.Is(err, iofault.ErrInjected) {
				t.Fatalf("err = %v, want the injected fault", err)
			}
			if temps := listTemps(t, path); len(temps) != 0 {
				t.Errorf("temp files survived the %s#%d error path: %v", p.Op, p.Occurrence, temps)
			}
			if got := readEpoch(t, path); got != 1 {
				t.Errorf("original file changed under a failed rewrite: BaseEpoch = %d, want 1", got)
			}
		})
	}
}

func TestWriteIndexAtomicSyncDirFailureIsNotFatal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "world.ovmidx")
	if err := persist.WriteIndexAtomic(iofault.OS, path, testIndex(t, 1)); err != nil {
		t.Fatal(err)
	}
	f := iofault.NewFaulty(iofault.OS)
	f.Inject(iofault.OpSyncDir, 0, iofault.ActError)
	if err := persist.WriteIndexAtomic(f, path, testIndex(t, 2)); err != nil {
		t.Fatalf("a directory-fsync failure after the rename must not fail the rewrite: %v", err)
	}
	if got := readEpoch(t, path); got != 2 {
		t.Errorf("BaseEpoch = %d, want the new version 2", got)
	}
}

// TestWriteIndexAtomicTortureSweep is the crash-consistency sweep: every
// operation of the rewrite sequence is made to fail, tear, or "crash" (panic
// mid-operation), the simulated restart sweeps stale temps, and the index
// file must always parse as exactly the old or the new version — never a
// torn in-between.
func TestWriteIndexAtomicTortureSweep(t *testing.T) {
	oldIdx, newIdx := testIndex(t, 1), testIndex(t, 2)

	recPath := filepath.Join(t.TempDir(), "world.ovmidx")
	if err := persist.WriteIndexAtomic(iofault.OS, recPath, oldIdx); err != nil {
		t.Fatal(err)
	}
	rec := iofault.NewFaulty(iofault.OS)
	if err := persist.WriteIndexAtomic(rec, recPath, newIdx); err != nil {
		t.Fatal(err)
	}
	points := rec.Trace()

	actions := []iofault.Action{iofault.ActError, iofault.ActTornWrite, iofault.ActCrash}
	for _, p := range points {
		for _, act := range actions {
			t.Run(fmt.Sprintf("%s#%d/%s", p.Op, p.Occurrence, act), func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "world.ovmidx")
				if err := persist.WriteIndexAtomic(iofault.OS, path, oldIdx); err != nil {
					t.Fatal(err)
				}
				f := iofault.NewFaulty(iofault.OS)
				f.Inject(p.Op, p.Occurrence, act)

				var err error
				crashed := false
				func() {
					defer func() {
						if r := recover(); r != nil {
							if _, ok := r.(*iofault.Crash); !ok {
								panic(r) // a real bug, not a scripted crash
							}
							crashed = true
						}
					}()
					err = persist.WriteIndexAtomic(f, path, newIdx)
				}()

				// Simulated restart: sweep the temps a crash may have left.
				removed, serr := persist.CleanStaleTemps(iofault.OS, path)
				if serr != nil {
					t.Fatalf("CleanStaleTemps: %v", serr)
				}
				if !crashed && len(removed) > 0 {
					t.Errorf("error path left temp files for the restart sweep: %v", removed)
				}
				if temps := listTemps(t, path); len(temps) != 0 {
					t.Errorf("temp files survived the restart sweep: %v", temps)
				}

				got := readEpoch(t, path)
				switch {
				case got != 1 && got != 2:
					t.Errorf("BaseEpoch = %d: neither old nor new", got)
				case err == nil && !crashed && got != 2:
					// A rewrite that reported success must be durable.
					t.Errorf("rewrite returned nil but file holds epoch %d, want 2", got)
				}
			})
		}
	}
}

func TestCleanStaleTemps(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "world.ovmidx")
	stale := filepath.Join(dir, "world.ovmidx.tmp-12345")
	bystander := filepath.Join(dir, "other.ovmidx.tmp-1")
	for _, f := range []string{path, stale, bystander} {
		if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := persist.CleanStaleTemps(iofault.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != stale {
		t.Errorf("removed %v, want exactly %s", removed, stale)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp still present")
	}
	for _, f := range []string{path, bystander} {
		if _, err := os.Stat(f); err != nil {
			t.Errorf("%s should have survived the sweep: %v", f, err)
		}
	}
}

func TestQuarantine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "world.ovmidx")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	dst, err := persist.Quarantine(iofault.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	if dst != path+".corrupt" {
		t.Errorf("quarantine destination = %s, want %s.corrupt", dst, path)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("original path still present after quarantine")
	}
	if b, err := os.ReadFile(dst); err != nil || string(b) != "garbage" {
		t.Errorf("quarantined evidence = %q, %v", b, err)
	}
	if _, err := persist.Quarantine(iofault.OS, filepath.Join(dir, "missing")); err == nil {
		t.Error("quarantining a missing file should fail")
	}
}
