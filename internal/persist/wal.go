package persist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"ovm/internal/dynamic"
	"ovm/internal/iofault"
)

// Write-ahead log for the async update pipeline: every accepted-but-not-
// yet-applied batch is appended (JSONL, one fsync'd line per batch) BEFORE
// the accept response goes out, so a crash never loses an acknowledged
// update. Each entry carries the target epoch the daemon promised the
// client; on restart the entries whose epoch is already covered by the
// index's replayed update log are skipped (a crash between the index
// rewrite and the WAL prune would otherwise double-apply them) and the
// remainder re-enters the pipeline in order.
//
// The append path uses os directly — iofault.FS has no append primitive —
// but a torn trailing line is exactly the un-acknowledged crash shape and
// is dropped on open. Pruning rewrites the remainder through the same
// atomic temp + rename + dir-sync machinery as the index itself, under
// path's temp pattern so CleanStaleTemps sweeps WAL temps too.

// WALEntry is one accepted update batch and the epoch it was promised.
type WALEntry struct {
	Epoch int64         `json:"epoch"`
	Batch dynamic.Batch `json:"batch"`
}

// WAL is the daemon's durable mutation queue sidecar file.
type WAL struct {
	fsys iofault.FS
	path string

	mu      sync.Mutex
	pending []WALEntry
}

// OpenWAL reads the log at path (a missing file is an empty log) and
// returns the surviving entries plus the number of torn trailing lines
// dropped (0 or 1 — only the final line can be torn, anything else is
// corruption and errors out). Entries must carry strictly consecutive
// epochs.
func OpenWAL(fsys iofault.FS, path string) (*WAL, int, error) {
	w := &WAL{fsys: fsys, path: path}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return w, 0, nil
		}
		return nil, 0, fmt.Errorf("persist: read wal %s: %w", path, err)
	}
	lines := bytes.Split(data, []byte("\n"))
	dropped := 0
	for i, line := range lines {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var e WALEntry
		if err := json.Unmarshal(line, &e); err != nil || len(e.Batch) == 0 {
			// A torn write never completes its trailing newline, so the
			// only legal crash artifact is an unparseable FINAL line with
			// no newline after it — never fsync'd, never acknowledged,
			// safe to drop. Anything else is corruption.
			if i == len(lines)-1 {
				dropped++
				continue
			}
			return nil, 0, fmt.Errorf("persist: wal %s: line %d is corrupt mid-file", path, i+1)
		}
		if len(w.pending) > 0 && e.Epoch != w.pending[len(w.pending)-1].Epoch+1 {
			return nil, 0, fmt.Errorf("persist: wal %s: epoch %d follows %d, want consecutive",
				path, e.Epoch, w.pending[len(w.pending)-1].Epoch)
		}
		w.pending = append(w.pending, e)
	}
	return w, dropped, nil
}

// Pending returns a copy of the not-yet-pruned entries in epoch order.
func (w *WAL) Pending() []WALEntry {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]WALEntry(nil), w.pending...)
}

// Depth reports how many accepted batches await pruning.
func (w *WAL) Depth() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.pending)
}

// Append durably records one accepted batch: the line is written and
// fsync'd before Append returns, so the caller may acknowledge the update.
func (w *WAL) Append(e WALEntry) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if n := len(w.pending); n > 0 && e.Epoch != w.pending[n-1].Epoch+1 {
		return fmt.Errorf("persist: wal append epoch %d after %d, want consecutive", e.Epoch, w.pending[n-1].Epoch)
	}
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	w.pending = append(w.pending, e)
	return nil
}

// Prune drops every entry with epoch <= upTo — they are applied and
// persisted in the index's update log — rewriting the remainder atomically.
// An empty remainder removes the file.
func (w *WAL) Prune(upTo int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	keep := w.pending[:0:0]
	for _, e := range w.pending {
		if e.Epoch > upTo {
			keep = append(keep, e)
		}
	}
	if len(keep) == len(w.pending) {
		return nil
	}
	if len(keep) == 0 {
		if err := w.fsys.Remove(w.path); err != nil && !os.IsNotExist(err) {
			return err
		}
		w.pending = nil
		return nil
	}
	tmp, err := w.fsys.CreateTemp(filepath.Dir(w.path), tempPattern(filepath.Base(w.path)))
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		_ = tmp.Close()
		_ = w.fsys.Remove(tmp.Name())
		return err
	}
	for _, e := range keep {
		line, err := json.Marshal(e)
		if err != nil {
			return cleanup(err)
		}
		if _, err := tmp.Write(append(line, '\n')); err != nil {
			return cleanup(err)
		}
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		_ = w.fsys.Remove(tmp.Name())
		return err
	}
	if err := w.fsys.Rename(tmp.Name(), w.path); err != nil {
		_ = w.fsys.Remove(tmp.Name())
		return err
	}
	_ = w.fsys.SyncDir(filepath.Dir(w.path))
	w.pending = keep
	return nil
}
