package persist_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ovm/internal/dynamic"
	"ovm/internal/iofault"
	"ovm/internal/persist"
)

func walBatch(v float64) dynamic.Batch {
	return dynamic.Batch{{Kind: dynamic.OpSetOpinion, Cand: 0, Node: 1, Value: v}}
}

func TestWALAppendReopenPrune(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.ovmidx.wal")
	w, dropped, err := persist.OpenWAL(iofault.OS, path)
	if err != nil || dropped != 0 {
		t.Fatalf("open fresh: %v dropped=%d", err, dropped)
	}
	for e := int64(1); e <= 4; e++ {
		if err := w.Append(persist.WALEntry{Epoch: e, Batch: walBatch(float64(e) / 10)}); err != nil {
			t.Fatal(err)
		}
	}
	if w.Depth() != 4 {
		t.Fatalf("depth = %d, want 4", w.Depth())
	}
	// A gap in the promised epochs must be refused.
	if err := w.Append(persist.WALEntry{Epoch: 7, Batch: walBatch(0.7)}); err == nil {
		t.Fatal("append with an epoch gap succeeded")
	}

	// Reopen: same entries, same order.
	w2, dropped, err := persist.OpenWAL(iofault.OS, path)
	if err != nil || dropped != 0 {
		t.Fatalf("reopen: %v dropped=%d", err, dropped)
	}
	got := w2.Pending()
	if len(got) != 4 || got[0].Epoch != 1 || got[3].Epoch != 4 {
		t.Fatalf("reopened entries: %+v", got)
	}
	if got[2].Batch[0].Value != 0.3 {
		t.Fatalf("entry 3 batch roundtrip: %+v", got[2].Batch)
	}

	// Prune the applied prefix; remainder survives a reopen.
	if err := w2.Prune(2); err != nil {
		t.Fatal(err)
	}
	if w2.Depth() != 2 {
		t.Fatalf("depth after prune = %d, want 2", w2.Depth())
	}
	w3, _, err := persist.OpenWAL(iofault.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	if got := w3.Pending(); len(got) != 2 || got[0].Epoch != 3 {
		t.Fatalf("entries after prune+reopen: %+v", got)
	}
	// Appending after a prune continues the sequence on the rewritten file.
	if err := w3.Append(persist.WALEntry{Epoch: 5, Batch: walBatch(0.5)}); err != nil {
		t.Fatal(err)
	}
	// Pruning everything removes the file; the next append recreates it.
	if err := w3.Prune(5); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("fully pruned wal still on disk (stat err %v)", err)
	}
	if err := w3.Append(persist.WALEntry{Epoch: 6, Batch: walBatch(0.6)}); err != nil {
		t.Fatal(err)
	}
	w4, _, err := persist.OpenWAL(iofault.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	if got := w4.Pending(); len(got) != 1 || got[0].Epoch != 6 {
		t.Fatalf("entries after full prune + append: %+v", got)
	}
}

func TestWALTornTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.ovmidx.wal")
	w, _, err := persist.OpenWAL(iofault.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	for e := int64(1); e <= 2; e++ {
		if err := w.Append(persist.WALEntry{Epoch: e, Batch: walBatch(0.5)}); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash mid-append: a partial line with no trailing newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"epoch":3,"ba`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, dropped, err := persist.OpenWAL(iofault.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1 torn line", dropped)
	}
	if got := w2.Pending(); len(got) != 2 || got[1].Epoch != 2 {
		t.Fatalf("entries after torn tail: %+v", got)
	}
	// The un-acked epoch 3 slot is reusable after the drop.
	if err := w2.Append(persist.WALEntry{Epoch: 3, Batch: walBatch(0.9)}); err != nil {
		t.Fatal(err)
	}
}

func TestWALMidFileCorruptionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.ovmidx.wal")
	good := `{"epoch":2,"batch":[{"op":"set_opinion","candidate":0,"node":1,"value":0.5}]}`
	if err := os.WriteFile(path, []byte("garbage\n"+good+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := persist.OpenWAL(iofault.OS, path); err == nil || !strings.Contains(err.Error(), "corrupt mid-file") {
		t.Fatalf("mid-file corruption not rejected: %v", err)
	}
	// An epoch gap between entries is corruption too.
	e1 := `{"epoch":1,"batch":[{"op":"set_opinion","candidate":0,"node":1,"value":0.5}]}`
	e3 := `{"epoch":3,"batch":[{"op":"set_opinion","candidate":0,"node":1,"value":0.5}]}`
	if err := os.WriteFile(path, []byte(e1+"\n"+e3+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := persist.OpenWAL(iofault.OS, path); err == nil || !strings.Contains(err.Error(), "consecutive") {
		t.Fatalf("epoch gap not rejected: %v", err)
	}
}

// TestWALPruneTempsSweepable: a prune rewrite uses the WAL path's temp
// pattern, so the startup CleanStaleTemps sweep covers crashed prunes.
func TestWALPruneTempsSweepable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "idx.ovmidx.wal")
	stale := filepath.Join(dir, "idx.ovmidx.wal.tmp-123")
	if err := os.WriteFile(stale, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	removed, err := persist.CleanStaleTemps(iofault.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != stale {
		t.Fatalf("sweep removed %v, want %v", removed, stale)
	}
}
