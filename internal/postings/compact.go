package postings

import (
	"encoding/binary"
	"fmt"
)

// DefaultBlockSize is the number of postings per varint block. 128 keeps
// a block within two cache lines for typical deltas while making the skip
// table (one i64 per block) negligible next to the payload.
const DefaultBlockSize = 128

// Compact is a delta+varint-compressed postings index, equivalent to a
// CSR built with ascending distinct items per member (which is what both
// walk and RR indexes produce). Member v's postings are encoded in
// fixed-size blocks of at most BlockSize entries; a block never spans two
// members. The first item of a block is an absolute uvarint, later items
// are uvarint deltas from their predecessor, and when HasPos is set each
// item varint is followed by its pos uvarint. BlockOff byte offsets give
// O(log blocks) seek without decoding preceding blocks.
//
// Compact is immutable after construction and safe for concurrent readers;
// all four slices may alias a read-only mapped region.
type Compact struct {
	// Off is the n+1 postings-count prefix sum: member v holds
	// Off[v+1]-Off[v] postings.
	Off []int32
	// FirstBlock is the n+1 block-count prefix sum: member v's blocks are
	// [FirstBlock[v], FirstBlock[v+1]).
	FirstBlock []int32
	// BlockOff maps block index to its byte offset in Data; the extra
	// final entry is len(Data).
	BlockOff []int64
	// Data is the varint payload.
	Data []byte
	// HasPos records whether each item carries an interleaved pos varint.
	HasPos bool
	// BlockSize is the encoding's entries-per-block bound.
	BlockSize int32
}

// FromCSR compresses a CSR whose postings are strictly ascending per
// member (distinct items) into blocked delta+varint form. blockSize <= 0
// selects DefaultBlockSize. Panics if a member's postings are not strictly
// ascending — both producers in this repo guarantee it.
func FromCSR(c CSR, blockSize int) *Compact {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	n := len(c.Off) - 1
	out := &Compact{
		Off:        c.Off,
		FirstBlock: make([]int32, n+1),
		HasPos:     c.Pos != nil,
		BlockSize:  int32(blockSize),
	}
	totalBlocks := 0
	for v := 0; v < n; v++ {
		cnt := int(c.Off[v+1] - c.Off[v])
		totalBlocks += (cnt + blockSize - 1) / blockSize
		out.FirstBlock[v+1] = int32(totalBlocks)
	}
	out.BlockOff = make([]int64, totalBlocks+1)
	var buf [binary.MaxVarintLen64]byte
	data := make([]byte, 0, len(c.Item)) // deltas usually beat 4 bytes/entry
	block := 0
	for v := 0; v < n; v++ {
		lo, hi := int(c.Off[v]), int(c.Off[v+1])
		for p := lo; p < hi; p++ {
			inBlock := (p - lo) % blockSize
			if inBlock == 0 {
				out.BlockOff[block] = int64(len(data))
				block++
				data = append(data, buf[:binary.PutUvarint(buf[:], uint64(c.Item[p]))]...)
			} else {
				delta := c.Item[p] - c.Item[p-1]
				if delta <= 0 {
					panic(fmt.Sprintf("postings: member %d items not strictly ascending at %d", v, p))
				}
				data = append(data, buf[:binary.PutUvarint(buf[:], uint64(delta))]...)
			}
			if out.HasPos {
				data = append(data, buf[:binary.PutUvarint(buf[:], uint64(c.Pos[p]))]...)
			}
		}
	}
	out.BlockOff[totalBlocks] = int64(len(data))
	out.Data = data
	return out
}

// ToCSR decodes back to the raw CSR form. The result owns fresh heap
// slices except Off, which is shared (it is identical in both forms).
func (c *Compact) ToCSR() CSR {
	n := len(c.Off) - 1
	total := int(c.Off[n])
	out := CSR{Off: c.Off, Item: make([]int32, 0, total)}
	if c.HasPos {
		out.Pos = make([]int32, 0, total)
	}
	for v := 0; v < n; v++ {
		it := c.Iter(int32(v))
		for {
			item, pos, ok := it.Next()
			if !ok {
				break
			}
			out.Item = append(out.Item, item)
			if c.HasPos {
				out.Pos = append(out.Pos, pos)
			}
		}
	}
	return out
}

// Count returns member v's postings count.
func (c *Compact) Count(v int32) int32 { return c.Off[v+1] - c.Off[v] }

// NumMembers returns the member universe size n.
func (c *Compact) NumMembers() int { return len(c.Off) - 1 }

// Bytes returns the total storage footprint in bytes.
func (c *Compact) Bytes() int64 {
	return int64(4*len(c.Off)) + int64(4*len(c.FirstBlock)) + int64(8*len(c.BlockOff)) + int64(len(c.Data))
}

// Iterator walks one member's postings in ascending item order. It is a
// value type with no heap state, so hot paths can create one per member
// with zero allocation; a Compact validated once supports any number of
// concurrent iterators.
type Iterator struct {
	data      []byte
	cur       int   // byte cursor into data
	remain    int32 // postings not yet returned
	inBlock   int32 // entries left in the current block (0 = at a block start)
	prev      int32 // last item returned
	hasPos    bool
	blockSize int32
}

// Iter positions an iterator at the start of member v's postings.
func (c *Compact) Iter(v int32) Iterator {
	return Iterator{
		data:      c.Data,
		cur:       int(c.BlockOff[c.FirstBlock[v]]),
		remain:    c.Off[v+1] - c.Off[v],
		hasPos:    c.HasPos,
		blockSize: c.BlockSize,
	}
}

// Next returns the next posting. pos is 0 when the index carries no
// positions. ok is false when the member's postings are exhausted.
func (it *Iterator) Next() (item, pos int32, ok bool) {
	if it.remain == 0 {
		return 0, 0, false
	}
	if it.inBlock == 0 {
		it.inBlock = it.remain
		if it.inBlock > it.blockSize {
			it.inBlock = it.blockSize
		}
		item = int32(it.uvarint())
	} else {
		item = it.prev + int32(it.uvarint())
	}
	it.prev = item
	it.inBlock--
	it.remain--
	if it.hasPos {
		pos = int32(it.uvarint())
	}
	return item, pos, true
}

// uvarint decodes one uvarint at the cursor. Bounds are enforced by the
// slice; Validate guarantees a well-formed stream so this never trips on
// adopted data.
func (it *Iterator) uvarint() uint64 {
	var x uint64
	var s uint
	for {
		b := it.data[it.cur]
		it.cur++
		if b < 0x80 {
			return x | uint64(b)<<s
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
}

// Seek returns an iterator positioned at member v's first posting with
// item >= target, using the block skip table: binary-search the last block
// whose first item <= target, then scan at most one block.
func (c *Compact) Seek(v, target int32) Iterator {
	lo, hi := c.FirstBlock[v], c.FirstBlock[v+1]
	if lo == hi {
		return Iterator{data: c.Data, hasPos: c.HasPos, blockSize: c.BlockSize}
	}
	// Find the last block b in [lo,hi) with firstItem(b) <= target.
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		first, _ := binary.Uvarint(c.Data[c.BlockOff[mid]:])
		if int32(first) <= target {
			lo = mid
		} else {
			hi = mid
		}
	}
	cnt := c.Off[v+1] - c.Off[v]
	skipped := (lo - c.FirstBlock[v]) * c.BlockSize
	it := Iterator{
		data:      c.Data,
		cur:       int(c.BlockOff[lo]),
		remain:    cnt - skipped,
		hasPos:    c.HasPos,
		blockSize: c.BlockSize,
	}
	for it.remain > 0 {
		save := it
		item, _, _ := it.Next()
		if item >= target {
			return save
		}
	}
	return it
}

// Validate checks structural integrity so that iteration over adopted
// (possibly file-backed) storage can never read out of bounds or loop:
// prefix sums monotone and consistent, block offsets ascending and
// in-bounds, every varint well-formed, items strictly ascending within a
// member and within [0, numItems), pos within [0, maxPos] when present,
// and the payload exactly consumed. O(total postings).
func (c *Compact) Validate(numItems int, maxPos int32) error {
	n := len(c.Off) - 1
	if n < 0 {
		return fmt.Errorf("postings: empty Off")
	}
	if len(c.FirstBlock) != n+1 {
		return fmt.Errorf("postings: FirstBlock length %d != %d", len(c.FirstBlock), n+1)
	}
	if c.BlockSize <= 0 {
		return fmt.Errorf("postings: block size %d", c.BlockSize)
	}
	if c.Off[0] != 0 || c.FirstBlock[0] != 0 {
		return fmt.Errorf("postings: prefix sums must start at 0")
	}
	blocks := len(c.BlockOff) - 1
	if blocks < 0 {
		return fmt.Errorf("postings: empty BlockOff")
	}
	if int(c.FirstBlock[n]) != blocks {
		return fmt.Errorf("postings: %d blocks indexed, table has %d", c.FirstBlock[n], blocks)
	}
	bs := int(c.BlockSize)
	for v := 0; v < n; v++ {
		cnt := int(c.Off[v+1]) - int(c.Off[v])
		if cnt < 0 {
			return fmt.Errorf("postings: Off not monotone at %d", v)
		}
		want := (cnt + bs - 1) / bs
		if int(c.FirstBlock[v+1])-int(c.FirstBlock[v]) != want {
			return fmt.Errorf("postings: member %d has %d blocks, want %d", v, c.FirstBlock[v+1]-c.FirstBlock[v], want)
		}
	}
	for b := 0; b < blocks; b++ {
		if c.BlockOff[b] < 0 || c.BlockOff[b] > c.BlockOff[b+1] {
			return fmt.Errorf("postings: block offsets not monotone at %d", b)
		}
	}
	if c.BlockOff[blocks] != int64(len(c.Data)) {
		return fmt.Errorf("postings: final block offset %d != payload %d", c.BlockOff[blocks], len(c.Data))
	}
	// Full decode pass with explicit bounds, mirroring Iterator.
	cur := 0
	read := func() (uint64, error) {
		x, k := binary.Uvarint(c.Data[cur:])
		if k <= 0 {
			return 0, fmt.Errorf("postings: malformed varint at byte %d", cur)
		}
		cur += k
		return x, nil
	}
	block := 0
	for v := 0; v < n; v++ {
		cnt := int(c.Off[v+1]) - int(c.Off[v])
		prev := int32(-1)
		for i := 0; i < cnt; i++ {
			var item int64
			if i%bs == 0 {
				if int64(cur) != c.BlockOff[block] {
					return fmt.Errorf("postings: member %d block %d starts at %d, table says %d", v, block, cur, c.BlockOff[block])
				}
				block++
				abs, err := read()
				if err != nil {
					return err
				}
				item = int64(abs)
			} else {
				d, err := read()
				if err != nil {
					return err
				}
				if d == 0 {
					return fmt.Errorf("postings: member %d zero delta", v)
				}
				item = int64(prev) + int64(d)
			}
			if item <= int64(prev) || item >= int64(numItems) {
				return fmt.Errorf("postings: member %d item %d out of range (prev %d, numItems %d)", v, item, prev, numItems)
			}
			prev = int32(item)
			if c.HasPos {
				p, err := read()
				if err != nil {
					return err
				}
				if p > uint64(maxPos) {
					return fmt.Errorf("postings: member %d pos %d exceeds %d", v, p, maxPos)
				}
			}
		}
	}
	if cur != len(c.Data) {
		return fmt.Errorf("postings: %d trailing payload bytes", len(c.Data)-cur)
	}
	return nil
}
