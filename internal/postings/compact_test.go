package postings

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomCSR builds a CSR over n members and numItems items where each
// member's postings are distinct ascending items, optionally with pos.
func randomCSR(r *rand.Rand, n, numItems, maxPerMember int, withPos bool) CSR {
	c := CSR{Off: make([]int32, n+1)}
	if withPos {
		c.Pos = []int32{}
	}
	for v := 0; v < n; v++ {
		cnt := r.Intn(maxPerMember + 1)
		if cnt > numItems {
			cnt = numItems
		}
		items := r.Perm(numItems)[:cnt]
		sortInts(items)
		for _, it := range items {
			c.Item = append(c.Item, int32(it))
			if withPos {
				c.Pos = append(c.Pos, int32(r.Intn(64)))
			}
		}
		c.Off[v+1] = int32(len(c.Item))
	}
	return c
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestCompactRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, withPos := range []bool{false, true} {
		for _, bs := range []int{1, 3, 128} {
			csr := randomCSR(r, 200, 1000, 300, withPos)
			cp := FromCSR(csr, bs)
			if err := cp.Validate(1000, 63); err != nil {
				t.Fatalf("bs=%d withPos=%v: Validate: %v", bs, withPos, err)
			}
			back := cp.ToCSR()
			if !reflect.DeepEqual(back.Off, csr.Off) || !reflect.DeepEqual(back.Item, csr.Item) {
				t.Fatalf("bs=%d withPos=%v: items differ after round trip", bs, withPos)
			}
			if withPos && !reflect.DeepEqual(back.Pos, csr.Pos) {
				t.Fatalf("bs=%d: pos differ after round trip", bs)
			}
			// Iterator agrees with the raw CSR per member.
			for v := 0; v < cp.NumMembers(); v++ {
				it := cp.Iter(int32(v))
				for p := csr.Off[v]; p < csr.Off[v+1]; p++ {
					item, pos, ok := it.Next()
					if !ok || item != csr.Item[p] {
						t.Fatalf("member %d posting %d: got (%d,%v), want %d", v, p, item, ok, csr.Item[p])
					}
					if withPos && pos != csr.Pos[p] {
						t.Fatalf("member %d posting %d: pos %d, want %d", v, p, pos, csr.Pos[p])
					}
				}
				if _, _, ok := it.Next(); ok {
					t.Fatalf("member %d: iterator overran", v)
				}
			}
		}
	}
}

func TestCompactSeek(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	csr := randomCSR(r, 50, 5000, 600, true)
	cp := FromCSR(csr, 16)
	for v := 0; v < 50; v++ {
		for _, target := range []int32{0, 1, 17, 2500, 4999, 5000} {
			it := cp.Seek(int32(v), target)
			// Reference: first posting >= target by linear scan.
			var want []int32
			for p := csr.Off[v]; p < csr.Off[v+1]; p++ {
				if csr.Item[p] >= target {
					want = csr.Item[p:csr.Off[v+1]]
					break
				}
			}
			for _, w := range want {
				item, _, ok := it.Next()
				if !ok || item != w {
					t.Fatalf("member %d seek %d: got (%d,%v), want %d", v, target, item, ok, w)
				}
			}
			if _, _, ok := it.Next(); ok {
				t.Fatalf("member %d seek %d: iterator overran", v, target)
			}
		}
	}
}

func TestCompactCompression(t *testing.T) {
	// Dense ascending postings (small deltas) must compress well below
	// 4 bytes/entry even counting the skip table.
	n := 1000
	csr := CSR{Off: make([]int32, n+1)}
	for v := 0; v < n; v++ {
		for i := 0; i < 100; i++ {
			csr.Item = append(csr.Item, int32(v+i*3))
		}
		csr.Off[v+1] = int32(len(csr.Item))
	}
	cp := FromCSR(csr, DefaultBlockSize)
	raw := int64(4 * len(csr.Item))
	if cp.Bytes()-int64(4*len(cp.Off)) >= raw/2 {
		t.Fatalf("compact %d bytes vs raw %d: expected >=2x compression", cp.Bytes(), raw)
	}
}

func TestCompactValidateRejects(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	csr := randomCSR(r, 20, 100, 30, true)
	fresh := func() *Compact {
		c := FromCSR(csr, 8)
		// Deep copy so mutations don't leak between cases.
		cp := *c
		cp.Off = append([]int32(nil), c.Off...)
		cp.FirstBlock = append([]int32(nil), c.FirstBlock...)
		cp.BlockOff = append([]int64(nil), c.BlockOff...)
		cp.Data = append([]byte(nil), c.Data...)
		return &cp
	}
	cases := map[string]func(c *Compact){
		"truncated payload": func(c *Compact) { c.Data = c.Data[:len(c.Data)-1] },
		"trailing bytes":    func(c *Compact) { c.Data = append(c.Data, 0) },
		"bad block offset":  func(c *Compact) { c.BlockOff[1]++ },
		"non-monotone off":  func(c *Compact) { c.Off[3] = c.Off[4] + 1 },
		"bad block count":   func(c *Compact) { c.FirstBlock[5]++ },
		"zero block size":   func(c *Compact) { c.BlockSize = 0 },
		"item out of range": func(c *Compact) { c.Data[0] = 0xff; c.Data[1] = 0xff },
		"unterminated varint": func(c *Compact) {
			for i := range c.Data {
				c.Data[i] = 0x80
			}
		},
	}
	for name, mutate := range cases {
		c := fresh()
		mutate(c)
		if err := c.Validate(100, 63); err == nil {
			t.Errorf("%s: Validate accepted corrupted index", name)
		}
	}
}
