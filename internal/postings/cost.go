package postings

import "ovm/internal/obs"

// Postings cost accounting. The iterators themselves are never
// instrumented — they are the innermost hot loops and a shared atomic
// there would serialize the parallel shard scans. Instead, consumers
// derive how much a scan cost arithmetically from the prefix sums
// (Count for entries, Blocks for varint blocks) and record the totals
// here at a coarse serial point: once per AddSeed, once per greedy
// round, once per repair.
var (
	entriesIterated = obs.NewCounter("ovm_postings_entries_total",
		"Postings entries iterated by index scans")
	blocksDecoded = obs.NewCounter("ovm_postings_blocks_total",
		"Varint postings blocks decoded by index scans")
)

// Blocks returns member v's varint block count — what an Iter(v) drain
// decodes. Raw CSR consumers can treat entries/DefaultBlockSize as the
// equivalent figure.
func (c *Compact) Blocks(v int32) int32 { return c.FirstBlock[v+1] - c.FirstBlock[v] }

// TotalEntries returns the index-wide postings count.
func (c *Compact) TotalEntries() int64 { return int64(c.Off[len(c.Off)-1]) }

// TotalBlocks returns the index-wide varint block count.
func (c *Compact) TotalBlocks() int64 { return int64(c.FirstBlock[len(c.FirstBlock)-1]) }

// Account records entries iterated and blocks decoded. Callers batch
// counts locally and call this once per coarse unit of work; it is a
// no-op when cost accounting is disabled.
func Account(entries, blocks int64) {
	if !obs.CostEnabled() || (entries == 0 && blocks == 0) {
		return
	}
	entriesIterated.Add(entries)
	blocksDecoded.Add(blocks)
}
