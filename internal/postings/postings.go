// Package postings builds member → item inverted indexes (CSR postings
// lists) over flat item → member layouts with one counting-sort pass: count
// occurrences per member, prefix-sum into offsets, then fill in item order
// so every member's postings come out sorted by item id for free.
//
// It is the shared indexing substrate of the selection engines: im uses it
// for the node → RR-set index behind GreedyCover, walks uses it (with
// first-occurrence dedup) for the node → walk index behind incremental
// greedy truncation.
package postings

// CSR is a member → item inverted index in compressed sparse row form:
// member v's postings are Item[Off[v]:Off[v+1]], ascending by item id.
// When built with first-occurrence dedup, Pos[p] is the posting's occurrence
// position relative to its item's start (the member's first offset within
// that item) — relative so a posting stays valid when items before its item
// grow or shrink; otherwise Pos is nil and every occurrence has a posting.
type CSR struct {
	Off  []int32
	Item []int32
	Pos  []int32
}

// Build inverts a flat layout of numItems = len(off)-1 items, where item i
// holds members[off[i]:off[i+1]], into a member → item CSR over the member
// universe [0, n). With dedupFirst, a member occurring several times inside
// one item yields a single posting carrying its first occurrence's absolute
// position; without, every occurrence yields a posting and Pos is nil.
func Build(n int, off, members []int32, dedupFirst bool) CSR {
	numItems := len(off) - 1
	counts := make([]int32, n+1)
	var stamp []int32 // per-member item marker: i+1 in the count pass, -(i+1) in the fill pass
	if dedupFirst {
		stamp = make([]int32, n)
		for i := 0; i < numItems; i++ {
			m := int32(i + 1)
			for j := off[i]; j < off[i+1]; j++ {
				v := members[j]
				if stamp[v] == m {
					continue
				}
				stamp[v] = m
				counts[v+1]++
			}
		}
	} else {
		for _, v := range members {
			counts[v+1]++
		}
	}
	for v := 0; v < n; v++ {
		counts[v+1] += counts[v]
	}
	csr := CSR{Off: counts, Item: make([]int32, counts[n])}
	if dedupFirst {
		csr.Pos = make([]int32, counts[n])
	}
	cursor := make([]int32, n)
	copy(cursor, counts[:n])
	for i := 0; i < numItems; i++ {
		m := int32(-(i + 1))
		for j := off[i]; j < off[i+1]; j++ {
			v := members[j]
			if dedupFirst {
				if stamp[v] == m {
					continue
				}
				stamp[v] = m
			}
			p := cursor[v]
			cursor[v]++
			csr.Item[p] = int32(i)
			if csr.Pos != nil {
				csr.Pos[p] = j - off[i]
			}
		}
	}
	return csr
}
