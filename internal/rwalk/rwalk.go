// Package rwalk implements the RW method (Algorithm 4, §V): greedy seed
// selection over pre-generated t-step reverse random walks with
// post-generation truncation.
//
// Walk counts follow the paper's accuracy guarantees: Theorem 10 for the
// cumulative score (λ ≥ ln(2/(1−ρ))/(2δ²)), Theorems 11/12 for the
// plurality family and Copeland (λ_v ≥ ln(2/(1−ρ))/(2γ*_v²)), where the
// per-node opinion gap γ*_v = min_{S} min_{x≠q} |b_xv − b̂_qv[S]| is
// estimated by the greedy pilot heuristic of §V-C: α pilot walks per node
// produce initial estimates, then a simulated greedy seed trajectory tracks
// the running minimum gap. Gaps are floored (γ can be arbitrarily small in
// adversarial instances, exploding the bound — the paper assumes γ ≠ 0) and
// walk counts are capped to keep memory bounded.
package rwalk

import (
	"fmt"
	"math"

	"ovm/internal/core"
	"ovm/internal/graph"
	"ovm/internal/sampling"
	"ovm/internal/stats"
	"ovm/internal/voting"
	"ovm/internal/walks"
)

// Config controls the RW method.
type Config struct {
	// Rho is the per-node estimate confidence ρ (default 0.9).
	Rho float64
	// Delta is the cumulative-score accuracy δ of Theorem 10 (default 0.1).
	Delta float64
	// GammaFloor lower-bounds the estimated per-node opinion gap γ*_v so
	// the Theorem 11/12 walk counts stay finite (default 0.05).
	GammaFloor float64
	// MaxWalksPerNode caps λ_v (default 2000).
	MaxWalksPerNode int
	// PilotWalks is α, the pilot walk count per node used by the γ*
	// heuristic; 0 means use the Theorem 10 count.
	PilotWalks int
	// MaxPilotRounds caps the simulated greedy trajectory length of the γ*
	// heuristic (default 20): beyond a short prefix the running minimum gap
	// stabilizes, while each extra round costs a full walk scan.
	MaxPilotRounds int
	// Seed drives all randomness (walk generation, pilot estimation).
	Seed int64
	// Parallelism caps the engine worker pool for walk generation and the
	// greedy scans: 0 means GOMAXPROCS, 1 disables concurrency. Seeds and
	// scores are bit-identical across Parallelism values.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.Rho == 0 {
		c.Rho = 0.9
	}
	if c.Delta == 0 {
		c.Delta = 0.1
	}
	if c.GammaFloor == 0 {
		c.GammaFloor = 0.05
	}
	if c.MaxWalksPerNode == 0 {
		c.MaxWalksPerNode = 2000
	}
	if c.MaxPilotRounds == 0 {
		c.MaxPilotRounds = 20
	}
	return c
}

func (c Config) validate() error {
	if c.Rho <= 0 || c.Rho >= 1 {
		return fmt.Errorf("rwalk: rho must lie in (0,1), got %v", c.Rho)
	}
	if c.Delta <= 0 || c.Delta >= 1 {
		return fmt.Errorf("rwalk: delta must lie in (0,1), got %v", c.Delta)
	}
	if c.GammaFloor <= 0 {
		return fmt.Errorf("rwalk: gamma floor must be positive, got %v", c.GammaFloor)
	}
	if c.MaxWalksPerNode < 1 {
		return fmt.Errorf("rwalk: max walks per node must be >= 1, got %d", c.MaxWalksPerNode)
	}
	return nil
}

// Result reports an RW run.
type Result struct {
	Seeds          []int32
	EstimatedValue float64 // F̂ of the selected seed set
	Gains          []float64
	TotalWalks     int
	BytesUsed      int64     // walk storage footprint (Fig 17 memory study)
	Lambda         []int32   // final per-node walk plan
	Gamma          []float64 // estimated γ*_v (nil for cumulative)
	// Rounds is the per-round work accounting of the greedy selection
	// (nil when cost accounting is disabled). Observability only: it
	// never influences seeds or scores.
	Rounds []walks.RoundCost
}

// CumulativeLambda resolves the per-node walk count the cumulative score
// uses (Theorem 10's λ, capped by MaxWalksPerNode) for this configuration.
// Index builders call it so a persisted walk artifact records exactly the
// plan a live Select would generate.
func CumulativeLambda(cfg Config) (int, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	lam, err := stats.WalksForCumulative(cfg.Delta, cfg.Rho)
	if err != nil {
		return 0, err
	}
	if lam > cfg.MaxWalksPerNode {
		lam = cfg.MaxWalksPerNode
	}
	return lam, nil
}

// GenerateSet creates the Algorithm 4 walk set for an explicit per-node
// plan on the problem's target candidate, using the same substream family
// as Select — the artifact a serving index persists. The returned set is
// pristine (no seeds applied).
func GenerateSet(p *core.Problem, plan []int32, seed int64, parallelism int) (*walks.Set, error) {
	cand := p.Sys.Candidate(p.Target)
	sampler, err := graph.NewInEdgeSampler(cand.G)
	if err != nil {
		return nil, err
	}
	return walks.Generate(sampler, cand.Stub, p.Horizon, plan, sampling.Stream{Seed: seed, ID: 101}, parallelism)
}

// RepairSet incrementally rebuilds a pristine RW walk set after a graph
// mutation. p must describe the MUTATED system; old is the set generated
// (with GenerateSet and the same seed) over the pre-mutation graph; touched
// marks the nodes whose in-neighborhoods or stubbornness changed. The
// returned set is byte-identical to GenerateSet on the mutated system with
// the same plan, but only the invalidated owners are regenerated (from
// their original substreams in the seed's family). p.Ctx, when set, cancels
// the repair at shard boundaries.
func RepairSet(p *core.Problem, old *walks.Set, touched []bool, seed int64, parallelism int) (*walks.Set, walks.RepairStats, error) {
	cand := p.Sys.Candidate(p.Target)
	sampler, err := graph.NewInEdgeSampler(cand.G)
	if err != nil {
		return nil, walks.RepairStats{}, err
	}
	return walks.RepairCtx(p.Ctx, old, sampler, cand.Stub, touched, sampling.Stream{Seed: seed, ID: 101}, parallelism)
}

// SelectOnSet runs the greedy selection of Algorithm 4 over a pre-generated
// walk set (freshly generated, or a Clone of a loaded artifact). The set is
// mutated by truncation; callers serving concurrent queries must pass a
// private clone. comp may carry precomputed competitor opinions for the
// problem's (target, horizon); nil computes them here. Given a set produced
// by GenerateSet with the plan Select would derive, the result's seeds and
// estimates are byte-identical to Select's.
func SelectOnSet(p *core.Problem, set *walks.Set, comp [][]float64, parallelism int) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if comp == nil {
		var err error
		comp, err = core.CompetitorOpinionsCtx(p.Ctx, p.Sys, p.Target, p.Horizon, parallelism)
		if err != nil {
			return nil, err
		}
	}
	cand := p.Sys.Candidate(p.Target)
	est, err := walks.NewEstimator(set, p.Target, cand.Init, comp, walks.UniformOwnerWeights(set), parallelism)
	if err != nil {
		return nil, err
	}
	est.SetContext(p.Ctx)
	gr, err := est.SelectGreedy(p.K, p.Score)
	if err != nil {
		return nil, err
	}
	return &Result{
		Seeds:          gr.Seeds,
		EstimatedValue: gr.Value,
		Gains:          gr.Gains,
		TotalWalks:     set.NumWalks(),
		BytesUsed:      set.BytesUsed(),
		Rounds:         append([]walks.RoundCost(nil), est.RoundCosts()...),
	}, nil
}

// Select runs Algorithm 4 for the given problem.
func Select(p *core.Problem, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cand := p.Sys.Candidate(p.Target)
	sampler, err := graph.NewInEdgeSampler(cand.G)
	if err != nil {
		return nil, err
	}
	comp, err := core.CompetitorOpinionsCtx(p.Ctx, p.Sys, p.Target, p.Horizon, cfg.Parallelism)
	if err != nil {
		return nil, err
	}

	var gammaOut []float64
	n := p.Sys.N()
	plan := make([]int32, n)
	switch p.Score.(type) {
	case voting.Cumulative:
		lam, err := CumulativeLambda(cfg)
		if err != nil {
			return nil, err
		}
		for v := range plan {
			plan[v] = int32(lam)
		}
	default:
		gamma, err := estimateGammaStar(p, cfg, sampler, comp)
		if err != nil {
			return nil, err
		}
		gammaOut = gamma
		oneSided := false
		if _, ok := p.Score.(voting.Copeland); ok {
			oneSided = true
		}
		for v := range plan {
			var lam int
			var err error
			if oneSided {
				lam, err = stats.WalksForCopeland(gamma[v], cfg.Rho)
			} else {
				lam, err = stats.WalksForPlurality(gamma[v], cfg.Rho)
			}
			if err != nil {
				return nil, err
			}
			if lam > cfg.MaxWalksPerNode {
				lam = cfg.MaxWalksPerNode
			}
			plan[v] = int32(lam)
		}
	}

	set, err := walks.GenerateCtx(p.Ctx, sampler, cand.Stub, p.Horizon, plan, sampling.Stream{Seed: cfg.Seed, ID: 101}, cfg.Parallelism)
	if err != nil {
		return nil, err
	}
	res, err := SelectOnSet(p, set, comp, cfg.Parallelism)
	if err != nil {
		return nil, err
	}
	res.Lambda = plan
	res.Gamma = gammaOut
	return res, nil
}

// Selector adapts Select to the core.SeedSelector signature used by
// MinSeedsToWin.
func Selector(p core.Problem, cfg Config) core.SeedSelector {
	return func(k int) ([]int32, error) {
		q := p
		q.K = k
		r, err := Select(&q, cfg)
		if err != nil {
			return nil, err
		}
		return r.Seeds, nil
	}
}

// estimateGammaStar implements the §V-C pilot heuristic for
// γ*_v = min_{|S|≤k} min_{x≠q} |b_xv − b̂_qv[S]|: α pilot walks per node
// estimate the seedless opinions; a simulated greedy trajectory (cumulative
// gains on the pilot walks) adds up to k pilot seeds, and the running
// minimum gap per node is recorded after every addition.
func estimateGammaStar(p *core.Problem, cfg Config, sampler *graph.InEdgeSampler, comp [][]float64) ([]float64, error) {
	cand := p.Sys.Candidate(p.Target)
	n := p.Sys.N()
	alpha := cfg.PilotWalks
	if alpha == 0 {
		a, err := stats.WalksForCumulative(cfg.Delta, cfg.Rho)
		if err != nil {
			return nil, err
		}
		alpha = a
	}
	if alpha > cfg.MaxWalksPerNode {
		alpha = cfg.MaxWalksPerNode
	}
	plan := make([]int32, n)
	for v := range plan {
		plan[v] = int32(alpha)
	}
	set, err := walks.GenerateCtx(p.Ctx, sampler, cand.Stub, p.Horizon, plan, sampling.Stream{Seed: cfg.Seed, ID: 103}, cfg.Parallelism)
	if err != nil {
		return nil, err
	}
	est, err := walks.NewEstimator(set, p.Target, cand.Init, comp, walks.UniformOwnerWeights(set), cfg.Parallelism)
	if err != nil {
		return nil, err
	}
	est.SetContext(p.Ctx)
	gamma := make([]float64, n)
	for v := range gamma {
		gamma[v] = math.Inf(1)
	}
	record := func() {
		for i := 0; i < set.NumOwners(); i++ {
			v := set.Owner(i)
			b := est.Estimate(i)
			for x := range comp {
				if x == p.Target {
					continue
				}
				if g := math.Abs(comp[x][v] - b); g < gamma[v] {
					gamma[v] = g
				}
			}
		}
	}
	record()
	rounds := p.K
	if rounds > cfg.MaxPilotRounds {
		rounds = cfg.MaxPilotRounds
	}
	for round := 0; round < rounds && round < n; round++ {
		if _, err := est.SelectGreedy(1, voting.Cumulative{}); err != nil {
			return nil, err
		}
		record()
	}
	for v := range gamma {
		if gamma[v] < cfg.GammaFloor || math.IsInf(gamma[v], 1) {
			gamma[v] = cfg.GammaFloor
		}
	}
	return gamma, nil
}
