package rwalk_test

import (
	"math"
	"math/rand"
	"testing"

	"ovm/internal/core"
	"ovm/internal/graph"
	"ovm/internal/opinion"
	"ovm/internal/paperexample"
	"ovm/internal/rwalk"
	"ovm/internal/voting"
)

func paperProblem(t *testing.T, score voting.Score, k int) *core.Problem {
	t.Helper()
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	return &core.Problem{Sys: sys, Target: 0, Horizon: 1, K: k, Score: score}
}

func randomProblem(t *testing.T, seed int64, n, rCand, k, horizon int, score voting.Score) *core.Problem {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < 5*n; i++ {
		_ = b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)), r.Float64()+0.05)
	}
	g, err := b.BuildColumnStochastic()
	if err != nil {
		t.Fatal(err)
	}
	cands := make([]*opinion.Candidate, rCand)
	for q := range cands {
		init := make([]float64, n)
		stub := make([]float64, n)
		for i := range init {
			init[i] = r.Float64()
			stub[i] = r.Float64()
		}
		cands[q] = &opinion.Candidate{Name: string(rune('a' + q)), G: g, Init: init, Stub: stub}
	}
	sys, err := opinion.NewSystem(cands)
	if err != nil {
		t.Fatal(err)
	}
	return &core.Problem{Sys: sys, Target: 0, Horizon: horizon, K: k, Score: score}
}

func TestSelectCumulativePaperExample(t *testing.T) {
	p := paperProblem(t, voting.Cumulative{}, 1)
	res, err := rwalk.Select(p, rwalk.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 1 || res.Seeds[0] != 0 {
		t.Errorf("RW cumulative picked %v, want [0]", res.Seeds)
	}
	if math.Abs(res.EstimatedValue-3.30) > 0.1 {
		t.Errorf("estimated value %v, want ≈3.30", res.EstimatedValue)
	}
	if res.TotalWalks != 4*res.TotalWalks/4 || res.TotalWalks == 0 {
		t.Errorf("unexpected walk count %d", res.TotalWalks)
	}
	if res.Gamma != nil {
		t.Error("cumulative run should not estimate gamma")
	}
	if res.BytesUsed <= 0 {
		t.Error("BytesUsed should be positive")
	}
}

func TestSelectPluralityPaperExample(t *testing.T) {
	p := paperProblem(t, voting.Plurality{}, 1)
	res, err := rwalk.Select(p, rwalk.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 1 || res.Seeds[0] != 2 {
		t.Errorf("RW plurality picked %v, want [2]", res.Seeds)
	}
	if res.Gamma == nil || len(res.Gamma) != 4 {
		t.Fatal("gamma estimates missing")
	}
	for v, g := range res.Gamma {
		if g <= 0 {
			t.Errorf("gamma[%d] = %v, want positive", v, g)
		}
	}
	if res.Lambda == nil {
		t.Fatal("lambda plan missing")
	}
}

func TestSelectCopelandPaperExample(t *testing.T) {
	p := paperProblem(t, voting.Copeland{}, 1)
	res, err := rwalk.Select(p, rwalk.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 1 || (res.Seeds[0] != 2 && res.Seeds[0] != 3) {
		t.Errorf("RW copeland picked %v, want [2] or [3]", res.Seeds)
	}
}

func TestSelectApproachesDMQuality(t *testing.T) {
	// On random instances RW's exact score should be close to DM's.
	for _, score := range []voting.Score{voting.Cumulative{}, voting.Plurality{}} {
		p := randomProblem(t, 7, 60, 2, 3, 4, score)
		dmSeeds, _, err := core.SelectSeedsDM(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		dmVal, err := core.EvaluateExact(p.Sys, 0, p.Horizon, score, dmSeeds, 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := rwalk.Select(p, rwalk.Config{Seed: 8, MaxWalksPerNode: 500})
		if err != nil {
			t.Fatal(err)
		}
		rwVal, err := core.EvaluateExact(p.Sys, 0, p.Horizon, score, res.Seeds, 1)
		if err != nil {
			t.Fatal(err)
		}
		if rwVal < 0.85*dmVal {
			t.Errorf("%s: RW exact value %v too far below DM %v", score.Name(), rwVal, dmVal)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	p := paperProblem(t, voting.Cumulative{}, 1)
	if _, err := rwalk.Select(p, rwalk.Config{Rho: 1.5}); err == nil {
		t.Error("expected error for rho > 1")
	}
	if _, err := rwalk.Select(p, rwalk.Config{Delta: -0.1}); err == nil {
		t.Error("expected error for negative delta")
	}
	if _, err := rwalk.Select(p, rwalk.Config{GammaFloor: -1}); err == nil {
		t.Error("expected error for negative gamma floor")
	}
	if _, err := rwalk.Select(p, rwalk.Config{MaxWalksPerNode: -3}); err == nil {
		t.Error("expected error for negative walk cap")
	}
	bad := *p
	bad.K = 0
	if _, err := rwalk.Select(&bad, rwalk.Config{}); err == nil {
		t.Error("expected error for invalid problem")
	}
}

func TestHigherRhoMoreWalks(t *testing.T) {
	p := paperProblem(t, voting.Cumulative{}, 1)
	lo, err := rwalk.Select(p, rwalk.Config{Rho: 0.75, Seed: 5, MaxWalksPerNode: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := rwalk.Select(p, rwalk.Config{Rho: 0.95, Seed: 5, MaxWalksPerNode: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if hi.TotalWalks <= lo.TotalWalks {
		t.Errorf("rho=0.95 should need more walks than rho=0.75: %d vs %d", hi.TotalWalks, lo.TotalWalks)
	}
}

func TestSelectorAdapter(t *testing.T) {
	p := paperProblem(t, voting.Plurality{}, 1)
	sel := rwalk.Selector(*p, rwalk.Config{Seed: 6})
	seeds, err := sel(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 1 {
		t.Fatalf("selector returned %d seeds, want 1", len(seeds))
	}
	// MinSeedsToWin with the RW selector on the paper example: k* = 1.
	win, err := core.MinSeedsToWin(p.Sys, 0, 1, voting.Plurality{}, sel)
	if err != nil {
		t.Fatal(err)
	}
	if len(win) != 1 {
		t.Errorf("RW k* = %d, want 1", len(win))
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	p := randomProblem(t, 9, 40, 2, 2, 3, voting.Cumulative{})
	a, err := rwalk.Select(p, rwalk.Config{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := rwalk.Select(p, rwalk.Config{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Seeds) != len(b.Seeds) {
		t.Fatal("non-deterministic seed count")
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatalf("non-deterministic seeds: %v vs %v", a.Seeds, b.Seeds)
		}
	}
}
