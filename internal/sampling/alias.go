package sampling

import (
	"fmt"
	"math/rand"
)

// Alias is a Walker alias table supporting O(1) sampling from a fixed
// discrete distribution over {0, …, n−1}. Construction is O(n).
type Alias struct {
	prob  []float64
	alias []int32
}

// NewAlias builds an alias table from non-negative weights. The weights need
// not sum to 1; they are normalized internally. It returns an error if the
// slice is empty, contains a negative weight, or sums to zero.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("sampling: empty weight slice")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("sampling: negative weight %v at index %d", w, i)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("sampling: weights sum to zero")
	}
	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	// Scaled probabilities; small/large worklists (Vose's method).
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w / total * float64(n)
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, l := range large {
		a.prob[l] = 1
		a.alias[l] = l
	}
	for _, s := range small {
		a.prob[s] = 1 // numerical leftovers
		a.alias[s] = s
	}
	return a, nil
}

// N returns the support size of the distribution.
func (a *Alias) N() int { return len(a.prob) }

// Sample draws one index according to the table's distribution.
func (a *Alias) Sample(r *rand.Rand) int {
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}

// Prefix supports O(log n) sampling via binary search over cumulative
// weights. It is cheaper to build than an alias table and is used for
// distributions sampled only a handful of times.
type Prefix struct {
	cum []float64
}

// NewPrefix builds a prefix-sum sampler from non-negative weights.
func NewPrefix(weights []float64) (*Prefix, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("sampling: empty weight slice")
	}
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("sampling: negative weight %v at index %d", w, i)
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("sampling: weights sum to zero")
	}
	return &Prefix{cum: cum}, nil
}

// Sample draws one index according to the distribution.
func (p *Prefix) Sample(r *rand.Rand) int {
	total := p.cum[len(p.cum)-1]
	x := r.Float64() * total
	lo, hi := 0, len(p.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if p.cum[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N returns the support size of the distribution.
func (p *Prefix) N() int { return len(p.cum) }
