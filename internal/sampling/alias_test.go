package sampling

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func chiSquareOK(counts []int, weights []float64, draws int) bool {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	// Generous threshold: per-bucket relative error < 15% for buckets with
	// expectation >= 100.
	for i, c := range counts {
		exp := weights[i] / total * float64(draws)
		if exp < 100 {
			continue
		}
		if math.Abs(float64(c)-exp) > 0.15*exp {
			return false
		}
	}
	return true
}

func TestAliasDistribution(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	counts := make([]int, len(weights))
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[a.Sample(r)]++
	}
	if !chiSquareOK(counts, weights, draws) {
		t.Errorf("alias sampling deviates from distribution: %v", counts)
	}
}

func TestPrefixDistribution(t *testing.T) {
	weights := []float64{5, 0, 1, 4}
	p, err := NewPrefix(weights)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	counts := make([]int, len(weights))
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[p.Sample(r)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight bucket sampled %d times", counts[1])
	}
	if !chiSquareOK(counts, weights, draws) {
		t.Errorf("prefix sampling deviates from distribution: %v", counts)
	}
}

func TestAliasSingleBucket(t *testing.T) {
	a, err := NewAlias([]float64{3.5})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		if a.Sample(r) != 0 {
			t.Fatal("single-bucket alias must always return 0")
		}
	}
}

func TestAliasErrors(t *testing.T) {
	if _, err := NewAlias(nil); err == nil {
		t.Error("expected error for empty weights")
	}
	if _, err := NewAlias([]float64{1, -1}); err == nil {
		t.Error("expected error for negative weight")
	}
	if _, err := NewAlias([]float64{0, 0}); err == nil {
		t.Error("expected error for zero-sum weights")
	}
	if _, err := NewPrefix(nil); err == nil {
		t.Error("expected error for empty weights")
	}
	if _, err := NewPrefix([]float64{-0.1}); err == nil {
		t.Error("expected error for negative weight")
	}
	if _, err := NewPrefix([]float64{0}); err == nil {
		t.Error("expected error for zero-sum weights")
	}
}

func TestAliasNeverSamplesZeroWeight(t *testing.T) {
	weights := []float64{0, 1, 0, 2, 0}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 10000; i++ {
		s := a.Sample(r)
		if weights[s] == 0 {
			t.Fatalf("sampled zero-weight index %d", s)
		}
	}
}

func TestAliasMatchesPrefixStatistically(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = r.Float64() * 10
		}
		weights[r.Intn(n)] = 5 // ensure positive total
		a, err := NewAlias(weights)
		if err != nil {
			return false
		}
		p, err := NewPrefix(weights)
		if err != nil {
			return false
		}
		const draws = 20000
		ca := make([]float64, n)
		cp := make([]float64, n)
		ra := rand.New(rand.NewSource(seed + 1))
		rp := rand.New(rand.NewSource(seed + 2))
		for i := 0; i < draws; i++ {
			ca[a.Sample(ra)]++
			cp[p.Sample(rp)]++
		}
		for i := range ca {
			if math.Abs(ca[i]-cp[i]) > 0.05*draws {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 10})
	if err != nil {
		t.Error(err)
	}
}

func TestDeriveSeedDistinctStreams(t *testing.T) {
	seen := map[int64]uint64{}
	for s := uint64(0); s < 1000; s++ {
		d := DeriveSeed(42, s)
		if prev, ok := seen[d]; ok {
			t.Fatalf("streams %d and %d collide on seed 42", prev, s)
		}
		seen[d] = s
	}
}

func TestDeriveSeedDeterministic(t *testing.T) {
	if DeriveSeed(7, 3) != DeriveSeed(7, 3) {
		t.Error("DeriveSeed must be deterministic")
	}
	if DeriveSeed(7, 3) == DeriveSeed(8, 3) {
		t.Error("different parent seeds should give different children")
	}
}

func TestNewRandReproducible(t *testing.T) {
	r1 := NewRand(99, 5)
	r2 := NewRand(99, 5)
	for i := 0; i < 10; i++ {
		if r1.Int63() != r2.Int63() {
			t.Fatal("NewRand streams with equal (seed,stream) must match")
		}
	}
}

func BenchmarkAliasSample(b *testing.B) {
	weights := make([]float64, 1024)
	r := rand.New(rand.NewSource(1))
	for i := range weights {
		weights[i] = r.Float64()
	}
	a, err := NewAlias(weights)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Sample(r)
	}
}

func BenchmarkPrefixSample(b *testing.B) {
	weights := make([]float64, 1024)
	r := rand.New(rand.NewSource(1))
	for i := range weights {
		weights[i] = r.Float64()
	}
	p, err := NewPrefix(weights)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Sample(r)
	}
}
