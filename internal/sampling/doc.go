// Package sampling provides the weighted discrete sampling substrate for the
// random-walk (§V) and sketch (§VI) estimators: Walker alias tables for O(1)
// draws from the per-node in-edge distributions, prefix-sum samplers for
// one-shot distributions, and deterministic splittable RNG streams so that
// every experiment in the harness is reproducible from a single seed.
package sampling
