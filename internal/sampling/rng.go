package sampling

import "math/rand"

// splitmix64 advances a SplitMix64 state and returns the next output.
// It is used to derive statistically independent child seeds from a parent
// seed, so that each subsystem (walk generation, sketch sampling, dataset
// synthesis, …) gets its own reproducible stream.
func splitmix64(state uint64) (uint64, uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// DeriveSeed deterministically derives the stream-th child seed from seed.
// Distinct stream values give (empirically) uncorrelated child streams.
func DeriveSeed(seed int64, stream uint64) int64 {
	s := uint64(seed) ^ (stream * 0xd1342543de82ef95)
	var out uint64
	s, out = splitmix64(s)
	_, out2 := splitmix64(s ^ out)
	return int64(out2)
}

// NewRand returns a deterministic *rand.Rand for the given (seed, stream)
// pair. Each caller should use a distinct stream identifier.
func NewRand(seed int64, stream uint64) *rand.Rand {
	return rand.New(rand.NewSource(DeriveSeed(seed, stream)))
}
