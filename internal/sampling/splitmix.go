package sampling

// Source is the minimal random surface consumed by the samplers, walk
// generators, and RR-set builders. Both *math/rand.Rand and *SplitMix
// satisfy it, so hot paths can pick the cheap O(1)-seedable generator while
// tests and legacy call sites keep using the standard library one.
type Source interface {
	// Float64 returns a uniform float64 in [0,1).
	Float64() float64
	// Intn returns a uniform int in [0,n). It panics if n <= 0.
	Intn(n int) int
}

// SplitMix is a SplitMix64 pseudo-random generator. Unlike *rand.Rand
// (whose lagged-Fibonacci source pays a ~600-word seeding pass), a SplitMix
// is seeded in O(1), which makes one-generator-per-work-item schemes cheap:
// the parallel engine assigns every owner node / sketch / RR set its own
// substream, so results are bit-identical no matter how work is scheduled
// across workers.
type SplitMix struct {
	state uint64
}

// NewSplitMix returns a SplitMix seeded from the (seed, stream) pair, using
// the same derivation discipline as NewRand.
func NewSplitMix(seed int64, stream uint64) *SplitMix {
	s := &SplitMix{state: uint64(seed) ^ (stream * 0xd1342543de82ef95)}
	// Two warm-up outputs decorrelate nearby (seed, stream) pairs.
	s.Uint64()
	s.Uint64()
	return s
}

// Uint64 advances the generator and returns the next 64-bit output.
func (s *SplitMix) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0,1) with 53 random bits.
func (s *SplitMix) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0,n). The modulo bias is at most n/2^64,
// far below anything the estimators can resolve.
func (s *SplitMix) Intn(n int) int {
	if n <= 0 {
		panic("sampling: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

var _ Source = (*SplitMix)(nil)

// Stream identifies a family of deterministic random substreams: a root
// seed plus a subsystem identifier. Work items (owner nodes, sketch
// indices, RR-set indices) index into the family with At, so the random
// numbers a work item consumes depend only on (Seed, ID, item) — never on
// worker count or scheduling order. This is what makes every parallel
// sampler in the library bit-reproducible across Parallelism settings.
type Stream struct {
	// Seed is the user-facing root seed.
	Seed int64
	// ID names the subsystem consuming the stream; distinct IDs give
	// (empirically) uncorrelated families.
	ID uint64
}

// At returns the generator for work item i.
func (st Stream) At(i uint64) *SplitMix {
	return NewSplitMix(st.Seed, st.ID^(i*0x9e3779b97f4a7c15+0x632be59bd9b4e019))
}

// Sub derives a child stream, for subsystems that need several independent
// substream families from one configuration seed.
func (st Stream) Sub(i uint64) Stream {
	_, mixed := splitmix64(st.ID ^ (i * 0xd1342543de82ef95))
	return Stream{Seed: st.Seed, ID: mixed}
}
