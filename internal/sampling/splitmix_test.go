package sampling

import (
	"math"
	"math/rand"
	"testing"
)

func TestSplitMixDeterminism(t *testing.T) {
	a := NewSplitMix(42, 7)
	b := NewSplitMix(42, 7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same (seed, stream) diverged at output %d", i)
		}
	}
	c := NewSplitMix(42, 8)
	if a.Uint64() == c.Uint64() {
		t.Error("distinct streams produced the same output (suspicious)")
	}
}

func TestSplitMixFloat64Range(t *testing.T) {
	s := NewSplitMix(1, 1)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestSplitMixFloat64Uniform(t *testing.T) {
	s := NewSplitMix(3, 9)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		f := s.Float64()
		sum += f
		sumSq += f * f
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean = %v, want ≈0.5", mean)
	}
	variance := sumSq/n - mean*mean
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("variance = %v, want ≈1/12", variance)
	}
}

func TestSplitMixIntn(t *testing.T) {
	s := NewSplitMix(5, 2)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if math.Abs(float64(c)-n/10) > 4*math.Sqrt(n/10) {
			t.Errorf("Intn bucket %d has %d hits, want ≈%d", v, c, n/10)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	s.Intn(0)
}

func TestStreamAtIndependence(t *testing.T) {
	st := Stream{Seed: 11, ID: 3}
	a, b := st.At(0), st.At(1)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("adjacent substreams collided on %d of 64 outputs", same)
	}
	// Same index twice must replay exactly.
	c, d := st.At(5), st.At(5)
	for i := 0; i < 32; i++ {
		if c.Uint64() != d.Uint64() {
			t.Fatal("Stream.At is not reproducible")
		}
	}
}

func TestStreamSubDistinct(t *testing.T) {
	st := Stream{Seed: 1, ID: 100}
	s1, s2 := st.Sub(1), st.Sub(2)
	if s1.ID == s2.ID {
		t.Error("Sub(1) and Sub(2) share an ID")
	}
	if s1.Seed != st.Seed {
		t.Error("Sub must preserve the root seed")
	}
	a, b := s1.At(0), s2.At(0)
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Error("child streams produced identical outputs")
	}
}

// TestSourceCompat confirms both generators satisfy the Source interface
// and behave sanely through it.
func TestSourceCompat(t *testing.T) {
	for _, src := range []Source{
		NewSplitMix(1, 1),
		rand.New(rand.NewSource(1)),
	} {
		if f := src.Float64(); f < 0 || f >= 1 {
			t.Errorf("Float64 out of range: %v", f)
		}
		if v := src.Intn(3); v < 0 || v >= 3 {
			t.Errorf("Intn out of range: %d", v)
		}
	}
}
