// Binary index format: the persistent artifact store behind ovmd's
// load-not-recompute startup. One file bundles a complete opinion system
// (exact CSR graph + per-candidate vectors) with any number of precomputed
// sketch sets, walk sets, and RR-set collections, each tagged with the
// generation parameters (target, horizon, θ/λ/count, seed) that make the
// artifact reusable: a query whose parameters match loads the artifact and
// proceeds bit-identically to a from-scratch run.
//
// Layout (all integers little-endian):
//
//	magic "OVMIDX" + u32 format version (currently 1)
//	system:   graph (see graph.WriteBinary), u32 r, per candidate
//	          {u32 nameLen, name, n×f64 init, n×f64 stub}
//	sketches: u32 count, each {i64 seed, u32 target, u32 horizon, u32 theta,
//	          walk snapshot}
//	walks:    u32 count, each {i64 seed, u32 target, u32 horizon, u32 lambda,
//	          walk snapshot}
//	rrsets:   u32 count, each {i64 seed, u32 target, u32 model,
//	          u64 memberLen, members, u64 offLen, offsets}
//	updates:  (format v2 only) u64 base epoch, u32 batch count, each batch
//	          {u32 op count, each op {u8 kind, i32 from, i32 to, f64 w,
//	          u32 candidate, i32 node, f64 value}}
//	u32 CRC-32 (IEEE) of every preceding byte
//
// A walk snapshot is {u32 horizon, u64 nodesLen, nodes, u64 offLen, offs,
// u64 ownerLen, owners, owner offsets (ownerLen+1)}.
//
// Format v2 appends the dynamic-update section: the base epoch the stored
// artifacts already embody (non-zero after a log compaction rebased them)
// plus the batches applied since. WriteIndex emits v1 when the section is
// empty (so update-free indexes stay byte-compatible with the original
// format) and v2 otherwise; ReadIndex accepts both. A loader starts the
// dataset at the base epoch and replays the log over the base artifacts via
// incremental repair, which reproduces the exact epoch the writer was
// serving.
package serialize

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"

	"ovm/internal/binio"
	"ovm/internal/dynamic"
	"ovm/internal/graph"
	"ovm/internal/im"
	"ovm/internal/opinion"
	"ovm/internal/walks"
)

// IndexFormatVersion is the newest on-disk format version. ReadIndex
// accepts every version in [IndexFormatV1, IndexFormatVersion]; the
// stream writer WriteIndex emits v1/v2, the section-table writer
// WriteIndexV3 emits v3.
const IndexFormatVersion = IndexFormatV3

// The format history: v1 has no update-log section; v2 appends one; v3 is
// the mmap-friendly section-table layout (see v3.go).
const (
	IndexFormatV1 = 1
	IndexFormatV2 = 2
	IndexFormatV3 = 3
)

const indexMagic = "OVMIDX"

// Sanity caps for declared counts, so corrupted headers error out instead
// of triggering huge allocations.
const (
	maxArtifacts     = 1 << 16
	maxElements      = 1 << 31
	maxNameLen       = 1 << 16
	maxCandidates    = 1 << 16
	maxUpdateBatches = 1 << 20
	maxBatchOps      = 1 << 20
	indexTrailerSz   = 4
)

// Index bundles an opinion system with its precomputed query-serving
// artifacts. Artifact slices may be empty; Sys is mandatory. Updates is the
// dynamic-update log: batches applied (in order) to the dataset after the
// artifacts were generated — loaders replay them via incremental repair to
// reach the writer's epoch. BaseEpoch is the epoch the stored artifacts
// already embody: 0 for a freshly built index, non-zero after a log
// compaction rebased the artifacts onto the live dataset state; the
// restored dataset's epoch is BaseEpoch + len(Updates).
type Index struct {
	Sys       *opinion.System
	Sketches  []*SketchArtifact
	Walks     []*WalkArtifact
	RRs       []*RRArtifact
	BaseEpoch int64
	Updates   []dynamic.Batch
}

// FormatVersion reports the on-disk version WriteIndex would emit for this
// index: v1 while the update section is empty, v2 once it carries batches
// or a non-zero base epoch.
func (idx *Index) FormatVersion() int {
	if len(idx.Updates) > 0 || idx.BaseEpoch > 0 {
		return IndexFormatV2
	}
	return IndexFormatV1
}

// SketchArtifact is a sampled reverse-walk sketch set (the RS method's
// precomputation), tagged with the parameters that reproduce it: walks are
// GenerateSampled(target's graph/stub, Horizon, Theta, sketch stream(Seed)).
type SketchArtifact struct {
	Seed    int64
	Target  int
	Horizon int
	Theta   int
	Set     *walks.Snapshot

	// Index optionally carries the node → walk postings index so loaders
	// skip the rebuild. Persisted by the v3 format only; WriteIndex (v1/v2)
	// ignores it.
	Index *walks.IndexSnapshot
}

// WalkArtifact is a per-node walk set generated with the RW method's
// uniform cumulative plan: Lambda walks from every node at the given
// horizon (Theorem 10's λ, already capped).
type WalkArtifact struct {
	Seed    int64
	Target  int
	Horizon int
	Lambda  int
	Set     *walks.Snapshot

	// Index optionally carries the node → walk postings index (v3 only).
	Index *walks.IndexSnapshot
}

// RRArtifact is a reverse-reachable set collection for one diffusion model,
// sampled from the IMM stream family of the given seed. Loaded collections
// serve as sampling caches for IC/LT baseline queries.
type RRArtifact struct {
	Seed   int64
	Target int
	Sets   *im.Snapshot

	// Index optionally carries the node → RR-set inverted index (v3 only).
	Index *im.IndexSnapshot
}

// Validate checks the index invariants that do not require replaying
// generation: shapes, ranges, and finite values.
func (idx *Index) Validate() error {
	if idx.Sys == nil {
		return fmt.Errorf("serialize: index has no system")
	}
	for i, a := range idx.Sketches {
		if a.Set == nil {
			return fmt.Errorf("serialize: sketch artifact %d has no walk set", i)
		}
		if a.Target < 0 || a.Target >= idx.Sys.R() {
			return fmt.Errorf("serialize: sketch artifact %d targets candidate %d of %d", i, a.Target, idx.Sys.R())
		}
		if a.Horizon < 0 || a.Theta < 1 {
			return fmt.Errorf("serialize: sketch artifact %d has horizon %d, theta %d", i, a.Horizon, a.Theta)
		}
	}
	for i, a := range idx.Walks {
		if a.Set == nil {
			return fmt.Errorf("serialize: walk artifact %d has no walk set", i)
		}
		if a.Target < 0 || a.Target >= idx.Sys.R() {
			return fmt.Errorf("serialize: walk artifact %d targets candidate %d of %d", i, a.Target, idx.Sys.R())
		}
		if a.Horizon < 0 || a.Lambda < 1 {
			return fmt.Errorf("serialize: walk artifact %d has horizon %d, lambda %d", i, a.Horizon, a.Lambda)
		}
	}
	for i, a := range idx.RRs {
		if a.Sets == nil {
			return fmt.Errorf("serialize: rr artifact %d has no set collection", i)
		}
		if a.Target < 0 || a.Target >= idx.Sys.R() {
			return fmt.Errorf("serialize: rr artifact %d targets candidate %d of %d", i, a.Target, idx.Sys.R())
		}
	}
	if idx.BaseEpoch < 0 {
		return fmt.Errorf("serialize: negative base epoch %d", idx.BaseEpoch)
	}
	for i, b := range idx.Updates {
		if err := b.Validate(idx.Sys.N(), idx.Sys.R()); err != nil {
			return fmt.Errorf("serialize: update batch %d: %w", i, err)
		}
	}
	return nil
}

// WriteIndex serializes idx in the versioned binary format, appending a
// CRC-32 of the whole payload so loaders detect torn or corrupted files.
func WriteIndex(w io.Writer, idx *Index) error {
	if err := idx.Validate(); err != nil {
		return err
	}
	if err := checkSystemFinite(idx.Sys); err != nil {
		return err
	}
	version := idx.FormatVersion()
	crc := crc32.NewIEEE()
	bw := bufio.NewWriterSize(io.MultiWriter(w, crc), 1<<20)
	if _, err := bw.WriteString(indexMagic); err != nil {
		return err
	}
	if err := binio.WriteU32(bw, uint32(version)); err != nil {
		return err
	}
	if err := writeBinarySystem(bw, idx.Sys); err != nil {
		return err
	}
	if err := binio.WriteU32(bw, uint32(len(idx.Sketches))); err != nil {
		return err
	}
	for _, a := range idx.Sketches {
		if err := binio.WriteI64(bw, a.Seed); err != nil {
			return err
		}
		for _, v := range []uint32{uint32(a.Target), uint32(a.Horizon), uint32(a.Theta)} {
			if err := binio.WriteU32(bw, v); err != nil {
				return err
			}
		}
		if err := writeWalkSnapshot(bw, a.Set); err != nil {
			return err
		}
	}
	if err := binio.WriteU32(bw, uint32(len(idx.Walks))); err != nil {
		return err
	}
	for _, a := range idx.Walks {
		if err := binio.WriteI64(bw, a.Seed); err != nil {
			return err
		}
		for _, v := range []uint32{uint32(a.Target), uint32(a.Horizon), uint32(a.Lambda)} {
			if err := binio.WriteU32(bw, v); err != nil {
				return err
			}
		}
		if err := writeWalkSnapshot(bw, a.Set); err != nil {
			return err
		}
	}
	if err := binio.WriteU32(bw, uint32(len(idx.RRs))); err != nil {
		return err
	}
	for _, a := range idx.RRs {
		if err := binio.WriteI64(bw, a.Seed); err != nil {
			return err
		}
		if err := binio.WriteU32(bw, uint32(a.Target)); err != nil {
			return err
		}
		if err := binio.WriteU32(bw, uint32(a.Sets.Model)); err != nil {
			return err
		}
		if err := binWriteI32s(bw, a.Sets.Nodes); err != nil {
			return err
		}
		if err := binWriteI32s(bw, a.Sets.Off); err != nil {
			return err
		}
	}
	if version >= IndexFormatV2 {
		if err := binio.WriteU64(bw, uint64(idx.BaseEpoch)); err != nil {
			return err
		}
		if err := writeUpdateLog(bw, idx.Updates); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// The CRC covers everything flushed so far; write it raw (uncovered).
	var tail [indexTrailerSz]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	_, err := w.Write(tail[:])
	return err
}

// ReadIndex parses and validates the format produced by WriteIndex. The
// returned artifacts are structurally validated against the system's graph;
// restoring them into live walk sets / RR collections (walks.FromSnapshot,
// im.FromSnapshot) performs the deeper invariant checks.
func ReadIndex(r io.Reader) (*Index, error) {
	crc := crc32.NewIEEE()
	cr := &crcReader{r: bufio.NewReaderSize(r, 1<<20), h: crc}
	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, fmt.Errorf("serialize: index header: %w", err)
	}
	if string(magic) != indexMagic {
		return nil, fmt.Errorf("serialize: bad index magic %q (want %q)", magic, indexMagic)
	}
	version, err := binio.ReadU32(cr)
	if err != nil {
		return nil, fmt.Errorf("serialize: index header: %w", err)
	}
	if version < IndexFormatV1 || version > IndexFormatVersion {
		return nil, fmt.Errorf("serialize: index format version %d unsupported (want %d..%d)", version, IndexFormatV1, IndexFormatVersion)
	}
	if version == IndexFormatV3 {
		// The section-table layout is parsed from a contiguous buffer (its
		// offsets are absolute); slurp the remainder and rebuild the full
		// image. Streamed v3 reads always land on the heap — the zero-copy
		// path is OpenMapped.
		rest, err := io.ReadAll(cr.r)
		if err != nil {
			return nil, fmt.Errorf("serialize: v3 index: %w", err)
		}
		data := make([]byte, 0, len(indexMagic)+4+len(rest))
		data = append(data, indexMagic...)
		var vb [4]byte
		binary.LittleEndian.PutUint32(vb[:], version)
		data = append(data, vb[:]...)
		data = append(data, rest...)
		idx, _, err := parseV3(data, false)
		return idx, err
	}
	sys, err := readBinarySystem(cr)
	if err != nil {
		return nil, err
	}
	idx := &Index{Sys: sys}
	numSketches, err := binReadCount(cr, maxArtifacts)
	if err != nil {
		return nil, fmt.Errorf("serialize: sketch artifact count: %w", err)
	}
	for i := 0; i < numSketches; i++ {
		a := &SketchArtifact{}
		if a.Seed, err = binio.ReadI64(cr); err != nil {
			return nil, err
		}
		var fields [3]uint32
		for j := range fields {
			if fields[j], err = binio.ReadU32(cr); err != nil {
				return nil, err
			}
		}
		a.Target, a.Horizon, a.Theta = int(fields[0]), int(fields[1]), int(fields[2])
		if a.Set, err = readWalkSnapshot(cr); err != nil {
			return nil, fmt.Errorf("serialize: sketch artifact %d: %w", i, err)
		}
		idx.Sketches = append(idx.Sketches, a)
	}
	numWalks, err := binReadCount(cr, maxArtifacts)
	if err != nil {
		return nil, fmt.Errorf("serialize: walk artifact count: %w", err)
	}
	for i := 0; i < numWalks; i++ {
		a := &WalkArtifact{}
		if a.Seed, err = binio.ReadI64(cr); err != nil {
			return nil, err
		}
		var fields [3]uint32
		for j := range fields {
			if fields[j], err = binio.ReadU32(cr); err != nil {
				return nil, err
			}
		}
		a.Target, a.Horizon, a.Lambda = int(fields[0]), int(fields[1]), int(fields[2])
		if a.Set, err = readWalkSnapshot(cr); err != nil {
			return nil, fmt.Errorf("serialize: walk artifact %d: %w", i, err)
		}
		idx.Walks = append(idx.Walks, a)
	}
	numRRs, err := binReadCount(cr, maxArtifacts)
	if err != nil {
		return nil, fmt.Errorf("serialize: rr artifact count: %w", err)
	}
	for i := 0; i < numRRs; i++ {
		a := &RRArtifact{Sets: &im.Snapshot{}}
		if a.Seed, err = binio.ReadI64(cr); err != nil {
			return nil, err
		}
		var target, model uint32
		if target, err = binio.ReadU32(cr); err != nil {
			return nil, err
		}
		if model, err = binio.ReadU32(cr); err != nil {
			return nil, err
		}
		a.Target = int(target)
		a.Sets.Model = im.Model(model)
		if a.Sets.Nodes, err = binReadI32s(cr); err != nil {
			return nil, fmt.Errorf("serialize: rr artifact %d members: %w", i, err)
		}
		if a.Sets.Off, err = binReadI32s(cr); err != nil {
			return nil, fmt.Errorf("serialize: rr artifact %d offsets: %w", i, err)
		}
		idx.RRs = append(idx.RRs, a)
	}
	if version >= IndexFormatV2 {
		base, err := binio.ReadU64(cr)
		if err != nil {
			return nil, fmt.Errorf("serialize: base epoch: %w", err)
		}
		if base > math.MaxInt64 {
			return nil, fmt.Errorf("serialize: base epoch %d overflows", base)
		}
		idx.BaseEpoch = int64(base)
		if idx.Updates, err = readUpdateLog(cr); err != nil {
			return nil, err
		}
	}
	var tail [indexTrailerSz]byte
	if _, err := io.ReadFull(cr.r, tail[:]); err != nil {
		return nil, fmt.Errorf("serialize: index checksum missing: %w", err)
	}
	if got, want := crc.Sum32(), binary.LittleEndian.Uint32(tail[:]); got != want {
		return nil, fmt.Errorf("serialize: index checksum mismatch (file %08x, computed %08x)", want, got)
	}
	if err := idx.Validate(); err != nil {
		return nil, err
	}
	return idx, nil
}

// checkSystemFinite rejects NaN/Inf opinion and stubbornness values — they
// would survive a float round-trip and poison every downstream estimate.
func checkSystemFinite(s *opinion.System) error {
	for q := 0; q < s.R(); q++ {
		c := s.Candidate(q)
		for i, v := range c.Init {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("serialize: candidate %q Init[%d] is %v", c.Name, i, v)
			}
		}
		for i, v := range c.Stub {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("serialize: candidate %q Stub[%d] is %v", c.Name, i, v)
			}
		}
	}
	return nil
}

// writeBinarySystem serializes the shared graph (candidate 0's, as in the
// text format) followed by every candidate's name and vectors.
func writeBinarySystem(w io.Writer, s *opinion.System) error {
	if err := graph.WriteBinary(w, s.Candidate(0).G); err != nil {
		return err
	}
	if err := binio.WriteU32(w, uint32(s.R())); err != nil {
		return err
	}
	for q := 0; q < s.R(); q++ {
		c := s.Candidate(q)
		name := []byte(c.Name)
		if len(name) > maxNameLen {
			return fmt.Errorf("serialize: candidate %d name too long (%d bytes)", q, len(name))
		}
		if err := binio.WriteU32(w, uint32(len(name))); err != nil {
			return err
		}
		if _, err := w.Write(name); err != nil {
			return err
		}
		if err := binio.WriteF64s(w, c.Init); err != nil {
			return err
		}
		if err := binio.WriteF64s(w, c.Stub); err != nil {
			return err
		}
	}
	return nil
}

func readBinarySystem(r io.Reader) (*opinion.System, error) {
	g, err := graph.ReadBinary(r)
	if err != nil {
		return nil, err
	}
	rCand, err := binReadCount(r, maxCandidates)
	if err != nil {
		return nil, fmt.Errorf("serialize: candidate count: %w", err)
	}
	if rCand < 2 {
		return nil, fmt.Errorf("serialize: need at least 2 candidates, got %d", rCand)
	}
	n := g.N()
	cands := make([]*opinion.Candidate, rCand)
	for q := range cands {
		nameLen, err := binReadCount(r, maxNameLen)
		if err != nil {
			return nil, fmt.Errorf("serialize: candidate %d name length: %w", q, err)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, fmt.Errorf("serialize: candidate %d name: %w", q, err)
		}
		init, err := binio.ReadF64s(r, n)
		if err != nil {
			return nil, fmt.Errorf("serialize: candidate %d init: %w", q, err)
		}
		stub, err := binio.ReadF64s(r, n)
		if err != nil {
			return nil, fmt.Errorf("serialize: candidate %d stub: %w", q, err)
		}
		cands[q] = &opinion.Candidate{Name: string(name), G: g, Init: init, Stub: stub}
	}
	return opinion.NewSystem(cands)
}

func writeWalkSnapshot(w io.Writer, s *walks.Snapshot) error {
	if err := binio.WriteU32(w, uint32(s.Horizon)); err != nil {
		return err
	}
	if err := binWriteI32s(w, s.Nodes); err != nil {
		return err
	}
	if err := binWriteI32s(w, s.Off); err != nil {
		return err
	}
	if err := binWriteI32s(w, s.OwnerNodes); err != nil {
		return err
	}
	return binWriteI32s(w, s.OwnerOff)
}

func readWalkSnapshot(r io.Reader) (*walks.Snapshot, error) {
	horizon, err := binio.ReadU32(r)
	if err != nil {
		return nil, err
	}
	s := &walks.Snapshot{Horizon: int(horizon)}
	if s.Nodes, err = binReadI32s(r); err != nil {
		return nil, err
	}
	if s.Off, err = binReadI32s(r); err != nil {
		return nil, err
	}
	if s.OwnerNodes, err = binReadI32s(r); err != nil {
		return nil, err
	}
	if s.OwnerOff, err = binReadI32s(r); err != nil {
		return nil, err
	}
	return s, nil
}

// crcReader feeds every byte it reads into the running hash.
type crcReader struct {
	r io.Reader
	h hash.Hash32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		_, _ = c.h.Write(p[:n])
	}
	return n, err
}

// binWriteI32s writes a u32 count followed by the raw payload. Slices
// beyond the read-side cap are rejected at write time, so WriteIndex can
// never produce a file whose count ReadIndex refuses (or silently wraps).
func binWriteI32s(w io.Writer, xs []int32) error {
	if len(xs) > maxElements {
		return fmt.Errorf("serialize: slice of %d elements exceeds format limit %d", len(xs), maxElements)
	}
	if err := binio.WriteU32(w, uint32(len(xs))); err != nil {
		return err
	}
	return binio.WriteI32s(w, xs)
}

// binReadCount reads a u32 count and bounds it.
func binReadCount(r io.Reader, limit int) (int, error) {
	v, err := binio.ReadU32(r)
	if err != nil {
		return 0, err
	}
	if int64(v) > int64(limit) {
		return 0, fmt.Errorf("declared count %d exceeds limit %d", v, limit)
	}
	return int(v), nil
}

// binReadI32s reads a count-prefixed int32 slice.
func binReadI32s(r io.Reader) ([]int32, error) {
	count, err := binReadCount(r, maxElements)
	if err != nil {
		return nil, err
	}
	return binio.ReadI32s(r, count)
}

// The fixed one-byte codes of the dynamic op kinds in the v2 update-log
// section. Codes are append-only: never renumber a released code.
var opKindCodes = map[dynamic.OpKind]uint8{
	dynamic.OpAddEdge:         1,
	dynamic.OpRemoveEdge:      2,
	dynamic.OpSetWeight:       3,
	dynamic.OpSetOpinion:      4,
	dynamic.OpSetStubbornness: 5,
}

var opKindByCode = func() map[uint8]dynamic.OpKind {
	m := make(map[uint8]dynamic.OpKind, len(opKindCodes))
	for k, c := range opKindCodes {
		m[c] = k
	}
	return m
}()

// byteWriter is the sink the section writers need: bufio.Writer (v2) and
// bytes.Buffer (the v3 manifest) both satisfy it, and neither can fail
// mid-write in practice.
type byteWriter interface {
	io.Writer
	io.ByteWriter
}

// writeUpdateLog serializes the dynamic-update batches of the v2 section
// (also embedded verbatim in the v3 manifest).
func writeUpdateLog(w byteWriter, batches []dynamic.Batch) error {
	if len(batches) > maxUpdateBatches {
		return fmt.Errorf("serialize: %d update batches exceed format limit %d", len(batches), maxUpdateBatches)
	}
	if err := binio.WriteU32(w, uint32(len(batches))); err != nil {
		return err
	}
	for bi, b := range batches {
		if len(b) > maxBatchOps {
			return fmt.Errorf("serialize: update batch %d has %d ops, exceeding format limit %d", bi, len(b), maxBatchOps)
		}
		if err := binio.WriteU32(w, uint32(len(b))); err != nil {
			return err
		}
		for _, op := range b {
			code, ok := opKindCodes[op.Kind]
			if !ok {
				return fmt.Errorf("serialize: update batch %d has unknown op kind %q", bi, op.Kind)
			}
			if err := w.WriteByte(code); err != nil {
				return err
			}
			if err := binio.WriteI32s(w, []int32{op.From, op.To}); err != nil {
				return err
			}
			if err := binio.WriteF64(w, op.W); err != nil {
				return err
			}
			if err := binio.WriteU32(w, uint32(op.Cand)); err != nil {
				return err
			}
			if err := binio.WriteI32s(w, []int32{op.Node}); err != nil {
				return err
			}
			if err := binio.WriteF64(w, op.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// readUpdateLog parses the v2 update-log section.
func readUpdateLog(r io.Reader) ([]dynamic.Batch, error) {
	numBatches, err := binReadCount(r, maxUpdateBatches)
	if err != nil {
		return nil, fmt.Errorf("serialize: update batch count: %w", err)
	}
	var batches []dynamic.Batch
	for bi := 0; bi < numBatches; bi++ {
		numOps, err := binReadCount(r, maxBatchOps)
		if err != nil {
			return nil, fmt.Errorf("serialize: update batch %d op count: %w", bi, err)
		}
		b := make(dynamic.Batch, 0, numOps)
		for oi := 0; oi < numOps; oi++ {
			var kindBuf [1]byte
			if _, err := io.ReadFull(r, kindBuf[:]); err != nil {
				return nil, fmt.Errorf("serialize: update batch %d op %d: %w", bi, oi, err)
			}
			kind, ok := opKindByCode[kindBuf[0]]
			if !ok {
				return nil, fmt.Errorf("serialize: update batch %d op %d has unknown kind code %d", bi, oi, kindBuf[0])
			}
			op := dynamic.Op{Kind: kind}
			edge, err := binio.ReadI32s(r, 2)
			if err != nil {
				return nil, err
			}
			op.From, op.To = edge[0], edge[1]
			if op.W, err = binio.ReadF64(r); err != nil {
				return nil, err
			}
			cand, err := binio.ReadU32(r)
			if err != nil {
				return nil, err
			}
			op.Cand = int(cand)
			node, err := binio.ReadI32s(r, 1)
			if err != nil {
				return nil, err
			}
			op.Node = node[0]
			if op.Value, err = binio.ReadF64(r); err != nil {
				return nil, err
			}
			b = append(b, op)
		}
		batches = append(batches, b)
	}
	return batches, nil
}
