package serialize_test

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"ovm/internal/datasets"
	"ovm/internal/graph"
	"ovm/internal/im"
	"ovm/internal/opinion"
	"ovm/internal/sampling"
	"ovm/internal/serialize"
	"ovm/internal/walks"
)

// buildTestIndex assembles a small but fully populated index: one sketch
// artifact, one walk artifact, and one RR artifact over a synthetic system.
func buildTestIndex(t testing.TB) *serialize.Index {
	t.Helper()
	d, err := datasets.YelpLike(datasets.Options{N: 80, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sys := d.Sys
	cand := sys.Candidate(0)
	sampler, err := graph.NewInEdgeSampler(cand.G)
	if err != nil {
		t.Fatal(err)
	}
	const (
		horizon = 6
		theta   = 64
		lambda  = 3
		seed    = int64(9)
	)
	sketchSet, err := walks.GenerateSampled(sampler, cand.Stub, horizon, theta, sampling.Stream{Seed: seed, ID: 211}, 0)
	if err != nil {
		t.Fatal(err)
	}
	sketchSnap, err := sketchSet.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	plan := make([]int32, sys.N())
	for v := range plan {
		plan[v] = lambda
	}
	walkSet, err := walks.Generate(sampler, cand.Stub, horizon, plan, sampling.Stream{Seed: seed, ID: 101}, 0)
	if err != nil {
		t.Fatal(err)
	}
	walkSnap, err := walkSet.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	col := im.NewRRCollection(cand.G, im.IC, sampling.Stream{Seed: seed, ID: 701}, 0)
	col.Add(50)
	rrSnap, err := col.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return &serialize.Index{
		Sys:      sys,
		Sketches: []*serialize.SketchArtifact{{Seed: seed, Target: 0, Horizon: horizon, Theta: theta, Set: sketchSnap}},
		Walks:    []*serialize.WalkArtifact{{Seed: seed, Target: 0, Horizon: horizon, Lambda: lambda, Set: walkSnap}},
		RRs:      []*serialize.RRArtifact{{Seed: seed, Target: 0, Sets: rrSnap}},
	}
}

func TestIndexRoundTrip(t *testing.T) {
	idx := buildTestIndex(t)
	var buf bytes.Buffer
	if err := serialize.WriteIndex(&buf, idx); err != nil {
		t.Fatal(err)
	}
	got, err := serialize.ReadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// System: identical shapes, names, vectors (bit-exact), and edges.
	if got.Sys.N() != idx.Sys.N() || got.Sys.R() != idx.Sys.R() {
		t.Fatalf("system shape %dx%d, want %dx%d", got.Sys.N(), got.Sys.R(), idx.Sys.N(), idx.Sys.R())
	}
	for q := 0; q < idx.Sys.R(); q++ {
		a, b := idx.Sys.Candidate(q), got.Sys.Candidate(q)
		if a.Name != b.Name {
			t.Fatalf("candidate %d name %q vs %q", q, a.Name, b.Name)
		}
		if !reflect.DeepEqual(a.Init, b.Init) || !reflect.DeepEqual(a.Stub, b.Stub) {
			t.Fatalf("candidate %d vectors differ after round trip", q)
		}
	}
	if !reflect.DeepEqual(idx.Sys.Candidate(0).G.Edges(), got.Sys.Candidate(0).G.Edges()) {
		t.Fatal("graph edges differ after round trip")
	}
	// Artifacts: parameters and snapshots bit-exact.
	if len(got.Sketches) != 1 || len(got.Walks) != 1 || len(got.RRs) != 1 {
		t.Fatalf("artifact counts %d/%d/%d, want 1/1/1", len(got.Sketches), len(got.Walks), len(got.RRs))
	}
	if !reflect.DeepEqual(idx.Sketches[0], got.Sketches[0]) {
		t.Error("sketch artifact differs after round trip")
	}
	if !reflect.DeepEqual(idx.Walks[0], got.Walks[0]) {
		t.Error("walk artifact differs after round trip")
	}
	if !reflect.DeepEqual(idx.RRs[0], got.RRs[0]) {
		t.Error("rr artifact differs after round trip")
	}
	// Restored artifacts must be live: FromSnapshot accepts them.
	if _, err := walks.FromSnapshot(got.Sys.Candidate(0).G, got.Sketches[0].Set); err != nil {
		t.Errorf("restoring sketch set: %v", err)
	}
	if _, err := im.FromSnapshot(got.Sys.Candidate(0).G, got.RRs[0].Sets, sampling.Stream{Seed: got.RRs[0].Seed, ID: 701}, 0); err != nil {
		t.Errorf("restoring rr collection: %v", err)
	}
}

func TestIndexChecksumDetectsCorruption(t *testing.T) {
	idx := buildTestIndex(t)
	var buf bytes.Buffer
	if err := serialize.WriteIndex(&buf, idx); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one byte somewhere in the middle of the payload.
	data[len(data)/2] ^= 0x40
	if _, err := serialize.ReadIndex(bytes.NewReader(data)); err == nil {
		t.Error("expected error for corrupted index payload")
	}
}

func TestIndexRejectsWrongVersion(t *testing.T) {
	idx := buildTestIndex(t)
	var buf bytes.Buffer
	if err := serialize.WriteIndex(&buf, idx); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len("OVMIDX")] = 99 // version field follows the magic
	if _, err := serialize.ReadIndex(bytes.NewReader(data)); err == nil {
		t.Error("expected error for unsupported format version")
	}
}

func TestIndexRejectsTruncation(t *testing.T) {
	idx := buildTestIndex(t)
	var buf bytes.Buffer
	if err := serialize.WriteIndex(&buf, idx); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{0, 3, len("OVMIDX") + 2, len(data) / 3, len(data) - 1} {
		if _, err := serialize.ReadIndex(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("expected error for index truncated to %d bytes", cut)
		}
	}
}

func TestWriteSystemRejectsNaNInf(t *testing.T) {
	sys := nanSystem(t, math.NaN())
	if err := serialize.WriteSystem(&bytes.Buffer{}, sys); err == nil {
		t.Error("expected WriteSystem to reject NaN opinion")
	}
	sys = nanSystem(t, math.Inf(1))
	if err := serialize.WriteSystem(&bytes.Buffer{}, sys); err == nil {
		t.Error("expected WriteSystem to reject Inf opinion")
	}
	if err := serialize.WriteIndex(&bytes.Buffer{}, &serialize.Index{Sys: sys}); err == nil {
		t.Error("expected WriteIndex to reject Inf opinion")
	}
}

// nanSystem builds a valid system, then smuggles a non-finite value into an
// opinion vector (bypassing NewSystem validation, as an in-place mutation
// after construction would).
func nanSystem(t *testing.T, bad float64) *opinion.System {
	t.Helper()
	d, err := datasets.YelpLike(datasets.Options{N: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	d.Sys.Candidate(1).Init[7] = bad
	return d.Sys
}

// FuzzReadIndex feeds arbitrary bytes to the binary index parser: it must
// either return a valid index or an error — never panic or hang.
func FuzzReadIndex(f *testing.F) {
	idx := buildTestIndex(f)
	var buf bytes.Buffer
	if err := serialize.WriteIndex(&buf, idx); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len("OVMIDX")+4])
	f.Add([]byte("OVMIDX"))
	f.Add([]byte{})
	mutated := append([]byte(nil), valid...)
	mutated[len(mutated)/3] ^= 0xff
	f.Add(mutated)
	// v3 section-table seeds: pristine, truncated mid-table, truncated
	// mid-payload, and bit-flipped in the table and in a payload.
	var v3buf bytes.Buffer
	if err := serialize.WriteIndexV3(&v3buf, idx, serialize.V3Options{}); err != nil {
		f.Fatal(err)
	}
	v3 := v3buf.Bytes()
	f.Add(v3)
	f.Add(v3[:30])
	f.Add(v3[:len(v3)/2])
	v3mut := append([]byte(nil), v3...)
	v3mut[26] ^= 0x04 // section table entry
	f.Add(v3mut)
	v3mut2 := append([]byte(nil), v3...)
	v3mut2[len(v3mut2)-9] ^= 0x80 // payload byte
	f.Add(v3mut2)
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := serialize.ReadIndex(bytes.NewReader(data))
		if err == nil && got.Sys == nil {
			t.Fatal("ReadIndex returned nil system without error")
		}
	})
}
