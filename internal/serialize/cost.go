package serialize

import "ovm/internal/obs"

// Index-load cost accounting: how many manifest sections were aliased
// in place (zero-copy) versus decoded to fresh heap arrays, and the
// byte volume of each. Counted once per section during parse — the
// parse itself is not a hot path, but the split is the evidence for
// the mmap-vs-heap serving trade-off.
var (
	sectionsAliased = obs.NewCounter("ovm_serialize_sections_aliased_total",
		"Index file sections aliased in place (zero-copy) during loads")
	sectionsDecoded = obs.NewCounter("ovm_serialize_sections_decoded_total",
		"Index file sections decoded to fresh heap arrays during loads")
	zeroCopyBytes = obs.NewCounter("ovm_serialize_zerocopy_bytes_total",
		"Payload bytes consumed zero-copy from mapped index files")
	decodedBytes = obs.NewCounter("ovm_serialize_decoded_bytes_total",
		"Payload bytes decoded to the heap during index loads")
)

// accountSection records one parsed section in the load-cost counters.
func accountSection(aliased bool, n int64) {
	if !obs.CostEnabled() {
		return
	}
	if aliased {
		sectionsAliased.Inc()
		zeroCopyBytes.Add(n)
	} else {
		sectionsDecoded.Inc()
		decodedBytes.Add(n)
	}
}
