// Package serialize persists complete multi-candidate opinion systems —
// influence graph, per-candidate initial opinions, and stubbornness — in a
// line-oriented text format, so synthesized worlds can be exported,
// inspected, version-controlled, and reloaded bit-exactly by other tools
// or later runs.
//
// Format (all on one stream):
//
//	ovm-system v1
//	candidates <r>
//	candidate <name may contain spaces>
//	init <n space-separated floats>
//	stub <n space-separated floats>
//	        … repeated r times …
//	graph
//	<n> <m>
//	<from> <to> <weight>       (m lines)
//
// Floats use strconv 'g' formatting with full round-trip precision.
package serialize

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ovm/internal/graph"
	"ovm/internal/opinion"
)

const magic = "ovm-system v1"

// WriteSystem serializes a system to w. NaN and Inf opinion or
// stubbornness values are rejected: they would round-trip through the text
// format and poison every downstream estimate on reload.
func WriteSystem(w io.Writer, s *opinion.System) error {
	if err := checkSystemFinite(s); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, magic); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "candidates %d\n", s.R()); err != nil {
		return err
	}
	for q := 0; q < s.R(); q++ {
		c := s.Candidate(q)
		if strings.ContainsAny(c.Name, "\n\r") {
			return fmt.Errorf("serialize: candidate name %q contains newline", c.Name)
		}
		if _, err := fmt.Fprintf(bw, "candidate %s\n", c.Name); err != nil {
			return err
		}
		if err := writeVector(bw, "init", c.Init); err != nil {
			return err
		}
		if err := writeVector(bw, "stub", c.Stub); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw, "graph"); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// All candidates share the topology in serialized systems; candidate 0's
	// graph is authoritative (the common case across this repository).
	return graph.WriteEdgeList(w, s.Candidate(0).G)
}

func writeVector(w io.Writer, tag string, xs []float64) error {
	var sb strings.Builder
	sb.WriteString(tag)
	for _, x := range xs {
		sb.WriteByte(' ')
		sb.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
	}
	sb.WriteByte('\n')
	_, err := io.WriteString(w, sb.String())
	return err
}

// ReadSystem parses the format produced by WriteSystem and validates the
// result (column-stochastic weights, opinion/stubbornness ranges).
func ReadSystem(r io.Reader) (*opinion.System, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	if line != magic {
		return nil, fmt.Errorf("serialize: bad header %q (want %q)", line, magic)
	}
	line, err = readLine(br)
	if err != nil {
		return nil, err
	}
	var rCand int
	if _, err := fmt.Sscanf(line, "candidates %d", &rCand); err != nil {
		return nil, fmt.Errorf("serialize: bad candidate count line %q: %w", line, err)
	}
	if rCand < 2 {
		return nil, fmt.Errorf("serialize: need at least 2 candidates, got %d", rCand)
	}
	type protoCand struct {
		name string
		init []float64
		stub []float64
	}
	protos := make([]protoCand, rCand)
	for q := 0; q < rCand; q++ {
		line, err = readLine(br)
		if err != nil {
			return nil, err
		}
		if !strings.HasPrefix(line, "candidate ") {
			return nil, fmt.Errorf("serialize: expected candidate line, got %q", line)
		}
		protos[q].name = strings.TrimPrefix(line, "candidate ")
		if protos[q].init, err = readVector(br, "init"); err != nil {
			return nil, fmt.Errorf("serialize: candidate %d: %w", q, err)
		}
		if protos[q].stub, err = readVector(br, "stub"); err != nil {
			return nil, fmt.Errorf("serialize: candidate %d: %w", q, err)
		}
	}
	line, err = readLine(br)
	if err != nil {
		return nil, err
	}
	if line != "graph" {
		return nil, fmt.Errorf("serialize: expected graph section, got %q", line)
	}
	g, err := graph.ReadEdgeList(br)
	if err != nil {
		return nil, err
	}
	gNorm, err := g.ColumnStochastic()
	if err != nil {
		return nil, err
	}
	cands := make([]*opinion.Candidate, rCand)
	for q := range cands {
		cands[q] = &opinion.Candidate{
			Name: protos[q].name,
			G:    gNorm,
			Init: protos[q].init,
			Stub: protos[q].stub,
		}
	}
	return opinion.NewSystem(cands)
}

func readLine(br *bufio.Reader) (string, error) {
	for {
		line, err := br.ReadString('\n')
		if err != nil && line == "" {
			return "", fmt.Errorf("serialize: unexpected end of input: %w", err)
		}
		trimmed := strings.TrimRight(line, "\r\n")
		if trimmed != "" {
			return trimmed, nil
		}
		if err != nil {
			return "", fmt.Errorf("serialize: unexpected end of input: %w", err)
		}
	}
}

func readVector(br *bufio.Reader, tag string) ([]float64, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(line)
	if len(fields) == 0 || fields[0] != tag {
		return nil, fmt.Errorf("expected %q vector, got %q", tag, line)
	}
	out := make([]float64, len(fields)-1)
	for i, f := range fields[1:] {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("bad %s value %q: %w", tag, f, err)
		}
		out[i] = v
	}
	return out, nil
}
