package serialize_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"ovm/internal/datasets"
	"ovm/internal/opinion"
	"ovm/internal/paperexample"
	"ovm/internal/serialize"
)

func TestRoundTripPaperExample(t *testing.T) {
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := serialize.WriteSystem(&buf, sys); err != nil {
		t.Fatal(err)
	}
	got, err := serialize.ReadSystem(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != sys.N() || got.R() != sys.R() {
		t.Fatalf("shape mismatch: %dx%d vs %dx%d", got.N(), got.R(), sys.N(), sys.R())
	}
	for q := 0; q < sys.R(); q++ {
		a, b := sys.Candidate(q), got.Candidate(q)
		if a.Name != b.Name {
			t.Errorf("candidate %d name %q vs %q", q, a.Name, b.Name)
		}
		for v := 0; v < sys.N(); v++ {
			if a.Init[v] != b.Init[v] || a.Stub[v] != b.Stub[v] {
				t.Fatalf("candidate %d node %d vectors differ", q, v)
			}
		}
	}
	// Diffusion results must match exactly: the Table I anchor still holds
	// on the reloaded system.
	for _, row := range paperexample.TableI {
		a := opinion.OpinionsAt(sys.Candidate(0), 1, row.Seeds)
		b := opinion.OpinionsAt(got.Candidate(0), 1, row.Seeds)
		for v := range a {
			if math.Abs(a[v]-b[v]) > 1e-15 {
				t.Fatalf("diffusion differs after round trip: %v vs %v", a[v], b[v])
			}
		}
	}
}

func TestRoundTripDataset(t *testing.T) {
	d, err := datasets.YelpLike(datasets.Options{N: 150, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := serialize.WriteSystem(&buf, d.Sys); err != nil {
		t.Fatal(err)
	}
	got, err := serialize.ReadSystem(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.R() != 10 || got.N() != 150 {
		t.Fatalf("shape %dx%d, want 150x10", got.N(), got.R())
	}
	if got.Candidate(3).Name != d.Sys.Candidate(3).Name {
		t.Error("candidate names lost")
	}
	// Spot-check graph equivalence via a diffusion fingerprint.
	a := opinion.OpinionsAt(d.Sys.Candidate(0), 7, []int32{5})
	b := opinion.OpinionsAt(got.Candidate(0), 7, []int32{5})
	for v := range a {
		if math.Abs(a[v]-b[v]) > 1e-12 {
			t.Fatalf("node %d diffusion differs: %v vs %v", v, a[v], b[v])
		}
	}
}

func TestReadSystemMalformed(t *testing.T) {
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := serialize.WriteSystem(&buf, sys); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	cases := map[string]string{
		"empty":            "",
		"bad magic":        strings.Replace(good, "ovm-system v1", "nope v9", 1),
		"bad count":        strings.Replace(good, "candidates 2", "candidates x", 1),
		"single candidate": strings.Replace(good, "candidates 2", "candidates 1", 1),
		"missing init":     strings.Replace(good, "init ", "xnit ", 1),
		"bad float":        strings.Replace(good, "0.4", "zz", 1),
		"truncated":        good[:len(good)/2],
	}
	for name, in := range cases {
		if _, err := serialize.ReadSystem(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestWriteRejectsNewlineName(t *testing.T) {
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	sys.Candidate(0).Name = "evil\nname"
	var buf bytes.Buffer
	if err := serialize.WriteSystem(&buf, sys); err == nil {
		t.Error("expected error for newline in candidate name")
	}
	sys.Candidate(0).Name = "c1"
}

func TestVectorLengthMismatchRejected(t *testing.T) {
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := serialize.WriteSystem(&buf, sys); err != nil {
		t.Fatal(err)
	}
	// Drop one value from the first init vector: system validation must
	// reject the length mismatch.
	broken := strings.Replace(buf.String(), "init 0.4 0.8 0.6 0.9", "init 0.4 0.8 0.6", 1)
	if _, err := serialize.ReadSystem(strings.NewReader(broken)); err == nil {
		t.Error("expected error for short init vector")
	}
}
