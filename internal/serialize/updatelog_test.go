package serialize_test

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"ovm/internal/dynamic"
	"ovm/internal/serialize"
)

func testUpdateLog() []dynamic.Batch {
	return []dynamic.Batch{
		{
			{Kind: dynamic.OpAddEdge, From: 1, To: 2, W: 0.5},
			{Kind: dynamic.OpRemoveEdge, From: 0, To: 1},
		},
		{
			{Kind: dynamic.OpSetWeight, From: 3, To: 4, W: 2.25},
			{Kind: dynamic.OpSetOpinion, Cand: 1, Node: 7, Value: 0.75},
			{Kind: dynamic.OpSetStubbornness, Cand: 0, Node: 9, Value: 0.125},
		},
	}
}

func TestIndexVersionByUpdateLog(t *testing.T) {
	idx := buildTestIndex(t)
	if got := idx.FormatVersion(); got != serialize.IndexFormatV1 {
		t.Fatalf("update-free index has format v%d, want v%d", got, serialize.IndexFormatV1)
	}
	var v1 bytes.Buffer
	if err := serialize.WriteIndex(&v1, idx); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint32(v1.Bytes()[len("OVMIDX"):]); got != serialize.IndexFormatV1 {
		t.Fatalf("wrote version %d for update-free index, want %d", got, serialize.IndexFormatV1)
	}

	idx.Updates = testUpdateLog()
	if got := idx.FormatVersion(); got != serialize.IndexFormatV2 {
		t.Fatalf("index with updates has format v%d, want v%d", got, serialize.IndexFormatV2)
	}
	var v2 bytes.Buffer
	if err := serialize.WriteIndex(&v2, idx); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint32(v2.Bytes()[len("OVMIDX"):]); got != serialize.IndexFormatV2 {
		t.Fatalf("wrote version %d for index with updates, want %d", got, serialize.IndexFormatV2)
	}

	// The v1 bytes still load (backward compatibility) and carry no log.
	loaded, err := serialize.ReadIndex(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatalf("v1 file failed to load: %v", err)
	}
	if len(loaded.Updates) != 0 {
		t.Fatalf("v1 file produced %d update batches, want 0", len(loaded.Updates))
	}
}

func TestUpdateLogRoundTrip(t *testing.T) {
	idx := buildTestIndex(t)
	idx.Updates = testUpdateLog()
	var buf bytes.Buffer
	if err := serialize.WriteIndex(&buf, idx); err != nil {
		t.Fatal(err)
	}
	loaded, err := serialize.ReadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Updates, idx.Updates) {
		t.Fatalf("update log round-trip mismatch:\n got %+v\nwant %+v", loaded.Updates, idx.Updates)
	}
	// And the v2 CRC still guards the appended section.
	data := buf.Bytes()
	data[len(data)-10] ^= 0x20
	if _, err := serialize.ReadIndex(bytes.NewReader(data)); err == nil {
		t.Error("expected checksum error after corrupting the update log")
	}
}

func TestBaseEpochRoundTrip(t *testing.T) {
	idx := buildTestIndex(t)
	idx.BaseEpoch = 7
	if got := idx.FormatVersion(); got != serialize.IndexFormatV2 {
		t.Fatalf("non-zero base epoch must force v%d, got v%d", serialize.IndexFormatV2, got)
	}
	var buf bytes.Buffer
	if err := serialize.WriteIndex(&buf, idx); err != nil {
		t.Fatal(err)
	}
	loaded, err := serialize.ReadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.BaseEpoch != 7 || len(loaded.Updates) != 0 {
		t.Fatalf("round trip gave baseEpoch=%d updates=%d, want 7/0", loaded.BaseEpoch, len(loaded.Updates))
	}
	idx.BaseEpoch = -1
	if err := serialize.WriteIndex(&buf, idx); err == nil {
		t.Error("negative base epoch must be rejected")
	}
}

func TestUpdateLogValidation(t *testing.T) {
	idx := buildTestIndex(t)
	idx.Updates = []dynamic.Batch{{{Kind: dynamic.OpAddEdge, From: -4, To: 0, W: 1}}}
	var buf bytes.Buffer
	if err := serialize.WriteIndex(&buf, idx); err == nil {
		t.Error("expected WriteIndex to reject an out-of-range update op")
	}
	idx.Updates = []dynamic.Batch{{{Kind: dynamic.OpKind("unknown"), From: 0, To: 1, W: 1}}}
	if err := serialize.WriteIndex(&buf, idx); err == nil {
		t.Error("expected WriteIndex to reject an unknown op kind")
	}
}
