// Index format v3: the mmap-friendly section-table layout.
//
// v1/v2 interleave metadata and array payloads in one stream, so loading
// means decoding every byte into fresh heap slices. v3 separates the two:
// a small stream-encoded manifest carries the metadata and refers to the
// bulk arrays by section number, and every array section is stored as its
// exact little-endian memory image at an 8-byte-aligned offset — so a
// loader can mmap the file and alias []int32/[]int64/[]float64 slices
// straight over the region with zero deserialization. Mutable per-process
// state (truncation pointers, seeds, gain caches, the update log) is never
// mapped: it lives in the manifest or is rebuilt on load.
//
// Layout (all integers little-endian):
//
//	off  0: magic "OVMIDX"
//	off  6: u32 version (3)
//	off 10: u16 zero pad
//	off 12: u32 section count S
//	off 16: u32 CRC-32 (IEEE) of the section table bytes
//	off 20: u32 zero pad
//	off 24: section table, S × 24-byte entries
//	        {u64 offset, u64 length, u32 kind, u32 CRC-32 of the payload}
//	then:   section payloads, each at an 8-byte-aligned offset, ascending,
//	        zero padding between
//
// Section kinds: 1 = manifest (exactly one, section 0), 2 = i32 array,
// 3 = f64 array, 4 = raw bytes, 5 = i64 array. The manifest references
// data sections by table index (0 = absent — unambiguous because 0 is the
// manifest itself). The table is validated before any payload is touched:
// aligned, in-bounds, non-overlapping, known kinds, element-size multiple
// — so a reader over a mapped region never faults, and every payload CRC
// is verified eagerly before parsing.
//
// Postings indexes (node → walk, node → RR set) are persisted next to
// their artifacts, either as raw CSR arrays (mode 1) or in the compact
// delta+varint block form of internal/postings (mode 2, the default —
// 2–4× smaller). Loaders adopt them after an exact-equality merge check
// against the artifact storage instead of rebuilding.
package serialize

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"ovm/internal/binio"
	"ovm/internal/graph"
	"ovm/internal/im"
	"ovm/internal/mmapio"
	"ovm/internal/opinion"
	"ovm/internal/postings"
	"ovm/internal/walks"
)

const (
	v3HeaderSize  = 24
	v3EntrySize   = 24
	v3MaxSections = 1 << 20

	v3KindManifest = 1
	v3KindI32      = 2
	v3KindF64      = 3
	v3KindBytes    = 4
	v3KindI64      = 5

	v3PostingsNone    = 0
	v3PostingsRaw     = 1
	v3PostingsCompact = 2
)

// V3Options tunes WriteIndexV3.
type V3Options struct {
	// RawPostings stores postings indexes as raw CSR arrays instead of the
	// compact delta+varint form. Raw sections are larger but alias directly
	// on load with no per-posting decode.
	RawPostings bool
}

func v3align(off int64) int64 { return (off + 7) &^ 7 }

// v3elemSize returns the element width a section kind's length must be a
// multiple of.
func v3elemSize(kind uint32) int64 {
	switch kind {
	case v3KindI32:
		return 4
	case v3KindF64, v3KindI64:
		return 8
	default:
		return 1
	}
}

// --- writer ---

type v3section struct {
	kind    uint32
	payload []byte
}

type v3writer struct {
	sections []v3section
}

func (w *v3writer) add(kind uint32, payload []byte) uint32 {
	w.sections = append(w.sections, v3section{kind: kind, payload: payload})
	return uint32(len(w.sections) - 1)
}

func (w *v3writer) addI32(xs []int32) uint32   { return w.add(v3KindI32, binio.I32sBytes(xs)) }
func (w *v3writer) addI64(xs []int64) uint32   { return w.add(v3KindI64, binio.I64sBytes(xs)) }
func (w *v3writer) addF64(xs []float64) uint32 { return w.add(v3KindF64, binio.F64sBytes(xs)) }

// writePostingsRef emits a postings reference into the manifest: the raw
// CSR arrays or the compact blocked form, converting between them as the
// options demand. snapshotCompact/snapshotRaw describe what the caller
// holds; exactly one is non-nil (or both nil for "no index stored").
func (w *v3writer) writePostingsRef(m *bytes.Buffer, raw *postings.CSR, compact *postings.Compact, wantRaw bool) {
	if raw == nil && compact == nil {
		m.WriteByte(v3PostingsNone)
		return
	}
	if wantRaw {
		if raw == nil {
			csr := compact.ToCSR()
			raw = &csr
		}
		m.WriteByte(v3PostingsRaw)
		refOff := w.addI32(raw.Off)
		refItem := w.addI32(raw.Item)
		refPos := uint32(0)
		if raw.Pos != nil {
			refPos = w.addI32(raw.Pos)
		}
		mustU32(m, refOff, refItem, refPos)
		return
	}
	if compact == nil {
		compact = postings.FromCSR(*raw, postings.DefaultBlockSize)
	}
	m.WriteByte(v3PostingsCompact)
	mustU32(m, uint32(compact.BlockSize))
	hasPos := byte(0)
	if compact.HasPos {
		hasPos = 1
	}
	m.WriteByte(hasPos)
	mustU32(m, w.addI32(compact.Off), w.addI32(compact.FirstBlock), w.add(v3KindI64, binio.I64sBytes(compact.BlockOff)), w.add(v3KindBytes, compact.Data))
}

// mustU32 writes little-endian u32s to a bytes.Buffer (which cannot fail).
func mustU32(m *bytes.Buffer, vs ...uint32) {
	for _, v := range vs {
		_ = binio.WriteU32(m, v)
	}
}

// walkIndexForms splits a walks index snapshot into the writer's raw /
// compact handles.
func walkIndexForms(is *walks.IndexSnapshot) (*postings.CSR, *postings.Compact) {
	if is == nil {
		return nil, nil
	}
	if is.Compact != nil {
		return nil, is.Compact
	}
	return &postings.CSR{Off: is.Off, Item: is.Walk, Pos: is.Pos}, nil
}

func rrIndexForms(is *im.IndexSnapshot) (*postings.CSR, *postings.Compact) {
	if is == nil {
		return nil, nil
	}
	if is.Compact != nil {
		return nil, is.Compact
	}
	return &postings.CSR{Off: is.Off, Item: is.Item}, nil
}

// writeWalkSetRef emits a walk snapshot's manifest entry, adding its
// arrays (and postings index, if any) as sections.
func (w *v3writer) writeWalkSetRef(m *bytes.Buffer, s *walks.Snapshot, idx *walks.IndexSnapshot, opts V3Options) {
	mustU32(m, uint32(s.Horizon))
	mustU32(m, w.addI32(s.Nodes), w.addI32(s.Off), w.addI32(s.OwnerNodes), w.addI32(s.OwnerOff))
	raw, compact := walkIndexForms(idx)
	w.writePostingsRef(m, raw, compact, opts.RawPostings)
}

// WriteIndexV3 serializes idx in the v3 section-table layout. Arrays are
// written as their exact little-endian memory images (zero-copy on
// little-endian hosts), so WriteIndexV3 + OpenMapped round-trips every
// artifact bit-identically. Postings indexes attached to artifacts are
// persisted (compact by default); nil indexes are simply absent and
// loaders rebuild them.
func WriteIndexV3(w io.Writer, idx *Index, opts V3Options) error {
	if err := idx.Validate(); err != nil {
		return err
	}
	if err := checkSystemFinite(idx.Sys); err != nil {
		return err
	}
	vw := &v3writer{sections: make([]v3section, 1)} // [0] reserved for the manifest
	var m bytes.Buffer

	// Graph.
	a := idx.Sys.Candidate(0).G.Arrays()
	mustU32(&m, uint32(a.N))
	cs := byte(0)
	if a.ColumnStochastic {
		cs = 1
	}
	m.WriteByte(cs)
	mustU32(&m, vw.addI32(a.InStart), vw.addI32(a.InSrc), vw.addF64(a.InW))
	mustU32(&m, vw.addI32(a.OutStart), vw.addI32(a.OutDst), vw.addF64(a.OutW))

	// Candidates.
	mustU32(&m, uint32(idx.Sys.R()))
	for q := 0; q < idx.Sys.R(); q++ {
		c := idx.Sys.Candidate(q)
		name := []byte(c.Name)
		if len(name) > maxNameLen {
			return fmt.Errorf("serialize: candidate %d name too long (%d bytes)", q, len(name))
		}
		mustU32(&m, uint32(len(name)))
		m.Write(name)
		mustU32(&m, vw.addF64(c.Init), vw.addF64(c.Stub))
	}

	// Artifacts.
	mustU32(&m, uint32(len(idx.Sketches)))
	for _, art := range idx.Sketches {
		_ = binio.WriteI64(&m, art.Seed)
		mustU32(&m, uint32(art.Target), uint32(art.Horizon), uint32(art.Theta))
		vw.writeWalkSetRef(&m, art.Set, art.Index, opts)
	}
	mustU32(&m, uint32(len(idx.Walks)))
	for _, art := range idx.Walks {
		_ = binio.WriteI64(&m, art.Seed)
		mustU32(&m, uint32(art.Target), uint32(art.Horizon), uint32(art.Lambda))
		vw.writeWalkSetRef(&m, art.Set, art.Index, opts)
	}
	mustU32(&m, uint32(len(idx.RRs)))
	for _, art := range idx.RRs {
		_ = binio.WriteI64(&m, art.Seed)
		mustU32(&m, uint32(art.Target), uint32(art.Sets.Model))
		mustU32(&m, vw.addI32(art.Sets.Nodes), vw.addI32(art.Sets.Off))
		raw, compact := rrIndexForms(art.Index)
		vw.writePostingsRef(&m, raw, compact, opts.RawPostings)
	}

	// Mutable state: base epoch + update log stay in the manifest.
	_ = binio.WriteU64(&m, uint64(idx.BaseEpoch))
	if err := writeUpdateLog(&m, idx.Updates); err != nil {
		return err
	}
	vw.sections[0] = v3section{kind: v3KindManifest, payload: m.Bytes()}

	// Layout: header, table, then payloads at ascending 8-aligned offsets.
	numSections := len(vw.sections)
	if numSections > v3MaxSections {
		return fmt.Errorf("serialize: %d sections exceed format limit %d", numSections, v3MaxSections)
	}
	table := make([]byte, numSections*v3EntrySize)
	cur := v3align(int64(v3HeaderSize + numSections*v3EntrySize))
	for i, s := range vw.sections {
		e := table[i*v3EntrySize:]
		binary.LittleEndian.PutUint64(e[0:], uint64(cur))
		binary.LittleEndian.PutUint64(e[8:], uint64(len(s.payload)))
		binary.LittleEndian.PutUint32(e[16:], s.kind)
		binary.LittleEndian.PutUint32(e[20:], crc32.ChecksumIEEE(s.payload))
		cur = v3align(cur + int64(len(s.payload)))
	}

	var header [v3HeaderSize]byte
	copy(header[:], indexMagic)
	binary.LittleEndian.PutUint32(header[6:], IndexFormatV3)
	binary.LittleEndian.PutUint32(header[12:], uint32(numSections))
	binary.LittleEndian.PutUint32(header[16:], crc32.ChecksumIEEE(table))
	if _, err := w.Write(header[:]); err != nil {
		return err
	}
	if _, err := w.Write(table); err != nil {
		return err
	}
	var pad [8]byte
	written := int64(v3HeaderSize + len(table))
	for _, s := range vw.sections {
		if aligned := v3align(written); aligned > written {
			if _, err := w.Write(pad[:aligned-written]); err != nil {
				return err
			}
			written = aligned
		}
		if _, err := w.Write(s.payload); err != nil {
			return err
		}
		written += int64(len(s.payload))
	}
	return nil
}

// --- reader ---

type v3entry struct {
	off, length int64
	kind        uint32
	crc         uint32
}

// v3parser resolves manifest section references over the validated file
// image, tracking how many payload bytes were aliased in place (versus
// decoded to heap) for the mapped/heap accounting.
type v3parser struct {
	data    []byte
	entries []v3entry
	mapped  bool
	aliased int64
}

func (p *v3parser) payload(ref, kind uint32, what string) ([]byte, error) {
	if ref == 0 || int(ref) >= len(p.entries) {
		return nil, fmt.Errorf("serialize: v3 %s: section ref %d out of range", what, ref)
	}
	e := p.entries[ref]
	if e.kind != kind {
		return nil, fmt.Errorf("serialize: v3 %s: section %d has kind %d, want %d", what, ref, e.kind, kind)
	}
	return p.data[e.off : e.off+e.length], nil
}

func (p *v3parser) i32s(ref uint32, what string) ([]int32, bool, error) {
	b, err := p.payload(ref, v3KindI32, what)
	if err != nil {
		return nil, false, err
	}
	xs, copied := binio.AliasI32s(b)
	if !copied {
		p.aliased += int64(len(b))
	}
	accountSection(!copied, int64(len(b)))
	return xs, !copied, nil
}

func (p *v3parser) i64s(ref uint32, what string) ([]int64, bool, error) {
	b, err := p.payload(ref, v3KindI64, what)
	if err != nil {
		return nil, false, err
	}
	xs, copied := binio.AliasI64s(b)
	if !copied {
		p.aliased += int64(len(b))
	}
	accountSection(!copied, int64(len(b)))
	return xs, !copied, nil
}

func (p *v3parser) f64s(ref uint32, what string) ([]float64, bool, error) {
	b, err := p.payload(ref, v3KindF64, what)
	if err != nil {
		return nil, false, err
	}
	xs, copied := binio.AliasF64s(b)
	if !copied {
		p.aliased += int64(len(b))
	}
	accountSection(!copied, int64(len(b)))
	return xs, !copied, nil
}

func (p *v3parser) bytesSection(ref uint32, what string) ([]byte, error) {
	b, err := p.payload(ref, v3KindBytes, what)
	if err != nil {
		return nil, err
	}
	p.aliased += int64(len(b))
	accountSection(true, int64(len(b)))
	return b, nil
}

// readPostingsRef parses a postings reference from the manifest stream.
// wantPos states whether this index must carry positions (walk indexes do,
// RR indexes must not).
func (p *v3parser) readPostingsRef(r io.Reader, wantPos bool, what string) (raw *postings.CSR, compact *postings.Compact, mapped bool, err error) {
	var mode [1]byte
	if _, err := io.ReadFull(r, mode[:]); err != nil {
		return nil, nil, false, fmt.Errorf("serialize: v3 %s postings mode: %w", what, err)
	}
	switch mode[0] {
	case v3PostingsNone:
		return nil, nil, false, nil
	case v3PostingsRaw:
		var refs [3]uint32
		for i := range refs {
			if refs[i], err = binio.ReadU32(r); err != nil {
				return nil, nil, false, err
			}
		}
		csr := &postings.CSR{}
		a1, a2, a3 := true, true, true
		if csr.Off, a1, err = p.i32s(refs[0], what+" postings off"); err != nil {
			return nil, nil, false, err
		}
		if csr.Item, a2, err = p.i32s(refs[1], what+" postings items"); err != nil {
			return nil, nil, false, err
		}
		if wantPos {
			if refs[2] == 0 {
				return nil, nil, false, fmt.Errorf("serialize: v3 %s postings lack positions", what)
			}
			if csr.Pos, a3, err = p.i32s(refs[2], what+" postings pos"); err != nil {
				return nil, nil, false, err
			}
		} else if refs[2] != 0 {
			return nil, nil, false, fmt.Errorf("serialize: v3 %s postings carry unexpected positions", what)
		}
		return csr, nil, p.mapped && a1 && a2 && a3, nil
	case v3PostingsCompact:
		blockSize, err := binio.ReadU32(r)
		if err != nil {
			return nil, nil, false, err
		}
		if blockSize == 0 || blockSize > math.MaxInt32 {
			return nil, nil, false, fmt.Errorf("serialize: v3 %s postings block size %d", what, blockSize)
		}
		var hasPos [1]byte
		if _, err := io.ReadFull(r, hasPos[:]); err != nil {
			return nil, nil, false, err
		}
		if hasPos[0] > 1 {
			return nil, nil, false, fmt.Errorf("serialize: v3 %s postings hasPos flag %d", what, hasPos[0])
		}
		if (hasPos[0] == 1) != wantPos {
			return nil, nil, false, fmt.Errorf("serialize: v3 %s postings positions mismatch (hasPos=%d)", what, hasPos[0])
		}
		var refs [4]uint32
		for i := range refs {
			if refs[i], err = binio.ReadU32(r); err != nil {
				return nil, nil, false, err
			}
		}
		cp := &postings.Compact{HasPos: hasPos[0] == 1, BlockSize: int32(blockSize)}
		a1, a2, a3 := true, true, true
		if cp.Off, a1, err = p.i32s(refs[0], what+" postings off"); err != nil {
			return nil, nil, false, err
		}
		if cp.FirstBlock, a2, err = p.i32s(refs[1], what+" postings blocks"); err != nil {
			return nil, nil, false, err
		}
		if cp.BlockOff, a3, err = p.i64s(refs[2], what+" postings block offsets"); err != nil {
			return nil, nil, false, err
		}
		if cp.Data, err = p.bytesSection(refs[3], what+" postings data"); err != nil {
			return nil, nil, false, err
		}
		return nil, cp, p.mapped && a1 && a2 && a3, nil
	default:
		return nil, nil, false, fmt.Errorf("serialize: v3 %s postings mode %d unknown", what, mode[0])
	}
}

func (p *v3parser) readWalkSetRef(r io.Reader, what string) (*walks.Snapshot, *walks.IndexSnapshot, error) {
	horizon, err := binio.ReadU32(r)
	if err != nil {
		return nil, nil, err
	}
	var refs [4]uint32
	for i := range refs {
		if refs[i], err = binio.ReadU32(r); err != nil {
			return nil, nil, err
		}
	}
	s := &walks.Snapshot{Horizon: int(horizon)}
	a1, a2, a3, a4 := true, true, true, true
	if s.Nodes, a1, err = p.i32s(refs[0], what+" nodes"); err != nil {
		return nil, nil, err
	}
	if s.Off, a2, err = p.i32s(refs[1], what+" offsets"); err != nil {
		return nil, nil, err
	}
	if s.OwnerNodes, a3, err = p.i32s(refs[2], what+" owners"); err != nil {
		return nil, nil, err
	}
	if s.OwnerOff, a4, err = p.i32s(refs[3], what+" owner offsets"); err != nil {
		return nil, nil, err
	}
	s.Mapped = p.mapped && a1 && a2 && a3 && a4
	raw, compact, idxMapped, err := p.readPostingsRef(r, true, what+" index")
	if err != nil {
		return nil, nil, err
	}
	var is *walks.IndexSnapshot
	if raw != nil {
		is = &walks.IndexSnapshot{Off: raw.Off, Walk: raw.Item, Pos: raw.Pos, Mapped: idxMapped}
	} else if compact != nil {
		is = &walks.IndexSnapshot{Compact: compact, Mapped: idxMapped}
	}
	return s, is, nil
}

// parseV3 validates the section table of a complete v3 file image and
// decodes the manifest, aliasing array sections over data wherever
// alignment and endianness allow. With mapped set, the produced snapshots
// are flagged as frozen storage. Returns the index and the number of
// payload bytes consumed zero-copy.
func parseV3(data []byte, mapped bool) (*Index, int64, error) {
	if len(data) < v3HeaderSize {
		return nil, 0, fmt.Errorf("serialize: v3 index truncated (%d bytes)", len(data))
	}
	if string(data[:len(indexMagic)]) != indexMagic {
		return nil, 0, fmt.Errorf("serialize: bad index magic %q", data[:len(indexMagic)])
	}
	if v := binary.LittleEndian.Uint32(data[6:]); v != IndexFormatV3 {
		return nil, 0, fmt.Errorf("serialize: v3 parser got version %d", v)
	}
	if binary.LittleEndian.Uint16(data[10:]) != 0 || binary.LittleEndian.Uint32(data[20:]) != 0 {
		return nil, 0, fmt.Errorf("serialize: v3 header padding not zero")
	}
	numSections := binary.LittleEndian.Uint32(data[12:])
	if numSections == 0 || numSections > v3MaxSections {
		return nil, 0, fmt.Errorf("serialize: v3 section count %d outside (0,%d]", numSections, v3MaxSections)
	}
	tableEnd := int64(v3HeaderSize) + int64(numSections)*v3EntrySize
	if tableEnd > int64(len(data)) {
		return nil, 0, fmt.Errorf("serialize: v3 section table exceeds file (%d > %d)", tableEnd, len(data))
	}
	table := data[v3HeaderSize:tableEnd]
	if got, want := crc32.ChecksumIEEE(table), binary.LittleEndian.Uint32(data[16:]); got != want {
		return nil, 0, fmt.Errorf("serialize: v3 section table checksum mismatch (file %08x, computed %08x)", want, got)
	}
	entries := make([]v3entry, numSections)
	prevEnd := v3align(tableEnd)
	for i := range entries {
		e := table[i*v3EntrySize:]
		off := binary.LittleEndian.Uint64(e[0:])
		length := binary.LittleEndian.Uint64(e[8:])
		kind := binary.LittleEndian.Uint32(e[16:])
		if off > math.MaxInt64 || length > math.MaxInt64 {
			return nil, 0, fmt.Errorf("serialize: v3 section %d offset/length overflow", i)
		}
		ent := v3entry{off: int64(off), length: int64(length), kind: kind, crc: binary.LittleEndian.Uint32(e[20:])}
		if ent.off%8 != 0 {
			return nil, 0, fmt.Errorf("serialize: v3 section %d offset %d not 8-aligned", i, ent.off)
		}
		if ent.off < prevEnd {
			return nil, 0, fmt.Errorf("serialize: v3 section %d at %d overlaps previous end %d", i, ent.off, prevEnd)
		}
		if ent.length > int64(len(data))-ent.off {
			return nil, 0, fmt.Errorf("serialize: v3 section %d spans past end of file", i)
		}
		switch kind {
		case v3KindManifest, v3KindI32, v3KindF64, v3KindBytes, v3KindI64:
		default:
			return nil, 0, fmt.Errorf("serialize: v3 section %d has unknown kind %d", i, kind)
		}
		if sz := v3elemSize(kind); ent.length%sz != 0 {
			return nil, 0, fmt.Errorf("serialize: v3 section %d length %d not a multiple of %d", i, ent.length, sz)
		}
		if ent.length/4 > maxElements {
			return nil, 0, fmt.Errorf("serialize: v3 section %d exceeds element limit", i)
		}
		if got := crc32.ChecksumIEEE(data[ent.off : ent.off+ent.length]); got != ent.crc {
			return nil, 0, fmt.Errorf("serialize: v3 section %d checksum mismatch (table %08x, computed %08x)", i, ent.crc, got)
		}
		prevEnd = ent.off + ent.length
		entries[i] = ent
	}
	if entries[0].kind != v3KindManifest {
		return nil, 0, fmt.Errorf("serialize: v3 section 0 has kind %d, want manifest", entries[0].kind)
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].kind == v3KindManifest {
			return nil, 0, fmt.Errorf("serialize: v3 has a second manifest at section %d", i)
		}
	}

	p := &v3parser{data: data, entries: entries, mapped: mapped}
	m := bytes.NewReader(data[entries[0].off : entries[0].off+entries[0].length])

	// Graph.
	nU32, err := binio.ReadU32(m)
	if err != nil {
		return nil, 0, fmt.Errorf("serialize: v3 manifest graph: %w", err)
	}
	var csb [1]byte
	if _, err := io.ReadFull(m, csb[:]); err != nil {
		return nil, 0, fmt.Errorf("serialize: v3 manifest graph: %w", err)
	}
	if csb[0] > 1 {
		return nil, 0, fmt.Errorf("serialize: v3 columnStochastic flag %d", csb[0])
	}
	var grefs [6]uint32
	for i := range grefs {
		if grefs[i], err = binio.ReadU32(m); err != nil {
			return nil, 0, err
		}
	}
	ga := graph.CSRArrays{N: int(nU32), ColumnStochastic: csb[0] == 1}
	if ga.InStart, _, err = p.i32s(grefs[0], "graph in-offsets"); err != nil {
		return nil, 0, err
	}
	if ga.InSrc, _, err = p.i32s(grefs[1], "graph in-edges"); err != nil {
		return nil, 0, err
	}
	if ga.InW, _, err = p.f64s(grefs[2], "graph in-weights"); err != nil {
		return nil, 0, err
	}
	if ga.OutStart, _, err = p.i32s(grefs[3], "graph out-offsets"); err != nil {
		return nil, 0, err
	}
	if ga.OutDst, _, err = p.i32s(grefs[4], "graph out-edges"); err != nil {
		return nil, 0, err
	}
	if ga.OutW, _, err = p.f64s(grefs[5], "graph out-weights"); err != nil {
		return nil, 0, err
	}
	g, err := graph.NewFromCSR(ga)
	if err != nil {
		return nil, 0, err
	}
	n := g.N()

	// Candidates.
	rCand, err := binReadCount(m, maxCandidates)
	if err != nil {
		return nil, 0, fmt.Errorf("serialize: v3 candidate count: %w", err)
	}
	if rCand < 2 {
		return nil, 0, fmt.Errorf("serialize: need at least 2 candidates, got %d", rCand)
	}
	cands := make([]*opinion.Candidate, rCand)
	for q := range cands {
		nameLen, err := binReadCount(m, maxNameLen)
		if err != nil {
			return nil, 0, fmt.Errorf("serialize: v3 candidate %d name length: %w", q, err)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(m, name); err != nil {
			return nil, 0, fmt.Errorf("serialize: v3 candidate %d name: %w", q, err)
		}
		var refs [2]uint32
		for i := range refs {
			if refs[i], err = binio.ReadU32(m); err != nil {
				return nil, 0, err
			}
		}
		c := &opinion.Candidate{Name: string(name), G: g}
		if c.Init, _, err = p.f64s(refs[0], "candidate init"); err != nil {
			return nil, 0, err
		}
		if c.Stub, _, err = p.f64s(refs[1], "candidate stub"); err != nil {
			return nil, 0, err
		}
		if len(c.Init) != n || len(c.Stub) != n {
			return nil, 0, fmt.Errorf("serialize: v3 candidate %d vectors have %d/%d entries, want %d", q, len(c.Init), len(c.Stub), n)
		}
		cands[q] = c
	}
	sys, err := opinion.NewSystem(cands)
	if err != nil {
		return nil, 0, err
	}
	idx := &Index{Sys: sys}

	// Artifacts.
	numSketches, err := binReadCount(m, maxArtifacts)
	if err != nil {
		return nil, 0, fmt.Errorf("serialize: v3 sketch artifact count: %w", err)
	}
	for i := 0; i < numSketches; i++ {
		a := &SketchArtifact{}
		if a.Seed, err = binio.ReadI64(m); err != nil {
			return nil, 0, err
		}
		var fields [3]uint32
		for j := range fields {
			if fields[j], err = binio.ReadU32(m); err != nil {
				return nil, 0, err
			}
		}
		a.Target, a.Horizon, a.Theta = int(fields[0]), int(fields[1]), int(fields[2])
		if a.Set, a.Index, err = p.readWalkSetRef(m, fmt.Sprintf("sketch artifact %d", i)); err != nil {
			return nil, 0, err
		}
		idx.Sketches = append(idx.Sketches, a)
	}
	numWalks, err := binReadCount(m, maxArtifacts)
	if err != nil {
		return nil, 0, fmt.Errorf("serialize: v3 walk artifact count: %w", err)
	}
	for i := 0; i < numWalks; i++ {
		a := &WalkArtifact{}
		if a.Seed, err = binio.ReadI64(m); err != nil {
			return nil, 0, err
		}
		var fields [3]uint32
		for j := range fields {
			if fields[j], err = binio.ReadU32(m); err != nil {
				return nil, 0, err
			}
		}
		a.Target, a.Horizon, a.Lambda = int(fields[0]), int(fields[1]), int(fields[2])
		if a.Set, a.Index, err = p.readWalkSetRef(m, fmt.Sprintf("walk artifact %d", i)); err != nil {
			return nil, 0, err
		}
		idx.Walks = append(idx.Walks, a)
	}
	numRRs, err := binReadCount(m, maxArtifacts)
	if err != nil {
		return nil, 0, fmt.Errorf("serialize: v3 rr artifact count: %w", err)
	}
	for i := 0; i < numRRs; i++ {
		a := &RRArtifact{Sets: &im.Snapshot{}}
		if a.Seed, err = binio.ReadI64(m); err != nil {
			return nil, 0, err
		}
		var target, model uint32
		if target, err = binio.ReadU32(m); err != nil {
			return nil, 0, err
		}
		if model, err = binio.ReadU32(m); err != nil {
			return nil, 0, err
		}
		a.Target = int(target)
		a.Sets.Model = im.Model(model)
		var refs [2]uint32
		for j := range refs {
			if refs[j], err = binio.ReadU32(m); err != nil {
				return nil, 0, err
			}
		}
		what := fmt.Sprintf("rr artifact %d", i)
		a1, a2 := true, true
		if a.Sets.Nodes, a1, err = p.i32s(refs[0], what+" members"); err != nil {
			return nil, 0, err
		}
		if a.Sets.Off, a2, err = p.i32s(refs[1], what+" offsets"); err != nil {
			return nil, 0, err
		}
		a.Sets.Mapped = mapped && a1 && a2
		raw, compact, idxMapped, err := p.readPostingsRef(m, false, what+" index")
		if err != nil {
			return nil, 0, err
		}
		if raw != nil {
			a.Index = &im.IndexSnapshot{Off: raw.Off, Item: raw.Item, Mapped: idxMapped}
		} else if compact != nil {
			a.Index = &im.IndexSnapshot{Compact: compact, Mapped: idxMapped}
		}
		idx.RRs = append(idx.RRs, a)
	}

	base, err := binio.ReadU64(m)
	if err != nil {
		return nil, 0, fmt.Errorf("serialize: v3 base epoch: %w", err)
	}
	if base > math.MaxInt64 {
		return nil, 0, fmt.Errorf("serialize: v3 base epoch %d overflows", base)
	}
	idx.BaseEpoch = int64(base)
	if idx.Updates, err = readUpdateLog(m); err != nil {
		return nil, 0, err
	}
	if m.Len() != 0 {
		return nil, 0, fmt.Errorf("serialize: v3 manifest has %d trailing bytes", m.Len())
	}
	if err := idx.Validate(); err != nil {
		return nil, 0, err
	}
	return idx, p.aliased, nil
}

// MappedIndex is an Index whose bulk arrays may alias an open file
// mapping. Keep it (and the mapping) alive for as long as any dataset
// built from the Index is in use; Close only after the serving layer has
// dropped every reference.
type MappedIndex struct {
	Index *Index

	region      *mmapio.Region
	mappedBytes int64
}

// Mapped reports whether any part of the index aliases an mmap'd region.
func (mi *MappedIndex) Mapped() bool { return mi.region != nil && mi.region.Mapped() }

// MappedBytes returns how many payload bytes are consumed zero-copy from
// the mapping (0 when the load fell back to the heap).
func (mi *MappedIndex) MappedBytes() int64 {
	if !mi.Mapped() {
		return 0
	}
	return mi.mappedBytes
}

// Close releases the mapping. The Index and everything built from it must
// not be used afterwards.
func (mi *MappedIndex) Close() error {
	if mi.region == nil {
		return nil
	}
	r := mi.region
	mi.region = nil
	return r.Close()
}

// OpenMapped loads an index file with the zero-copy path when possible: a
// v3 file is mmap'd and its array sections aliased in place; v1/v2 files
// (and platforms without mmap) fall back to the heap decode of ReadIndex.
// The caller owns the returned MappedIndex and must Close it after the
// last use of the Index.
func OpenMapped(path string) (*MappedIndex, error) {
	region, err := mmapio.Open(path)
	if err != nil {
		return nil, err
	}
	data := region.Data()
	version := uint32(0)
	if len(data) >= len(indexMagic)+4 && string(data[:len(indexMagic)]) == indexMagic {
		version = binary.LittleEndian.Uint32(data[len(indexMagic):])
	}
	if version != IndexFormatV3 || !region.Mapped() {
		// Heap path: stream-decode (v1/v2) or parse the slurped image (v3
		// on a no-mmap platform); nothing references the region afterwards.
		idx, rerr := ReadIndex(bytes.NewReader(data))
		_ = region.Close()
		if rerr != nil {
			return nil, rerr
		}
		return &MappedIndex{Index: idx}, nil
	}
	idx, aliased, err := parseV3(data, true)
	if err != nil {
		_ = region.Close()
		return nil, err
	}
	return &MappedIndex{Index: idx, region: region, mappedBytes: aliased}, nil
}
