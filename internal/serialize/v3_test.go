package serialize_test

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ovm/internal/im"
	"ovm/internal/sampling"
	"ovm/internal/serialize"
	"ovm/internal/walks"
)

// buildTestIndexWithPostings extends buildTestIndex with persisted postings
// indexes on every artifact, exercising the v3 index sections.
func buildTestIndexWithPostings(t testing.TB) *serialize.Index {
	t.Helper()
	idx := buildTestIndex(t)
	g := idx.Sys.Candidate(0).G
	for _, art := range idx.Sketches {
		set, err := walks.FromSnapshot(g, art.Set)
		if err != nil {
			t.Fatal(err)
		}
		set.EnsureIndex()
		art.Index = set.IndexSnapshot()
	}
	for _, art := range idx.Walks {
		set, err := walks.FromSnapshot(g, art.Set)
		if err != nil {
			t.Fatal(err)
		}
		set.EnsureIndex()
		art.Index = set.IndexSnapshot()
	}
	for _, art := range idx.RRs {
		col, err := im.FromSnapshot(g, art.Sets, sampling.Stream{Seed: art.Seed, ID: 701}, 0)
		if err != nil {
			t.Fatal(err)
		}
		col.EnsureIndex()
		art.Index = col.IndexSnapshot()
	}
	return idx
}

func writeV3(t testing.TB, idx *serialize.Index, opts serialize.V3Options) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := serialize.WriteIndexV3(&buf, idx, opts); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// checkIndexEquivalent verifies got matches want in system, artifacts, and
// update log, and that artifacts are live (restorable, adoptable indexes).
func checkIndexEquivalent(t *testing.T, want, got *serialize.Index) {
	t.Helper()
	if got.Sys.N() != want.Sys.N() || got.Sys.R() != want.Sys.R() {
		t.Fatalf("system shape %dx%d, want %dx%d", got.Sys.N(), got.Sys.R(), want.Sys.N(), want.Sys.R())
	}
	for q := 0; q < want.Sys.R(); q++ {
		a, b := want.Sys.Candidate(q), got.Sys.Candidate(q)
		if a.Name != b.Name {
			t.Fatalf("candidate %d name %q vs %q", q, a.Name, b.Name)
		}
		if !reflect.DeepEqual(a.Init, b.Init) || !reflect.DeepEqual(a.Stub, b.Stub) {
			t.Fatalf("candidate %d vectors differ", q)
		}
	}
	if !reflect.DeepEqual(want.Sys.Candidate(0).G.Edges(), got.Sys.Candidate(0).G.Edges()) {
		t.Fatal("graph edges differ")
	}
	if len(got.Sketches) != len(want.Sketches) || len(got.Walks) != len(want.Walks) || len(got.RRs) != len(want.RRs) {
		t.Fatalf("artifact counts %d/%d/%d, want %d/%d/%d",
			len(got.Sketches), len(got.Walks), len(got.RRs),
			len(want.Sketches), len(want.Walks), len(want.RRs))
	}
	g := got.Sys.Candidate(0).G
	for i, a := range want.Sketches {
		b := got.Sketches[i]
		if a.Seed != b.Seed || a.Target != b.Target || a.Horizon != b.Horizon || a.Theta != b.Theta {
			t.Fatalf("sketch artifact %d parameters differ", i)
		}
		checkWalkSnapshotEqual(t, a.Set, b.Set)
		set, err := walks.FromSnapshot(g, b.Set)
		if err != nil {
			t.Fatalf("restoring sketch set %d: %v", i, err)
		}
		if b.Index != nil {
			if err := set.AdoptIndex(b.Index); err != nil {
				t.Fatalf("adopting sketch index %d: %v", i, err)
			}
		}
	}
	for i, a := range want.Walks {
		b := got.Walks[i]
		if a.Seed != b.Seed || a.Target != b.Target || a.Horizon != b.Horizon || a.Lambda != b.Lambda {
			t.Fatalf("walk artifact %d parameters differ", i)
		}
		checkWalkSnapshotEqual(t, a.Set, b.Set)
		set, err := walks.FromSnapshot(g, b.Set)
		if err != nil {
			t.Fatalf("restoring walk set %d: %v", i, err)
		}
		if b.Index != nil {
			if err := set.AdoptIndex(b.Index); err != nil {
				t.Fatalf("adopting walk index %d: %v", i, err)
			}
		}
	}
	for i, a := range want.RRs {
		b := got.RRs[i]
		if a.Seed != b.Seed || a.Target != b.Target || a.Sets.Model != b.Sets.Model {
			t.Fatalf("rr artifact %d parameters differ", i)
		}
		if !reflect.DeepEqual(a.Sets.Nodes, b.Sets.Nodes) || !reflect.DeepEqual(a.Sets.Off, b.Sets.Off) {
			t.Fatalf("rr artifact %d storage differs", i)
		}
		col, err := im.FromSnapshot(g, b.Sets, sampling.Stream{Seed: b.Seed, ID: 701}, 0)
		if err != nil {
			t.Fatalf("restoring rr collection %d: %v", i, err)
		}
		if b.Index != nil {
			if err := col.AdoptIndex(b.Index); err != nil {
				t.Fatalf("adopting rr index %d: %v", i, err)
			}
		}
	}
	if got.BaseEpoch != want.BaseEpoch {
		t.Fatalf("base epoch %d, want %d", got.BaseEpoch, want.BaseEpoch)
	}
	if len(got.Updates) != len(want.Updates) {
		t.Fatalf("update log has %d batches, want %d", len(got.Updates), len(want.Updates))
	}
}

func checkWalkSnapshotEqual(t *testing.T, a, b *walks.Snapshot) {
	t.Helper()
	if a.Horizon != b.Horizon ||
		!reflect.DeepEqual(a.Nodes, b.Nodes) || !reflect.DeepEqual(a.Off, b.Off) ||
		!reflect.DeepEqual(a.OwnerNodes, b.OwnerNodes) || !reflect.DeepEqual(a.OwnerOff, b.OwnerOff) {
		t.Fatal("walk snapshots differ")
	}
}

func TestV3RoundTripHeap(t *testing.T) {
	idx := buildTestIndexWithPostings(t)
	data := writeV3(t, idx, serialize.V3Options{})
	got, err := serialize.ReadIndex(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	checkIndexEquivalent(t, idx, got)
}

func TestV3RoundTripRawPostings(t *testing.T) {
	idx := buildTestIndexWithPostings(t)
	data := writeV3(t, idx, serialize.V3Options{RawPostings: true})
	got, err := serialize.ReadIndex(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	checkIndexEquivalent(t, idx, got)
}

func TestV3CompactSmallerThanRaw(t *testing.T) {
	idx := buildTestIndexWithPostings(t)
	compact := writeV3(t, idx, serialize.V3Options{})
	raw := writeV3(t, idx, serialize.V3Options{RawPostings: true})
	if len(compact) >= len(raw) {
		t.Errorf("compact postings image is %d bytes, raw %d — expected smaller", len(compact), len(raw))
	}
}

func TestV3OpenMapped(t *testing.T) {
	idx := buildTestIndexWithPostings(t)
	data := writeV3(t, idx, serialize.V3Options{})
	path := filepath.Join(t.TempDir(), "index.ovm")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	mi, err := serialize.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mi.Close()
	checkIndexEquivalent(t, idx, mi.Index)
	if !mi.Mapped() {
		t.Skip("platform fell back to heap load")
	}
	if mi.MappedBytes() == 0 {
		t.Error("mapped load reports zero mapped bytes")
	}
	if mi.MappedBytes() > int64(len(data)) {
		t.Errorf("mapped bytes %d exceed file size %d", mi.MappedBytes(), len(data))
	}
	for _, art := range mi.Index.Walks {
		if !art.Set.Mapped {
			t.Error("mapped walk artifact storage not flagged Mapped")
		}
		if art.Index == nil || art.Index.Compact == nil {
			t.Error("mapped walk artifact lacks compact index")
		}
	}
	for _, art := range mi.Index.RRs {
		if !art.Sets.Mapped {
			t.Error("mapped rr artifact storage not flagged Mapped")
		}
	}
}

// OpenMapped must also load v1/v2 stream files via the heap fallback.
func TestOpenMappedReadsV2(t *testing.T) {
	idx := buildTestIndex(t)
	var buf bytes.Buffer
	if err := serialize.WriteIndex(&buf, idx); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "index.ovm")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	mi, err := serialize.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mi.Close()
	if mi.Mapped() {
		t.Error("v2 stream file must load to heap, not stay mapped")
	}
	if mi.MappedBytes() != 0 {
		t.Errorf("v2 load reports %d mapped bytes, want 0", mi.MappedBytes())
	}
	checkIndexEquivalent(t, idx, mi.Index)
}

// v3TableEntry gives mutation access to section table entry i.
func v3TableEntry(data []byte, i int) []byte {
	return data[24+i*24 : 24+(i+1)*24]
}

// fixV3TableCRC recomputes the header's table checksum after a table
// mutation, so the deliberately-broken field under test is what the
// parser actually reaches.
func fixV3TableCRC(data []byte) {
	numSections := binary.LittleEndian.Uint32(data[12:])
	table := data[24 : 24+int(numSections)*24]
	binary.LittleEndian.PutUint32(data[16:], crc32.ChecksumIEEE(table))
}

func TestV3RejectsCorruption(t *testing.T) {
	idx := buildTestIndexWithPostings(t)
	pristine := writeV3(t, idx, serialize.V3Options{})
	numSections := int(binary.LittleEndian.Uint32(pristine[12:]))
	if numSections < 3 {
		t.Fatalf("test image has only %d sections", numSections)
	}
	tableEnd := 24 + numSections*24

	cases := []struct {
		name   string
		mutate func(data []byte)
	}{
		{"bad table crc", func(data []byte) {
			data[16] ^= 0xff
		}},
		{"misaligned section offset", func(data []byte) {
			e := v3TableEntry(data, 1)
			binary.LittleEndian.PutUint64(e[0:], binary.LittleEndian.Uint64(e[0:])+4)
			fixV3TableCRC(data)
		}},
		{"overlapping sections", func(data []byte) {
			e0 := v3TableEntry(data, 0)
			e1 := v3TableEntry(data, 1)
			copy(e1[0:8], e0[0:8]) // section 1 starts where section 0 does
			fixV3TableCRC(data)
		}},
		{"section spans past end of file", func(data []byte) {
			e := v3TableEntry(data, numSections-1)
			binary.LittleEndian.PutUint64(e[8:], uint64(len(data)))
			fixV3TableCRC(data)
		}},
		{"unknown section kind", func(data []byte) {
			e := v3TableEntry(data, 1)
			binary.LittleEndian.PutUint32(e[16:], 77)
			fixV3TableCRC(data)
		}},
		{"second manifest", func(data []byte) {
			e := v3TableEntry(data, 1)
			binary.LittleEndian.PutUint32(e[16:], 1) // kind = manifest
			fixV3TableCRC(data)
		}},
		{"payload checksum mismatch", func(data []byte) {
			data[tableEnd+(len(data)-tableEnd)/2] ^= 0x40
		}},
		{"zero sections", func(data []byte) {
			binary.LittleEndian.PutUint32(data[12:], 0)
		}},
		{"header padding set", func(data []byte) {
			data[10] = 1
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := append([]byte(nil), pristine...)
			tc.mutate(data)
			if _, err := serialize.ReadIndex(bytes.NewReader(data)); err == nil {
				t.Error("expected stream reader to reject corrupted v3 image")
			}
			path := filepath.Join(t.TempDir(), "bad.ovm")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			if mi, err := serialize.OpenMapped(path); err == nil {
				mi.Close()
				t.Error("expected mapped reader to reject corrupted v3 image")
			}
		})
	}
}

func TestV3RejectsTruncation(t *testing.T) {
	idx := buildTestIndexWithPostings(t)
	data := writeV3(t, idx, serialize.V3Options{})
	dir := t.TempDir()
	for _, cut := range []int{0, 3, 10, 23, 24, 24 + 24, len(data) / 3, len(data) / 2, len(data) - 1} {
		trunc := data[:cut]
		if _, err := serialize.ReadIndex(bytes.NewReader(trunc)); err == nil {
			t.Errorf("expected stream reader to reject v3 image truncated to %d bytes", cut)
		}
		path := filepath.Join(dir, "trunc.ovm")
		if err := os.WriteFile(path, trunc, 0o644); err != nil {
			t.Fatal(err)
		}
		if mi, err := serialize.OpenMapped(path); err == nil {
			mi.Close()
			t.Errorf("expected mapped reader to reject v3 image truncated to %d bytes", cut)
		}
	}
}
