package service

import (
	"context"
	"sync/atomic"
)

// admission is the compute-path load shedder: a fixed pool of computation
// slots plus a bounded wait queue. Cache hits never pass through it — a
// shedding daemon still answers everything the cache can serve. A nil
// *admission (MaxInflight 0) admits everything.
type admission struct {
	slots    chan struct{} // buffered to MaxInflight; a send acquires a slot
	queued   atomic.Int64
	maxQueue int64
}

// newAdmission returns nil (no admission control) when maxInflight <= 0.
func newAdmission(maxInflight, maxQueue int) *admission {
	if maxInflight <= 0 {
		return nil
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{slots: make(chan struct{}, maxInflight), maxQueue: int64(maxQueue)}
}

// acquire takes a computation slot, waiting in the bounded queue when all
// slots are busy. A full queue sheds the request with a typed overloaded
// error (HTTP 429 + Retry-After); a context expiry while queued returns
// the context error. Callers must release after a nil return.
func (a *admission) acquire(ctx context.Context) error {
	if a == nil {
		return nil
	}
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		return &Error{
			Code:       CodeOverloaded,
			Message:    "compute capacity exhausted: inflight cap reached and the wait queue is full",
			RetryAfter: 1,
		}
	}
	defer a.queued.Add(-1)
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctxDone:
		return ctx.Err()
	}
}

func (a *admission) release() {
	if a != nil {
		<-a.slots
	}
}
