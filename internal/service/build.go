package service

import (
	"fmt"

	"ovm/internal/core"
	"ovm/internal/im"
	"ovm/internal/opinion"
	"ovm/internal/rwalk"
	"ovm/internal/sampling"
	"ovm/internal/serialize"
	"ovm/internal/sketch"
	"ovm/internal/voting"
)

// BuildOptions selects which artifacts an index precomputes. Every
// artifact is tied to (Target, Horizon, Seed): a query reuses an artifact
// only when those parameters match, which is exactly the condition under
// which reuse is byte-identical to recomputation.
type BuildOptions struct {
	// Target is the campaigning candidate the artifacts serve.
	Target int
	// Horizon is the timestamp t the walks are generated for.
	Horizon int
	// Seed is the root random seed, matching the request-level Seed.
	Seed int64
	// SketchTheta precomputes an RS sketch set with θ walks (0 = skip).
	SketchTheta int
	// IncludeWalks precomputes the RW method's cumulative-score walk set
	// (Theorem 10's per-node λ under the default rwalk configuration).
	IncludeWalks bool
	// RRSets precomputes that many reverse-reachable sets per model in
	// RRModels for the IC/LT baselines (0 = skip).
	RRSets int
	// RRModels lists the diffusion models to precompute RR sets for;
	// empty with RRSets > 0 means both IC and LT.
	RRModels []im.Model
	// Parallelism caps the engine worker pool during the build (0 =
	// GOMAXPROCS). It never changes the produced artifacts.
	Parallelism int
}

// BuildIndex precomputes the serving artifacts for sys. The generation
// uses the same substream families as the live methods (sketch.GenerateSet,
// rwalk.GenerateSet, IMM's RR stream), so an artifact loaded later is
// bit-identical to what a from-scratch query would generate.
func BuildIndex(sys *opinion.System, o BuildOptions) (*serialize.Index, error) {
	if sys == nil {
		return nil, fmt.Errorf("service: nil system")
	}
	if o.Target < 0 || o.Target >= sys.R() {
		return nil, fmt.Errorf("service: target %d out of range [0,%d)", o.Target, sys.R())
	}
	if o.Horizon < 0 {
		return nil, fmt.Errorf("service: horizon must be >= 0, got %d", o.Horizon)
	}
	if o.SketchTheta < 0 || o.RRSets < 0 {
		return nil, fmt.Errorf("service: sketch theta and rr counts must be >= 0")
	}
	idx := &serialize.Index{Sys: sys}
	// The generators only read Sys/Target/Horizon from the problem; K and
	// Score exist to satisfy the shared Problem shape.
	prob := &core.Problem{Sys: sys, Target: o.Target, Horizon: o.Horizon, K: 1, Score: voting.Cumulative{}}
	if o.SketchTheta > 0 {
		set, err := sketch.GenerateSet(prob, o.SketchTheta, o.Seed, o.Parallelism)
		if err != nil {
			return nil, err
		}
		snap, err := set.Snapshot()
		if err != nil {
			return nil, err
		}
		// Persist the postings index too (v3 stores it next to the walks),
		// so loaders adopt it instead of re-running the counting sort.
		set.EnsureIndex()
		idx.Sketches = append(idx.Sketches, &serialize.SketchArtifact{
			Seed: o.Seed, Target: o.Target, Horizon: o.Horizon, Theta: o.SketchTheta, Set: snap,
			Index: set.IndexSnapshot(),
		})
	}
	if o.IncludeWalks {
		lambda, err := rwalk.CumulativeLambda(rwalk.Config{})
		if err != nil {
			return nil, err
		}
		plan := make([]int32, sys.N())
		for v := range plan {
			plan[v] = int32(lambda)
		}
		set, err := rwalk.GenerateSet(prob, plan, o.Seed, o.Parallelism)
		if err != nil {
			return nil, err
		}
		snap, err := set.Snapshot()
		if err != nil {
			return nil, err
		}
		set.EnsureIndex()
		idx.Walks = append(idx.Walks, &serialize.WalkArtifact{
			Seed: o.Seed, Target: o.Target, Horizon: o.Horizon, Lambda: lambda, Set: snap,
			Index: set.IndexSnapshot(),
		})
	}
	if o.RRSets > 0 {
		models := o.RRModels
		if len(models) == 0 {
			models = []im.Model{im.IC, im.LT}
		}
		g := sys.Candidate(o.Target).G
		for _, model := range models {
			col := im.NewRRCollection(g, model, sampling.Stream{Seed: o.Seed, ID: 701}, o.Parallelism)
			col.Add(o.RRSets)
			snap, err := col.Snapshot()
			if err != nil {
				return nil, err
			}
			col.EnsureIndex()
			idx.RRs = append(idx.RRs, &serialize.RRArtifact{
				Seed: o.Seed, Target: o.Target, Sets: snap, Index: col.IndexSnapshot(),
			})
		}
	}
	return idx, nil
}
