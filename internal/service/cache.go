package service

import (
	"container/list"
	"fmt"
	"sync"
)

// lruCache is a fixed-capacity least-recently-used response cache keyed by
// canonicalized request strings. Values are treated as immutable by
// convention: callers must not mutate what they Get.
type lruCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	evictions int64
}

type lruEntry struct {
	key string
	val any
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the cached value and refreshes its recency.
func (c *lruCache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put inserts (or refreshes) a value, evicting the least recently used
// entry when over capacity.
func (c *lruCache) Put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap <= 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
		c.evictions++
	}
}

// Len returns the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Evictions returns the lifetime eviction count.
func (c *lruCache) Evictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// Reset drops every entry (eviction count is preserved).
func (c *lruCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
}

// Keys returns the cached keys from most to least recently used (tests).
func (c *lruCache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*lruEntry).key)
	}
	return keys
}

// flightGroup coalesces concurrent calls with the same key into one
// execution whose result every caller shares (the classic singleflight
// shape, local to this package to keep the module dependency-free).
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	wg      sync.WaitGroup
	waiters int
	val     any
	err     error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// Do runs fn once per key at a time: concurrent callers with an in-flight
// key block and receive the leader's result. shared reports whether this
// caller piggybacked on another's execution.
func (g *flightGroup) Do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if call, ok := g.calls[key]; ok {
		call.waiters++
		g.mu.Unlock()
		call.wg.Wait()
		return call.val, call.err, true
	}
	call := &flightCall{}
	call.wg.Add(1)
	g.calls[key] = call
	g.mu.Unlock()

	// Release waiters and drop the key even if fn panics, so one crashing
	// computation cannot wedge every future caller of the same key. The
	// panic is converted into an error shared by leader and waiters alike.
	defer func() {
		if r := recover(); r != nil {
			call.err = fmt.Errorf("service: query panicked: %v", r)
			val, err = call.val, call.err
		}
		call.wg.Done()
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
	}()
	call.val, call.err = fn()
	return call.val, call.err, false
}

// waiters reports how many callers are blocked on the in-flight key
// (deterministic test synchronization).
func (g *flightGroup) waiters(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if call, ok := g.calls[key]; ok {
		return call.waiters
	}
	return 0
}
