package service

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"ovm/internal/obs"
)

// lruCache is a fixed-capacity least-recently-used response cache keyed by
// canonicalized request strings. Values are treated as immutable by
// convention: callers must not mutate what they Get.
type lruCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	evictions int64
}

type lruEntry struct {
	key string
	val any
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the cached value and refreshes its recency.
func (c *lruCache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put inserts (or refreshes) a value, evicting the least recently used
// entry when over capacity.
func (c *lruCache) Put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap <= 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
		c.evictions++
	}
}

// Len returns the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Evictions returns the lifetime eviction count.
func (c *lruCache) Evictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// Reset drops every entry (eviction count is preserved).
func (c *lruCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
}

// Keys returns the cached keys from most to least recently used (tests).
func (c *lruCache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*lruEntry).key)
	}
	return keys
}

// flightGroup coalesces concurrent calls with the same key into one
// execution whose result every caller shares (the classic singleflight
// shape, local to this package to keep the module dependency-free).
//
// The computation runs in a goroutine detached from every caller's
// context: a caller whose context expires abandons the wait (and gets its
// context error), but the computation keeps running for the remaining
// waiters — a leader's cancellation never poisons its followers. Only
// when every interested caller has abandoned is the computation's own
// context cancelled, stopping the now-unwanted work at its next
// cooperative poll.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

// computeOutcome carries a detached computation's result to its waiters.
// selNs and cost are stamped by the compute closure so the leading
// caller's span can adopt them without racing the detached goroutine.
type computeOutcome struct {
	val   any
	err   error
	selNs int64
	cost  obs.CostSnapshot
}

type flightCall struct {
	done    chan struct{} // closed when outcome is set
	outcome *computeOutcome

	// Guarded by the group mutex.
	waiters  int  // callers that piggybacked (test synchronization)
	interest int  // callers still waiting; 0 → cancel the compute
	dead     bool // every waiter abandoned; no new joiners
	cancel   context.CancelFunc
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// Do coalesces concurrent callers of the same key onto one execution of fn
// and blocks until the outcome is ready or ctx is done, whichever comes
// first. fn runs in a detached goroutine under its own context, which is
// cancelled only when every coalesced caller has abandoned. shared reports
// whether this caller piggybacked on another's execution; a non-nil error
// is this caller's ctx error (the computation itself reports failures
// through the outcome).
func (g *flightGroup) Do(ctx context.Context, key string, fn func(ctx context.Context) *computeOutcome) (out *computeOutcome, shared bool, err error) {
	g.mu.Lock()
	if call, ok := g.calls[key]; ok && !call.dead {
		call.waiters++
		call.interest++
		g.mu.Unlock()
		return g.wait(ctx, key, call, true)
	}
	cctx, cancel := context.WithCancel(context.Background())
	call := &flightCall{done: make(chan struct{}), interest: 1, cancel: cancel}
	g.calls[key] = call
	g.mu.Unlock()

	go func() {
		// Set the outcome and drop the key even if fn panics, so one
		// crashing computation cannot wedge every future caller of the same
		// key. The panic is converted into an error shared by all waiters.
		defer func() {
			if r := recover(); r != nil {
				call.outcome = &computeOutcome{err: fmt.Errorf("service: query panicked: %v", r)}
			}
			cancel()
			g.mu.Lock()
			if g.calls[key] == call {
				delete(g.calls, key)
			}
			g.mu.Unlock()
			close(call.done)
		}()
		call.outcome = fn(cctx)
	}()
	return g.wait(ctx, key, call, false)
}

// wait blocks until the call finishes or ctx is done. An abandoning caller
// withdraws its interest; the last withdrawal cancels the computation and
// retires the key so a fresh query restarts cleanly instead of joining a
// doomed flight.
func (g *flightGroup) wait(ctx context.Context, key string, call *flightCall, shared bool) (*computeOutcome, bool, error) {
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	select {
	case <-call.done:
		return call.outcome, shared, nil
	case <-ctxDone:
	}
	g.mu.Lock()
	call.interest--
	if call.interest == 0 && !call.dead {
		call.dead = true
		call.cancel()
		if g.calls[key] == call {
			delete(g.calls, key)
		}
	}
	g.mu.Unlock()
	return nil, shared, ctx.Err()
}

// waiters reports how many callers are blocked on the in-flight key
// (deterministic test synchronization).
func (g *flightGroup) waiters(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if call, ok := g.calls[key]; ok {
		return call.waiters
	}
	return 0
}
