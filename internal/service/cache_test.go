package service

import (
	"errors"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestLRUEvictionOrder(t *testing.T) {
	c := newLRUCache(3)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	// Refresh a: b becomes the least recently used.
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	c.Put("d", 4)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted (least recently used)")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should have survived eviction", k)
		}
	}
	if got := c.Evictions(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	// The survival checks above touched a, then c, then d — making a the
	// least recently used again.
	c.Put("e", 5)
	if _, ok := c.Get("a"); ok {
		t.Error("a should have been evicted after the refresh sequence")
	}
	if got := []string{"e", "d", "c"}; !reflect.DeepEqual(c.Keys(), got) {
		t.Errorf("keys = %v, want %v", c.Keys(), got)
	}
}

func TestLRUPutRefreshesExisting(t *testing.T) {
	c := newLRUCache(2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // refresh, not insert: b stays
	c.Put("c", 3)  // evicts b
	if v, ok := c.Get("a"); !ok || v.(int) != 10 {
		t.Errorf("Get(a) = %v, %v; want 10, true", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
}

func TestLRUZeroCapacityNeverStores(t *testing.T) {
	c := newLRUCache(-1)
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Error("disabled cache must not store entries")
	}
}

func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	const followers = 8
	var calls atomic.Int32
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]int, followers+1)
	run := func(i int, signal bool) {
		defer wg.Done()
		v, err, _ := g.Do("k", func() (any, error) {
			calls.Add(1)
			if signal {
				close(leaderIn)
			}
			<-release
			return 42, nil
		})
		if err != nil {
			t.Errorf("Do: %v", err)
			return
		}
		results[i] = v.(int)
	}
	wg.Add(1)
	go run(0, true)
	<-leaderIn // the leader is inside fn; everyone else must coalesce
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go run(i, false)
	}
	// Release only after every follower is parked on the in-flight call —
	// otherwise the leader could finish before a follower arrives and the
	// follower would legitimately start a fresh computation.
	for g.waiters("k") < followers {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Errorf("fn ran %d times, want 1", got)
	}
	for i, v := range results {
		if v != 42 {
			t.Errorf("caller %d got %d, want 42", i, v)
		}
	}
}

func TestFlightGroupPanicReleasesWaiters(t *testing.T) {
	g := newFlightGroup()
	_, err, _ := g.Do("k", func() (any, error) { panic("boom") })
	if err == nil {
		t.Fatal("expected error from panicking computation")
	}
	// The key must be usable again afterwards.
	v, err, _ := g.Do("k", func() (any, error) { return "ok", nil })
	if err != nil || v.(string) != "ok" {
		t.Fatalf("Do after panic = %v, %v", v, err)
	}
}

func TestFlightGroupPropagatesError(t *testing.T) {
	g := newFlightGroup()
	want := errors.New("nope")
	_, err, _ := g.Do("k", func() (any, error) { return nil, want })
	if !errors.Is(err, want) {
		t.Errorf("err = %v, want %v", err, want)
	}
}
