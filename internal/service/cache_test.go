package service

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestLRUEvictionOrder(t *testing.T) {
	c := newLRUCache(3)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	// Refresh a: b becomes the least recently used.
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	c.Put("d", 4)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted (least recently used)")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should have survived eviction", k)
		}
	}
	if got := c.Evictions(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	// The survival checks above touched a, then c, then d — making a the
	// least recently used again.
	c.Put("e", 5)
	if _, ok := c.Get("a"); ok {
		t.Error("a should have been evicted after the refresh sequence")
	}
	if got := []string{"e", "d", "c"}; !reflect.DeepEqual(c.Keys(), got) {
		t.Errorf("keys = %v, want %v", c.Keys(), got)
	}
}

func TestLRUPutRefreshesExisting(t *testing.T) {
	c := newLRUCache(2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // refresh, not insert: b stays
	c.Put("c", 3)  // evicts b
	if v, ok := c.Get("a"); !ok || v.(int) != 10 {
		t.Errorf("Get(a) = %v, %v; want 10, true", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
}

func TestLRUZeroCapacityNeverStores(t *testing.T) {
	c := newLRUCache(-1)
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Error("disabled cache must not store entries")
	}
}

func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	const followers = 8
	var calls atomic.Int32
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]int, followers+1)
	run := func(i int, signal bool) {
		defer wg.Done()
		out, _, err := g.Do(context.Background(), "k", func(context.Context) *computeOutcome {
			calls.Add(1)
			if signal {
				close(leaderIn)
			}
			<-release
			return &computeOutcome{val: 42}
		})
		if err != nil || out.err != nil {
			t.Errorf("Do: %v / %v", err, out.err)
			return
		}
		results[i] = out.val.(int)
	}
	wg.Add(1)
	go run(0, true)
	<-leaderIn // the leader is inside fn; everyone else must coalesce
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go run(i, false)
	}
	// Release only after every follower is parked on the in-flight call —
	// otherwise the leader could finish before a follower arrives and the
	// follower would legitimately start a fresh computation.
	for g.waiters("k") < followers {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Errorf("fn ran %d times, want 1", got)
	}
	for i, v := range results {
		if v != 42 {
			t.Errorf("caller %d got %d, want 42", i, v)
		}
	}
}

func TestFlightGroupPanicReleasesWaiters(t *testing.T) {
	g := newFlightGroup()
	out, _, err := g.Do(context.Background(), "k", func(context.Context) *computeOutcome { panic("boom") })
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if out.err == nil {
		t.Fatal("expected error from panicking computation")
	}
	// The key must be usable again afterwards.
	out, _, err = g.Do(context.Background(), "k", func(context.Context) *computeOutcome {
		return &computeOutcome{val: "ok"}
	})
	if err != nil || out.err != nil || out.val.(string) != "ok" {
		t.Fatalf("Do after panic = %+v, %v", out, err)
	}
}

func TestFlightGroupPropagatesError(t *testing.T) {
	g := newFlightGroup()
	want := errors.New("nope")
	out, _, err := g.Do(context.Background(), "k", func(context.Context) *computeOutcome {
		return &computeOutcome{err: want}
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if !errors.Is(out.err, want) {
		t.Errorf("err = %v, want %v", out.err, want)
	}
}

// TestFlightGroupLeaderCancelDoesNotPoisonFollowers is the detachment
// contract: the leader's context expires mid-compute, the leader gets its
// context error, and a follower that coalesced onto the same key still
// receives the correct value — the computation must not be cancelled while
// any waiter remains interested.
func TestFlightGroupLeaderCancelDoesNotPoisonFollowers(t *testing.T) {
	g := newFlightGroup()
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	var computeCtx context.Context
	fn := func(cctx context.Context) *computeOutcome {
		computeCtx = cctx
		close(leaderIn)
		<-release
		if err := cctx.Err(); err != nil {
			return &computeOutcome{err: err}
		}
		return &computeOutcome{val: "value"}
	}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := g.Do(leaderCtx, "k", fn)
		leaderDone <- err
	}()
	<-leaderIn

	followerDone := make(chan *computeOutcome, 1)
	go func() {
		out, shared, err := g.Do(context.Background(), "k", fn)
		if err != nil {
			t.Errorf("follower Do: %v", err)
		}
		if !shared {
			t.Error("follower should have coalesced")
		}
		followerDone <- out
	}()
	for g.waiters("k") < 1 {
		runtime.Gosched()
	}

	cancelLeader()
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want context.Canceled", err)
	}
	// The follower is still interested: the compute context must be alive.
	if computeCtx.Err() != nil {
		t.Fatal("compute ctx cancelled while a follower still waits")
	}
	close(release)
	out := <-followerDone
	if out.err != nil || out.val.(string) != "value" {
		t.Fatalf("follower outcome = %+v, want value", out)
	}
}

// TestFlightGroupAllWaitersGoneCancelsCompute: once every caller abandons,
// the detached computation's context is cancelled and the key is retired so
// a fresh query restarts cleanly.
func TestFlightGroupAllWaitersGoneCancelsCompute(t *testing.T) {
	g := newFlightGroup()
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	computeDone := make(chan error, 1)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		_, _, err := g.Do(ctx, "k", func(cctx context.Context) *computeOutcome {
			close(leaderIn)
			<-cctx.Done() // the compute observes its own cancellation
			computeDone <- cctx.Err()
			<-release
			return &computeOutcome{err: cctx.Err()}
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("caller err = %v, want context.Canceled", err)
		}
	}()
	<-leaderIn
	cancel()
	if err := <-computeDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("compute ctx err = %v, want context.Canceled", err)
	}
	// The key must be free for a fresh flight even though the old compute
	// goroutine is still unwinding.
	out, shared, err := g.Do(context.Background(), "k", func(context.Context) *computeOutcome {
		return &computeOutcome{val: "fresh"}
	})
	if err != nil || shared || out.val.(string) != "fresh" {
		t.Fatalf("fresh Do = %+v shared=%v err=%v", out, shared, err)
	}
	close(release)
}
