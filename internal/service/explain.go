package service

import (
	"ovm/internal/obs"
	"ovm/internal/walks"
)

// ExplainBlock is the observability attachment a query returns when the
// request sets "explain": true. It never changes the result fields — it
// is stamped onto the per-delivery response copy after the shared value
// is resolved, so cached and uncached answers stay byte-identical once
// the explain block is stripped.
//
// Span is this request's stage trace (cache-lookup, singleflight-wait,
// selection). Cost is the registry-counter delta captured around the
// compute closure — it is populated only on the delivery that actually
// computed (the singleflight leader); cache hits and coalesced followers
// report no cost because they did no compute work. Under concurrent
// load the delta can include work from overlapping queries (the
// counters are process-global); on an idle daemon it is exact, which is
// what the reconciliation check in the smoke test relies on.
//
// Rounds is the per-greedy-round work breakdown for select-seeds on the
// RW/RS paths (walks truncated, postings entries/blocks touched, gain
// cache hits/misses per round). It describes the computation that
// produced the answer, so it is retained with the cached value: a cache
// hit still explains how its answer was derived, even though its own
// Cost is empty.
type ExplainBlock struct {
	Span   *obs.Span         `json:"span"`
	Cost   obs.CostSnapshot  `json:"cost,omitempty"`
	Rounds []walks.RoundCost `json:"rounds,omitempty"`
}

// explain builds the block for one delivery. span is this request's
// trace; rounds may be nil for methods without a greedy round structure.
func explainBlock(span *obs.Span, rounds []walks.RoundCost) *ExplainBlock {
	return &ExplainBlock{Span: span, Cost: span.Cost, Rounds: rounds}
}
