package service_test

import (
	"encoding/json"
	"fmt"
	"testing"

	"ovm/internal/service"
)

// stripExplain returns resp marshaled with its explain block removed and
// its elapsedMs overwritten by ref's (wall-clock is per-delivery and can
// never be byte-stable). Everything else must match ref byte-for-byte.
func normalizeJSON(t *testing.T, resp any, elapsedMs float64) []byte {
	t.Helper()
	raw, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "explain")
	m["elapsedMs"] = elapsedMs
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestExplainEquivalence is the EXPLAIN wire contract: at parallelism
// 1/4/0, pre- and post-update, an explain:true response is byte-identical
// to the plain response once the explain block is stripped — on all four
// query endpoints, for both the computed and the cached delivery. Two
// identically built services answer the two variants so both sides see
// the same cache state.
func TestExplainEquivalence(t *testing.T) {
	_, idx := testWorld(t)
	batch := testBatch(t, idx)
	svcPlain := newTestService(t, idx)
	svcExplain := newTestService(t, idx)

	check := func(t *testing.T, par int) {
		// Parallelism is excluded from the cache key by design, so each
		// parallelism level starts from a cold cache to get a computed
		// first round.
		svcPlain.ResetCache()
		svcExplain.ResetCache()
		type pair struct {
			name  string
			plain func() any
			expl  func() (any, *service.ExplainBlock)
		}
		sel := func(svc *service.Service, explain bool) (*service.SelectSeedsResponse, *service.Error) {
			req := selectReq("RS", "plurality", tdTheta)
			req.Parallelism = par
			req.Explain = explain
			return svc.SelectSeeds(req)
		}
		eval := func(svc *service.Service, explain bool) (*service.EvaluateResponse, *service.Error) {
			return svc.Evaluate(&service.EvaluateRequest{
				Dataset: "world", Score: service.ScoreSpec{Name: "plurality"},
				Horizon: tdHorizon, Target: 0, Seeds: []int32{1, 2, 3},
				Parallelism: par, Explain: explain,
			})
		}
		wins := func(svc *service.Service, explain bool) (*service.WinsResponse, *service.Error) {
			return svc.Wins(&service.EvaluateRequest{
				Dataset: "world", Score: service.ScoreSpec{Name: "plurality"},
				Horizon: tdHorizon, Target: 0, Seeds: []int32{1, 2, 3},
				Parallelism: par, Explain: explain,
			})
		}
		minw := func(svc *service.Service, explain bool) (*service.MinSeedsResponse, *service.Error) {
			return svc.MinSeedsToWin(&service.MinSeedsRequest{
				Dataset: "world", Method: "RS", Score: service.ScoreSpec{Name: "plurality"},
				Horizon: tdHorizon, Target: 0, Seed: tdSeed, Theta: tdTheta,
				Parallelism: par, Explain: explain,
			})
		}
		pairs := []pair{
			{"select-seeds", func() any {
				r, serr := sel(svcPlain, false)
				if serr != nil {
					t.Fatal(serr)
				}
				return r
			}, func() (any, *service.ExplainBlock) {
				r, serr := sel(svcExplain, true)
				if serr != nil {
					t.Fatal(serr)
				}
				return r, r.Explain
			}},
			{"evaluate", func() any {
				r, serr := eval(svcPlain, false)
				if serr != nil {
					t.Fatal(serr)
				}
				return r
			}, func() (any, *service.ExplainBlock) {
				r, serr := eval(svcExplain, true)
				if serr != nil {
					t.Fatal(serr)
				}
				return r, r.Explain
			}},
			{"wins", func() any {
				r, serr := wins(svcPlain, false)
				if serr != nil {
					t.Fatal(serr)
				}
				return r
			}, func() (any, *service.ExplainBlock) {
				r, serr := wins(svcExplain, true)
				if serr != nil {
					t.Fatal(serr)
				}
				return r, r.Explain
			}},
			{"min-seeds-to-win", func() any {
				r, serr := minw(svcPlain, false)
				if serr != nil {
					t.Fatal(serr)
				}
				return r
			}, func() (any, *service.ExplainBlock) {
				r, serr := minw(svcExplain, true)
				if serr != nil {
					t.Fatal(serr)
				}
				return r, r.Explain
			}},
		}
		for _, p := range pairs {
			// Two rounds: the first computes, the second serves from cache.
			// Equivalence must hold for both.
			for round, wantCached := range []bool{false, true} {
				plainResp := p.plain()
				explResp, block := p.expl()
				if block == nil || block.Span == nil {
					t.Fatalf("%s round %d: explain:true returned no explain block", p.name, round)
				}
				got := normalizeJSON(t, explResp, 0)
				want := normalizeJSON(t, plainResp, 0)
				if string(got) != string(want) {
					t.Errorf("%s round %d (cached=%v): stripped explain response differs\n got: %s\nwant: %s",
						p.name, round, wantCached, got, want)
				}
				if round == 0 && len(block.Cost) == 0 {
					t.Errorf("%s: computed delivery has an empty cost snapshot", p.name)
				}
				if round == 1 && len(block.Cost) != 0 {
					t.Errorf("%s: cached delivery claims compute cost %v", p.name, block.Cost)
				}
			}
		}
	}

	for _, par := range []int{1, 4, 0} {
		t.Run(fmt.Sprintf("P=%d/pre-update", par), func(t *testing.T) { check(t, par) })
	}
	// Mutate both services identically; explain equivalence must survive
	// the epoch bump (new cache generation, repaired artifacts).
	for _, svc := range []*service.Service{svcPlain, svcExplain} {
		if _, serr := svc.ApplyUpdates(&service.UpdateRequest{Dataset: "world", Ops: batch}); serr != nil {
			t.Fatal(serr)
		}
	}
	for _, par := range []int{1, 4, 0} {
		t.Run(fmt.Sprintf("P=%d/post-update", par), func(t *testing.T) { check(t, par) })
	}
}

// TestExplainRoundsReconcile is the acceptance check for the cost
// accounting's global/round mirror invariant: an uncached select-seeds
// explain reports per-round walks-truncated / postings-blocks-decoded
// counts whose sums equal the query's cost-snapshot deltas for the same
// counters — the same reconciliation an operator does between an explain
// block and two /metrics scrapes around the query.
func TestExplainRoundsReconcile(t *testing.T) {
	_, idx := testWorld(t)
	for _, par := range []int{1, 4, 0} {
		svc := newTestService(t, idx)
		req := selectReq("RS", "plurality", tdTheta)
		req.Parallelism = par
		req.Explain = true
		resp, serr := svc.SelectSeeds(req)
		if serr != nil {
			t.Fatal(serr)
		}
		if resp.Cached || resp.Explain == nil {
			t.Fatalf("P=%d: want an uncached explained response, got cached=%v explain=%v", par, resp.Cached, resp.Explain)
		}
		if len(resp.Explain.Rounds) != tdK {
			t.Fatalf("P=%d: %d rounds reported, want k=%d", par, len(resp.Explain.Rounds), tdK)
		}
		var truncated, blocks, entries int64
		for i, r := range resp.Explain.Rounds {
			if r.Seed != resp.Seeds[i] {
				t.Errorf("P=%d round %d: explain seed %d, response seed %d", par, i, r.Seed, resp.Seeds[i])
			}
			truncated += r.WalksTruncated
			blocks += r.PostingsBlocks
			entries += r.PostingsEntries
		}
		cost := resp.Explain.Cost
		if got := cost["ovm_walks_truncated_total"]; got != truncated {
			t.Errorf("P=%d: rounds sum %d walks truncated, cost snapshot says %d", par, truncated, got)
		}
		if got := cost["ovm_postings_blocks_total"]; got != blocks {
			t.Errorf("P=%d: rounds sum %d postings blocks, cost snapshot says %d", par, blocks, got)
		}
		if got := cost["ovm_postings_entries_total"]; got != entries {
			t.Errorf("P=%d: rounds sum %d postings entries, cost snapshot says %d", par, entries, got)
		}
		if entries == 0 || truncated == 0 {
			t.Errorf("P=%d: implausible zero work (entries=%d truncated=%d)", par, entries, truncated)
		}
	}
}
