package service

import "context"

// SetComputeContext installs the test-only hook that wraps every detached
// compute context, letting robustness tests cancel a computation at a
// precise point mid-greedy (or block it to hold an admission slot) without
// racing the request path. Production code never sets it.
func (c *Config) SetComputeContext(hook func(context.Context) context.Context) {
	c.computeContext = hook
}
