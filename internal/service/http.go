package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"time"

	"ovm/internal/obs"
)

// maxBodyBytes bounds request bodies; seed lists are the only unbounded
// field and a million seeds still fit comfortably. Update batches are
// additionally bounded by op count (maxUpdateOps).
const maxBodyBytes = 8 << 20

// Handler returns the daemon's HTTP mux:
//
//	POST /v1/select-seeds             SelectSeedsRequest → SelectSeedsResponse
//	POST /v1/evaluate                 EvaluateRequest    → EvaluateResponse
//	POST /v1/wins                     EvaluateRequest    → WinsResponse
//	POST /v1/min-seeds-to-win         MinSeedsRequest    → MinSeedsResponse
//	POST /v1/datasets/{name}/updates  UpdateRequest body → UpdateResponse
//	GET  /v1/datasets                 → {"datasets": [names]}
//	GET  /healthz                     → 200 "ok" once the service is up
//	GET  /stats                       → Stats
//	GET  /metrics                     → Prometheus text exposition
//	GET  /debug/slow-queries          → retained slow queries, slowest first
//	GET  /debug/timeseries?window=10m → ring-TSDB samples, oldest first
//
// Errors are returned as {"error": {"code", "message"}} with the status
// implied by the code (bad_request → 400, not_found → 404,
// deadline_exceeded → 504, canceled → 499, overloaded → 429 with a
// Retry-After header, else 500). Every query handler threads the request
// context into the service, so a client disconnect or an expired deadline
// cancels the query at its next cooperative poll. The whole mux is wrapped
// in panic recovery: a crashing handler becomes a 500 plus an
// ovmd_panics_total increment, never a dead daemon.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/select-seeds", func(w http.ResponseWriter, r *http.Request) {
		handleQuery(s, w, r, func(req *SelectSeedsRequest) (*SelectSeedsResponse, *Error) {
			return s.SelectSeedsCtx(r.Context(), req)
		})
	})
	mux.HandleFunc("/v1/evaluate", func(w http.ResponseWriter, r *http.Request) {
		handleQuery(s, w, r, func(req *EvaluateRequest) (*EvaluateResponse, *Error) {
			return s.EvaluateCtx(r.Context(), req)
		})
	})
	mux.HandleFunc("/v1/wins", func(w http.ResponseWriter, r *http.Request) {
		handleQuery(s, w, r, func(req *EvaluateRequest) (*WinsResponse, *Error) {
			return s.WinsCtx(r.Context(), req)
		})
	})
	mux.HandleFunc("/v1/min-seeds-to-win", func(w http.ResponseWriter, r *http.Request) {
		handleQuery(s, w, r, func(req *MinSeedsRequest) (*MinSeedsResponse, *Error) {
			return s.MinSeedsToWinCtx(r.Context(), req)
		})
	})
	mux.HandleFunc("POST /v1/datasets/{name}/updates", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		handleQuery(s, w, r, func(req *UpdateRequest) (*UpdateResponse, *Error) {
			req.Dataset = name // the path segment is authoritative
			return s.Update(req)
		})
	})
	mux.HandleFunc("/v1/datasets", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, &Error{Code: CodeBadRequest, Message: "use GET"}, http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"datasets": s.Datasets()})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, &Error{Code: CodeBadRequest, Message: "use GET"}, http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, http.StatusOK, s.StatsSnapshot())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.WriteMetrics(w); err != nil {
			s.tel.logger.Warn("metrics write failed", obs.F("err", err))
		}
	})
	mux.HandleFunc("GET /debug/slow-queries", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"thresholdNs": s.tel.slow.Threshold().Nanoseconds(),
			"entries":     s.SlowQueries(),
		})
	})
	mux.HandleFunc("GET /debug/timeseries", func(w http.ResponseWriter, r *http.Request) {
		window := time.Duration(0) // zero = everything retained
		if q := r.URL.Query().Get("window"); q != "" {
			d, err := time.ParseDuration(q)
			if err != nil {
				writeError(w, badRequestf("invalid window %q: %v (want a Go duration like 10m)", q, err), 0)
				return
			}
			window = d
		}
		pts := s.tsdb.Window(window, time.Now())
		writeJSON(w, http.StatusOK, map[string]any{"points": pts})
	})
	if s.cfg.DebugFaults {
		// Deliberately crashes the handler goroutine so smoke tests can
		// prove the recovery middleware turns a panic into a 500 without
		// killing the daemon. Gated behind Config.DebugFaults.
		mux.HandleFunc("POST /debug/fault/panic", func(w http.ResponseWriter, r *http.Request) {
			panic("injected fault: /debug/fault/panic")
		})
	}
	return s.recoverPanics(mux)
}

// recoverPanics converts a panicking handler into a 500 response and an
// ovmd_panics_total increment, keeping the daemon alive. http.ErrAbortHandler
// is re-panicked: it is net/http's own sentinel for deliberately aborting a
// response and must keep its semantics.
func (s *Service) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if err, ok := rec.(error); ok && errors.Is(err, http.ErrAbortHandler) {
				panic(rec)
			}
			s.panics.Add(1)
			s.tel.logger.Error("handler panic recovered",
				obs.F("path", r.URL.Path), obs.F("panic", fmt.Sprint(rec)))
			// Best effort: if the handler already wrote headers this is a
			// no-op beyond the log line.
			writeError(w, &Error{Code: CodeInternal, Message: fmt.Sprintf("internal panic: %v", rec)}, 0)
		}()
		next.ServeHTTP(w, r)
	})
}

// handleQuery decodes a JSON body into Req, dispatches, and encodes the
// response or the typed error. The body is hard-bounded by MaxBytesReader,
// so an oversized request fails with 413 instead of being truncated.
func handleQuery[Req any, Resp any](s *Service, w http.ResponseWriter, r *http.Request, fn func(*Req) (Resp, *Error)) {
	if r.Method != http.MethodPost {
		writeError(w, &Error{Code: CodeBadRequest, Message: "use POST with a JSON body"}, http.StatusMethodNotAllowed)
		return
	}
	var req Req
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, badRequestf("request body exceeds %d bytes", tooLarge.Limit), http.StatusRequestEntityTooLarge)
			return
		}
		writeError(w, badRequestf("invalid JSON body: %v", err), 0)
		return
	}
	resp, serr := fn(&req)
	if serr != nil {
		writeError(w, serr, 0)
		return
	}
	// The request span ends when the service call returns; serialization
	// happens after it, so it is timed straight into the stage histogram.
	ser := time.Now()
	writeJSON(w, http.StatusOK, resp)
	s.tel.stageHist.With("serialize").Observe(time.Since(ser))
}

// statusClientClosedRequest is nginx's non-standard 499: the client went
// away before the response was ready. There is no standard status for it
// and 499 is what fleet dashboards already understand.
const statusClientClosedRequest = 499

// writeError emits the error envelope; status 0 derives the status from
// the error code. Overloaded errors carry a Retry-After header.
func writeError(w http.ResponseWriter, e *Error, status int) {
	if status == 0 {
		switch e.Code {
		case CodeBadRequest:
			status = http.StatusBadRequest
		case CodeNotFound:
			status = http.StatusNotFound
		case CodeDeadlineExceeded:
			status = http.StatusGatewayTimeout
		case CodeCanceled:
			status = statusClientClosedRequest
		case CodeOverloaded:
			status = http.StatusTooManyRequests
		default:
			status = http.StatusInternalServerError
		}
	}
	if e.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfter))
	}
	writeJSON(w, status, map[string]any{
		"error": map[string]string{"code": string(e.Code), "message": e.Message},
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Headers are already written; log and move on.
		log.Printf("service: response encode failed: %v", err)
	}
}
