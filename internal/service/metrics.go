package service

import (
	"io"
	"sort"
	"strconv"
	"time"

	"ovm/internal/obs"
)

// Metric and label names exposed on /metrics. The request histogram is
// keyed endpoint × dataset × score; the stage histogram covers the
// per-request phases (cache-lookup, singleflight-wait, selection,
// serialize) and the update-pipeline stages (pipeline — the async queue
// wait — apply, repair, persist, swap).
const (
	metricRequestDuration = "ovmd_request_duration_seconds"
	metricStageDuration   = "ovmd_stage_duration_seconds"
	metricUpdateLag       = "ovmd_update_visible_lag_seconds"
)

// The endpoint label vocabulary.
const (
	endpointSelectSeeds = "select-seeds"
	endpointEvaluate    = "evaluate"
	endpointWins        = "wins"
	endpointMinSeeds    = "min-seeds-to-win"
	endpointUpdates     = "updates"
)

// telemetry bundles the service's observability state: latency
// histograms, the stage histogram, the slow-query log, and the optional
// structured logger. Recording is lock-free (obs.Histogram) so it rides
// the query hot path; everything else is pull-only (/metrics, /stats,
// /debug/slow-queries).
type telemetry struct {
	reqHist   *obs.HistogramVec
	stageHist *obs.HistogramVec
	lagHist   *obs.HistogramVec // zero labels: accepted-to-visible update lag
	slow      *obs.SlowLog
	logger    *obs.Logger
}

func newTelemetry(cfg Config) *telemetry {
	return &telemetry{
		reqHist: obs.NewHistogramVec(metricRequestDuration,
			"Request latency by endpoint, dataset, and score.", "endpoint", "dataset", "score"),
		stageHist: obs.NewHistogramVec(metricStageDuration,
			"Per-stage latency of the query path (cache-lookup, singleflight-wait, selection, serialize) and the update pipeline (pipeline, apply, repair, persist, swap).", "stage"),
		lagHist: obs.NewHistogramVec(metricUpdateLag,
			"Accepted-to-visible lag of async update batches (enqueue to epoch swap)."),
		slow:   obs.NewSlowLog(cfg.SlowQueryLog, cfg.SlowQueryThreshold),
		logger: cfg.Logger,
	}
}

// observe finishes a request span: it records the endpoint histogram, the
// stage histogram for every child stage, offers the span to the
// slow-query log, and emits the structured log line (queries at debug,
// updates at info — updates are rare and operator-relevant).
func (t *telemetry) observe(span *obs.Span, endpoint, dataset, score string, epoch int64, cached bool, errCode string) {
	dur := span.End()
	t.reqHist.With(endpoint, dataset, score).Observe(dur)
	for _, stage := range span.Children {
		t.stageHist.With(stage.Name).ObserveNs(stage.DurNs)
	}
	t.slow.Offer(obs.SlowEntry{
		At:    time.Now(),
		DurNs: dur.Nanoseconds(),
		Labels: map[string]string{
			"endpoint": endpoint,
			"dataset":  dataset,
			"score":    score,
			"epoch":    strconv.FormatInt(epoch, 10),
		},
		Span: span,
	})
	level := obs.LevelDebug
	if endpoint == endpointUpdates {
		level = obs.LevelInfo
	}
	if !t.logger.Enabled(level) {
		return
	}
	fields := []obs.Field{
		obs.F("endpoint", endpoint),
		obs.F("dataset", dataset),
		obs.F("epoch", epoch),
		obs.F("durMs", float64(dur.Nanoseconds())/1e6),
	}
	if score != "" {
		fields = append(fields, obs.F("score", score))
	}
	if endpoint != endpointUpdates {
		fields = append(fields, obs.F("cached", cached))
	}
	if errCode != "" {
		fields = append(fields, obs.F("error", errCode))
		t.logger.Warn("request failed", fields...)
		return
	}
	if endpoint == endpointUpdates {
		t.logger.Info("update applied", fields...)
	} else {
		t.logger.Debug("query", fields...)
	}
}

// WriteMetrics renders the Prometheus text exposition: the lifetime
// counters, cache and uptime gauges, per-dataset epoch / index-footprint
// / update-log-depth gauges, and the request + stage latency histograms.
// Everything is hand-rolled in internal/obs — no client library.
func (s *Service) WriteMetrics(w io.Writer) error {
	st := s.StatsSnapshot()
	e := obs.NewExposition(w)
	e.Gauge("ovmd_uptime_seconds", "Seconds since the service started.", st.UptimeSeconds)
	e.Counter("ovmd_requests_total", "Queries received (all endpoints except updates).", float64(st.Requests))
	e.Counter("ovmd_cache_hits_total", "Queries answered from the LRU response cache.", float64(st.CacheHits))
	e.Counter("ovmd_cache_misses_total", "Queries that missed the response cache.", float64(st.CacheMisses))
	e.Counter("ovmd_cache_evictions_total", "Response-cache entries evicted by the LRU policy.", float64(st.CacheEvictions))
	e.Counter("ovmd_coalesced_total", "Queries that piggybacked on an identical in-flight computation.", float64(st.Coalesced))
	e.Counter("ovmd_computations_total", "Queries actually computed (missed cache, led the singleflight).", float64(st.Computations))
	e.Counter("ovmd_errors_total", "Requests that returned an error.", float64(st.Errors))
	e.Counter("ovmd_updates_total", "Mutation batches applied.", float64(st.Updates))
	e.Counter("ovmd_update_coalesced_ops_total", "Update ops elided by async batch coalescing (merged or dead-write-dropped before repair).", float64(st.CoalescedOps))
	e.Gauge("ovmd_update_queue_depth", "Accepted-but-unapplied async update batches across datasets.", float64(st.UpdateQueueDepth))
	e.Counter("ovmd_shed_total", "Computations shed by admission control (inflight cap reached, queue full).", float64(st.Shed))
	e.Counter("ovmd_timeouts_total", "Queries that exceeded their deadline (deadline_exceeded responses).", float64(st.Timeouts))
	e.Counter("ovmd_canceled_total", "Queries abandoned by client cancellation.", float64(st.Canceled))
	e.Counter("ovmd_panics_total", "Handler panics recovered into 500 responses.", float64(st.Panics))
	e.Gauge("ovmd_inflight", "Queries currently being served.", float64(st.Inflight))
	e.Gauge("ovmd_cache_entries", "Response-cache entries currently resident.", float64(st.CacheEntries))
	datasetGauge := func(name, help string, value func(DatasetStats) float64) {
		samples := make([]obs.Sample, 0, len(st.Datasets))
		for _, d := range st.Datasets {
			samples = append(samples, obs.Sample{
				Labels: []obs.Label{{Name: "dataset", Value: d.Name}},
				Value:  value(d),
			})
		}
		e.GaugeVec(name, help, samples)
	}
	datasetGauge("ovmd_dataset_epoch", "Current epoch (applied update batches since the base index) per dataset.",
		func(d DatasetStats) float64 { return float64(d.Epoch) })
	datasetGauge("ovmd_dataset_update_log_depth", "Batches in the persisted update log awaiting compaction (applied + queued).",
		func(d DatasetStats) float64 { return float64(d.UpdateLogDepth) })
	datasetGauge("ovmd_dataset_update_queue_depth", "Accepted-but-unapplied async update batches per dataset.",
		func(d DatasetStats) float64 { return float64(d.UpdateQueueDepth) })
	datasetGauge("ovmd_dataset_index_bytes", "Artifact footprint per dataset (mapped + heap).",
		func(d DatasetStats) float64 { return float64(d.IndexBytes) })
	datasetGauge("ovmd_dataset_mapped_bytes", "Artifact bytes aliasing a read-only file mapping.",
		func(d DatasetStats) float64 { return float64(d.MappedBytes) })
	datasetGauge("ovmd_dataset_heap_bytes", "Artifact bytes resident on the Go heap.",
		func(d DatasetStats) float64 { return float64(d.HeapBytes) })
	e.HistogramVec(s.tel.reqHist)
	e.HistogramVec(s.tel.stageHist)
	e.HistogramVec(s.tel.lagHist)
	// Every counter/gauge registered in the obs cost registry (engine,
	// walks, postings, im, serialize, mmapio, dynamic) is appended here,
	// so new library counters are exported without a hand-written line.
	for _, f := range obs.Families() {
		if f.IsGauge {
			e.Gauge(f.Name, f.Help, f.Value)
		} else {
			e.Counter(f.Name, f.Help, f.Value)
		}
	}
	return e.Flush()
}

// endpointSummaries folds the request histogram down to per-endpoint
// latency summaries for /stats (merged across datasets and scores — the
// merge is exact, histograms are mergeable by construction).
func (s *Service) endpointSummaries() map[string]EndpointStats {
	merged := s.tel.reqHist.MergedBy(0)
	if len(merged) == 0 {
		return nil
	}
	out := make(map[string]EndpointStats, len(merged))
	for endpoint, snap := range merged {
		out[endpoint] = EndpointStats{
			Count: snap.Count,
			P50Ms: float64(snap.Quantile(0.50)) / 1e6,
			P95Ms: float64(snap.Quantile(0.95)) / 1e6,
			P99Ms: float64(snap.Quantile(0.99)) / 1e6,
			MaxMs: float64(snap.MaxNs) / 1e6,
		}
	}
	return out
}

// SlowQueries returns the retained slow-query entries, slowest first.
func (s *Service) SlowQueries() []obs.SlowEntry {
	return s.tel.slow.Entries()
}

// sortedDatasetNames is shared by StatsSnapshot and WriteMetrics.
func sortedNames(m map[string]*Dataset) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
