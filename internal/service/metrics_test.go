package service_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ovm/internal/obs"
	"ovm/internal/service"
)

// expositionLine matches one Prometheus text-format sample line.
var expositionLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (\+Inf|-?[0-9.eE+-]+)$`)

// scrape fetches /metrics and returns every sample line (comments
// stripped), failing the test if any line does not parse.
func scrape(t *testing.T, ts *httptest.Server) []string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q, want text/plain", ct)
	}
	var samples []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("unparseable exposition line: %q", line)
		}
		samples = append(samples, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

// sampleValue returns the value of the first sample whose name+labels
// contain every needle, and whether one was found.
func sampleValue(samples []string, needles ...string) (float64, bool) {
	for _, line := range samples {
		ok := true
		for _, n := range needles {
			if !strings.Contains(line, n) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST %s: %d %s", url, resp.StatusCode, msg)
	}
	return resp
}

// TestMetricsExposition drives queries and an update through the HTTP
// layer, then checks /metrics: every line parses, the request-histogram
// counts equal the requests actually sent, and the per-dataset gauges
// reflect the post-update epoch and log depth.
func TestMetricsExposition(t *testing.T) {
	_, idx := testWorld(t)
	batch := testBatch(t, idx)
	svc := service.New(service.Config{SlowQueryLog: 8})
	if err := svc.AddIndex("world", idx); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// 3 identical select-seeds (1 computed + 2 cache hits), 1 evaluate,
	// 1 update = 5 observations in the request histogram.
	for i := 0; i < 3; i++ {
		postJSON(t, ts.URL+"/v1/select-seeds", selectReq("RS", "plurality", tdTheta)).Body.Close()
	}
	postJSON(t, ts.URL+"/v1/evaluate", &service.EvaluateRequest{
		Dataset: "world", Score: service.ScoreSpec{Name: "plurality"},
		Horizon: tdHorizon, Target: 0, Seeds: []int32{1, 2, 3},
	}).Body.Close()
	postJSON(t, ts.URL+"/v1/datasets/world/updates", &service.UpdateRequest{Ops: batch}).Body.Close()

	samples := scrape(t, ts)

	var histCount float64
	for _, line := range samples {
		if strings.HasPrefix(line, "ovmd_request_duration_seconds_count") {
			v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
			if err != nil {
				t.Fatalf("bad count line %q: %v", line, err)
			}
			histCount += v
		}
	}
	if histCount != 5 {
		t.Errorf("request histogram total count = %v, want 5 (3 select + 1 evaluate + 1 update)", histCount)
	}
	checks := []struct {
		needles []string
		want    float64
	}{
		{[]string{"ovmd_requests_total"}, 4},
		{[]string{"ovmd_cache_hits_total"}, 2},
		{[]string{"ovmd_computations_total"}, 2},
		{[]string{"ovmd_updates_total"}, 1},
		{[]string{"ovmd_dataset_epoch", `dataset="world"`}, 1},
		{[]string{"ovmd_dataset_update_log_depth", `dataset="world"`}, 1},
		{[]string{"ovmd_request_duration_seconds_count", `endpoint="select-seeds"`, `dataset="world"`, `score="plurality"`}, 3},
		{[]string{"ovmd_request_duration_seconds_count", `endpoint="updates"`}, 1},
	}
	for _, c := range checks {
		got, ok := sampleValue(samples, c.needles...)
		if !ok {
			t.Errorf("no sample matching %v", c.needles)
			continue
		}
		if got != c.want {
			t.Errorf("sample %v = %v, want %v", c.needles, got, c.want)
		}
	}
	// The stage histogram must cover the query phases and the update
	// pipeline; the mapped-bytes gauge must exist (zero on a heap index).
	for _, stage := range []string{"cache-lookup", "selection", "serialize", "apply", "repair", "swap"} {
		if _, ok := sampleValue(samples, "ovmd_stage_duration_seconds_count", `stage="`+stage+`"`); !ok {
			t.Errorf("stage histogram missing stage %q", stage)
		}
	}
	for _, gauge := range []string{"ovmd_dataset_index_bytes", "ovmd_dataset_mapped_bytes", "ovmd_dataset_heap_bytes", "ovmd_uptime_seconds", "ovmd_inflight"} {
		if _, ok := sampleValue(samples, gauge); !ok {
			t.Errorf("missing metric %q", gauge)
		}
	}
	// Histogram buckets must be cumulative: the +Inf bucket equals _count.
	inf, okInf := sampleValue(samples, "ovmd_request_duration_seconds_bucket", `endpoint="select-seeds"`, `le="+Inf"`)
	cnt, okCnt := sampleValue(samples, "ovmd_request_duration_seconds_count", `endpoint="select-seeds"`)
	if !okInf || !okCnt || inf != cnt {
		t.Errorf("+Inf bucket %v != count %v", inf, cnt)
	}
}

// TestStatsEndpointsAndSlowQueries checks the /stats endpoint summaries
// and the slow-query debug endpoint after real traffic.
func TestStatsEndpointsAndSlowQueries(t *testing.T) {
	_, idx := testWorld(t)
	svc := service.New(service.Config{SlowQueryLog: 4})
	if err := svc.AddIndex("world", idx); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	for i := 0; i < 2; i++ {
		postJSON(t, ts.URL+"/v1/select-seeds", selectReq("RS", "plurality", tdTheta)).Body.Close()
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st service.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ep, ok := st.Endpoints["select-seeds"]
	if !ok {
		t.Fatalf("stats endpoints missing select-seeds: %+v", st.Endpoints)
	}
	if ep.Count != 2 {
		t.Errorf("select-seeds count = %d, want 2", ep.Count)
	}
	if ep.P50Ms < 0 || ep.P99Ms < ep.P50Ms || ep.MaxMs <= 0 {
		t.Errorf("implausible summary: %+v", ep)
	}
	if st.UptimeSeconds <= 0 {
		t.Error("uptimeSeconds missing")
	}
	if len(st.Datasets) != 1 || st.Datasets[0].UpdateLogDepth != 0 {
		t.Errorf("fresh dataset must report updateLogDepth 0: %+v", st.Datasets)
	}

	resp, err = http.Get(ts.URL + "/debug/slow-queries")
	if err != nil {
		t.Fatal(err)
	}
	var slow struct {
		ThresholdNs int64           `json:"thresholdNs"`
		Entries     []obs.SlowEntry `json:"entries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&slow); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(slow.Entries) != 2 {
		t.Fatalf("slow log has %d entries, want 2", len(slow.Entries))
	}
	for i := 1; i < len(slow.Entries); i++ {
		if slow.Entries[i].DurNs > slow.Entries[i-1].DurNs {
			t.Error("slow entries not sorted slowest-first")
		}
	}
	if slow.Entries[0].Labels["endpoint"] != "select-seeds" || slow.Entries[0].Labels["dataset"] != "world" {
		t.Errorf("slow entry labels: %+v", slow.Entries[0].Labels)
	}
}

// TestUpdateLogDepthHook: when the daemon provides the persisted-log
// hook, /stats reports its value instead of the epoch delta.
func TestUpdateLogDepthHook(t *testing.T) {
	_, idx := testWorld(t)
	svc := service.New(service.Config{
		UpdateLogDepth: func(dataset string) int {
			if dataset != "world" {
				t.Errorf("hook called with %q", dataset)
			}
			return 7
		},
	})
	if err := svc.AddIndex("world", idx); err != nil {
		t.Fatal(err)
	}
	st := svc.StatsSnapshot()
	if len(st.Datasets) != 1 || st.Datasets[0].UpdateLogDepth != 7 {
		t.Errorf("updateLogDepth = %+v, want 7 via hook", st.Datasets)
	}
}

// TestStructuredQueryLogging wires a logger at debug and checks the
// query and update lines carry the dataset/epoch/duration fields.
func TestStructuredQueryLogging(t *testing.T) {
	_, idx := testWorld(t)
	var buf bytes.Buffer
	logger := obs.NewLogger(&syncWriter{w: &buf}, obs.LevelDebug, true)
	svc := service.New(service.Config{Logger: logger})
	if err := svc.AddIndex("world", idx); err != nil {
		t.Fatal(err)
	}
	if _, serr := svc.SelectSeeds(selectReq("RS", "plurality", tdTheta)); serr != nil {
		t.Fatal(serr)
	}
	if _, serr := svc.ApplyUpdates(&service.UpdateRequest{Dataset: "world", Ops: testBatch(t, idx)}); serr != nil {
		t.Fatal(serr)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2 (query + update):\n%s", len(lines), buf.String())
	}
	var query, update map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &query); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &update); err != nil {
		t.Fatal(err)
	}
	if query["msg"] != "query" || query["level"] != "debug" || query["dataset"] != "world" || query["endpoint"] != "select-seeds" {
		t.Errorf("query line: %v", query)
	}
	if _, ok := query["durMs"].(float64); !ok {
		t.Errorf("query line missing durMs: %v", query)
	}
	if update["msg"] != "update applied" || update["level"] != "info" || update["epoch"] != float64(1) {
		t.Errorf("update line: %v", update)
	}
}

type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// TestStatsConsistencyUnderLoad hammers queries from many goroutines
// while polling StatsSnapshot and the /stats + /metrics handlers; under
// -race this proves snapshot reads are race-free, and every snapshot
// must satisfy the documented cross-counter invariants.
func TestStatsConsistencyUnderLoad(t *testing.T) {
	_, idx := testWorld(t)
	svc := service.New(service.Config{CacheSize: 4})
	if err := svc.AddIndex("world", idx); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			thetas := []int{tdTheta, tdTheta / 2, tdTheta / 4}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Rotate theta so traffic mixes cache hits, misses, and
				// coalesced computations.
				req := selectReq("RS", "plurality", thetas[(w+i)%len(thetas)])
				if _, serr := svc.SelectSeeds(req); serr != nil {
					t.Error(serr)
					return
				}
			}
		}(w)
	}
	deadline := time.After(300 * time.Millisecond)
	var polls int
	for done := false; !done; {
		select {
		case <-deadline:
			done = true
		default:
		}
		st := svc.StatsSnapshot()
		polls++
		if st.CacheHits+st.CacheMisses > st.Requests {
			t.Fatalf("invariant broken: hits %d + misses %d > requests %d", st.CacheHits, st.CacheMisses, st.Requests)
		}
		if st.Computations+st.Coalesced > st.CacheMisses {
			t.Fatalf("invariant broken: computations %d + coalesced %d > misses %d", st.Computations, st.Coalesced, st.CacheMisses)
		}
		var buf bytes.Buffer
		if err := svc.WriteMetrics(&buf); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if polls < 10 {
		t.Logf("only %d stats polls completed", polls)
	}
}
