package service_test

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ovm/internal/dynamic"
	"ovm/internal/serialize"
	"ovm/internal/service"
)

// mmapTestServices builds the heap/mapped service pair: one index written
// as v3, loaded once with the stream reader (heap arrays) and once through
// the zero-copy mmap path. The returned cleanup closes the mapping.
func mmapTestServices(t *testing.T) (heapSvc, mappedSvc *service.Service, idx *serialize.Index) {
	t.Helper()
	_, idx = testWorld(t)
	var buf bytes.Buffer
	if err := serialize.WriteIndexV3(&buf, idx, serialize.V3Options{}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "world.ovmidx")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	heapIdx, err := serialize.ReadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	heapSvc = newTestService(t, heapIdx)

	mi, err := serialize.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mi.Close() })
	if !mi.Mapped() {
		t.Skip("platform fell back to heap load; nothing to compare")
	}
	mappedSvc = newTestService(t, mi.Index)
	return heapSvc, mappedSvc, idx
}

// TestMappedMatchesHeapAcrossScores is the zero-copy correctness contract:
// a service whose artifacts alias an mmap'd v3 file answers bit-identically
// to one loaded onto the heap, across the five voting scores and engine
// parallelism 1, 4, and 0 — and still after a dynamic update batch has
// copy-on-write repaired the mapped artifacts.
func TestMappedMatchesHeapAcrossScores(t *testing.T) {
	heapSvc, mappedSvc, idx := mmapTestServices(t)

	cases := []struct {
		name   string
		method string
		score  service.ScoreSpec
		theta  int
	}{
		{"RW/cumulative", "RW", service.ScoreSpec{Name: "cumulative"}, 0},
		{"RS/plurality", "RS", service.ScoreSpec{Name: "plurality"}, tdTheta},
		{"RS/p-approval", "RS", service.ScoreSpec{Name: "p-approval", P: 2}, tdTheta},
		{"RS/positional", "RS", service.ScoreSpec{Name: "positional", P: 2, Omega: []float64{1, 0.5}}, tdTheta},
		{"RS/copeland", "RS", service.ScoreSpec{Name: "copeland"}, tdTheta},
		{"IC/plurality", "IC", service.ScoreSpec{Name: "plurality"}, 0},
	}
	compare := func(t *testing.T, wantEpoch int64) {
		t.Helper()
		for _, tc := range cases {
			for _, par := range []int{1, 4, 0} {
				req := selectReq(tc.method, tc.score.Name, tc.theta)
				req.Score = tc.score
				req.Parallelism = par
				heapSvc.ResetCache()
				mappedSvc.ResetCache()
				a, serr := heapSvc.SelectSeeds(req)
				if serr != nil {
					t.Fatalf("%s P=%d heap: %v", tc.name, par, serr)
				}
				b, serr := mappedSvc.SelectSeeds(req)
				if serr != nil {
					t.Fatalf("%s P=%d mapped: %v", tc.name, par, serr)
				}
				if !reflect.DeepEqual(a.Seeds, b.Seeds) || a.ExactValue != b.ExactValue {
					t.Fatalf("%s P=%d: mapped answer diverged from heap:\nheap   %v (%.9f)\nmapped %v (%.9f)",
						tc.name, par, a.Seeds, a.ExactValue, b.Seeds, b.ExactValue)
				}
				if !b.FromIndex {
					t.Fatalf("%s P=%d: mapped artifact was not used", tc.name, par)
				}
				if a.Epoch != wantEpoch || b.Epoch != wantEpoch {
					t.Fatalf("%s P=%d: epochs %d/%d, want %d", tc.name, par, a.Epoch, b.Epoch, wantEpoch)
				}
			}
		}
	}

	compare(t, 0)

	// The mapped dataset must report part of its footprint as mapped bytes.
	stats := mappedSvc.StatsSnapshot()
	if len(stats.Datasets) != 1 {
		t.Fatalf("stats list %d datasets, want 1", len(stats.Datasets))
	}
	d := stats.Datasets[0]
	if d.MappedBytes == 0 {
		t.Error("mapped dataset reports zero mapped bytes")
	}
	if d.IndexBytes != d.MappedBytes+d.HeapBytes {
		t.Errorf("index bytes %d != mapped %d + heap %d", d.IndexBytes, d.MappedBytes, d.HeapBytes)
	}
	if hd := heapSvc.StatsSnapshot().Datasets[0]; hd.MappedBytes != 0 {
		t.Errorf("heap dataset reports %d mapped bytes, want 0", hd.MappedBytes)
	}

	// Apply the same mutation batch to both; repair copy-on-writes the
	// touched mapped sections to the heap, and answers must stay identical.
	batch := testBatch(t, idx)
	for _, svc := range []*service.Service{heapSvc, mappedSvc} {
		upd, serr := svc.ApplyUpdates(&service.UpdateRequest{Dataset: "world", Ops: batch})
		if serr != nil {
			t.Fatal(serr)
		}
		if upd.Epoch != 1 {
			t.Fatalf("epoch = %d, want 1", upd.Epoch)
		}
	}
	compare(t, 1)
}

// TestV2FileUpgradedToV3OnUpdate is the migration contract ovmd relies on:
// a daemon serving a legacy v2 stream file persists its first update batch
// by rewriting the file in v3 (the ovmd persistence hook always writes the
// current format), and a restarted daemon mmap-loads the rewritten file,
// resuming at the same epoch with identical seeds.
func TestV2FileUpgradedToV3OnUpdate(t *testing.T) {
	_, idx := testWorld(t)
	path := filepath.Join(t.TempDir(), "world.ovmidx")
	var v2 bytes.Buffer
	if err := serialize.WriteIndex(&v2, idx); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, v2.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	// First daemon generation: OpenMapped falls back to the heap for the v2
	// stream file; the persistence hook mirrors ovmd's (append the batch to
	// the retained base index, rewrite the file as v3).
	mi, err := serialize.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mi.Close()
	if mi.Mapped() {
		t.Fatal("v2 stream file must not load mapped")
	}
	base := mi.Index
	live := service.New(service.Config{OnUpdate: func(ds string, batches []dynamic.Batch, epoch int64) error {
		base.Updates = append(base.Updates, batches...)
		var buf bytes.Buffer
		if err := serialize.WriteIndexV3(&buf, base, serialize.V3Options{}); err != nil {
			return err
		}
		return os.WriteFile(path, buf.Bytes(), 0o600)
	}})
	if err := live.AddIndex("world", base); err != nil {
		t.Fatal(err)
	}
	if _, serr := live.ApplyUpdates(&service.UpdateRequest{Dataset: "world", Ops: testBatch(t, idx)}); serr != nil {
		t.Fatal(serr)
	}

	// The file on disk is now a v3 image.
	rewritten, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(rewritten[:6]) != "OVMIDX" || binary.LittleEndian.Uint32(rewritten[6:]) != serialize.IndexFormatV3 {
		t.Fatalf("expected the update to rewrite the file as OVMIDX v3, got header % x", rewritten[:10])
	}

	// Second daemon generation: zero-copy load, replayed to the same epoch,
	// answering with the same bytes.
	mi2, err := serialize.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mi2.Close()
	if !mi2.Mapped() {
		t.Skip("platform fell back to heap load")
	}
	restarted := newTestService(t, mi2.Index)
	for _, par := range []int{1, 4, 0} {
		req := selectReq("RS", "plurality", tdTheta)
		req.Parallelism = par
		a, serr := live.SelectSeeds(req)
		if serr != nil {
			t.Fatal(serr)
		}
		b, serr := restarted.SelectSeeds(req)
		if serr != nil {
			t.Fatal(serr)
		}
		if a.Epoch != 1 || b.Epoch != 1 {
			t.Fatalf("P=%d: epochs %d/%d after restart, want 1/1", par, a.Epoch, b.Epoch)
		}
		if !reflect.DeepEqual(a.Seeds, b.Seeds) || a.ExactValue != b.ExactValue {
			t.Fatalf("P=%d: restarted daemon diverged: %v (%.9f) vs %v (%.9f)",
				par, a.Seeds, a.ExactValue, b.Seeds, b.ExactValue)
		}
	}
}
