package service

import (
	"context"
	"sync"
	"time"

	"ovm/internal/dynamic"
	"ovm/internal/graph"
	"ovm/internal/obs"
)

// The async update pipeline: POST /updates appends the batch to a durable
// queue and returns immediately with the epoch the batch WILL become
// visible at; a per-dataset background applier coalesces the queue and
// runs the incremental repair off the request path, so reads keep serving
// epoch N at full throughput while N+1 builds.
//
// The epoch promise is the load-bearing contract: the accepted response
// names a target epoch, and that epoch must materialize with exactly that
// batch's effect. Three mechanisms uphold it:
//
//   - Enqueue-time validation: the batch is checked against the system
//     shape (Batch.Validate) and against the graph-as-of-the-target-epoch
//     (the visible graph overlaid with every queued edge op), so a
//     remove_edge of a never-existing edge is rejected at accept time,
//     not discovered mid-repair after the epoch was promised.
//   - Durability before acknowledgement: when Config.OnEnqueue is set
//     (ovmd appends to a fsync'd WAL), the batch is persisted before the
//     accepted response is sent; a crash replays the queue and lands on
//     the same epochs.
//   - Failure containment: a queued batch that still fails to apply
//     (e.g. a remove that zeroes a node's in-weight) consumes its epoch
//     as a logged no-op instead of shifting every later promise.
type updatePipeline struct {
	s    *Service
	name string

	mu    sync.Mutex
	queue []queuedBatch
	// assigned is the last epoch promised to a caller; the next accepted
	// batch becomes assigned+1. It only ever grows (a batch that fails to
	// apply consumes its epoch as a no-op).
	assigned int64
	// pendingEdges overlays the queued-but-unapplied edge ops on the
	// visible graph for enqueue-time validation: key (from,to), value =
	// whether the edge exists after the queued ops. Reset when the queue
	// drains (the visible graph then subsumes it).
	pendingEdges map[[2]int32]bool
	closed       bool

	wake   chan struct{} // cap 1: enqueue nudges the applier
	done   chan struct{} // closed when the applier goroutine exits
	ctx    context.Context
	cancel context.CancelFunc
}

type queuedBatch struct {
	ops        dynamic.Batch
	epoch      int64
	acceptedAt time.Time
}

// pipelineFor returns the dataset's pipeline, starting the applier on
// first use. baseEpoch seeds the promise counter and must be the
// dataset's visible epoch (creation happens before any batch is queued,
// so visible == last applied).
func (s *Service) pipelineFor(name string, baseEpoch int64) *updatePipeline {
	s.pipMu.Lock()
	defer s.pipMu.Unlock()
	if p, ok := s.pipelines[name]; ok {
		return p
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &updatePipeline{
		s:            s,
		name:         name,
		assigned:     baseEpoch,
		pendingEdges: make(map[[2]int32]bool),
		wake:         make(chan struct{}, 1),
		done:         make(chan struct{}),
		ctx:          ctx,
		cancel:       cancel,
	}
	s.pipelines[name] = p
	go p.run()
	return p
}

// closePipelines stops every applier and waits for them to exit; queued
// batches stay in the WAL (when one is configured) for the next start.
func (s *Service) closePipelines() {
	s.pipMu.Lock()
	ps := make([]*updatePipeline, 0, len(s.pipelines))
	for _, p := range s.pipelines {
		ps = append(ps, p)
	}
	s.pipMu.Unlock()
	for _, p := range ps {
		p.mu.Lock()
		p.closed = true
		p.mu.Unlock()
		p.cancel()
	}
	for _, p := range ps {
		<-p.done
	}
}

// EnqueueUpdates accepts one mutation batch for asynchronous application:
// it validates the batch against the state it will apply to, durably logs
// it (Config.OnEnqueue), and returns the epoch the batch will become
// visible at — without waiting for the repair. Queries see the new epoch
// once the background applier swaps it in; a caller that needs
// read-your-writes passes the returned epoch as the query's minEpoch.
func (s *Service) EnqueueUpdates(req *UpdateRequest) (*UpdateResponse, *Error) {
	start := time.Now()
	if len(req.Ops) > maxUpdateOps {
		serr := badRequestf("update batch has %d ops, limit is %d: split the mutation into multiple batches", len(req.Ops), maxUpdateOps)
		s.observeAccept(req.Dataset, start, 0, serr)
		return nil, serr
	}
	ds, serr := s.dataset(req.Dataset)
	if serr != nil {
		s.observeAccept(req.Dataset, start, 0, serr)
		return nil, serr
	}
	if err := req.Ops.Validate(ds.sys.N(), ds.sys.R()); err != nil {
		serr := badRequestf("%v", err)
		s.observeAccept(req.Dataset, start, ds.epoch, serr)
		return nil, serr
	}
	p := s.pipelineFor(req.Dataset, ds.epoch)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		serr := &Error{Code: CodeOverloaded, Message: "service shutting down", RetryAfter: 1}
		s.observeAccept(req.Dataset, start, ds.epoch, serr)
		return nil, serr
	}
	if serr := p.validateStatefulLocked(ds, req.Ops); serr != nil {
		p.mu.Unlock()
		s.observeAccept(req.Dataset, start, ds.epoch, serr)
		return nil, serr
	}
	epoch := p.assigned + 1
	if s.cfg.OnEnqueue != nil {
		persist := time.Now()
		err := s.cfg.OnEnqueue(req.Dataset, req.Ops, epoch)
		s.tel.stageHist.With("persist").Observe(time.Since(persist))
		if err != nil {
			p.mu.Unlock()
			serr := internalErr(err)
			s.observeAccept(req.Dataset, start, ds.epoch, serr)
			return nil, serr
		}
	}
	p.assigned = epoch
	p.overlayLocked(req.Ops)
	p.queue = append(p.queue, queuedBatch{ops: req.Ops, epoch: epoch, acceptedAt: start})
	depth := len(p.queue)
	p.mu.Unlock()
	select {
	case p.wake <- struct{}{}:
	default:
	}
	s.observeAccept(req.Dataset, start, epoch, nil)
	return &UpdateResponse{
		Accepted:   true,
		Epoch:      epoch,
		QueueDepth: depth,
		ElapsedMs:  float64(time.Since(start).Microseconds()) / 1000,
	}, nil
}

// observeAccept records the accept-path latency under the updates
// endpoint (the applier separately observes the apply spans) and logs the
// acceptance. Errors feed the error counter exactly like the sync path.
func (s *Service) observeAccept(dataset string, start time.Time, epoch int64, serr *Error) {
	dur := time.Since(start)
	s.tel.reqHist.With(endpointUpdates, dataset, "").Observe(dur)
	if serr != nil {
		s.errorCount.Add(1)
		s.tel.logger.Warn("update rejected",
			obs.F("dataset", dataset), obs.F("error", string(serr.Code)), obs.F("msg", serr.Message))
		return
	}
	s.tel.logger.Info("update accepted",
		obs.F("dataset", dataset), obs.F("epoch", epoch),
		obs.F("durMs", float64(dur.Nanoseconds())/1e6))
}

// validateStatefulLocked rejects batches whose stateful preconditions
// cannot hold at their target epoch: every remove_edge must name an edge
// that exists in the visible graph overlaid with the queued edge ops
// (and this batch's earlier ops). Caller holds p.mu.
func (p *updatePipeline) validateStatefulLocked(ds *Dataset, b dynamic.Batch) *Error {
	g := ds.sys.Candidate(0).G
	var local map[[2]int32]bool
	exists := func(from, to int32) bool {
		k := [2]int32{from, to}
		if v, ok := local[k]; ok {
			return v
		}
		if v, ok := p.pendingEdges[k]; ok {
			return v
		}
		return hasEdge(g, from, to)
	}
	for i, op := range b {
		switch op.Kind {
		case dynamic.OpAddEdge, dynamic.OpSetWeight:
			if local == nil {
				local = make(map[[2]int32]bool)
			}
			local[[2]int32{op.From, op.To}] = true
		case dynamic.OpRemoveEdge:
			if !exists(op.From, op.To) {
				return badRequestf("ops[%d]: remove_edge %d->%d: edge will not exist at the target epoch", i, op.From, op.To)
			}
			if local == nil {
				local = make(map[[2]int32]bool)
			}
			local[[2]int32{op.From, op.To}] = false
		}
	}
	return nil
}

// overlayLocked folds an accepted batch's edge ops into pendingEdges.
// Caller holds p.mu.
func (p *updatePipeline) overlayLocked(b dynamic.Batch) {
	for _, op := range b {
		switch op.Kind {
		case dynamic.OpAddEdge, dynamic.OpSetWeight:
			p.pendingEdges[[2]int32{op.From, op.To}] = true
		case dynamic.OpRemoveEdge:
			p.pendingEdges[[2]int32{op.From, op.To}] = false
		}
	}
}

func hasEdge(g *graph.Graph, from, to int32) bool {
	srcs, _ := g.InNeighbors(to)
	for _, s := range srcs {
		if s == from {
			return true
		}
	}
	return false
}

// seedQueued preloads the pipeline with batches recovered from a WAL:
// they keep their originally promised epochs (which must continue the
// dataset's visible epoch contiguously) and drain through the same
// applier as live traffic. ovmd calls this once at startup, before
// serving.
func (s *Service) SeedQueued(name string, batches []dynamic.Batch, firstEpoch int64) *Error {
	ds, serr := s.dataset(name)
	if serr != nil {
		return serr
	}
	if len(batches) == 0 {
		return nil
	}
	if firstEpoch != ds.epoch+1 {
		return badRequestf("queued batches start at epoch %d, dataset is at %d", firstEpoch, ds.epoch)
	}
	p := s.pipelineFor(name, ds.epoch)
	p.mu.Lock()
	now := time.Now()
	for i, b := range batches {
		p.assigned++
		p.overlayLocked(b)
		p.queue = append(p.queue, queuedBatch{ops: b, epoch: firstEpoch + int64(i), acceptedAt: now})
	}
	p.mu.Unlock()
	select {
	case p.wake <- struct{}{}:
	default:
	}
	return nil
}

// WaitIdle blocks until every batch accepted for name so far is visible
// (or ctx expires). A dataset with no pipeline is already idle.
func (s *Service) WaitIdle(ctx context.Context, name string) *Error {
	s.pipMu.Lock()
	p := s.pipelines[name]
	s.pipMu.Unlock()
	if p == nil {
		return nil
	}
	p.mu.Lock()
	target := p.assigned
	p.mu.Unlock()
	_, serr := s.awaitEpoch(ctx, name, target)
	return serr
}

// QueueDepth reports the queued-but-unapplied batch count for name.
func (s *Service) QueueDepth(name string) int {
	s.pipMu.Lock()
	p := s.pipelines[name]
	s.pipMu.Unlock()
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// totalQueueDepth sums the queued-but-unapplied batches across datasets.
func (s *Service) totalQueueDepth() int {
	s.pipMu.Lock()
	ps := make([]*updatePipeline, 0, len(s.pipelines))
	for _, p := range s.pipelines {
		ps = append(ps, p)
	}
	s.pipMu.Unlock()
	n := 0
	for _, p := range ps {
		p.mu.Lock()
		n += len(p.queue)
		p.mu.Unlock()
	}
	return n
}

// UpdateLagSnapshot exposes the accepted-to-visible lag histogram
// (benchmarks read p50/p95 from it).
func (s *Service) UpdateLagSnapshot() obs.HistSnapshot {
	return s.tel.lagHist.With().Snapshot()
}

// datasetAtEpoch is the query-path dataset fetch: min <= 0 (or already
// reached) returns the current snapshot with zero extra cost; otherwise
// it blocks until the async applier publishes the requested epoch.
func (s *Service) datasetAtEpoch(ctx context.Context, name string, min int64) (*Dataset, *Error) {
	ds, serr := s.dataset(name)
	if serr != nil || min <= ds.epoch {
		return ds, serr
	}
	return s.awaitEpoch(ctx, name, min)
}

// awaitEpoch returns the dataset once its visible epoch reaches min,
// blocking on the swap-notification channel. min <= 0 returns the current
// snapshot immediately.
func (s *Service) awaitEpoch(ctx context.Context, name string, min int64) (*Dataset, *Error) {
	for {
		s.mu.RLock()
		ds, ok := s.ds[name]
		ch := s.epochCh
		s.mu.RUnlock()
		if !ok {
			return s.dataset(name) // assembles the typed not-found error
		}
		if ds.epoch >= min {
			return ds, nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, asError(ctx.Err())
		}
	}
}

// swapDataset publishes next as the visible snapshot and wakes every
// epoch waiter. Both the sync and async update paths go through here, so
// minEpoch waits work in either mode.
func (s *Service) swapDataset(name string, next *Dataset) {
	s.mu.Lock()
	s.ds[name] = next
	ch := s.epochCh
	s.epochCh = make(chan struct{})
	s.mu.Unlock()
	close(ch)
}

// run is the applier goroutine: it sleeps until an enqueue nudges it,
// then drains the queue in coalesced runs.
func (p *updatePipeline) run() {
	defer close(p.done)
	for {
		select {
		case <-p.ctx.Done():
			return
		case <-p.wake:
		}
		if !p.drain() {
			return
		}
	}
}

// drain pops and applies everything queued, re-checking for batches that
// arrived while a run was repairing. Returns false when the pipeline is
// shutting down.
func (p *updatePipeline) drain() bool {
	for {
		p.mu.Lock()
		if len(p.queue) == 0 {
			// Queue empty and the applier idle: the visible graph now
			// reflects every accepted edge op, so the overlay is subsumed.
			p.pendingEdges = make(map[[2]int32]bool)
			p.mu.Unlock()
			return true
		}
		popped := p.queue
		p.queue = nil
		p.mu.Unlock()

		batches := make([]dynamic.Batch, len(popped))
		for i, q := range popped {
			batches[i] = q.ops
		}
		runs := dynamic.Coalesce(batches, maxUpdateOps)
		idx := 0
		for _, run := range runs {
			raw := popped[idx : idx+len(run.Raw)]
			if err := p.s.applyRun(p, run, raw); err != nil {
				// Persist failure (or shutdown): everything not yet applied
				// goes back to the queue front — the WAL still holds it, so
				// a crash here is recovered identically — and the applier
				// retries after a pause.
				p.requeueFront(popped[idx:])
				if p.ctx.Err() != nil {
					return false
				}
				select {
				case <-p.ctx.Done():
					return false
				case <-time.After(time.Second):
				}
				break
			}
			idx += len(run.Raw)
			if p.ctx.Err() != nil {
				p.requeueFront(popped[idx:])
				return false
			}
		}
	}
}

func (p *updatePipeline) requeueFront(qs []queuedBatch) {
	if len(qs) == 0 {
		return
	}
	p.mu.Lock()
	p.queue = append(append(make([]queuedBatch, 0, len(qs)+len(p.queue)), qs...), p.queue...)
	p.mu.Unlock()
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// applyRun applies one coalesced run: repair on the super-batch, persist
// the RAW batches (the log stays a faithful history; coalescing is a
// runtime optimization, never a storage format), swap, notify epoch
// waiters, and record the accepted-to-visible lag of every raw batch.
//
// A non-nil return means "retry later" (persistence failed or the
// pipeline is shutting down); the caller requeues. Apply failures never
// return an error: a batch the repair rejects consumes its promised epoch
// as a logged no-op, so later promises stay intact.
func (s *Service) applyRun(p *updatePipeline, run dynamic.CoalescedRun, raw []queuedBatch) error {
	s.updMu.Lock()
	defer s.updMu.Unlock()
	if err := p.ctx.Err(); err != nil {
		return err
	}
	span := obs.NewSpan(endpointUpdates)
	// The pipeline stage is the queue wait: accept of the oldest batch in
	// the run to the moment the repair starts.
	span.Add("pipeline", time.Since(raw[0].acceptedAt))
	ds, serr := s.dataset(p.name)
	if serr != nil {
		return nil // dataset dropped out from under the pipeline; drop the run
	}
	next, _, serr := s.repairDataset(p.ctx, ds, run.Super, len(raw), span)
	if serr != nil {
		if err := p.ctx.Err(); err != nil {
			return err
		}
		// The merged super-batch failed. Fall back to applying the raw
		// batches one at a time so one poisoned batch cannot take its
		// neighbors down with it.
		next = ds
		for _, q := range raw {
			n2, _, serr := s.repairDataset(p.ctx, next, q.ops, 1, span)
			if serr != nil {
				if err := p.ctx.Err(); err != nil {
					return err
				}
				s.errorCount.Add(1)
				s.tel.logger.Warn("queued update failed; epoch consumed as no-op",
					obs.F("dataset", p.name), obs.F("epoch", q.epoch),
					obs.F("error", serr.Message))
				n2 = next.noopSuccessor()
			}
			next = n2
		}
	} else if elided := totalOps(raw) - len(run.Super); elided > 0 {
		s.coalescedOps.Add(int64(elided))
	}
	if s.cfg.OnUpdate != nil {
		persist := time.Now()
		err := s.cfg.OnUpdate(p.name, rawBatches(raw), next.epoch)
		span.Add("persist", time.Since(persist))
		if err != nil {
			s.errorCount.Add(1)
			s.tel.logger.Warn("update persistence failed; will retry",
				obs.F("dataset", p.name), obs.F("error", err.Error()))
			return err
		}
	}
	swap := time.Now()
	s.swapDataset(p.name, next)
	span.Add("swap", time.Since(swap))
	s.updates.Add(int64(len(raw)))
	now := time.Now()
	lag := s.tel.lagHist.With()
	for _, q := range raw {
		lag.ObserveNs(now.Sub(q.acceptedAt).Nanoseconds())
	}
	s.tel.observe(span, endpointUpdates, p.name, "", next.epoch, false, "")
	return nil
}

// noopSuccessor is the epoch bump a failed queued batch consumes: same
// system, same artifacts, fresh competitor memo (it is keyed off shared
// state guarded by a per-dataset lock, so successors never share it).
func (ds *Dataset) noopSuccessor() *Dataset {
	return &Dataset{
		name:      ds.name,
		sys:       ds.sys,
		epoch:     ds.epoch + 1,
		baseEpoch: ds.baseEpoch,
		sketches:  ds.sketches,
		walkSets:  ds.walkSets,
		rrs:       ds.rrs,
		comp:      make(map[compKey][][]float64),
	}
}

func rawBatches(raw []queuedBatch) []dynamic.Batch {
	out := make([]dynamic.Batch, len(raw))
	for i, q := range raw {
		out[i] = q.ops
	}
	return out
}

func totalOps(raw []queuedBatch) int {
	n := 0
	for _, q := range raw {
		n += len(q.ops)
	}
	return n
}
