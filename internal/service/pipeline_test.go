package service_test

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"ovm/internal/dynamic"
	"ovm/internal/service"
)

// pipelineBatches is a stream of update batches with disjoint edge-touched
// destination columns (so the coalescer may merge them) and overlapping
// vector writes (so dead-write elision has something to drop). Every edge
// op references nodes that exist in the 120-node test world.
func pipelineBatches() []dynamic.Batch {
	return []dynamic.Batch{
		{
			{Kind: dynamic.OpAddEdge, From: 3, To: 11, W: 0.8},
			{Kind: dynamic.OpSetOpinion, Cand: 0, Node: 33, Value: 0.2},
		},
		{
			{Kind: dynamic.OpAddEdge, From: 17, To: 4, W: 1.2},
			{Kind: dynamic.OpSetOpinion, Cand: 0, Node: 33, Value: 0.6},
			{Kind: dynamic.OpSetStubbornness, Cand: 0, Node: 40, Value: 0.15},
		},
		{
			{Kind: dynamic.OpSetWeight, From: 9, To: 21, W: 2},
			{Kind: dynamic.OpSetOpinion, Cand: 0, Node: 33, Value: 0.95},
		},
	}
}

// TestAsyncUpdatesMatchSyncReplay is the pipeline's equivalence contract:
// a stream of batches accepted asynchronously (and possibly coalesced by
// the background applier) lands on the same final epoch and serves
// byte-identical answers to the same batches applied synchronously one at
// a time.
func TestAsyncUpdatesMatchSyncReplay(t *testing.T) {
	_, idx := testWorld(t)
	batches := pipelineBatches()

	sync := newTestService(t, idx)
	defer sync.Close()
	for _, b := range batches {
		if _, serr := sync.ApplyUpdates(&service.UpdateRequest{Dataset: "world", Ops: b}); serr != nil {
			t.Fatal(serr)
		}
	}

	_, idx2 := testWorld(t)
	async := service.New(service.Config{AsyncUpdates: true})
	defer async.Close()
	if err := async.AddIndex("world", idx2); err != nil {
		t.Fatal(err)
	}
	var lastPromise int64
	for i, b := range batches {
		resp, serr := async.EnqueueUpdates(&service.UpdateRequest{Dataset: "world", Ops: b})
		if serr != nil {
			t.Fatal(serr)
		}
		if !resp.Accepted {
			t.Fatal("async enqueue must report accepted")
		}
		if resp.Epoch != int64(i)+1 {
			t.Fatalf("promised epoch = %d, want %d", resp.Epoch, i+1)
		}
		lastPromise = resp.Epoch
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if serr := async.WaitIdle(ctx, "world"); serr != nil {
		t.Fatal(serr)
	}

	for _, method := range []struct {
		name, score string
		theta       int
	}{{"RS", "plurality", tdTheta}, {"RW", "cumulative", 0}, {"IC", "cumulative", 0}} {
		req := selectReq(method.name, method.score, method.theta)
		a, serr := sync.SelectSeeds(req)
		if serr != nil {
			t.Fatal(serr)
		}
		b, serr := async.SelectSeeds(req)
		if serr != nil {
			t.Fatal(serr)
		}
		if a.Epoch != lastPromise || b.Epoch != lastPromise {
			t.Fatalf("%s: epochs %d / %d, want both %d", method.name, a.Epoch, b.Epoch, lastPromise)
		}
		if !reflect.DeepEqual(a.Seeds, b.Seeds) || a.ExactValue != b.ExactValue {
			t.Fatalf("%s: async diverged from sync: %v %v vs %v %v",
				method.name, a.Seeds, a.ExactValue, b.Seeds, b.ExactValue)
		}
	}
	st := async.StatsSnapshot()
	if st.UpdateQueueDepth != 0 {
		t.Fatalf("drained queue depth = %d", st.UpdateQueueDepth)
	}
	if st.Updates != int64(len(batches)) {
		t.Fatalf("updates counter = %d, want %d (one per RAW batch)", st.Updates, len(batches))
	}
	if lag := async.UpdateLagSnapshot(); lag.Count != int64(len(batches)) {
		t.Fatalf("visible-lag observations = %d, want %d", lag.Count, len(batches))
	}
}

// TestSeedQueuedCoalesces proves the applier merges a pre-seeded queue:
// SeedQueued loads every batch before the applier's first pop, so the
// disjoint-column stream coalesces into fewer repairs and the elided-op
// counter moves — while the answers still match the sync replay.
func TestSeedQueuedCoalesces(t *testing.T) {
	_, idx := testWorld(t)
	batches := pipelineBatches()

	async := service.New(service.Config{AsyncUpdates: true})
	defer async.Close()
	if err := async.AddIndex("world", idx); err != nil {
		t.Fatal(err)
	}
	if serr := async.SeedQueued("world", batches, 1); serr != nil {
		t.Fatal(serr)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if serr := async.WaitIdle(ctx, "world"); serr != nil {
		t.Fatal(serr)
	}
	st := async.StatsSnapshot()
	if st.CoalescedOps == 0 {
		t.Fatal("pre-seeded disjoint batches with dead vector writes must coalesce")
	}
	if got := st.Datasets[0].Epoch; got != int64(len(batches)) {
		t.Fatalf("epoch after seeded drain = %d, want %d", got, len(batches))
	}

	_, idx2 := testWorld(t)
	sync := newTestService(t, idx2)
	defer sync.Close()
	for _, b := range batches {
		if _, serr := sync.ApplyUpdates(&service.UpdateRequest{Dataset: "world", Ops: b}); serr != nil {
			t.Fatal(serr)
		}
	}
	req := selectReq("RS", "plurality", tdTheta)
	a, serr := sync.SelectSeeds(req)
	if serr != nil {
		t.Fatal(serr)
	}
	b, serr := async.SelectSeeds(req)
	if serr != nil {
		t.Fatal(serr)
	}
	if !reflect.DeepEqual(a.Seeds, b.Seeds) || a.ExactValue != b.ExactValue {
		t.Fatalf("coalesced drain diverged from sync replay: %v %v vs %v %v",
			a.Seeds, a.ExactValue, b.Seeds, b.ExactValue)
	}
}

// TestConsistentSnapshotDuringRepair hammers queries while the background
// applier repairs: every response must be internally consistent — the
// value it reports must be exactly the value of the epoch it claims —
// and observed epochs must never go backwards.
func TestConsistentSnapshotDuringRepair(t *testing.T) {
	_, idx := testWorld(t)
	batches := pipelineBatches()

	// Reference values per epoch from a synchronous service.
	seeds := []int32{1, 7, 19}
	evalReq := func(minEpoch int64) *service.EvaluateRequest {
		return &service.EvaluateRequest{
			Dataset: "world", Score: service.ScoreSpec{Name: "cumulative"},
			Horizon: tdHorizon, Target: 0, Seeds: seeds, MinEpoch: minEpoch,
		}
	}
	ref := newTestService(t, idx)
	defer ref.Close()
	want := map[int64]float64{}
	r0, serr := ref.Evaluate(evalReq(0))
	if serr != nil {
		t.Fatal(serr)
	}
	want[0] = r0.Value
	for i, b := range batches {
		if _, serr := ref.ApplyUpdates(&service.UpdateRequest{Dataset: "world", Ops: b}); serr != nil {
			t.Fatal(serr)
		}
		rv, serr := ref.Evaluate(evalReq(0))
		if serr != nil {
			t.Fatal(serr)
		}
		want[int64(i)+1] = rv.Value
	}

	_, idx2 := testWorld(t)
	async := service.New(service.Config{AsyncUpdates: true, CacheSize: -1})
	defer async.Close()
	if err := async.AddIndex("world", idx2); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastEpoch int64 = -1
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, serr := async.Evaluate(evalReq(0))
				if serr != nil {
					errCh <- serr
					return
				}
				if resp.Epoch < lastEpoch {
					errCh <- &service.Error{Code: service.CodeInternal,
						Message: "epoch went backwards"}
					return
				}
				lastEpoch = resp.Epoch
				if wantV, ok := want[resp.Epoch]; !ok || wantV != resp.Value {
					errCh <- &service.Error{Code: service.CodeInternal,
						Message: "torn snapshot: value does not match claimed epoch"}
					return
				}
			}
		}()
	}
	for _, b := range batches {
		if _, serr := async.EnqueueUpdates(&service.UpdateRequest{Dataset: "world", Ops: b}); serr != nil {
			t.Fatal(serr)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if serr := async.WaitIdle(ctx, "world"); serr != nil {
		t.Fatal(serr)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

// TestReadYourWrites: a query carrying the promised epoch as minEpoch
// blocks until the batch is visible and answers at (or after) it; an
// unreachable minEpoch times out with deadline_exceeded.
func TestReadYourWrites(t *testing.T) {
	_, idx := testWorld(t)
	async := service.New(service.Config{AsyncUpdates: true})
	defer async.Close()
	if err := async.AddIndex("world", idx); err != nil {
		t.Fatal(err)
	}
	acc, serr := async.EnqueueUpdates(&service.UpdateRequest{Dataset: "world", Ops: pipelineBatches()[0]})
	if serr != nil {
		t.Fatal(serr)
	}
	resp, serr := async.Evaluate(&service.EvaluateRequest{
		Dataset: "world", Score: service.ScoreSpec{Name: "cumulative"},
		Horizon: tdHorizon, Target: 0, Seeds: []int32{1}, MinEpoch: acc.Epoch,
	})
	if serr != nil {
		t.Fatal(serr)
	}
	if resp.Epoch < acc.Epoch {
		t.Fatalf("read-your-writes violated: answered at %d, promised %d", resp.Epoch, acc.Epoch)
	}
	// An epoch no update will ever produce must fail by deadline, not hang.
	_, serr = async.Evaluate(&service.EvaluateRequest{
		Dataset: "world", Score: service.ScoreSpec{Name: "cumulative"},
		Horizon: tdHorizon, Target: 0, Seeds: []int32{1},
		MinEpoch: acc.Epoch + 1000, TimeoutMs: 50,
	})
	if serr == nil || serr.Code != service.CodeDeadlineExceeded {
		t.Fatalf("unreachable minEpoch: got %v, want deadline_exceeded", serr)
	}
}

// TestEnqueueValidation: the epoch promise requires rejecting invalid
// batches at accept time — including statefully invalid ones, judged
// against the graph as it WILL be once the queue drains.
func TestEnqueueValidation(t *testing.T) {
	_, idx := testWorld(t)
	async := service.New(service.Config{AsyncUpdates: true})
	defer async.Close()
	if err := async.AddIndex("world", idx); err != nil {
		t.Fatal(err)
	}
	// Shape violation: out-of-range node.
	if _, serr := async.EnqueueUpdates(&service.UpdateRequest{Dataset: "world", Ops: dynamic.Batch{
		{Kind: dynamic.OpSetOpinion, Cand: 0, Node: 100000, Value: 0.5},
	}}); serr == nil || serr.Code != service.CodeBadRequest {
		t.Fatalf("out-of-range op: got %v, want bad_request", serr)
	}
	// Removing a never-existing edge fails at accept time.
	if _, serr := async.EnqueueUpdates(&service.UpdateRequest{Dataset: "world", Ops: dynamic.Batch{
		{Kind: dynamic.OpRemoveEdge, From: 118, To: 119},
	}}); serr == nil || serr.Code != service.CodeBadRequest {
		t.Fatalf("remove of missing edge: got %v, want bad_request", serr)
	}
	// Removing an edge a QUEUED batch adds is valid (overlay knows it).
	if _, serr := async.EnqueueUpdates(&service.UpdateRequest{Dataset: "world", Ops: dynamic.Batch{
		{Kind: dynamic.OpAddEdge, From: 118, To: 119, W: 0.5},
	}}); serr != nil {
		t.Fatal(serr)
	}
	if _, serr := async.EnqueueUpdates(&service.UpdateRequest{Dataset: "world", Ops: dynamic.Batch{
		{Kind: dynamic.OpRemoveEdge, From: 118, To: 119},
	}}); serr != nil {
		t.Fatalf("remove of queued-added edge rejected: %v", serr)
	}
	// ...and a SECOND remove of the same edge is rejected: the overlay
	// tracks post-queue existence.
	if _, serr := async.EnqueueUpdates(&service.UpdateRequest{Dataset: "world", Ops: dynamic.Batch{
		{Kind: dynamic.OpRemoveEdge, From: 118, To: 119},
	}}); serr == nil || serr.Code != service.CodeBadRequest {
		t.Fatalf("double remove: got %v, want bad_request", serr)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if serr := async.WaitIdle(ctx, "world"); serr != nil {
		t.Fatal(serr)
	}
}

// TestAsyncBlockingApply: ApplyUpdates on an async service preserves the
// blocking contract (returns only once the batch is visible).
func TestAsyncBlockingApply(t *testing.T) {
	_, idx := testWorld(t)
	async := service.New(service.Config{AsyncUpdates: true})
	defer async.Close()
	if err := async.AddIndex("world", idx); err != nil {
		t.Fatal(err)
	}
	resp, serr := async.ApplyUpdates(&service.UpdateRequest{Dataset: "world", Ops: pipelineBatches()[0]})
	if serr != nil {
		t.Fatal(serr)
	}
	st := async.StatsSnapshot()
	if st.Datasets[0].Epoch != resp.Epoch {
		t.Fatalf("blocking apply returned before visibility: visible %d, promised %d",
			st.Datasets[0].Epoch, resp.Epoch)
	}
}
