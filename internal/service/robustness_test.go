package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ovm/internal/datasets"
	"ovm/internal/dynamic"
	"ovm/internal/iofault"
	"ovm/internal/persist"
	"ovm/internal/serialize"
	"ovm/internal/service"
)

// countdownCtx cancels itself after a fixed number of Err() polls: the
// cooperative cancellation points in the engine and the greedy loops all go
// through ctx.Err(), so a countdown lands the cancellation deterministically
// mid-computation instead of depending on wall-clock timing.
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
	done      chan struct{}
	once      sync.Once
}

func newCountdown(parent context.Context, polls int64) *countdownCtx {
	c := &countdownCtx{Context: parent, done: make(chan struct{})}
	c.remaining.Store(polls)
	return c
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) <= 0 {
		c.once.Do(func() { close(c.done) })
		return context.Canceled
	}
	return c.Context.Err()
}

func (c *countdownCtx) Done() <-chan struct{} { return c.done }

// TestCancelMidGreedyLeavesNoPartialState is the cancellation-determinism
// contract: a select-seeds computation cancelled in the middle of its greedy
// loop must return a typed canceled error, and an immediate identical
// re-query must be byte-identical to a run that was never cancelled — the
// cancelled computation can leave no partial estimator state behind, at any
// parallelism.
func TestCancelMidGreedyLeavesNoPartialState(t *testing.T) {
	_, idx := testWorld(t)
	for _, method := range []string{"RS", "RW"} {
		for _, par := range []int{1, 4, 0} {
			t.Run(fmt.Sprintf("%s/P%d", method, par), func(t *testing.T) {
				// Baseline: the same query on a service that never cancels.
				clean := newTestService(t, idx)
				req := selectReq(method, "plurality", 0)
				req.Parallelism = par
				want, serr := clean.SelectSeeds(req)
				if serr != nil {
					t.Fatal(serr)
				}

				// The hooked service cancels exactly the first computation
				// after a handful of cooperative polls — mid-greedy.
				var armed atomic.Bool
				armed.Store(true)
				cfg := service.Config{}
				cfg.SetComputeContext(func(ctx context.Context) context.Context {
					if armed.CompareAndSwap(true, false) {
						return newCountdown(ctx, 3)
					}
					return ctx
				})
				svc := service.New(cfg)
				if err := svc.AddIndex("world", idx); err != nil {
					t.Fatal(err)
				}
				_, serr = svc.SelectSeeds(req)
				if serr == nil {
					t.Fatal("expected the first query to be cancelled mid-greedy")
				}
				if serr.Code != service.CodeCanceled {
					t.Fatalf("error code = %s, want %s", serr.Code, service.CodeCanceled)
				}

				got, serr := svc.SelectSeeds(req)
				if serr != nil {
					t.Fatalf("re-query after cancellation: %v", serr)
				}
				if got.Cached {
					t.Fatal("cancelled computation must not have populated the cache")
				}
				if !reflect.DeepEqual(got.Seeds, want.Seeds) || got.ExactValue != want.ExactValue {
					t.Errorf("re-query after cancellation diverged: seeds %v value %v, want %v / %v",
						got.Seeds, got.ExactValue, want.Seeds, want.ExactValue)
				}
				st := svc.StatsSnapshot()
				if st.Canceled != 1 {
					t.Errorf("canceled counter = %d, want 1", st.Canceled)
				}
			})
		}
	}
}

// TestDeadlineExceededPromptlyOnBenchGraph pins the acceptance bound: a
// select-seeds query with an expired deadline on the 12k-node sweep graph
// returns deadline_exceeded within deadline + 250ms at P=0, and an
// immediate identical re-query (no deadline) is byte-identical to a run
// that never had one.
func TestDeadlineExceededPromptlyOnBenchGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("12k-node graph synthesis + cold selection in -short mode")
	}
	const (
		horizon = 10
		seed    = int64(42)
		k       = 20
	)
	d, err := datasets.TwitterDistancingLike(datasets.Options{N: 12000, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	newSvc := func() *service.Service {
		svc := service.New(service.Config{})
		if err := svc.AddDataset("sweep", d.Sys); err != nil {
			t.Fatal(err)
		}
		return svc
	}
	// RW computes its walk sets from scratch here (no index): a multi-second
	// cold selection the 100ms deadline is guaranteed to interrupt.
	req := &service.SelectSeedsRequest{
		Dataset: "sweep",
		Method:  "RW",
		Score:   service.ScoreSpec{Name: "plurality"},
		K:       k,
		Horizon: horizon,
		Target:  d.DefaultTarget,
		Seed:    seed,
	}

	// Uncancelled baseline on its own service instance. Its duration also
	// validates the fixture: the deadline below must expire mid-compute.
	baseline := newSvc()
	baseStart := time.Now()
	want, serr := baseline.SelectSeeds(req)
	if serr != nil {
		t.Fatal(serr)
	}
	if baseDur := time.Since(baseStart); baseDur < 300*time.Millisecond {
		t.Fatalf("fixture too fast (%v): a 100ms deadline would not reliably expire mid-compute", baseDur)
	}

	svc := newSvc()
	const deadline = 100 * time.Millisecond
	timed := *req
	timed.TimeoutMs = int(deadline / time.Millisecond)
	start := time.Now()
	_, serr = svc.SelectSeeds(&timed)
	elapsed := time.Since(start)
	if serr == nil {
		t.Fatal("a 100ms deadline must expire during a cold 12k-node selection")
	}
	if serr.Code != service.CodeDeadlineExceeded {
		t.Fatalf("error code = %s, want %s", serr.Code, service.CodeDeadlineExceeded)
	}
	if elapsed > deadline+250*time.Millisecond {
		t.Errorf("deadline-expired query returned after %v, want <= deadline + 250ms", elapsed)
	}
	if st := svc.StatsSnapshot(); st.Timeouts != 1 {
		t.Errorf("timeouts counter = %d, want 1", st.Timeouts)
	}

	got, serr := svc.SelectSeeds(req)
	if serr != nil {
		t.Fatalf("re-query after deadline expiry: %v", serr)
	}
	if !reflect.DeepEqual(got.Seeds, want.Seeds) || got.ExactValue != want.ExactValue {
		t.Errorf("re-query after deadline diverged: seeds %v value %v, want %v / %v",
			got.Seeds, got.ExactValue, want.Seeds, want.ExactValue)
	}
}

func TestNegativeTimeoutRejected(t *testing.T) {
	_, idx := testWorld(t)
	svc := newTestService(t, idx)
	req := selectReq("RS", "plurality", 0)
	req.TimeoutMs = -1
	_, serr := svc.SelectSeeds(req)
	if serr == nil || serr.Code != service.CodeBadRequest {
		t.Fatalf("negative timeoutMs: got %v, want bad_request", serr)
	}
}

// TestAdmissionControlShedsAndServesCacheHits: with a full inflight slot and
// a zero-length queue, a new computation is shed with overloaded +
// Retry-After while a cache-servable query still answers.
func TestAdmissionControlShedsAndServesCacheHits(t *testing.T) {
	_, idx := testWorld(t)

	blockEnter := make(chan struct{})
	blockRelease := make(chan struct{})
	var blocking atomic.Bool
	cfg := service.Config{MaxInflight: 1, MaxQueue: 0}
	cfg.SetComputeContext(func(ctx context.Context) context.Context {
		if blocking.Load() {
			close(blockEnter)
			<-blockRelease
		}
		return ctx
	})
	svc := service.New(cfg)
	if err := svc.AddIndex("world", idx); err != nil {
		t.Fatal(err)
	}

	// Prime a cache entry while nothing blocks.
	warm := selectReq("RS", "plurality", 0)
	if _, serr := svc.SelectSeeds(warm); serr != nil {
		t.Fatal(serr)
	}

	// Occupy the only compute slot: the hook runs after acquire, so parking
	// inside it holds the slot for as long as the test wants.
	blocking.Store(true)
	holderDone := make(chan *service.Error, 1)
	go func() {
		holder := selectReq("RS", "borda", 0)
		_, serr := svc.SelectSeeds(holder)
		holderDone <- serr
	}()
	<-blockEnter
	blocking.Store(false)

	// A third, distinct computation must be shed — over HTTP, to pin the
	// 429 + Retry-After contract end to end.
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	shedBody, err := json.Marshal(selectReq("RS", "copeland", 0))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/select-seeds", "application/json", bytes.NewReader(shedBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed query status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 response missing Retry-After header")
	}

	// The cache-servable query still answers while compute is saturated.
	cached, serr := svc.SelectSeeds(warm)
	if serr != nil {
		t.Fatalf("cached query during shedding: %v", serr)
	}
	if !cached.Cached {
		t.Error("warm query should have been served from the cache")
	}

	close(blockRelease)
	if serr := <-holderDone; serr != nil {
		t.Fatalf("slot-holding query failed: %v", serr)
	}
	st := svc.StatsSnapshot()
	if st.Shed != 1 {
		t.Errorf("shed counter = %d, want 1", st.Shed)
	}
}

// TestQueuedComputationWaitsForSlot: with queue capacity, the second
// computation waits for the slot instead of being shed.
func TestQueuedComputationWaitsForSlot(t *testing.T) {
	_, idx := testWorld(t)
	blockEnter := make(chan struct{})
	blockRelease := make(chan struct{})
	var blocking atomic.Bool
	cfg := service.Config{MaxInflight: 1, MaxQueue: 4}
	cfg.SetComputeContext(func(ctx context.Context) context.Context {
		if blocking.CompareAndSwap(true, false) {
			close(blockEnter)
			<-blockRelease
		}
		return ctx
	})
	svc := service.New(cfg)
	if err := svc.AddIndex("world", idx); err != nil {
		t.Fatal(err)
	}
	blocking.Store(true)
	holderDone := make(chan *service.Error, 1)
	go func() {
		_, serr := svc.SelectSeeds(selectReq("RS", "plurality", 0))
		holderDone <- serr
	}()
	<-blockEnter
	queuedDone := make(chan *service.Error, 1)
	go func() {
		_, serr := svc.SelectSeeds(selectReq("RS", "borda", 0))
		queuedDone <- serr
	}()
	select {
	case serr := <-queuedDone:
		t.Fatalf("queued query finished while the slot was held: %v", serr)
	case <-time.After(50 * time.Millisecond):
	}
	close(blockRelease)
	for i, ch := range []chan *service.Error{holderDone, queuedDone} {
		if serr := <-ch; serr != nil {
			t.Fatalf("query %d failed: %v", i, serr)
		}
	}
	if st := svc.StatsSnapshot(); st.Shed != 0 {
		t.Errorf("shed counter = %d, want 0 (the queue absorbed the burst)", st.Shed)
	}
}

// TestPanicRecoveryMiddleware: a crashing handler becomes a 500 plus an
// ovmd_panics_total increment, and the daemon keeps serving.
func TestPanicRecoveryMiddleware(t *testing.T) {
	_, idx := testWorld(t)
	svc := service.New(service.Config{DebugFaults: true})
	if err := svc.AddIndex("world", idx); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/debug/fault/panic", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panic endpoint status = %d, want 500", resp.StatusCode)
	}
	if st := svc.StatsSnapshot(); st.Panics != 1 {
		t.Errorf("panics counter = %d, want 1", st.Panics)
	}

	// The daemon survived: health and a real query still work.
	h, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic = %d, want 200", h.StatusCode)
	}
	q := postJSON(t, srv.URL+"/v1/select-seeds", selectReq("RS", "plurality", 0))
	q.Body.Close()
	if q.StatusCode != http.StatusOK {
		t.Fatalf("query after panic = %d, want 200", q.StatusCode)
	}
}

func TestDebugFaultEndpointGatedOff(t *testing.T) {
	_, idx := testWorld(t)
	svc := newTestService(t, idx) // DebugFaults defaults to false
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/debug/fault/panic", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusInternalServerError {
		t.Fatal("fault endpoint must not exist without DebugFaults")
	}
}

func TestUpdateBatchOpCountBounded(t *testing.T) {
	_, idx := testWorld(t)
	svc := newTestService(t, idx)
	req := &service.UpdateRequest{Dataset: "world", Ops: make(dynamic.Batch, 65537)}
	_, serr := svc.ApplyUpdates(req)
	if serr == nil || serr.Code != service.CodeBadRequest {
		t.Fatalf("oversized batch: got %v, want bad_request", serr)
	}
	if !strings.Contains(serr.Message, "65536") {
		t.Errorf("error should name the limit: %q", serr.Message)
	}
}

func TestOversizedBodyRejectedWith413(t *testing.T) {
	_, idx := testWorld(t)
	svc := newTestService(t, idx)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	body := `{"dataset":"world","junk":"` + strings.Repeat("x", 9<<20) + `"}`
	resp, err := http.Post(srv.URL+"/v1/evaluate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

// TestPersistFailureKeepsOldEpoch is the persist-before-swap contract at the
// service layer: when the persistence hook fails, the update must not become
// visible — the epoch stays, and queries keep answering on the old dataset.
func TestPersistFailureKeepsOldEpoch(t *testing.T) {
	_, idx := testWorld(t)
	cfg := service.Config{
		OnUpdate: func(string, []dynamic.Batch, int64) error {
			return fmt.Errorf("disk on fire")
		},
	}
	svc := service.New(cfg)
	if err := svc.AddIndex("world", idx); err != nil {
		t.Fatal(err)
	}
	before, serr := svc.SelectSeeds(selectReq("RS", "plurality", 0))
	if serr != nil {
		t.Fatal(serr)
	}
	_, serr = svc.ApplyUpdates(&service.UpdateRequest{Dataset: "world", Ops: testBatch(t, idx)})
	if serr == nil {
		t.Fatal("update must fail when persistence fails")
	}
	st := svc.StatsSnapshot()
	if len(st.Datasets) != 1 || st.Datasets[0].Epoch != 0 {
		t.Fatalf("epoch after failed persist = %+v, want 0", st.Datasets)
	}
	svc.ResetCache()
	after, serr := svc.SelectSeeds(selectReq("RS", "plurality", 0))
	if serr != nil {
		t.Fatal(serr)
	}
	if !reflect.DeepEqual(after.Seeds, before.Seeds) || after.ExactValue != before.ExactValue || after.Epoch != 0 {
		t.Errorf("answers changed after a failed persist: %v/%v epoch %d, want %v/%v epoch 0",
			after.Seeds, after.ExactValue, after.Epoch, before.Seeds, before.ExactValue)
	}
}

// --- update-persist crash torture --------------------------------------

// tortureWorld is a deliberately small fixture (sketch artifact only) so the
// full point × action sweep — each subtest persists, "crashes", restarts,
// replays, and queries — stays fast.
func tortureWorld(t testing.TB) *serialize.Index {
	t.Helper()
	d, err := datasets.YelpLike(datasets.Options{N: 60, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := service.BuildIndex(d.Sys, service.BuildOptions{
		Target:      0,
		Horizon:     6,
		Seed:        9,
		SketchTheta: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func tortureBatch() dynamic.Batch {
	return dynamic.Batch{
		{Kind: dynamic.OpAddEdge, From: 3, To: 11, W: 0.8},
		{Kind: dynamic.OpSetOpinion, Cand: 0, Node: 33, Value: 0.95},
	}
}

func tortureReq() *service.SelectSeedsRequest {
	return &service.SelectSeedsRequest{
		Dataset: "world",
		Method:  "RS",
		Score:   service.ScoreSpec{Name: "plurality"},
		K:       4,
		Horizon: 6,
		Target:  0,
		Seed:    9,
	}
}

func readIndexFile(t *testing.T, path string) *serialize.Index {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	idx, err := serialize.ReadIndex(f)
	if err != nil {
		t.Fatalf("index at %s is corrupt — old-or-new invariant broken: %v", path, err)
	}
	return idx
}

// ovmdOnUpdate replicates the daemon's persist-before-swap hook: append the
// batch to the file's update log, rewrite atomically, roll back the
// in-memory log on failure.
func ovmdOnUpdate(fsys iofault.FS, path string, idx *serialize.Index) func(string, []dynamic.Batch, int64) error {
	return func(_ string, batches []dynamic.Batch, _ int64) error {
		n0 := len(idx.Updates)
		idx.Updates = append(idx.Updates, batches...)
		if err := persist.WriteIndexAtomic(fsys, path, idx); err != nil {
			idx.Updates = idx.Updates[:n0]
			return err
		}
		return nil
	}
}

// TestUpdatePersistCrashTorture sweeps every file operation of the
// update-log persist sequence with an error, a torn write, and a simulated
// crash. After each fault the "daemon" restarts from the file: the index
// must parse (never a torn in-between), land on the old or the new epoch,
// and serve seeds bit-identical to a clean run at that epoch.
func TestUpdatePersistCrashTorture(t *testing.T) {
	base := tortureWorld(t)
	batch := tortureBatch()

	// Baselines: seeds at epoch 0 and (after a clean update) at epoch 1.
	baselines := map[int64]*service.SelectSeedsResponse{}
	for epoch := int64(0); epoch <= 1; epoch++ {
		svc := service.New(service.Config{})
		if err := svc.AddIndex("world", base); err != nil {
			t.Fatal(err)
		}
		if epoch == 1 {
			if _, serr := svc.ApplyUpdates(&service.UpdateRequest{Dataset: "world", Ops: batch}); serr != nil {
				t.Fatal(serr)
			}
		}
		resp, serr := svc.SelectSeeds(tortureReq())
		if serr != nil {
			t.Fatal(serr)
		}
		if resp.Epoch != epoch {
			t.Fatalf("baseline epoch = %d, want %d", resp.Epoch, epoch)
		}
		baselines[epoch] = resp
	}

	// Recording pass: enumerate the injection points of one clean persist.
	recPath := filepath.Join(t.TempDir(), "world.ovmidx")
	if err := persist.WriteIndexAtomic(iofault.OS, recPath, base); err != nil {
		t.Fatal(err)
	}
	rec := iofault.NewFaulty(iofault.OS)
	{
		loaded := readIndexFile(t, recPath)
		svc := service.New(service.Config{OnUpdate: ovmdOnUpdate(rec, recPath, loaded)})
		if err := svc.AddIndex("world", loaded); err != nil {
			t.Fatal(err)
		}
		if _, serr := svc.ApplyUpdates(&service.UpdateRequest{Dataset: "world", Ops: batch}); serr != nil {
			t.Fatal(serr)
		}
	}
	points := rec.Trace()
	if len(points) < 5 {
		t.Fatalf("suspiciously short persist trace: %v", points)
	}

	actions := []iofault.Action{iofault.ActError, iofault.ActTornWrite, iofault.ActCrash}
	for _, p := range points {
		for _, act := range actions {
			t.Run(fmt.Sprintf("%s#%d/%s", p.Op, p.Occurrence, act), func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "world.ovmidx")
				if err := persist.WriteIndexAtomic(iofault.OS, path, base); err != nil {
					t.Fatal(err)
				}
				loaded := readIndexFile(t, path)
				fsys := iofault.NewFaulty(iofault.OS)
				fsys.Inject(p.Op, p.Occurrence, act)
				svc := service.New(service.Config{OnUpdate: ovmdOnUpdate(fsys, path, loaded)})
				if err := svc.AddIndex("world", loaded); err != nil {
					t.Fatal(err)
				}

				var serr *service.Error
				crashed := false
				func() {
					defer func() {
						if r := recover(); r != nil {
							if _, ok := r.(*iofault.Crash); !ok {
								panic(r)
							}
							crashed = true
						}
					}()
					_, serr = svc.ApplyUpdates(&service.UpdateRequest{Dataset: "world", Ops: batch})
				}()

				// Persist-before-swap: an update that reported an error must
				// not have become visible on the still-running daemon.
				if !crashed && serr != nil {
					if st := svc.StatsSnapshot(); st.Datasets[0].Epoch != 0 {
						t.Errorf("failed persist swapped anyway: live epoch = %d", st.Datasets[0].Epoch)
					}
				}

				// "Restart": sweep temps, reload the file, replay its log.
				if _, err := persist.CleanStaleTemps(iofault.OS, path); err != nil {
					t.Fatal(err)
				}
				re := readIndexFile(t, path)
				restarted := service.New(service.Config{})
				if err := restarted.AddIndex("world", re); err != nil {
					t.Fatal(err)
				}
				got, qerr := restarted.SelectSeeds(tortureReq())
				if qerr != nil {
					t.Fatal(qerr)
				}
				if got.Epoch != 0 && got.Epoch != 1 {
					t.Fatalf("restarted epoch = %d: neither old nor new", got.Epoch)
				}
				if !crashed && serr == nil && got.Epoch != 1 {
					t.Errorf("update reported success but the restart landed on epoch %d", got.Epoch)
				}
				want := baselines[got.Epoch]
				if !reflect.DeepEqual(got.Seeds, want.Seeds) || got.ExactValue != want.ExactValue {
					t.Errorf("epoch %d seeds after restart = %v/%v, want bit-identical %v/%v",
						got.Epoch, got.Seeds, got.ExactValue, want.Seeds, want.ExactValue)
				}
			})
		}
	}
}
