// Package service is the query-serving core behind the ovmd daemon: a
// registry of named opinion systems with precomputed artifacts (sketch
// sets, walk sets, RR-set collections), answering select-seeds, evaluate,
// wins, and min-seeds-to-win queries concurrently on the engine worker
// pool.
//
// Three properties define the serving contract:
//
//   - Determinism: every response is bit-identical to the corresponding
//     direct library call (ovm.SelectSeeds and friends) at any engine
//     parallelism. Indexed queries reuse persisted artifacts through the
//     same code paths the library uses (sketch.SelectOnSet,
//     rwalk.SelectOnSet, im.IMMCached), so load-not-recompute never changes
//     an answer.
//   - Caching: responses are memoized in an LRU cache keyed by the
//     canonicalized request. The engine parallelism is deliberately
//     excluded from the key — results do not depend on it.
//   - Coalescing: identical concurrent queries collapse into one
//     computation (singleflight); the followers share the leader's result.
package service

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ovm/internal/baselines"
	"ovm/internal/core"
	"ovm/internal/dynamic"
	"ovm/internal/im"
	"ovm/internal/obs"
	"ovm/internal/opinion"
	"ovm/internal/rwalk"
	"ovm/internal/sampling"
	"ovm/internal/serialize"
	"ovm/internal/sketch"
	"ovm/internal/voting"
	"ovm/internal/walks"
)

// ErrorCode classifies a service failure for transport mapping.
type ErrorCode string

// The error taxonomy exposed over HTTP.
const (
	CodeBadRequest ErrorCode = "bad_request"
	CodeNotFound   ErrorCode = "not_found"
	CodeInternal   ErrorCode = "internal"
	// CodeDeadlineExceeded: the query's deadline (Config.QueryTimeout or the
	// request's timeoutMs) expired before the answer was ready → HTTP 504.
	CodeDeadlineExceeded ErrorCode = "deadline_exceeded"
	// CodeCanceled: the caller abandoned the request (client disconnect,
	// context cancellation) → HTTP 499.
	CodeCanceled ErrorCode = "canceled"
	// CodeOverloaded: admission control shed the computation (inflight cap
	// reached, wait queue full) → HTTP 429 with a Retry-After header.
	CodeOverloaded ErrorCode = "overloaded"
)

// Error is a typed service error; the HTTP layer maps Code to a status.
type Error struct {
	Code    ErrorCode
	Message string
	// RetryAfter, when positive, is the suggested client backoff in seconds
	// (set on overloaded errors; surfaced as the Retry-After header).
	RetryAfter int
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

func badRequestf(format string, args ...any) *Error {
	return &Error{Code: CodeBadRequest, Message: fmt.Sprintf(format, args...)}
}

func notFoundf(format string, args ...any) *Error {
	return &Error{Code: CodeNotFound, Message: fmt.Sprintf(format, args...)}
}

func internalErr(err error) *Error {
	return &Error{Code: CodeInternal, Message: err.Error()}
}

// asError folds an arbitrary error into the taxonomy: typed *Error values
// pass through, context expiry maps to deadline_exceeded / canceled (the
// cancellation layer returns ctx.Err() verbatim from shard and round
// boundaries, so errors.Is sees through any wrapping), and everything else
// is internal.
func asError(err error) *Error {
	var e *Error
	if errors.As(err, &e) {
		return e
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return &Error{Code: CodeDeadlineExceeded, Message: "query deadline exceeded"}
	case errors.Is(err, context.Canceled):
		return &Error{Code: CodeCanceled, Message: "request canceled"}
	}
	return internalErr(err)
}

// Config tunes a Service.
type Config struct {
	// CacheSize caps the LRU response cache (entries; default 1024,
	// negative disables caching).
	CacheSize int
	// Parallelism is the engine worker knob applied to queries that do not
	// pin their own: 0 means GOMAXPROCS, 1 forces serial execution.
	Parallelism int
	// OnUpdate, when set, persists applied update batches before the
	// post-update dataset becomes visible (ovmd appends them to the index
	// file's update log). The batches are the raw accepted batches in
	// application order — the async pipeline may repair several per swap —
	// and epoch is the dataset version after all of them. An error aborts
	// the update without swapping (the async applier retries).
	OnUpdate func(dataset string, batches []dynamic.Batch, epoch int64) error
	// AsyncUpdates routes updates through the durable queue + background
	// applier: POST /updates validates, logs (OnEnqueue), and returns the
	// target epoch immediately; the repair runs off the request path and
	// consecutive batches coalesce when provably equivalent. Off = the
	// classic blocking apply.
	AsyncUpdates bool
	// OnEnqueue, when set with AsyncUpdates, durably logs an accepted
	// batch BEFORE the accepted response is returned (ovmd appends it to
	// the index's write-ahead log). An error rejects the batch — nothing
	// is promised that is not on disk.
	OnEnqueue func(dataset string, batch dynamic.Batch, epoch int64) error
	// Logger, when set, emits structured log lines: queries at debug,
	// updates and failures at info/warn. Nil disables logging.
	Logger *obs.Logger
	// SlowQueryLog caps the slow-query ring (entries; default 32, negative
	// disables). SlowQueryThreshold is the minimum duration retained
	// (default 0: the ring holds the most recent queries, read back
	// slowest-first).
	SlowQueryLog       int
	SlowQueryThreshold time.Duration
	// UpdateLogDepth, when set, reports the persisted update-log depth per
	// dataset for /stats and /metrics (ovmd returns the batch count of the
	// index file's log, which compaction resets). When nil, the depth is
	// the number of batches applied since the dataset's base index —
	// identical unless the log is compacted out from under the service.
	UpdateLogDepth func(dataset string) int
	// TimeSeriesInterval, when positive, starts the in-process ring TSDB:
	// every registered cost counter/gauge plus the service counters are
	// sampled at this cadence and served from /debug/timeseries. Zero
	// leaves the sampler off (the ring still exists; tests drive it with
	// explicit samples). Call Close to stop the sampler goroutine.
	TimeSeriesInterval time.Duration
	// TimeSeriesCapacity caps the ring (points retained; <= 0 selects 720
	// — an hour of history at a 5s interval).
	TimeSeriesCapacity int
	// QueryTimeout bounds each query end to end (cache lookup, admission
	// wait, compute): an expired deadline returns a typed deadline_exceeded
	// error and the abandoned computation stops at its next cooperative
	// cancellation poll. Zero disables the server-wide bound. A request's
	// timeoutMs field overrides it per query.
	QueryTimeout time.Duration
	// MaxInflight caps concurrently executing computations (cache misses
	// that lead a singleflight). Zero disables admission control. Cache
	// hits are always served, even while compute is being shed.
	MaxInflight int
	// MaxQueue bounds how many computations may wait for a free slot once
	// MaxInflight is reached; overflow is shed with a typed overloaded
	// error (HTTP 429 + Retry-After). Zero sheds immediately when every
	// slot is busy. Ignored when MaxInflight is 0.
	MaxQueue int
	// DebugFaults enables the /debug/fault/* handlers (panic injection for
	// exercising the recovery middleware). Never enable in production.
	DebugFaults bool

	// computeContext, when set, wraps the detached compute context just
	// before the selection runs. Tests inject countdown contexts here to
	// cancel mid-greedy at a deterministic round.
	computeContext func(ctx context.Context) context.Context
}

func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.SlowQueryLog == 0 {
		c.SlowQueryLog = 32
	}
	return c
}

// Service is a concurrent query server over registered datasets.
type Service struct {
	cfg    Config
	mu     sync.RWMutex
	ds     map[string]*Dataset
	cache  *lruCache
	flight *flightGroup
	adm    *admission
	start  time.Time
	tel    *telemetry
	tsdb   *obs.TimeSeries

	// updMu serializes update application (sync ApplyUpdates calls and the
	// async applier's runs) so every epoch derives from its predecessor
	// (no lost updates); queries never take it.
	updMu sync.Mutex

	// epochCh is closed and replaced (under mu) on every dataset swap;
	// minEpoch waiters block on it. One channel covers all datasets —
	// swaps are rare and waiters re-check their dataset on every wake.
	epochCh chan struct{}

	// pipelines holds the per-dataset async update pipelines, created
	// lazily on the first enqueue (or WAL seed).
	pipMu     sync.Mutex
	pipelines map[string]*updatePipeline

	requests     atomic.Int64
	cacheHits    atomic.Int64
	cacheMisses  atomic.Int64
	coalesced    atomic.Int64
	computations atomic.Int64
	errorCount   atomic.Int64
	inflight     atomic.Int64
	updates      atomic.Int64
	coalescedOps atomic.Int64
	shed         atomic.Int64
	timeouts     atomic.Int64
	canceledReqs atomic.Int64
	panics       atomic.Int64
}

// New creates an empty service.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:       cfg,
		ds:        make(map[string]*Dataset),
		cache:     newLRUCache(cfg.CacheSize),
		flight:    newFlightGroup(),
		adm:       newAdmission(cfg.MaxInflight, cfg.MaxQueue),
		start:     time.Now(),
		tel:       newTelemetry(cfg),
		epochCh:   make(chan struct{}),
		pipelines: make(map[string]*updatePipeline),
	}
	// The ring samples the global cost registry plus the service's own
	// counters, so one /debug/timeseries window correlates serving load
	// (QPS, hit rate) with engine work (postings decoded, walks repaired).
	s.tsdb = obs.NewTimeSeries(cfg.TimeSeriesCapacity, obs.RegistrySource(), s.sampleServiceSeries)
	if cfg.TimeSeriesInterval > 0 {
		s.tsdb.Start(cfg.TimeSeriesInterval)
	}
	return s
}

// Close stops background goroutines: the async update appliers (an
// in-flight repair is abandoned at its next shard boundary; queued
// batches survive in the WAL when one is configured) and the time-series
// sampler. The service must not serve queries after Close.
func (s *Service) Close() {
	s.closePipelines()
	s.tsdb.Stop()
}

// TimeSeries exposes the in-process ring TSDB (the /debug/timeseries
// handler and tests read it; tests also drive Sample explicitly).
func (s *Service) TimeSeries() *obs.TimeSeries { return s.tsdb }

// sampleServiceSeries contributes the service-level counters to a
// time-series sample, alongside the registry's cost counters.
func (s *Service) sampleServiceSeries(sample func(name string, v float64)) {
	sample("ovmd_requests_total", float64(s.requests.Load()))
	sample("ovmd_cache_hits_total", float64(s.cacheHits.Load()))
	sample("ovmd_cache_misses_total", float64(s.cacheMisses.Load()))
	sample("ovmd_coalesced_total", float64(s.coalesced.Load()))
	sample("ovmd_computations_total", float64(s.computations.Load()))
	sample("ovmd_errors_total", float64(s.errorCount.Load()))
	sample("ovmd_updates_total", float64(s.updates.Load()))
	sample("ovmd_update_coalesced_ops_total", float64(s.coalescedOps.Load()))
	sample("ovmd_update_queue_depth", float64(s.totalQueueDepth()))
	sample("ovmd_inflight", float64(s.inflight.Load()))
	sample("ovmd_shed_total", float64(s.shed.Load()))
	sample("ovmd_timeouts_total", float64(s.timeouts.Load()))
	sample("ovmd_canceled_total", float64(s.canceledReqs.Load()))
	sample("ovmd_panics_total", float64(s.panics.Load()))
}

// Dataset is one registered opinion system plus its restored artifacts.
// Datasets are immutable snapshots (apart from the competitor memo):
// ApplyUpdates builds a successor and swaps the registry pointer, so
// in-flight queries keep a consistent view.
type Dataset struct {
	name      string
	sys       *opinion.System
	epoch     int64 // bumped once per applied update batch
	baseEpoch int64 // the loaded index's BaseEpoch; epoch-baseEpoch = applied batches
	sketches  []*sketchArtifact
	walkSets  []*walkArtifact
	rrs       []*rrArtifact

	compMu sync.RWMutex
	comp   map[compKey][][]float64
}

type compKey struct{ target, horizon int }

type sketchArtifact struct {
	seed    int64
	target  int
	horizon int
	theta   int
	set     *walks.Set // pristine; queries run on clones
}

type walkArtifact struct {
	seed    int64
	target  int
	horizon int
	lambda  int
	set     *walks.Set // pristine; queries run on clones
}

type rrArtifact struct {
	seed   int64
	target int
	col    *im.RRCollection // index prebuilt; used read-only as a cache
}

// AddDataset registers sys under name with no precomputed artifacts.
func (s *Service) AddDataset(name string, sys *opinion.System) error {
	return s.add(name, &serialize.Index{Sys: sys})
}

// AddIndex registers a loaded index under name, restoring every artifact
// into live, query-ready form (walk sets with fresh truncation state, RR
// collections with the inverted index prebuilt for lock-free reads).
func (s *Service) AddIndex(name string, idx *serialize.Index) error {
	return s.add(name, idx)
}

func (s *Service) add(name string, idx *serialize.Index) error {
	if name == "" {
		return badRequestf("dataset name must not be empty")
	}
	if err := idx.Validate(); err != nil {
		return badRequestf("invalid index: %v", err)
	}
	ds := &Dataset{
		name:      name,
		sys:       idx.Sys,
		epoch:     idx.BaseEpoch,
		baseEpoch: idx.BaseEpoch,
		comp:      make(map[compKey][][]float64),
	}
	for i, a := range idx.Sketches {
		set, err := walks.FromSnapshot(idx.Sys.Candidate(a.Target).G, a.Set)
		if err != nil {
			return badRequestf("sketch artifact %d: %v", i, err)
		}
		if set.NumWalks() != a.Theta {
			return badRequestf("sketch artifact %d stores %d walks, want theta=%d", i, set.NumWalks(), a.Theta)
		}
		// Index once at load time: every per-query Clone shares the postings
		// index, so indexed queries ride the incremental greedy path without
		// paying a per-query index build. A v3 file carries the index; adopt
		// it (verified against storage) instead of rebuilding, falling back
		// to the rebuild if verification rejects it.
		if a.Index == nil || set.AdoptIndex(a.Index) != nil {
			set.EnsureIndex()
		}
		ds.sketches = append(ds.sketches, &sketchArtifact{
			seed: a.Seed, target: a.Target, horizon: a.Horizon, theta: a.Theta, set: set,
		})
	}
	for i, a := range idx.Walks {
		set, err := walks.FromSnapshot(idx.Sys.Candidate(a.Target).G, a.Set)
		if err != nil {
			return badRequestf("walk artifact %d: %v", i, err)
		}
		if set.NumWalks() != a.Lambda*idx.Sys.N() {
			return badRequestf("walk artifact %d stores %d walks, want lambda×n=%d", i, set.NumWalks(), a.Lambda*idx.Sys.N())
		}
		if a.Index == nil || set.AdoptIndex(a.Index) != nil {
			set.EnsureIndex()
		}
		ds.walkSets = append(ds.walkSets, &walkArtifact{
			seed: a.Seed, target: a.Target, horizon: a.Horizon, lambda: a.Lambda, set: set,
		})
	}
	for i, a := range idx.RRs {
		col, err := im.FromSnapshot(idx.Sys.Candidate(a.Target).G, a.Sets, sampling.Stream{Seed: a.Seed, ID: 701}, s.cfg.Parallelism)
		if err != nil {
			return badRequestf("rr artifact %d: %v", i, err)
		}
		if a.Index == nil || col.AdoptIndex(a.Index) != nil {
			col.EnsureIndex()
		}
		ds.rrs = append(ds.rrs, &rrArtifact{seed: a.Seed, target: a.Target, col: col})
	}
	// Replay the index's update log through the same incremental-repair
	// path live updates use: the restarted daemon lands on exactly the
	// epoch (and bytes) the writer was serving.
	for i, b := range idx.Updates {
		next, _, serr := s.repairDataset(nil, ds, b, 1, nil)
		if serr != nil {
			return badRequestf("replaying update batch %d: %s", i, serr.Message)
		}
		ds = next
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.ds[name]; dup {
		return badRequestf("dataset %q already registered", name)
	}
	s.ds[name] = ds
	return nil
}

// Datasets lists the registered dataset names, sorted.
func (s *Service) Datasets() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.ds))
	for name := range s.ds {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ResetCache drops every cached response (benchmarks and tests).
func (s *Service) ResetCache() { s.cache.Reset() }

func (s *Service) dataset(name string) (*Dataset, *Error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ds, ok := s.ds[name]
	if !ok {
		// Collect names inline: calling Datasets() here would re-enter the
		// RLock and deadlock against a queued writer.
		names := make([]string, 0, len(s.ds))
		for n := range s.ds {
			names = append(names, n)
		}
		sort.Strings(names)
		return nil, notFoundf("unknown dataset %q (have: %s)", name, strings.Join(names, ", "))
	}
	return ds, nil
}

// competitors memoizes core.CompetitorOpinions per (target, horizon): the
// competitor rows never depend on the target's seeds, so every query
// against the same instance shares one exact diffusion. The value is
// deterministic, so a racing double-computation is harmless. A cancelled
// computation returns its context error and memoizes nothing — a partial
// matrix can never be served to a later query.
func (ds *Dataset) competitors(ctx context.Context, target, horizon, parallelism int) ([][]float64, error) {
	key := compKey{target, horizon}
	ds.compMu.RLock()
	B, ok := ds.comp[key]
	ds.compMu.RUnlock()
	if ok {
		return B, nil
	}
	B, err := core.CompetitorOpinionsCtx(ctx, ds.sys, target, horizon, parallelism)
	if err != nil {
		return nil, err
	}
	ds.compMu.Lock()
	if prev, ok := ds.comp[key]; ok {
		B = prev
	} else {
		ds.comp[key] = B
	}
	ds.compMu.Unlock()
	return B, nil
}

func (ds *Dataset) sketchFor(target, horizon, theta int, seed int64) *sketchArtifact {
	for _, a := range ds.sketches {
		if a.target == target && a.horizon == horizon && a.theta == theta && a.seed == seed {
			return a
		}
	}
	return nil
}

// defaultSketchTheta reports the θ of the artifact covering (target,
// horizon, seed), so requests may omit theta and still hit the index.
func (ds *Dataset) defaultSketchTheta(target, horizon int, seed int64) int {
	for _, a := range ds.sketches {
		if a.target == target && a.horizon == horizon && a.seed == seed {
			return a.theta
		}
	}
	return 0
}

func (ds *Dataset) walksFor(target, horizon, lambda int, seed int64) *walkArtifact {
	for _, a := range ds.walkSets {
		if a.target == target && a.horizon == horizon && a.lambda == lambda && a.seed == seed {
			return a
		}
	}
	return nil
}

func (ds *Dataset) rrFor(model im.Model, target int, seed int64) *im.RRCollection {
	for _, a := range ds.rrs {
		if a.target == target && a.seed == seed && a.col.Model() == model {
			return a.col
		}
	}
	return nil
}

// ScoreSpec is the wire form of a voting score.
type ScoreSpec struct {
	// Name is one of cumulative, plurality, p-approval, positional,
	// copeland, borda.
	Name string `json:"name"`
	// P parameterizes p-approval and positional.
	P int `json:"p,omitempty"`
	// Omega holds the positional weights ω[1..p] (positional only).
	Omega []float64 `json:"omega,omitempty"`
}

// build validates the spec against a system with r candidates.
func (sp ScoreSpec) build(r int) (voting.Score, *Error) {
	var sc voting.Score
	switch sp.Name {
	case "cumulative":
		sc = voting.Cumulative{}
	case "plurality":
		sc = voting.Plurality{}
	case "p-approval":
		sc = voting.PApproval{P: sp.P}
	case "positional":
		sc = voting.Positional{P: sp.P, Omega: sp.Omega}
	case "copeland":
		sc = voting.Copeland{}
	case "borda":
		sc = voting.BordaAsPositional(r)
	default:
		return nil, badRequestf("unknown score %q (want cumulative, plurality, p-approval, positional, copeland, or borda)", sp.Name)
	}
	if v, ok := sc.(interface{ Validate(r int) error }); ok {
		if err := v.Validate(r); err != nil {
			return nil, badRequestf("invalid score: %v", err)
		}
	}
	return sc, nil
}

// canonical renders the spec into the cache key with full float precision.
func (sp ScoreSpec) canonical() string {
	var sb strings.Builder
	sb.WriteString(sp.Name)
	if sp.P != 0 {
		fmt.Fprintf(&sb, "/p=%d", sp.P)
	}
	for _, w := range sp.Omega {
		sb.WriteByte('/')
		sb.WriteString(strconv.FormatFloat(w, 'g', -1, 64))
	}
	return sb.String()
}

// SelectSeedsRequest asks for a size-K seed set.
type SelectSeedsRequest struct {
	Dataset string    `json:"dataset"`
	Method  string    `json:"method"` // DM, RW, RS, IC, LT, GED-T, PR, RWR, DC
	Score   ScoreSpec `json:"score"`
	K       int       `json:"k"`
	Horizon int       `json:"horizon"`
	Target  int       `json:"target"`
	Seed    int64     `json:"seed,omitempty"`
	// Theta pins the RS sketch count; 0 uses the matching index artifact's
	// θ when one exists, falling back to the heuristic search.
	Theta int `json:"theta,omitempty"`
	// Parallelism overrides the service-wide engine worker knob for this
	// query (0 = service default). It never changes the response.
	Parallelism int `json:"parallelism,omitempty"`
	// Explain attaches the stage spans and cost-counter deltas to the
	// response. It never changes the result fields and is excluded from
	// the cache key.
	Explain bool `json:"explain,omitempty"`
	// TimeoutMs overrides the service-wide query timeout for this request
	// (0 keeps the default). Like Parallelism it never changes the answer
	// and is excluded from the cache key.
	TimeoutMs int `json:"timeoutMs,omitempty"`
	// MinEpoch blocks the query until the dataset's visible epoch reaches
	// this value (read-your-writes with async updates: pass the epoch an
	// accepted update promised). The wait is bounded by the query deadline.
	// Zero reads the current snapshot. Excluded from the cache key — the
	// answer depends only on the snapshot served.
	MinEpoch int64 `json:"minEpoch,omitempty"`
}

// SelectSeedsResponse reports the selected seeds and their exact score.
type SelectSeedsResponse struct {
	Seeds      []int32 `json:"seeds"`
	ExactValue float64 `json:"exactValue"`
	Method     string  `json:"method"`
	// FromIndex reports whether a precomputed artifact served the query.
	FromIndex bool `json:"fromIndex"`
	// Epoch is the dataset version the answer was computed at.
	Epoch int64 `json:"epoch"`
	// Cached reports whether the response came from the LRU cache.
	Cached    bool    `json:"cached"`
	ElapsedMs float64 `json:"elapsedMs"`
	// Explain is present only when the request asked for it; always the
	// last field so the result bytes are unchanged when absent.
	Explain *ExplainBlock `json:"explain,omitempty"`

	// rounds retains the per-greedy-round cost breakdown from the compute
	// that produced this value (RW/RS paths). Unexported: it rides the
	// cached value so explain works on cache hits, without ever appearing
	// in the serialized result.
	rounds []walks.RoundCost
}

// EvaluateRequest asks for the exact score of a seed set.
type EvaluateRequest struct {
	Dataset     string    `json:"dataset"`
	Score       ScoreSpec `json:"score"`
	Horizon     int       `json:"horizon"`
	Target      int       `json:"target"`
	Seeds       []int32   `json:"seeds"`
	Parallelism int       `json:"parallelism,omitempty"`
	// Explain attaches the stage spans and cost-counter deltas.
	Explain bool `json:"explain,omitempty"`
	// TimeoutMs overrides the service-wide query timeout (0 = default).
	TimeoutMs int `json:"timeoutMs,omitempty"`
	// MinEpoch waits for the dataset to reach this epoch before answering
	// (read-your-writes; see SelectSeedsRequest.MinEpoch).
	MinEpoch int64 `json:"minEpoch,omitempty"`
}

// EvaluateResponse reports an exact score.
type EvaluateResponse struct {
	Value     float64       `json:"value"`
	Epoch     int64         `json:"epoch"`
	Cached    bool          `json:"cached"`
	ElapsedMs float64       `json:"elapsedMs"`
	Explain   *ExplainBlock `json:"explain,omitempty"`
}

// WinsResponse reports the FJ-Vote-Win predicate for a seed set.
type WinsResponse struct {
	Wins      bool          `json:"wins"`
	Epoch     int64         `json:"epoch"`
	Cached    bool          `json:"cached"`
	ElapsedMs float64       `json:"elapsedMs"`
	Explain   *ExplainBlock `json:"explain,omitempty"`
}

// MinSeedsRequest asks for the smallest winning seed set (Problem 2).
type MinSeedsRequest struct {
	Dataset     string    `json:"dataset"`
	Method      string    `json:"method"` // DM, RW, RS
	Score       ScoreSpec `json:"score"`
	Horizon     int       `json:"horizon"`
	Target      int       `json:"target"`
	Seed        int64     `json:"seed,omitempty"`
	Theta       int       `json:"theta,omitempty"`
	Parallelism int       `json:"parallelism,omitempty"`
	// Explain attaches the stage spans and cost-counter deltas.
	Explain bool `json:"explain,omitempty"`
	// TimeoutMs overrides the service-wide query timeout (0 = default).
	TimeoutMs int `json:"timeoutMs,omitempty"`
	// MinEpoch waits for the dataset to reach this epoch before answering
	// (read-your-writes; see SelectSeedsRequest.MinEpoch).
	MinEpoch int64 `json:"minEpoch,omitempty"`
}

// MinSeedsResponse reports the minimum winning seed set; CanWin is false
// when no seed set makes the target the strict winner.
type MinSeedsResponse struct {
	CanWin    bool          `json:"canWin"`
	K         int           `json:"k"`
	Seeds     []int32       `json:"seeds"`
	Epoch     int64         `json:"epoch"`
	Cached    bool          `json:"cached"`
	ElapsedMs float64       `json:"elapsedMs"`
	Explain   *ExplainBlock `json:"explain,omitempty"`
}

// validCommon checks the fields shared by every query shape. The target /
// horizon bounds are the same core.ValidateTargetHorizon the commands
// apply, so HTTP and CLI entry points reject exactly the same inputs (here
// as a typed bad_request, there as exit 2 + usage).
func (s *Service) validCommon(ds *Dataset, target, horizon, parallelism, timeoutMs int) *Error {
	if err := core.ValidateTargetHorizon(target, horizon, ds.sys.R()); err != nil {
		return badRequestf("%v", err)
	}
	if parallelism < 0 {
		return badRequestf("parallelism must be >= 0, got %d", parallelism)
	}
	if timeoutMs < 0 {
		return badRequestf("timeoutMs must be >= 0, got %d", timeoutMs)
	}
	return nil
}

func (s *Service) workers(reqParallelism int) int {
	if reqParallelism > 0 {
		return reqParallelism
	}
	return s.cfg.Parallelism
}

// reqContext derives the per-request context: the request's timeoutMs
// overrides Config.QueryTimeout; neither set leaves the caller's deadline
// (if any) in charge. The returned cancel must always be called.
func (s *Service) reqContext(ctx context.Context, timeoutMs int) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	d := s.cfg.QueryTimeout
	if timeoutMs > 0 {
		d = time.Duration(timeoutMs) * time.Millisecond
	}
	if d > 0 {
		return context.WithTimeout(ctx, d)
	}
	return context.WithCancel(ctx)
}

// cachedQuery is the shared memoize-coalesce-compute skeleton, and the
// query path's instrumentation point: it traces the cache-lookup /
// singleflight-wait / selection stages on a per-request span, records the
// endpoint × dataset × score latency histogram, and offers the finished
// span to the slow-query log. Callers stamp per-delivery fields (Cached,
// ElapsedMs, Explain) onto a copy of the shared response value; the
// returned span is finished and carries the cost-counter delta of the
// compute when this call led it.
//
// Request-ctx contract: the cache lookup always runs (a hit answers even a
// shedding or deadline-tight daemon); on a miss the computation is
// detached from ctx — ctx expiring makes this caller return its typed
// error promptly while the compute keeps serving the remaining coalesced
// waiters, and only when every waiter is gone is the compute cancelled.
// Admission control gates the compute inside the detached closure, so a
// slot is never consumed by a request that already gave up.
func (s *Service) cachedQuery(ctx context.Context, endpoint string, ds *Dataset, score, key string, compute func(ctx context.Context) (any, error)) (any, bool, *obs.Span, *Error) {
	span := obs.NewSpan(endpoint)
	s.requests.Add(1)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	lookup := span.StartChild("cache-lookup")
	v, ok := s.cache.Get(key)
	lookup.End()
	if ok {
		s.cacheHits.Add(1)
		s.tel.observe(span, endpoint, ds.name, score, ds.epoch, true, "")
		return v, true, span, nil
	}
	s.cacheMisses.Add(1)
	doStart := time.Now()
	out, shared, werr := s.flight.Do(ctx, key, func(cctx context.Context) *computeOutcome {
		if err := s.adm.acquire(cctx); err != nil {
			return &computeOutcome{err: err}
		}
		defer s.adm.release()
		if hook := s.cfg.computeContext; hook != nil {
			cctx = hook(cctx)
		}
		// Only the flight leader's goroutine runs this closure; the
		// selection time and cost delta ride the outcome so the leading
		// caller's span adopts them without racing the detached compute.
		// The cost delta brackets the compute: the counters are
		// process-global, so overlapping queries can bleed into each
		// other's deltas, but on an idle daemon the delta is exactly this
		// query's work (the explain-vs-/metrics reconciliation the smoke
		// test performs).
		s.computations.Add(1)
		before := obs.CaptureCosts()
		selStart := time.Now()
		v, err := compute(cctx)
		o := &computeOutcome{
			val:   v,
			err:   err,
			selNs: time.Since(selStart).Nanoseconds(),
			cost:  obs.CaptureCosts().Delta(before),
		}
		if err == nil {
			s.cache.Put(key, v)
		}
		return o
	})
	if shared {
		s.coalesced.Add(1)
		span.Add("singleflight-wait", time.Since(doStart))
	}
	err := werr
	if err == nil {
		if !shared {
			span.Children = append(span.Children, &obs.Span{Name: "selection", DurNs: out.selNs})
			span.Cost = out.cost
		}
		err = out.err
	}
	if err != nil {
		serr := asError(err)
		switch serr.Code {
		case CodeOverloaded:
			s.shed.Add(1)
		case CodeDeadlineExceeded:
			s.timeouts.Add(1)
		case CodeCanceled:
			s.canceledReqs.Add(1)
		}
		s.errorCount.Add(1)
		s.tel.observe(span, endpoint, ds.name, score, ds.epoch, false, string(serr.Code))
		return nil, false, span, serr
	}
	s.tel.observe(span, endpoint, ds.name, score, ds.epoch, shared, "")
	return out.val, shared, span, nil
}

func seedsKey(seeds []int32) string {
	sorted := append([]int32(nil), seeds...)
	slices.Sort(sorted)
	var sb strings.Builder
	for i, v := range sorted {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", v)
	}
	return sb.String()
}

// SelectSeeds answers a select-seeds query, preferring precomputed index
// artifacts when the request parameters match one.
func (s *Service) SelectSeeds(req *SelectSeedsRequest) (*SelectSeedsResponse, *Error) {
	return s.SelectSeedsCtx(context.Background(), req)
}

// SelectSeedsCtx is SelectSeeds bounded by ctx (plus the configured query
// timeout): when the deadline expires or the caller cancels, it returns a
// typed deadline_exceeded / canceled error promptly — the computation is
// abandoned at its next shard or greedy-round boundary, no partial state
// is cached or memoized, and an immediate retry of the same query is
// byte-identical to a never-cancelled run.
func (s *Service) SelectSeedsCtx(ctx context.Context, req *SelectSeedsRequest) (*SelectSeedsResponse, *Error) {
	start := time.Now()
	// The request context is derived before the dataset fetch so a
	// minEpoch wait is bounded by the same deadline as the compute.
	ctx, cancel := s.reqContext(ctx, req.TimeoutMs)
	defer cancel()
	ds, serr := s.datasetAtEpoch(ctx, req.Dataset, req.MinEpoch)
	if serr != nil {
		return nil, serr
	}
	if serr := s.validCommon(ds, req.Target, req.Horizon, req.Parallelism, req.TimeoutMs); serr != nil {
		return nil, serr
	}
	if req.K < 1 || req.K > ds.sys.N() {
		return nil, badRequestf("need 1 <= k <= %d, got k=%d", ds.sys.N(), req.K)
	}
	if req.Theta < 0 {
		return nil, badRequestf("theta must be >= 0, got %d", req.Theta)
	}
	score, serr := req.Score.build(ds.sys.R())
	if serr != nil {
		return nil, serr
	}
	method := req.Method
	known := false
	for _, m := range []string{"DM", "RW", "RS", "IC", "LT", "GED-T", "PR", "RWR", "DC"} {
		if method == m {
			known = true
			break
		}
	}
	if !known {
		return nil, badRequestf("unknown method %q", method)
	}
	// Resolve θ before keying the cache so an explicit θ and an omitted one
	// that resolves to the same artifact share an entry.
	theta := req.Theta
	if method == "RS" && theta == 0 {
		theta = ds.defaultSketchTheta(req.Target, req.Horizon, req.Seed)
	}
	// The epoch scopes cache entries per dataset version: an update bumps
	// it, making every pre-update entry unreachable (it then ages out of
	// the LRU) without a global cache flush.
	key := fmt.Sprintf("select|%s|e=%d|%s|%s|k=%d|t=%d|q=%d|seed=%d|theta=%d",
		req.Dataset, ds.epoch, method, req.Score.canonical(), req.K, req.Horizon, req.Target, req.Seed, theta)
	v, cached, span, serr := s.cachedQuery(ctx, endpointSelectSeeds, ds, req.Score.Name, key, func(cctx context.Context) (any, error) {
		return s.computeSelect(cctx, ds, req, score, theta, s.workers(req.Parallelism))
	})
	if serr != nil {
		return nil, serr
	}
	resp := *v.(*SelectSeedsResponse)
	resp.Cached = cached
	resp.ElapsedMs = float64(time.Since(start).Microseconds()) / 1000
	if req.Explain {
		resp.Explain = explainBlock(span, resp.rounds)
	}
	return &resp, nil
}

// computeSelect runs a selection under ctx. Cancellation mid-greedy is
// safe for determinism: the RW/RS paths run on clones of the pristine
// artifact sets, the IM paths treat the cached RR collection as read-only,
// and the competitor memo only ever stores complete matrices — so an
// abandoned run leaves nothing behind and a retry recomputes identically.
func (s *Service) computeSelect(ctx context.Context, ds *Dataset, req *SelectSeedsRequest, score voting.Score, theta, par int) (*SelectSeedsResponse, error) {
	prob := &core.Problem{Sys: ds.sys, Target: req.Target, Horizon: req.Horizon, K: req.K, Score: score, Ctx: ctx}
	var seeds []int32
	var rounds []walks.RoundCost
	var err error
	fromIndex := false
	switch req.Method {
	case "DM":
		seeds, _, err = core.SelectSeedsDM(prob, par)
	case "RW":
		lambda, lamErr := rwalk.CumulativeLambda(rwalk.Config{})
		if lamErr != nil {
			return nil, lamErr
		}
		art := ds.walksFor(req.Target, req.Horizon, lambda, req.Seed)
		if _, cumulative := score.(voting.Cumulative); cumulative && art != nil {
			comp, cerr := ds.competitors(ctx, req.Target, req.Horizon, par)
			if cerr != nil {
				return nil, cerr
			}
			var res *rwalk.Result
			if res, err = rwalk.SelectOnSet(prob, art.set.Clone(), comp, par); err == nil {
				seeds, rounds = res.Seeds, res.Rounds
				fromIndex = true
			}
		} else {
			var res *rwalk.Result
			if res, err = rwalk.Select(prob, rwalk.Config{Seed: req.Seed, Parallelism: par}); err == nil {
				seeds, rounds = res.Seeds, res.Rounds
			}
		}
	case "RS":
		switch art := ds.sketchFor(req.Target, req.Horizon, theta, req.Seed); {
		case theta > 0 && art != nil:
			comp, cerr := ds.competitors(ctx, req.Target, req.Horizon, par)
			if cerr != nil {
				return nil, cerr
			}
			var res *sketch.Result
			if res, err = sketch.SelectOnSet(prob, art.set.Clone(), theta, comp, par); err == nil {
				seeds, rounds = res.Seeds, res.Rounds
				fromIndex = true
			}
		default:
			var res *sketch.Result
			if res, err = sketch.Select(prob, sketch.Config{FixedTheta: theta, Seed: req.Seed, Parallelism: par}); err == nil {
				seeds, rounds = res.Seeds, res.Rounds
			}
		}
	default: // the baselines
		cfg := baselines.Config{Parallelism: par}
		cfg.IMM.Seed = req.Seed
		model, isIM := im.IC, false
		switch req.Method {
		case "IC":
			model, isIM = im.IC, true
		case "LT":
			model, isIM = im.LT, true
		}
		if isIM {
			if col := ds.rrFor(model, req.Target, req.Seed); col != nil {
				cfg.RRCache = col
				fromIndex = true
			}
		}
		seeds, err = baselines.Select(baselines.Method(req.Method), prob, cfg)
	}
	if err != nil {
		return nil, err
	}
	exact, err := core.EvaluateExactCtx(ctx, ds.sys, req.Target, req.Horizon, score, seeds, par)
	if err != nil {
		return nil, err
	}
	return &SelectSeedsResponse{
		Seeds:      seeds,
		ExactValue: exact,
		Method:     req.Method,
		FromIndex:  fromIndex,
		Epoch:      ds.epoch,
		rounds:     rounds,
	}, nil
}

// Evaluate answers an exact-score query.
func (s *Service) Evaluate(req *EvaluateRequest) (*EvaluateResponse, *Error) {
	return s.EvaluateCtx(context.Background(), req)
}

// EvaluateCtx is Evaluate bounded by ctx plus the configured query timeout.
func (s *Service) EvaluateCtx(ctx context.Context, req *EvaluateRequest) (*EvaluateResponse, *Error) {
	start := time.Now()
	ctx, cancel := s.reqContext(ctx, req.TimeoutMs)
	defer cancel()
	ds, score, serr := s.evalCommon(ctx, req)
	if serr != nil {
		return nil, serr
	}
	key := fmt.Sprintf("eval|%s|e=%d|%s|t=%d|q=%d|seeds=%s",
		req.Dataset, ds.epoch, req.Score.canonical(), req.Horizon, req.Target, seedsKey(req.Seeds))
	v, cached, span, serr := s.cachedQuery(ctx, endpointEvaluate, ds, req.Score.Name, key, func(cctx context.Context) (any, error) {
		val, err := core.EvaluateExactCtx(cctx, ds.sys, req.Target, req.Horizon, score, req.Seeds, s.workers(req.Parallelism))
		if err != nil {
			return nil, err
		}
		return &EvaluateResponse{Value: val, Epoch: ds.epoch}, nil
	})
	if serr != nil {
		return nil, serr
	}
	resp := *v.(*EvaluateResponse)
	resp.Cached = cached
	resp.ElapsedMs = float64(time.Since(start).Microseconds()) / 1000
	if req.Explain {
		resp.Explain = explainBlock(span, nil)
	}
	return &resp, nil
}

// Wins answers the FJ-Vote-Win predicate for a seed set.
func (s *Service) Wins(req *EvaluateRequest) (*WinsResponse, *Error) {
	return s.WinsCtx(context.Background(), req)
}

// WinsCtx is Wins bounded by ctx plus the configured query timeout.
func (s *Service) WinsCtx(ctx context.Context, req *EvaluateRequest) (*WinsResponse, *Error) {
	start := time.Now()
	ctx, cancel := s.reqContext(ctx, req.TimeoutMs)
	defer cancel()
	ds, score, serr := s.evalCommon(ctx, req)
	if serr != nil {
		return nil, serr
	}
	key := fmt.Sprintf("wins|%s|e=%d|%s|t=%d|q=%d|seeds=%s",
		req.Dataset, ds.epoch, req.Score.canonical(), req.Horizon, req.Target, seedsKey(req.Seeds))
	v, cached, span, serr := s.cachedQuery(ctx, endpointWins, ds, req.Score.Name, key, func(cctx context.Context) (any, error) {
		if err := cctx.Err(); err != nil {
			return nil, err
		}
		ok, err := core.Wins(ds.sys, req.Target, req.Horizon, score, req.Seeds)
		if err != nil {
			return nil, err
		}
		return &WinsResponse{Wins: ok, Epoch: ds.epoch}, nil
	})
	if serr != nil {
		return nil, serr
	}
	resp := *v.(*WinsResponse)
	resp.Cached = cached
	resp.ElapsedMs = float64(time.Since(start).Microseconds()) / 1000
	if req.Explain {
		resp.Explain = explainBlock(span, nil)
	}
	return &resp, nil
}

func (s *Service) evalCommon(ctx context.Context, req *EvaluateRequest) (*Dataset, voting.Score, *Error) {
	ds, serr := s.datasetAtEpoch(ctx, req.Dataset, req.MinEpoch)
	if serr != nil {
		return nil, nil, serr
	}
	if serr := s.validCommon(ds, req.Target, req.Horizon, req.Parallelism, req.TimeoutMs); serr != nil {
		return nil, nil, serr
	}
	for i, v := range req.Seeds {
		if v < 0 || int(v) >= ds.sys.N() {
			return nil, nil, badRequestf("seeds[%d]=%d out of range [0,%d)", i, v, ds.sys.N())
		}
	}
	score, serr := req.Score.build(ds.sys.R())
	if serr != nil {
		return nil, nil, serr
	}
	return ds, score, nil
}

// MinSeedsToWin answers a Problem-2 query: the smallest seed set with which
// the target strictly wins.
func (s *Service) MinSeedsToWin(req *MinSeedsRequest) (*MinSeedsResponse, *Error) {
	return s.MinSeedsToWinCtx(context.Background(), req)
}

// MinSeedsToWinCtx is MinSeedsToWin bounded by ctx plus the configured
// query timeout; cancellation is polled between probes and inside each
// probe's greedy rounds.
func (s *Service) MinSeedsToWinCtx(ctx context.Context, req *MinSeedsRequest) (*MinSeedsResponse, *Error) {
	start := time.Now()
	ctx, cancel := s.reqContext(ctx, req.TimeoutMs)
	defer cancel()
	ds, serr := s.datasetAtEpoch(ctx, req.Dataset, req.MinEpoch)
	if serr != nil {
		return nil, serr
	}
	if serr := s.validCommon(ds, req.Target, req.Horizon, req.Parallelism, req.TimeoutMs); serr != nil {
		return nil, serr
	}
	if req.Theta < 0 {
		return nil, badRequestf("theta must be >= 0, got %d", req.Theta)
	}
	score, serr := req.Score.build(ds.sys.R())
	if serr != nil {
		return nil, serr
	}
	if req.Method != "DM" && req.Method != "RW" && req.Method != "RS" {
		return nil, badRequestf("min-seeds-to-win supports DM, RW, RS; got %q", req.Method)
	}
	key := fmt.Sprintf("minwin|%s|e=%d|%s|%s|t=%d|q=%d|seed=%d|theta=%d",
		req.Dataset, ds.epoch, req.Method, req.Score.canonical(), req.Horizon, req.Target, req.Seed, req.Theta)
	v, cached, span, serr := s.cachedQuery(ctx, endpointMinSeeds, ds, req.Score.Name, key, func(cctx context.Context) (any, error) {
		par := s.workers(req.Parallelism)
		base := core.Problem{Sys: ds.sys, Target: req.Target, Horizon: req.Horizon, K: 1, Score: score, Ctx: cctx}
		var sel core.SeedSelector
		switch req.Method {
		case "DM":
			sel = core.DMSelectorCtx(cctx, ds.sys, req.Target, req.Horizon, score, par)
		case "RW":
			sel = rwalk.Selector(base, rwalk.Config{Seed: req.Seed, Parallelism: par})
		case "RS":
			sel = sketch.Selector(base, sketch.Config{FixedTheta: req.Theta, Seed: req.Seed, Parallelism: par})
		}
		seeds, err := core.MinSeedsToWinCtx(cctx, ds.sys, req.Target, req.Horizon, score, sel)
		if err == core.ErrCannotWin {
			return &MinSeedsResponse{CanWin: false, Epoch: ds.epoch}, nil
		}
		if err != nil {
			return nil, err
		}
		return &MinSeedsResponse{CanWin: true, K: len(seeds), Seeds: seeds, Epoch: ds.epoch}, nil
	})
	if serr != nil {
		return nil, serr
	}
	resp := *v.(*MinSeedsResponse)
	resp.Cached = cached
	resp.ElapsedMs = float64(time.Since(start).Microseconds()) / 1000
	if req.Explain {
		resp.Explain = explainBlock(span, nil)
	}
	return &resp, nil
}

// Stats is a point-in-time snapshot of the service counters.
//
// Consistency model: every counter is read exactly once with an atomic
// load, so each value is exact at its own read instant; the snapshot as a
// whole is not one instant (no global lock on the hot path). The loads
// are ordered opposite to the increments, which preserves the natural
// invariants mid-request: Computations+Coalesced <= CacheMisses and
// CacheHits+CacheMisses <= Requests always hold in a snapshot.
type Stats struct {
	UptimeSeconds  float64 `json:"uptimeSeconds"`
	Requests       int64   `json:"requests"`
	CacheHits      int64   `json:"cacheHits"`
	CacheMisses    int64   `json:"cacheMisses"`
	CacheHitRate   float64 `json:"cacheHitRate"`
	CacheEntries   int     `json:"cacheEntries"`
	CacheCapacity  int     `json:"cacheCapacity"`
	CacheEvictions int64   `json:"cacheEvictions"`
	Coalesced      int64   `json:"coalesced"`
	Computations   int64   `json:"computations"`
	Errors         int64   `json:"errors"`
	Inflight       int64   `json:"inflight"`
	Updates        int64   `json:"updates"`
	// UpdateQueueDepth is the total queued-but-unapplied async update
	// batches; CoalescedOps counts ops the async applier never had to
	// apply because batch merging elided them.
	UpdateQueueDepth int64 `json:"updateQueueDepth"`
	CoalescedOps     int64 `json:"coalescedOps"`
	// Shed / Timeouts / Canceled / Panics are the failure-mode counters:
	// computations shed by admission control, queries past their deadline,
	// queries abandoned by the client, and handler panics converted to 500s.
	// The first three are included in Errors.
	Shed     int64 `json:"shed"`
	Timeouts int64 `json:"timeouts"`
	Canceled int64 `json:"canceled"`
	Panics   int64 `json:"panics"`
	// Endpoints summarizes the request-latency histograms per endpoint
	// (merged across datasets and scores); the full per-label histograms
	// are on /metrics.
	Endpoints map[string]EndpointStats `json:"endpoints,omitempty"`
	Datasets  []DatasetStats           `json:"datasets"`
}

// EndpointStats is the latency summary of one endpoint.
type EndpointStats struct {
	Count int64   `json:"count"`
	P50Ms float64 `json:"p50Ms"`
	P95Ms float64 `json:"p95Ms"`
	P99Ms float64 `json:"p99Ms"`
	MaxMs float64 `json:"maxMs"`
}

// DatasetStats describes one registered dataset and its index footprint.
type DatasetStats struct {
	Name            string `json:"name"`
	Epoch           int64  `json:"epoch"`
	Nodes           int    `json:"nodes"`
	Edges           int    `json:"edges"`
	Candidates      int    `json:"candidates"`
	SketchArtifacts int    `json:"sketchArtifacts"`
	WalkArtifacts   int    `json:"walkArtifacts"`
	RRArtifacts     int    `json:"rrArtifacts"`
	// IndexBytes = MappedBytes + HeapBytes: the artifact footprint, split
	// into bytes aliasing a read-only file mapping (shared, evictable page
	// cache) and bytes resident on the Go heap.
	IndexBytes  int64 `json:"indexBytes"`
	MappedBytes int64 `json:"mappedBytes"`
	HeapBytes   int64 `json:"heapBytes"`
	// UpdateLogDepth is the persisted update log's batch count INCLUDING
	// batches accepted but not yet applied (via Config.UpdateLogDepth when
	// serving an index file — compaction resets it), falling back to the
	// batches applied since the base index plus the queue depth.
	UpdateLogDepth int64 `json:"updateLogDepth"`
	// UpdateQueueDepth is the accepted-but-unapplied batch count for this
	// dataset's async pipeline (0 when updates are synchronous).
	UpdateQueueDepth int64 `json:"updateQueueDepth"`
}

// StatsSnapshot assembles the /stats payload.
//
// Each counter is loaded exactly once, in the reverse of the order the
// hot path increments them (cachedQuery bumps requests, then hit or
// miss, then computation or coalesced). Loading downstream counters
// first means a request that lands mid-snapshot can only make the
// upstream totals larger, never smaller — so the documented invariants
// (hits+misses <= requests, computations+coalesced <= misses) hold in
// every snapshot without a lock on the recording side.
func (s *Service) StatsSnapshot() Stats {
	shed := s.shed.Load()
	timeouts := s.timeouts.Load()
	canceled := s.canceledReqs.Load()
	panics := s.panics.Load()
	computations := s.computations.Load()
	coalesced := s.coalesced.Load()
	errorCount := s.errorCount.Load()
	hits := s.cacheHits.Load()
	misses := s.cacheMisses.Load()
	updates := s.updates.Load()
	inflight := s.inflight.Load()
	requests := s.requests.Load()
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	st := Stats{
		UptimeSeconds:  time.Since(s.start).Seconds(),
		Requests:       requests,
		CacheHits:      hits,
		CacheMisses:    misses,
		CacheHitRate:   hitRate,
		CacheEntries:   s.cache.Len(),
		CacheCapacity:  s.cfg.CacheSize,
		CacheEvictions: s.cache.Evictions(),
		Coalesced:      coalesced,
		Computations:   computations,
		Errors:         errorCount,
		Inflight:       inflight,
		Updates:        updates,
		Shed:           shed,
		Timeouts:       timeouts,
		Canceled:       canceled,
		Panics:         panics,
		Endpoints:      s.endpointSummaries(),
	}
	st.UpdateQueueDepth = int64(s.totalQueueDepth())
	st.CoalescedOps = s.coalescedOps.Load()
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, name := range sortedNames(s.ds) {
		ds := s.ds[name]
		d := DatasetStats{
			Name:            name,
			Epoch:           ds.epoch,
			Nodes:           ds.sys.N(),
			Edges:           ds.sys.Candidate(0).G.M(),
			Candidates:      ds.sys.R(),
			SketchArtifacts: len(ds.sketches),
			WalkArtifacts:   len(ds.walkSets),
			RRArtifacts:     len(ds.rrs),
		}
		for _, a := range ds.sketches {
			d.MappedBytes += a.set.MappedBytes()
			d.HeapBytes += a.set.HeapBytes()
		}
		for _, a := range ds.walkSets {
			d.MappedBytes += a.set.MappedBytes()
			d.HeapBytes += a.set.HeapBytes()
		}
		for _, a := range ds.rrs {
			d.MappedBytes += a.col.MappedBytes()
			d.HeapBytes += a.col.HeapBytes()
		}
		d.IndexBytes = d.MappedBytes + d.HeapBytes
		d.UpdateQueueDepth = int64(s.QueueDepth(name))
		if s.cfg.UpdateLogDepth != nil {
			// ovmd's hook already counts both the applied log and the WAL
			// tail, so queued batches are included.
			d.UpdateLogDepth = int64(s.cfg.UpdateLogDepth(name))
		} else {
			// Fallback: applied since the base index plus accepted-but-
			// unapplied — the depth a compaction would have to absorb.
			d.UpdateLogDepth = ds.epoch - ds.baseEpoch + d.UpdateQueueDepth
		}
		st.Datasets = append(st.Datasets, d)
	}
	return st
}

// Computations reports how many queries were actually computed (tests use
// it to prove singleflight coalescing).
func (s *Service) Computations() int64 { return s.computations.Load() }
