package service_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"ovm"
	"ovm/internal/datasets"
	"ovm/internal/serialize"
	"ovm/internal/service"
)

const (
	tdHorizon = 8
	tdTheta   = 512
	tdSeed    = int64(5)
	tdK       = 6
)

// testWorld builds the shared fixture: a small synthetic system plus a
// fully populated index for (target 0, horizon 8, seed 5).
func testWorld(t testing.TB) (*ovm.System, *serialize.Index) {
	t.Helper()
	d, err := datasets.YelpLike(datasets.Options{N: 120, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := service.BuildIndex(d.Sys, service.BuildOptions{
		Target:       0,
		Horizon:      tdHorizon,
		Seed:         tdSeed,
		SketchTheta:  tdTheta,
		IncludeWalks: true,
		RRSets:       300,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d.Sys, idx
}

func newTestService(t testing.TB, idx *serialize.Index) *service.Service {
	t.Helper()
	svc := service.New(service.Config{})
	if err := svc.AddIndex("world", idx); err != nil {
		t.Fatal(err)
	}
	return svc
}

func selectReq(method, score string, theta int) *service.SelectSeedsRequest {
	return &service.SelectSeedsRequest{
		Dataset: "world",
		Method:  method,
		Score:   service.ScoreSpec{Name: score},
		K:       tdK,
		Horizon: tdHorizon,
		Target:  0,
		Seed:    tdSeed,
		Theta:   theta,
	}
}

// TestIndexedMatchesDirectAcrossParallelism is the end-to-end determinism
// contract: a daemon serving loaded artifacts returns byte-identical seeds
// and scores to the direct ovm.SelectSeeds call, at every parallelism, for
// the RS (sketch artifact), RW (walk artifact), and IC (RR cache) paths.
func TestIndexedMatchesDirectAcrossParallelism(t *testing.T) {
	sys, idx := testWorld(t)

	// Round-trip the index through the binary format first: the daemon path
	// is build → write → read → serve.
	var buf bytes.Buffer
	if err := serialize.WriteIndex(&buf, idx); err != nil {
		t.Fatal(err)
	}
	loaded, err := serialize.ReadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	svc := newTestService(t, loaded)

	scoreOf := map[string]ovm.Score{
		"plurality":  ovm.Plurality(),
		"cumulative": ovm.Cumulative(),
	}
	cases := []struct {
		name   string
		method ovm.Method
		score  string
		direct func(par int) *ovm.SelectOptions
	}{
		{"RS/plurality", ovm.MethodRS, "plurality", func(par int) *ovm.SelectOptions {
			opts := &ovm.SelectOptions{Seed: tdSeed, Parallelism: par}
			opts.RS.FixedTheta = tdTheta
			return opts
		}},
		{"RW/cumulative", ovm.MethodRW, "cumulative", func(par int) *ovm.SelectOptions {
			return &ovm.SelectOptions{Seed: tdSeed, Parallelism: par}
		}},
		{"IC/plurality", ovm.MethodIC, "plurality", func(par int) *ovm.SelectOptions {
			return &ovm.SelectOptions{Seed: tdSeed, Parallelism: par}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prob := &ovm.Problem{Sys: sys, Target: 0, Horizon: tdHorizon, K: tdK, Score: scoreOf[tc.score]}
			var wantSeeds []int32
			var wantValue float64
			for i, par := range []int{1, 4, 0} {
				direct, err := ovm.SelectSeeds(prob, tc.method, tc.direct(par))
				if err != nil {
					t.Fatal(err)
				}
				req := selectReq(string(tc.method), tc.score, 0)
				req.Parallelism = par
				svc.ResetCache()
				got, serr := svc.SelectSeeds(req)
				if serr != nil {
					t.Fatal(serr)
				}
				if !got.FromIndex {
					t.Fatalf("par=%d: expected the loaded artifact to serve the query", par)
				}
				if !reflect.DeepEqual(got.Seeds, direct.Seeds) {
					t.Fatalf("par=%d: daemon seeds %v != direct %v", par, got.Seeds, direct.Seeds)
				}
				if got.ExactValue != direct.ExactValue {
					t.Fatalf("par=%d: daemon value %v != direct %v", par, got.ExactValue, direct.ExactValue)
				}
				if i == 0 {
					wantSeeds, wantValue = got.Seeds, got.ExactValue
				} else if !reflect.DeepEqual(got.Seeds, wantSeeds) || got.ExactValue != wantValue {
					t.Fatalf("par=%d: response differs across parallelism settings", par)
				}
			}
		})
	}
}

// TestRSThetaDefaultsToArtifact: omitting theta picks the indexed θ.
func TestRSThetaDefaultsToArtifact(t *testing.T) {
	_, idx := testWorld(t)
	svc := newTestService(t, idx)
	explicit, serr := svc.SelectSeeds(selectReq("RS", "plurality", tdTheta))
	if serr != nil {
		t.Fatal(serr)
	}
	omitted, serr := svc.SelectSeeds(selectReq("RS", "plurality", 0))
	if serr != nil {
		t.Fatal(serr)
	}
	if !reflect.DeepEqual(explicit.Seeds, omitted.Seeds) {
		t.Errorf("omitted-theta seeds %v != explicit %v", omitted.Seeds, explicit.Seeds)
	}
	if !omitted.Cached {
		t.Error("theta resolution should happen before cache keying (same entry)")
	}
}

// TestCachedVsFreshDeterminism: a cached response and a from-scratch
// response on a brand-new service are identical, and requests differing
// only in parallelism share one cache entry.
func TestCachedVsFreshDeterminism(t *testing.T) {
	_, idx := testWorld(t)
	svc := newTestService(t, idx)
	first, serr := svc.SelectSeeds(selectReq("RS", "copeland", tdTheta))
	if serr != nil {
		t.Fatal(serr)
	}
	if first.Cached {
		t.Fatal("first response must be computed")
	}
	repeat, serr := svc.SelectSeeds(selectReq("RS", "copeland", tdTheta))
	if serr != nil {
		t.Fatal(serr)
	}
	if !repeat.Cached {
		t.Error("identical repeat should come from the cache")
	}
	otherPar := selectReq("RS", "copeland", tdTheta)
	otherPar.Parallelism = 2
	viaOtherPar, serr := svc.SelectSeeds(otherPar)
	if serr != nil {
		t.Fatal(serr)
	}
	if !viaOtherPar.Cached {
		t.Error("parallelism must not be part of the cache key")
	}
	fresh, serr := newTestService(t, idx).SelectSeeds(selectReq("RS", "copeland", tdTheta))
	if serr != nil {
		t.Fatal(serr)
	}
	for _, got := range []*service.SelectSeedsResponse{repeat, viaOtherPar, fresh} {
		if !reflect.DeepEqual(got.Seeds, first.Seeds) || got.ExactValue != first.ExactValue {
			t.Errorf("response diverged: %v/%v vs %v/%v", got.Seeds, got.ExactValue, first.Seeds, first.ExactValue)
		}
	}
}

// TestSingleflightCoalescing: N identical concurrent requests trigger one
// computation; every caller receives the same response.
func TestSingleflightCoalescing(t *testing.T) {
	_, idx := testWorld(t)
	svc := newTestService(t, idx)
	const callers = 8
	var (
		start     = make(chan struct{})
		wg        sync.WaitGroup
		mu        sync.Mutex
		responses []*service.SelectSeedsResponse
	)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			// DM is the slowest method here, keeping every caller inside the
			// in-flight window of the first.
			resp, serr := svc.SelectSeeds(selectReq("DM", "plurality", 0))
			if serr != nil {
				t.Error(serr)
				return
			}
			mu.Lock()
			responses = append(responses, resp)
			mu.Unlock()
		}()
	}
	close(start)
	wg.Wait()
	if len(responses) != callers {
		t.Fatalf("got %d responses, want %d", len(responses), callers)
	}
	if got := svc.Computations(); got != 1 {
		t.Errorf("computations = %d, want 1 (singleflight + cache must coalesce)", got)
	}
	for _, r := range responses[1:] {
		if !reflect.DeepEqual(r.Seeds, responses[0].Seeds) || r.ExactValue != responses[0].ExactValue {
			t.Errorf("coalesced responses differ: %v vs %v", r, responses[0])
		}
	}
}

// TestServiceCacheEviction: a capacity-1 cache recomputes evicted entries.
func TestServiceCacheEviction(t *testing.T) {
	_, idx := testWorld(t)
	svc := service.New(service.Config{CacheSize: 1})
	if err := svc.AddIndex("world", idx); err != nil {
		t.Fatal(err)
	}
	if _, serr := svc.SelectSeeds(selectReq("RS", "plurality", tdTheta)); serr != nil {
		t.Fatal(serr)
	}
	if _, serr := svc.SelectSeeds(selectReq("RS", "cumulative", tdTheta)); serr != nil {
		t.Fatal(serr)
	}
	resp, serr := svc.SelectSeeds(selectReq("RS", "plurality", tdTheta))
	if serr != nil {
		t.Fatal(serr)
	}
	if resp.Cached {
		t.Error("evicted entry must be recomputed")
	}
	if got := svc.Computations(); got != 3 {
		t.Errorf("computations = %d, want 3", got)
	}
}

func TestEvaluateWinsAndMinSeeds(t *testing.T) {
	sys, idx := testWorld(t)
	svc := newTestService(t, idx)
	sel, serr := svc.SelectSeeds(selectReq("RS", "plurality", tdTheta))
	if serr != nil {
		t.Fatal(serr)
	}
	eval, serr := svc.Evaluate(&service.EvaluateRequest{
		Dataset: "world", Score: service.ScoreSpec{Name: "plurality"},
		Horizon: tdHorizon, Target: 0, Seeds: sel.Seeds,
	})
	if serr != nil {
		t.Fatal(serr)
	}
	direct, err := ovm.Evaluate(sys, 0, tdHorizon, ovm.Plurality(), sel.Seeds)
	if err != nil {
		t.Fatal(err)
	}
	if eval.Value != direct || eval.Value != sel.ExactValue {
		t.Errorf("evaluate %v, direct %v, select %v — all must agree", eval.Value, direct, sel.ExactValue)
	}
	wins, serr := svc.Wins(&service.EvaluateRequest{
		Dataset: "world", Score: service.ScoreSpec{Name: "plurality"},
		Horizon: tdHorizon, Target: 0, Seeds: sel.Seeds,
	})
	if serr != nil {
		t.Fatal(serr)
	}
	directWins, err := ovm.Wins(sys, 0, tdHorizon, ovm.Plurality(), sel.Seeds)
	if err != nil {
		t.Fatal(err)
	}
	if wins.Wins != directWins {
		t.Errorf("wins %v, direct %v", wins.Wins, directWins)
	}
	minReq := &service.MinSeedsRequest{
		Dataset: "world", Method: "DM", Score: service.ScoreSpec{Name: "cumulative"},
		Horizon: tdHorizon, Target: 0,
	}
	min, serr := svc.MinSeedsToWin(minReq)
	if serr != nil {
		t.Fatal(serr)
	}
	directMin, err := ovm.MinSeedsToWin(sys, 0, tdHorizon, ovm.Cumulative(), ovm.MethodDM, nil)
	if err != nil && err != ovm.ErrCannotWin {
		t.Fatal(err)
	}
	if err == ovm.ErrCannotWin {
		if min.CanWin {
			t.Error("daemon says winnable, library says not")
		}
	} else {
		if !min.CanWin || !reflect.DeepEqual(min.Seeds, directMin) {
			t.Errorf("min seeds %v (canWin=%v), direct %v", min.Seeds, min.CanWin, directMin)
		}
	}
}

func TestRequestValidation(t *testing.T) {
	_, idx := testWorld(t)
	svc := newTestService(t, idx)
	cases := []struct {
		name string
		mut  func(*service.SelectSeedsRequest)
		code service.ErrorCode
	}{
		{"unknown dataset", func(r *service.SelectSeedsRequest) { r.Dataset = "nope" }, service.CodeNotFound},
		{"unknown method", func(r *service.SelectSeedsRequest) { r.Method = "ZZ" }, service.CodeBadRequest},
		{"unknown score", func(r *service.SelectSeedsRequest) { r.Score.Name = "zz" }, service.CodeBadRequest},
		{"zero k", func(r *service.SelectSeedsRequest) { r.K = 0 }, service.CodeBadRequest},
		{"huge k", func(r *service.SelectSeedsRequest) { r.K = 1 << 20 }, service.CodeBadRequest},
		{"negative horizon", func(r *service.SelectSeedsRequest) { r.Horizon = -1 }, service.CodeBadRequest},
		{"bad target", func(r *service.SelectSeedsRequest) { r.Target = 99 }, service.CodeBadRequest},
		{"negative parallelism", func(r *service.SelectSeedsRequest) { r.Parallelism = -2 }, service.CodeBadRequest},
		{"negative theta", func(r *service.SelectSeedsRequest) { r.Theta = -1 }, service.CodeBadRequest},
		{"bad p-approval", func(r *service.SelectSeedsRequest) { r.Score = service.ScoreSpec{Name: "p-approval", P: -3} }, service.CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := selectReq("RS", "plurality", tdTheta)
			tc.mut(req)
			_, serr := svc.SelectSeeds(req)
			if serr == nil {
				t.Fatal("expected a validation error")
			}
			if serr.Code != tc.code {
				t.Errorf("code = %s, want %s (%s)", serr.Code, tc.code, serr.Message)
			}
		})
	}
}

// TestBoundsValidationAcrossEndpoints drives the shared target/horizon
// bounds (cliutil.ValidateTargetHorizon) through every query shape: each
// violation must come back as a typed bad_request regardless of endpoint.
func TestBoundsValidationAcrossEndpoints(t *testing.T) {
	sys, idx := testWorld(t)
	svc := newTestService(t, idx)
	bounds := []struct {
		name            string
		target, horizon int
	}{
		{"negative target", -1, tdHorizon},
		{"target at r", sys.R(), tdHorizon},
		{"target above r", sys.R() + 99, tdHorizon},
		{"negative horizon", 0, -1},
	}
	endpoints := []struct {
		name string
		call func(target, horizon int) *service.Error
	}{
		{"select-seeds", func(target, horizon int) *service.Error {
			req := selectReq("RS", "plurality", tdTheta)
			req.Target, req.Horizon = target, horizon
			_, serr := svc.SelectSeeds(req)
			return serr
		}},
		{"evaluate", func(target, horizon int) *service.Error {
			_, serr := svc.Evaluate(&service.EvaluateRequest{
				Dataset: "world", Score: service.ScoreSpec{Name: "plurality"},
				Target: target, Horizon: horizon,
			})
			return serr
		}},
		{"wins", func(target, horizon int) *service.Error {
			_, serr := svc.Wins(&service.EvaluateRequest{
				Dataset: "world", Score: service.ScoreSpec{Name: "plurality"},
				Target: target, Horizon: horizon,
			})
			return serr
		}},
		{"min-seeds-to-win", func(target, horizon int) *service.Error {
			_, serr := svc.MinSeedsToWin(&service.MinSeedsRequest{
				Dataset: "world", Method: "DM", Score: service.ScoreSpec{Name: "plurality"},
				Target: target, Horizon: horizon,
			})
			return serr
		}},
	}
	for _, ep := range endpoints {
		for _, tc := range bounds {
			t.Run(ep.name+"/"+tc.name, func(t *testing.T) {
				serr := ep.call(tc.target, tc.horizon)
				if serr == nil {
					t.Fatal("expected a validation error")
				}
				if serr.Code != service.CodeBadRequest {
					t.Errorf("code = %s, want %s (%s)", serr.Code, service.CodeBadRequest, serr.Message)
				}
			})
		}
	}
}

// TestHTTPEndpoints exercises the transport: JSON handling, typed error
// mapping, health, stats, and dataset listing.
func TestHTTPEndpoints(t *testing.T) {
	_, idx := testWorld(t)
	svc := newTestService(t, idx)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	post := func(path, body string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var payload map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
			t.Fatalf("%s: decoding response: %v", path, err)
		}
		return resp, payload
	}

	resp, payload := post("/v1/select-seeds",
		`{"dataset":"world","method":"RS","score":{"name":"plurality"},"k":6,"horizon":8,"seed":5,"theta":512}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("select-seeds status %d: %v", resp.StatusCode, payload)
	}
	if payload["fromIndex"] != true {
		t.Errorf("expected fromIndex=true, got %v", payload["fromIndex"])
	}
	seeds := payload["seeds"].([]any)
	if len(seeds) != 6 {
		t.Errorf("got %d seeds, want 6", len(seeds))
	}

	resp, payload = post("/v1/evaluate",
		`{"dataset":"world","score":{"name":"plurality"},"horizon":8,"target":0,"seeds":[1,2,3]}`)
	if resp.StatusCode != http.StatusOK || payload["value"] == nil {
		t.Errorf("evaluate status %d payload %v", resp.StatusCode, payload)
	}

	resp, payload = post("/v1/wins",
		`{"dataset":"world","score":{"name":"plurality"},"horizon":8,"target":0,"seeds":[1,2,3]}`)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("wins status %d payload %v", resp.StatusCode, payload)
	}

	resp, payload = post("/v1/select-seeds", `{"dataset":"missing","method":"RS","score":{"name":"plurality"},"k":3,"horizon":8}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown dataset status %d, want 404 (%v)", resp.StatusCode, payload)
	}
	resp, payload = post("/v1/select-seeds", `{"dataset":"world","method":"RS","score":{"name":"plurality"},"k":0,"horizon":8}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid k status %d, want 400 (%v)", resp.StatusCode, payload)
	}
	resp, payload = post("/v1/select-seeds", `{not json`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON status %d, want 400 (%v)", resp.StatusCode, payload)
	}
	resp, payload = post("/v1/select-seeds", `{"dataset":"world","unknownField":1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field status %d, want 400 (%v)", resp.StatusCode, payload)
	}

	health, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health.Body.Close()
	if health.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", health.StatusCode)
	}

	statsResp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats service.Stats
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	statsResp.Body.Close()
	if stats.Requests < 3 || len(stats.Datasets) != 1 || stats.Datasets[0].SketchArtifacts != 1 {
		t.Errorf("stats look wrong: %+v", stats)
	}

	dsResp, err := http.Get(ts.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	var ds map[string][]string
	if err := json.NewDecoder(dsResp.Body).Decode(&ds); err != nil {
		t.Fatal(err)
	}
	dsResp.Body.Close()
	if !reflect.DeepEqual(ds["datasets"], []string{"world"}) {
		t.Errorf("datasets = %v, want [world]", ds["datasets"])
	}
}
