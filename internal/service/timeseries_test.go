package service_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ovm/internal/obs"
	"ovm/internal/service"
)

// TestTimeSeriesEndpoint drives traffic, takes explicit samples (no
// background sampler in tests), and checks /debug/timeseries serves the
// ring with both the service counters and the registry cost counters,
// and that the window parameter filters and validates.
func TestTimeSeriesEndpoint(t *testing.T) {
	_, idx := testWorld(t)
	svc := service.New(service.Config{})
	defer svc.Close()
	if err := svc.AddIndex("world", idx); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	svc.TimeSeries().Sample(time.Now().Add(-time.Hour)) // stale point, cut by the window
	postJSON(t, ts.URL+"/v1/select-seeds", selectReq("RS", "plurality", tdTheta)).Body.Close()
	svc.TimeSeries().Sample(time.Now())

	get := func(url string) []obs.TSPoint {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", url, resp.StatusCode)
		}
		var out struct {
			Points []obs.TSPoint `json:"points"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.Points
	}

	all := get(ts.URL + "/debug/timeseries")
	if len(all) != 2 {
		t.Fatalf("retained %d points, want 2", len(all))
	}
	recent := get(ts.URL + "/debug/timeseries?window=10m")
	if len(recent) != 1 {
		t.Fatalf("10m window kept %d points, want 1", len(recent))
	}
	last := recent[0].Values
	if last["ovmd_requests_total"] != 1 {
		t.Errorf("sampled ovmd_requests_total = %v, want 1", last["ovmd_requests_total"])
	}
	if _, ok := last["ovm_walks_truncated_total"]; !ok {
		t.Error("sample missing the registry cost counters")
	}

	resp, err := http.Get(ts.URL + "/debug/timeseries?window=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus window returned %d, want 400", resp.StatusCode)
	}
}

// TestTimeSeriesSamplerLifecycle: a positive interval starts the
// background sampler (one immediate sample), and Close stops it.
func TestTimeSeriesSamplerLifecycle(t *testing.T) {
	svc := service.New(service.Config{TimeSeriesInterval: time.Hour, TimeSeriesCapacity: 16})
	pts := svc.TimeSeries().Window(0, time.Now())
	if len(pts) != 1 {
		t.Fatalf("sampler took %d immediate samples, want 1", len(pts))
	}
	svc.Close()
	svc.Close() // idempotent
}
