package service

import (
	"context"
	"time"

	"ovm/internal/core"
	"ovm/internal/dynamic"
	"ovm/internal/obs"
	"ovm/internal/rwalk"
	"ovm/internal/serialize"
	"ovm/internal/sketch"
	"ovm/internal/voting"
)

// maxUpdateOps bounds a single update batch's op count: together with the
// HTTP layer's byte bound (maxBodyBytes) it keeps one request from holding
// the update lock — and the incremental repair — for an unbounded time.
// Larger mutations must be split into multiple batches (each is atomic and
// bumps the epoch by one).
const maxUpdateOps = 65536

// UpdateRequest applies one atomic mutation batch to a dataset.
type UpdateRequest struct {
	Dataset string `json:"dataset"`
	// Ops is the batch: edge inserts/deletes/re-weights and internal
	// opinion / stubbornness updates, applied together and renormalized
	// once per touched destination.
	Ops dynamic.Batch `json:"ops"`
}

// UpdateResponse reports the post-update dataset version and how much of
// the precomputed index the incremental repair had to regenerate. An
// async-accepted response carries Accepted=true, the PROMISED epoch, and
// the queue depth; the repair stats stay zero (the repair has not run
// yet — pass Epoch as a query's minEpoch to read your write).
type UpdateResponse struct {
	// Epoch is the dataset version after this batch; every query response
	// carries the epoch it was computed at. With async updates this is the
	// epoch the batch WILL become visible at.
	Epoch int64 `json:"epoch"`
	// Accepted is true when the batch was durably queued for background
	// application rather than applied inline.
	Accepted bool `json:"accepted,omitempty"`
	// QueueDepth is the accepted-but-unapplied batch count after this
	// enqueue (async only).
	QueueDepth int `json:"queueDepth,omitempty"`
	// NodesTouched counts the distinct nodes named by the batch's change
	// set (mutated in-neighborhoods, stubbornness, or opinions).
	NodesTouched int `json:"nodesTouched"`
	// WalksInvalidated / WalksTotal cover the sketch and RW walk
	// artifacts; RRSetsInvalidated / RRSetsTotal cover the RR collections.
	WalksInvalidated  int     `json:"walksInvalidated"`
	WalksTotal        int     `json:"walksTotal"`
	RRSetsInvalidated int     `json:"rrSetsInvalidated"`
	RRSetsTotal       int     `json:"rrSetsTotal"`
	ElapsedMs         float64 `json:"elapsedMs"`
}

// ApplyUpdates applies one mutation batch to a registered dataset: the
// system is delta-applied and every precomputed artifact is incrementally
// repaired (regenerating only invalidated samples, each from its original
// substream), so post-update answers are byte-identical to a full rebuild
// of the mutated system at the same seed.
//
// The swap is atomic and versioned: in-flight queries finish on the
// pre-update dataset (and report its epoch); queries arriving after the
// swap see the new epoch. Response-cache entries are scoped per (dataset,
// epoch) — the epoch is part of every cache key — so stale answers can
// never be served after an update. Concurrent ApplyUpdates calls are
// serialized; each successful batch bumps the epoch by exactly one. When a
// persistence hook is configured (Config.OnUpdate), the batch is persisted
// before the swap, so a crash never leaves the daemon ahead of its log.
// Update is the transport-facing dispatcher: with Config.AsyncUpdates it
// enqueues (EnqueueUpdates) and returns the accepted/target-epoch
// response immediately; otherwise it applies inline (ApplyUpdates).
func (s *Service) Update(req *UpdateRequest) (*UpdateResponse, *Error) {
	if s.cfg.AsyncUpdates {
		return s.EnqueueUpdates(req)
	}
	return s.ApplyUpdates(req)
}

func (s *Service) ApplyUpdates(req *UpdateRequest) (*UpdateResponse, *Error) {
	if s.cfg.AsyncUpdates {
		// Preserve the blocking contract on an async service: enqueue, then
		// wait for the promised epoch to become visible. The repair stats
		// are not reconstructed — callers that need them run synchronously.
		resp, serr := s.EnqueueUpdates(req)
		if serr != nil {
			return nil, serr
		}
		ctx, cancel := s.reqContext(context.Background(), 0)
		defer cancel()
		if _, serr := s.awaitEpoch(ctx, req.Dataset, resp.Epoch); serr != nil {
			return nil, serr
		}
		return resp, nil
	}
	start := time.Now()
	span := obs.NewSpan(endpointUpdates)
	if len(req.Ops) > maxUpdateOps {
		serr := badRequestf("update batch has %d ops, limit is %d: split the mutation into multiple batches", len(req.Ops), maxUpdateOps)
		s.tel.observe(span, endpointUpdates, req.Dataset, "", 0, false, string(serr.Code))
		return nil, serr
	}
	s.updMu.Lock()
	defer s.updMu.Unlock()
	ds, serr := s.dataset(req.Dataset)
	if serr != nil {
		s.tel.observe(span, endpointUpdates, req.Dataset, "", 0, false, string(serr.Code))
		return nil, serr
	}
	next, resp, serr := s.repairDataset(nil, ds, req.Ops, 1, span)
	if serr != nil {
		s.errorCount.Add(1)
		s.tel.observe(span, endpointUpdates, ds.name, "", ds.epoch, false, string(serr.Code))
		return nil, serr
	}
	if s.cfg.OnUpdate != nil {
		persist := time.Now()
		err := s.cfg.OnUpdate(req.Dataset, []dynamic.Batch{req.Ops}, next.epoch)
		span.Add("persist", time.Since(persist))
		if err != nil {
			s.errorCount.Add(1)
			serr := internalErr(err)
			s.tel.observe(span, endpointUpdates, ds.name, "", ds.epoch, false, string(serr.Code))
			return nil, serr
		}
	}
	swap := time.Now()
	s.swapDataset(req.Dataset, next)
	span.Add("swap", time.Since(swap))
	s.updates.Add(1)
	resp.ElapsedMs = float64(time.Since(start).Microseconds()) / 1000
	s.tel.observe(span, endpointUpdates, next.name, "", next.epoch, false, "")
	return resp, nil
}

// ExportIndex snapshots a dataset's current state — the mutated system and
// its incrementally repaired artifacts — as a self-contained index with an
// empty update log and BaseEpoch set to the dataset's epoch. Reloading the
// export resumes at the same epoch with the same bytes; ovmd uses it to
// compact a grown update log (rebase artifacts, drop the replay cost).
func (s *Service) ExportIndex(name string) (*serialize.Index, *Error) {
	ds, serr := s.dataset(name)
	if serr != nil {
		return nil, serr
	}
	idx := &serialize.Index{Sys: ds.sys, BaseEpoch: ds.epoch}
	for _, a := range ds.sketches {
		snap, err := a.set.Snapshot()
		if err != nil {
			return nil, internalErr(err)
		}
		idx.Sketches = append(idx.Sketches, &serialize.SketchArtifact{
			Seed: a.seed, Target: a.target, Horizon: a.horizon, Theta: a.theta, Set: snap,
			Index: a.set.IndexSnapshot(),
		})
	}
	for _, a := range ds.walkSets {
		snap, err := a.set.Snapshot()
		if err != nil {
			return nil, internalErr(err)
		}
		idx.Walks = append(idx.Walks, &serialize.WalkArtifact{
			Seed: a.seed, Target: a.target, Horizon: a.horizon, Lambda: a.lambda, Set: snap,
			Index: a.set.IndexSnapshot(),
		})
	}
	for _, a := range ds.rrs {
		snap, err := a.col.Snapshot()
		if err != nil {
			return nil, internalErr(err)
		}
		idx.RRs = append(idx.RRs, &serialize.RRArtifact{
			Seed: a.seed, Target: a.target, Sets: snap, Index: a.col.IndexSnapshot(),
		})
	}
	return idx, nil
}

// repairDataset applies one batch to a dataset snapshot and incrementally
// repairs every artifact, returning the next (immutable) dataset version.
// It holds no service locks: callers pass an immutable snapshot, so repair
// work runs concurrently with query traffic. The span (nil-safe; replay
// passes nil) receives "apply" and "repair" stage timings.
//
// ctx cancels the repair at shard boundaries (nil never cancels); the
// async applier threads its pipeline context through so shutdown can
// abandon a background repair. bump is the epoch increment — 1 for a
// plain batch, len(run.Raw) when batch is a coalesced super-batch that
// stands in for several promised epochs.
func (s *Service) repairDataset(ctx context.Context, ds *Dataset, batch dynamic.Batch, bump int, span *obs.Span) (*Dataset, *UpdateResponse, *Error) {
	apply := time.Now()
	newSys, cs, err := dynamic.ApplySystem(ds.sys, batch)
	span.Add("apply", time.Since(apply))
	if err != nil {
		// Everything ApplySystem rejects is caused by the request content
		// (schema violations, out-of-range ids, removing missing edges).
		return nil, nil, badRequestf("%v", err)
	}
	repair := time.Now()
	defer func() { span.Add("repair", time.Since(repair)) }()
	par := s.cfg.Parallelism
	n := newSys.N()
	next := &Dataset{
		name:      ds.name,
		sys:       newSys,
		epoch:     ds.epoch + int64(bump),
		baseEpoch: ds.baseEpoch,
		comp:      make(map[compKey][][]float64),
	}
	resp := &UpdateResponse{Epoch: next.epoch, NodesTouched: cs.NumTouched()}
	for _, a := range ds.sketches {
		prob := &core.Problem{Sys: newSys, Target: a.target, Horizon: a.horizon, K: 1, Score: voting.Cumulative{}, Ctx: ctx}
		set, st, err := sketch.RepairSet(prob, a.set, cs.WalkMask(n, a.target), a.seed, par)
		if err != nil {
			return nil, nil, internalErr(err)
		}
		resp.WalksInvalidated += st.WalksInvalidated
		resp.WalksTotal += st.Walks
		next.sketches = append(next.sketches, &sketchArtifact{
			seed: a.seed, target: a.target, horizon: a.horizon, theta: a.theta, set: set,
		})
	}
	for _, a := range ds.walkSets {
		prob := &core.Problem{Sys: newSys, Target: a.target, Horizon: a.horizon, K: 1, Score: voting.Cumulative{}, Ctx: ctx}
		set, st, err := rwalk.RepairSet(prob, a.set, cs.WalkMask(n, a.target), a.seed, par)
		if err != nil {
			return nil, nil, internalErr(err)
		}
		resp.WalksInvalidated += st.WalksInvalidated
		resp.WalksTotal += st.Walks
		next.walkSets = append(next.walkSets, &walkArtifact{
			seed: a.seed, target: a.target, horizon: a.horizon, lambda: a.lambda, set: set,
		})
	}
	edgeMask := cs.EdgeMask(n)
	for _, a := range ds.rrs {
		col, st, err := a.col.RepairCtx(ctx, newSys.Candidate(a.target).G, edgeMask)
		if err != nil {
			return nil, nil, internalErr(err)
		}
		col.EnsureIndex()
		resp.RRSetsInvalidated += st.SetsInvalidated
		resp.RRSetsTotal += st.Sets
		next.rrs = append(next.rrs, &rrArtifact{seed: a.seed, target: a.target, col: col})
	}
	return next, resp, nil
}
