package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"ovm/internal/dynamic"
	"ovm/internal/serialize"
	"ovm/internal/service"
)

// testBatch builds a mutation batch exercising every op kind against the
// test world: edge insert, re-weight, removal of a real edge, plus opinion
// and stubbornness drift on the indexed target candidate.
func testBatch(t *testing.T, idx *serialize.Index) dynamic.Batch {
	t.Helper()
	g := idx.Sys.Candidate(0).G
	edges := g.Edges()
	if len(edges) == 0 {
		t.Fatal("fixture graph has no edges")
	}
	victim := edges[len(edges)/2]
	// Never remove a self-loop that normalization would immediately
	// re-create differently — any real edge works for the test.
	for _, e := range edges {
		if e.From != e.To {
			victim = e
			break
		}
	}
	return dynamic.Batch{
		{Kind: dynamic.OpAddEdge, From: 3, To: 11, W: 0.8},
		{Kind: dynamic.OpAddEdge, From: 17, To: 4, W: 1.2},
		{Kind: dynamic.OpSetWeight, From: 9, To: 21, W: 2},
		{Kind: dynamic.OpRemoveEdge, From: victim.From, To: victim.To},
		{Kind: dynamic.OpSetOpinion, Cand: 0, Node: 33, Value: 0.95},
		{Kind: dynamic.OpSetStubbornness, Cand: 0, Node: 40, Value: 0.15},
	}
}

// TestApplyUpdatesMatchesFullRebuild is the dynamic-update determinism
// contract: after a mutation batch, seeds served from the incrementally
// repaired index are byte-identical to seeds from a service whose index was
// rebuilt from scratch on the mutated system — for the DM, RW, RS, and IC
// paths, at parallelism 1, 4, and 0.
func TestApplyUpdatesMatchesFullRebuild(t *testing.T) {
	_, idx := testWorld(t)
	batch := testBatch(t, idx)

	live := newTestService(t, idx)
	upd, serr := live.ApplyUpdates(&service.UpdateRequest{Dataset: "world", Ops: batch})
	if serr != nil {
		t.Fatal(serr)
	}
	if upd.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", upd.Epoch)
	}
	if upd.WalksTotal == 0 || upd.RRSetsTotal == 0 {
		t.Fatal("update response must report artifact totals")
	}
	if upd.WalksInvalidated == 0 || upd.WalksInvalidated == upd.WalksTotal {
		t.Fatalf("expected partial walk invalidation, got %d of %d", upd.WalksInvalidated, upd.WalksTotal)
	}

	// The ground truth: apply the same batch offline and rebuild the full
	// index from scratch on the mutated system.
	mutated, _, err := dynamic.ApplySystem(idx.Sys, batch)
	if err != nil {
		t.Fatal(err)
	}
	rebuiltIdx, err := service.BuildIndex(mutated, service.BuildOptions{
		Target:       0,
		Horizon:      tdHorizon,
		Seed:         tdSeed,
		SketchTheta:  tdTheta,
		IncludeWalks: true,
		RRSets:       300,
	})
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := service.New(service.Config{})
	if err := rebuilt.AddIndex("world", rebuiltIdx); err != nil {
		t.Fatal(err)
	}

	for _, method := range []string{"DM", "RW", "RS", "IC"} {
		score := "plurality"
		theta := 0
		if method == "RW" {
			score = "cumulative" // the walk artifact serves the cumulative score
		}
		if method == "RS" {
			theta = tdTheta
		}
		for _, par := range []int{1, 4, 0} {
			req := selectReq(method, score, theta)
			req.Parallelism = par
			a, serr := live.SelectSeeds(req)
			if serr != nil {
				t.Fatalf("%s P=%d live: %v", method, par, serr)
			}
			b, serr := rebuilt.SelectSeeds(req)
			if serr != nil {
				t.Fatalf("%s P=%d rebuilt: %v", method, par, serr)
			}
			if !reflect.DeepEqual(a.Seeds, b.Seeds) || a.ExactValue != b.ExactValue {
				t.Fatalf("%s P=%d: repaired index diverged from rebuild:\n got %v (%.6f)\nwant %v (%.6f)",
					method, par, a.Seeds, a.ExactValue, b.Seeds, b.ExactValue)
			}
			if a.Epoch != 1 {
				t.Fatalf("%s P=%d: live epoch = %d, want 1", method, par, a.Epoch)
			}
			if (method == "RS" || method == "RW" || method == "IC") && !a.FromIndex {
				t.Fatalf("%s P=%d: repaired artifact was not used", method, par)
			}
		}
	}
}

// TestUpdateLogReplayReachesSameEpoch is the OVMIDX v2 restart contract:
// write index + update log, load it in a fresh service, and the replayed
// dataset answers identically (same seeds, same epoch) to the service that
// applied the updates live.
func TestUpdateLogReplayReachesSameEpoch(t *testing.T) {
	_, idx := testWorld(t)
	batch1 := testBatch(t, idx)
	batch2 := dynamic.Batch{
		{Kind: dynamic.OpAddEdge, From: 50, To: 60, W: 1},
		{Kind: dynamic.OpSetOpinion, Cand: 1, Node: 8, Value: 0.1},
	}

	live := newTestService(t, idx)
	for _, b := range []dynamic.Batch{batch1, batch2} {
		if _, serr := live.ApplyUpdates(&service.UpdateRequest{Dataset: "world", Ops: b}); serr != nil {
			t.Fatal(serr)
		}
	}

	// Persist base artifacts + update log, reload in a "fresh process".
	idx.Updates = []dynamic.Batch{batch1, batch2}
	var buf bytes.Buffer
	if err := serialize.WriteIndex(&buf, idx); err != nil {
		t.Fatal(err)
	}
	if got := idx.FormatVersion(); got != serialize.IndexFormatV2 {
		t.Fatalf("index with log is v%d, want v2", got)
	}
	loaded, err := serialize.ReadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	restarted := service.New(service.Config{})
	if err := restarted.AddIndex("world", loaded); err != nil {
		t.Fatal(err)
	}

	for _, method := range []string{"RS", "RW", "IC", "DM"} {
		score, theta := "plurality", 0
		if method == "RW" {
			score = "cumulative"
		}
		if method == "RS" {
			theta = tdTheta
		}
		req := selectReq(method, score, theta)
		a, serr := live.SelectSeeds(req)
		if serr != nil {
			t.Fatal(serr)
		}
		b, serr := restarted.SelectSeeds(req)
		if serr != nil {
			t.Fatal(serr)
		}
		if !reflect.DeepEqual(a.Seeds, b.Seeds) || a.ExactValue != b.ExactValue {
			t.Fatalf("%s: replayed service diverged from live-updated service", method)
		}
		if a.Epoch != 2 || b.Epoch != 2 {
			t.Fatalf("%s: epochs = %d live / %d replayed, want 2 / 2", method, a.Epoch, b.Epoch)
		}
	}
}

// TestUpdateScopesResponseCache: entries cached before an update must not
// be served afterwards, and the epoch in responses tracks the swap.
func TestUpdateScopesResponseCache(t *testing.T) {
	_, idx := testWorld(t)
	svc := newTestService(t, idx)
	req := selectReq("RS", "plurality", tdTheta)
	first, serr := svc.SelectSeeds(req)
	if serr != nil {
		t.Fatal(serr)
	}
	if first.Cached || first.Epoch != 0 {
		t.Fatalf("first query: cached=%v epoch=%d", first.Cached, first.Epoch)
	}
	warm, serr := svc.SelectSeeds(req)
	if serr != nil {
		t.Fatal(serr)
	}
	if !warm.Cached {
		t.Fatal("repeat query must hit the cache")
	}
	if _, serr := svc.ApplyUpdates(&service.UpdateRequest{Dataset: "world", Ops: testBatch(t, idx)}); serr != nil {
		t.Fatal(serr)
	}
	after, serr := svc.SelectSeeds(req)
	if serr != nil {
		t.Fatal(serr)
	}
	if after.Cached {
		t.Fatal("post-update query must not be served from the pre-update cache")
	}
	if after.Epoch != 1 {
		t.Fatalf("post-update epoch = %d, want 1", after.Epoch)
	}
	if reflect.DeepEqual(after.Seeds, first.Seeds) && after.ExactValue == first.ExactValue {
		// Not strictly impossible, but with 6 mutations on a 120-node world
		// an unchanged answer almost surely means the update was ignored.
		t.Log("warning: seeds unchanged by update (possible but suspicious)")
	}
	st := svc.StatsSnapshot()
	if st.Updates != 1 {
		t.Fatalf("stats report %d updates, want 1", st.Updates)
	}
	if len(st.Datasets) != 1 || st.Datasets[0].Epoch != 1 {
		t.Fatalf("dataset stats epoch = %+v, want 1", st.Datasets)
	}
}

// TestExportIndexCompaction is the log-compaction contract: exporting a
// live dataset yields a self-contained index (empty log, BaseEpoch = the
// dataset's epoch) that reloads to the same epoch, the same answers, and
// the same behavior under further updates — so rebasing a grown update log
// never changes anything observable.
func TestExportIndexCompaction(t *testing.T) {
	_, idx := testWorld(t)
	live := newTestService(t, idx)
	for _, b := range []dynamic.Batch{
		testBatch(t, idx),
		{{Kind: dynamic.OpAddEdge, From: 50, To: 60, W: 1}},
	} {
		if _, serr := live.ApplyUpdates(&service.UpdateRequest{Dataset: "world", Ops: b}); serr != nil {
			t.Fatal(serr)
		}
	}
	exported, serr := live.ExportIndex("world")
	if serr != nil {
		t.Fatal(serr)
	}
	if exported.BaseEpoch != 2 || len(exported.Updates) != 0 {
		t.Fatalf("export gave baseEpoch=%d updates=%d, want 2/0", exported.BaseEpoch, len(exported.Updates))
	}
	var buf bytes.Buffer
	if err := serialize.WriteIndex(&buf, exported); err != nil {
		t.Fatal(err)
	}
	loaded, err := serialize.ReadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	compacted := service.New(service.Config{})
	if err := compacted.AddIndex("world", loaded); err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		t.Helper()
		for _, method := range []string{"RS", "RW", "IC"} {
			score, theta := "plurality", tdTheta
			if method == "RW" {
				score = "cumulative"
			}
			if method != "RS" {
				theta = 0
			}
			req := selectReq(method, score, theta)
			a, serr := live.SelectSeeds(req)
			if serr != nil {
				t.Fatal(serr)
			}
			b, serr := compacted.SelectSeeds(req)
			if serr != nil {
				t.Fatal(serr)
			}
			if !reflect.DeepEqual(a.Seeds, b.Seeds) || a.Epoch != b.Epoch || !b.FromIndex {
				t.Fatalf("%s %s: compacted service diverged (epochs %d/%d, fromIndex=%v)",
					stage, method, a.Epoch, b.Epoch, b.FromIndex)
			}
		}
	}
	check("post-compaction")
	// Further updates must stay in lockstep: the rebased artifacts carry
	// the same seeds and substream families.
	next := dynamic.Batch{{Kind: dynamic.OpAddEdge, From: 5, To: 77, W: 0.4}}
	for _, svc := range []*service.Service{live, compacted} {
		resp, serr := svc.ApplyUpdates(&service.UpdateRequest{Dataset: "world", Ops: next})
		if serr != nil {
			t.Fatal(serr)
		}
		if resp.Epoch != 3 {
			t.Fatalf("post-compaction update epoch = %d, want 3", resp.Epoch)
		}
	}
	check("post-compaction-update")
}

// TestConcurrentQueriesDuringUpdates races query traffic against a stream
// of update batches: every response must carry a valid epoch, no query may
// fail, and the epoch observed by queries never runs ahead of the applied
// updates. (The race detector guards the snapshot-swap discipline.)
func TestConcurrentQueriesDuringUpdates(t *testing.T) {
	_, idx := testWorld(t)
	svc := newTestService(t, idx)
	const updates = 3
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, serr := svc.SelectSeeds(selectReq("RS", "plurality", tdTheta))
				if serr != nil {
					t.Errorf("query failed during update: %v", serr)
					return
				}
				if resp.Epoch < 0 || resp.Epoch > updates {
					t.Errorf("query saw impossible epoch %d", resp.Epoch)
					return
				}
			}
		}()
	}
	for i := 0; i < updates; i++ {
		base := int32(10 * (i + 1))
		resp, serr := svc.ApplyUpdates(&service.UpdateRequest{Dataset: "world", Ops: dynamic.Batch{
			{Kind: dynamic.OpAddEdge, From: base, To: base + 1, W: 1},
		}})
		if serr != nil {
			t.Fatal(serr)
		}
		if resp.Epoch != int64(i+1) {
			t.Fatalf("update %d produced epoch %d", i, resp.Epoch)
		}
	}
	close(done)
	wg.Wait()
	final, serr := svc.SelectSeeds(selectReq("RS", "plurality", tdTheta))
	if serr != nil {
		t.Fatal(serr)
	}
	if final.Epoch != updates {
		t.Fatalf("final epoch = %d, want %d", final.Epoch, updates)
	}
}

// TestApplyUpdatesValidation: malformed batches are typed bad requests and
// leave the dataset untouched.
func TestApplyUpdatesValidation(t *testing.T) {
	_, idx := testWorld(t)
	svc := newTestService(t, idx)
	cases := []struct {
		name string
		req  *service.UpdateRequest
	}{
		{"unknown dataset", &service.UpdateRequest{Dataset: "nope", Ops: dynamic.Batch{{Kind: dynamic.OpAddEdge, From: 0, To: 1, W: 1}}}},
		{"empty batch", &service.UpdateRequest{Dataset: "world"}},
		{"bad node", &service.UpdateRequest{Dataset: "world", Ops: dynamic.Batch{{Kind: dynamic.OpAddEdge, From: 0, To: 9999, W: 1}}}},
		{"bad weight", &service.UpdateRequest{Dataset: "world", Ops: dynamic.Batch{{Kind: dynamic.OpAddEdge, From: 0, To: 1, W: -1}}}},
		{"bad candidate", &service.UpdateRequest{Dataset: "world", Ops: dynamic.Batch{{Kind: dynamic.OpSetOpinion, Cand: 99, Node: 0, Value: 0.5}}}},
		{"remove missing", &service.UpdateRequest{Dataset: "world", Ops: dynamic.Batch{{Kind: dynamic.OpRemoveEdge, From: 0, To: 0}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, serr := svc.ApplyUpdates(tc.req)
			if serr == nil {
				t.Fatal("expected error")
			}
			wantCode := service.CodeBadRequest
			if tc.name == "unknown dataset" {
				wantCode = service.CodeNotFound
			}
			if serr.Code != wantCode {
				t.Fatalf("code = %s, want %s", serr.Code, wantCode)
			}
		})
	}
	// The dataset is still at epoch 0 and still serves queries.
	resp, serr := svc.SelectSeeds(selectReq("RS", "plurality", tdTheta))
	if serr != nil {
		t.Fatal(serr)
	}
	if resp.Epoch != 0 {
		t.Fatalf("failed updates must not bump the epoch, got %d", resp.Epoch)
	}
}

// TestUpdatesOverHTTP drives the transport path end to end and checks the
// persistence hook fires with the applied batch.
func TestUpdatesOverHTTP(t *testing.T) {
	_, idx := testWorld(t)
	var persisted []dynamic.Batch
	svc := service.New(service.Config{
		OnUpdate: func(dataset string, batches []dynamic.Batch, epoch int64) error {
			if dataset != "world" {
				t.Errorf("hook dataset = %q", dataset)
			}
			if epoch != int64(len(persisted)+len(batches)) {
				t.Errorf("hook epoch = %d, want %d", epoch, len(persisted)+len(batches))
			}
			persisted = append(persisted, batches...)
			return nil
		},
	})
	if err := svc.AddIndex("world", idx); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	body, _ := json.Marshal(service.UpdateRequest{Ops: dynamic.Batch{
		{Kind: dynamic.OpAddEdge, From: 1, To: 2, W: 0.5},
	}})
	resp, err := http.Post(srv.URL+"/v1/datasets/world/updates", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var ur service.UpdateResponse
	if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
		t.Fatal(err)
	}
	if ur.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", ur.Epoch)
	}
	if len(persisted) != 1 || len(persisted[0]) != 1 {
		t.Fatalf("persistence hook saw %v", persisted)
	}
	// Unknown dataset in the path → 404 envelope.
	resp2, err := http.Post(srv.URL+"/v1/datasets/ghost/updates", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown dataset status = %d, want 404", resp2.StatusCode)
	}
	// A failing hook aborts the update without a swap.
	svcFail := service.New(service.Config{
		OnUpdate: func(string, []dynamic.Batch, int64) error { return fmt.Errorf("disk full") },
	})
	_, idx2 := testWorld(t)
	if err := svcFail.AddIndex("world", idx2); err != nil {
		t.Fatal(err)
	}
	if _, serr := svcFail.ApplyUpdates(&service.UpdateRequest{Dataset: "world", Ops: dynamic.Batch{
		{Kind: dynamic.OpAddEdge, From: 1, To: 2, W: 0.5},
	}}); serr == nil || serr.Code != service.CodeInternal {
		t.Fatalf("expected internal error from failing hook, got %v", serr)
	}
	q, serr := svcFail.SelectSeeds(selectReq("RS", "plurality", tdTheta))
	if serr != nil {
		t.Fatal(serr)
	}
	if q.Epoch != 0 {
		t.Fatalf("failed persistence must not swap the dataset, epoch = %d", q.Epoch)
	}
}
