// Package sketch implements the RS method (Algorithm 5, §VI): greedy seed
// selection over θ reverse-walk sketches whose start nodes are sampled
// uniformly at random (λ_v = 1 per sample, footnote 6).
//
// For the cumulative score, θ follows Theorem 13, with the required OPT
// lower bound obtained by a statistical hypothesis test in the style of
// IMM's Algorithm 2 [3] (EstimateOPT). For the plurality family and the
// Copeland score, the paper recommends (§VI-E) a heuristic: find the
// smallest θ at which the achieved score converges; HeuristicTheta
// implements the doubling search and records the trace plotted in
// Figs 13/14. The theoretical admissibility curves of Eq 44 (plurality) and
// Eq 48 (Copeland) are exposed as PluralityThetaLHS / CopelandThetaLHS for
// the Fig 3 study.
package sketch

import (
	"fmt"
	"math"

	"ovm/internal/core"
	"ovm/internal/graph"
	"ovm/internal/sampling"
	"ovm/internal/stats"
	"ovm/internal/voting"
	"ovm/internal/walks"
)

// Config controls the RS method.
type Config struct {
	// Epsilon is the approximation slack ε of Theorem 13 (default 0.1).
	Epsilon float64
	// L sets the success probability 1 − n^{−L} (default 1).
	L float64
	// InitialTheta seeds the heuristic doubling search (default 256).
	InitialTheta int
	// ConvergeTol is the relative score-change tolerance declaring
	// convergence in the heuristic search (default 0.01).
	ConvergeTol float64
	// MaxTheta caps the sketch count (default 1<<21).
	MaxTheta int
	// FixedTheta, when positive, bypasses both the Theorem-13 count and the
	// heuristic doubling search: Select runs Algorithm 5 with exactly this
	// sketch count. Serving systems use it to pin θ to a precomputed sketch
	// artifact so queries reuse the stored walks bit-identically.
	FixedTheta int
	// Seed drives all randomness.
	Seed int64
	// Parallelism caps the engine worker pool for sketch generation and the
	// greedy scans: 0 means GOMAXPROCS, 1 disables concurrency. Seeds and
	// scores are bit-identical across Parallelism values.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.Epsilon == 0 {
		c.Epsilon = 0.1
	}
	if c.L == 0 {
		c.L = 1
	}
	if c.InitialTheta == 0 {
		c.InitialTheta = 256
	}
	if c.ConvergeTol == 0 {
		c.ConvergeTol = 0.01
	}
	if c.MaxTheta == 0 {
		c.MaxTheta = 1 << 21
	}
	return c
}

func (c Config) validate() error {
	if c.Epsilon <= 0 || c.Epsilon >= 1 {
		return fmt.Errorf("sketch: epsilon must lie in (0,1), got %v", c.Epsilon)
	}
	if c.L <= 0 {
		return fmt.Errorf("sketch: l must be positive, got %v", c.L)
	}
	if c.InitialTheta < 1 {
		return fmt.Errorf("sketch: initial theta must be >= 1, got %d", c.InitialTheta)
	}
	if c.MaxTheta < c.InitialTheta {
		return fmt.Errorf("sketch: max theta %d below initial theta %d", c.MaxTheta, c.InitialTheta)
	}
	if c.FixedTheta < 0 {
		return fmt.Errorf("sketch: fixed theta must be >= 0, got %d", c.FixedTheta)
	}
	return nil
}

// Result reports an RS run.
type Result struct {
	Seeds          []int32
	EstimatedValue float64
	Theta          int
	OPTLowerBound  float64 // cumulative only
	BytesUsed      int64
	// Rounds is the per-round work accounting of the greedy selection
	// (nil when cost accounting is disabled). Observability only: it
	// never influences seeds or scores.
	Rounds []walks.RoundCost
}

// Select runs Algorithm 5: Theorem-13 sketch counts for the cumulative
// score, heuristic convergence search for the other scores.
func Select(p *core.Problem, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cfg.FixedTheta > 0 {
		return SelectWithTheta(p, cfg.FixedTheta, cfg.Seed, cfg.Parallelism)
	}
	if _, ok := p.Score.(voting.Cumulative); ok {
		return selectCumulative(p, cfg)
	}
	theta, _, err := HeuristicTheta(p, cfg)
	if err != nil {
		return nil, err
	}
	return SelectWithTheta(p, theta, cfg.Seed, cfg.Parallelism)
}

// SelectWithTheta runs Algorithm 5 with a fixed sketch count θ.
// Parallelism follows the usual engine convention (0 = GOMAXPROCS, 1 =
// serial) and never changes the selected seeds.
func SelectWithTheta(p *core.Problem, theta int, seed int64, parallelism int) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	comp, err := core.CompetitorOpinionsCtx(p.Ctx, p.Sys, p.Target, p.Horizon, parallelism)
	if err != nil {
		return nil, err
	}
	set, err := GenerateSet(p, theta, seed, parallelism)
	if err != nil {
		return nil, err
	}
	return SelectOnSet(p, set, theta, comp, parallelism)
}

// GenerateSet creates the θ-sketch walk set of Algorithm 5 for the
// problem's target and horizon, using the same substream family as
// SelectWithTheta — the set a serving index persists so queries can skip
// regeneration. The returned set is pristine (no seeds applied).
func GenerateSet(p *core.Problem, theta int, seed int64, parallelism int) (*walks.Set, error) {
	if theta < 1 {
		return nil, fmt.Errorf("sketch: theta must be >= 1, got %d", theta)
	}
	cand := p.Sys.Candidate(p.Target)
	sampler, err := graph.NewInEdgeSampler(cand.G)
	if err != nil {
		return nil, err
	}
	return walks.GenerateSampledCtx(p.Ctx, sampler, cand.Stub, p.Horizon, theta, sampling.Stream{Seed: seed, ID: 211}, parallelism)
}

// RepairSet incrementally rebuilds a pristine sketch set after a graph
// mutation. p must describe the MUTATED system; old is the set generated
// (with GenerateSet and the same seed) over the pre-mutation graph; touched
// marks the nodes whose in-neighborhoods or stubbornness changed. The
// returned set is byte-identical to GenerateSet on the mutated system, but
// only the invalidated owners are regenerated (from their original
// substreams in the seed's family). p.Ctx, when set, cancels the repair at
// shard boundaries.
func RepairSet(p *core.Problem, old *walks.Set, touched []bool, seed int64, parallelism int) (*walks.Set, walks.RepairStats, error) {
	cand := p.Sys.Candidate(p.Target)
	sampler, err := graph.NewInEdgeSampler(cand.G)
	if err != nil {
		return nil, walks.RepairStats{}, err
	}
	return walks.RepairCtx(p.Ctx, old, sampler, cand.Stub, touched, sampling.Stream{Seed: seed, ID: 211}, parallelism)
}

// SelectOnSet runs the greedy selection of Algorithm 5 over a pre-generated
// sketch set (freshly generated, or a Clone of a loaded artifact). The set
// is mutated by truncation; callers serving concurrent queries must pass a
// private clone. comp may carry precomputed competitor opinions for the
// problem's (target, horizon); nil computes them here. Given a set produced
// by GenerateSet with matching parameters, the result is byte-identical to
// SelectWithTheta.
func SelectOnSet(p *core.Problem, set *walks.Set, theta int, comp [][]float64, parallelism int) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if comp == nil {
		var err error
		comp, err = core.CompetitorOpinionsCtx(p.Ctx, p.Sys, p.Target, p.Horizon, parallelism)
		if err != nil {
			return nil, err
		}
	}
	cand := p.Sys.Candidate(p.Target)
	est, err := walks.NewEstimator(set, p.Target, cand.Init, comp, walks.SketchOwnerWeights(set, theta), parallelism)
	if err != nil {
		return nil, err
	}
	est.SetContext(p.Ctx)
	gr, err := est.SelectGreedy(p.K, p.Score)
	if err != nil {
		return nil, err
	}
	return &Result{
		Seeds:          gr.Seeds,
		EstimatedValue: gr.Value,
		Theta:          theta,
		BytesUsed:      set.BytesUsed(),
		Rounds:         append([]walks.RoundCost(nil), est.RoundCosts()...),
	}, nil
}

func selectCumulative(p *core.Problem, cfg Config) (*Result, error) {
	optLB, err := EstimateOPT(p, cfg)
	if err != nil {
		return nil, err
	}
	theta, err := stats.SketchesForCumulative(p.Sys.N(), p.K, cfg.Epsilon, cfg.L, optLB)
	if err != nil {
		return nil, err
	}
	if theta > cfg.MaxTheta {
		theta = cfg.MaxTheta
	}
	res, err := SelectWithTheta(p, theta, cfg.Seed, cfg.Parallelism)
	if err != nil {
		return nil, err
	}
	res.OPTLowerBound = optLB
	return res, nil
}

// Selector adapts Select to the core.SeedSelector signature used by
// MinSeedsToWin.
func Selector(p core.Problem, cfg Config) core.SeedSelector {
	return func(k int) ([]int32, error) {
		q := p
		q.K = k
		r, err := Select(&q, cfg)
		if err != nil {
			return nil, err
		}
		return r.Seeds, nil
	}
}

// EstimateOPT returns a lower bound on the optimal cumulative score for
// size-K seed sets, combining three certificates:
//
//  1. OPT ≥ K (the seeds themselves hold opinion 1);
//  2. OPT ≥ F(∅) by monotonicity (one exact diffusion);
//  3. a statistical test in the spirit of [3]'s Algorithm 2: for
//     x = n/2, n/4, …, K, draw enough sketches to estimate the greedy
//     score; if the estimate clears (1+ε′)·x, accept x·(a deflation).
func EstimateOPT(p *core.Problem, cfg Config) (float64, error) {
	cfg = cfg.withDefaults()
	n := p.Sys.N()
	cand := p.Sys.Candidate(p.Target)
	base, err := core.EvaluateExactCtx(p.Ctx, p.Sys, p.Target, p.Horizon, voting.Cumulative{}, nil, cfg.Parallelism)
	if err != nil {
		return 0, err
	}
	lb := math.Max(float64(p.K), base)

	epsPrime := math.Sqrt2 * cfg.Epsilon
	sampler, err := graph.NewInEdgeSampler(cand.G)
	if err != nil {
		return 0, err
	}
	comp, err := core.CompetitorOpinionsCtx(p.Ctx, p.Sys, p.Target, p.Horizon, cfg.Parallelism)
	if err != nil {
		return 0, err
	}
	lnTerm := cfg.L*math.Log(float64(n)) + math.Log(math.Log2(float64(n))+1)
	for x := float64(n) / 2; x >= float64(p.K); x /= 2 {
		theta := int(math.Ceil((2 + 2*epsPrime/3) * lnTerm * float64(n) / (epsPrime * epsPrime * x)))
		if theta > cfg.MaxTheta {
			theta = cfg.MaxTheta
		}
		if theta < 1 {
			theta = 1
		}
		set, err := walks.GenerateSampledCtx(p.Ctx, sampler, cand.Stub, p.Horizon, theta, sampling.Stream{Seed: cfg.Seed, ID: uint64(223 + int(x))}, cfg.Parallelism)
		if err != nil {
			return 0, err
		}
		est, err := walks.NewEstimator(set, p.Target, cand.Init, comp, walks.SketchOwnerWeights(set, theta), cfg.Parallelism)
		if err != nil {
			return 0, err
		}
		est.SetContext(p.Ctx)
		gr, err := est.SelectGreedy(p.K, voting.Cumulative{})
		if err != nil {
			return 0, err
		}
		if gr.Value >= (1+epsPrime)*x {
			if cand := gr.Value / (1 + epsPrime); cand > lb {
				lb = cand
			}
			break
		}
	}
	return lb, nil
}

// ThetaTrace is one point of the heuristic θ search.
type ThetaTrace struct {
	Theta      int
	ExactScore float64 // exact F of the seeds chosen at this θ
}

// HeuristicTheta performs the §VI-E doubling search: starting from
// InitialTheta, double θ until the exact score of the selected seed set
// changes by less than ConvergeTol relative between consecutive doublings,
// then report the smaller θ. The trace is the data series of Figs 13/14.
func HeuristicTheta(p *core.Problem, cfg Config) (int, []ThetaTrace, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return 0, nil, err
	}
	if err := p.Validate(); err != nil {
		return 0, nil, err
	}
	var trace []ThetaTrace
	prev := math.Inf(-1)
	theta := cfg.InitialTheta
	chosen := theta
	for {
		res, err := SelectWithTheta(p, theta, cfg.Seed, cfg.Parallelism)
		if err != nil {
			return 0, nil, err
		}
		exact, err := core.EvaluateExactCtx(p.Ctx, p.Sys, p.Target, p.Horizon, p.Score, res.Seeds, cfg.Parallelism)
		if err != nil {
			return 0, nil, err
		}
		trace = append(trace, ThetaTrace{Theta: theta, ExactScore: exact})
		if prev > 0 && math.Abs(exact-prev) <= cfg.ConvergeTol*math.Max(prev, 1) {
			chosen = theta / 2
			break
		}
		prev = exact
		if theta >= cfg.MaxTheta {
			chosen = theta
			break
		}
		theta *= 2
		if theta > cfg.MaxTheta {
			theta = cfg.MaxTheta
		}
	}
	return chosen, trace, nil
}

// PluralityThetaLHS evaluates the left-hand side of Inequality 44:
//
//	ρ^θ · [1 − 2·exp(−ε²·OPT/((8+2ε)·n) · θ)]
//
// whose non-monotone shape in θ is plotted in Fig 3.
func PluralityThetaLHS(rho, eps, opt float64, n, theta int) float64 {
	if theta <= 0 {
		return 0
	}
	inner := 1 - 2*math.Exp(-eps*eps*opt/((8+2*eps)*float64(n))*float64(theta))
	if inner < 0 {
		inner = 0
	}
	return math.Pow(rho, float64(theta)) * inner
}

// PluralityThetaRHS is the right-hand side of Inequality 44:
// 1 − C(n,k)^{-1}·n^{-l}.
func PluralityThetaRHS(n, k int, l float64) float64 {
	return 1 - math.Exp(-stats.LogChoose(n, k)-l*math.Log(float64(n)))
}

// CopelandThetaLHS evaluates the left-hand side of Inequality 48:
//
//	ρ^θ · [1 − (1 − µ²)^{θ/2}]
func CopelandThetaLHS(rho, mu float64, theta int) float64 {
	if theta <= 0 {
		return 0
	}
	return math.Pow(rho, float64(theta)) * (1 - math.Pow(1-mu*mu, float64(theta)/2))
}

// CopelandThetaRHS is the right-hand side of Inequality 48:
// 1 − C(n,k)^{-1}·n^{-l}·(r−1)^{-1}.
func CopelandThetaRHS(n, k, r int, l float64) float64 {
	return 1 - math.Exp(-stats.LogChoose(n, k)-l*math.Log(float64(n))-math.Log(float64(r-1)))
}

// SmallestAdmissibleTheta scans θ = 1..maxTheta for the first value whose
// LHS clears rhs, mirroring the Fig 3 procedure of picking θ1, the smaller
// of the two crossing points of the non-monotone LHS curve. The boolean
// reports whether any admissible θ exists.
func SmallestAdmissibleTheta(lhs func(theta int) float64, rhs float64, maxTheta int) (int, bool) {
	for theta := 1; theta <= maxTheta; theta++ {
		if lhs(theta) >= rhs {
			return theta, true
		}
	}
	return 0, false
}
