package sketch_test

import (
	"math/rand"
	"testing"

	"ovm/internal/core"
	"ovm/internal/graph"
	"ovm/internal/opinion"
	"ovm/internal/paperexample"
	"ovm/internal/sketch"
	"ovm/internal/voting"
)

func paperProblem(t *testing.T, score voting.Score, k int) *core.Problem {
	t.Helper()
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	return &core.Problem{Sys: sys, Target: 0, Horizon: 1, K: k, Score: score}
}

func randomProblem(t *testing.T, seed int64, n, rCand, k, horizon int, score voting.Score) *core.Problem {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < 5*n; i++ {
		_ = b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)), r.Float64()+0.05)
	}
	g, err := b.BuildColumnStochastic()
	if err != nil {
		t.Fatal(err)
	}
	cands := make([]*opinion.Candidate, rCand)
	for q := range cands {
		init := make([]float64, n)
		stub := make([]float64, n)
		for i := range init {
			init[i] = r.Float64()
			stub[i] = r.Float64()
		}
		cands[q] = &opinion.Candidate{Name: string(rune('a' + q)), G: g, Init: init, Stub: stub}
	}
	sys, err := opinion.NewSystem(cands)
	if err != nil {
		t.Fatal(err)
	}
	return &core.Problem{Sys: sys, Target: 0, Horizon: horizon, K: k, Score: score}
}

func TestSelectCumulativePaperExample(t *testing.T) {
	p := paperProblem(t, voting.Cumulative{}, 1)
	res, err := sketch.Select(p, sketch.Config{Seed: 1, MaxTheta: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 1 || res.Seeds[0] != 0 {
		t.Errorf("RS cumulative picked %v, want [0]", res.Seeds)
	}
	if res.Theta < 1 {
		t.Errorf("theta = %d, want >= 1", res.Theta)
	}
	if res.OPTLowerBound < 2.55-1e-9 { // at least F(∅)
		t.Errorf("OPT lower bound %v below F(∅)=2.55", res.OPTLowerBound)
	}
}

func TestSelectPluralityPaperExample(t *testing.T) {
	p := paperProblem(t, voting.Plurality{}, 1)
	res, err := sketch.Select(p, sketch.Config{Seed: 2, InitialTheta: 512, MaxTheta: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 1 || res.Seeds[0] != 2 {
		t.Errorf("RS plurality picked %v, want [2]", res.Seeds)
	}
}

func TestSelectWithThetaFixed(t *testing.T) {
	p := paperProblem(t, voting.Copeland{}, 1)
	res, err := sketch.SelectWithTheta(p, 4096, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 1 || (res.Seeds[0] != 2 && res.Seeds[0] != 3) {
		t.Errorf("RS copeland picked %v, want [2] or [3]", res.Seeds)
	}
	if res.Theta != 4096 {
		t.Errorf("theta = %d, want 4096", res.Theta)
	}
	if _, err := sketch.SelectWithTheta(p, 0, 3, 1); err == nil {
		t.Error("expected error for theta=0")
	}
}

func TestEstimateOPTBounds(t *testing.T) {
	p := paperProblem(t, voting.Cumulative{}, 1)
	lb, err := sketch.EstimateOPT(p, sketch.Config{Seed: 4, MaxTheta: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	// True OPT for k=1 is 3.30 (Table I). The bound must not exceed it and
	// must be at least F(∅) = 2.55.
	if lb > 3.30+0.05 {
		t.Errorf("OPT lower bound %v exceeds true OPT 3.30", lb)
	}
	if lb < 2.55-1e-9 {
		t.Errorf("OPT lower bound %v below F(∅)", lb)
	}
}

func TestHeuristicThetaTrace(t *testing.T) {
	p := paperProblem(t, voting.Plurality{}, 1)
	theta, trace, err := sketch.HeuristicTheta(p, sketch.Config{Seed: 5, InitialTheta: 64, MaxTheta: 1 << 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	if theta < 1 {
		t.Errorf("theta = %d", theta)
	}
	// Trace thetas double.
	for i := 1; i < len(trace); i++ {
		if trace[i].Theta <= trace[i-1].Theta {
			t.Errorf("trace thetas not increasing: %+v", trace)
		}
	}
	// Scores converge upward on this tiny instance.
	last := trace[len(trace)-1].ExactScore
	if last < 3 {
		t.Errorf("converged plurality score %v, want >= 3", last)
	}
}

func TestConfigValidation(t *testing.T) {
	p := paperProblem(t, voting.Cumulative{}, 1)
	if _, err := sketch.Select(p, sketch.Config{Epsilon: 1.2}); err == nil {
		t.Error("expected error for epsilon > 1")
	}
	if _, err := sketch.Select(p, sketch.Config{L: -1}); err == nil {
		t.Error("expected error for negative l")
	}
	if _, err := sketch.Select(p, sketch.Config{InitialTheta: 1 << 20, MaxTheta: 16}); err == nil {
		t.Error("expected error for max < initial theta")
	}
	bad := *p
	bad.K = 0
	if _, err := sketch.Select(&bad, sketch.Config{}); err == nil {
		t.Error("expected error for invalid problem")
	}
}

func TestSketchQualityVsDM(t *testing.T) {
	p := randomProblem(t, 11, 60, 2, 3, 4, voting.Cumulative{})
	dmSeeds, _, err := core.SelectSeedsDM(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	dmVal, err := core.EvaluateExact(p.Sys, 0, p.Horizon, voting.Cumulative{}, dmSeeds, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sketch.SelectWithTheta(p, 30000, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	rsVal, err := core.EvaluateExact(p.Sys, 0, p.Horizon, voting.Cumulative{}, res.Seeds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rsVal < 0.85*dmVal {
		t.Errorf("RS exact value %v too far below DM %v", rsVal, dmVal)
	}
}

func TestThetaCurves(t *testing.T) {
	// The Eq-44 LHS is non-monotone: rises then falls (Fig 3).
	lhs := func(theta int) float64 { return sketch.PluralityThetaLHS(0.999, 0.5, 800, 1000, theta) }
	rise := lhs(40) < lhs(200)
	fall := lhs(100000) < lhs(200)
	if !rise || !fall {
		t.Errorf("LHS should rise then fall: lhs(40)=%v lhs(200)=%v lhs(100000)=%v",
			lhs(40), lhs(200), lhs(100000))
	}
	if sketch.PluralityThetaLHS(0.9, 0.1, 500, 1000, 0) != 0 {
		t.Error("LHS at theta=0 should be 0")
	}
	// RHS in (0,1]; for realistic (n,k) it rounds to 1 in float64.
	rhs := sketch.PluralityThetaRHS(1000, 10, 1)
	if rhs <= 0 || rhs > 1 {
		t.Errorf("RHS = %v, want in (0,1]", rhs)
	}
	// Small instances keep the RHS strictly below 1.
	rhsSmall := sketch.PluralityThetaRHS(4, 1, 0.5)
	if rhsSmall <= 0 || rhsSmall >= 1 {
		t.Errorf("small-instance RHS = %v, want in (0,1)", rhsSmall)
	}
	// Copeland curves behave likewise.
	clhs := func(theta int) float64 { return sketch.CopelandThetaLHS(0.999, 0.2, theta) }
	if !(clhs(10) < clhs(200)) || !(clhs(100000) < clhs(200)) {
		t.Error("Copeland LHS should rise then fall")
	}
	crhs := sketch.CopelandThetaRHS(4, 1, 4, 0.5)
	if crhs <= 0 || crhs >= 1 {
		t.Errorf("Copeland RHS = %v, want in (0,1)", crhs)
	}
}

func TestSmallestAdmissibleTheta(t *testing.T) {
	lhs := func(theta int) float64 { return sketch.PluralityThetaLHS(0.99999, 0.5, 800, 1000, theta) }
	rhs := 0.5
	theta, ok := sketch.SmallestAdmissibleTheta(lhs, rhs, 1_000_000)
	if !ok {
		t.Fatal("expected an admissible theta")
	}
	if lhs(theta) < rhs {
		t.Errorf("theta=%d does not clear rhs", theta)
	}
	if theta > 1 && lhs(theta-1) >= rhs {
		t.Errorf("theta=%d not minimal", theta)
	}
	// Impossible case.
	if _, ok := sketch.SmallestAdmissibleTheta(lhs, 2.0, 1000); ok {
		t.Error("rhs=2 can never be cleared")
	}
}

func TestSelectorAdapter(t *testing.T) {
	p := paperProblem(t, voting.Plurality{}, 1)
	sel := sketch.Selector(*p, sketch.Config{Seed: 6, InitialTheta: 512, MaxTheta: 1 << 13})
	win, err := core.MinSeedsToWin(p.Sys, 0, 1, voting.Plurality{}, sel)
	if err != nil {
		t.Fatal(err)
	}
	if len(win) != 1 {
		t.Errorf("RS k* = %d, want 1", len(win))
	}
}
