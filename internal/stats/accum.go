package stats

import (
	"math"
	"sort"
)

// Accumulator maintains streaming count, mean, variance (Welford's
// algorithm), minimum, and maximum of a sequence of observations.
// The zero value is ready to use.
type Accumulator struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (a *Accumulator) Add(x float64) {
	if a.n == 0 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of observations recorded.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean (0 if empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the population variance (0 if fewer than 2 observations).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n)
}

// StdDev returns the population standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest observation (0 if empty).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation (0 if empty).
func (a *Accumulator) Max() float64 { return a.max }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It does not modify xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean of xs (NaN if empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}
