package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{1, 2, 3, 4, 5} {
		a.Add(x)
	}
	if a.N() != 5 {
		t.Errorf("N = %d, want 5", a.N())
	}
	if got := a.Mean(); math.Abs(got-3) > 1e-12 {
		t.Errorf("Mean = %v, want 3", got)
	}
	if got := a.Variance(); math.Abs(got-2) > 1e-12 {
		t.Errorf("Variance = %v, want 2", got)
	}
	if a.Min() != 1 || a.Max() != 5 {
		t.Errorf("Min/Max = %v/%v, want 1/5", a.Min(), a.Max())
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.Variance() != 0 {
		t.Error("empty accumulator should report zeros")
	}
}

func TestAccumulatorSingle(t *testing.T) {
	var a Accumulator
	a.Add(7)
	if a.Variance() != 0 {
		t.Errorf("single-sample variance = %v, want 0", a.Variance())
	}
	if a.Min() != 7 || a.Max() != 7 {
		t.Error("single-sample min/max should equal the sample")
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(50)
		xs := make([]float64, n)
		var a Accumulator
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
			a.Add(xs[i])
		}
		mean := Mean(xs)
		varSum := 0.0
		for _, x := range xs {
			varSum += (x - mean) * (x - mean)
		}
		batchVar := varSum / float64(n)
		return math.Abs(a.Mean()-mean) < 1e-8 && math.Abs(a.Variance()-batchVar) < 1e-6
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Quantile mutated its input")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) should be NaN")
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.3); math.Abs(got-3) > 1e-12 {
		t.Errorf("Quantile(0.3) = %v, want 3", got)
	}
}

func TestMeanSum(t *testing.T) {
	if got := Sum([]float64{1.5, 2.5}); got != 4 {
		t.Errorf("Sum = %v, want 4", got)
	}
	if got := Mean([]float64{2, 4}); got != 3 {
		t.Errorf("Mean = %v, want 3", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}
