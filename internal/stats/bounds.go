package stats

import (
	"fmt"
	"math"
)

// HoeffdingTail bounds Pr(|mean - E[mean]| >= delta) for the mean of n
// independent random variables in [0,1]: the two-sided Hoeffding bound
// 2·exp(−2·n·δ²) (Appendix E, Theorem 18 specialization used in §V-C).
func HoeffdingTail(n int, delta float64) float64 {
	if n <= 0 {
		return 1
	}
	return math.Min(1, 2*math.Exp(-2*float64(n)*delta*delta))
}

// WalksForCumulative returns the smallest λ_v satisfying Theorem 10:
//
//	λ_v ≥ ln(2/(1−ρ)) / (2δ²)
//
// so that the estimated opinion of any node deviates from the exact FJ
// opinion by less than δ with probability at least ρ.
func WalksForCumulative(delta, rho float64) (int, error) {
	if delta <= 0 {
		return 0, fmt.Errorf("stats: delta must be positive, got %v", delta)
	}
	if rho <= 0 || rho >= 1 {
		return 0, fmt.Errorf("stats: rho must lie in (0,1), got %v", rho)
	}
	lam := math.Log(2/(1-rho)) / (2 * delta * delta)
	return int(math.Ceil(lam)), nil
}

// WalksForPlurality returns the smallest λ_v satisfying Theorem 11:
//
//	λ_v ≥ ln(2/(1−ρ)) / (2γ²)
//
// where γ = γ_v[S] is the minimum opinion gap between the target candidate
// and any competitor at node v. The same formula serves the p-approval and
// positional-p-approval variants.
func WalksForPlurality(gamma, rho float64) (int, error) {
	if gamma <= 0 {
		return 0, fmt.Errorf("stats: gamma must be positive, got %v", gamma)
	}
	if rho <= 0 || rho >= 1 {
		return 0, fmt.Errorf("stats: rho must lie in (0,1), got %v", rho)
	}
	lam := math.Log(2/(1-rho)) / (2 * gamma * gamma)
	return int(math.Ceil(lam)), nil
}

// WalksForCopeland returns the smallest λ_v satisfying Theorem 12:
//
//	λ_v ≥ ln(1/(1−ρ)) / (2γ²)
//
// (one-sided version of the plurality bound).
func WalksForCopeland(gamma, rho float64) (int, error) {
	if gamma <= 0 {
		return 0, fmt.Errorf("stats: gamma must be positive, got %v", gamma)
	}
	if rho <= 0 || rho >= 1 {
		return 0, fmt.Errorf("stats: rho must lie in (0,1), got %v", rho)
	}
	lam := math.Log(1/(1-rho)) / (2 * gamma * gamma)
	return int(math.Ceil(lam)), nil
}

// SketchesForCumulative returns the Theorem 13 sketch count:
//
//	θ ≥ (2n / (OPT·ε²)) · [ (1−1/e)·√ln(2nˡ) + √((1−1/e)(ln(2nˡ)+ln C(n,k))) ]²
//
// guaranteeing a (1−1/e−ε)-approximation with probability ≥ 1 − n^{−l}.
// optLB is a lower bound on OPT (estimated by sketch.EstimateOPT).
func SketchesForCumulative(n, k int, eps, l, optLB float64) (int, error) {
	if n <= 0 || k <= 0 || k > n {
		return 0, fmt.Errorf("stats: need 0 < k <= n, got k=%d n=%d", k, n)
	}
	if eps <= 0 {
		return 0, fmt.Errorf("stats: eps must be positive, got %v", eps)
	}
	if optLB <= 0 {
		return 0, fmt.Errorf("stats: optLB must be positive, got %v", optLB)
	}
	e1 := 1 - 1/math.E
	ln2nl := l*math.Log(float64(n)) + math.Ln2
	lnBinom := LogChoose(n, k)
	term := e1*math.Sqrt(ln2nl) + math.Sqrt(e1*(ln2nl+lnBinom))
	theta := 2 * float64(n) / (optLB * eps * eps) * term * term
	if theta > float64(math.MaxInt32) {
		theta = float64(math.MaxInt32)
	}
	return int(math.Ceil(theta)), nil
}

// ChungLuUpper is the upper-tail inequality of Theorem 16 (Chung & Lu):
// for X = ΣX_i with X_i − E[X_i] ≤ M,
//
//	Pr(X − E[X] ≥ β) ≤ exp(−β² / (2(Var[X] + Mβ/3))).
func ChungLuUpper(beta, variance, m float64) float64 {
	if beta <= 0 {
		return 1
	}
	den := 2 * (variance + m*beta/3)
	if den <= 0 {
		return 0
	}
	return math.Min(1, math.Exp(-beta*beta/den))
}

// ChungLuLower is the lower-tail inequality of Theorem 16:
//
//	Pr(X − E[X] ≤ −β) ≤ exp(−β² / (2·Σ E[X_i²])).
func ChungLuLower(beta, sumSecondMoments float64) float64 {
	if beta <= 0 {
		return 1
	}
	if sumSecondMoments <= 0 {
		return 0
	}
	return math.Min(1, math.Exp(-beta*beta/(2*sumSecondMoments)))
}

// MartingaleTail is the inequality of Theorem 17 ([7]): for θ i.i.d.
// variables in [0,1] with mean µ,
//
//	Pr(|X − θµ| ≥ ε·θµ) ≤ exp(−ε²·θµ / (2+ε)).
//
// (Written in the paper with the exponent's sign folded in; we return the
// probability bound directly.)
func MartingaleTail(theta int, mu, eps float64) float64 {
	if theta <= 0 || mu <= 0 || eps <= 0 {
		return 1
	}
	return math.Min(1, math.Exp(-eps*eps*float64(theta)*mu/(2+eps)))
}

// RelativeEntropyTail is the Chernoff–Hoeffding bound of Theorem 18 ([80]):
// for the mean X̄ of θ independent [0,1] variables with E[X̄] = µ and
// 0 ≤ ε < 1−µ,
//
//	Pr(X̄ − µ ≥ ε) ≤ [ (µ/(µ+ε))^{µ+ε} · ((1−µ)/(1−µ−ε))^{1−µ−ε} ]^θ.
func RelativeEntropyTail(theta int, mu, eps float64) float64 {
	if theta <= 0 || eps <= 0 {
		return 1
	}
	if mu <= 0 {
		return 0
	}
	if eps >= 1-mu {
		// Outside the theorem's range; the event is impossible for eps > 1-mu.
		return 0
	}
	a := mu + eps
	b := 1 - mu - eps
	logBase := a*math.Log(mu/a) + b*math.Log((1-mu)/b)
	return math.Min(1, math.Exp(float64(theta)*logBase))
}

// CopelandMajorityTail bounds Pr(Σ Z_j ≥ θ/2) for i.i.d. Bernoulli Z with
// mean (1−µ)/2, as used in Lemma 7:
//
//	Pr ≤ ((1−µ)^{1/2}·(1+µ)^{1/2})^θ = (1−µ²)^{θ/2}.
func CopelandMajorityTail(theta int, mu float64) float64 {
	if theta <= 0 {
		return 1
	}
	if mu <= 0 {
		return 1
	}
	if mu >= 1 {
		return 0
	}
	return math.Pow(1-mu*mu, float64(theta)/2)
}

// LogChoose returns ln C(n, k) computed via log-gamma, stable for large n.
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x) + 1)
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}
