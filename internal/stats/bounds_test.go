package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWalksForCumulativeMatchesFormula(t *testing.T) {
	got, err := WalksForCumulative(0.1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	want := int(math.Ceil(math.Log(20) / 0.02)) // ln(2/0.1)/(2*0.01)
	if got != want {
		t.Fatalf("WalksForCumulative(0.1,0.9) = %d, want %d", got, want)
	}
}

func TestWalksForCumulativeSatisfiesHoeffding(t *testing.T) {
	for _, tc := range []struct{ delta, rho float64 }{
		{0.1, 0.9}, {0.05, 0.95}, {0.2, 0.75}, {0.01, 0.99},
	} {
		n, err := WalksForCumulative(tc.delta, tc.rho)
		if err != nil {
			t.Fatal(err)
		}
		// With n samples, failure prob 2exp(-2nδ²) must be ≤ 1-ρ.
		if fail := 2 * math.Exp(-2*float64(n)*tc.delta*tc.delta); fail > 1-tc.rho+1e-12 {
			t.Errorf("delta=%v rho=%v: n=%d gives failure %v > %v", tc.delta, tc.rho, n, fail, 1-tc.rho)
		}
		// n-1 samples must NOT suffice (minimality), unless n == 1.
		if n > 1 {
			if fail := 2 * math.Exp(-2*float64(n-1)*tc.delta*tc.delta); fail < 1-tc.rho-1e-9 {
				t.Errorf("delta=%v rho=%v: n=%d not minimal", tc.delta, tc.rho, n)
			}
		}
	}
}

func TestWalksErrorCases(t *testing.T) {
	if _, err := WalksForCumulative(0, 0.9); err == nil {
		t.Error("expected error for delta=0")
	}
	if _, err := WalksForCumulative(0.1, 1); err == nil {
		t.Error("expected error for rho=1")
	}
	if _, err := WalksForPlurality(-1, 0.9); err == nil {
		t.Error("expected error for gamma<0")
	}
	if _, err := WalksForCopeland(0.1, 0); err == nil {
		t.Error("expected error for rho=0")
	}
	if _, err := SketchesForCumulative(10, 0, 0.1, 1, 5); err == nil {
		t.Error("expected error for k=0")
	}
	if _, err := SketchesForCumulative(10, 3, 0.1, 1, 0); err == nil {
		t.Error("expected error for optLB=0")
	}
}

func TestCopelandWalksSmallerThanPlurality(t *testing.T) {
	// The one-sided Copeland bound needs no more walks than the two-sided
	// plurality bound at the same (gamma, rho).
	for _, gamma := range []float64{0.05, 0.1, 0.3} {
		for _, rho := range []float64{0.75, 0.9, 0.95} {
			p, _ := WalksForPlurality(gamma, rho)
			c, _ := WalksForCopeland(gamma, rho)
			if c > p {
				t.Errorf("gamma=%v rho=%v: copeland %d > plurality %d", gamma, rho, c, p)
			}
		}
	}
}

func TestSketchesForCumulativeMonotone(t *testing.T) {
	// θ decreases in OPT and increases as ε shrinks.
	t1, err := SketchesForCumulative(1000, 10, 0.1, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	t2, _ := SketchesForCumulative(1000, 10, 0.1, 1, 100)
	if t2 > t1 {
		t.Errorf("theta should shrink with larger OPT: %d > %d", t2, t1)
	}
	t3, _ := SketchesForCumulative(1000, 10, 0.05, 1, 50)
	if t3 < t1 {
		t.Errorf("theta should grow with smaller eps: %d < %d", t3, t1)
	}
}

func TestLogChoose(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 2, math.Log(10)},
		{10, 0, 0},
		{10, 10, 0},
		{10, 3, math.Log(120)},
		{52, 5, math.Log(2598960)},
	}
	for _, c := range cases {
		if got := LogChoose(c.n, c.k); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("LogChoose(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
	if !math.IsInf(LogChoose(5, 7), -1) {
		t.Error("LogChoose(5,7) should be -Inf")
	}
	if !math.IsInf(LogChoose(5, -1), -1) {
		t.Error("LogChoose(5,-1) should be -Inf")
	}
}

func TestLogChooseSymmetry(t *testing.T) {
	err := quick.Check(func(n uint8, k uint8) bool {
		nn := int(n%60) + 1
		kk := int(k) % (nn + 1)
		return math.Abs(LogChoose(nn, kk)-LogChoose(nn, nn-kk)) < 1e-8
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestTailBoundsAreProbabilities(t *testing.T) {
	err := quick.Check(func(beta, variance, m float64) bool {
		bound := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 1
			}
			return math.Mod(math.Abs(x), 1e6)
		}
		b, v, mm := bound(beta), bound(variance), bound(m)
		u := ChungLuUpper(b, v, mm)
		l := ChungLuLower(b, v)
		return u >= 0 && u <= 1 && l >= 0 && l <= 1
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestRelativeEntropyTightensHoeffding(t *testing.T) {
	// The relative-entropy bound is at least as tight as the simple
	// Hoeffding bound exp(-2θε²) on its valid domain.
	for _, mu := range []float64{0.1, 0.3, 0.5} {
		for _, eps := range []float64{0.05, 0.1, 0.2} {
			if eps >= 1-mu {
				continue
			}
			theta := 100
			re := RelativeEntropyTail(theta, mu, eps)
			hf := math.Exp(-2 * float64(theta) * eps * eps)
			if re > hf+1e-12 {
				t.Errorf("mu=%v eps=%v: relative entropy %v looser than hoeffding %v", mu, eps, re, hf)
			}
		}
	}
}

func TestCopelandMajorityTail(t *testing.T) {
	if got := CopelandMajorityTail(10, 1); got != 0 {
		t.Errorf("mu=1 should give 0, got %v", got)
	}
	if got := CopelandMajorityTail(10, 0); got != 1 {
		t.Errorf("mu=0 should give 1, got %v", got)
	}
	// Monotone decreasing in both theta and mu.
	if CopelandMajorityTail(20, 0.5) > CopelandMajorityTail(10, 0.5) {
		t.Error("tail should decrease with theta")
	}
	if CopelandMajorityTail(10, 0.8) > CopelandMajorityTail(10, 0.2) {
		t.Error("tail should decrease with mu")
	}
}

func TestMartingaleTailMonotone(t *testing.T) {
	if MartingaleTail(100, 0.5, 0.1) > MartingaleTail(50, 0.5, 0.1) {
		t.Error("tail should decrease with theta")
	}
	if MartingaleTail(100, 0.5, 0.2) > MartingaleTail(100, 0.5, 0.1) {
		t.Error("tail should decrease with eps")
	}
	if got := MartingaleTail(0, 0.5, 0.1); got != 1 {
		t.Errorf("theta=0 should give 1, got %v", got)
	}
}

func TestHoeffdingTail(t *testing.T) {
	if got := HoeffdingTail(0, 0.1); got != 1 {
		t.Errorf("n=0 should give 1, got %v", got)
	}
	want := 2 * math.Exp(-2*100*0.01)
	if got := HoeffdingTail(100, 0.1); math.Abs(got-want) > 1e-12 {
		t.Errorf("HoeffdingTail(100,0.1) = %v, want %v", got, want)
	}
}
