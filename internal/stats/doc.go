// Package stats provides the statistical substrate used throughout the
// voting-based opinion maximization library: the concentration inequalities
// of the paper's Appendix E (Hoeffding, Chung–Lu, and the relative-entropy
// Chernoff bound), closed-form sample-count bounds from Theorems 10–13,
// log-binomial coefficients, and streaming accumulators (Welford variance,
// percentile summaries) used by the experiment harness.
package stats
