// Package voter implements the discrete voter model discussed in §VII
// ([54]–[56], [60]): each user holds exactly one preferred candidate; at
// every timestamp each (non-zealot) user adopts the preference of a random
// in-neighbor, sampled with probability equal to the influence weight.
// Seed nodes act as zealots permanently committed to the target.
//
// The model serves two purposes in this repository: (1) it realizes the
// paper's future-work direction of "more opinion diffusion models" with a
// genuinely different (discrete, stochastic) dynamics, and (2) the
// experiments use it to stress-test how FJ-optimized seed sets transfer to
// voter-model vote shares, analogous to the paper's EIS study (Fig 11).
package voter

import (
	"fmt"
	"math/rand"

	"ovm/internal/graph"
	"ovm/internal/opinion"
)

// State holds each user's current preferred candidate (index into the
// system's candidate list).
type State []int8

// InitialState derives the discrete starting preferences from a
// multi-candidate opinion system: each user prefers the candidate with her
// highest initial opinion (ties to the lowest index).
func InitialState(s *opinion.System) State {
	n := s.N()
	r := s.R()
	st := make(State, n)
	for v := 0; v < n; v++ {
		best, bestVal := 0, s.Candidate(0).Init[v]
		for q := 1; q < r; q++ {
			if b := s.Candidate(q).Init[v]; b > bestVal {
				best, bestVal = q, b
			}
		}
		st[v] = int8(best)
	}
	return st
}

// Params configures a voter-model simulation.
type Params struct {
	// Horizon is the number of synchronous update rounds.
	Horizon int
	// Target is the candidate whose zealots the seed set provides.
	Target int
	// Rounds is the number of Monte-Carlo repetitions for share estimates.
	Rounds int
}

// Validate checks the parameters against a system.
func (p Params) Validate(s *opinion.System) error {
	if p.Horizon < 0 {
		return fmt.Errorf("voter: negative horizon %d", p.Horizon)
	}
	if p.Target < 0 || p.Target >= s.R() {
		return fmt.Errorf("voter: target %d out of range [0,%d)", p.Target, s.R())
	}
	if p.Rounds < 1 {
		return fmt.Errorf("voter: need at least 1 round, got %d", p.Rounds)
	}
	return nil
}

// Step performs one synchronous voter-model round: every non-zealot user
// adopts the previous-round preference of one in-neighbor sampled by
// influence weight. cur and next must not alias.
func Step(smp *graph.InEdgeSampler, zealot []bool, cur, next State, r *rand.Rand) {
	n := int32(len(cur))
	for v := int32(0); v < n; v++ {
		if zealot[v] {
			next[v] = cur[v]
			continue
		}
		next[v] = cur[smp.Sample(v, r)]
	}
}

// Simulate runs one trajectory from the initial state with the given seed
// set pinned to the target, returning the final preference vector.
func Simulate(s *opinion.System, smp *graph.InEdgeSampler, p Params, seeds []int32, r *rand.Rand) (State, error) {
	if err := p.Validate(s); err != nil {
		return nil, err
	}
	n := s.N()
	cur := InitialState(s)
	zealot := make([]bool, n)
	for _, sd := range seeds {
		if sd < 0 || int(sd) >= n {
			return nil, fmt.Errorf("voter: seed %d out of range [0,%d)", sd, n)
		}
		zealot[sd] = true
		cur[sd] = int8(p.Target)
	}
	next := make(State, n)
	for step := 0; step < p.Horizon; step++ {
		Step(smp, zealot, cur, next, r)
		cur, next = next, cur
	}
	return cur, nil
}

// Share counts the fraction of users preferring candidate q in a state.
func Share(st State, q int) float64 {
	if len(st) == 0 {
		return 0
	}
	c := 0
	for _, pref := range st {
		if int(pref) == q {
			c++
		}
	}
	return float64(c) / float64(len(st))
}

// ExpectedShare estimates the target's expected vote share at the horizon
// across p.Rounds Monte-Carlo trajectories.
func ExpectedShare(s *opinion.System, p Params, seeds []int32, r *rand.Rand) (float64, error) {
	if err := p.Validate(s); err != nil {
		return 0, err
	}
	smp, err := graph.NewInEdgeSampler(s.Candidate(p.Target).G)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for i := 0; i < p.Rounds; i++ {
		st, err := Simulate(s, smp, p, seeds, r)
		if err != nil {
			return 0, err
		}
		total += Share(st, p.Target)
	}
	return total / float64(p.Rounds), nil
}
