package voter_test

import (
	"math"
	"testing"

	"ovm/internal/graph"
	"ovm/internal/opinion"
	"ovm/internal/paperexample"
	"ovm/internal/sampling"
	"ovm/internal/voter"
)

func TestInitialState(t *testing.T) {
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	st := voter.InitialState(sys)
	// Initial opinions: c1 = [0.40,0.80,0.60,0.90], c2 = [0.35,0.75,1.00,0.80]:
	// users 1,2 prefer c1; user 3 prefers c2; user 4 prefers c1.
	want := []int8{0, 0, 1, 0}
	for v := range want {
		if st[v] != want[v] {
			t.Errorf("initial pref of user %d = %d, want %d", v+1, st[v], want[v])
		}
	}
}

func TestShare(t *testing.T) {
	st := voter.State{0, 0, 1, 0}
	if got := voter.Share(st, 0); got != 0.75 {
		t.Errorf("share(0) = %v, want 0.75", got)
	}
	if got := voter.Share(st, 1); got != 0.25 {
		t.Errorf("share(1) = %v, want 0.25", got)
	}
	if got := voter.Share(voter.State{}, 0); got != 0 {
		t.Errorf("empty share = %v, want 0", got)
	}
}

func TestZealotsNeverFlip(t *testing.T) {
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	smp, err := graph.NewInEdgeSampler(sys.Candidate(0).G)
	if err != nil {
		t.Fatal(err)
	}
	r := sampling.NewRand(1, 1)
	p := voter.Params{Horizon: 10, Target: 0, Rounds: 1}
	for trial := 0; trial < 50; trial++ {
		st, err := voter.Simulate(sys, smp, p, []int32{2}, r)
		if err != nil {
			t.Fatal(err)
		}
		if st[2] != 0 {
			t.Fatalf("zealot flipped to %d", st[2])
		}
	}
}

func TestAllZealotsUnanimity(t *testing.T) {
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	p := voter.Params{Horizon: 3, Target: 0, Rounds: 5}
	share, err := voter.ExpectedShare(sys, p, []int32{0, 1, 2, 3}, sampling.NewRand(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if share != 1 {
		t.Errorf("all-zealot share = %v, want 1", share)
	}
}

func TestSeedsIncreaseExpectedShare(t *testing.T) {
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	p := voter.Params{Horizon: 5, Target: 0, Rounds: 400}
	none, err := voter.ExpectedShare(sys, p, nil, sampling.NewRand(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	seeded, err := voter.ExpectedShare(sys, p, []int32{2}, sampling.NewRand(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if seeded <= none {
		t.Errorf("zealot for the target should raise the share: %v vs %v", seeded, none)
	}
}

func TestHorizonZeroReturnsInitialShares(t *testing.T) {
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	p := voter.Params{Horizon: 0, Target: 0, Rounds: 3}
	share, err := voter.ExpectedShare(sys, p, nil, sampling.NewRand(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(share-0.75) > 1e-12 {
		t.Errorf("t=0 share = %v, want 0.75 (initial preferences)", share)
	}
}

func TestValidation(t *testing.T) {
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	r := sampling.NewRand(5, 1)
	if _, err := voter.ExpectedShare(sys, voter.Params{Horizon: -1, Target: 0, Rounds: 1}, nil, r); err == nil {
		t.Error("expected error for negative horizon")
	}
	if _, err := voter.ExpectedShare(sys, voter.Params{Horizon: 1, Target: 5, Rounds: 1}, nil, r); err == nil {
		t.Error("expected error for bad target")
	}
	if _, err := voter.ExpectedShare(sys, voter.Params{Horizon: 1, Target: 0, Rounds: 0}, nil, r); err == nil {
		t.Error("expected error for zero rounds")
	}
	smp, err := graph.NewInEdgeSampler(sys.Candidate(0).G)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := voter.Simulate(sys, smp, voter.Params{Horizon: 1, Target: 0, Rounds: 1}, []int32{99}, r); err == nil {
		t.Error("expected error for out-of-range seed")
	}
}

// TestVoterAgreesWithFJOnStar: on a star where the hub is the sole
// influencer, a hub zealot converts everyone in one step under both the
// voter model and FJ — a cross-model sanity anchor.
func TestVoterAgreesWithFJOnStar(t *testing.T) {
	n := 10
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		if err := b.AddEdge(0, int32(v), 1); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.BuildColumnStochastic()
	if err != nil {
		t.Fatal(err)
	}
	mk := func() []*opinion.Candidate {
		cands := make([]*opinion.Candidate, 2)
		for q := range cands {
			init := make([]float64, n)
			for v := range init {
				if q == 1 {
					init[v] = 0.6
				}
			}
			cands[q] = &opinion.Candidate{Name: string(rune('a' + q)), G: g, Init: init, Stub: make([]float64, n)}
		}
		return cands
	}
	sys, err := opinion.NewSystem(mk())
	if err != nil {
		t.Fatal(err)
	}
	p := voter.Params{Horizon: 2, Target: 0, Rounds: 20}
	share, err := voter.ExpectedShare(sys, p, []int32{0}, sampling.NewRand(6, 1))
	if err != nil {
		t.Fatal(err)
	}
	if share != 1 {
		t.Errorf("hub zealot should convert the whole star, got share %v", share)
	}
	fj := opinion.OpinionsAt(sys.Candidate(0), 2, []int32{0})
	for v := 1; v < n; v++ {
		if math.Abs(fj[v]-1) > 1e-12 {
			t.Errorf("FJ: leaf %d = %v, want 1", v, fj[v])
		}
	}
}
