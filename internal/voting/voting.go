// Package voting implements the five voting-based scores of §II-B —
// cumulative, plurality, p-approval, positional-p-approval, and Copeland —
// together with the rank function β, Condorcet-winner detection, and the
// rank-position histogram used by Fig 10.
//
// All scores operate on an opinion matrix B with r rows (candidates) and n
// columns (users), typically B^(t)[S] produced by the opinion package. Each
// score is non-negative and non-decreasing in the target's seed set; only
// the cumulative score is submodular (Table II).
package voting

import (
	"fmt"
	"math"
)

// Rank returns β(b_qv): the rank of candidate q in user v's preference
// order, defined as the number of candidates x (including q) with
// b_xv ≥ b_qv. Rank 1 means q is strictly preferred over all others.
func Rank(B [][]float64, q, v int) int {
	bq := B[q][v]
	r := 0
	for x := range B {
		if B[x][v] >= bq {
			r++
		}
	}
	return r
}

// Score is a voting-based winning criterion F(B, q).
type Score interface {
	// Name returns a short identifier, e.g. "plurality".
	Name() string
	// Eval computes F(B, cq) for target candidate q.
	Eval(B [][]float64, q int) float64
}

// Cumulative is Equation 3: the sum of all users' opinions about q.
type Cumulative struct{}

// Name implements Score.
func (Cumulative) Name() string { return "cumulative" }

// Eval implements Score.
func (Cumulative) Eval(B [][]float64, q int) float64 {
	sum := 0.0
	for _, b := range B[q] {
		sum += b
	}
	return sum
}

// Plurality is Equation 4: the number of users who strictly prefer q to
// every other candidate.
type Plurality struct{}

// Name implements Score.
func (Plurality) Name() string { return "plurality" }

// Eval implements Score.
func (Plurality) Eval(B [][]float64, q int) float64 {
	n := len(B[q])
	count := 0
	for v := 0; v < n; v++ {
		if Rank(B, q, v) <= 1 {
			count++
		}
	}
	return float64(count)
}

// PApproval is Equation 5: the number of users ranking q within their top
// P candidates (ties share the worse rank, so equal opinions block rank 1).
type PApproval struct {
	P int
}

// Name implements Score.
func (s PApproval) Name() string { return fmt.Sprintf("%d-approval", s.P) }

// Eval implements Score.
func (s PApproval) Eval(B [][]float64, q int) float64 {
	n := len(B[q])
	count := 0
	for v := 0; v < n; v++ {
		if Rank(B, q, v) <= s.P {
			count++
		}
	}
	return float64(count)
}

// Validate checks 1 ≤ P ≤ r.
func (s PApproval) Validate(r int) error {
	if s.P < 1 || s.P > r {
		return fmt.Errorf("voting: p-approval needs 1 <= P <= r, got P=%d r=%d", s.P, r)
	}
	return nil
}

// Positional is Equation 6: the positional-p-approval score. Omega[i-1]
// holds the position weight ω[i] for rank i (1-indexed in the paper);
// weights must be non-increasing and lie in [0,1]. A user at rank β ≤ P
// contributes ω[β]; users ranked below P contribute 0.
type Positional struct {
	P     int
	Omega []float64
}

// Name implements Score.
func (s Positional) Name() string { return fmt.Sprintf("positional-%d-approval", s.P) }

// Eval implements Score.
func (s Positional) Eval(B [][]float64, q int) float64 {
	n := len(B[q])
	sum := 0.0
	for v := 0; v < n; v++ {
		beta := Rank(B, q, v)
		if beta <= s.P {
			sum += s.Omega[beta-1]
		}
	}
	return sum
}

// Validate checks the §II-B constraints on P and the position weights.
func (s Positional) Validate(r int) error {
	if s.P < 1 || s.P > r {
		return fmt.Errorf("voting: positional needs 1 <= P <= r, got P=%d r=%d", s.P, r)
	}
	if len(s.Omega) < s.P {
		return fmt.Errorf("voting: need at least P=%d weights, got %d", s.P, len(s.Omega))
	}
	for i, w := range s.Omega {
		if w < 0 || w > 1 {
			return fmt.Errorf("voting: omega[%d]=%v outside [0,1]", i+1, w)
		}
		if i > 0 && w > s.Omega[i-1] {
			return fmt.Errorf("voting: omega[%d]=%v exceeds omega[%d]=%v (must be non-increasing)",
				i+1, w, i, s.Omega[i-1])
		}
	}
	return nil
}

// Copeland is Equation 7: the number of one-on-one competitions q wins,
// where q beats x iff strictly more users prefer q to x than prefer x to q.
type Copeland struct{}

// Name implements Score.
func (Copeland) Name() string { return "copeland" }

// Eval implements Score.
func (Copeland) Eval(B [][]float64, q int) float64 {
	wins := 0
	for x := range B {
		if x == q {
			continue
		}
		if BeatsPairwise(B, q, x) {
			wins++
		}
	}
	return float64(wins)
}

// BeatsPairwise reports whether q ≻_M x: more users hold a strictly higher
// opinion of q than of x, compared to the other way around.
func BeatsPairwise(B [][]float64, q, x int) bool {
	prefer, against := PairwiseCounts(B, q, x)
	return prefer > against
}

// PairwiseCounts returns (#users with b_qv > b_xv, #users with b_qv < b_xv).
func PairwiseCounts(B [][]float64, q, x int) (prefer, against int) {
	n := len(B[q])
	for v := 0; v < n; v++ {
		switch {
		case B[q][v] > B[x][v]:
			prefer++
		case B[q][v] < B[x][v]:
			against++
		}
	}
	return prefer, against
}

// CondorcetWinner returns the candidate that wins every one-on-one
// competition (Copeland score r−1), or −1 if none exists.
func CondorcetWinner(B [][]float64) int {
	r := len(B)
	for q := 0; q < r; q++ {
		if int(Copeland{}.Eval(B, q)) == r-1 {
			return q
		}
	}
	return -1
}

// Winner returns the candidate with the maximum score under F (ties go to
// the lowest index) along with the winning score.
func Winner(B [][]float64, f Score) (int, float64) {
	best, bestScore := -1, math.Inf(-1)
	for q := range B {
		if s := f.Eval(B, q); s > bestScore {
			best, bestScore = q, s
		}
	}
	return best, bestScore
}

// RankHistogram returns, for each rank position i = 1..r, the number of
// users that place candidate q at rank i (Fig 10).
func RankHistogram(B [][]float64, q int) []int {
	r := len(B)
	hist := make([]int, r)
	n := len(B[q])
	for v := 0; v < n; v++ {
		beta := Rank(B, q, v)
		if beta >= 1 && beta <= r {
			hist[beta-1]++
		}
	}
	return hist
}

// PluralityAsPositional returns the positional score equivalent to
// plurality (p = 1, ω = [1]).
func PluralityAsPositional() Positional {
	return Positional{P: 1, Omega: []float64{1}}
}

// PApprovalAsPositional returns the positional score equivalent to
// p-approval (ω[i] = 1 for i ≤ p).
func PApprovalAsPositional(p int) Positional {
	om := make([]float64, p)
	for i := range om {
		om[i] = 1
	}
	return Positional{P: p, Omega: om}
}

// BordaAsPositional returns the classic Borda count expressed in the
// positional-p-approval framework: rank i contributes (r−i)/(r−1), so the
// top rank earns 1 and the bottom rank 0. This realizes the paper's
// "more voting scores" future-work direction with zero new machinery —
// every selector (DM sandwich, RW, RS) applies unchanged because Borda's
// weights are non-increasing and lie in [0,1].
func BordaAsPositional(r int) Positional {
	om := make([]float64, r)
	for i := range om {
		om[i] = float64(r-1-i) / float64(r-1)
	}
	return Positional{P: r, Omega: om}
}
