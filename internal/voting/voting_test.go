package voting_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ovm/internal/opinion"
	"ovm/internal/paperexample"
	"ovm/internal/voting"
)

func tableIMatrix(t *testing.T, seeds []int32) [][]float64 {
	t.Helper()
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	B, err := opinion.Matrix(sys, paperexample.Horizon, paperexample.Target, seeds, 1)
	if err != nil {
		t.Fatal(err)
	}
	return B
}

// TestTableIScores reproduces the Cumu./Plu./Cope. columns of Table I.
func TestTableIScores(t *testing.T) {
	for _, row := range paperexample.TableI {
		B := tableIMatrix(t, row.Seeds)
		if got := (voting.Cumulative{}).Eval(B, 0); math.Abs(got-row.Cumulative) > 1e-9 {
			t.Errorf("seeds %v: cumulative = %v, want %v", paperexample.SeedLabel(row.Seeds), got, row.Cumulative)
		}
		if got := (voting.Plurality{}).Eval(B, 0); got != row.Plurality {
			t.Errorf("seeds %v: plurality = %v, want %v", paperexample.SeedLabel(row.Seeds), got, row.Plurality)
		}
		if got := (voting.Copeland{}).Eval(B, 0); got != row.Copeland {
			t.Errorf("seeds %v: copeland = %v, want %v", paperexample.SeedLabel(row.Seeds), got, row.Copeland)
		}
	}
}

func TestRank(t *testing.T) {
	B := [][]float64{
		{0.9, 0.5, 0.3},
		{0.1, 0.5, 0.6},
		{0.5, 0.2, 0.9},
	}
	// User 0: opinions (0.9, 0.1, 0.5) → ranks 1, 3, 2.
	if got := voting.Rank(B, 0, 0); got != 1 {
		t.Errorf("rank(c0,u0) = %d, want 1", got)
	}
	if got := voting.Rank(B, 1, 0); got != 3 {
		t.Errorf("rank(c1,u0) = %d, want 3", got)
	}
	if got := voting.Rank(B, 2, 0); got != 2 {
		t.Errorf("rank(c2,u0) = %d, want 2", got)
	}
	// User 1: tie between c0 and c1 at 0.5 → both rank 2 (ties share the
	// worse rank); c2 rank 3.
	if got := voting.Rank(B, 0, 1); got != 2 {
		t.Errorf("rank(c0,u1) = %d, want 2 (tie)", got)
	}
	if got := voting.Rank(B, 1, 1); got != 2 {
		t.Errorf("rank(c1,u1) = %d, want 2 (tie)", got)
	}
	if got := voting.Rank(B, 2, 1); got != 3 {
		t.Errorf("rank(c2,u1) = %d, want 3", got)
	}
}

func TestPluralityExcludesTies(t *testing.T) {
	B := [][]float64{
		{0.5, 0.8},
		{0.5, 0.2},
	}
	// User 0 is tied → votes for nobody under plurality.
	if got := (voting.Plurality{}).Eval(B, 0); got != 1 {
		t.Errorf("plurality(c0) = %v, want 1", got)
	}
	if got := (voting.Plurality{}).Eval(B, 1); got != 0 {
		t.Errorf("plurality(c1) = %v, want 0", got)
	}
}

func TestPApproval(t *testing.T) {
	B := [][]float64{
		{0.9, 0.1, 0.5},
		{0.5, 0.5, 0.6},
		{0.1, 0.9, 0.7},
	}
	// Ranks of c1 (index 0): u0→1, u1→3, u2→3.
	if got := (voting.PApproval{P: 1}).Eval(B, 0); got != 1 {
		t.Errorf("1-approval = %v, want 1", got)
	}
	if got := (voting.PApproval{P: 2}).Eval(B, 0); got != 1 {
		t.Errorf("2-approval = %v, want 1", got)
	}
	if got := (voting.PApproval{P: 3}).Eval(B, 0); got != 3 {
		t.Errorf("3-approval = %v, want 3", got)
	}
}

func TestPositionalMatchesManual(t *testing.T) {
	B := [][]float64{
		{0.9, 0.4, 0.5},
		{0.5, 0.5, 0.6},
		{0.1, 0.9, 0.7},
	}
	// Ranks of c0: u0→1, u1→3, u2→3. Ranks of c1: u0→2, u1→2, u2→2.
	s := voting.Positional{P: 2, Omega: []float64{1, 0.5}}
	if err := s.Validate(3); err != nil {
		t.Fatal(err)
	}
	if got := s.Eval(B, 0); math.Abs(got-1) > 1e-12 {
		t.Errorf("positional(c0) = %v, want 1", got)
	}
	if got := s.Eval(B, 1); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("positional(c1) = %v, want 1.5", got)
	}
}

func TestPositionalValidate(t *testing.T) {
	if err := (voting.Positional{P: 0, Omega: []float64{1}}).Validate(3); err == nil {
		t.Error("expected error for P=0")
	}
	if err := (voting.Positional{P: 4, Omega: []float64{1, 1, 1, 1}}).Validate(3); err == nil {
		t.Error("expected error for P>r")
	}
	if err := (voting.Positional{P: 2, Omega: []float64{1}}).Validate(3); err == nil {
		t.Error("expected error for short omega")
	}
	if err := (voting.Positional{P: 2, Omega: []float64{0.5, 0.8}}).Validate(3); err == nil {
		t.Error("expected error for increasing omega")
	}
	if err := (voting.Positional{P: 2, Omega: []float64{1.5, 0.5}}).Validate(3); err == nil {
		t.Error("expected error for omega > 1")
	}
	if err := (voting.PApproval{P: 0}).Validate(3); err == nil {
		t.Error("expected error for 0-approval")
	}
}

func TestVariantsGeneralizePlurality(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rCand := 2 + r.Intn(4)
		n := 1 + r.Intn(30)
		B := make([][]float64, rCand)
		for q := range B {
			B[q] = make([]float64, n)
			for v := range B[q] {
				B[q][v] = r.Float64()
			}
		}
		q := r.Intn(rCand)
		plu := (voting.Plurality{}).Eval(B, q)
		if (voting.PApproval{P: 1}).Eval(B, q) != plu {
			return false
		}
		if voting.PluralityAsPositional().Eval(B, q) != plu {
			return false
		}
		p := 1 + r.Intn(rCand)
		if voting.PApprovalAsPositional(p).Eval(B, q) != (voting.PApproval{P: p}).Eval(B, q) {
			return false
		}
		// r-approval counts everyone.
		return (voting.PApproval{P: rCand}).Eval(B, q) == float64(n)
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

func TestCopelandAndCondorcet(t *testing.T) {
	// Classic rock-paper-scissors cycle: no Condorcet winner.
	B := [][]float64{
		{0.9, 0.1, 0.5},
		{0.5, 0.9, 0.1},
		{0.1, 0.5, 0.9},
	}
	for q := 0; q < 3; q++ {
		if got := (voting.Copeland{}).Eval(B, q); got != 1 {
			t.Errorf("cycle: copeland(c%d) = %v, want 1", q, got)
		}
	}
	if w := voting.CondorcetWinner(B); w != -1 {
		t.Errorf("cycle should have no Condorcet winner, got %d", w)
	}
	// Dominant candidate wins everything.
	B2 := [][]float64{
		{0.9, 0.9, 0.9},
		{0.5, 0.1, 0.3},
		{0.1, 0.5, 0.2},
	}
	if w := voting.CondorcetWinner(B2); w != 0 {
		t.Errorf("Condorcet winner = %d, want 0", w)
	}
	if got := (voting.Copeland{}).Eval(B2, 0); got != 2 {
		t.Errorf("copeland = %v, want 2", got)
	}
}

func TestWinner(t *testing.T) {
	B := [][]float64{
		{0.2, 0.3},
		{0.9, 0.8},
	}
	w, s := voting.Winner(B, voting.Cumulative{})
	if w != 1 || math.Abs(s-1.7) > 1e-12 {
		t.Errorf("winner = %d (%v), want 1 (1.7)", w, s)
	}
}

func TestRankHistogram(t *testing.T) {
	B := [][]float64{
		{0.9, 0.1, 0.5, 0.6},
		{0.5, 0.5, 0.6, 0.5},
		{0.1, 0.9, 0.7, 0.4},
	}
	// Ranks of c0: u0→1, u1→3, u2→3, u3→1.
	hist := voting.RankHistogram(B, 0)
	want := []int{2, 0, 2}
	for i := range want {
		if hist[i] != want[i] {
			t.Errorf("hist[%d] = %d, want %d", i, hist[i], want[i])
		}
	}
	// Histogram sums to n for each candidate.
	for q := 0; q < 3; q++ {
		total := 0
		for _, h := range voting.RankHistogram(B, q) {
			total += h
		}
		if total != 4 {
			t.Errorf("histogram of c%d sums to %d, want 4", q, total)
		}
	}
}

func TestScoresNonDecreasingInSeeds(t *testing.T) {
	// Monotonicity of all scores w.r.t. seed inclusion on the paper example.
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	scores := []voting.Score{
		voting.Cumulative{}, voting.Plurality{},
		voting.PApproval{P: 2}, voting.Positional{P: 2, Omega: []float64{1, 0.5}},
		voting.Copeland{},
	}
	subsets := [][]int32{nil, {0}, {1}, {2}, {3}, {0, 1}, {0, 2}, {1, 3}, {0, 1, 2}, {0, 1, 2, 3}}
	for _, f := range scores {
		for _, base := range subsets {
			Bb, err := opinion.Matrix(sys, 1, 0, base, 1)
			if err != nil {
				t.Fatal(err)
			}
			fb := f.Eval(Bb, 0)
			for add := int32(0); add < 4; add++ {
				ext := append(append([]int32{}, base...), add)
				Be, err := opinion.Matrix(sys, 1, 0, ext, 1)
				if err != nil {
					t.Fatal(err)
				}
				if fe := f.Eval(Be, 0); fe < fb-1e-9 {
					t.Errorf("%s: adding %d to %v decreased score %v→%v",
						f.Name(), add, base, fb, fe)
				}
			}
		}
	}
}

func TestBordaAsPositional(t *testing.T) {
	B := [][]float64{
		{0.9, 0.1, 0.5},
		{0.5, 0.5, 0.6},
		{0.1, 0.9, 0.7},
	}
	borda := voting.BordaAsPositional(3)
	if err := borda.Validate(3); err != nil {
		t.Fatal(err)
	}
	// Ranks of c0: u0→1 (weight 1), u1→3 (0), u2→3 (0) → Borda 1.
	if got := borda.Eval(B, 0); math.Abs(got-1) > 1e-12 {
		t.Errorf("borda(c0) = %v, want 1", got)
	}
	// Ranks of c2: u0→3 (0), u1→1 (1), u2→1 (1) → Borda 2.
	if got := borda.Eval(B, 2); math.Abs(got-2) > 1e-12 {
		t.Errorf("borda(c2) = %v, want 2", got)
	}
	// Two candidates: Borda degenerates to plurality (weights 1, 0).
	B2 := [][]float64{{0.9, 0.2}, {0.5, 0.8}}
	if voting.BordaAsPositional(2).Eval(B2, 0) != (voting.Plurality{}).Eval(B2, 0) {
		t.Error("2-candidate Borda should equal plurality")
	}
}

func TestBordaSeedSelectionIntegrates(t *testing.T) {
	// Borda plugs into the full pipeline: monotone on the paper example.
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	borda := voting.BordaAsPositional(2)
	B0, err := opinion.Matrix(sys, 1, 0, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	B3, err := opinion.Matrix(sys, 1, 0, []int32{2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if borda.Eval(B3, 0) < borda.Eval(B0, 0) {
		t.Error("Borda should not decrease with seeds")
	}
}

// TestNonSubmodularityExample3 verifies the paper's Example 3: inserting
// node 2 (paper numbering) into ∅ yields zero marginal plurality/Copeland
// gain, but inserting it into {1} yields gain 1 — submodularity is violated.
func TestNonSubmodularityExample3(t *testing.T) {
	sys, err := paperexample.New()
	if err != nil {
		t.Fatal(err)
	}
	eval := func(f voting.Score, seeds []int32) float64 {
		B, err := opinion.Matrix(sys, 1, 0, seeds, 1)
		if err != nil {
			t.Fatal(err)
		}
		return f.Eval(B, 0)
	}
	for _, f := range []voting.Score{voting.Plurality{}, voting.Copeland{}} {
		gainEmpty := eval(f, []int32{1}) - eval(f, nil)
		gainAfter1 := eval(f, []int32{0, 1}) - eval(f, []int32{0})
		if gainEmpty != 0 {
			t.Errorf("%s: marginal gain of node 2 into empty set = %v, want 0", f.Name(), gainEmpty)
		}
		if gainAfter1 != 1 {
			t.Errorf("%s: marginal gain of node 2 into {1} = %v, want 1", f.Name(), gainAfter1)
		}
	}
}
